package csds

import (
	"fmt"
	"testing"

	"csds/internal/birthday"
	"csds/internal/harness"
	"csds/internal/sim"
	"csds/internal/workload"
)

// Ablation benchmarks for the design choices DESIGN.md §5 calls out.

// BenchmarkAblationLocks compares lock algorithms on the same featured
// structure workloads, testing the paper's §3.2 claim that simple locks
// (TAS/ticket) suffice for CSDSs and MCS buys nothing.
func BenchmarkAblationLocks(b *testing.B) {
	// The structures hard-wire their paper configurations (TAS for lists,
	// tickets for BST-TK); the ablation exercises the lock primitives
	// directly under CSDS-like short critical sections instead.
	benchLocks(b)
}

// BenchmarkAblationHashGranularity compares per-bucket locks against 16
// coarse stripes under extreme contention (§5.3's granularity remark).
func BenchmarkAblationHashGranularity(b *testing.B) {
	for _, alg := range []string{"hashtable/lazy", "hashtable/striped"} {
		for _, size := range []int{16, 1024} {
			b.Run(fmt.Sprintf("alg=%s/size=%d", alg, size), func(b *testing.B) {
				benchCell(b, harness.Config{
					Algorithm: alg, Threads: 20,
					Workload: workload.Config{Size: size, UpdateRatio: 0.25},
				})
			})
		}
	}
}

// BenchmarkAblationHTMRetries sweeps the speculation budget (§6.4 assumes
// 5 attempts): fallbacks drop as the budget grows.
func BenchmarkAblationHTMRetries(b *testing.B) {
	st := sim.SkipListModel()
	for _, attempts := range []int{1, 3, 5, 10} {
		b.Run(fmt.Sprintf("attempts=%d", attempts), func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = sim.Run(sim.Config{
					Machine: sim.PaperHaswell(), Structure: st, Threads: 32,
					Size: 1024, UpdateRatio: 0.5, Ops: 4000,
					ElideAttempts: attempts, Multiprogram: true, Seed: 31,
				})
			}
			reportSim(b, res)
		})
	}
}

// BenchmarkAblationPhaseRatio sweeps the write-phase share of an update in
// the birthday model (§6.2 assumes ~10%): the conflict probability scales
// accordingly.
func BenchmarkAblationPhaseRatio(b *testing.B) {
	for _, wf := range []float64{0.05, 0.1, 0.2, 0.4} {
		b.Run(fmt.Sprintf("writefrac=%g", wf), func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				s := birthday.PaperListExample()
				s.WriteFrac = wf
				p = s.ListConflict()
			}
			b.ReportMetric(p, "pconflict")
		})
	}
}

// BenchmarkAblationEBR ablates epoch-based reclamation against GC-only
// operation. Since the retire path gained real reclamation callbacks
// the comparison has two sides: the epoch bookkeeping is pure overhead
// on the op path, while recycling retired nodes through the pools pays
// it back in allocation rate and GC pause time — so alongside
// throughput, the cells report retired/reclaimed totals, the pool hit
// fraction, and allocs/op + GC pause, which the ebr=false cells show
// as the all-GC baseline.
func BenchmarkAblationEBR(b *testing.B) {
	for _, ebrOn := range []bool{false, true} {
		b.Run(fmt.Sprintf("ebr=%v", ebrOn), func(b *testing.B) {
			cfg := harness.Config{
				Algorithm: "list/lazy", Threads: 8, UseEBR: ebrOn,
				Workload: workload.Config{Size: 512, UpdateRatio: 0.5},
			}
			if cfg.Duration == 0 {
				cfg.Duration = benchDur
			}
			var res harness.Result
			for i := 0; i < b.N; i++ {
				r, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			report(b, res)
			b.ReportMetric(float64(res.Retired), "retired")
			b.ReportMetric(float64(res.Reclaimed), "reclaimed")
			b.ReportMetric(res.PoolHitFrac, "poolhitfrac")
			b.ReportMetric(res.AllocsPerOp, "allocs/op")
			b.ReportMetric(float64(res.GCPauseNs), "gcpause-ns")
		})
	}
}

// BenchmarkAlgorithmsThroughput is a cross-algorithm sweep: every
// registered algorithm on the paper's default cell (useful for spotting
// regressions and for the Table 1 comparison narrative).
func BenchmarkAlgorithmsThroughput(b *testing.B) {
	for _, name := range Algorithms() {
		b.Run("alg="+name, func(b *testing.B) {
			benchCell(b, harness.Config{
				Algorithm: name, Threads: 8,
				Workload: workload.Config{Size: 512, UpdateRatio: 0.1},
			})
		})
	}
}
