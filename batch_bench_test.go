// Microbenchmarks for the batched-operation paths: the same multi-key
// work issued as one Multi* call versus a loop of point operations.
// BenchmarkBatchVsLooped reports keys/op-normalized timings so the
// batch/looped pairs compare directly: on a plain ordered list the
// batch amortizes the head-to-key traversal across sorted keys, on
// sharded(32) it additionally crosses each shard boundary once per
// batch instead of once per key, and on a deliberately contended
// single-shard composite the batch path's flat-combining publication
// list folds many threads' batches into one lock acquisition — the
// looped rows are the same contended work without that path, and the
// combinefrac metric shows when it engaged.
package csds

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"csds/internal/core"
	"csds/internal/xrand"
)

// batchBenchSet builds a spec pre-filled with half the keys of a 2*size
// key space (the harness's steady-state convention).
func batchBenchSet(b *testing.B, spec string, size int) core.Set {
	b.Helper()
	s, err := core.Build(spec, core.Options{ExpectedSize: size})
	if err != nil {
		b.Fatal(err)
	}
	c := core.NewCtx(0)
	r := xrand.New(1)
	for s.Len() < size {
		s.Put(c, core.Key(r.Int63n(int64(2*size))), 1)
	}
	return s
}

// runBatchedOps drives one goroutine's measured loop: draws batches of
// n keys from the 2*size space (a read-mostly mix: get, then put+remove
// every fourth batch) and applies them batched or looped.
func runBatchedOps(c *core.Ctx, s core.Set, rng *xrand.Rng, size, n, rounds int, batched bool) {
	bt := core.AsBatcher(s)
	keys := make([]core.Key, n)
	pairs := make([]core.KV, n)
	sink := 0
	for r := 0; r < rounds; r++ {
		for i := range keys {
			keys[i] = core.Key(rng.Int63n(int64(2 * size)))
			pairs[i] = core.KV{K: keys[i], V: 1}
		}
		onGet := func(i int, v core.Value, ok bool) {
			if ok {
				sink++
			}
		}
		onBool := func(i int, ok bool) {
			if ok {
				sink++
			}
		}
		if batched {
			switch r % 4 {
			case 1:
				bt.MultiPut(c, pairs, onBool)
			case 3:
				bt.MultiRemove(c, keys, onBool)
			default:
				bt.MultiGet(c, keys, onGet)
			}
		} else {
			switch r % 4 {
			case 1:
				core.LoopMultiPut(c, s, pairs, onBool)
			case 3:
				core.LoopMultiRemove(c, s, keys, onBool)
			default:
				core.LoopMultiGet(c, s, keys, onGet)
			}
		}
	}
	_ = sink
}

// BenchmarkBatchVsLooped: each op is ONE KEY (b.N keys total split into
// batches), so ns/op compares directly between the batch and looped
// rows of a cell. The uncontended cells run single-threaded — pure
// traversal/boundary amortization; the sharded(1) cells run GOMAXPROCS
// goroutines against one shard — synchronization amortization, where
// the batch rows may ride the flat-combining list (combinefrac) and the
// looped rows never do.
func BenchmarkBatchVsLooped(b *testing.B) {
	const size = 2048
	for _, spec := range []string{"list/lazy", "sharded(32,list/lazy)"} {
		for _, n := range []int{8, 64, 512} {
			for _, mode := range []string{"batch", "looped"} {
				b.Run(fmt.Sprintf("alg=%s/keys=%d/%s", spec, n, mode), func(b *testing.B) {
					s := batchBenchSet(b, spec, size)
					c := core.NewCtx(0)
					rng := xrand.New(7)
					rounds := (b.N + n - 1) / n
					b.ResetTimer()
					runBatchedOps(c, s, rng, size, n, rounds, mode == "batch")
				})
			}
		}
	}
	// Contended single shard: every key hashes to the same inner list,
	// so the only lever left is how often the lock is taken. At least 4
	// workers even on small hosts — preemption inside a held bracket
	// still produces the contention the combiner feeds on.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for _, n := range []int{8, 64, 512} {
		for _, mode := range []string{"batch", "looped"} {
			b.Run(fmt.Sprintf("alg=sharded(1,list/lazy)/keys=%d/%s/contended", n, mode), func(b *testing.B) {
				s := batchBenchSet(b, "sharded(1,list/lazy)", size)
				perWorker := (b.N/n)/workers + 1
				var combined, batches atomic.Uint64
				var wg sync.WaitGroup
				b.ResetTimer()
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						c := core.NewCtx(id)
						runBatchedOps(c, s, xrand.New(uint64(id+1)), size, n, perWorker, mode == "batch")
						combined.Add(c.Stats.CombinedBatches)
						batches.Add(uint64(perWorker))
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				if bt := batches.Load(); bt > 0 {
					b.ReportMetric(float64(combined.Load())/float64(bt), "combinefrac")
				}
			})
		}
	}
}
