// Benchmarks reproducing the paper's figures and tables. Each figure has
// two engines:
//
//   - *Run benches execute the real concurrent implementations under the
//     measurement harness (goroutines on this host, which may have far
//     fewer cores than the paper's 20-core Xeon);
//   - *Sim benches drive the calibrated multicore simulator, which
//     reproduces the figure *shapes* (scalability knees, crossovers) for
//     the paper's machine models.
//
// Reported custom metrics:
//
//	Mops/s       system throughput (millions of operations per second)
//	waitfrac     fraction of time spent waiting for locks   (Figs 5,7,8,9,10)
//	restartfrac  fraction of operations restarted >= once   (Figs 6,7,8,9)
//	restart3frac fraction restarted more than three times   (Fig 8)
//	fallbackfrac critical sections falling back to locks    (Table 2)
//	thrstddev    per-thread throughput stddev / mean        (Fig 4)
//
// `go test -bench . -benchtime 1x` gives one harness window per cell;
// cmd/figures prints the same cells as tables.
package csds

import (
	"fmt"
	"testing"
	"time"

	"csds/internal/harness"
	"csds/internal/sim"
	"csds/internal/workload"
)

// benchDur is the measurement window per harness run inside benchmarks
// (the paper uses 5 s; CI budgets need less — cmd/figures exposes -dur).
const benchDur = 25 * time.Millisecond

// runThreads are the thread counts exercised by runtime scalability
// benches. The host may have a single CPU: the Go runtime still timeslices
// the workers, so contention metrics remain meaningful even where
// parallel speedup is not.
var runThreads = []int{1, 4, 20, 40}

func benchCell(b *testing.B, cfg harness.Config) {
	b.Helper()
	if cfg.Duration == 0 {
		cfg.Duration = benchDur
	}
	var res harness.Result
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	report(b, res)
}

func report(b *testing.B, res harness.Result) {
	b.ReportMetric(res.Throughput/1e6, "Mops/s")
	b.ReportMetric(res.WaitFraction, "waitfrac")
	b.ReportMetric(res.RestartedFrac, "restartfrac")
	b.ReportMetric(res.RestartedFrac3, "restart3frac")
	if res.PerThreadMean > 0 {
		b.ReportMetric(res.PerThreadStddev/res.PerThreadMean, "thrstddev")
	}
	if res.FallbackFrac > 0 {
		b.ReportMetric(res.FallbackFrac, "fallbackfrac")
	}
}

func reportSim(b *testing.B, res sim.Result) {
	b.ReportMetric(res.ThroughputOpsPerSec/1e6, "Mops/s")
	b.ReportMetric(res.WaitFraction, "waitfrac")
	b.ReportMetric(res.RestartedFrac, "restartfrac")
	b.ReportMetric(res.RestartedFrac3, "restart3frac")
	if res.FallbackFrac > 0 {
		b.ReportMetric(res.FallbackFrac, "fallbackfrac")
	}
}

// ---------------------------------------------------------------------------
// Figure 1: blocking vs lock-free vs wait-free linked list, 1024 elements,
// 10% updates, increasing threads.
// ---------------------------------------------------------------------------

func BenchmarkFig1Run(b *testing.B) {
	for _, alg := range []string{"list/lazy", "list/harris", "list/waitfree"} {
		for _, th := range runThreads {
			b.Run(fmt.Sprintf("alg=%s/threads=%d", alg, th), func(b *testing.B) {
				benchCell(b, harness.Config{
					Algorithm: alg, Threads: th,
					Workload: workload.Config{Size: 1024, UpdateRatio: 0.1},
				})
			})
		}
	}
}

func BenchmarkFig1Sim(b *testing.B) {
	models := map[string]sim.Structure{
		"blocking": sim.ListModel(), "lockfree": sim.HarrisListModel(), "waitfree": sim.WaitFreeListModel(),
	}
	for name, st := range models {
		for _, th := range []int{1, 5, 10, 20, 30, 40} {
			b.Run(fmt.Sprintf("alg=%s/threads=%d", name, th), func(b *testing.B) {
				var res sim.Result
				for i := 0; i < b.N; i++ {
					res = sim.Run(sim.Config{
						Machine: sim.PaperXeon(), Structure: st, Threads: th,
						Size: 1024, UpdateRatio: 0.1, Ops: 4000, Seed: 1,
					})
				}
				reportSim(b, res)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 2: the traversal-indirection cost the paper illustrates — the
// same logical list traversed through direct next pointers (blocking
// layout) vs boxed links plus descriptor checks (wait-free layout).
// ---------------------------------------------------------------------------

func BenchmarkFig2Indirection(b *testing.B) {
	const size = 1024
	b.Run("layout=direct", func(b *testing.B) {
		s := NewLazyList()
		c := NewCtx(0)
		for k := Key(1); k <= size; k++ {
			s.Put(c, k*2, k)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Get(c, Key((i%size)*2+1))
		}
	})
	b.Run("layout=boxed", func(b *testing.B) {
		s := NewWaitFreeList()
		c := NewCtx(0)
		for k := Key(1); k <= size; k++ {
			s.Put(c, k*2, k)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Get(c, Key((i%size)*2+1))
		}
	})
}
