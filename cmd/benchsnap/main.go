// Command benchsnap normalizes csdsbench -csv output into the JSON
// snapshot format of the repository's perf trajectory, and verifies a
// fresh run against a committed baseline.
//
// The CI bench job runs the fixed grid (scripts/bench_grid.sh), converts
// the CSV to bench.json with this tool, and uploads both as artifacts;
// BENCH_baseline.json in the repository root is the same conversion,
// committed once per machine-visible perf change. -check compares a
// fresh CSV's *grid identity* — schema, columns, and the configuration
// axes of every cell — against the baseline, so the artifact format and
// the measured grid cannot drift silently; measurements themselves are
// expected to differ run to run and host to host and are not compared.
//
// Usage:
//
//	benchsnap bench.csv              # print the JSON snapshot
//	benchsnap -out bench.json bench.csv
//	benchsnap -check BENCH_baseline.json bench.csv
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// schemaID names the snapshot format; bump it together with the
// csdsbench CSV header and the committed baseline.
const schemaID = "csds-bench-v1"

// gridAxes are the configuration columns that define a cell's identity:
// two snapshots describe the same grid iff their cells agree on these
// (measurements may differ).
var gridAxes = []string{"alg", "threads", "size", "updates", "zipf", "scanfrac", "cursorfrac"}

// Snapshot is the JSON artifact: the column schema plus one entry per
// grid cell, numbers parsed where the column is numeric.
type Snapshot struct {
	Schema  string           `json:"schema"`
	Columns []string         `json:"columns"`
	Cells   []map[string]any `json:"cells"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	var out, check string
	var csvPath string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-out":
			i++
			if i == len(args) {
				fmt.Fprintln(stderr, "benchsnap: -out needs a path")
				return 2
			}
			out = args[i]
		case "-check":
			i++
			if i == len(args) {
				fmt.Fprintln(stderr, "benchsnap: -check needs a baseline path")
				return 2
			}
			check = args[i]
		default:
			if strings.HasPrefix(args[i], "-") || csvPath != "" {
				fmt.Fprintf(stderr, "benchsnap: usage: benchsnap [-out file.json] [-check baseline.json] bench.csv\n")
				return 2
			}
			csvPath = args[i]
		}
	}
	if csvPath == "" {
		fmt.Fprintln(stderr, "benchsnap: a bench CSV path is required")
		return 2
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchsnap: %v\n", err)
		return 1
	}
	snap, err := Parse(string(data))
	if err != nil {
		fmt.Fprintf(stderr, "benchsnap: %v\n", err)
		return 1
	}
	if check != "" {
		base, err := os.ReadFile(check)
		if err != nil {
			fmt.Fprintf(stderr, "benchsnap: %v\n", err)
			return 1
		}
		var baseline Snapshot
		if err := json.Unmarshal(base, &baseline); err != nil {
			fmt.Fprintf(stderr, "benchsnap: baseline %s: %v\n", check, err)
			return 1
		}
		if err := CheckGrid(baseline, snap); err != nil {
			fmt.Fprintf(stderr, "benchsnap: grid drifted from %s: %v\n", check, err)
			return 1
		}
		fmt.Fprintf(stdout, "benchsnap: grid matches %s (%d cells)\n", check, len(snap.Cells))
	}
	js, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchsnap: %v\n", err)
		return 1
	}
	js = append(js, '\n')
	if out != "" {
		if err := os.WriteFile(out, js, 0o644); err != nil {
			fmt.Fprintf(stderr, "benchsnap: %v\n", err)
			return 1
		}
	} else if check == "" {
		stdout.Write(js)
	}
	return 0
}

// Parse converts concatenated csdsbench -csv output (one header+row
// block per cell, or one header followed by many rows) into a Snapshot.
// The alg column of composite specs carries literal commas in the
// unquoted CSV, so rows are split right-to-left: the last len(columns)-1
// fields are the numeric columns and everything before them is alg.
func Parse(csv string) (Snapshot, error) {
	snap := Snapshot{Schema: schemaID}
	for ln, line := range strings.Split(csv, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "alg,") {
			cols := strings.Split(line, ",")
			if snap.Columns == nil {
				snap.Columns = cols
			} else if strings.Join(snap.Columns, ",") != line {
				return Snapshot{}, fmt.Errorf("line %d: header %q disagrees with earlier header", ln+1, line)
			}
			continue
		}
		if snap.Columns == nil {
			return Snapshot{}, fmt.Errorf("line %d: data row before any header", ln+1)
		}
		fields := strings.Split(line, ",")
		extra := len(fields) - len(snap.Columns)
		if extra < 0 {
			return Snapshot{}, fmt.Errorf("line %d: %d fields for %d columns", ln+1, len(fields), len(snap.Columns))
		}
		cell := make(map[string]any, len(snap.Columns))
		cell[snap.Columns[0]] = strings.Join(fields[:extra+1], ",")
		for i := 1; i < len(snap.Columns); i++ {
			raw := fields[extra+i]
			if v, err := strconv.ParseFloat(raw, 64); err == nil {
				cell[snap.Columns[i]] = v
			} else {
				cell[snap.Columns[i]] = raw
			}
		}
		snap.Cells = append(snap.Cells, cell)
	}
	if snap.Columns == nil {
		return Snapshot{}, fmt.Errorf("no CSV header found")
	}
	if len(snap.Cells) == 0 {
		return Snapshot{}, fmt.Errorf("no data rows found")
	}
	return snap, nil
}

// CheckGrid verifies that fresh describes the same measurement grid as
// baseline: same schema id, same columns, same cell count, and cell-by-
// cell agreement on every configuration axis. Measurement columns are
// deliberately not compared.
func CheckGrid(baseline, fresh Snapshot) error {
	if baseline.Schema != fresh.Schema {
		return fmt.Errorf("schema %q vs baseline %q", fresh.Schema, baseline.Schema)
	}
	if strings.Join(baseline.Columns, ",") != strings.Join(fresh.Columns, ",") {
		return fmt.Errorf("columns changed:\n  baseline: %s\n  fresh:    %s",
			strings.Join(baseline.Columns, ","), strings.Join(fresh.Columns, ","))
	}
	if len(baseline.Cells) != len(fresh.Cells) {
		return fmt.Errorf("cell count %d vs baseline %d", len(fresh.Cells), len(baseline.Cells))
	}
	for i := range baseline.Cells {
		for _, ax := range gridAxes {
			b, f := fmt.Sprint(baseline.Cells[i][ax]), fmt.Sprint(fresh.Cells[i][ax])
			if b != f {
				return fmt.Errorf("cell %d: %s = %q vs baseline %q", i, ax, f, b)
			}
		}
	}
	return nil
}
