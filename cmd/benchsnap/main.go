// Command benchsnap normalizes csdsbench -csv output into the JSON
// snapshot format of the repository's perf trajectory, verifies a fresh
// run against a committed baseline, and diffs successive snapshots so
// the accumulated artifacts read as a trend.
//
// The CI bench job runs the fixed grid (scripts/bench_grid.sh), converts
// the CSV to bench.json with this tool, and uploads both as artifacts;
// BENCH_baseline.json in the repository root is the same conversion,
// committed once per machine-visible perf change. -check compares a
// fresh CSV's *grid identity* — schema, columns, and the configuration
// axes of every cell — against the baseline, so the artifact format and
// the measured grid cannot drift silently; measurements themselves are
// expected to differ run to run and host to host and are not compared.
// -diff is the trend half: it matches two JSON snapshots cell by cell
// (by grid axes) and prints per-cell throughput deltas, threshold-free —
// a report for humans and artifacts, never a gate.
//
// Usage:
//
//	benchsnap bench.csv              # print the JSON snapshot
//	benchsnap -out bench.json bench.csv
//	benchsnap -check BENCH_baseline.json bench.csv
//	benchsnap -diff old.json new.json
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// schemaID names the snapshot format; bump it together with the
// csdsbench CSV header and the committed baseline. (v2: the streaming
// cursor refill columns page_pulls,page_pull_keys joined the schema.
// v3: the batched-operation columns batchfrac,batches_per_s,
// batch_mean_keys,batch_mean_ns,combine_frac plus allocs_op.
// v4: the reclamation columns gc_pause_ns,pool_hit_frac plus the ebr
// configuration axis, so ebr-on and ebr-off runs of the same spec are
// distinct grid cells. v5: the net configuration axis — closed-loop
// csdsbench -net cells that measure a csdsd server over loopback are
// distinct from in-process cells of the same spec. v6: the workload
// configuration axis — the csdsbench -workload mix spec, "-" when the
// cell was configured by bare flags — plus the readcache measurement
// columns cache_hit_frac,cache_expiries.)
const schemaID = "csds-bench-v6"

// gridAxes are the configuration columns that define a cell's identity:
// two snapshots describe the same grid iff their cells agree on these
// (measurements may differ).
var gridAxes = []string{"alg", "threads", "size", "updates", "zipf", "ebr", "net", "workload", "scanfrac", "cursorfrac", "batchfrac"}

// Snapshot is the JSON artifact: the column schema plus one entry per
// grid cell, numbers parsed where the column is numeric.
type Snapshot struct {
	Schema  string           `json:"schema"`
	Columns []string         `json:"columns"`
	Cells   []map[string]any `json:"cells"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "-diff" {
		if len(args) != 3 {
			fmt.Fprintln(stderr, "benchsnap: usage: benchsnap -diff old.json new.json")
			return 2
		}
		return runDiff(args[1], args[2], stdout, stderr)
	}
	var out, check string
	var csvPath string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-out":
			i++
			if i == len(args) {
				fmt.Fprintln(stderr, "benchsnap: -out needs a path")
				return 2
			}
			out = args[i]
		case "-check":
			i++
			if i == len(args) {
				fmt.Fprintln(stderr, "benchsnap: -check needs a baseline path")
				return 2
			}
			check = args[i]
		default:
			if strings.HasPrefix(args[i], "-") || csvPath != "" {
				fmt.Fprintf(stderr, "benchsnap: usage: benchsnap [-out file.json] [-check baseline.json] bench.csv\n")
				return 2
			}
			csvPath = args[i]
		}
	}
	if csvPath == "" {
		fmt.Fprintln(stderr, "benchsnap: a bench CSV path is required")
		return 2
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchsnap: %v\n", err)
		return 1
	}
	snap, err := Parse(string(data))
	if err != nil {
		fmt.Fprintf(stderr, "benchsnap: %v\n", err)
		return 1
	}
	if check != "" {
		base, err := os.ReadFile(check)
		if err != nil {
			fmt.Fprintf(stderr, "benchsnap: %v\n", err)
			return 1
		}
		var baseline Snapshot
		if err := json.Unmarshal(base, &baseline); err != nil {
			fmt.Fprintf(stderr, "benchsnap: baseline %s: %v\n", check, err)
			return 1
		}
		if err := CheckGrid(baseline, snap); err != nil {
			fmt.Fprintf(stderr, "benchsnap: grid drifted from %s: %v\n", check, err)
			return 1
		}
		fmt.Fprintf(stdout, "benchsnap: grid matches %s (%d cells)\n", check, len(snap.Cells))
	}
	js, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchsnap: %v\n", err)
		return 1
	}
	js = append(js, '\n')
	if out != "" {
		if err := os.WriteFile(out, js, 0o644); err != nil {
			fmt.Fprintf(stderr, "benchsnap: %v\n", err)
			return 1
		}
	} else if check == "" {
		stdout.Write(js)
	}
	return 0
}

// Parse converts concatenated csdsbench -csv output (one header+row
// block per cell, or one header followed by many rows) into a Snapshot.
// The alg column of composite specs carries literal commas in the
// unquoted CSV, so rows are split right-to-left: the last len(columns)-1
// fields are the numeric columns and everything before them is alg.
func Parse(csv string) (Snapshot, error) {
	snap := Snapshot{Schema: schemaID}
	for ln, line := range strings.Split(csv, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "alg,") {
			cols := strings.Split(line, ",")
			if snap.Columns == nil {
				snap.Columns = cols
			} else if strings.Join(snap.Columns, ",") != line {
				return Snapshot{}, fmt.Errorf("line %d: header %q disagrees with earlier header", ln+1, line)
			}
			continue
		}
		if snap.Columns == nil {
			return Snapshot{}, fmt.Errorf("line %d: data row before any header", ln+1)
		}
		fields := strings.Split(line, ",")
		extra := len(fields) - len(snap.Columns)
		if extra < 0 {
			return Snapshot{}, fmt.Errorf("line %d: %d fields for %d columns", ln+1, len(fields), len(snap.Columns))
		}
		cell := make(map[string]any, len(snap.Columns))
		cell[snap.Columns[0]] = strings.Join(fields[:extra+1], ",")
		for i := 1; i < len(snap.Columns); i++ {
			raw := fields[extra+i]
			if v, err := strconv.ParseFloat(raw, 64); err == nil {
				cell[snap.Columns[i]] = v
			} else {
				cell[snap.Columns[i]] = raw
			}
		}
		snap.Cells = append(snap.Cells, cell)
	}
	if snap.Columns == nil {
		return Snapshot{}, fmt.Errorf("no CSV header found")
	}
	if len(snap.Cells) == 0 {
		return Snapshot{}, fmt.Errorf("no data rows found")
	}
	return snap, nil
}

// diffMetrics are the throughput columns the trend report renders; any
// that a snapshot lacks are skipped (old snapshots survive schema
// growth).
var diffMetrics = []string{"mops", "scans_per_s", "pages_per_s", "page_pull_keys", "batches_per_s", "allocs_op", "gc_pause_ns", "pool_hit_frac", "cache_hit_frac"}

// runDiff loads two snapshots and prints their per-cell delta report.
func runDiff(oldPath, newPath string, stdout, stderr io.Writer) int {
	load := func(path string) (Snapshot, bool) {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "benchsnap: %v\n", err)
			return Snapshot{}, false
		}
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			fmt.Fprintf(stderr, "benchsnap: %s: %v\n", path, err)
			return Snapshot{}, false
		}
		return s, true
	}
	old, ok := load(oldPath)
	if !ok {
		return 1
	}
	fresh, ok := load(newPath)
	if !ok {
		return 1
	}
	Diff(old, fresh, stdout)
	return 0
}

// axisKey renders a cell's grid-axis identity (the join key of Diff and
// the cell label of its report).
func axisKey(cell map[string]any) string {
	parts := make([]string, 0, len(gridAxes))
	for _, ax := range gridAxes {
		parts = append(parts, fmt.Sprintf("%s=%v", ax, cell[ax]))
	}
	return strings.Join(parts, " ")
}

// Diff prints the per-cell throughput deltas between two snapshots,
// matching cells by their grid axes. It is threshold-free by design: the
// perf trajectory is a sequence of artifacts on varying runners, so the
// report renders the trend and leaves judgment to the reader — numbers
// gate nothing. Cells present on only one side are listed, not errors;
// a schema difference is noted and the overlapping metrics still diff.
func Diff(old, fresh Snapshot, w io.Writer) {
	if old.Schema != fresh.Schema {
		fmt.Fprintf(w, "note: schema %s -> %s (diffing the overlapping metrics)\n", old.Schema, fresh.Schema)
	}
	oldByKey := make(map[string]map[string]any, len(old.Cells))
	for _, cell := range old.Cells {
		oldByKey[axisKey(cell)] = cell
	}
	matched := 0
	for _, cell := range fresh.Cells {
		key := axisKey(cell)
		prev, ok := oldByKey[key]
		if !ok {
			fmt.Fprintf(w, "%s\n  new cell (no previous measurement)\n", key)
			continue
		}
		delete(oldByKey, key)
		matched++
		fmt.Fprintln(w, key)
		for _, m := range diffMetrics {
			was, okW := prev[m].(float64)
			now, okN := cell[m].(float64)
			if !okW || !okN {
				continue
			}
			switch {
			case was == 0 && now == 0:
				fmt.Fprintf(w, "  %-14s 0 -> 0\n", m)
			case was == 0:
				fmt.Fprintf(w, "  %-14s 0 -> %.4g\n", m, now)
			default:
				fmt.Fprintf(w, "  %-14s %.4g -> %.4g  (%+.1f%%)\n", m, was, now, (now-was)/was*100)
			}
		}
	}
	for key := range oldByKey {
		fmt.Fprintf(w, "%s\n  cell dropped (present only in the old snapshot)\n", key)
	}
	fmt.Fprintf(w, "%d cells matched, %d new, %d dropped\n", matched, len(fresh.Cells)-matched, len(oldByKey))
}

// CheckGrid verifies that fresh describes the same measurement grid as
// baseline: same schema id, same columns, same cell count, and cell-by-
// cell agreement on every configuration axis. Measurement columns are
// deliberately not compared.
func CheckGrid(baseline, fresh Snapshot) error {
	if baseline.Schema != fresh.Schema {
		return fmt.Errorf("schema %q vs baseline %q", fresh.Schema, baseline.Schema)
	}
	if strings.Join(baseline.Columns, ",") != strings.Join(fresh.Columns, ",") {
		return fmt.Errorf("columns changed:\n  baseline: %s\n  fresh:    %s",
			strings.Join(baseline.Columns, ","), strings.Join(fresh.Columns, ","))
	}
	if len(baseline.Cells) != len(fresh.Cells) {
		return fmt.Errorf("cell count %d vs baseline %d", len(fresh.Cells), len(baseline.Cells))
	}
	for i := range baseline.Cells {
		for _, ax := range gridAxes {
			b, f := fmt.Sprint(baseline.Cells[i][ax]), fmt.Sprint(fresh.Cells[i][ax])
			if b != f {
				return fmt.Errorf("cell %d: %s = %q vs baseline %q", i, ax, f, b)
			}
		}
	}
	return nil
}
