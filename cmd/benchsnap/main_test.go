package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleCSV mimics the grid script's output: one header, then one row
// per cell, with composite specs carrying commas inside the alg column.
const sampleCSV = `alg,threads,size,updates,zipf,ebr,net,workload,mops,perthread_mean,perthread_stddev,waitfrac,restartfrac,restart3frac,maxwait_ns,fallbackfrac,resizes,final_width,scanfrac,scans_per_s,scan_mean_keys,scan_mean_ns,scan_max_ns,cursorfrac,pages_per_s,page_mean_keys,page_mean_ns,page_max_ns,cursor_retry_frac,page_pulls,page_pull_keys,batchfrac,batches_per_s,batch_mean_keys,batch_mean_ns,combine_frac,allocs_op,gc_pause_ns,pool_hit_frac,cache_hit_frac,cache_expiries
list/lazy,4,2048,0.1,0,0,0,-,1.2345,300000.0,1000.0,0.000100,0.000200,0.000000,1234,0.000000,0,0,0.05,100.0,30.0,2000,9000,0.05,400.0,15.0,500,4000,0.001000,1.0,15.2,0,0.0,0.0,0,0.000000,1.50,85000,0.0000,0.0000,0
sharded(8,list/lazy),4,2048,0.1,0,0,0,-,2.3456,600000.0,2000.0,0.000050,0.000100,0.000000,999,0.000000,0,0,0.05,120.0,30.0,1500,8000,0.05,500.0,15.0,400,3000,0.000500,8.4,67.0,0,0.0,0.0,0,0.000000,1.40,85000,0.0000,0.0000,0
elastic(8,list/lazy),4,2048,0.1,0,0,0,-,2.2222,550000.0,2100.0,0.000060,0.000110,0.000000,1111,0.000000,0,8,0.05,110.0,30.0,1600,8500,0.05,480.0,15.0,420,3100,0.000600,8.5,68.0,0,0.0,0.0,0,0.000000,1.45,85000,0.0000,0.0000,0
sharded(32,list/lazy),4,2048,0.1,0,0,0,-,2.4567,620000.0,2200.0,0.000040,0.000090,0.000000,950,0.000000,0,0,0.05,125.0,30.0,1400,7800,0.05,520.0,15.0,380,2900,0.000400,32.6,258.0,0,0.0,0.0,0,0.000000,1.35,85000,0.0000,0.0000,0
elastic(32,list/lazy),4,2048,0.1,0,0,0,-,2.3333,580000.0,2300.0,0.000055,0.000105,0.000000,1050,0.000000,0,32,0.05,115.0,30.0,1550,8200,0.05,490.0,15.0,410,3000,0.000550,32.8,260.0,0,0.0,0.0,0,0.000000,1.42,85000,0.0000,0.0000,0
sharded(32,list/lazy),4,2048,0.1,0,1,0,-,2.6100,620000.0,2200.0,0.000040,0.000090,0.000000,950,0.000000,0,0,0.05,125.0,30.0,1400,7800,0.05,520.0,15.0,380,2900,0.000400,32.6,258.0,0,0.0,0.0,0,0.000000,0.55,30000,0.9312,0.0000,0
elastic(32,list/lazy),4,2048,0.1,0,1,0,-,2.4800,580000.0,2300.0,0.000055,0.000105,0.000000,1050,0.000000,0,32,0.05,115.0,30.0,1550,8200,0.05,490.0,15.0,410,3000,0.000550,32.8,260.0,0,0.0,0.0,0,0.000000,0.60,30000,0.9105,0.0000,0
readcache(1024,list/lazy),4,2048,0.1,0.9,0,0,-,3.1111,780000.0,2500.0,0.000030,0.000080,0.000000,800,0.000000,0,0,0.05,130.0,30.0,1300,7500,0.05,540.0,15.0,360,2800,0.000300,1.0,15.1,0,0.0,0.0,0,0.000000,1.20,85000,0.0000,0.7123,0
sharded(32,list/lazy),4,2048,0.1,0,0,0,-,2.6000,650000.0,2100.0,0.000030,0.000080,0.000000,900,0.000000,0,0,0,0.0,0.0,0,0,0,0.0,0.0,0,0,0.000000,0.0,0.0,0.25,9000.0,64.0,30000,0.000000,0.80,85000,0.0000,0.0000,0
sharded(32,list/lazy),4,2048,0.1,0.9,0,0,-,2.9000,720000.0,2400.0,0.000045,0.000120,0.000000,1100,0.000000,0,0,0,0.0,0.0,0,0,0,0.0,0.0,0,0,0.000000,0.0,0.0,0.25,9500.0,64.0,28000,0.010000,0.75,85000,0.0000,0.0000,0
elastic(32,list/lazy),4,2048,0.1,0,0,0,-,2.5000,630000.0,2200.0,0.000035,0.000085,0.000000,950,0.000000,0,32,0,0.0,0.0,0,0,0,0.0,0.0,0,0,0.000000,0.0,0.0,0.25,8800.0,64.0,31000,0.000000,0.85,85000,0.0000,0.0000,0
elastic(32,list/lazy),4,2048,0.1,0.9,0,0,-,2.8000,700000.0,2500.0,0.000050,0.000125,0.000000,1150,0.000000,0,32,0,0.0,0.0,0,0,0,0.0,0.0,0,0,0.000000,0.0,0.0,0.25,9200.0,64.0,29000,0.012000,0.78,85000,0.0000,0.0000,0
sharded(1,list/lazy),4,2048,0.1,0.9,0,0,-,0.9000,230000.0,3000.0,0.010000,0.002000,0.000100,9000,0.000000,0,0,0,0.0,0.0,0,0,0,0.0,0.0,0,0,0.000000,0.0,0.0,0.25,4000.0,64.0,90000,0.350000,0.90,85000,0.0000,0.0000,0
sharded(32,list/lazy),4,2048,0.05,0.99,0,0,ycsb-b,2.9500,740000.0,2300.0,0.000035,0.000090,0.000000,980,0.000000,0,0,0,0.0,0.0,0,0,0,0.0,0.0,0,0,0.000000,0.0,0.0,0,0.0,0.0,0,0.000000,1.30,85000,0.0000,0.0000,0
readcache(1024,sharded(32,list/lazy)),4,2048,0.05,0.99,0,0,ycsb-b,3.4200,860000.0,2600.0,0.000025,0.000070,0.000000,850,0.000000,0,0,0,0.0,0.0,0,0,0,0.0,0.0,0,0,0.000000,0.0,0.0,0,0.0,0.0,0,0.000000,1.10,85000,0.0000,0.4812,0
sharded(8,list/lazy),4,2048,0.1,0,0,1,-,0.0850,21000.0,800.0,0.000000,0.000000,0.000000,0,0.000000,0,0,0.05,40.0,30.0,60000,200000,0.05,80.0,15.0,30000,90000,0.000000,1.0,15.0,0,0.0,0.0,0,0.000000,4.50,85000,0.0000,0.0000,0
`

func TestParseSample(t *testing.T) {
	snap, err := Parse(sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != schemaID {
		t.Fatalf("schema %q", snap.Schema)
	}
	if len(snap.Columns) != 41 {
		t.Fatalf("parsed %d columns, want 41", len(snap.Columns))
	}
	if len(snap.Cells) != 16 {
		t.Fatalf("parsed %d cells, want 16", len(snap.Cells))
	}
	// Composite specs keep their inner commas intact.
	if got := snap.Cells[1]["alg"]; got != "sharded(8,list/lazy)" {
		t.Fatalf("cell 1 alg = %v", got)
	}
	if got := snap.Cells[1]["mops"]; got != 2.3456 {
		t.Fatalf("cell 1 mops = %v", got)
	}
	if got := snap.Cells[2]["final_width"]; got != 8.0 {
		t.Fatalf("cell 2 final_width = %v", got)
	}
	// The workload axis distinguishes named-mix cells from bare-flag
	// cells; the auto-tuned ycsb-b cell records the derived spec as alg.
	if got := snap.Cells[0]["workload"]; got != "-" {
		t.Fatalf("cell 0 workload = %v, want -", got)
	}
	if got := snap.Cells[14]["workload"]; got != "ycsb-b" {
		t.Fatalf("cell 14 workload = %v, want ycsb-b", got)
	}
	if got := snap.Cells[14]["alg"]; got != "readcache(1024,sharded(32,list/lazy))" {
		t.Fatalf("cell 14 alg = %v (the tuner-derived spec is the cell identity)", got)
	}
	if got := snap.Cells[14]["cache_hit_frac"]; got != 0.4812 {
		t.Fatalf("cell 14 cache_hit_frac = %v", got)
	}
}

func TestParseConcatenatedBlocks(t *testing.T) {
	lines := strings.SplitN(sampleCSV, "\n", 3)
	// header+row, then header+row again (per-invocation output).
	blocks := lines[0] + "\n" + lines[1] + "\n" + lines[0] + "\n" + lines[1] + "\n"
	snap, err := Parse(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Cells) != 2 {
		t.Fatalf("parsed %d cells, want 2", len(snap.Cells))
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"no header here\n1,2,3\n",
		"alg,threads\nonly-one-field\n",
		"alg,threads\n", // header but no rows
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse accepted %q", bad)
		}
	}
}

func TestCheckGridMatchesItself(t *testing.T) {
	snap, err := Parse(sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGrid(snap, snap); err != nil {
		t.Fatalf("snapshot does not match itself: %v", err)
	}
}

func TestCheckGridCatchesDrift(t *testing.T) {
	base, _ := Parse(sampleCSV)
	// A changed configuration axis must be caught...
	fresh, _ := Parse(strings.Replace(sampleCSV, "sharded(8,list/lazy),4,", "sharded(16,list/lazy),4,", 1))
	if err := CheckGrid(base, fresh); err == nil {
		t.Fatal("changed alg axis not caught")
	}
	// ...but changed measurements are fine.
	fresh, _ = Parse(strings.Replace(sampleCSV, "2.3456", "9.9999", 1))
	if err := CheckGrid(base, fresh); err != nil {
		t.Fatalf("measurement change rejected: %v", err)
	}
	// A dropped cell must be caught.
	lines := strings.Split(strings.TrimSpace(sampleCSV), "\n")
	fresh, _ = Parse(strings.Join(lines[:3], "\n") + "\n")
	if err := CheckGrid(base, fresh); err == nil {
		t.Fatal("dropped cell not caught")
	}
}

// TestCommittedBaselineGridMatchesSample: the committed baseline at the
// repository root must describe exactly the grid scripts/bench_grid.sh
// runs (same cells, same axes), so CI's -check pass is meaningful.
func TestCommittedBaselineGrid(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var rt Snapshot
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatalf("baseline is not valid snapshot JSON: %v", err)
	}
	sample, _ := Parse(sampleCSV)
	if err := CheckGrid(rt, sample); err != nil {
		t.Fatalf("committed baseline grid disagrees with the documented grid: %v", err)
	}
}

// TestDiffReport: the trend diff matches cells by grid axes, renders
// per-metric deltas, and treats added/dropped cells as report lines,
// never errors (the diff is threshold-free by contract).
func TestDiffReport(t *testing.T) {
	old, err := Parse(sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := Parse(strings.Replace(sampleCSV, "1.2345", "2.4690", 1))
	var out strings.Builder
	Diff(old, fresh, &out)
	report := out.String()
	if !strings.Contains(report, "mops") || !strings.Contains(report, "(+100.0%)") {
		t.Fatalf("doubled mops not reported as +100%%:\n%s", report)
	}
	if !strings.Contains(report, "16 cells matched, 0 new, 0 dropped") {
		t.Fatalf("matched-cell summary missing:\n%s", report)
	}
	// A cell present on only one side is reported, not fatal.
	lines := strings.Split(strings.TrimSpace(sampleCSV), "\n")
	shrunk, _ := Parse(strings.Join(lines[:6], "\n") + "\n")
	out.Reset()
	Diff(old, shrunk, &out)
	if !strings.Contains(out.String(), "dropped") {
		t.Fatalf("dropped cell not reported:\n%s", out.String())
	}
	out.Reset()
	Diff(shrunk, old, &out)
	if !strings.Contains(out.String(), "new cell") {
		t.Fatalf("new cell not reported:\n%s", out.String())
	}
}

// TestDiffCLI drives the -diff surface end to end.
func TestDiffCLI(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "bench.csv")
	if err := os.WriteFile(csv, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	oldJSON := filepath.Join(dir, "old.json")
	newJSON := filepath.Join(dir, "new.json")
	var out, errOut strings.Builder
	if code := run([]string{"-out", oldJSON, csv}, &out, &errOut); code != 0 {
		t.Fatalf("convert exited %d: %s", code, errOut.String())
	}
	if err := os.WriteFile(csv, []byte(strings.Replace(sampleCSV, "2.3456", "9.9999", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-out", newJSON, csv}, &out, &errOut); code != 0 {
		t.Fatalf("convert exited %d: %s", code, errOut.String())
	}
	out.Reset()
	if code := run([]string{"-diff", oldJSON, newJSON}, &out, &errOut); code != 0 {
		t.Fatalf("-diff exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "cells matched") {
		t.Fatalf("diff output missing summary:\n%s", out.String())
	}
	// Usage and IO errors exit nonzero.
	if code := run([]string{"-diff", oldJSON}, &out, &errOut); code == 0 {
		t.Fatal("-diff with one path accepted")
	}
	if code := run([]string{"-diff", oldJSON, filepath.Join(dir, "nope.json")}, &out, &errOut); code == 0 {
		t.Fatal("-diff with a missing file accepted")
	}
}

// TestRunEndToEnd drives the CLI surface: convert, write, and check.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "bench.csv")
	if err := os.WriteFile(csv, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonOut := filepath.Join(dir, "bench.json")
	var out, errOut strings.Builder
	if code := run([]string{"-out", jsonOut, csv}, &out, &errOut); code != 0 {
		t.Fatalf("convert exited %d: %s", code, errOut.String())
	}
	// The emitted JSON is a valid baseline for its own CSV.
	if code := run([]string{"-check", jsonOut, csv}, &out, &errOut); code != 0 {
		t.Fatalf("self-check exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "grid matches") {
		t.Fatalf("check did not confirm: %s", out.String())
	}
	// A drifted grid fails the check.
	drifted := strings.Replace(sampleCSV, "list/lazy,4,", "list/lazy,8,", 1)
	if err := os.WriteFile(csv, []byte(drifted), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check", jsonOut, csv}, &out, &errOut); code == 0 {
		t.Fatal("drifted grid passed -check")
	}
	if !strings.Contains(errOut.String(), "grid drifted") {
		t.Fatalf("drift error not actionable: %s", errOut.String())
	}
	// Bad flags and missing files exit nonzero.
	if code := run([]string{}, &out, &errOut); code == 0 {
		t.Fatal("no arguments accepted")
	}
	if code := run([]string{filepath.Join(dir, "nope.csv")}, &out, &errOut); code == 0 {
		t.Fatal("missing file accepted")
	}
}
