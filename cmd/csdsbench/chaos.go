// The wire chaos cell: csdsbench -net -fault replaces the
// duration-driven closed loop with a fixed per-worker operation budget
// (so firing counts reproduce exactly for a given plan seed), injects
// client-side wire faults from the same deterministic plan grammar the
// server and harness use, drives every operation through the client's
// deadline/retry/backoff discipline, and proves the recovery story the
// only way that matters over a network: every write the server
// acknowledged must still be readable when the dust settles.
//
// Client-side points honored here: conn.drop severs the connection
// before an operation (the next request observes a transport fault and
// redials under the policy), op.delay and conn.slow stall the think
// loop. Server-side points (shed.busy, handler.panic, conn.* on the
// accept side, ...) come from the csdsd the cell targets — start it
// with its own -fault to compose both ends; the recovery evidence
// (client retries, write reissues) folds into the same hit count.
package main

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"csds/internal/core"
	"csds/internal/fault"
	"csds/internal/harness"
	"csds/internal/server"
	"csds/internal/stats"
	"csds/internal/workload"
	"csds/internal/xrand"
)

const (
	// netChaosOps is the fixed per-worker operation budget. Fixed —
	// not duration-derived — so a (plan, seed, threads) triple fires
	// exactly the same faults on every run.
	netChaosOps = 4096
	// netChaosTrackEvery: every N-th operation is a tracked write to
	// the worker's private key stripe; its acknowledgement is recorded
	// and verified present after the run.
	netChaosTrackEvery = 8
	// netChaosWriteTries bounds the reissue loop for a failed write
	// (both provably-unexecuted sheds and unknown-outcome transport
	// faults — reissue is safe because stores are insert-if-absent and
	// deletes are idempotent).
	netChaosWriteTries = 10
)

// netChaosInfo is what the chaos cell learned, for the text report.
// The zero value (Armed false) means the plain net path ran instead.
type netChaosInfo struct {
	Armed   bool
	Budget  int    // per-worker operation budget
	Ops     uint64 // operations completed across all workers
	Hits    uint64 // operations that hit an injected fault or engaged recovery
	Retries uint64 // client-level retry attempts beyond the first
	Acked   uint64 // tracked stripe writes acknowledged (all verified)
	Tally   *fault.Tally
}

func netChaosRun(addr string, cfg harness.Config, plan *fault.Plan) (harness.Result, netChaosInfo, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xD1CE
	}
	cfg.Runs = 1 // one deterministic pass; averaging would blur the firing counts
	cfg.Workload = cfg.Workload.WithDefaults()
	gen := workload.NewGenerator(cfg.Workload)
	if err := netChaosPrefill(addr, gen.Config()); err != nil {
		return harness.Result{}, netChaosInfo{}, err
	}

	tally := fault.NewTally()
	ths := make([]stats.Thread, cfg.Threads)
	workers := make([]*chaosWorker, cfg.Threads)
	// Private write stripes live above the workload key space so no
	// other worker's deletes (or the mix's own churn) can legitimately
	// remove an acknowledged key — a miss at verification time is
	// therefore always a lost write, never a false alarm.
	stripeBase := gen.Config().KeySpace + 1
	const stripe = int64(2 * netChaosOps / netChaosTrackEvery)
	for w := range workers {
		c, err := server.DialRetry(addr, 5*time.Second)
		if err != nil {
			for _, cw := range workers[:w] {
				cw.c.Close()
			}
			return harness.Result{}, netChaosInfo{}, fmt.Errorf("csdsbench: %w", err)
		}
		c.Policy = server.RetryPolicy{Budget: 8, OpDeadline: 2 * time.Second}
		workers[w] = &chaosWorker{
			c:    c,
			gen:  gen,
			inj:  fault.NewInjector(plan, uint64(w), tally),
			rng:  xrand.New(cfg.Seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15),
			th:   &ths[w],
			base: stripeBase + int64(w)*stripe,
		}
	}
	defer func() {
		for _, cw := range workers {
			cw.c.Close()
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, cfg.Threads)
	start := make(chan struct{})
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			errs[w] = workers[w].run(netChaosOps)
		}(w)
	}
	close(start)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return harness.Result{}, netChaosInfo{}, fmt.Errorf("csdsbench: chaos worker: %w", err)
		}
	}

	// Verification: every acknowledged stripe write must be present.
	// A fresh, fault-free connection does the reading (still under the
	// retry policy, so server-side residual faults cannot fail the
	// verification spuriously).
	vc, err := server.DialRetry(addr, 5*time.Second)
	if err != nil {
		return harness.Result{}, netChaosInfo{}, fmt.Errorf("csdsbench: chaos verify: %w", err)
	}
	vc.Policy = server.RetryPolicy{Budget: 8, OpDeadline: 2 * time.Second}
	defer vc.Close()
	var acked uint64
	lost := 0
	for _, cw := range workers {
		for _, k := range cw.acked {
			acked++
			_, hit, err := vc.Get(k)
			if err != nil {
				return harness.Result{}, netChaosInfo{}, fmt.Errorf("csdsbench: chaos verify: %w", err)
			}
			if !hit {
				lost++
			}
		}
	}
	if lost > 0 {
		return harness.Result{}, netChaosInfo{},
			fmt.Errorf("csdsbench: chaos: %d of %d acknowledged writes lost", lost, acked)
	}

	res := harness.SummarizeThreads(cfg, ths)
	res.Faults = tally.Total()
	res.FaultFires = tally.Snapshot()
	info := netChaosInfo{Armed: true, Budget: netChaosOps, Acked: acked, Tally: tally}
	for _, cw := range workers {
		info.Ops += cw.ops
		info.Hits += cw.hits
		info.Retries += cw.c.Retries
	}
	return res, info, nil
}

// netChaosPrefill fills the remote structure like netPrefill, but one
// reissued store at a time: the target server may already be under its
// own fault plan, so busy sheds and dropped connections during the fill
// are expected, not fatal.
func netChaosPrefill(addr string, w workload.Config) error {
	c, err := server.DialRetry(addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	c.Policy = server.RetryPolicy{Budget: 8, OpDeadline: 2 * time.Second}
	n := 0
	for k := int64(1); k <= w.KeySpace && n < w.Size; k += 2 {
		for attempt := 0; ; attempt++ {
			_, err := c.Set(core.Key(k), core.Value(k))
			if err == nil {
				break
			}
			if attempt >= netChaosWriteTries {
				return fmt.Errorf("csdsbench: chaos prefill: %w", err)
			}
			var re *server.RetryableError
			if !errors.As(err, &re) {
				if rerr := c.Redial(); rerr != nil {
					return fmt.Errorf("csdsbench: chaos prefill: %w", err)
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
		n++
	}
	return nil
}

// chaosWorker is one connection's share of the budget: the standard
// workload mix plus periodic tracked writes, every operation carrying
// the client-side injector draws in a fixed order (so the draw index —
// and therefore the firing schedule — depends only on the op index).
type chaosWorker struct {
	c     *server.Client
	gen   *workload.Generator
	inj   *fault.Injector
	rng   *xrand.Rng
	th    *stats.Thread
	base  int64      // private stripe base key
	seq   int64      // next stripe offset
	acked []core.Key // stripe keys the server acknowledged
	ops   uint64
	hits  uint64
}

func (w *chaosWorker) run(budget int) error {
	t0 := time.Now()
	defer func() { w.th.ActiveNs = uint64(time.Since(t0)) }()
	for n := 0; n < budget; n++ {
		w.ops++
		retries0 := w.c.Retries
		faulted := false
		// Client-side wire faults, drawn in a fixed order every op.
		if w.inj.Fire(fault.ConnDrop) {
			w.c.Sever()
			faulted = true
		}
		if w.inj.Delay(fault.OpDelay) {
			faulted = true
		}
		if w.inj.Delay(fault.ConnSlow) {
			faulted = true
		}
		var err error
		if n%netChaosTrackEvery == 0 {
			err = w.trackedWrite(&faulted)
		} else {
			err = w.mixedOp(&faulted)
		}
		if err != nil {
			return err
		}
		if w.c.Retries > retries0 {
			faulted = true
		}
		if faulted {
			w.hits++
		}
	}
	return nil
}

// trackedWrite stores the next private-stripe key and records the
// acknowledgement. NOT_STORED on a stripe key still acknowledges it:
// only this worker writes the stripe, so a duplicate means an earlier
// reissued attempt already landed.
func (w *chaosWorker) trackedWrite(faulted *bool) error {
	k := core.Key(w.base + w.seq)
	w.seq++
	stored, err := w.setReissued(k, core.Value(k), faulted)
	if err != nil {
		return err
	}
	w.th.RecordInsert(stored)
	w.acked = append(w.acked, k)
	return nil
}

// setReissued is the write discipline the client deliberately does not
// hide: a busy shed (provably unexecuted) reissues on the same
// connection; a transport fault redials first — reissue is still safe
// because the store is insert-if-absent — all bounded by the tries cap.
func (w *chaosWorker) setReissued(k core.Key, v core.Value, faulted *bool) (bool, error) {
	backoff := 2 * time.Millisecond
	for attempt := 0; ; attempt++ {
		stored, err := w.c.Set(k, v)
		if err == nil {
			return stored, nil
		}
		if attempt >= netChaosWriteTries {
			return false, err
		}
		*faulted = true
		var re *server.RetryableError
		if !errors.As(err, &re) {
			if rerr := w.c.Redial(); rerr != nil {
				return false, err
			}
		}
		time.Sleep(backoff)
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}

// deleteReissued mirrors setReissued for removes (idempotent: a
// reissued delete of an already-removed key answers NOT_FOUND).
func (w *chaosWorker) deleteReissued(k core.Key, faulted *bool) (bool, error) {
	backoff := 2 * time.Millisecond
	for attempt := 0; ; attempt++ {
		deleted, err := w.c.Delete(k)
		if err == nil {
			return deleted, nil
		}
		if attempt >= netChaosWriteTries {
			return false, err
		}
		*faulted = true
		var re *server.RetryableError
		if !errors.As(err, &re) {
			if rerr := w.c.Redial(); rerr != nil {
				return false, err
			}
		}
		time.Sleep(backoff)
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}

// mixedOp draws one operation from the workload mix. Reads, pages and
// mgets ride the client's transparent retry; writes go through the
// reissue loops above; the pipelined Multi* trains — which the client
// never retries (the caller owns pipeline recovery) — are abandoned on
// a fault and the connection replaced, exactly the recovery a real
// pipelined producer performs.
func (w *chaosWorker) mixedOp(faulted *bool) error {
	switch op := w.gen.NextOp(w.rng); op {
	case workload.OpGet:
		_, hit, err := w.c.Get(w.gen.Key(w.rng))
		if err != nil {
			return err
		}
		w.th.RecordRead(hit)
	case workload.OpPut:
		k := w.gen.Key(w.rng)
		stored, err := w.setReissued(k, core.Value(k), faulted)
		if err != nil {
			return err
		}
		w.th.RecordInsert(stored)
	case workload.OpRemove:
		deleted, err := w.deleteReissued(w.gen.Key(w.rng), faulted)
		if err != nil {
			return err
		}
		w.th.RecordRemove(deleted)
	case workload.OpScan:
		lo, hi := w.gen.ScanRange(w.rng)
		keys := 0
		scanStart := time.Now()
		token, done, err := w.c.Range(lo, hi, netPagePull, func(core.Key, core.Value) { keys++ })
		for err == nil && !done {
			token, done, err = w.c.Page(token, netPagePull, func(core.Key, core.Value) { keys++ })
		}
		if err != nil {
			return err
		}
		w.th.RecordScan(keys, uint64(time.Since(scanStart)))
	case workload.OpCursorScan:
		lo, hi := w.gen.ScanRange(w.rng)
		var token string
		var done bool
		var err error
		first := true
		for !done {
			keys := 0
			n := int(w.gen.PageLen(w.rng))
			pageStart := time.Now()
			if first {
				token, done, err = w.c.Range(lo, hi, n, func(core.Key, core.Value) { keys++ })
				first = false
			} else {
				token, done, err = w.c.Page(token, n, func(core.Key, core.Value) { keys++ })
			}
			if err != nil {
				return err
			}
			w.th.RecordPage(keys, uint64(time.Since(pageStart)))
		}
		w.th.RecordCursorScan()
	case workload.OpMultiGet:
		n := int(w.gen.BatchLen(w.rng))
		keys := make([]core.Key, n)
		vals := make([]core.Value, n)
		oks := make([]bool, n)
		for i := range keys {
			keys[i] = w.gen.Key(w.rng)
		}
		batchStart := time.Now()
		if err := w.c.MultiGet(keys, vals, oks); err != nil {
			return err
		}
		w.th.RecordBatch(n, uint64(time.Since(batchStart)))
	case workload.OpMultiPut, workload.OpMultiRemove:
		if err := w.pipelinedTrain(op, faulted); err != nil {
			return err
		}
	}
	return nil
}

// pipelinedTrain sends one Multi* burst through the explicit pipeline
// layer. A fault anywhere in the train abandons it (the responses
// already consumed stand; the rest are unknowable on a torn stream)
// and replaces the connection — these writes are untracked, so the
// verification phase never depends on their outcome.
func (w *chaosWorker) pipelinedTrain(op workload.Op, faulted *bool) error {
	n := int(w.gen.BatchLen(w.rng))
	batchStart := time.Now()
	abandon := func(err error) error {
		*faulted = true
		if rerr := w.c.Redial(); rerr != nil {
			return fmt.Errorf("train fault %v, redial: %w", err, rerr)
		}
		return nil
	}
	for i := 0; i < n; i++ {
		k := w.gen.Key(w.rng)
		var err error
		if op == workload.OpMultiPut {
			err = w.c.PipeSet(k, core.Value(k))
		} else {
			err = w.c.PipeDelete(k)
		}
		if err != nil {
			return abandon(err)
		}
	}
	if err := w.c.Flush(); err != nil {
		return abandon(err)
	}
	for i := 0; i < n; i++ {
		var err error
		if op == workload.OpMultiPut {
			_, err = w.c.RecvStored()
		} else {
			_, err = w.c.RecvDeleted()
		}
		if err != nil && !errors.Is(err, server.ErrBusy) {
			return abandon(err)
		}
		if errors.Is(err, server.ErrBusy) {
			*faulted = true
		}
	}
	w.th.RecordBatch(n, uint64(time.Since(batchStart)))
	return nil
}
