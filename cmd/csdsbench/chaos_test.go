// End-to-end wire chaos: a real csdsd-shaped server (with its own
// server-side fault plan) serves a csdsbench -net -fault cell. The cell
// must complete with every acknowledged write verified present, report
// a fault-hit fraction above the acceptance floor, and — because the
// plan grammar is deterministic — reproduce its client-side firing
// tally exactly on a second identical run.
package main

import (
	"context"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"csds/internal/fault"
	"csds/internal/server"
)

func startChaosServer(t *testing.T, faultSpec string) (addr string, shutdown func() error) {
	t.Helper()
	plan, err := fault.ParsePlan(faultSpec)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Spec: "sharded(4,hashtable/lazy)", Size: 1 << 12,
		UseEBR: true, MaxInflight: 64, Fault: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	return l.Addr().String(), func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		<-serveDone
		return err
	}
}

// reportLine returns the first line of out starting with prefix.
func reportLine(t *testing.T, out, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	t.Fatalf("report missing %q line:\n%s", prefix, out)
	return ""
}

func TestNetChaosCell(t *testing.T) {
	// Server-side sheds compose with the client-side wire faults; both
	// ends' recovery discipline is in the loop.
	addr, shutdown := startChaosServer(t, "shed.busy:every=31;seed=5")
	const clientSpec = "conn.drop:every=29;op.delay:every=17,min=1us,max=20us;seed=3"
	runCell := func() string {
		var out, errOut strings.Builder
		code := run([]string{
			"-net", addr, "-fault", clientSpec,
			"-threads", "2", "-size", "256", "-runs", "1",
		}, &out, &errOut)
		if code != 0 {
			t.Fatalf("chaos cell exited %d (stderr: %s)", code, errOut.String())
		}
		return out.String()
	}

	out := runCell()
	for _, want := range []string{
		"net chaos", "fault tally", "all verified present",
		"conn.drop=", "op.delay=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	// The acceptance floor: at least 5% of operations hit an injected
	// fault (op.delay every 17 alone guarantees ~5.9%).
	fields := strings.Fields(reportLine(t, out, "fault hit frac"))
	frac, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		t.Fatalf("unparseable hit frac in %q: %v", fields, err)
	}
	if frac < 0.05 {
		t.Fatalf("fault hit frac %.4f below the 5%% floor:\n%s", frac, out)
	}

	// Same plan, same seed, same budget: the client-side firing tally
	// must reproduce verbatim.
	out2 := runCell()
	t1 := reportLine(t, out, "fault tally")
	t2 := reportLine(t, out2, "fault tally")
	if t1 != t2 {
		t.Fatalf("firing tally not reproducible:\n run 1: %s\n run 2: %s", t1, t2)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}
}

// TestNetChaosRejectsBadSpec: a malformed or typo'd schedule fails up
// front with the parser's message, never a silent no-fault run.
func TestNetChaosRejectsBadSpec(t *testing.T) {
	for _, bad := range []string{"nosuch.point:p=0.1", "conn.drop", "conn.drop:p=2"} {
		var out, errOut strings.Builder
		if code := run([]string{"-fault", bad, "-dur", "10ms", "-runs", "1", "-threads", "1"}, &out, &errOut); code == 0 {
			t.Fatalf("-fault %q accepted", bad)
		} else if !strings.Contains(errOut.String(), "-fault") {
			t.Fatalf("-fault %q: stderr does not point at the flag:\n%s", bad, errOut.String())
		}
	}
}

// TestLocalFaultReport: a local harness run under a plan reports the
// injected-fault tally line; a plain run never shows it.
func TestLocalFaultReport(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-alg", "sharded(2,list/lazy)", "-threads", "2", "-size", "128",
		"-dur", "60ms", "-runs", "1", "-ebr", "-fault", "chaos:seed=7",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("local fault run exited %d (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "faults injected") {
		t.Fatalf("report missing the injected-fault tally:\n%s", out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-alg", "list/lazy", "-threads", "1", "-dur", "20ms", "-runs", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("plain run exited %d", code)
	}
	if strings.Contains(out.String(), "faults injected") {
		t.Fatalf("fault-free report shows the fault line:\n%s", out.String())
	}
}
