// Command csdsbench runs a single experiment cell of the measurement
// harness against any registered algorithm and prints every metric the
// paper reports, in plain text or CSV.
//
// The -alg flag accepts composite specifications built from structure
// combinators as well as plain registry names.
//
// Examples:
//
//	csdsbench -alg list/lazy -threads 20 -size 2048 -updates 0.1 -dur 5s -runs 11
//	csdsbench -alg 'sharded(16,list/lazy)' -threads 20 -zipf 0.8
//	csdsbench -alg 'readcache(1024,bst/tk)' -updates 0.01
//	csdsbench -alg hashtable/lazy -elide 5 -threads 32
//	csdsbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"csds/internal/core"
	"csds/internal/harness"
	"csds/internal/interrupt"
	"csds/internal/workload"

	_ "csds/internal/bst"
	_ "csds/internal/combinator"
	_ "csds/internal/hashtable"
	_ "csds/internal/list"
	_ "csds/internal/skiplist"
)

func main() {
	alg := flag.String("alg", "list/lazy", "algorithm spec: a name or composite like 'sharded(16,list/lazy)' (see -list)")
	threads := flag.Int("threads", 20, "worker goroutines")
	size := flag.Int("size", 2048, "structure size")
	updates := flag.Float64("updates", 0.1, "update ratio")
	zipf := flag.Float64("zipf", 0, "Zipfian exponent (0 = uniform)")
	dur := flag.Duration("dur", 500*time.Millisecond, "measurement window per run")
	runs := flag.Int("runs", 3, "runs to average (paper: 11)")
	elide := flag.Int("elide", 0, "HTM elision attempts (0 = plain locks)")
	ebrOn := flag.Bool("ebr", false, "attach epoch-based reclamation")
	delayed := flag.Int("delayed", 0, "number of Figure 9 victim threads")
	csv := flag.Bool("csv", false, "CSV output")
	listAlgs := flag.Bool("list", false, "list registered algorithms and exit")
	flag.Parse()

	if *listAlgs {
		for _, n := range core.Names() {
			info, _ := core.Lookup(n)
			star := " "
			if info.Featured {
				star = "*"
			}
			fmt.Printf("%s %-24s %-10s %s\n", star, n, info.Progress, info.Desc)
		}
		fmt.Println("\ncombinators (compose as comb(N,spec), nesting allowed):")
		for _, c := range core.Combinators() {
			fmt.Printf("  %-26s %s\n", fmt.Sprintf("%s(%s,spec)", c.Name, c.ArgDesc), c.Desc)
		}
		return
	}

	cfg := harness.Config{
		Algorithm: *alg, Threads: *threads, Duration: *dur, Runs: *runs,
		ElideAttempts: *elide, UseEBR: *ebrOn,
		Workload: workload.Config{Size: *size, UpdateRatio: *updates, ZipfS: *zipf},
	}
	if *delayed > 0 {
		cfg.DelayedThreads = *delayed
		cfg.DelayPlan = interrupt.PaperDelayPlan()
	}
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csdsbench: %v\n", err)
		fmt.Fprintf(os.Stderr, "hint: run 'csdsbench -list' for registered algorithms and combinators;\n")
		fmt.Fprintf(os.Stderr, "      composite specs look like 'sharded(16,list/lazy)' or 'readcache(1024,bst/tk)'\n")
		os.Exit(1)
	}
	if *csv {
		fmt.Println("alg,threads,size,updates,zipf,mops,perthread_mean,perthread_stddev,waitfrac,restartfrac,restart3frac,maxwait_ns,fallbackfrac")
		fmt.Printf("%s,%d,%d,%g,%g,%.4f,%.1f,%.1f,%.6f,%.6f,%.6f,%d,%.6f\n",
			*alg, *threads, *size, *updates, *zipf,
			res.Throughput/1e6, res.PerThreadMean, res.PerThreadStddev,
			res.WaitFraction, res.RestartedFrac, res.RestartedFrac3,
			res.MaxWaitNs, res.FallbackFrac)
		return
	}
	fmt.Printf("algorithm          %s\n", *alg)
	fmt.Printf("threads/size/upd   %d / %d / %.0f%%  (zipf %g)\n", *threads, *size, *updates*100, *zipf)
	fmt.Printf("window x runs      %v x %d\n", *dur, *runs)
	fmt.Printf("throughput         %.3f Mops/s (%d ops total)\n", res.Throughput/1e6, res.TotalOps)
	fmt.Printf("per-thread         mean %.0f ops/s, stddev %.0f\n", res.PerThreadMean, res.PerThreadStddev)
	fmt.Printf("lock wait frac     %.6f (stddev %.6f), worst single wait %v\n",
		res.WaitFraction, res.WaitFractionStddev, time.Duration(res.MaxWaitNs))
	fmt.Printf("waiting acq frac   %.6f\n", res.WaitingOpsFrac)
	fmt.Printf("restarted >=1x     %.6f   >3x %.6f\n", res.RestartedFrac, res.RestartedFrac3)
	fmt.Printf("restart histogram  %v\n", res.RestartHist)
	if res.FallbackFrac > 0 || *elide > 0 {
		fmt.Printf("HTM fallback frac  %.6f (aborts: conflict=%d interrupt=%d fallback-held=%d capacity=%d)\n",
			res.FallbackFrac, res.TxAborts[0], res.TxAborts[1], res.TxAborts[2], res.TxAborts[3])
	}
	if *ebrOn {
		fmt.Printf("EBR                retired %d, reclaimed %d\n", res.Retired, res.Reclaimed)
	}
}
