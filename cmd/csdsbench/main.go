// Command csdsbench runs a single experiment cell of the measurement
// harness against any registered algorithm and prints every metric the
// paper reports, in plain text or CSV.
//
// The -alg flag accepts composite specifications built from structure
// combinators as well as plain registry names. Elastic composites
// (elastic(N,spec)) additionally accept a resize schedule (-resize-at)
// and an adaptive grow/shrink policy (-elastic-grow / -elastic-shrink /
// -elastic-growwait); the report then includes the width-over-time trace.
//
// Examples:
//
//	csdsbench -alg list/lazy -threads 20 -size 2048 -updates 0.1 -dur 5s -runs 11
//	csdsbench -alg 'sharded(16,list/lazy)' -threads 20 -zipf 0.8
//	csdsbench -alg 'striped(8,skiplist/herlihy)' -scan-frac 0.2 -scan-len 128
//	csdsbench -alg 'sharded(8,list/lazy)' -cursor-frac 0.1 -page-len 50
//	csdsbench -alg 'elastic(1,list/lazy)' -resize-at '100ms:8,300ms:2'
//	csdsbench -alg 'elastic(1,list/lazy)' -elastic-growwait 0.05 -elastic-max 32
//	csdsbench -alg hashtable/lazy -elide 5 -threads 32
//	csdsbench -workload ycsb-b -threads 4 -size 2048
//	csdsbench -workload 'flash:updates=0.2' -alg 'sharded(8,list/lazy)'
//	csdsbench -workload ycsb-b -auto-spec -alg list/lazy -threads 4
//	csdsbench -alg 'readcache(512,list/lazy)' -cache-ttl 50ms -cache-admit tinylfu
//	csdsbench -list
//
// -workload selects a named operation mix (the catalog is in -list and
// README "Production workloads"): the mix sets the update ratio, skew,
// scan/cursor/batch tails and any time-varying dynamics (flash crowds,
// working-set drift, diurnal think time), and explicitly-set flags
// override the mix field by field. -auto-spec derives the composite
// structure from the workload instead of taking it from -alg: the tuner
// (cmd/csdsmodel, internal/tuner) picks the shard width, cache capacity
// and page-size hint, and the derived spec becomes the CSV alg column,
// so auto-tuned cells are honest about what was measured.
//
// A -scan-frac above 0 dedicates that fraction of operations to
// linearizable range scans (every structure and combinator implements
// them); scans are measured apart from point operations and reported on
// their own rows. A -cursor-frac above 0 likewise dedicates operations
// to paginated (cursor) scans — each draws a window and pages through it
// with -page-len sized batches — measured apart from both point ops and
// one-shot scans (pages/sec, keys/page, page latency, retries/page).
// A -batch-frac above 0 dedicates operations to batched Multi* calls of
// -batch-len keys (every structure and combinator implements
// core.Batcher); batches report their own rows — batches/sec,
// keys/batch, batch latency, and the fraction that traveled a
// flat-combining publication list — plus an allocs/op column:
//
//	csdsbench -alg 'sharded(32,list/lazy)' -batch-frac 0.25 -batch-len 64 -zipf 0.9
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"csds/internal/combinator"
	"csds/internal/core"
	"csds/internal/fault"
	"csds/internal/harness"
	"csds/internal/interrupt"
	"csds/internal/tuner"
	"csds/internal/workload"

	_ "csds/internal/bst"
	_ "csds/internal/hashtable"
	_ "csds/internal/list"
	_ "csds/internal/skiplist"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// csvHeader is the pinned -csv schema. CI parses it (the bench artifact
// and the committed BENCH_baseline.json are derived from these columns),
// so changes here must be deliberate: update the smoke test, the
// benchsnap tool's expectations, and regenerate the baseline together.
const csvHeader = "alg,threads,size,updates,zipf,ebr,net,workload,mops,perthread_mean,perthread_stddev,waitfrac,restartfrac,restart3frac,maxwait_ns,fallbackfrac,resizes,final_width,scanfrac,scans_per_s,scan_mean_keys,scan_mean_ns,scan_max_ns,cursorfrac,pages_per_s,page_mean_keys,page_mean_ns,page_max_ns,cursor_retry_frac,page_pulls,page_pull_keys,batchfrac,batches_per_s,batch_mean_keys,batch_mean_ns,combine_frac,allocs_op,gc_pause_ns,pool_hit_frac,cache_hit_frac,cache_expiries"

// benchOpts holds every flag's destination. The FlagSet they register on
// (newFlags) is the single source of flag documentation: -list prints
// its roster and the unknown-algorithm hint derives from it too, so the
// help text cannot drift from the registered flags.
type benchOpts struct {
	alg        *string
	threads    *int
	size       *int
	updates    *float64
	scanFrac   *float64
	scanLen    *int64
	scanDist   *string
	cursorFrac *float64
	pageLen    *int64
	pageDist   *string
	batchFrac  *float64
	batchLen   *int64
	batchDist  *string
	zipf       *float64
	dur        *time.Duration
	runs       *int
	elide      *int
	ebrOn      *bool
	delayed    *int
	resizeAt   *string
	egrow      *float64
	eshrink    *float64
	egrowWait  *float64
	emin       *int
	emax       *int
	einterval  *time.Duration
	net        *string
	faultSpec  *string
	wl         *string
	autoSpec   *bool
	cacheTTL   *time.Duration
	cacheAdmit *string
	csv        *bool
	listAlgs   *bool
}

// newFlags registers the full csdsbench flag table on a fresh FlagSet.
func newFlags(stderr io.Writer) (*flag.FlagSet, *benchOpts) {
	fs := flag.NewFlagSet("csdsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := &benchOpts{
		alg:        fs.String("alg", "list/lazy", "algorithm spec: a name or composite like 'sharded(16,list/lazy)' (see -list)"),
		threads:    fs.Int("threads", 20, "worker goroutines"),
		size:       fs.Int("size", 2048, "structure size"),
		updates:    fs.Float64("updates", 0.1, "update ratio"),
		scanFrac:   fs.Float64("scan-frac", 0, "fraction of operations that are range scans (0 = none)"),
		scanLen:    fs.Int64("scan-len", 64, "mean scan length in keys of the key space"),
		scanDist:   fs.String("scan-dist", "uniform", "scan-length distribution: uniform, fixed or geometric"),
		cursorFrac: fs.Float64("cursor-frac", 0, "fraction of operations that are paginated (cursor) scans (0 = none)"),
		pageLen:    fs.Int64("page-len", 16, "mean cursor page size in keys per batch"),
		pageDist:   fs.String("page-dist", "uniform", "page-size distribution: uniform, fixed or geometric"),
		batchFrac:  fs.Float64("batch-frac", 0, "fraction of operations that are batched Multi* calls (0 = none)"),
		batchLen:   fs.Int64("batch-len", 64, "mean batch length in keys per Multi* call"),
		batchDist:  fs.String("batch-dist", "uniform", "batch-length distribution: uniform, fixed or geometric"),
		zipf:       fs.Float64("zipf", 0, "Zipfian exponent (0 = uniform)"),
		dur:        fs.Duration("dur", 500*time.Millisecond, "measurement window per run"),
		runs:       fs.Int("runs", 3, "runs to average (paper: 11)"),
		elide:      fs.Int("elide", 0, "HTM elision attempts (0 = plain locks)"),
		ebrOn:      fs.Bool("ebr", false, "attach epoch-based reclamation"),
		delayed:    fs.Int("delayed", 0, "number of Figure 9 victim threads"),
		resizeAt:   fs.String("resize-at", "", "resize schedule for elastic specs: 'dur:width[,dur:width...]', e.g. '100ms:8,300ms:2'"),
		egrow:      fs.Float64("elastic-grow", 0, "adaptive policy: double the width when per-shard ops/s exceeds this (0 = off)"),
		eshrink:    fs.Float64("elastic-shrink", 0, "adaptive policy: halve the width when per-shard ops/s falls below this (0 = off)"),
		egrowWait:  fs.Float64("elastic-growwait", 0, "adaptive policy: double the width when the lock-wait fraction exceeds this (0 = off)"),
		emin:       fs.Int("elastic-min", 1, "adaptive policy width floor"),
		emax:       fs.Int("elastic-max", 64, "adaptive policy width ceiling"),
		einterval:  fs.Duration("elastic-interval", 25*time.Millisecond, "adaptive policy sampling cadence"),
		net:        fs.String("net", "", "drive a remote csdsd at host:port as a closed-loop client instead of running in-process"),
		faultSpec:  fs.String("fault", "", "fault-injection schedule, e.g. 'chaos:seed=7' (local: drives the harness injectors; with -net: a fixed-budget wire chaos cell that verifies acknowledged writes; empty: off)"),
		wl:         fs.String("workload", "", "named workload mix with optional modifiers, e.g. 'ycsb-b' or 'flash:updates=0.2' (see -list; explicitly-set flags override the mix)"),
		autoSpec:   fs.Bool("auto-spec", false, "derive the composite spec from the workload via the tuner; -alg must then name a plain leaf algorithm"),
		cacheTTL:   fs.Duration("cache-ttl", 0, "readcache entry TTL: expired entries are never served and re-read through (0 = no expiry)"),
		cacheAdmit: fs.String("cache-admit", "", "readcache admission policy on miss fills: always, tinylfu or window (empty = always)"),
		csv:        fs.Bool("csv", false, "CSV output"),
		listAlgs:   fs.Bool("list", false, "list registered algorithms, combinators and flags, then exit"),
	}
	return fs, o
}

// flagRoster renders every registered flag as "-name" in lexical order —
// the drift-proof flag listing -list and the error hint share.
func flagRoster(fs *flag.FlagSet) []string {
	var names []string
	fs.VisitAll(func(f *flag.Flag) { names = append(names, "-"+f.Name) })
	return names
}

// faultFiresLine renders a Result's per-point firing counts in canonical
// point order — the local-harness twin of fault.Tally.String.
func faultFiresLine(fires map[fault.Point]uint64) string {
	var parts []string
	for _, pt := range fault.Points {
		if n := fires[pt]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", pt, n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// parseResizeSteps parses the -resize-at syntax: a comma-separated list of
// duration:width pairs, e.g. "100ms:8,300ms:2".
func parseResizeSteps(s string) ([]harness.ResizeStep, error) {
	var steps []harness.ResizeStep
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		at, width, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("resize step %q: want duration:width (e.g. 100ms:8)", part)
		}
		d, err := time.ParseDuration(strings.TrimSpace(at))
		if err != nil {
			return nil, fmt.Errorf("resize step %q: %v", part, err)
		}
		w, err := strconv.Atoi(strings.TrimSpace(width))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("resize step %q: width must be a positive integer", part)
		}
		steps = append(steps, harness.ResizeStep{At: d, Width: w})
	}
	return steps, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs, o := newFlags(stderr)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *o.listAlgs {
		for _, n := range core.Names() {
			info, _ := core.Lookup(n)
			star := " "
			if info.Featured {
				star = "*"
			}
			fmt.Fprintf(stdout, "%s %-24s %-10s %s\n", star, n, info.Progress, info.Desc)
		}
		fmt.Fprintln(stdout, "\ncombinators (compose as comb(N,spec), nesting allowed):")
		for _, c := range core.Combinators() {
			fmt.Fprintf(stdout, "  %-26s %s\n", fmt.Sprintf("%s(%s,spec)", c.Name, c.ArgDesc), c.Desc)
		}
		// Like the flag section below, the mix catalog is generated from
		// the live registry (workload.Mixes), so -list shows every named
		// mix without a hand-maintained copy that could drift.
		fmt.Fprintln(stdout, "\nworkload mixes (-workload name[:key=value...], e.g. 'ycsb-a:zipf=0.8'):")
		for _, m := range workload.Mixes() {
			fmt.Fprintf(stdout, "  %-10s %s\n", m.Name, m.Desc)
		}
		// The flag section is generated straight from the FlagSet, so it
		// lists every flag — scan, cursor, batch, elastic — without a
		// hand-maintained copy that could drift.
		fmt.Fprintln(stdout, "\nflags (defaults in parentheses):")
		fs.VisitAll(func(f *flag.Flag) {
			fmt.Fprintf(stdout, "  %-20s %s (%s)\n", "-"+f.Name, f.Usage, f.DefValue)
		})
		return 0
	}

	for _, d := range []struct {
		flag, val string
	}{
		{"scan-dist", *o.scanDist},
		{"page-dist", *o.pageDist},
		{"batch-dist", *o.batchDist},
	} {
		switch d.val {
		case workload.ScanLenUniform, workload.ScanLenFixed, workload.ScanLenGeometric:
		default:
			fmt.Fprintf(stderr, "csdsbench: -%s %q: want uniform, fixed or geometric\n", d.flag, d.val)
			return 1
		}
	}
	for _, fr := range []struct {
		flag string
		val  float64
	}{
		{"scan-frac", *o.scanFrac},
		{"cursor-frac", *o.cursorFrac},
		{"batch-frac", *o.batchFrac},
	} {
		if fr.val < 0 || fr.val > 1 {
			fmt.Fprintf(stderr, "csdsbench: -%s %v outside [0, 1]\n", fr.flag, fr.val)
			return 1
		}
	}
	if *o.scanLen < 1 {
		fmt.Fprintf(stderr, "csdsbench: -scan-len %d: the mean scan length must be at least 1\n", *o.scanLen)
		return 1
	}
	if *o.pageLen < 1 {
		fmt.Fprintf(stderr, "csdsbench: -page-len %d: the mean page size must be at least 1\n", *o.pageLen)
		return 1
	}
	if *o.batchLen < 1 {
		fmt.Fprintf(stderr, "csdsbench: -batch-len %d: the mean batch length must be at least 1\n", *o.batchLen)
		return 1
	}
	if !combinator.ValidAdmission(*o.cacheAdmit) {
		fmt.Fprintf(stderr, "csdsbench: -cache-admit %q: want always, tinylfu or window\n", *o.cacheAdmit)
		return 1
	}
	if *o.cacheTTL < 0 {
		fmt.Fprintf(stderr, "csdsbench: -cache-ttl %v: a freshness bound cannot be negative\n", *o.cacheTTL)
		return 1
	}
	plan, perr := fault.ParsePlan(*o.faultSpec)
	if perr != nil {
		fmt.Fprintf(stderr, "csdsbench: -fault: %v\n", perr)
		return 1
	}

	// The workload: flags alone, or a named mix overridden field by field
	// by whichever flags were explicitly set (-size always governs the
	// structure size — mixes describe shape, not scale).
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	wcfg := workload.Config{
		Size: *o.size, UpdateRatio: *o.updates, ZipfS: *o.zipf,
		ScanRatio: *o.scanFrac, ScanLen: *o.scanLen, ScanLenDist: *o.scanDist,
		CursorRatio: *o.cursorFrac, PageLen: *o.pageLen, PageLenDist: *o.pageDist,
		BatchRatio: *o.batchFrac, BatchLen: *o.batchLen, BatchLenDist: *o.batchDist,
	}
	if *o.wl != "" {
		mix, err := workload.ParseMix(*o.wl)
		if err != nil {
			fmt.Fprintf(stderr, "csdsbench: -workload: %v\n", err)
			return 1
		}
		mix.Size = *o.size
		mix.ScanLenDist, mix.PageLenDist, mix.BatchLenDist = *o.scanDist, *o.pageDist, *o.batchDist
		for name := range explicit {
			switch name {
			case "updates":
				mix.UpdateRatio = *o.updates
			case "zipf":
				mix.ZipfS = *o.zipf
			case "scan-frac":
				mix.ScanRatio = *o.scanFrac
			case "scan-len":
				mix.ScanLen = *o.scanLen
			case "cursor-frac":
				mix.CursorRatio = *o.cursorFrac
			case "page-len":
				mix.PageLen = *o.pageLen
			case "batch-frac":
				mix.BatchRatio = *o.batchFrac
			case "batch-len":
				mix.BatchLen = *o.batchLen
			}
		}
		// Length fields the mix leaves unset fall back to the flag
		// defaults rather than the zero value.
		if mix.ScanLen == 0 {
			mix.ScanLen = *o.scanLen
		}
		if mix.PageLen == 0 {
			mix.PageLen = *o.pageLen
		}
		if mix.BatchLen == 0 {
			mix.BatchLen = *o.batchLen
		}
		wcfg = mix
	}

	// -auto-spec: the tuner derives the composite around the -alg leaf.
	// The derived spec replaces the algorithm everywhere — including the
	// CSV alg column, so auto-tuned cells record what was actually built.
	alg := *o.alg
	cacheAdmit := *o.cacheAdmit
	if *o.autoSpec {
		d, err := tuner.Derive(tuner.Inputs{Leaf: *o.alg, Threads: *o.threads, Size: *o.size, Workload: wcfg})
		if err != nil {
			fmt.Fprintf(stderr, "csdsbench: -auto-spec: %v\n", err)
			fmt.Fprintf(stderr, "hint: csdsmodel -auto-spec -workload <mix> -leaf <alg> explains the derivation\n")
			return 1
		}
		alg = d.Spec
		if d.CacheSlots > 0 && cacheAdmit == "" {
			cacheAdmit = d.CacheAdmission
		}
		if d.PageLen > 0 && !explicit["page-len"] {
			wcfg.PageLen = d.PageLen
		}
	}

	cfg := harness.Config{
		Algorithm: alg, Threads: *o.threads, Duration: *o.dur, Runs: *o.runs,
		ElideAttempts: *o.elide, UseEBR: *o.ebrOn,
		CacheTTL: *o.cacheTTL, CacheAdmission: cacheAdmit,
		Fault:    plan,
		Workload: wcfg,
	}
	if *o.delayed > 0 {
		cfg.DelayedThreads = *o.delayed
		cfg.DelayPlan = interrupt.PaperDelayPlan()
	}
	if *o.resizeAt != "" {
		steps, err := parseResizeSteps(*o.resizeAt)
		if err != nil {
			fmt.Fprintf(stderr, "csdsbench: -resize-at: %v\n", err)
			return 1
		}
		cfg.ResizeSteps = steps
	}
	if *o.egrow > 0 || *o.eshrink > 0 || *o.egrowWait > 0 {
		cfg.Elastic = &harness.ElasticPolicy{
			Interval: *o.einterval, GrowOps: *o.egrow, ShrinkOps: *o.eshrink,
			GrowWait: *o.egrowWait, MinWidth: *o.emin, MaxWidth: *o.emax,
		}
	} else {
		// Bound/cadence flags without a trigger would silently run a
		// static benchmark; refuse instead of ignoring the user's intent.
		orphaned := false
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "elastic-min", "elastic-max", "elastic-interval":
				orphaned = true
			}
		})
		if orphaned {
			fmt.Fprintf(stderr, "csdsbench: -elastic-min/-elastic-max/-elastic-interval have no effect without a trigger; set -elastic-grow, -elastic-shrink or -elastic-growwait\n")
			return 1
		}
	}
	var res harness.Result
	var chaos netChaosInfo
	var err error
	if *o.net != "" {
		// Networked mode measures a remote csdsd; flags that configure
		// the in-process structure or harness would be silently ignored,
		// so explicitly setting one is an error, not a no-op.
		var rejected []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "elide", "ebr", "delayed", "resize-at",
				"elastic-grow", "elastic-shrink", "elastic-growwait",
				"elastic-min", "elastic-max", "elastic-interval",
				"auto-spec", "cache-ttl", "cache-admit":
				rejected = append(rejected, "-"+f.Name)
			}
		})
		if len(rejected) > 0 {
			fmt.Fprintf(stderr, "csdsbench: %s configure the in-process harness and have no effect with -net; set them on the csdsd server instead\n",
				strings.Join(rejected, " "))
			return 1
		}
		res, chaos, err = netRun(*o.net, cfg, plan)
	} else {
		res, err = harness.Run(cfg)
	}
	if err != nil {
		fmt.Fprintf(stderr, "csdsbench: %v\n", err)
		fmt.Fprintf(stderr, "hint: run 'csdsbench -list' for registered algorithms, combinators and flags;\n")
		fmt.Fprintf(stderr, "      composite specs look like 'sharded(16,list/lazy)' or 'elastic(4,bst/tk)'\n")
		fmt.Fprintf(stderr, "      flags: %s\n", strings.Join(flagRoster(fs), " "))
		return 1
	}
	if *o.csv {
		ebr := 0
		if *o.ebrOn {
			ebr = 1
		}
		netCol := 0
		if *o.net != "" {
			netCol = 1
		}
		// The workload axis carries the -workload spec verbatim ("-" when
		// unset). The spec grammar separates modifiers with colons, never
		// commas, so the value survives as one CSV field.
		wlCol := *o.wl
		if wlCol == "" {
			wlCol = "-"
		}
		fmt.Fprintln(stdout, csvHeader)
		fmt.Fprintf(stdout, "%s,%d,%d,%g,%g,%d,%d,%s,%.4f,%.1f,%.1f,%.6f,%.6f,%.6f,%d,%.6f,%d,%d,%g,%.1f,%.1f,%.0f,%d,%g,%.1f,%.1f,%.0f,%d,%.6f,%.1f,%.1f,%g,%.1f,%.1f,%.0f,%.6f,%.2f,%d,%.4f,%.4f,%d\n",
			alg, *o.threads, *o.size, wcfg.UpdateRatio, wcfg.ZipfS, ebr, netCol, wlCol,
			res.Throughput/1e6, res.PerThreadMean, res.PerThreadStddev,
			res.WaitFraction, res.RestartedFrac, res.RestartedFrac3,
			res.MaxWaitNs, res.FallbackFrac, res.Resizes, res.FinalWidth,
			wcfg.ScanRatio, res.ScanThroughput, res.ScanKeysMean, res.ScanMeanNs, res.ScanMaxNs,
			wcfg.CursorRatio, res.PageThroughput, res.PageKeysMean, res.PageMeanNs, res.PageMaxNs, res.CursorRetryFrac,
			res.PagePullsMean, res.PagePullKeysMean,
			wcfg.BatchRatio, res.BatchThroughput, res.BatchKeysMean, res.BatchMeanNs,
			res.CombineFrac, res.AllocsPerOp, res.GCPauseNs, res.PoolHitFrac,
			res.CacheHitFrac, res.CacheExpiries)
		return 0
	}
	fmt.Fprintf(stdout, "algorithm          %s\n", alg)
	if *o.autoSpec {
		fmt.Fprintf(stdout, "auto-tuned         derived from -alg %s by the tuner (csdsmodel -auto-spec explains it)\n", *o.alg)
	}
	if *o.wl != "" {
		fmt.Fprintf(stdout, "workload           %s\n", *o.wl)
	}
	if *o.net != "" {
		fmt.Fprintf(stdout, "networked          closed-loop client of csdsd at %s\n", *o.net)
	}
	fmt.Fprintf(stdout, "threads/size/upd   %d / %d / %.0f%%  (zipf %g)\n", *o.threads, *o.size, wcfg.UpdateRatio*100, wcfg.ZipfS)
	fmt.Fprintf(stdout, "window x runs      %v x %d\n", *o.dur, *o.runs)
	fmt.Fprintf(stdout, "throughput         %.3f Mops/s (%d ops total)\n", res.Throughput/1e6, res.TotalOps)
	fmt.Fprintf(stdout, "per-thread         mean %.0f ops/s, stddev %.0f\n", res.PerThreadMean, res.PerThreadStddev)
	fmt.Fprintf(stdout, "lock wait frac     %.6f (stddev %.6f), worst single wait %v\n",
		res.WaitFraction, res.WaitFractionStddev, time.Duration(res.MaxWaitNs))
	fmt.Fprintf(stdout, "waiting acq frac   %.6f\n", res.WaitingOpsFrac)
	fmt.Fprintf(stdout, "restarted >=1x     %.6f   >3x %.6f\n", res.RestartedFrac, res.RestartedFrac3)
	fmt.Fprintf(stdout, "restart histogram  %v\n", res.RestartHist)
	if res.TotalScans > 0 {
		fmt.Fprintf(stdout, "scan throughput    %.0f scans/s (%d scans total, %.1f keys/scan)\n",
			res.ScanThroughput, res.TotalScans, res.ScanKeysMean)
		fmt.Fprintf(stdout, "scan latency       mean %v, worst %v, %.3f retries/scan\n",
			time.Duration(res.ScanMeanNs).Round(time.Microsecond),
			time.Duration(res.ScanMaxNs).Round(time.Microsecond), res.ScanRetryFrac)
	}
	if res.TotalPages > 0 {
		fmt.Fprintf(stdout, "cursor throughput  %.0f pages/s (%d pages over %d paginated scans, %.1f keys/page)\n",
			res.PageThroughput, res.TotalPages, res.TotalCursors, res.PageKeysMean)
		fmt.Fprintf(stdout, "page latency       mean %v, worst %v, %.3f retries/page\n",
			time.Duration(res.PageMeanNs).Round(time.Microsecond),
			time.Duration(res.PageMaxNs).Round(time.Microsecond), res.CursorRetryFrac)
		over := 1.0
		if res.PageKeysMean > 0 {
			over = res.PagePullKeysMean / res.PageKeysMean
		}
		fmt.Fprintf(stdout, "page pulls         %.1f pulls/page, %.1f keys pulled/page (overcollect x%.2f)\n",
			res.PagePullsMean, res.PagePullKeysMean, over)
	}
	if res.TotalBatches > 0 {
		fmt.Fprintf(stdout, "batch throughput   %.0f batches/s (%d batches, %d keys total, %.1f keys/batch)\n",
			res.BatchThroughput, res.TotalBatches, res.TotalBatchKeys, res.BatchKeysMean)
		fmt.Fprintf(stdout, "batch latency      mean %v, worst %v\n",
			time.Duration(res.BatchMeanNs).Round(time.Microsecond),
			time.Duration(res.BatchMaxNs).Round(time.Microsecond))
		fmt.Fprintf(stdout, "flat combining     %.6f of batches rode a combiner (%d combined)\n",
			res.CombineFrac, res.CombinedBatches)
	}
	if res.AllocsPerOp > 0 {
		fmt.Fprintf(stdout, "allocations        %.2f allocs/op (point + batch keys + scans + pages)\n", res.AllocsPerOp)
	}
	if res.CacheHits+res.CacheMisses > 0 {
		fmt.Fprintf(stdout, "cache              %.4f hit frac (%d hits / %d misses), %d fills, %d expiries, %d rejected fills\n",
			res.CacheHitFrac, res.CacheHits, res.CacheMisses, res.CacheFills, res.CacheExpiries, res.CacheRejects)
	}
	if res.FallbackFrac > 0 || *o.elide > 0 {
		fmt.Fprintf(stdout, "HTM fallback frac  %.6f (aborts: conflict=%d interrupt=%d fallback-held=%d capacity=%d)\n",
			res.FallbackFrac, res.TxAborts[0], res.TxAborts[1], res.TxAborts[2], res.TxAborts[3])
	}
	if *o.ebrOn {
		fmt.Fprintf(stdout, "EBR                retired %d, reclaimed %d, pool hit frac %.4f (%d hits / %d misses)\n",
			res.Retired, res.Reclaimed, res.PoolHitFrac, res.PoolHits, res.PoolMisses)
	}
	if chaos.Armed {
		fmt.Fprintf(stdout, "net chaos          %d ops budget x %d workers, plan '%s'\n", chaos.Budget, *o.threads, plan)
		hitFrac := 0.0
		if chaos.Ops > 0 {
			hitFrac = float64(chaos.Hits) / float64(chaos.Ops)
		}
		fmt.Fprintf(stdout, "fault hit frac     %.4f (%d of %d ops hit an injected fault or engaged recovery; %d client retries)\n",
			hitFrac, chaos.Hits, chaos.Ops, chaos.Retries)
		fmt.Fprintf(stdout, "fault tally        %s\n", chaos.Tally)
		fmt.Fprintf(stdout, "acked writes       %d tracked, all verified present after the run\n", chaos.Acked)
	} else if res.Faults > 0 {
		fmt.Fprintf(stdout, "faults injected    %d (%s)\n", res.Faults, faultFiresLine(res.FaultFires))
	}
	if res.GCPauseNs > 0 {
		fmt.Fprintf(stdout, "GC pause           %v stop-the-world inside the measured window\n", time.Duration(res.GCPauseNs))
	}
	if res.WidthTrace != nil {
		var tr []string
		for _, ws := range res.WidthTrace {
			tr = append(tr, fmt.Sprintf("%v:%d", time.Duration(ws.AtNs).Round(time.Millisecond), ws.Width))
		}
		fmt.Fprintf(stdout, "elastic width      final %d after %d resizes (last run trace: %s)\n",
			res.FinalWidth, res.Resizes, strings.Join(tr, " "))
	}
	return 0
}
