package main

import (
	"strings"
	"testing"
	"time"

	"csds/internal/harness"
)

// TestListOutput smoke-tests -list: every registered combinator —
// including elastic — and at least one featured algorithm must appear.
func TestListOutput(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d (stderr: %s)", code, errOut.String())
	}
	for _, want := range []string{
		"list/lazy",
		"sharded(shards,spec)",
		"striped(stripes,spec)",
		"readcache(capacity,spec)",
		"elastic(initial shards,spec)",
		"Options.KeySpan", // the corrected striped routing description
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

// TestUnknownSpecError smoke-tests the error path: an unknown algorithm
// must exit nonzero with the actionable registry hint on stderr, and the
// hint's flag roster — generated from the FlagSet, not hand-written —
// must name every registered flag (the scan/cursor/batch flags used to
// be missing from this text).
func TestUnknownSpecError(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-alg", "list/nonexistent", "-dur", "10ms", "-runs", "1", "-threads", "1"}, &out, &errOut)
	if code == 0 {
		t.Fatal("unknown algorithm exited 0")
	}
	for _, want := range []string{"unknown algorithm", "csdsbench -list"} {
		if !strings.Contains(errOut.String(), want) {
			t.Fatalf("stderr missing %q:\n%s", want, errOut.String())
		}
	}
	fs, _ := newFlags(&errOut)
	for _, name := range flagRoster(fs) {
		if !strings.Contains(errOut.String(), name+" ") && !strings.HasSuffix(strings.TrimSpace(errOut.String()), name) {
			t.Fatalf("stderr flag roster missing %q:\n%s", name, errOut.String())
		}
	}
}

// TestListShowsEveryFlag asserts the -list flag section is complete:
// because the section is generated from the same FlagSet the parser
// uses, every registered flag — however it is added later — must appear.
func TestListShowsEveryFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d (stderr: %s)", code, errOut.String())
	}
	fs, _ := newFlags(&errOut)
	roster := flagRoster(fs)
	if len(roster) < 20 {
		t.Fatalf("flag roster suspiciously small: %v", roster)
	}
	for _, name := range roster {
		if !strings.Contains(out.String(), name+" ") {
			t.Fatalf("-list output missing flag %q:\n%s", name, out.String())
		}
	}
	// The scan, cursor, batch and networked flags in particular — the
	// ones the old hand-written help text forgot.
	for _, name := range []string{"-scan-frac", "-cursor-frac", "-batch-frac", "-batch-len", "-batch-dist", "-net"} {
		if !strings.Contains(out.String(), name+" ") {
			t.Fatalf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestFlagRosterPinned pins the complete flag table verbatim. The older
// checks above only prove that whatever is registered shows up in -list
// — a flag deleted by mistake (or added with a colliding name) slipped
// straight through them. Any roster change must be deliberate: edit this
// list together with newFlags and the README flag table.
func TestFlagRosterPinned(t *testing.T) {
	want := []string{
		"-alg", "-batch-dist", "-batch-frac", "-batch-len", "-csv",
		"-cursor-frac", "-delayed", "-dur", "-ebr",
		"-elastic-grow", "-elastic-growwait", "-elastic-interval",
		"-elastic-max", "-elastic-min", "-elastic-shrink",
		"-elide", "-list", "-net", "-page-dist", "-page-len",
		"-resize-at", "-runs", "-scan-dist", "-scan-frac", "-scan-len",
		"-size", "-threads", "-updates", "-zipf",
	}
	var errOut strings.Builder
	fs, _ := newFlags(&errOut)
	got := flagRoster(fs) // lexically sorted by flag.VisitAll
	if len(got) != len(want) {
		t.Fatalf("flag roster drifted:\n got %v\nwant %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flag roster drifted at %d: got %q, want %q\nfull roster: %v", i, got[i], want[i], got)
		}
	}
}

// TestNetRejectsLocalFlags: flags that configure the in-process
// structure or harness must be refused in networked mode, not silently
// ignored (the server was configured elsewhere; pretending -ebr applies
// would make the CSV row lie).
func TestNetRejectsLocalFlags(t *testing.T) {
	for _, extra := range [][]string{
		{"-ebr"},
		{"-elide", "3"},
		{"-delayed", "1"},
		{"-resize-at", "10ms:4"},
		{"-elastic-grow", "100"},
	} {
		args := append([]string{"-net", "127.0.0.1:1", "-dur", "10ms", "-runs", "1", "-threads", "1"}, extra...)
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("%v accepted in -net mode", extra)
		} else if !strings.Contains(errOut.String(), "-net") {
			t.Fatalf("%v: stderr does not explain the -net conflict:\n%s", extra, errOut.String())
		}
	}
}

// TestResizeAtRequiresResizable: scheduling resizes against a
// non-resizable spec must fail with the elastic hint.
func TestResizeAtRequiresResizable(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-alg", "list/lazy", "-resize-at", "10ms:4", "-dur", "10ms", "-runs", "1", "-threads", "1"}, &out, &errOut)
	if code == 0 {
		t.Fatal("resize schedule on a non-resizable spec exited 0")
	}
	if !strings.Contains(errOut.String(), "elastic(") {
		t.Fatalf("stderr missing the elastic(N,...) hint:\n%s", errOut.String())
	}
}

// TestBadResizeSyntax: malformed -resize-at values are rejected up front.
func TestBadResizeSyntax(t *testing.T) {
	for _, bad := range []string{"10ms", "x:4", "10ms:0", "10ms:-2"} {
		var out, errOut strings.Builder
		if code := run([]string{"-alg", "elastic(1,list/lazy)", "-resize-at", bad}, &out, &errOut); code == 0 {
			t.Fatalf("-resize-at %q accepted", bad)
		}
	}
}

// TestOrphanedPolicyFlags: policy bound/cadence flags without a trigger
// flag must be refused, not silently ignored.
func TestOrphanedPolicyFlags(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-alg", "elastic(1,list/lazy)", "-elastic-max", "32"}, &out, &errOut)
	if code == 0 {
		t.Fatal("-elastic-max without a trigger exited 0")
	}
	if !strings.Contains(errOut.String(), "-elastic-grow") {
		t.Fatalf("stderr missing the trigger-flag hint:\n%s", errOut.String())
	}
	// With a trigger present the same flag is honoured.
	out.Reset()
	errOut.Reset()
	code = run([]string{
		"-alg", "elastic(1,list/lazy)", "-threads", "2", "-dur", "30ms", "-runs", "1",
		"-elastic-max", "4", "-elastic-grow", "1",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("triggered policy run exited %d (stderr: %s)", code, errOut.String())
	}
}

// TestParseResizeSteps covers the schedule grammar directly.
func TestParseResizeSteps(t *testing.T) {
	steps, err := parseResizeSteps(" 100ms:8 , 300ms:2 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []harness.ResizeStep{{At: 100 * time.Millisecond, Width: 8}, {At: 300 * time.Millisecond, Width: 2}}
	if len(steps) != len(want) || steps[0] != want[0] || steps[1] != want[1] {
		t.Fatalf("parsed %v, want %v", steps, want)
	}
}

// TestScanFlagsSmoke runs a tiny scan-mix cell on each acceptance
// composite and checks the scan rows appear with nonzero throughput,
// distinct from the point-op row.
func TestScanFlagsSmoke(t *testing.T) {
	for _, alg := range []string{
		"sharded(4,list/lazy)",
		"striped(4,list/lazy)",
		"elastic(4,list/lazy)",
	} {
		var out, errOut strings.Builder
		code := run([]string{
			"-alg", alg, "-threads", "2", "-size", "128",
			"-dur", "40ms", "-runs", "1", "-scan-frac", "0.2", "-scan-len", "32",
		}, &out, &errOut)
		if code != 0 {
			t.Fatalf("%s: scan run exited %d (stderr: %s)", alg, code, errOut.String())
		}
		for _, want := range []string{"scan throughput", "scan latency", "keys/scan"} {
			if !strings.Contains(out.String(), want) {
				t.Fatalf("%s: report missing %q:\n%s", alg, want, out.String())
			}
		}
	}
	// Without -scan-frac the scan rows stay out of the report.
	var out, errOut strings.Builder
	if code := run([]string{"-alg", "list/lazy", "-threads", "1", "-dur", "20ms", "-runs", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("plain run exited %d", code)
	}
	if strings.Contains(out.String(), "scan throughput") {
		t.Fatalf("scanless report shows scan rows:\n%s", out.String())
	}
}

// TestScanFlagValidation rejects malformed scan flags up front.
func TestScanFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "list/lazy", "-scan-frac", "1.5"},
		{"-alg", "list/lazy", "-scan-frac", "-0.1"},
		{"-alg", "list/lazy", "-scan-frac", "0.1", "-scan-dist", "pareto"},
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestCursorFlagsSmoke runs a tiny cursor-mix cell on each acceptance
// composite and checks the cursor rows appear, distinct from both the
// point-op and the one-shot-scan rows.
func TestCursorFlagsSmoke(t *testing.T) {
	for _, alg := range []string{
		"sharded(4,list/lazy)",
		"striped(4,list/lazy)",
		"elastic(4,list/lazy)",
	} {
		var out, errOut strings.Builder
		code := run([]string{
			"-alg", alg, "-threads", "2", "-size", "128",
			"-dur", "40ms", "-runs", "1", "-cursor-frac", "0.2",
			"-scan-len", "32", "-page-len", "8",
		}, &out, &errOut)
		if code != 0 {
			t.Fatalf("%s: cursor run exited %d (stderr: %s)", alg, code, errOut.String())
		}
		for _, want := range []string{"cursor throughput", "page latency", "keys/page", "paginated scans"} {
			if !strings.Contains(out.String(), want) {
				t.Fatalf("%s: report missing %q:\n%s", alg, want, out.String())
			}
		}
		if strings.Contains(out.String(), "scan throughput") {
			t.Fatalf("%s: cursor-only mix leaked one-shot scan rows:\n%s", alg, out.String())
		}
	}
	// Without -cursor-frac the cursor rows stay out of the report.
	var out, errOut strings.Builder
	if code := run([]string{"-alg", "list/lazy", "-threads", "1", "-dur", "20ms", "-runs", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("plain run exited %d", code)
	}
	if strings.Contains(out.String(), "cursor throughput") {
		t.Fatalf("cursorless report shows cursor rows:\n%s", out.String())
	}
}

// TestCursorFlagValidation rejects malformed cursor flags up front.
func TestCursorFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "list/lazy", "-cursor-frac", "1.5"},
		{"-alg", "list/lazy", "-cursor-frac", "-0.1"},
		{"-alg", "list/lazy", "-cursor-frac", "0.1", "-page-len", "0"},
		{"-alg", "list/lazy", "-cursor-frac", "0.1", "-page-dist", "pareto"},
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestBatchFlagsSmoke runs a tiny batch-mix cell on each acceptance
// composite and checks the batch rows appear, distinct from the
// point-op rows; a contended single-shard cell must report a nonzero
// flat-combining fraction.
func TestBatchFlagsSmoke(t *testing.T) {
	for _, alg := range []string{
		"sharded(4,list/lazy)",
		"striped(4,list/lazy)",
		"elastic(4,list/lazy)",
	} {
		var out, errOut strings.Builder
		code := run([]string{
			"-alg", alg, "-threads", "2", "-size", "128",
			"-dur", "40ms", "-runs", "1", "-batch-frac", "0.3", "-batch-len", "8",
		}, &out, &errOut)
		if code != 0 {
			t.Fatalf("%s: batch run exited %d (stderr: %s)", alg, code, errOut.String())
		}
		for _, want := range []string{"batch throughput", "batch latency", "keys/batch", "flat combining", "allocs/op"} {
			if !strings.Contains(out.String(), want) {
				t.Fatalf("%s: report missing %q:\n%s", alg, want, out.String())
			}
		}
	}
	// Without -batch-frac the batch rows stay out of the report.
	var out, errOut strings.Builder
	if code := run([]string{"-alg", "list/lazy", "-threads", "1", "-dur", "20ms", "-runs", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("plain run exited %d", code)
	}
	if strings.Contains(out.String(), "batch throughput") {
		t.Fatalf("batchless report shows batch rows:\n%s", out.String())
	}
}

// TestBatchFlagValidation rejects malformed batch flags up front.
func TestBatchFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "list/lazy", "-batch-frac", "1.5"},
		{"-alg", "list/lazy", "-batch-frac", "-0.1"},
		{"-alg", "list/lazy", "-batch-frac", "0.1", "-batch-len", "0"},
		{"-alg", "list/lazy", "-batch-frac", "0.1", "-batch-dist", "pareto"},
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestCSVSchemaPinned pins the full -csv header verbatim and checks the
// row/header column agreement: the CI bench artifact and the committed
// BENCH_baseline.json are derived from exactly these columns, so any
// drift must show up here first.
func TestCSVSchemaPinned(t *testing.T) {
	const wantHeader = "alg,threads,size,updates,zipf,ebr,net,mops,perthread_mean,perthread_stddev," +
		"waitfrac,restartfrac,restart3frac,maxwait_ns,fallbackfrac,resizes,final_width," +
		"scanfrac,scans_per_s,scan_mean_keys,scan_mean_ns,scan_max_ns," +
		"cursorfrac,pages_per_s,page_mean_keys,page_mean_ns,page_max_ns,cursor_retry_frac," +
		"page_pulls,page_pull_keys," +
		"batchfrac,batches_per_s,batch_mean_keys,batch_mean_ns,combine_frac,allocs_op," +
		"gc_pause_ns,pool_hit_frac"
	var out, errOut strings.Builder
	code := run([]string{
		"-alg", "list/lazy", "-threads", "2", "-size", "128",
		"-dur", "30ms", "-runs", "1", "-scan-frac", "0.1", "-cursor-frac", "0.1",
		"-batch-frac", "0.1", "-batch-len", "8", "-csv",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("csv cursor run exited %d (stderr: %s)", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv output not header+row (one row per cell):\n%s", out.String())
	}
	if lines[0] != wantHeader {
		t.Fatalf("csv header drifted:\n got %s\nwant %s", lines[0], wantHeader)
	}
	if nh, nr := strings.Count(lines[0], ","), strings.Count(lines[1], ","); nh != nr {
		t.Fatalf("csv header has %d columns, row has %d", nh+1, nr+1)
	}
}

// TestScanCSVColumns pins the CSV header and the scan columns. The
// column-count check uses a comma-free spec: composite specs carry
// commas of their own inside the alg column (a long-standing quirk of
// the unquoted CSV), which a naive comma count would miscount.
func TestScanCSVColumns(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-alg", "list/lazy", "-threads", "2", "-size", "128",
		"-dur", "30ms", "-runs", "1", "-scan-frac", "0.2", "-csv",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("csv scan run exited %d (stderr: %s)", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv output not header+row:\n%s", out.String())
	}
	for _, col := range []string{"scanfrac", "scans_per_s", "scan_mean_keys", "scan_mean_ns", "scan_max_ns"} {
		if !strings.Contains(lines[0], col) {
			t.Fatalf("csv header missing %q: %s", col, lines[0])
		}
	}
	if nh, nr := strings.Count(lines[0], ","), strings.Count(lines[1], ","); nh != nr {
		t.Fatalf("csv header has %d columns, row has %d", nh+1, nr+1)
	}
}

// TestBenchRunSmoke runs one tiny real cell end to end, including a
// resize, and checks the human-readable report shape.
func TestBenchRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-alg", "elastic(1,list/lazy)", "-threads", "2", "-size", "64",
		"-dur", "40ms", "-runs", "1", "-resize-at", "15ms:4",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("smoke run exited %d (stderr: %s)", code, errOut.String())
	}
	for _, want := range []string{"throughput", "lock wait frac", "elastic width"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}
