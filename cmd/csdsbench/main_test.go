package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"csds/internal/harness"
	"csds/internal/workload"
)

// TestListOutput smoke-tests -list: every registered combinator —
// including elastic — and at least one featured algorithm must appear.
func TestListOutput(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d (stderr: %s)", code, errOut.String())
	}
	for _, want := range []string{
		"list/lazy",
		"sharded(shards,spec)",
		"striped(stripes,spec)",
		"readcache(capacity,spec)",
		"elastic(initial shards,spec)",
		"Options.KeySpan", // the corrected striped routing description
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

// TestUnknownSpecError smoke-tests the error path: an unknown algorithm
// must exit nonzero with the actionable registry hint on stderr, and the
// hint's flag roster — generated from the FlagSet, not hand-written —
// must name every registered flag (the scan/cursor/batch flags used to
// be missing from this text).
func TestUnknownSpecError(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-alg", "list/nonexistent", "-dur", "10ms", "-runs", "1", "-threads", "1"}, &out, &errOut)
	if code == 0 {
		t.Fatal("unknown algorithm exited 0")
	}
	for _, want := range []string{"unknown algorithm", "csdsbench -list"} {
		if !strings.Contains(errOut.String(), want) {
			t.Fatalf("stderr missing %q:\n%s", want, errOut.String())
		}
	}
	fs, _ := newFlags(&errOut)
	for _, name := range flagRoster(fs) {
		if !strings.Contains(errOut.String(), name+" ") && !strings.HasSuffix(strings.TrimSpace(errOut.String()), name) {
			t.Fatalf("stderr flag roster missing %q:\n%s", name, errOut.String())
		}
	}
}

// TestListShowsEveryFlag asserts the -list flag section is complete:
// because the section is generated from the same FlagSet the parser
// uses, every registered flag — however it is added later — must appear.
func TestListShowsEveryFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d (stderr: %s)", code, errOut.String())
	}
	fs, _ := newFlags(&errOut)
	roster := flagRoster(fs)
	if len(roster) < 20 {
		t.Fatalf("flag roster suspiciously small: %v", roster)
	}
	for _, name := range roster {
		if !strings.Contains(out.String(), name+" ") {
			t.Fatalf("-list output missing flag %q:\n%s", name, out.String())
		}
	}
	// The scan, cursor, batch, networked, workload and cache flags in
	// particular — the ones a hand-written help text forgets first.
	for _, name := range []string{
		"-scan-frac", "-cursor-frac", "-batch-frac", "-batch-len", "-batch-dist", "-net",
		"-workload", "-auto-spec", "-cache-ttl", "-cache-admit",
	} {
		if !strings.Contains(out.String(), name+" ") {
			t.Fatalf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestListShowsEveryMix asserts the -list workload catalog is complete:
// it is generated from workload.Mixes(), so every registered named mix
// must appear with its description.
func TestListShowsEveryMix(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "workload mixes") {
		t.Fatalf("-list output missing the workload-mixes section:\n%s", out.String())
	}
	for _, m := range workload.Mixes() {
		if !strings.Contains(out.String(), m.Name+" ") {
			t.Fatalf("-list output missing workload mix %q:\n%s", m.Name, out.String())
		}
	}
}

// TestFlagRosterPinned pins the complete flag table verbatim. The older
// checks above only prove that whatever is registered shows up in -list
// — a flag deleted by mistake (or added with a colliding name) slipped
// straight through them. Any roster change must be deliberate: edit this
// list together with newFlags and the README flag table.
func TestFlagRosterPinned(t *testing.T) {
	want := []string{
		"-alg", "-auto-spec", "-batch-dist", "-batch-frac", "-batch-len",
		"-cache-admit", "-cache-ttl", "-csv",
		"-cursor-frac", "-delayed", "-dur", "-ebr",
		"-elastic-grow", "-elastic-growwait", "-elastic-interval",
		"-elastic-max", "-elastic-min", "-elastic-shrink",
		"-elide", "-fault", "-list", "-net", "-page-dist", "-page-len",
		"-resize-at", "-runs", "-scan-dist", "-scan-frac", "-scan-len",
		"-size", "-threads", "-updates", "-workload", "-zipf",
	}
	var errOut strings.Builder
	fs, _ := newFlags(&errOut)
	got := flagRoster(fs) // lexically sorted by flag.VisitAll
	if len(got) != len(want) {
		t.Fatalf("flag roster drifted:\n got %v\nwant %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flag roster drifted at %d: got %q, want %q\nfull roster: %v", i, got[i], want[i], got)
		}
	}
}

// TestNetRejectsLocalFlags: flags that configure the in-process
// structure or harness must be refused in networked mode, not silently
// ignored (the server was configured elsewhere; pretending -ebr applies
// would make the CSV row lie).
func TestNetRejectsLocalFlags(t *testing.T) {
	for _, extra := range [][]string{
		{"-ebr"},
		{"-elide", "3"},
		{"-delayed", "1"},
		{"-resize-at", "10ms:4"},
		{"-elastic-grow", "100"},
		{"-cache-ttl", "50ms"},
		{"-cache-admit", "tinylfu"},
		{"-auto-spec"},
	} {
		args := append([]string{"-net", "127.0.0.1:1", "-dur", "10ms", "-runs", "1", "-threads", "1"}, extra...)
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("%v accepted in -net mode", extra)
		} else if !strings.Contains(errOut.String(), "-net") {
			t.Fatalf("%v: stderr does not explain the -net conflict:\n%s", extra, errOut.String())
		}
	}
}

// TestResizeAtRequiresResizable: scheduling resizes against a
// non-resizable spec must fail with the elastic hint.
func TestResizeAtRequiresResizable(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-alg", "list/lazy", "-resize-at", "10ms:4", "-dur", "10ms", "-runs", "1", "-threads", "1"}, &out, &errOut)
	if code == 0 {
		t.Fatal("resize schedule on a non-resizable spec exited 0")
	}
	if !strings.Contains(errOut.String(), "elastic(") {
		t.Fatalf("stderr missing the elastic(N,...) hint:\n%s", errOut.String())
	}
}

// TestBadResizeSyntax: malformed -resize-at values are rejected up front.
func TestBadResizeSyntax(t *testing.T) {
	for _, bad := range []string{"10ms", "x:4", "10ms:0", "10ms:-2"} {
		var out, errOut strings.Builder
		if code := run([]string{"-alg", "elastic(1,list/lazy)", "-resize-at", bad}, &out, &errOut); code == 0 {
			t.Fatalf("-resize-at %q accepted", bad)
		}
	}
}

// TestOrphanedPolicyFlags: policy bound/cadence flags without a trigger
// flag must be refused, not silently ignored.
func TestOrphanedPolicyFlags(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-alg", "elastic(1,list/lazy)", "-elastic-max", "32"}, &out, &errOut)
	if code == 0 {
		t.Fatal("-elastic-max without a trigger exited 0")
	}
	if !strings.Contains(errOut.String(), "-elastic-grow") {
		t.Fatalf("stderr missing the trigger-flag hint:\n%s", errOut.String())
	}
	// With a trigger present the same flag is honoured.
	out.Reset()
	errOut.Reset()
	code = run([]string{
		"-alg", "elastic(1,list/lazy)", "-threads", "2", "-dur", "30ms", "-runs", "1",
		"-elastic-max", "4", "-elastic-grow", "1",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("triggered policy run exited %d (stderr: %s)", code, errOut.String())
	}
}

// TestParseResizeSteps covers the schedule grammar directly.
func TestParseResizeSteps(t *testing.T) {
	steps, err := parseResizeSteps(" 100ms:8 , 300ms:2 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []harness.ResizeStep{{At: 100 * time.Millisecond, Width: 8}, {At: 300 * time.Millisecond, Width: 2}}
	if len(steps) != len(want) || steps[0] != want[0] || steps[1] != want[1] {
		t.Fatalf("parsed %v, want %v", steps, want)
	}
}

// TestScanFlagsSmoke runs a tiny scan-mix cell on each acceptance
// composite and checks the scan rows appear with nonzero throughput,
// distinct from the point-op row.
func TestScanFlagsSmoke(t *testing.T) {
	for _, alg := range []string{
		"sharded(4,list/lazy)",
		"striped(4,list/lazy)",
		"elastic(4,list/lazy)",
	} {
		var out, errOut strings.Builder
		code := run([]string{
			"-alg", alg, "-threads", "2", "-size", "128",
			"-dur", "40ms", "-runs", "1", "-scan-frac", "0.2", "-scan-len", "32",
		}, &out, &errOut)
		if code != 0 {
			t.Fatalf("%s: scan run exited %d (stderr: %s)", alg, code, errOut.String())
		}
		for _, want := range []string{"scan throughput", "scan latency", "keys/scan"} {
			if !strings.Contains(out.String(), want) {
				t.Fatalf("%s: report missing %q:\n%s", alg, want, out.String())
			}
		}
	}
	// Without -scan-frac the scan rows stay out of the report.
	var out, errOut strings.Builder
	if code := run([]string{"-alg", "list/lazy", "-threads", "1", "-dur", "20ms", "-runs", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("plain run exited %d", code)
	}
	if strings.Contains(out.String(), "scan throughput") {
		t.Fatalf("scanless report shows scan rows:\n%s", out.String())
	}
}

// TestScanFlagValidation rejects malformed scan flags up front.
func TestScanFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "list/lazy", "-scan-frac", "1.5"},
		{"-alg", "list/lazy", "-scan-frac", "-0.1"},
		{"-alg", "list/lazy", "-scan-frac", "0.1", "-scan-dist", "pareto"},
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestCursorFlagsSmoke runs a tiny cursor-mix cell on each acceptance
// composite and checks the cursor rows appear, distinct from both the
// point-op and the one-shot-scan rows.
func TestCursorFlagsSmoke(t *testing.T) {
	for _, alg := range []string{
		"sharded(4,list/lazy)",
		"striped(4,list/lazy)",
		"elastic(4,list/lazy)",
	} {
		var out, errOut strings.Builder
		code := run([]string{
			"-alg", alg, "-threads", "2", "-size", "128",
			"-dur", "40ms", "-runs", "1", "-cursor-frac", "0.2",
			"-scan-len", "32", "-page-len", "8",
		}, &out, &errOut)
		if code != 0 {
			t.Fatalf("%s: cursor run exited %d (stderr: %s)", alg, code, errOut.String())
		}
		for _, want := range []string{"cursor throughput", "page latency", "keys/page", "paginated scans"} {
			if !strings.Contains(out.String(), want) {
				t.Fatalf("%s: report missing %q:\n%s", alg, want, out.String())
			}
		}
		if strings.Contains(out.String(), "scan throughput") {
			t.Fatalf("%s: cursor-only mix leaked one-shot scan rows:\n%s", alg, out.String())
		}
	}
	// Without -cursor-frac the cursor rows stay out of the report.
	var out, errOut strings.Builder
	if code := run([]string{"-alg", "list/lazy", "-threads", "1", "-dur", "20ms", "-runs", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("plain run exited %d", code)
	}
	if strings.Contains(out.String(), "cursor throughput") {
		t.Fatalf("cursorless report shows cursor rows:\n%s", out.String())
	}
}

// TestCursorFlagValidation rejects malformed cursor flags up front.
func TestCursorFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "list/lazy", "-cursor-frac", "1.5"},
		{"-alg", "list/lazy", "-cursor-frac", "-0.1"},
		{"-alg", "list/lazy", "-cursor-frac", "0.1", "-page-len", "0"},
		{"-alg", "list/lazy", "-cursor-frac", "0.1", "-page-dist", "pareto"},
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestBatchFlagsSmoke runs a tiny batch-mix cell on each acceptance
// composite and checks the batch rows appear, distinct from the
// point-op rows; a contended single-shard cell must report a nonzero
// flat-combining fraction.
func TestBatchFlagsSmoke(t *testing.T) {
	for _, alg := range []string{
		"sharded(4,list/lazy)",
		"striped(4,list/lazy)",
		"elastic(4,list/lazy)",
	} {
		var out, errOut strings.Builder
		code := run([]string{
			"-alg", alg, "-threads", "2", "-size", "128",
			"-dur", "40ms", "-runs", "1", "-batch-frac", "0.3", "-batch-len", "8",
		}, &out, &errOut)
		if code != 0 {
			t.Fatalf("%s: batch run exited %d (stderr: %s)", alg, code, errOut.String())
		}
		for _, want := range []string{"batch throughput", "batch latency", "keys/batch", "flat combining", "allocs/op"} {
			if !strings.Contains(out.String(), want) {
				t.Fatalf("%s: report missing %q:\n%s", alg, want, out.String())
			}
		}
	}
	// Without -batch-frac the batch rows stay out of the report.
	var out, errOut strings.Builder
	if code := run([]string{"-alg", "list/lazy", "-threads", "1", "-dur", "20ms", "-runs", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("plain run exited %d", code)
	}
	if strings.Contains(out.String(), "batch throughput") {
		t.Fatalf("batchless report shows batch rows:\n%s", out.String())
	}
}

// TestBatchFlagValidation rejects malformed batch flags up front.
func TestBatchFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "list/lazy", "-batch-frac", "1.5"},
		{"-alg", "list/lazy", "-batch-frac", "-0.1"},
		{"-alg", "list/lazy", "-batch-frac", "0.1", "-batch-len", "0"},
		{"-alg", "list/lazy", "-batch-frac", "0.1", "-batch-dist", "pareto"},
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestCSVSchemaPinned pins the full -csv header verbatim and checks the
// row/header column agreement: the CI bench artifact and the committed
// BENCH_baseline.json are derived from exactly these columns, so any
// drift must show up here first.
func TestCSVSchemaPinned(t *testing.T) {
	const wantHeader = "alg,threads,size,updates,zipf,ebr,net,workload,mops,perthread_mean,perthread_stddev," +
		"waitfrac,restartfrac,restart3frac,maxwait_ns,fallbackfrac,resizes,final_width," +
		"scanfrac,scans_per_s,scan_mean_keys,scan_mean_ns,scan_max_ns," +
		"cursorfrac,pages_per_s,page_mean_keys,page_mean_ns,page_max_ns,cursor_retry_frac," +
		"page_pulls,page_pull_keys," +
		"batchfrac,batches_per_s,batch_mean_keys,batch_mean_ns,combine_frac,allocs_op," +
		"gc_pause_ns,pool_hit_frac,cache_hit_frac,cache_expiries"
	var out, errOut strings.Builder
	code := run([]string{
		"-alg", "list/lazy", "-threads", "2", "-size", "128",
		"-dur", "30ms", "-runs", "1", "-scan-frac", "0.1", "-cursor-frac", "0.1",
		"-batch-frac", "0.1", "-batch-len", "8", "-csv",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("csv cursor run exited %d (stderr: %s)", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv output not header+row (one row per cell):\n%s", out.String())
	}
	if lines[0] != wantHeader {
		t.Fatalf("csv header drifted:\n got %s\nwant %s", lines[0], wantHeader)
	}
	if nh, nr := strings.Count(lines[0], ","), strings.Count(lines[1], ","); nh != nr {
		t.Fatalf("csv header has %d columns, row has %d", nh+1, nr+1)
	}
}

// TestScanCSVColumns pins the CSV header and the scan columns. The
// column-count check uses a comma-free spec: composite specs carry
// commas of their own inside the alg column (a long-standing quirk of
// the unquoted CSV), which a naive comma count would miscount.
func TestScanCSVColumns(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-alg", "list/lazy", "-threads", "2", "-size", "128",
		"-dur", "30ms", "-runs", "1", "-scan-frac", "0.2", "-csv",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("csv scan run exited %d (stderr: %s)", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv output not header+row:\n%s", out.String())
	}
	for _, col := range []string{"scanfrac", "scans_per_s", "scan_mean_keys", "scan_mean_ns", "scan_max_ns"} {
		if !strings.Contains(lines[0], col) {
			t.Fatalf("csv header missing %q: %s", col, lines[0])
		}
	}
	if nh, nr := strings.Count(lines[0], ","), strings.Count(lines[1], ","); nh != nr {
		t.Fatalf("csv header has %d columns, row has %d", nh+1, nr+1)
	}
}

// TestBenchRunSmoke runs one tiny real cell end to end, including a
// resize, and checks the human-readable report shape.
func TestBenchRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-alg", "elastic(1,list/lazy)", "-threads", "2", "-size", "64",
		"-dur", "40ms", "-runs", "1", "-resize-at", "15ms:4",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("smoke run exited %d (stderr: %s)", code, errOut.String())
	}
	for _, want := range []string{"throughput", "lock wait frac", "elastic width"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestWorkloadFlagSmoke runs a named mix end to end: the report labels
// the workload, and a dynamic mix (flash) runs without error.
func TestWorkloadFlagSmoke(t *testing.T) {
	for _, mix := range []string{"ycsb-b", "flash"} {
		var out, errOut strings.Builder
		code := run([]string{
			"-workload", mix, "-alg", "list/lazy",
			"-threads", "2", "-size", "128", "-dur", "30ms", "-runs", "1",
		}, &out, &errOut)
		if code != 0 {
			t.Fatalf("%s: workload run exited %d (stderr: %s)", mix, code, errOut.String())
		}
		if !strings.Contains(out.String(), "workload           "+mix) {
			t.Fatalf("%s: report does not label the workload:\n%s", mix, out.String())
		}
	}
}

// TestWorkloadFlagOverride: an explicitly-set flag beats the mix field
// it names — ycsb-c is 100% reads, so forcing -updates 1 onto it must
// show 100% updates in the report.
func TestWorkloadFlagOverride(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-workload", "ycsb-c", "-updates", "1", "-alg", "list/lazy",
		"-threads", "1", "-size", "64", "-dur", "20ms", "-runs", "1",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("override run exited %d (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "/ 100%") {
		t.Fatalf("-updates 1 did not override the ycsb-c mix:\n%s", out.String())
	}
}

// TestWorkloadFlagRejectsUnknown: an unknown mix or modifier fails up
// front with the vocabulary in the message.
func TestWorkloadFlagRejectsUnknown(t *testing.T) {
	for _, wl := range []string{"nosuch-mix", "ycsb-a:nosuch=1", "ycsb-a:updates=2"} {
		var out, errOut strings.Builder
		if code := run([]string{"-workload", wl}, &out, &errOut); code == 0 {
			t.Fatalf("-workload %q accepted", wl)
		} else if !strings.Contains(errOut.String(), "-workload") {
			t.Fatalf("-workload %q: stderr does not point at the flag:\n%s", wl, errOut.String())
		}
	}
}

// TestWorkloadCSVColumn: the workload axis lands in the CSV between net
// and mops, verbatim for named mixes and "-" when unset.
func TestWorkloadCSVColumn(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-workload", "ycsb-b", "-alg", "list/lazy",
		"-threads", "1", "-size", "64", "-dur", "20ms", "-runs", "1", "-csv",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("csv workload run exited %d (stderr: %s)", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	hdr, row := strings.Split(lines[0], ","), strings.Split(lines[1], ",")
	col := -1
	for i, c := range hdr {
		if c == "workload" {
			col = i
		}
	}
	if col == -1 || hdr[col-1] != "net" {
		t.Fatalf("workload column misplaced in header: %s", lines[0])
	}
	if row[col] != "ycsb-b" {
		t.Fatalf("workload cell %q, want ycsb-b (row: %s)", row[col], lines[1])
	}
	// ycsb-b's mix values flow into the updates/zipf identity columns.
	if row[3] != "0.05" || row[4] != "0.99" {
		t.Fatalf("mix updates/zipf not reflected in CSV identity: %s", lines[1])
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-alg", "list/lazy", "-threads", "1", "-size", "64", "-dur", "20ms", "-runs", "1", "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("plain csv run exited %d", code)
	}
	row = strings.Split(strings.Split(strings.TrimSpace(out.String()), "\n")[1], ",")
	if row[col] != "-" {
		t.Fatalf("unset workload cell %q, want -", row[col])
	}
}

// TestAutoSpecSmoke: -auto-spec swaps the derived composite in for the
// leaf, reports the derivation, and records the composite in the CSV
// alg column (the cell identity must describe what was measured).
func TestAutoSpecSmoke(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-workload", "ycsb-b", "-auto-spec", "-alg", "list/lazy",
		"-threads", "2", "-size", "2048", "-dur", "30ms", "-runs", "1",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("auto-spec run exited %d (stderr: %s)", code, errOut.String())
	}
	for _, want := range []string{"auto-tuned", "readcache(", "sharded(", "cache    "} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("auto-spec report missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	errOut.Reset()
	code = run([]string{
		"-workload", "ycsb-b", "-auto-spec", "-alg", "list/lazy",
		"-threads", "2", "-size", "2048", "-dur", "30ms", "-runs", "1", "-csv",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("auto-spec csv run exited %d (stderr: %s)", code, errOut.String())
	}
	row := strings.Split(strings.TrimSpace(out.String()), "\n")[1]
	if !strings.HasPrefix(row, "readcache(") {
		t.Fatalf("csv alg column does not carry the derived spec: %s", row)
	}
}

// TestAutoSpecRejectsComposite: -auto-spec derives the composite
// itself, so handing it one is an error with the csdsmodel hint.
func TestAutoSpecRejectsComposite(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-auto-spec", "-alg", "sharded(8,list/lazy)", "-threads", "2"}, &out, &errOut); code == 0 {
		t.Fatal("-auto-spec accepted a composite -alg")
	}
	if !strings.Contains(errOut.String(), "csdsmodel -auto-spec") {
		t.Fatalf("stderr missing the csdsmodel hint:\n%s", errOut.String())
	}
}

// TestCacheFlagsSmoke: TTL + admission flags drive a readcache cell and
// the cache stats line reports hits and fills.
func TestCacheFlagsSmoke(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-alg", "readcache(128,list/lazy)", "-threads", "2", "-size", "256",
		"-zipf", "0.9", "-cache-ttl", "5ms", "-cache-admit", "tinylfu",
		"-dur", "40ms", "-runs", "1",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("cache run exited %d (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "hit frac") || !strings.Contains(out.String(), "expiries") {
		t.Fatalf("report missing the cache stats line:\n%s", out.String())
	}
}

// TestCacheFlagValidation rejects malformed cache flags up front.
func TestCacheFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "readcache(64,list/lazy)", "-cache-admit", "lru"},
		{"-alg", "readcache(64,list/lazy)", "-cache-ttl", "-5ms"},
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestDocsPinnedToLiveRoster holds the operator-facing docs to the live
// tool surface: the README and DESIGN sections PR 9 added must exist,
// every catalog mix name must appear in the README's workload table,
// and every csdsbench flag the docs mention must exist in the real flag
// set — renaming or dropping a flag without updating the manual fails
// here, not in a user's terminal.
func TestDocsPinnedToLiveRoster(t *testing.T) {
	readDoc := func(name string) string {
		data, err := os.ReadFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return string(data)
	}
	readme := readDoc("README.md")
	design := readDoc("DESIGN.md")

	for doc, heading := range map[string]string{
		"README.md": "## Production workloads & auto-tuning",
		"DESIGN.md": "## §7 Workloads & the tuning loop",
	} {
		body := readme
		if doc == "DESIGN.md" {
			body = design
		}
		if !strings.Contains(body, heading) {
			t.Errorf("%s lacks the %q section", doc, heading)
		}
	}

	for _, mix := range workload.Names() {
		if !strings.Contains(readme, "`"+mix+"`") {
			t.Errorf("README.md workload catalog lacks mix `%s`", mix)
		}
	}

	var errOut strings.Builder
	fs, _ := newFlags(&errOut)
	live := map[string]bool{
		// Not csdsbench flags, but legitimately shared lines with it in
		// the README: the examples' smoke flag.
		"-short": true,
	}
	for _, f := range flagRoster(fs) {
		live[f] = true
	}
	for _, doc := range []struct{ name, body string }{
		{"README.md", readme}, {"DESIGN.md", design},
	} {
		for ln, line := range strings.Split(doc.body, "\n") {
			if !strings.Contains(line, "csdsbench") {
				continue
			}
			for _, tok := range strings.Fields(line) {
				tok = strings.Trim(tok, "`'\"();,.:*")
				if len(tok) < 2 || tok[0] != '-' || tok[1] == '-' {
					continue
				}
				if !live[tok] {
					t.Errorf("%s:%d mentions csdsbench flag %q, not in the live roster", doc.name, ln+1, tok)
				}
			}
		}
	}
}
