// Networked mode: -net host:port turns csdsbench into a closed-loop
// memcache-text client of a running csdsd, reusing the same workload
// generator, mix flags, and reporting path as the in-process harness.
// Each worker goroutine owns one connection and drives one operation at
// a time (closed loop), so the measured throughput is requests actually
// completed over the wire, with batched ops traveling as pipelined
// bursts (mget, pipelined set/delete trains) exactly the way the server
// merges them into core.Batcher batches.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"csds/internal/core"
	"csds/internal/fault"
	"csds/internal/harness"
	"csds/internal/server"
	"csds/internal/stats"
	"csds/internal/workload"
	"csds/internal/xrand"
)

// netPagePull bounds one range pull in the one-shot scan path (the
// server caps pages at its own limit; staying under it avoids a
// CLIENT_ERROR on huge scan windows).
const netPagePull = 1024

// netRun drives the configured workload against a remote csdsd and
// folds the per-worker counters into the same Result the local harness
// produces. Server-side effects the client cannot observe (EBR, HTM,
// resizes) stay zero in the Result; the CSV's net column marks the row
// so those zeros are never mistaken for local measurements. With a
// fault plan armed the duration-driven loop is replaced by the
// fixed-budget wire chaos cell (chaos.go), whose returned info the text
// report renders.
func netRun(addr string, cfg harness.Config, plan *fault.Plan) (harness.Result, netChaosInfo, error) {
	if plan != nil {
		return netChaosRun(addr, cfg, plan)
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 100 * time.Millisecond
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xD1CE
	}
	cfg.Workload = cfg.Workload.WithDefaults()
	gen := workload.NewGenerator(cfg.Workload)

	if err := netPrefill(addr, gen.Config()); err != nil {
		return harness.Result{}, netChaosInfo{}, err
	}
	agg := harness.Result{Config: cfg}
	for r := 0; r < cfg.Runs; r++ {
		res, err := netRunOnce(addr, cfg, gen, uint64(r))
		if err != nil {
			return harness.Result{}, netChaosInfo{}, err
		}
		agg.Accumulate(&res, cfg.Runs)
	}
	return agg, netChaosInfo{}, nil
}

// netPrefill fills the remote structure to steady state the way
// Generator.Fill does locally — every other key, over the wire, in
// pipelined trains so the fill is bursts, not round trips. Keys already
// present (a warm server from a previous cell) answer NOT_STORED, which
// is exactly the idempotence prefill wants.
func netPrefill(addr string, w workload.Config) error {
	c, err := server.DialRetry(addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	const train = 256
	pending := 0
	flush := func() error {
		if err := c.Flush(); err != nil {
			return err
		}
		for ; pending > 0; pending-- {
			if _, err := c.RecvStored(); err != nil {
				return err
			}
		}
		return nil
	}
	n := 0
	for k := int64(1); k <= w.KeySpace && n < w.Size; k += 2 {
		if err := c.PipeSet(core.Key(k), core.Value(k)); err != nil {
			return err
		}
		pending++
		n++
		if pending == train {
			if err := flush(); err != nil {
				return fmt.Errorf("csdsbench: prefill: %w", err)
			}
		}
	}
	if err := flush(); err != nil {
		return fmt.Errorf("csdsbench: prefill: %w", err)
	}
	return nil
}

func netRunOnce(addr string, cfg harness.Config, gen *workload.Generator, round uint64) (harness.Result, error) {
	ths := make([]stats.Thread, cfg.Threads)
	clients := make([]*server.Client, cfg.Threads)
	for w := range clients {
		c, err := server.Dial(addr)
		if err != nil {
			for _, pc := range clients[:w] {
				pc.Close()
			}
			return harness.Result{}, fmt.Errorf("csdsbench: %w", err)
		}
		clients[w] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	var stop atomic.Bool
	errs := make([]error, cfg.Threads)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			errs[w] = netWorker(clients[w], gen, cfg, &ths[w], w, round, &stop)
		}(w)
	}
	close(start)
	timer := time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
	wg.Wait()
	timer.Stop()
	for _, err := range errs {
		if err != nil {
			return harness.Result{}, fmt.Errorf("csdsbench: net worker: %w", err)
		}
	}
	return harness.SummarizeThreads(cfg, ths), nil
}

// netWorker is one closed-loop connection: the same operation mix as the
// local harness, with the Multi* classes traveling as pipelined trains
// and paginated scans resuming via the wire cursor token.
func netWorker(c *server.Client, gen *workload.Generator, cfg harness.Config, th *stats.Thread, w int, round uint64, stop *atomic.Bool) error {
	rng := xrand.New(cfg.Seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15 ^ round<<32)
	keyBuf := make([]core.Key, 0, 64)
	valBuf := make([]core.Value, 0, 64)
	okBuf := make([]bool, 0, 64)
	t0 := time.Now()
	defer func() { th.ActiveNs = uint64(time.Since(t0)) }()
	for !stop.Load() {
		switch op := gen.NextOp(rng); op {
		case workload.OpGet:
			_, hit, err := c.Get(gen.Key(rng))
			if err != nil {
				return err
			}
			th.RecordRead(hit)
		case workload.OpPut:
			k := gen.Key(rng)
			stored, err := c.Set(k, core.Value(k))
			if err != nil {
				return err
			}
			th.RecordInsert(stored)
		case workload.OpRemove:
			ok, err := c.Delete(gen.Key(rng))
			if err != nil {
				return err
			}
			th.RecordRemove(ok)
		case workload.OpScan:
			// One-shot scan: pull the whole window through the cursor
			// extension, timed and recorded as a single scan like the
			// local Ranger path.
			lo, hi := gen.ScanRange(rng)
			keys := 0
			scanStart := time.Now()
			token, done, err := c.Range(lo, hi, netPagePull, func(core.Key, core.Value) { keys++ })
			for err == nil && !done {
				token, done, err = c.Page(token, netPagePull, func(core.Key, core.Value) { keys++ })
			}
			if err != nil {
				return err
			}
			th.RecordScan(keys, uint64(time.Since(scanStart)))
		case workload.OpCursorScan:
			// Paginated scan: PageLen-sized pages, each its own round
			// trip resumed from the returned token — the wire twin of the
			// local PageCursor loop.
			lo, hi := gen.ScanRange(rng)
			var token string
			var done bool
			var err error
			first := true
			for !done {
				keys := 0
				n := int(gen.PageLen(rng))
				pageStart := time.Now()
				if first {
					token, done, err = c.Range(lo, hi, n, func(core.Key, core.Value) { keys++ })
					first = false
				} else {
					token, done, err = c.Page(token, n, func(core.Key, core.Value) { keys++ })
				}
				if err != nil {
					return err
				}
				th.RecordPage(keys, uint64(time.Since(pageStart)))
			}
			th.RecordCursorScan()
		case workload.OpMultiGet:
			n := int(gen.BatchLen(rng))
			keyBuf = keyBuf[:0]
			for i := 0; i < n; i++ {
				keyBuf = append(keyBuf, gen.Key(rng))
			}
			valBuf = append(valBuf[:0], make([]core.Value, n)...)
			okBuf = append(okBuf[:0], make([]bool, n)...)
			batchStart := time.Now()
			if err := c.MultiGet(keyBuf, valBuf, okBuf); err != nil {
				return err
			}
			th.RecordBatch(n, uint64(time.Since(batchStart)))
		case workload.OpMultiPut, workload.OpMultiRemove:
			// Batched updates travel as one pipelined train: n requests,
			// one flush, n replies — the burst shape the server merges
			// into a single write-queue entry.
			n := int(gen.BatchLen(rng))
			batchStart := time.Now()
			for i := 0; i < n; i++ {
				k := gen.Key(rng)
				var err error
				if op == workload.OpMultiPut {
					err = c.PipeSet(k, core.Value(k))
				} else {
					err = c.PipeDelete(k)
				}
				if err != nil {
					return err
				}
			}
			if err := c.Flush(); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				var err error
				if op == workload.OpMultiPut {
					_, err = c.RecvStored()
				} else {
					_, err = c.RecvDeleted()
				}
				if err != nil {
					return err
				}
			}
			th.RecordBatch(n, uint64(time.Since(batchStart)))
		}
	}
	return nil
}
