// Command csdsd serves a csds structure over TCP in the memcache text
// dialect (get/gets/mget/set/delete plus the range/page cursor
// extension). Any composite registry spec can be served:
//
//	csdsd -addr :11211 -alg 'sharded(32,hashtable/lazy)' -ebr
//
// SIGTERM or SIGINT triggers a graceful drain: the listener closes,
// in-flight bursts finish and flush, every connection's EBR record is
// unregistered, and the reclamation domain is quiesced; the process
// exits nonzero if any retired node was left unreclaimed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"csds/internal/fault"
	"csds/internal/server"

	_ "csds/internal/bst"
	_ "csds/internal/combinator"
	_ "csds/internal/hashtable"
	_ "csds/internal/list"
	_ "csds/internal/skiplist"
)

type daemonOpts struct {
	addr     string
	alg      string
	size     int
	ebr      bool
	inflight int
	writeq   int
	burst    int
	drain    time.Duration
	idle     time.Duration
	watchdog time.Duration
	fault    string
	quiet    bool
}

func newFlags(stderr io.Writer) (*flag.FlagSet, *daemonOpts) {
	fs := flag.NewFlagSet("csdsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := &daemonOpts{}
	fs.StringVar(&o.addr, "addr", "127.0.0.1:11211", "TCP listen address")
	fs.StringVar(&o.alg, "alg", "sharded(32,hashtable/lazy)", "algorithm spec to serve (any registry composite)")
	fs.IntVar(&o.size, "size", 1<<16, "expected steady-state element count (sizing hint)")
	fs.BoolVar(&o.ebr, "ebr", true, "attach an epoch-based reclamation domain")
	fs.IntVar(&o.inflight, "inflight", 128, "global in-flight request cap; excess sheds SERVER_ERROR busy (<0: unlimited)")
	fs.IntVar(&o.writeq, "writeq", 32, "per-connection write-queue depth (backpressure bound)")
	fs.IntVar(&o.burst, "burst", 64, "max pipelined requests merged per read-loop turn")
	fs.DurationVar(&o.drain, "drain", 30*time.Second, "graceful drain budget after SIGTERM")
	fs.DurationVar(&o.idle, "idle-timeout", 0, "evict connections with no read progress for this long (0: never)")
	fs.DurationVar(&o.watchdog, "watchdog", time.Second, "EBR watchdog tick: expel wedged reclamation records (0: off)")
	fs.StringVar(&o.fault, "fault", "", "fault-injection schedule, e.g. 'chaos:seed=7' or 'shed.busy:every=50;conn.drop:p=0.001;seed=3' (empty: off)")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress per-connection diagnostics")
	return fs, o
}

func run(args []string, stdout, stderr io.Writer) int {
	fs, o := newFlags(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := log.New(stderr, "csdsd: ", log.LstdFlags)
	plan, err := fault.ParsePlan(o.fault)
	if err != nil {
		fmt.Fprintln(stderr, "csdsd: -fault:", err)
		return 2
	}
	cfg := server.Config{
		Spec:         o.alg,
		Size:         o.size,
		UseEBR:       o.ebr,
		MaxInflight:  o.inflight,
		WriteQueue:   o.writeq,
		MaxBurst:     o.burst,
		IdleTimeout:  o.idle,
		WatchdogTick: o.watchdog,
		Fault:        plan,
	}
	if !o.quiet {
		cfg.Logf = logger.Printf
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() {
		logger.Printf("serving %s on %s (ebr=%v inflight=%d)", o.alg, o.addr, o.ebr, o.inflight)
		serveErr <- srv.ListenAndServe(o.addr)
	}()

	select {
	case err := <-serveErr:
		// Listener failed before any signal (bad address, port in use).
		fmt.Fprintln(stderr, err)
		return 1
	case sig := <-sigs:
		logger.Printf("%v: draining (budget %v)", sig, o.drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	<-serveErr // Serve returns nil once the listener closes under drain

	a := srv.Audit()
	fmt.Fprintf(stdout, "csdsd: drained: conns=%d ops=%d shed=%d evictions=%d watchdog_fires=%d combine_stalls=%d faults=%d lock_waits=%d restarts=%d retired=%d reclaimed=%d\n",
		a.Conns, a.Ops, a.Shed, a.Evictions, a.WatchdogFires, a.CombineStalls, a.Faults, a.LockWaits, a.Restarts, a.Retired, a.Reclaimed)
	if t := srv.FaultTally(); t != nil {
		fmt.Fprintf(stdout, "csdsd: fault fires: %s\n", t)
	}
	if drainErr != nil {
		fmt.Fprintln(stderr, "csdsd: drain:", drainErr)
		return 1
	}
	if a.Retired != a.Reclaimed {
		fmt.Fprintf(stderr, "csdsd: reclamation leak: retired %d != reclaimed %d\n", a.Retired, a.Reclaimed)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
