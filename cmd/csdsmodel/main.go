// Command csdsmodel evaluates the Section 6 birthday-paradox conflict
// model: the paper's four numeric examples by default, or a custom
// scenario from flags.
//
// Usage:
//
//	csdsmodel                 # reproduce §6.1–§6.4 numbers
//	csdsmodel -threads 40 -size 512 -updates 0.2 -writefrac 0.1 -kind list
package main

import (
	"flag"
	"fmt"
	"os"

	"csds/internal/birthday"
	"csds/internal/xrand"
)

func main() {
	threads := flag.Int("threads", 0, "thread count (0 = print the paper's examples)")
	size := flag.Int("size", 512, "structure size (elements or buckets)")
	updates := flag.Float64("updates", 0.2, "update ratio u")
	durUpd := flag.Float64("durupdate", 1.1, "relative update duration")
	durRead := flag.Float64("durread", 1.0, "relative read duration")
	writeFrac := flag.Float64("writefrac", 0.1, "write-phase share of an update (dw/(dw+dp))")
	kind := flag.String("kind", "list", "structure kind: list | hash")
	zipf := flag.Float64("zipf", 0, "Zipfian exponent for the non-uniform term (0 = uniform)")
	retries := flag.Int("retries", 5, "TSX speculation budget")
	flag.Parse()

	if *threads == 0 {
		paperExamples()
		return
	}
	s := birthday.Scenario{
		Threads: *threads, Size: *size, UpdateRatio: *updates,
		DurUpdate: *durUpd, DurRead: *durRead, WriteFrac: *writeFrac,
		TSXRetries: *retries,
	}
	if *zipf > 0 {
		s.SumP2 = xrand.NewZipf(int64(*size), *zipf).SumPSquared()
	}
	fmt.Printf("scenario: t=%d n=%d u=%.2f writefrac=%.2f kind=%s zipf=%.2f\n",
		s.Threads, s.Size, s.UpdateRatio, s.WriteFrac, *kind, *zipf)
	fmt.Printf("  f_w (Eq.2)           = %.4f\n", s.FW())
	switch *kind {
	case "hash":
		fmt.Printf("  p_conflict (Eq.3+4)  = %.4f (%.2f%%)\n", s.HashConflict(), 100*s.HashConflict())
		fmt.Printf("  p_lock TSX (Eq.7)    = %.3e\n", s.HashTSXFallback())
	case "list":
		fmt.Printf("  p_conflict (Eq.3+5)  = %.4f (%.2f%%)\n", s.ListConflict(), 100*s.ListConflict())
		fmt.Printf("  TSX attempt conflict = %.4f\n", s.ListTSXConflict())
		fmt.Printf("  p_lock TSX (Eq.8)    = %.3e\n", s.ListTSXFallback())
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if s.SumP2 > 0 {
		fmt.Printf("  p_conflict zipf (Eq.6)= %.4f (%.2f%%)\n", s.NonUniformConflict(), 100*s.NonUniformConflict())
	}
}

func paperExamples() {
	fmt.Println("Section 6 numeric examples (paper value in brackets)")
	h := birthday.PaperHashExample()
	fmt.Println("\n§6.1 hash table: 1024 buckets, 20 threads, 10% updates, d_p = 0")
	fmt.Printf("  f_u = f_w            = %.4f   [0.18]\n", h.FW())
	fmt.Printf("  p_conflict           = %.4f   [0.0058]\n", h.HashConflict())

	l := birthday.PaperListExample()
	fmt.Println("\n§6.2 linked list: 512 elements, 40 threads, 20% updates, write ~10% of update")
	fmt.Printf("  f_w                  = %.4f   [0.0215]\n", l.FW())
	fmt.Printf("  p_conflict           = %.4f   [0.0021]\n", l.ListConflict())

	z := l
	z.SumP2 = xrand.NewZipf(int64(z.Size), 0.8).SumPSquared()
	fmt.Println("\n§6.3 non-uniform: same list, Zipf s = 0.8 (Poisson approximation)")
	fmt.Printf("  p_conflict           = %.4f   [0.0047]\n", z.NonUniformConflict())

	fmt.Println("\n§6.4 TSX-based versions (5 retries before locking)")
	fmt.Printf("  hash p_lock          = %.3e   [5e-6]\n", h.HashTSXFallback())
	fmt.Printf("  list attempt conflict= %.4f   [0.16]\n", l.ListTSXConflict())
	fmt.Printf("  list p_lock          = %.3e   [1e-5]\n", l.ListTSXFallback())
}
