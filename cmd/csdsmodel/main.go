// Command csdsmodel is the analytic side of the tuning loop: it
// evaluates the Section 6 birthday-paradox conflict model (the paper's
// four numeric examples by default, or a custom scenario from flags),
// validates the internal/sim cost model against measured bench-grid
// cells, and derives auto-tuned composite specifications from a named
// workload (the same derivation csdsbench -auto-spec runs).
//
// Usage:
//
//	csdsmodel                 # reproduce §6.1–§6.4 numbers
//	csdsmodel -threads 40 -size 512 -updates 0.2 -writefrac 0.1 -kind list
//	csdsmodel -validate BENCH_baseline.json
//	csdsmodel -auto-spec -workload ycsb-b -leaf list/lazy -threads 4 -size 2048
//
// -validate loads a benchsnap JSON snapshot, predicts every in-process
// cell's point throughput with the composite-aware simulator bridge
// (internal/tuner.PredictCell), fits one global scale factor — the
// simulator predicts shape, the factor absorbs the host's absolute
// speed — and reports the per-cell residual error plus the grid MAE.
// Networked cells (net=1) are skipped: loopback round-trips dominate
// them and the simulator does not model the wire.
//
// -auto-spec runs the tuner derivation and prints the composite spec
// with one note per derived parameter; -threads 0 defaults to
// GOMAXPROCS here (and only here — the derivation itself is a pure
// function of its inputs, so CI can pin derived specs as grid-cell
// identities).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"csds/internal/birthday"
	"csds/internal/tuner"
	"csds/internal/workload"
	"csds/internal/xrand"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("csdsmodel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threads := fs.Int("threads", 0, "thread count (0 = print the paper's examples; with -auto-spec, 0 = GOMAXPROCS)")
	size := fs.Int("size", 512, "structure size (elements or buckets)")
	updates := fs.Float64("updates", 0.2, "update ratio u")
	durUpd := fs.Float64("durupdate", 1.1, "relative update duration")
	durRead := fs.Float64("durread", 1.0, "relative read duration")
	writeFrac := fs.Float64("writefrac", 0.1, "write-phase share of an update (dw/(dw+dp))")
	kind := fs.String("kind", "list", "structure kind: list | hash")
	zipf := fs.Float64("zipf", 0, "Zipfian exponent for the non-uniform term (0 = uniform)")
	retries := fs.Int("retries", 5, "TSX speculation budget")
	validate := fs.String("validate", "", "benchsnap JSON snapshot to validate the simulator against")
	autoSpec := fs.Bool("auto-spec", false, "derive an auto-tuned composite spec for -workload over -leaf")
	mix := fs.String("workload", "paper", "named workload mix for -auto-spec (see csdsbench -list)")
	leaf := fs.String("leaf", "list/lazy", "leaf algorithm for -auto-spec to wrap")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *validate != "" {
		return runValidate(*validate, stdout, stderr)
	}
	if *autoSpec {
		t := *threads
		if t == 0 {
			t = runtime.GOMAXPROCS(0)
		}
		return runAutoSpec(*mix, *leaf, t, *size, stdout, stderr)
	}
	if *threads == 0 {
		paperExamples(stdout)
		return 0
	}
	s := birthday.Scenario{
		Threads: *threads, Size: *size, UpdateRatio: *updates,
		DurUpdate: *durUpd, DurRead: *durRead, WriteFrac: *writeFrac,
		TSXRetries: *retries,
	}
	if *zipf > 0 {
		s.SumP2 = xrand.NewZipf(int64(*size), *zipf).SumPSquared()
	}
	fmt.Fprintf(stdout, "scenario: t=%d n=%d u=%.2f writefrac=%.2f kind=%s zipf=%.2f\n",
		s.Threads, s.Size, s.UpdateRatio, s.WriteFrac, *kind, *zipf)
	fmt.Fprintf(stdout, "  f_w (Eq.2)           = %.4f\n", s.FW())
	switch *kind {
	case "hash":
		fmt.Fprintf(stdout, "  p_conflict (Eq.3+4)  = %.4f (%.2f%%)\n", s.HashConflict(), 100*s.HashConflict())
		fmt.Fprintf(stdout, "  p_lock TSX (Eq.7)    = %.3e\n", s.HashTSXFallback())
	case "list":
		fmt.Fprintf(stdout, "  p_conflict (Eq.3+5)  = %.4f (%.2f%%)\n", s.ListConflict(), 100*s.ListConflict())
		fmt.Fprintf(stdout, "  TSX attempt conflict = %.4f\n", s.ListTSXConflict())
		fmt.Fprintf(stdout, "  p_lock TSX (Eq.8)    = %.3e\n", s.ListTSXFallback())
	default:
		fmt.Fprintf(stderr, "unknown kind %q\n", *kind)
		return 2
	}
	if s.SumP2 > 0 {
		fmt.Fprintf(stdout, "  p_conflict zipf (Eq.6)= %.4f (%.2f%%)\n", s.NonUniformConflict(), 100*s.NonUniformConflict())
	}
	return 0
}

// runAutoSpec derives and explains the composite spec for one workload.
// The first output line is machine-readable ("spec: <spec>"); the notes
// after it explain each parameter.
func runAutoSpec(mix, leaf string, threads, size int, stdout, stderr io.Writer) int {
	cfg, err := workload.ParseMix(mix)
	if err != nil {
		fmt.Fprintf(stderr, "csdsmodel: %v\n", err)
		return 1
	}
	d, err := tuner.Derive(tuner.Inputs{Leaf: leaf, Threads: threads, Size: size, Workload: cfg})
	if err != nil {
		fmt.Fprintf(stderr, "csdsmodel: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "spec: %s\n", d.Spec)
	fmt.Fprintf(stdout, "workload %s, leaf %s, %d threads, %d elements\n", mix, leaf, threads, size)
	for _, n := range d.Notes {
		fmt.Fprintf(stdout, "  - %s\n", n)
	}
	if d.CacheSlots > 0 {
		fmt.Fprintf(stdout, "run it: csdsbench -workload %s -auto-spec -threads %d -size %d   (admission: -cache-admit %s)\n",
			mix, threads, size, d.CacheAdmission)
	} else {
		fmt.Fprintf(stdout, "run it: csdsbench -workload %s -auto-spec -threads %d -size %d\n", mix, threads, size)
	}
	return 0
}

// snapshot mirrors the benchsnap JSON artifact (cmd/benchsnap is a main
// package, so the three fields are re-declared here; the format is
// pinned by benchsnap's own tests).
type snapshot struct {
	Schema  string           `json:"schema"`
	Columns []string         `json:"columns"`
	Cells   []map[string]any `json:"cells"`
}

func cellNum(cell map[string]any, col string) float64 {
	v, _ := cell[col].(float64)
	return v
}

// runValidate loads a benchsnap snapshot and reports the sim-vs-live
// error per cell after a global scale fit.
func runValidate(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "csdsmodel: %v\n", err)
		return 1
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		fmt.Fprintf(stderr, "csdsmodel: %s: %v\n", path, err)
		return 1
	}
	var cells []tuner.Cell
	var keys []string
	var live []float64
	skippedNet := 0
	for _, cell := range snap.Cells {
		alg, _ := cell["alg"].(string)
		if cellNum(cell, "net") != 0 {
			skippedNet++ // loopback RTT dominates; the simulator has no wire model
			continue
		}
		cells = append(cells, tuner.Cell{
			Alg:        alg,
			Threads:    int(cellNum(cell, "threads")),
			Size:       int(cellNum(cell, "size")),
			Updates:    cellNum(cell, "updates"),
			Zipf:       cellNum(cell, "zipf"),
			ScanFrac:   cellNum(cell, "scanfrac"),
			CursorFrac: cellNum(cell, "cursorfrac"),
			BatchFrac:  cellNum(cell, "batchfrac"),
		})
		key := fmt.Sprintf("%s zipf=%g", alg, cellNum(cell, "zipf"))
		if cellNum(cell, "ebr") != 0 {
			key += " ebr=1"
		}
		if cellNum(cell, "batchfrac") != 0 {
			key += fmt.Sprintf(" batchfrac=%g", cellNum(cell, "batchfrac"))
		}
		if w, _ := cell["workload"].(string); w != "" && w != "-" {
			key += " workload=" + w
		}
		keys = append(keys, key)
		live = append(live, cellNum(cell, "mops")*1e6)
	}
	v, err := tuner.Validate(cells, keys, live)
	if err != nil {
		fmt.Fprintf(stderr, "csdsmodel: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "sim-vs-live validation of %s (%s)\n", path, snap.Schema)
	fmt.Fprintf(stdout, "global scale factor %.3g (geometric mean live/predicted; the simulator predicts shape, not nanoseconds)\n", v.Scale)
	sorted := append([]tuner.CellError(nil), v.Cells...)
	sort.Slice(sorted, func(i, j int) bool { return abs(sorted[i].ResidFrac) < abs(sorted[j].ResidFrac) })
	for _, c := range sorted {
		fmt.Fprintf(stdout, "  %-60s live %8.3f Mops  pred %8.3f Mops  error %+6.1f%%\n",
			c.Key, c.LiveMops, c.PredMops, 100*c.ResidFrac)
	}
	fmt.Fprintf(stdout, "%d cells validated (%d networked skipped), mean |error| %.1f%%\n",
		len(v.Cells), skippedNet, 100*v.MAEFrac)
	return 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func paperExamples(w io.Writer) {
	fmt.Fprintln(w, "Section 6 numeric examples (paper value in brackets)")
	h := birthday.PaperHashExample()
	fmt.Fprintln(w, "\n§6.1 hash table: 1024 buckets, 20 threads, 10% updates, d_p = 0")
	fmt.Fprintf(w, "  f_u = f_w            = %.4f   [0.18]\n", h.FW())
	fmt.Fprintf(w, "  p_conflict           = %.4f   [0.0058]\n", h.HashConflict())

	l := birthday.PaperListExample()
	fmt.Fprintln(w, "\n§6.2 linked list: 512 elements, 40 threads, 20% updates, write ~10% of update")
	fmt.Fprintf(w, "  f_w                  = %.4f   [0.0215]\n", l.FW())
	fmt.Fprintf(w, "  p_conflict           = %.4f   [0.0021]\n", l.ListConflict())

	z := l
	z.SumP2 = xrand.NewZipf(int64(z.Size), 0.8).SumPSquared()
	fmt.Fprintln(w, "\n§6.3 non-uniform: same list, Zipf s = 0.8 (Poisson approximation)")
	fmt.Fprintf(w, "  p_conflict           = %.4f   [0.0047]\n", z.NonUniformConflict())

	fmt.Fprintln(w, "\n§6.4 TSX-based versions (5 retries before locking)")
	fmt.Fprintf(w, "  hash p_lock          = %.3e   [5e-6]\n", h.HashTSXFallback())
	fmt.Fprintf(w, "  list attempt conflict= %.4f   [0.16]\n", l.ListTSXConflict())
	fmt.Fprintf(w, "  list p_lock          = %.3e   [1e-5]\n", l.ListTSXFallback())
}
