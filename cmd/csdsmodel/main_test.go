package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPaperExamplesDefault: no flags still reproduces the §6 numbers.
func TestPaperExamplesDefault(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	for _, want := range []string{"§6.1", "§6.2", "§6.3", "§6.4", "[0.0058]", "[0.16]"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("paper-examples output lacks %q:\n%s", want, out.String())
		}
	}
}

// TestAutoSpecDerivesGridCell: the -auto-spec mode prints the same spec
// the tuner derives for the CI grid's auto-tuned cell, machine-readably
// on the first line, with a note per parameter and a csdsbench recipe.
func TestAutoSpecDerivesGridCell(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-auto-spec", "-workload", "ycsb-b", "-leaf", "list/lazy", "-threads", "4", "-size", "2048"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	lines := strings.Split(out.String(), "\n")
	if want := "spec: readcache(1024,sharded(32,list/lazy))"; lines[0] != want {
		t.Fatalf("first line %q, want %q (the committed grid-cell identity)", lines[0], want)
	}
	for _, want := range []string{"width 32", "cache 1024 slots", "csdsbench -workload ycsb-b -auto-spec", "-cache-admit tinylfu"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("auto-spec output lacks %q:\n%s", want, out.String())
		}
	}
}

// TestAutoSpecRejectsBadInputs: unknown mixes and composite leaves fail
// with a diagnostic, not a zero exit.
func TestAutoSpecRejectsBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-auto-spec", "-workload", "nosuch-mix", "-threads", "4"},
		{"-auto-spec", "-leaf", "sharded(8,list/lazy)", "-threads", "4"},
	} {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code == 0 {
			t.Fatalf("%v exited 0; stderr %q", args, errb.String())
		}
		if errb.Len() == 0 {
			t.Fatalf("%v failed silently", args)
		}
	}
}

// TestValidateReportsPerCellError feeds a synthetic two-cell snapshot
// whose "measurements" are a known multiple of the predictions: the
// report must carry both cells, the fitted factor and a near-zero MAE,
// and must skip the networked cell.
func TestValidateReportsPerCellError(t *testing.T) {
	const snap = `{
  "schema": "csds-bench-v6",
  "columns": ["alg", "threads", "size", "updates", "zipf", "ebr", "net", "mops"],
  "cells": [
    {"alg": "list/lazy", "threads": 4, "size": 2048, "updates": 0.1, "zipf": 0, "ebr": 0, "net": 0, "mops": 0.35},
    {"alg": "sharded(8,list/lazy)", "threads": 4, "size": 2048, "updates": 0.1, "zipf": 0, "ebr": 0, "net": 0, "mops": 2.3},
    {"alg": "sharded(8,list/lazy)", "threads": 4, "size": 2048, "updates": 0.1, "zipf": 0, "ebr": 0, "net": 1, "mops": 0.09}
  ]
}`
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(snap), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-validate", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"global scale factor",
		"2 cells validated (1 networked skipped)",
		"mean |error|",
		"list/lazy zipf=0",
		"sharded(8,list/lazy) zipf=0",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("validate output lacks %q:\n%s", want, got)
		}
	}
}

// TestValidateRejectsGarbage: a missing file and a non-JSON file both
// error out.
func TestValidateRejectsGarbage(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-validate", filepath.Join(t.TempDir(), "absent.json")}, &out, &errb); code == 0 {
		t.Fatal("missing snapshot accepted")
	}
	path := filepath.Join(t.TempDir(), "junk.json")
	os.WriteFile(path, []byte("not json"), 0o644)
	errb.Reset()
	if code := run([]string{"-validate", path}, &out, &errb); code == 0 {
		t.Fatal("non-JSON snapshot accepted")
	}
}

// TestDocsMentionLiveFlags: every csdsmodel flag the README or DESIGN
// mention must exist in the live flag set (the roster is recovered from
// the -h usage text, so this survives flag additions without a mirror
// list).
func TestDocsMentionLiveFlags(t *testing.T) {
	var out, usage strings.Builder
	if code := run([]string{"-h"}, &out, &usage); code != 0 {
		t.Fatalf("-h exited %d", code)
	}
	live := map[string]bool{}
	for _, line := range strings.Split(usage.String(), "\n") {
		f := strings.Fields(strings.TrimSpace(line))
		if len(f) > 0 && strings.HasPrefix(f[0], "-") {
			live[f[0]] = true
		}
	}
	if len(live) < 5 {
		t.Fatalf("usage text yielded only %d flags:\n%s", len(live), usage.String())
	}
	for _, name := range []string{"README.md", "DESIGN.md"} {
		data, err := os.ReadFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for ln, line := range strings.Split(string(data), "\n") {
			if !strings.Contains(line, "csdsmodel") {
				continue
			}
			for _, tok := range strings.Fields(line) {
				tok = strings.Trim(tok, "`'\"();,.:*")
				if len(tok) < 2 || tok[0] != '-' || tok[1] == '-' {
					continue
				}
				if !live[tok] {
					t.Errorf("%s:%d mentions csdsmodel flag %q, not in the live flag set", name, ln+1, tok)
				}
			}
		}
	}
}

// TestScenarioModeStillWorks: the original flag-driven Section 6
// calculator is unchanged by the tuner growth.
func TestScenarioModeStillWorks(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-threads", "40", "-size", "512", "-updates", "0.2", "-kind", "list", "-zipf", "0.8"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	for _, want := range []string{"p_conflict (Eq.3+5)", "p_conflict zipf (Eq.6)", "p_lock TSX (Eq.8)"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("scenario output lacks %q:\n%s", want, out.String())
		}
	}
}
