// Command figures regenerates every figure and table of the paper's
// evaluation. Each experiment can be produced by two engines:
//
//	-engine run    the real concurrent implementations measured on this
//	               host (goroutine harness);
//	-engine sim    the calibrated multicore simulator configured as the
//	               paper's machines (20-core Xeon, 8-thread TSX Haswell) —
//	               use this to see the 40-thread *shapes* on small hosts;
//	-engine model  the Section 6 closed-form birthday model (fig=model).
//	-engine both   run followed by sim (default).
//
// Usage:
//
//	figures -fig 1            # Figure 1
//	figures -fig 8 -engine sim
//	figures -fig all -dur 2s -runs 5
//	figures -fig t2           # Table 2; t3 = Table 3; outliers = §5.1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"csds/internal/birthday"
	"csds/internal/harness"
	"csds/internal/interrupt"
	"csds/internal/queuestack"
	"csds/internal/sim"
	"csds/internal/workload"
	"csds/internal/xrand"

	_ "csds/internal/bst"
	_ "csds/internal/hashtable"
	_ "csds/internal/list"
	_ "csds/internal/skiplist"
)

var (
	engine = flag.String("engine", "both", "run | sim | model | both")
	dur    = flag.Duration("dur", 300*time.Millisecond, "harness window per run (paper: 5s)")
	runs   = flag.Int("runs", 1, "harness runs to average (paper: 11)")
)

var featured = []string{"list/lazy", "skiplist/herlihy", "hashtable/lazy", "bst/tk"}

func main() {
	fig := flag.String("fig", "all", "1|2|3|4|5|6|7|8|9|10|t2|t3|outliers|model|all")
	flag.Parse()

	figs := map[string]func(){
		"1": fig1, "2": fig2, "3": fig3, "4": fig4, "5": fig5, "6": fig6,
		"7": fig7, "8": fig8, "9": fig9, "10": fig10,
		"t2": table2, "t3": table3, "outliers": outliers, "model": model,
	}
	if *fig == "all" {
		for _, k := range []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "t2", "t3", "outliers", "model"} {
			figs[k]()
			fmt.Println()
		}
		return
	}
	f, ok := figs[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	f()
}

func wantRun() bool { return *engine == "run" || *engine == "both" }
func wantSim() bool { return *engine == "sim" || *engine == "both" }

func runCell(alg string, threads, size int, u, zipf float64) harness.Result {
	res, err := harness.Run(harness.Config{
		Algorithm: alg, Threads: threads, Duration: *dur, Runs: *runs,
		Workload: workload.Config{Size: size, UpdateRatio: u, ZipfS: zipf},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}

func simCell(alg string, threads, size int, u float64) sim.Result {
	st, ok := sim.ModelFor(alg)
	if !ok {
		fmt.Fprintf(os.Stderr, "no sim model for %s\n", alg)
		os.Exit(1)
	}
	return sim.Run(sim.Config{
		Machine: sim.PaperXeon(), Structure: st, Threads: threads,
		Size: size, UpdateRatio: u, Ops: 5000, Seed: 42,
	})
}

func header(s string) { fmt.Printf("=== %s ===\n", s) }

func fig1() {
	header("Figure 1: blocking vs lock-free vs wait-free list (1024 elems, 10% upd)")
	algs := []string{"list/lazy", "list/harris", "list/waitfree"}
	if wantRun() {
		fmt.Println("[engine=run: this host]")
		fmt.Printf("%-8s %14s %14s %14s\n", "threads", "blocking", "lock-free", "wait-free")
		for _, th := range []int{1, 4, 8, 20, 40} {
			fmt.Printf("%-8d", th)
			for _, a := range algs {
				fmt.Printf(" %11.3f M/s", runCell(a, th, 1024, 0.1, 0).Throughput/1e6)
			}
			fmt.Println()
		}
	}
	if wantSim() {
		fmt.Println("[engine=sim: paper's 40-thread Xeon]")
		fmt.Printf("%-8s %14s %14s %14s\n", "threads", "blocking", "lock-free", "wait-free")
		for _, th := range []int{1, 5, 9, 13, 17, 21, 25, 29, 33, 37, 40} {
			fmt.Printf("%-8d", th)
			for _, a := range algs {
				fmt.Printf(" %11.3f M/s", simCell(a, th, 1024, 0.1).ThroughputOpsPerSec/1e6)
			}
			fmt.Println()
		}
	}
}

func fig2() {
	header("Figure 2: traversal indirection (run `go test -bench Fig2` for the microbenchmark)")
	fmt.Println("blocking layout: node -> node -> node            (one hop per element)")
	fmt.Println("wait-free layout: node -> box(next,mark,src) -> node (two hops + descriptor checks)")
}

func fig3() {
	header("Figure 3: throughput scalability (featured blocking structures)")
	for _, alg := range featured {
		fmt.Printf("-- %s --\n", alg)
		for _, size := range []int{512, 2048, 8192} {
			for _, u := range []float64{0.01, 0.1, 0.5} {
				fmt.Printf("size=%-5d upd=%-4.0f%%:", size, u*100)
				if wantRun() {
					fmt.Printf("  run(20thr) %8.3f M/s", runCell(alg, 20, size, u, 0).Throughput/1e6)
				}
				if wantSim() {
					fmt.Printf("  sim:")
					for _, th := range []int{1, 10, 20, 40} {
						fmt.Printf(" %d:%7.2f", th, simCell(alg, th, size, u).ThroughputOpsPerSec/1e6)
					}
					fmt.Printf(" M/s")
				}
				fmt.Println()
			}
		}
	}
}

func fig4() {
	header("Figure 4: per-thread throughput and stddev (fairness, 20 threads)")
	for _, alg := range featured {
		for _, u := range []float64{0.01, 0.1, 0.5} {
			fmt.Printf("%-18s upd=%-4.0f%%:", alg, u*100)
			if wantRun() {
				r := runCell(alg, 20, 2048, u, 0)
				fmt.Printf("  run: %10.0f ops/s/thr (stddev %8.0f)", r.PerThreadMean, r.PerThreadStddev)
			}
			if wantSim() {
				s := simCell(alg, 20, 2048, u)
				mean := s.ThroughputOpsPerSec / 20
				fmt.Printf("  sim: %10.0f ops/s/thr (stddev %8.0f, %.2f%% of mean)",
					mean, s.PerThreadStddev, 100*s.PerThreadStddev/mean)
			}
			fmt.Println()
		}
	}
}

func fig5() {
	header("Figure 5: fraction of time waiting for locks (20 threads)")
	grid(func(alg string, size int, u float64) (float64, float64) {
		var rv, sv float64
		if wantRun() {
			rv = runCell(alg, 20, size, u, 0).WaitFraction
		}
		if wantSim() {
			sv = simCell(alg, 20, size, u).WaitFraction
		}
		return rv, sv
	})
}

func fig6() {
	header("Figure 6: fraction of requests restarted (20 threads)")
	grid(func(alg string, size int, u float64) (float64, float64) {
		var rv, sv float64
		if wantRun() {
			rv = runCell(alg, 20, size, u, 0).RestartedFrac
		}
		if wantSim() {
			sv = simCell(alg, 20, size, u).RestartedFrac
		}
		return rv, sv
	})
}

func grid(cell func(alg string, size int, u float64) (run, sim float64)) {
	for _, alg := range featured {
		for _, size := range []int{512, 2048, 8192} {
			fmt.Printf("%-18s size=%-5d:", alg, size)
			for _, u := range []float64{0.01, 0.1, 0.5} {
				r, s := cell(alg, size, u)
				fmt.Printf("  u=%.0f%%", u*100)
				if wantRun() {
					fmt.Printf(" run=%.2e", r)
				}
				if wantSim() {
					fmt.Printf(" sim=%.2e", s)
				}
			}
			fmt.Println()
		}
	}
}

func fig7() {
	header("Figure 7: Zipfian workload s=0.8 (2048 elems, 20 threads, 10% upd)")
	z := xrand.NewZipf(4096, 0.8)
	fmt.Printf("%-18s %16s %16s\n", "structure", "lock-wait frac", "restarted frac")
	for _, alg := range featured {
		fmt.Printf("%-18s", alg)
		if wantRun() {
			r := runCell(alg, 20, 2048, 0.1, 0.8)
			fmt.Printf("  run %.2e / %.2e", r.WaitFraction, r.RestartedFrac)
		}
		if wantSim() {
			st, _ := sim.ModelFor(alg)
			s := sim.Run(sim.Config{Machine: sim.PaperXeon(), Structure: st, Threads: 20,
				Size: 2048, UpdateRatio: 0.1, SumP2: z.SumPSquared(), Ops: 5000, Seed: 42})
			fmt.Printf("  sim %.2e / %.2e", s.WaitFraction, s.RestartedFrac)
		}
		fmt.Println()
	}
}

func fig8() {
	header("Figure 8: extreme contention (40 threads, 25% upd) vs structure size")
	for _, alg := range featured {
		fmt.Printf("-- %s --\n", alg)
		fmt.Printf("%-6s %22s %22s %14s\n", "size", "wait frac (run/sim)", "restarted>=1 (run/sim)", "restarted>3")
		for _, size := range []int{16, 32, 64, 128, 256, 512} {
			var r harness.Result
			var s sim.Result
			if wantRun() {
				r = runCell(alg, 40, size, 0.25, 0)
			}
			if wantSim() {
				st, _ := sim.ModelFor(alg)
				s = sim.Run(sim.Config{Machine: sim.PaperXeon(), Structure: st, Threads: 40,
					Size: size, UpdateRatio: 0.25, Ops: 5000, Seed: 42})
			}
			fmt.Printf("%-6d %10.2e/%-10.2e %10.2e/%-10.2e %6.2e/%-6.2e\n",
				size, r.WaitFraction, s.WaitFraction,
				r.RestartedFrac, s.RestartedFrac, r.RestartedFrac3, s.RestartedFrac3)
		}
	}
}

func fig9() {
	header("Figure 9: one thread delayed 1-100µs every 10 updates while holding locks")
	fmt.Printf("%-18s %16s %16s\n", "structure", "lock-wait frac", "restarted frac")
	for _, alg := range featured {
		res, err := harness.Run(harness.Config{
			Algorithm: alg, Threads: 20, Duration: *dur, Runs: *runs,
			Workload:       workload.Config{Size: 2048, UpdateRatio: 0.1},
			DelayedThreads: 1, DelayPlan: interrupt.PaperDelayPlan(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-18s %16.2e %16.2e\n", alg, res.WaitFraction, res.RestartedFrac)
	}
}

func fig10() {
	header("Figure 10: lock-based queue/stack waiting fraction (50/50 enq-deq)")
	fmt.Printf("%-8s %14s %14s\n", "threads", "queue", "stack")
	for _, th := range []int{2, 4, 8, 12, 16, 20} {
		fmt.Printf("%-8d", th)
		for _, kind := range []string{"queue", "stack"} {
			if wantRun() {
				w := queuestack.RunHotspot(kind, th, *dur, 1024)
				fmt.Printf("  run=%.3f", w)
			}
			if wantSim() {
				st, _ := sim.ModelFor(kind)
				s := sim.Run(sim.Config{Machine: sim.PaperXeon(), Structure: st, Threads: th,
					Size: 1024, UpdateRatio: 1, Ops: 3000, Seed: 42})
				fmt.Printf(" sim=%.3f", s.WaitFraction)
			}
		}
		fmt.Println()
	}
}

func table2() {
	header("Table 2: fraction of critical sections falling back to locks (32 thr, size 1024)")
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "upd ratio", "list", "skiplist", "hashtable", "bst")
	for _, u := range []float64{0.2, 0.5, 1.0} {
		fmt.Printf("%-10.0f", u*100)
		for _, alg := range []string{"list/lazy", "skiplist/herlihy", "hashtable/lazy", "bst/tk"} {
			if *engine == "run" {
				res, _ := harness.Run(harness.Config{
					Algorithm: alg, Threads: 32, Duration: *dur, Runs: *runs, ElideAttempts: 5,
					Workload:   workload.Config{Size: 1024, UpdateRatio: u},
					SwitchPlan: &interrupt.SwitchPlan{Rate: 0.0005, MinOff: 50 * time.Microsecond, MaxOff: 500 * time.Microsecond},
				})
				fmt.Printf(" %12.5f", res.FallbackFrac)
			} else {
				st, _ := sim.ModelFor(alg)
				s := sim.Run(sim.Config{Machine: sim.PaperHaswell(), Structure: st, Threads: 32,
					Size: 1024, UpdateRatio: u, Ops: 6000, ElideAttempts: 5, Multiprogram: true, Seed: 42})
				fmt.Printf(" %12.5f", s.FallbackFrac)
			}
		}
		fmt.Println()
	}
}

func table3() {
	header("Table 3: TSX-enabled vs default throughput ratio (32 thr, size 1024)")
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "upd ratio", "list", "skiplist", "hashtable", "bst")
	for _, u := range []float64{0.2, 0.5, 1.0} {
		fmt.Printf("%-10.0f", u*100)
		for _, alg := range []string{"list/lazy", "skiplist/herlihy", "hashtable/lazy", "bst/tk"} {
			if *engine == "run" {
				mk := func(elide int) float64 {
					res, _ := harness.Run(harness.Config{
						Algorithm: alg, Threads: 32, Duration: *dur, Runs: *runs, ElideAttempts: elide,
						Workload:   workload.Config{Size: 1024, UpdateRatio: u},
						SwitchPlan: &interrupt.SwitchPlan{Rate: 0.0005, MinOff: 50 * time.Microsecond, MaxOff: 500 * time.Microsecond},
					})
					return res.Throughput
				}
				fmt.Printf(" %12.2f", mk(5)/mk(0))
			} else {
				st, _ := sim.ModelFor(alg)
				mk := func(elide int) float64 {
					return sim.Run(sim.Config{Machine: sim.PaperHaswell(), Structure: st, Threads: 32,
						Size: 1024, UpdateRatio: u, Ops: 6000, ElideAttempts: elide, Multiprogram: true, Seed: 42}).ThroughputOpsPerSec
				}
				fmt.Printf(" %12.2f", mk(5)/mk(0))
			}
		}
		fmt.Println()
	}
}

func outliers() {
	header("§5.1 outliers: 512-elem list, 40 threads, 10% updates")
	res := runCell("list/lazy", 40, 512, 0.1, 0)
	fmt.Printf("total ops              %d\n", res.TotalOps)
	fmt.Printf("acquisitions waiting   %.4f%%   [paper: 0.01%%]\n", 100*res.WaitingOpsFrac)
	fmt.Printf("worst single wait      %v      [paper: < 6µs]\n", time.Duration(res.MaxWaitNs))
	fmt.Printf("restart histogram      0x:%d 1x:%d 2x:%d 3x:%d >3x:%d   [paper: 2900 once, 9 twice, 0 more]\n",
		res.RestartHist[0], res.RestartHist[1], res.RestartHist[2], res.RestartHist[3],
		res.RestartHist[4]+res.RestartHist[5]+res.RestartHist[6]+res.RestartHist[7])
}

func model() {
	header("Section 6: birthday-paradox model (see also cmd/csdsmodel)")
	h := birthday.PaperHashExample()
	l := birthday.PaperListExample()
	z := l
	z.SumP2 = xrand.NewZipf(int64(z.Size), 0.8).SumPSquared()
	fmt.Printf("hash  p_conflict = %.4f [0.0058]   p_lock = %.2e [5e-6]\n", h.HashConflict(), h.HashTSXFallback())
	fmt.Printf("list  p_conflict = %.4f [0.0021]   p_lock = %.2e [1e-5]   tsx attempt = %.3f [0.16]\n",
		l.ListConflict(), l.ListTSXFallback(), l.ListTSXConflict())
	fmt.Printf("zipf  p_conflict = %.4f [0.0047]\n", z.NonUniformConflict())
}
