// Benchmarks for the structure combinators: the horizontal-composition
// layer over the paper's algorithms. The headline comparison is a plain
// lazy list against its 16-way hash-sharded composite, under the uniform
// workload of the main figures and the Zipfian skew of §5.2 — sharding
// shortens every traversal by 16x and splits lock contention across
// shards, while the skewed workload shows the limit of that: popular keys
// still pile onto their home shard. The read-cache rows show the
// complementary lever for skew: hot keys collapse to one atomic load.
package csds

import (
	"fmt"
	"testing"

	"csds/internal/harness"
	"csds/internal/workload"
)

// BenchmarkCombinatorShardedList: plain vs sharded lazy list, uniform and
// Zipfian key popularity (reported metrics as in bench_test.go).
func BenchmarkCombinatorShardedList(b *testing.B) {
	for _, alg := range []string{"list/lazy", "sharded(16,list/lazy)"} {
		for _, zipf := range []float64{0, 0.8} {
			b.Run(fmt.Sprintf("alg=%s/zipf=%g", alg, zipf), func(b *testing.B) {
				benchCell(b, harness.Config{
					Algorithm: alg, Threads: 20,
					Workload: workload.Config{Size: 1024, UpdateRatio: 0.1, ZipfS: zipf},
				})
			})
		}
	}
}

// BenchmarkCombinatorReadCache: read-through caching over the featured
// BST under a read-mostly Zipfian workload (the cache's home turf) and a
// write-heavier mix (its worst case: invalidation churn).
func BenchmarkCombinatorReadCache(b *testing.B) {
	for _, alg := range []string{"bst/tk", "readcache(1024,bst/tk)"} {
		for _, upd := range []float64{0.01, 0.5} {
			b.Run(fmt.Sprintf("alg=%s/updates=%g", alg, upd), func(b *testing.B) {
				benchCell(b, harness.Config{
					Algorithm: alg, Threads: 20,
					Workload: workload.Config{Size: 2048, UpdateRatio: upd, ZipfS: 0.8},
				})
			})
		}
	}
}

// BenchmarkCombinatorStripedSkiplist: ordered key-space striping over the
// featured skip list at increasing widths.
func BenchmarkCombinatorStripedSkiplist(b *testing.B) {
	for _, alg := range []string{"skiplist/herlihy", "striped(4,skiplist/herlihy)", "striped(8,skiplist/herlihy)"} {
		b.Run(fmt.Sprintf("alg=%s", alg), func(b *testing.B) {
			benchCell(b, harness.Config{
				Algorithm: alg, Threads: 20,
				Workload: workload.Config{Size: 4096, UpdateRatio: 0.2},
			})
		})
	}
}

// BenchmarkCombinatorElastic: the cost and payoff of elastic resharding.
// The static rows compare sharded(8) with elastic(8) at rest — the
// steady-state elasticity tax is one atomic map load plus one flag load
// per operation, so elastic should track the static composite within a
// few percent (the acceptance bar is 15%). The ramp row starts at width 1
// and grows to 8 mid-run — the scenario a load-tracking deployment runs:
// throughput starts at single-instance level and converges toward the
// static sharded(8) rows as the resize settles.
func BenchmarkCombinatorElastic(b *testing.B) {
	wl := workload.Config{Size: 1024, UpdateRatio: 0.1}
	for _, alg := range []string{"sharded(8,list/lazy)", "elastic(8,list/lazy)"} {
		b.Run(fmt.Sprintf("alg=%s/static", alg), func(b *testing.B) {
			benchCell(b, harness.Config{Algorithm: alg, Threads: 20, Workload: wl})
		})
	}
	b.Run("alg=elastic(1,list/lazy)/ramp-to-8", func(b *testing.B) {
		benchCell(b, harness.Config{
			Algorithm: "elastic(1,list/lazy)", Threads: 20, Workload: wl,
			ResizeSteps: []harness.ResizeStep{{At: benchDur / 4, Width: 8}},
		})
	})
	b.Run("alg=elastic(1,list/lazy)/policy-growwait", func(b *testing.B) {
		benchCell(b, harness.Config{
			Algorithm: "elastic(1,list/lazy)", Threads: 20, Workload: wl,
			Elastic: &harness.ElasticPolicy{
				Interval: benchDur / 8, GrowWait: 0.02, MaxWidth: 8,
			},
		})
	})
}
