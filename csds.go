// Package csds is a Go library of concurrent search data structures and
// the benchmarking/analysis toolkit reproducing "Concurrent Search Data
// Structures Can Be Blocking and Practically Wait-Free" (Tudor David and
// Rachid Guerraoui, SPAA 2016).
//
// The library provides linearizable set implementations — linked lists,
// skip lists, hash tables and binary search trees — in blocking,
// lock-free and wait-free flavours, instrumented with the paper's
// fine-grained metrics (time spent waiting for locks, operation restarts,
// HTM-elision fallbacks). The featured blocking algorithms (lazy list,
// Herlihy optimistic skip list, per-bucket-lock lazy hash table, BST-TK)
// are the ones the paper shows are *practically wait-free*: on realistic
// workloads a negligible fraction of requests is ever delayed by
// concurrency.
//
// Quick start:
//
//	s := csds.NewLazyList()            // or NewBSTTK(), NewLazyHashTable(n)...
//	c := csds.NewCtx(0)                // one per goroutine
//	s.Put(c, 42, 420)
//	v, ok := s.Get(c, 42)
//	s.Remove(c, 42)
//
// Every operation takes a *Ctx: Go has no thread-local storage, so the
// per-thread pieces (PRNG, statistics, HTM abort flag) travel explicitly,
// mirroring ASCYLIB's per-thread initialization.
//
// Beyond single instances, the library composes structures horizontally
// through combinators — wrappers that are themselves linearizable Sets.
// A composite specification string names them:
//
//	s, err := csds.Build("sharded(16,list/lazy)", csds.Options{})     // 16-way hash sharding
//	s, err := csds.Build("striped(8,skiplist/herlihy)", csds.Options{}) // ordered key-space stripes
//	s, err := csds.Build("readcache(1024,bst/tk)", csds.Options{})    // bounded read-through cache
//	s, err := csds.Build("readcache(512,sharded(4,hashtable/lazy))", csds.Options{}) // nested
//	s, err := csds.Build("elastic(4,list/lazy)", csds.Options{})      // resizable online
//
// Composites accept the same *Ctx and feed the same fine-grained metrics
// (lock waiting, restarts) through every layer, so the harness measures
// them exactly like plain algorithms. NewSharded, NewStriped, NewReadCached
// and NewElastic are typed shortcuts over the same grammar. An elastic
// composite implements Resizable — Resize(c, n) repartitions online —
// and every structure implements Ranger (quiesced iteration) and Scanner
// (linearizable range scans):
//
//	s.(csds.Scanner).Scan(c, 100, 200, func(k csds.Key, v csds.Value) bool {
//		... // keys in [100, 200), ascending on ordered structures
//		return true
//	})
//
// Real services page instead of scanning: Cursor is the resumable,
// bounded-batch counterpart of Scanner, implemented by every structure
// and combinator, delivering ascending pages with an opaque resume token
// that pins no server-side state (tokens survive churn, restarts, and
// elastic resizes). A paginated feed endpoint looks like:
//
//	// First request: open a window and serve one page.
//	cur, err := csds.OpenCursor(s, 100, 200)
//	token, done := cur.Next(c, 50, func(k csds.Key, v csds.Value) bool {
//		... // up to 50 keys of [100, 200), ascending, one atomic batch
//		return true
//	})
//	// Later request: the client echoes the token back; resume from it.
//	cur, err = csds.ResumeCursor(s, token)
//	token, done = cur.Next(c, 50, appendPage)
//	... // until done; corrupt tokens error, they never misroute a page
//
// Multi-key requests have a batched path: Batcher is implemented by
// every structure and combinator, and amortizes synchronization across
// the keys of one call — composites group the batch by destination
// shard/stripe and cross each boundary once, ordered structures sort
// the batch and traverse once, and contended shards switch to a
// flat-combining fast path where one thread applies many threads'
// batches in a single lock acquisition. Results arrive through a
// per-key callback, in the caller's index order:
//
//	s.(csds.Batcher).MultiGet(c, keys, func(i int, v csds.Value, ok bool) {
//		... // result for keys[i]; ok=false marks a miss
//	})
//	s.(csds.Batcher).MultiPut(c, []csds.KV{{K: 1, V: 10}, {K: 2, V: 20}},
//		func(i int, inserted bool) { ... })
//
// The subdirectories of this module hold the experiment harness
// (internal/harness), the discrete-event multicore simulator
// (internal/sim), and the Section 6 birthday-paradox model
// (internal/birthday); cmd/figures regenerates every figure and table of
// the paper from any of the three engines.
package csds

import (
	"fmt"

	"csds/internal/core"
	"csds/internal/ebr"
	"csds/internal/htm"
	"csds/internal/queuestack"

	// Register every algorithm with the core registry, and the structure
	// combinators with the combinator registry.
	_ "csds/internal/bst"
	_ "csds/internal/combinator"
	_ "csds/internal/hashtable"
	_ "csds/internal/list"
	_ "csds/internal/skiplist"
)

// Core types, re-exported for downstream users (internal packages are not
// importable outside this module).
type (
	// Set is the search data structure interface: Get / Put / Remove.
	Set = core.Set
	// Ctx is the per-goroutine execution context.
	Ctx = core.Ctx
	// Options configures constructors (sizing, HTM elision, EBR domain).
	Options = core.Options
	// Key is the 64-bit key type.
	Key = core.Key
	// Value is the 64-bit value type.
	Value = core.Value
	// Info describes a registered algorithm.
	Info = core.Info
	// Ranger is the optional iteration extension of Set (quiesced use).
	Ranger = core.Ranger
	// Scanner is the optional linearizable range-scan extension of Set,
	// implemented by every structure and combinator in this module.
	Scanner = core.Scanner
	// Cursor is the optional paginated-iteration extension of Set
	// (resumable bounded batches), implemented by every structure and
	// combinator in this module.
	Cursor = core.Cursor
	// CursorToken is the decoded form of a pagination token.
	CursorToken = core.CursorToken
	// PageCursor is the pagination handle returned by OpenCursor and
	// ResumeCursor.
	PageCursor = core.PageCursor
	// Resizable is the optional online-repartitioning extension of Set,
	// implemented by elastic composites.
	Resizable = core.Resizable
	// Batcher is the optional batched-operation extension of Set
	// (MultiGet / MultiPut / MultiRemove with per-key callbacks),
	// implemented by every structure and combinator in this module.
	// Each batch is individually linearizable against point operations;
	// within a batch, elements apply in index order.
	Batcher = core.Batcher
	// KV is a key/value pair, the MultiPut element type.
	KV = core.KV
	// Queue is the FIFO interface (Section 7 structures).
	Queue = queuestack.Queue
	// Stack is the LIFO interface (Section 7 structures).
	Stack = queuestack.Stack
)

// NewCtx builds a self-contained per-goroutine context.
func NewCtx(id int) *Ctx { return core.NewCtx(id) }

// Algorithms lists every registered algorithm name.
func Algorithms() []string { return core.Names() }

// Combinators lists every registered structure combinator name; each can
// wrap any algorithm (or composite) via the comb(N,spec) grammar.
func Combinators() []string { return core.CombinatorNames() }

// Lookup finds a registered algorithm by name (e.g. "list/lazy").
func Lookup(name string) (Info, bool) { return core.Lookup(name) }

// New constructs an algorithm from a specification — a plain registered
// name or a composite such as "sharded(16,list/lazy)". Use Build to learn
// why a spec was rejected.
func New(name string, o Options) (Set, bool) {
	s, err := core.Build(name, o)
	return s, err == nil
}

// Build constructs an algorithm from a specification, reporting grammar
// and resolution errors.
func Build(spec string, o Options) (Set, error) { return core.Build(spec, o) }

// OpenCursor starts a paginated iteration over s's window [lo, hi):
// call Next for bounded ascending batches; each batch is individually
// linearizable and returns an opaque resume token.
func OpenCursor(s Set, lo, hi Key) (*PageCursor, error) { return core.OpenCursor(s, lo, hi) }

// ResumeCursor rebuilds a pagination handle from a wire token minted by
// a PageCursor over an equivalent structure — the "next page" entry
// point of a stateless service. Corrupt tokens are rejected.
func ResumeCursor(s Set, token string) (*PageCursor, error) { return core.ResumeCursor(s, token) }

// DecodeCursorToken parses a wire token into its window and position
// (diagnostics; Next and ResumeCursor handle tokens opaquely).
func DecodeCursorToken(token string) (CursorToken, error) { return core.DecodeCursorToken(token) }

// NewEBRDomain creates an epoch-based reclamation domain to share across
// structures (optional: Go's GC reclaims safely without one).
func NewEBRDomain() *ebr.Domain { return ebr.NewDomain() }

// NewDoom creates an HTM abort flag for interrupt injection.
func NewDoom() *htm.Doom { return &htm.Doom{} }

// mustNew constructs a registered algorithm and panics on a wiring bug —
// the names below are registered by this package's own imports, so
// failure is unreachable in a healthy build.
func mustNew(name string, o Options) Set {
	s, ok := New(name, o)
	if !ok {
		panic("csds: algorithm not registered: " + name)
	}
	return s
}

// NewLazyList returns the featured blocking linked list (lazy list).
func NewLazyList() Set { return mustNew("list/lazy", Options{}) }

// NewHarrisList returns the lock-free linked list.
func NewHarrisList() Set { return mustNew("list/harris", Options{}) }

// NewWaitFreeList returns the wait-free linked list.
func NewWaitFreeList() Set { return mustNew("list/waitfree", Options{}) }

// NewHerlihySkipList returns the featured blocking skip list, sized for
// expectedSize elements.
func NewHerlihySkipList(expectedSize int) Set {
	return mustNew("skiplist/herlihy", Options{ExpectedSize: expectedSize})
}

// NewLazyHashTable returns the featured blocking hash table with load
// factor 1 at expectedSize elements.
func NewLazyHashTable(expectedSize int) Set {
	return mustNew("hashtable/lazy", Options{ExpectedSize: expectedSize})
}

// NewBSTTK returns the featured blocking external binary search tree.
func NewBSTTK() Set { return mustNew("bst/tk", Options{}) }

// NewSharded hash-partitions the key space over shards independent
// instances of the inner specification (a registered name or a nested
// composite). Errors report grammar or resolution problems in inner.
func NewSharded(shards int, inner string, o Options) (Set, error) {
	return core.Build(fmt.Sprintf("sharded(%d,%s)", shards, inner), o)
}

// NewStriped range-partitions the key space, in order, over stripes
// instances of the inner specification. Set o.KeySpan (or o.ExpectedSize,
// from which a 2*ExpectedSize span is derived — the paper's key-space
// convention) so stripes divide the domain your keys actually populate;
// keys outside the domain clamp to the end stripes.
func NewStriped(stripes int, inner string, o Options) (Set, error) {
	return core.Build(fmt.Sprintf("striped(%d,%s)", stripes, inner), o)
}

// NewReadCached wraps the inner specification with a bounded read-through
// cache of about capacity entries, invalidated on updates.
func NewReadCached(capacity int, inner string, o Options) (Set, error) {
	return core.Build(fmt.Sprintf("readcache(%d,%s)", capacity, inner), o)
}

// NewElastic hash-partitions the key space over width instances of the
// inner specification, like NewSharded — but the returned set also
// implements Resizable: its width can be grown or shrunk online
// (s.(csds.Resizable).Resize(c, n)) while readers and writers keep
// running, so a deployment can track load instead of overprovisioning.
func NewElastic(width int, inner string, o Options) (Set, error) {
	return core.Build(fmt.Sprintf("elastic(%d,%s)", width, inner), o)
}

// NewQueue returns the standard lock-based FIFO queue (Section 7).
func NewQueue() Queue { return queuestack.NewTwoLockQueue() }

// NewLockFreeQueue returns the Michael–Scott lock-free queue.
func NewLockFreeQueue() Queue { return queuestack.NewMSQueue() }

// NewStack returns the single-lock LIFO stack (Section 7).
func NewStack() Stack { return queuestack.NewLockStack() }

// NewTreiberStack returns the lock-free Treiber stack.
func NewTreiberStack() Stack { return queuestack.NewTreiberStack() }
