package csds

import (
	"sync"
	"testing"
)

func TestPublicAPISmoke(t *testing.T) {
	for name, mk := range map[string]func() Set{
		"lazy-list":     NewLazyList,
		"harris-list":   NewHarrisList,
		"waitfree-list": NewWaitFreeList,
		"skiplist":      func() Set { return NewHerlihySkipList(128) },
		"hashtable":     func() Set { return NewLazyHashTable(128) },
		"bst":           NewBSTTK,
	} {
		s := mk()
		c := NewCtx(0)
		if !s.Put(c, 1, 10) {
			t.Fatalf("%s: Put failed", name)
		}
		if v, ok := s.Get(c, 1); !ok || v != 10 {
			t.Fatalf("%s: Get = (%d, %v)", name, v, ok)
		}
		if !s.Remove(c, 1) {
			t.Fatalf("%s: Remove failed", name)
		}
		if s.Len() != 0 {
			t.Fatalf("%s: Len = %d", name, s.Len())
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"bst/internal", "bst/tk",
		"hashtable/cow", "hashtable/harris", "hashtable/lazy",
		"hashtable/lockcoupling", "hashtable/pugh", "hashtable/striped",
		"hashtable/waitfree",
		"list/cow", "list/harris", "list/lazy", "list/lockcoupling",
		"list/pugh", "list/waitfree",
		"skiplist/herlihy", "skiplist/pugh",
	}
	have := map[string]bool{}
	for _, n := range Algorithms() {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("algorithm %s not registered", w)
		}
	}
}

func TestNewByName(t *testing.T) {
	s, ok := New("list/lazy", Options{})
	if !ok || s == nil {
		t.Fatal("New by name failed")
	}
	if _, ok := New("bogus", Options{}); ok {
		t.Fatal("bogus name accepted")
	}
	// New accepts composite specs too.
	if _, ok := New("sharded(4,list/lazy)", Options{}); !ok {
		t.Fatal("New rejected a composite spec")
	}
}

func TestCombinatorsRegistered(t *testing.T) {
	have := map[string]bool{}
	for _, n := range Combinators() {
		have[n] = true
	}
	for _, w := range []string{"sharded", "striped", "readcache"} {
		if !have[w] {
			t.Errorf("combinator %s not registered", w)
		}
	}
}

func TestBuildAndTopLevelConstructors(t *testing.T) {
	mks := map[string]func() (Set, error){
		"build-sharded":  func() (Set, error) { return Build("sharded(16,list/lazy)", Options{}) },
		"build-nested":   func() (Set, error) { return Build("readcache(256,striped(4,list/lazy))", Options{}) },
		"NewSharded":     func() (Set, error) { return NewSharded(16, "list/lazy", Options{}) },
		"NewStriped":     func() (Set, error) { return NewStriped(8, "skiplist/herlihy", Options{ExpectedSize: 256}) },
		"NewReadCached":  func() (Set, error) { return NewReadCached(1024, "bst/tk", Options{}) },
		"NewShardedDeep": func() (Set, error) { return NewSharded(4, "readcache(64,list/lazy)", Options{}) },
	}
	for name, mk := range mks {
		s, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c := NewCtx(0)
		for k := Key(1); k <= 100; k++ {
			if !s.Put(c, k, k*3) {
				t.Fatalf("%s: Put(%d) failed", name, k)
			}
		}
		for k := Key(1); k <= 100; k++ {
			if v, ok := s.Get(c, k); !ok || v != k*3 {
				t.Fatalf("%s: Get(%d) = (%d, %v)", name, k, v, ok)
			}
		}
		if s.Len() != 100 {
			t.Fatalf("%s: Len = %d", name, s.Len())
		}
		for k := Key(1); k <= 100; k++ {
			if !s.Remove(c, k) {
				t.Fatalf("%s: Remove(%d) failed", name, k)
			}
		}
		if s.Len() != 0 {
			t.Fatalf("%s: Len after drain = %d", name, s.Len())
		}
	}
	if _, err := Build("sharded(16,", Options{}); err == nil {
		t.Fatal("malformed spec accepted")
	}
	if _, err := NewSharded(4, "no/such", Options{}); err == nil {
		t.Fatal("NewSharded with unknown inner accepted")
	}
}

func TestQueueStackAPI(t *testing.T) {
	c := NewCtx(0)
	for name, q := range map[string]Queue{"lock": NewQueue(), "lockfree": NewLockFreeQueue()} {
		q.Enqueue(c, 1)
		q.Enqueue(c, 2)
		if v, ok := q.Dequeue(c); !ok || v != 1 {
			t.Fatalf("%s queue broken", name)
		}
	}
	for name, s := range map[string]Stack{"lock": NewStack(), "lockfree": NewTreiberStack()} {
		s.Push(c, 1)
		s.Push(c, 2)
		if v, ok := s.Pop(c); !ok || v != 2 {
			t.Fatalf("%s stack broken", name)
		}
	}
}

func TestCrossAlgorithmAgreement(t *testing.T) {
	// All registered set algorithms must agree on the outcome of the same
	// concurrent workload's final state per disjoint key range.
	for _, name := range Algorithms() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, _ := New(name, Options{ExpectedSize: 256})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c := NewCtx(w)
					base := Key(w * 100)
					for i := 0; i < 500; i++ {
						k := base + Key(i%50) + 1
						s.Put(c, k, k)
						if i%3 == 0 {
							s.Remove(c, k)
						}
					}
				}(w)
			}
			wg.Wait()
			// Final state: for each worker range, keys where the last op
			// was a Put are present. i runs 0..499 over k=i%50: for each
			// residue r, last Put at i=499... deterministic per residue:
			// last index with i%50==r is 450+r; Remove follows Put when
			// i%3==0. So key present iff (450+r)%3 != 0.
			c := NewCtx(99)
			for w := 0; w < 4; w++ {
				base := Key(w * 100)
				for r := 0; r < 50; r++ {
					k := base + Key(r) + 1
					_, present := s.Get(c, k)
					want := (450+r)%3 != 0
					if present != want {
						t.Fatalf("%s: key %d present=%v, want %v", name, k, present, want)
					}
				}
			}
		})
	}
}

// TestScannerRootAPI exercises the exported range-scan surface: every
// constructor's set satisfies Scanner, windows are half-open, ordered
// structures ascend, and early stop works through the type alias.
func TestScannerRootAPI(t *testing.T) {
	c := NewCtx(0)
	for name, s := range map[string]Set{
		"lazy-list":  NewLazyList(),
		"bst-tk":     NewBSTTK(),
		"hash-table": NewLazyHashTable(256),
	} {
		sc, ok := s.(Scanner)
		if !ok {
			t.Fatalf("%s: %T does not satisfy Scanner", name, s)
		}
		for k := Key(0); k < 50; k++ {
			s.Put(c, k, k*3)
		}
		var got []Key
		if !sc.Scan(c, 10, 20, func(k Key, v Value) bool {
			if v != k*3 {
				t.Fatalf("%s: Scan returned (%d, %d), want value %d", name, k, v, k*3)
			}
			got = append(got, k)
			return true
		}) {
			t.Fatalf("%s: complete scan reported early stop", name)
		}
		if len(got) != 10 {
			t.Fatalf("%s: Scan [10, 20) visited %d keys, want 10", name, len(got))
		}
		n := 0
		if sc.Scan(c, 0, 50, func(Key, Value) bool { n++; return n < 3 }) {
			t.Fatalf("%s: early-stopped scan reported completion", name)
		}
	}
	// Composites through Build satisfy Scanner too.
	s, err := Build("striped(4,list/lazy)", Options{ExpectedSize: 128, KeySpan: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(Scanner); !ok {
		t.Fatalf("striped composite %T does not satisfy Scanner", s)
	}
}

// TestCursorRootAPI exercises the exported pagination surface end to
// end: OpenCursor/Next/ResumeCursor over plain structures and
// composites, ascending bounded pages, token round-trip, and the
// corrupt-token error path — the worked example from the package doc.
func TestCursorRootAPI(t *testing.T) {
	c := NewCtx(0)
	for name, s := range map[string]Set{
		"lazy-list":  NewLazyList(),
		"bst-tk":     NewBSTTK(),
		"hash-table": NewLazyHashTable(256),
	} {
		if _, ok := s.(Cursor); !ok {
			t.Fatalf("%s: %T does not satisfy Cursor", name, s)
		}
		for k := Key(0); k < 50; k++ {
			s.Put(c, k, k*3)
		}
		cur, err := OpenCursor(s, 10, 40)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var got []Key
		pages := 0
		for !cur.Done() {
			pages++
			n := 0
			token, done := cur.Next(c, 7, func(k Key, v Value) bool {
				if v != k*3 {
					t.Fatalf("%s: page returned (%d, %d), want value %d", name, k, v, k*3)
				}
				got = append(got, k)
				n++
				return true
			})
			if n > 7 {
				t.Fatalf("%s: page delivered %d keys over budget 7", name, n)
			}
			if !done {
				// The stateless hand-off of the doc example: resume
				// from the wire token alone.
				if cur, err = ResumeCursor(s, token); err != nil {
					t.Fatalf("%s: resume: %v", name, err)
				}
			}
			if pages > 40 {
				t.Fatalf("%s: cursor never finished", name)
			}
		}
		if len(got) != 30 || got[0] != 10 || got[29] != 39 {
			t.Fatalf("%s: pagination of [10, 40) = %v", name, got)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("%s: pages not ascending: %v", name, got)
			}
		}
		if _, err := ResumeCursor(s, "corrupt-token"); err == nil {
			t.Fatalf("%s: corrupt token resumed without error", name)
		}
	}
	// Composites through Build paginate too, and their tokens decode.
	s, err := Build("elastic(4,list/lazy)", Options{ExpectedSize: 128, KeySpan: 256})
	if err != nil {
		t.Fatal(err)
	}
	for k := Key(0); k < 50; k++ {
		s.Put(c, k, k)
	}
	cur, err := OpenCursor(s, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	token, done := cur.Next(c, 20, func(Key, Value) bool { return true })
	if done {
		t.Fatal("50-key window done after one 20-key page")
	}
	tok, err := DecodeCursorToken(token)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Lo != 0 || tok.Hi != 50 || tok.Pos != 20 {
		t.Fatalf("decoded token %+v, want {Lo:0 Hi:50 Pos:20}", tok)
	}
}

// TestElasticRootAPI exercises the exported elastic surface: NewElastic,
// the Resizable assertion, online resize, and Ranger iteration.
func TestElasticRootAPI(t *testing.T) {
	s, err := NewElastic(2, "list/lazy", Options{ExpectedSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	rz, ok := s.(Resizable)
	if !ok {
		t.Fatalf("NewElastic built %T, which is not Resizable", s)
	}
	if rz.Width() != 2 {
		t.Fatalf("Width = %d, want 2", rz.Width())
	}
	c := NewCtx(0)
	for k := Key(1); k <= 100; k++ {
		if !s.Put(c, k, k+1000) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	if err := rz.Resize(c, 6); err != nil {
		t.Fatal(err)
	}
	if rz.Width() != 6 {
		t.Fatalf("Width after resize = %d, want 6", rz.Width())
	}
	for k := Key(1); k <= 100; k++ {
		if v, ok := s.Get(c, k); !ok || v != k+1000 {
			t.Fatalf("after resize Get(%d) = (%d, %v)", k, v, ok)
		}
	}
	n := 0
	s.(Ranger).Range(func(Key, Value) bool { n++; return true })
	if n != 100 {
		t.Fatalf("Range visited %d mappings, want 100", n)
	}
	if _, err := NewElastic(2, "no/such/alg", Options{}); err == nil {
		t.Fatal("NewElastic accepted an unknown inner spec")
	}
}
