// Benchmarks for the streaming cursor read path: the page-cost contract
// made measurable. The headline rows are (1) cursor pages on a 64k-key
// monolithic hash table against the ordered structures — the ordered
// key index buys O(log n + page) pages where the pre-index table paid
// an O(table) collect-and-sort per page, so the hash table must sit in
// the same regime as (and in practice beats: its seek is a skip-list
// descent, not a list walk) the list structures — and (2) a wide
// sharded composite's merge pages, where the lazy streaming merge pulls
// ~one page worth of keys instead of the eager merge's 32 pages.
package csds

import (
	"fmt"
	"testing"

	"csds/internal/core"
	"csds/internal/ebr"
)

// benchCursorPages measures single-threaded page latency over a
// pre-filled structure: b.N pages of pageLen keys, walking the whole
// window round-robin so resume positions land everywhere in the domain.
func benchCursorPages(b *testing.B, spec string, size int, pageLen int) {
	span := core.Key(2 * size)
	s, err := Build(spec, Options{ExpectedSize: size, KeySpan: span})
	if err != nil {
		b.Fatal(err)
	}
	c := NewCtx(0)
	for k := core.Key(0); k < span; k += 2 {
		s.Put(c, k, k)
	}
	cur, ok := s.(core.Cursor)
	if !ok {
		b.Fatalf("%s does not implement core.Cursor", spec)
	}
	keys := 0
	pos := core.Key(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, done := cur.CursorNext(c, pos, span, pageLen, func(core.Key, core.Value) bool {
			keys++
			return true
		})
		pos = next
		if done {
			pos = 0
		}
	}
	b.StopTimer()
	if keys == 0 {
		b.Fatal("no keys paged")
	}
	b.ReportMetric(float64(keys)/float64(b.N), "keys/page")
	b.ReportMetric(float64(c.Stats.PagePullKeys)/float64(b.N), "pulledkeys/page")
}

// BenchmarkCursorPage64k: page serving rate at 64k keys. The acceptance
// bar of the streaming-cursor work: hashtable/lazy within 5x of the
// list structures (it was O(table)-bound before the ordered index).
func BenchmarkCursorPage64k(b *testing.B) {
	for _, spec := range []string{
		"hashtable/lazy",
		"hashtable/striped",
		"list/lazy",
		"list/harris",
		"skiplist/pugh",
	} {
		b.Run("alg="+spec, func(b *testing.B) {
			benchCursorPages(b, spec, 1<<16, 64)
		})
	}
}

// BenchmarkCursorPageEBR: the allocation cost of a merge page with and
// without EBR + pooling attached. A composite page opens one PageStream
// per shard and every leaf page needs a collect buffer; GC-only mode
// allocates both per page, while pooling mode recycles them through the
// page-buffer free-list (PageStream.Release and GuardedPage's put-back),
// so the ebr=true cell's allocs/op is the proof that the buffers
// round-trip instead of falling to the collector. Run with -benchmem to
// see the pair.
func BenchmarkCursorPageEBR(b *testing.B) {
	for _, ebrOn := range []bool{false, true} {
		b.Run(fmt.Sprintf("ebr=%v", ebrOn), func(b *testing.B) {
			const size, pageLen = 1 << 14, 64
			span := core.Key(2 * size)
			s, err := Build("sharded(8,list/lazy)", Options{ExpectedSize: size, KeySpan: span})
			if err != nil {
				b.Fatal(err)
			}
			c := NewCtx(0)
			if ebrOn {
				dom := ebr.NewDomain()
				c.Epoch = dom.Register()
				defer c.Epoch.Unregister()
			}
			for k := core.Key(0); k < span; k += 2 {
				s.Put(c, k, k)
			}
			cur := s.(core.Cursor)
			pos := core.Key(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next, done := cur.CursorNext(c, pos, span, pageLen, func(core.Key, core.Value) bool { return true })
				pos = next
				if done {
					pos = 0
				}
			}
		})
	}
}

// BenchmarkCursorMergeWide: streaming merge pages on wide composites —
// the k× overcollect fix. pulledkeys/page is the proof metric: ~page on
// the streaming merge, k×page on the old eager merge.
func BenchmarkCursorMergeWide(b *testing.B) {
	for _, spec := range []string{
		"sharded(8,list/lazy)",
		"sharded(32,list/lazy)",
		"elastic(32,list/lazy)",
	} {
		for _, pageLen := range []int{64, 512} {
			b.Run(fmt.Sprintf("alg=%s/page=%d", spec, pageLen), func(b *testing.B) {
				benchCursorPages(b, spec, 1<<16, pageLen)
			})
		}
	}
}
