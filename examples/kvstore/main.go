// KVStore example: an LSM-style storage engine front end, the pattern the
// paper cites from LevelDB/RocksDB — writes land in a concurrent in-memory
// index (the memtable, here the featured Herlihy skip list, which is what
// LevelDB actually uses), and when it fills up it is atomically rotated
// out and replaced. Readers consult the active memtable first and then the
// frozen generations, all without blocking writers.
//
// The example demonstrates that the paper's practical-wait-freedom
// property holds inside a realistic storage-engine write path: even while
// rotations happen, no request is meaningfully delayed by concurrency.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"csds"
	"csds/internal/xrand"
)

const (
	memtableLimit = 8192
	workers       = 6
	opsPerWorker  = 120_000
	writeFraction = 0.5 // write-heavy ingest, LSM style
	batchSize     = 8   // keys per multi-key read request
	batchEvery    = 32  // every Nth read is a multi-key request
)

// batchReads counts the multi-key read requests served batched.
var batchReads atomic.Int64

// store is the two-level engine: one active memtable plus frozen ones.
type store struct {
	active    atomic.Pointer[csds.Set]
	mu        sync.Mutex // guards rotation and the frozen list
	frozen    []csds.Set
	writes    atomic.Int64
	rotations atomic.Int64
}

func newStore() *store {
	st := &store{}
	s := csds.NewHerlihySkipList(memtableLimit)
	st.active.Store(&s)
	return st
}

// put writes into the active memtable and triggers rotation past the
// limit. Rotation swaps in a fresh memtable; concurrent writers keep going
// against whichever table they loaded — exactly the transient LevelDB
// tolerates (a late write to a just-frozen memtable is still visible to
// readers via the frozen list).
func (st *store) put(c *csds.Ctx, k csds.Key, v csds.Value) {
	s := *st.active.Load()
	s.Put(c, k, v)
	c.Stats.RecordInsert(true)
	if n := st.writes.Add(1); n%memtableLimit == 0 {
		st.rotate()
	}
}

func (st *store) rotate() {
	st.mu.Lock()
	defer st.mu.Unlock()
	old := st.active.Load()
	fresh := csds.NewHerlihySkipList(memtableLimit)
	st.active.Store(&fresh)
	st.frozen = append(st.frozen, *old)
	st.rotations.Add(1)
}

// get searches the active memtable, then frozen generations newest-first.
func (st *store) get(c *csds.Ctx, k csds.Key) (csds.Value, bool) {
	s := *st.active.Load()
	if v, ok := s.Get(c, k); ok {
		c.Stats.RecordRead(true)
		return v, true
	}
	st.mu.Lock()
	gens := make([]csds.Set, len(st.frozen))
	copy(gens, st.frozen)
	st.mu.Unlock()
	for i := len(gens) - 1; i >= 0; i-- {
		if v, ok := gens[i].Get(c, k); ok {
			c.Stats.RecordRead(true)
			return v, true
		}
	}
	c.Stats.RecordRead(false)
	return 0, false
}

// multiGet is the multi-key read endpoint (the MultiGet of the LevelDB
// API): one batched probe per generation instead of one point Get per
// key. The active memtable answers the whole batch in a single
// MultiGet — one sorted traversal, one synchronization bracket — and
// only the residue of misses is forwarded, again as one batch, to the
// frozen generations newest-first, so a request for 50 keys crosses
// each table once rather than 50 times. Results arrive through f in
// the caller's index order, like every Batcher.
func (st *store) multiGet(c *csds.Ctx, keys []csds.Key, f func(i int, v csds.Value, ok bool)) {
	vals := make([]csds.Value, len(keys))
	oks := make([]bool, len(keys))
	var pending []int // indices not yet resolved, in ascending order
	active := *st.active.Load()
	active.(csds.Batcher).MultiGet(c, keys, func(i int, v csds.Value, ok bool) {
		if ok {
			vals[i], oks[i] = v, true
		} else {
			pending = append(pending, i)
		}
	})
	if len(pending) > 0 {
		st.mu.Lock()
		gens := make([]csds.Set, len(st.frozen))
		copy(gens, st.frozen)
		st.mu.Unlock()
		sub := make([]csds.Key, 0, len(pending))
		for g := len(gens) - 1; g >= 0 && len(pending) > 0; g-- {
			sub = sub[:0]
			for _, i := range pending {
				sub = append(sub, keys[i])
			}
			src := pending
			next := pending[:0] // consumed positions only; safe reuse
			gens[g].(csds.Batcher).MultiGet(c, sub, func(j int, v csds.Value, ok bool) {
				if ok {
					vals[src[j]], oks[src[j]] = v, true
				} else {
					next = append(next, src[j])
				}
			})
			pending = next
		}
	}
	for i := range keys {
		c.Stats.RecordRead(oks[i])
		f(i, vals[i], oks[i])
	}
}

func main() {
	fmt.Println("== LSM-memtable kv-store on the featured skip list ==")
	st := newStore()
	ctxs := make([]*csds.Ctx, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := csds.NewCtx(w)
			ctxs[w] = c
			rng := xrand.New(uint64(w)*31 + 7)
			batch := make([]csds.Key, batchSize)
			for i := 0; i < opsPerWorker; i++ {
				k := csds.Key(1 + rng.Int63n(4*memtableLimit))
				switch {
				case rng.Bool(writeFraction):
					st.put(c, k, csds.Value(i))
				case i%batchEvery == 0:
					// A multi-key request: one MultiGet per generation
					// instead of batchSize point Gets.
					for j := range batch {
						batch[j] = csds.Key(1 + rng.Int63n(4*memtableLimit))
					}
					st.multiGet(c, batch, func(int, csds.Value, bool) {})
					batchReads.Add(1)
				default:
					st.get(c, k)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	totalOps := workers * opsPerWorker
	fmt.Printf("workload        %d workers x %d ops, %.0f%% writes\n", workers, opsPerWorker, writeFraction*100)
	fmt.Printf("throughput      %.2f Mops/s in %v\n", float64(totalOps)/elapsed.Seconds()/1e6, elapsed.Round(time.Millisecond))
	fmt.Printf("rotations       %d memtables frozen (limit %d writes each)\n", st.rotations.Load(), memtableLimit)
	active := *st.active.Load()
	fmt.Printf("active memtable %d entries; frozen generations: %d\n", active.Len(), len(st.frozen))
	fmt.Printf("multi-key reads %d requests x %d keys, batched (one MultiGet per generation)\n",
		batchReads.Load(), batchSize)

	var waits, restarts, ops uint64
	var maxWait uint64
	for _, c := range ctxs {
		waits += c.Stats.LockWaits
		restarts += c.Stats.Restarts
		ops += c.Stats.Ops
		if c.Stats.MaxWaitNs > maxWait {
			maxWait = c.Stats.MaxWaitNs
		}
	}
	fmt.Printf("\npractical wait-freedom audit under rotation churn\n")
	fmt.Printf("  delayed requests: %.4f%% (waits %d + restarts %d of %d ops)\n",
		100*float64(waits+restarts)/float64(ops), waits, restarts, ops)
	fmt.Printf("  worst lock wait:  %v\n", time.Duration(maxWait))
	if frac := float64(waits+restarts) / float64(ops); frac < 0.01 {
		fmt.Println("  VERDICT: practically wait-free ✓")
	} else {
		fmt.Println("  VERDICT: SLA violated")
	}
}
