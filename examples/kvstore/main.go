// KVStore example: an ordered key-value store served over the wire —
// the LevelDB-flavored half of the paper's motivation (its memtable is
// a concurrent skip list). Since PR 8 the module fronts real
// connections, so this example is a thin client of internal/server: it
// boots the server over a striped Herlihy skip list, runs a write-heavy
// ingest with pipelined multi-key reads, and then takes ordered,
// paginated backup scans through the range/page cursor extension —
// holding only the opaque token between pages, the contract that lets a
// scan survive reconnects and even server restarts. The paper's
// practical-wait-freedom SLA is audited from the server's own stats,
// and the drain must quiesce reclamation completely.
//
// -short runs a reduced-ops smoke version (the CI examples job).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"csds"
	"csds/internal/server"
	"csds/internal/xrand"

	_ "csds/internal/combinator"
	_ "csds/internal/skiplist"
)

const (
	spec          = "striped(8,skiplist/herlihy)"
	keySpace      = 32768
	workers       = 6
	writeFraction = 0.5 // write-heavy ingest, LSM style
	batchSize     = 8   // keys per multi-key read request
	batchEvery    = 32  // every Nth read is a multi-key request
	scanPageLen   = 64  // backup scan page budget
)

func main() {
	short := flag.Bool("short", false, "reduced-ops smoke mode (CI)")
	flag.Parse()
	opsPerWorker := 120_000
	slaLimit := 0.01
	if *short {
		opsPerWorker /= 20
		slaLimit = 0.05
	}
	os.Exit(run(opsPerWorker, slaLimit))
}

func run(opsPerWorker int, slaLimit float64) int {
	fmt.Println("== ordered kv-store served over the wire (" + spec + ") ==")

	srv, err := server.New(server.Config{Spec: spec, Size: keySpace / 2, UseEBR: true, MaxInflight: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "server:", err)
		return 1
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		return 1
	}
	addr := l.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	// Ingest phase: a write-heavy mix with pipelined multi-key reads.
	var ingested, batchReads, pointReads uint64
	var mu sync.Mutex
	errs := make([]error, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := server.DialRetry(addr, 5*time.Second)
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			rng := xrand.New(uint64(w)*31 + 7)
			keys := make([]csds.Key, batchSize)
			vals := make([]csds.Value, batchSize)
			oks := make([]bool, batchSize)
			var writes, batches, points uint64
			for i := 0; i < opsPerWorker; i++ {
				k := csds.Key(1 + rng.Int63n(keySpace))
				switch {
				case rng.Bool(writeFraction):
					if _, err := c.Set(k, csds.Value(i)); err != nil {
						errs[w] = err
						return
					}
					writes++
				case i%batchEvery == 0:
					for j := range keys {
						keys[j] = csds.Key(1 + rng.Int63n(keySpace))
					}
					if err := c.MultiGet(keys, vals, oks); err != nil {
						errs[w] = err
						return
					}
					batches++
				default:
					if _, _, err := c.Get(k); err != nil {
						errs[w] = err
						return
					}
					points++
				}
			}
			mu.Lock()
			ingested += writes
			batchReads += batches
			pointReads += points
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			return 1
		}
	}

	// Backup scan phase: page through the whole keyspace in order. The
	// client holds nothing between pages except the opaque token — it
	// even reconnects mid-scan to prove the token is the only state.
	c, err := server.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial:", err)
		return 1
	}
	var scanned, pages uint64
	lastKey := csds.Key(-1 << 62)
	ordered := true
	count := func(k csds.Key, v csds.Value) {
		if k <= lastKey {
			ordered = false
		}
		lastKey = k
		scanned++
	}
	scanStart := time.Now()
	token, done, err := c.Range(1, keySpace+1, scanPageLen, count)
	for err == nil && !done {
		pages++
		if pages%16 == 0 {
			// Reconnect mid-scan: the token resumes on a fresh
			// connection because it pins no server state.
			c.Close()
			if c, err = server.Dial(addr); err != nil {
				break
			}
		}
		token, done, err = c.Page(token, scanPageLen, count)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scan:", err)
		return 1
	}
	pages++
	scanElapsed := time.Since(scanStart)
	if !ordered {
		fmt.Fprintln(os.Stderr, "backup scan returned keys out of order")
		return 1
	}

	m, err := c.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stats:", err)
		return 1
	}
	c.Close()

	totalOps := uint64(workers * opsPerWorker)
	fmt.Printf("ingest          %d workers x %d ops over TCP, %.0f%% writes\n", workers, opsPerWorker, writeFraction*100)
	fmt.Printf("throughput      %.3f Mops/s in %v (closed loop)\n", float64(totalOps)/elapsed.Seconds()/1e6, elapsed.Round(time.Millisecond))
	fmt.Printf("multi-key reads %d requests x %d keys (server-side batched); %d point reads\n", batchReads, batchSize, pointReads)
	fmt.Printf("backup scan     %d keys in order over %d pages of <=%d (%v), token-resumed across reconnects\n",
		scanned, pages, scanPageLen, scanElapsed.Round(time.Millisecond))
	fmt.Printf("final size      %d entries\n", srv.Set().Len())

	delayedFrac := float64(m["lock_waits"]+m["restarts"]) / float64(m["ops"])
	fmt.Printf("\npractical wait-freedom audit (SLA: <%.0f%% of requests delayed)\n", slaLimit*100)
	fmt.Printf("  server-side ops:   %d\n", m["ops"])
	fmt.Printf("  delayed requests:  %.4f%%\n", 100*delayedFrac)
	fmt.Printf("  worst lock wait:   %v\n", time.Duration(m["max_wait_ns"]))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "drain:", err)
		return 1
	}
	<-serveDone
	a := srv.Audit()
	fmt.Printf("  drain: %d conns, retired %d == reclaimed %d\n", a.Conns, a.Retired, a.Reclaimed)
	if a.Retired != a.Reclaimed {
		fmt.Fprintln(os.Stderr, "drain left unreclaimed garbage")
		return 1
	}
	if delayedFrac >= slaLimit {
		fmt.Println("  VERDICT: SLA violated")
		return 1
	}
	fmt.Println("  VERDICT: practically wait-free ✓")
	return 0
}
