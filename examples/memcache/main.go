// Memcache example: the paper motivates CSDSs with systems like
// Memcached, whose central structure is a big concurrent hash table
// under a skewed, read-heavy workload. Since PR 8 the module actually
// serves that protocol — so this example is a thin client: it boots a
// csdsd-equivalent server (internal/server over a sharded lazy hash
// table with EBR) on a loopback port, drives a Memcached-like workload
// through real sockets with pipelined multi-gets, audits the paper's
// practical-wait-freedom SLA from the server's own `stats` counters, and
// drains gracefully, verifying reclaimed == retired.
//
// -short runs a reduced-ops smoke version (the CI examples job).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"csds"
	"csds/internal/server"
	"csds/internal/xrand"

	_ "csds/internal/combinator"
	_ "csds/internal/hashtable"
)

const (
	spec        = "sharded(8,hashtable/lazy)"
	cacheItems  = 16384
	workers     = 8
	getFraction = 0.9 // Memcached-like read-mostly mix
	zipfS       = 0.8 // skewed popularity (Figure 7's distribution)
	mgetEvery   = 16  // every Nth read travels as a pipelined multi-get
	mgetKeys    = 8
)

func main() {
	short := flag.Bool("short", false, "reduced-ops smoke mode (CI)")
	flag.Parse()
	opsPerWorker := 150_000
	slaLimit := 0.01
	if *short {
		// 1/20th of the ops: enough to exercise every path over real
		// sockets. The SLA bound is relaxed — with so few requests a
		// handful of waits is a large fraction, and CI runners share CPUs.
		opsPerWorker /= 20
		slaLimit = 0.05
	}
	os.Exit(run(opsPerWorker, slaLimit))
}

func run(opsPerWorker int, slaLimit float64) int {
	fmt.Println("== memcached-style cache served over the wire (" + spec + ") ==")

	srv, err := server.New(server.Config{Spec: spec, Size: cacheItems, UseEBR: true, MaxInflight: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "server:", err)
		return 1
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		return 1
	}
	addr := l.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	// Warm the cache to ~50% occupancy (the paper's steady state) — over
	// the wire, in pipelined trains.
	warm, err := server.DialRetry(addr, 5*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial:", err)
		return 1
	}
	for k := csds.Key(1); k <= cacheItems; k += 2 {
		if err := warm.PipeSet(k, csds.Value(k)*10); err != nil {
			fmt.Fprintln(os.Stderr, "warmup:", err)
			return 1
		}
	}
	if err := warm.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "warmup:", err)
		return 1
	}
	for k := csds.Key(1); k <= cacheItems; k += 2 {
		if _, err := warm.RecvStored(); err != nil {
			fmt.Fprintln(os.Stderr, "warmup:", err)
			return 1
		}
	}

	type counts struct{ gets, hits, sets, dels, mgets uint64 }
	var total counts
	var mu sync.Mutex
	errs := make([]error, workers)
	zipf := xrand.NewZipf(2*cacheItems, zipfS)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			rng := xrand.New(uint64(w) + 1)
			keys := make([]csds.Key, mgetKeys)
			vals := make([]csds.Value, mgetKeys)
			oks := make([]bool, mgetKeys)
			var local counts
			for i := 0; i < opsPerWorker; i++ {
				key := csds.Key(1 + zipf.Rank(rng))
				switch {
				case rng.Bool(getFraction):
					if i%mgetEvery == 0 {
						// One pipelined multi-get: the server merges it
						// into a single Batcher MultiGet (one shard
						// crossing per burst, riding flat combining).
						for j := range keys {
							keys[j] = csds.Key(1 + zipf.Rank(rng))
						}
						if err := c.MultiGet(keys, vals, oks); err != nil {
							errs[w] = err
							return
						}
						local.mgets++
						local.gets += mgetKeys
						for _, ok := range oks {
							if ok {
								local.hits++
							}
						}
						continue
					}
					local.gets++
					_, ok, err := c.Get(key)
					if err != nil {
						errs[w] = err
						return
					}
					if ok {
						local.hits++
					}
				case rng.Bool(0.5):
					local.sets++
					if _, err := c.Set(key, key*10); err != nil {
						errs[w] = err
						return
					}
				default:
					local.dels++
					if _, err := c.Delete(key); err != nil {
						errs[w] = err
						return
					}
				}
			}
			mu.Lock()
			total.gets += local.gets
			total.hits += local.hits
			total.sets += local.sets
			total.dels += local.dels
			total.mgets += local.mgets
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			return 1
		}
	}

	// SLA audit over the wire: the server's stats command reports the
	// aggregated wait/restart evidence of every closed connection plus
	// the serving session itself.
	m, err := warm.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stats:", err)
		return 1
	}
	warm.Close()

	ops := total.gets + total.sets + total.dels
	fmt.Printf("workload         %d workers x %d ops over TCP, %.0f%% GET, Zipf s=%.1f\n",
		workers, opsPerWorker, getFraction*100, zipfS)
	fmt.Printf("throughput       %.3f Mops/s (%v total, closed loop)\n",
		float64(ops)/elapsed.Seconds()/1e6, elapsed.Round(time.Millisecond))
	fmt.Printf("hit rate         %.1f%% over %d lookups (%d pipelined multi-gets)\n",
		100*float64(total.hits)/float64(total.gets), total.gets, total.mgets)
	fmt.Printf("final size       %d items\n", srv.Set().Len())

	delayedFrac := float64(m["lock_waits"]+m["restarts"]) / float64(m["ops"])
	fmt.Printf("\npractical wait-freedom audit (SLA: <%.0f%% of requests delayed)\n", slaLimit*100)
	fmt.Printf("  server-side ops:                        %d\n", m["ops"])
	fmt.Printf("  requests delayed by locks or restarts:  %.4f%%\n", 100*delayedFrac)
	fmt.Printf("  worst single lock wait:                 %v\n", time.Duration(m["max_wait_ns"]))

	// Graceful drain: every connection's EBR record unregisters and the
	// domain quiesces — a leak here is a bug, not a statistic.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "drain:", err)
		return 1
	}
	<-serveDone
	a := srv.Audit()
	fmt.Printf("  drain: %d conns, retired %d == reclaimed %d\n", a.Conns, a.Retired, a.Reclaimed)
	if a.Retired != a.Reclaimed {
		fmt.Fprintln(os.Stderr, "drain left unreclaimed garbage")
		return 1
	}
	if delayedFrac >= slaLimit {
		fmt.Println("  VERDICT: SLA violated — contention above the paper's envelope")
		return 1
	}
	fmt.Println("  VERDICT: practically wait-free on this workload ✓")
	return 0
}
