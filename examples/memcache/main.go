// Memcache example: the paper motivates CSDSs with systems like Memcached,
// whose central structure is a big concurrent hash table under a skewed,
// read-heavy workload. This example runs such a cache front end on the
// featured lazy hash table and verifies the paper's headline claim as an
// SLA check: the fraction of requests delayed by concurrency must be
// negligible (practical wait-freedom, §2.3).
package main

import (
	"fmt"
	"sync"
	"time"

	"csds"
	"csds/internal/xrand"
)

const (
	cacheItems   = 16384
	workers      = 8
	opsPerWorker = 150_000
	getFraction  = 0.9 // Memcached-like read-mostly mix
	zipfS        = 0.8 // skewed popularity (Figure 7's distribution)
)

type cacheStats struct {
	gets, hits, sets, dels uint64
}

func main() {
	fmt.Println("== memcached-style cache on the featured lazy hash table ==")
	table := csds.NewLazyHashTable(cacheItems)

	// Warm the cache to ~50% occupancy (the paper's steady state).
	warm := csds.NewCtx(0)
	for k := csds.Key(1); k <= cacheItems; k += 2 {
		table.Put(warm, k, k*10)
	}

	zipf := xrand.NewZipf(2*cacheItems, zipfS)
	var total cacheStats
	var mu sync.Mutex
	ctxs := make([]*csds.Ctx, workers)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := csds.NewCtx(w)
			ctxs[w] = c
			rng := xrand.New(uint64(w) + 1)
			var local cacheStats
			for i := 0; i < opsPerWorker; i++ {
				key := csds.Key(1 + zipf.Rank(rng))
				switch {
				case rng.Bool(getFraction):
					local.gets++
					_, ok := table.Get(c, key)
					c.Stats.RecordRead(ok)
					if ok {
						local.hits++
					}
				case rng.Bool(0.5):
					local.sets++
					c.Stats.RecordInsert(table.Put(c, key, key*10))
				default:
					local.dels++
					c.Stats.RecordRemove(table.Remove(c, key))
				}
			}
			mu.Lock()
			total.gets += local.gets
			total.hits += local.hits
			total.sets += local.sets
			total.dels += local.dels
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	ops := uint64(workers * opsPerWorker)
	fmt.Printf("workload         %d workers x %d ops, %.0f%% GET, Zipf s=%.1f\n",
		workers, opsPerWorker, getFraction*100, zipfS)
	fmt.Printf("throughput       %.2f Mops/s (%v total)\n",
		float64(ops)/elapsed.Seconds()/1e6, elapsed.Round(time.Millisecond))
	fmt.Printf("hit rate         %.1f%%\n", 100*float64(total.hits)/float64(total.gets))
	fmt.Printf("final size       %d items\n", table.Len())

	// SLA check: practical wait-freedom means a negligible fraction of
	// requests is delayed by other threads. Sum the per-worker evidence.
	var waits, waitNs, restarts, opsCount, maxWait uint64
	for _, c := range ctxs {
		waits += c.Stats.LockWaits
		waitNs += c.Stats.LockWaitNs
		restarts += c.Stats.Restarts
		opsCount += c.Stats.Ops
		if c.Stats.MaxWaitNs > maxWait {
			maxWait = c.Stats.MaxWaitNs
		}
	}
	delayedFrac := float64(waits+restarts) / float64(opsCount)
	fmt.Printf("\npractical wait-freedom audit (SLA: <1%% of requests delayed)\n")
	fmt.Printf("  requests delayed by locks or restarts: %.4f%%\n", 100*delayedFrac)
	fmt.Printf("  worst single lock wait:                %v\n", time.Duration(maxWait))
	if delayedFrac < 0.01 {
		fmt.Println("  VERDICT: practically wait-free on this workload ✓")
	} else {
		fmt.Println("  VERDICT: SLA violated — contention above the paper's envelope")
	}
}
