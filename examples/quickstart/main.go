// Quickstart: a tour of the csds public API — constructing the featured
// structures, per-goroutine contexts, concurrent use, and reading the
// practical-wait-freedom metrics the paper defines.
package main

import (
	"fmt"
	"sync"

	"csds"
)

func main() {
	fmt.Println("== csds quickstart ==")

	// 1. Any of the featured structures implements csds.Set.
	structures := map[string]csds.Set{
		"lazy list (featured list)":   csds.NewLazyList(),
		"Herlihy skip list":           csds.NewHerlihySkipList(1024),
		"lazy hash table":             csds.NewLazyHashTable(1024),
		"BST-TK external search tree": csds.NewBSTTK(),
	}

	// 2. Each goroutine owns a Ctx (explicit thread-local state).
	c := csds.NewCtx(0)

	for name, s := range structures {
		s.Put(c, 10, 100)
		s.Put(c, 20, 200)
		v, ok := s.Get(c, 10)
		removed := s.Remove(c, 20)
		fmt.Printf("%-30s Get(10)=(%d,%v) Remove(20)=%v Len=%d\n", name, v, ok, removed, s.Len())
	}

	// 3. Concurrent use: one Ctx per goroutine, nothing else to arrange.
	s := csds.NewLazyList()
	var wg sync.WaitGroup
	workerCtxs := make([]*csds.Ctx, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := csds.NewCtx(w)
			workerCtxs[w] = c
			for i := 0; i < 1000; i++ {
				k := csds.Key(w*1000 + i)
				s.Put(c, k, csds.Value(i))
				if i%3 == 0 {
					s.Remove(c, k)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("\nafter 4 workers x 1000 inserts (1/3 removed): Len = %d\n", s.Len())

	// 4. The fine-grained metrics of the paper live in the Ctx's stats:
	//    lock waiting time and restarts are the two ways concurrency can
	//    delay a request in a blocking CSDS (Section 2.3).
	fmt.Printf("\nper-worker fine-grained metrics after the run:\n")
	for w, wc := range workerCtxs {
		fmt.Printf("  worker %d: lock acquisitions %d, waits %d (%d ns), restarts %d\n",
			w, wc.Stats.LockAcqs, wc.Stats.LockWaits, wc.Stats.LockWaitNs, wc.Stats.Restarts)
	}

	// 5. The full catalogue (blocking, lock-free and wait-free variants).
	fmt.Println("\nregistered algorithms:")
	for _, name := range csds.Algorithms() {
		info, _ := csds.Lookup(name)
		star := "  "
		if info.Featured {
			star = "* "
		}
		fmt.Printf("  %s%-24s %-10s %s\n", star, name, info.Progress, info.Desc)
	}
	fmt.Println("\n(*) featured: the best-performing blocking algorithm per structure,")
	fmt.Println("    shown by the paper to be practically wait-free.")
}
