// Traversal example: Figure 2 of the paper, made concrete. The blocking
// lazy list stores its successor in the node itself (one pointer hop per
// element); the wait-free list interposes an immutable (next, mark,
// provenance) box between every pair of nodes, so each logical hop is two
// dependent loads plus descriptor bookkeeping on updates. The paper's
// point: traversal time dominates CSDS operations, so the extra
// indirection alone halves wait-free throughput.
package main

import (
	"fmt"
	"time"

	"csds"
)

const (
	listSize = 1024
	rounds   = 2000
)

func fill(s csds.Set) {
	c := csds.NewCtx(0)
	for k := csds.Key(1); k <= listSize; k++ {
		s.Put(c, k*2, k) // even keys: lookups for odd keys traverse fully
	}
}

// sweep times Get calls that traverse to every position of the list.
func sweep(s csds.Set) time.Duration {
	c := csds.NewCtx(0)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		k := csds.Key((r%listSize)*2 + 1) // absent odd key: full window walk
		s.Get(c, k)
	}
	return time.Since(start)
}

func main() {
	fmt.Println("== Figure 2: traversal layouts compared ==")
	fmt.Printf("list size %d, %d lookups each\n\n", listSize, rounds)

	direct := csds.NewLazyList()
	fill(direct)
	boxed := csds.NewWaitFreeList()
	fill(boxed)
	lockfree := csds.NewHarrisList()
	fill(lockfree)

	dd := sweep(direct)
	db := sweep(boxed)
	dl := sweep(lockfree)

	perOp := func(d time.Duration) time.Duration { return d / rounds }
	fmt.Printf("%-42s %12s\n", "layout", "ns/lookup")
	fmt.Printf("%-42s %12v\n", "blocking lazy list (node -> node)", perOp(dd))
	fmt.Printf("%-42s %12v\n", "lock-free Harris list (node -> box -> node)", perOp(dl))
	fmt.Printf("%-42s %12v\n", "wait-free list (node -> box+src -> node)", perOp(db))

	fmt.Printf("\nwait-free / blocking traversal cost ratio: %.2fx\n", float64(db)/float64(dd))
	fmt.Println("\nThe interposed concurrency objects of Figure 2 are why the")
	fmt.Println("wait-free list's throughput sits at roughly half of the blocking")
	fmt.Println("list's in Figure 1 — traversals dominate, and every hop doubled.")
}
