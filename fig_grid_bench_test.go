package csds

import (
	"fmt"
	"testing"

	"csds/internal/harness"
	"csds/internal/sim"
	"csds/internal/workload"
)

// featuredAlgs are the best-performing blocking algorithm per structure —
// the ones every grid figure of the paper shows.
var featuredAlgs = []string{"list/lazy", "skiplist/herlihy", "hashtable/lazy", "bst/tk"}

var gridSizes = []int{512, 2048, 8192}
var gridUpdates = []float64{0.01, 0.1, 0.5}

// ---------------------------------------------------------------------------
// Figure 3: throughput scalability of the featured blocking structures over
// sizes × update ratios. The Run engine sweeps threads on this host; the
// Sim engine reproduces the 40-thread Xeon shapes.
// ---------------------------------------------------------------------------

func BenchmarkFig3Run(b *testing.B) {
	for _, alg := range featuredAlgs {
		for _, size := range gridSizes {
			for _, u := range gridUpdates {
				b.Run(fmt.Sprintf("alg=%s/size=%d/upd=%g/threads=20", alg, size, u), func(b *testing.B) {
					benchCell(b, harness.Config{
						Algorithm: alg, Threads: 20,
						Workload: workload.Config{Size: size, UpdateRatio: u},
					})
				})
			}
		}
	}
}

func BenchmarkFig3Sim(b *testing.B) {
	for _, alg := range featuredAlgs {
		st, _ := sim.ModelFor(alg)
		for _, size := range gridSizes {
			for _, u := range gridUpdates {
				for _, th := range []int{1, 10, 20, 40} {
					b.Run(fmt.Sprintf("alg=%s/size=%d/upd=%g/threads=%d", alg, size, u, th), func(b *testing.B) {
						var res sim.Result
						for i := 0; i < b.N; i++ {
							res = sim.Run(sim.Config{
								Machine: sim.PaperXeon(), Structure: st, Threads: th,
								Size: size, UpdateRatio: u, Ops: 2000, Seed: 5,
							})
						}
						reportSim(b, res)
					})
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 4: per-thread throughput and its standard deviation (fairness).
// The paper finds the stddev ~0.2% of the mean: no thread is starved.
// The thrstddev metric here is stddev/mean.
// ---------------------------------------------------------------------------

func BenchmarkFig4Run(b *testing.B) {
	for _, alg := range featuredAlgs {
		for _, u := range gridUpdates {
			b.Run(fmt.Sprintf("alg=%s/size=2048/upd=%g/threads=20", alg, u), func(b *testing.B) {
				benchCell(b, harness.Config{
					Algorithm: alg, Threads: 20,
					Workload: workload.Config{Size: 2048, UpdateRatio: u},
				})
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 5: fraction of time threads spend waiting for locks. Under 2%
// in every cell of the paper; zero for BST-TK (trylocks).
// ---------------------------------------------------------------------------

func BenchmarkFig5Run(b *testing.B) {
	for _, alg := range featuredAlgs {
		for _, size := range gridSizes {
			b.Run(fmt.Sprintf("alg=%s/size=%d/upd=0.1/threads=20", alg, size), func(b *testing.B) {
				benchCell(b, harness.Config{
					Algorithm: alg, Threads: 20,
					Workload: workload.Config{Size: size, UpdateRatio: 0.1},
				})
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 6: fraction of operations that restart. Far below 1% everywhere;
// exactly zero for the hash table (per-bucket locks).
// ---------------------------------------------------------------------------

func BenchmarkFig6Run(b *testing.B) {
	for _, alg := range featuredAlgs {
		for _, u := range gridUpdates {
			b.Run(fmt.Sprintf("alg=%s/size=2048/upd=%g/threads=20", alg, u), func(b *testing.B) {
				benchCell(b, harness.Config{
					Algorithm: alg, Threads: 20,
					Workload: workload.Config{Size: 2048, UpdateRatio: u},
				})
			})
		}
	}
}

// ---------------------------------------------------------------------------
// §5.1 outlier experiment: 512-element list, 40 threads, 10% updates.
// The paper observed: 0.01% of requests waited, none longer than 6µs;
// 2900 ops restarted once, 9 twice, none more.
// ---------------------------------------------------------------------------

func BenchmarkSec51Outliers(b *testing.B) {
	var res harness.Result
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(harness.Config{
			Algorithm: "list/lazy", Threads: 40, Duration: benchDur,
			Workload: workload.Config{Size: 512, UpdateRatio: 0.1},
		})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	report(b, res)
	b.ReportMetric(float64(res.MaxWaitNs), "maxwaitns")
	b.ReportMetric(res.WaitingOpsFrac, "waitingops")
}

// ---------------------------------------------------------------------------
// §5.1 lock-coupling contrast: the naive fine-grained algorithm is NOT
// practically wait-free (~10% of time waiting with 20 threads, 1% updates).
// ---------------------------------------------------------------------------

func BenchmarkSec51LockCoupling(b *testing.B) {
	for _, size := range gridSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			benchCell(b, harness.Config{
				Algorithm: "list/lockcoupling", Threads: 20,
				Workload: workload.Config{Size: size, UpdateRatio: 0.01},
			})
		})
	}
}
