package csds

import (
	"fmt"
	"testing"
	"time"

	"csds/internal/harness"
	"csds/internal/interrupt"
	"csds/internal/queuestack"
	"csds/internal/sim"
	"csds/internal/workload"
	"csds/internal/xrand"
)

// ---------------------------------------------------------------------------
// Figure 7: Zipfian workload (s = 0.8), 2048 elements, 20 threads, 10%
// updates — waits stay below 1%, restarts below 0.3%.
// ---------------------------------------------------------------------------

func BenchmarkFig7Run(b *testing.B) {
	for _, alg := range featuredAlgs {
		b.Run("alg="+alg, func(b *testing.B) {
			benchCell(b, harness.Config{
				Algorithm: alg, Threads: 20,
				Workload: workload.Config{Size: 2048, UpdateRatio: 0.1, ZipfS: 0.8},
			})
		})
	}
}

func BenchmarkFig7Sim(b *testing.B) {
	z := xrand.NewZipf(4096, 0.8)
	sp2 := z.SumPSquared()
	for _, alg := range featuredAlgs {
		st, _ := sim.ModelFor(alg)
		b.Run("alg="+alg, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = sim.Run(sim.Config{
					Machine: sim.PaperXeon(), Structure: st, Threads: 20,
					Size: 2048, UpdateRatio: 0.1, SumP2: sp2, Ops: 3000, Seed: 7,
				})
			}
			reportSim(b, res)
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 8: extreme contention — 40 threads, 25% updates, structure size
// swept down from 512 to 16. Waits/restarts decay steeply with size.
// ---------------------------------------------------------------------------

func BenchmarkFig8Run(b *testing.B) {
	for _, alg := range featuredAlgs {
		for _, size := range []int{16, 32, 64, 128, 256, 512} {
			b.Run(fmt.Sprintf("alg=%s/size=%d", alg, size), func(b *testing.B) {
				benchCell(b, harness.Config{
					Algorithm: alg, Threads: 40,
					Workload: workload.Config{Size: size, UpdateRatio: 0.25},
				})
			})
		}
	}
}

func BenchmarkFig8Sim(b *testing.B) {
	for _, alg := range featuredAlgs {
		st, _ := sim.ModelFor(alg)
		for _, size := range []int{16, 32, 64, 128, 256, 512} {
			b.Run(fmt.Sprintf("alg=%s/size=%d", alg, size), func(b *testing.B) {
				var res sim.Result
				for i := 0; i < b.N; i++ {
					res = sim.Run(sim.Config{
						Machine: sim.PaperXeon(), Structure: st, Threads: 40,
						Size: size, UpdateRatio: 0.25, Ops: 3000, Seed: 9,
					})
				}
				reportSim(b, res)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 9: unresponsive threads — one worker is delayed 1–100µs every 10
// updates *while holding locks*; waits stay ~1%, restarts ~0.015%.
// ---------------------------------------------------------------------------

func BenchmarkFig9Run(b *testing.B) {
	for _, alg := range featuredAlgs {
		b.Run("alg="+alg, func(b *testing.B) {
			benchCell(b, harness.Config{
				Algorithm: alg, Threads: 20,
				Workload:       workload.Config{Size: 2048, UpdateRatio: 0.1},
				DelayedThreads: 1,
				DelayPlan:      interrupt.PaperDelayPlan(),
			})
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 10: lock-based queue and stack — waiting fraction approaches 1 as
// threads grow (the Section 7 hotspot pathology).
// ---------------------------------------------------------------------------

func BenchmarkFig10Run(b *testing.B) {
	for _, kind := range []string{"queue", "stack"} {
		for _, th := range []int{2, 8, 20} {
			b.Run(fmt.Sprintf("kind=%s/threads=%d", kind, th), func(b *testing.B) {
				// The hotspot pathology needs the workers to outlive a few
				// scheduler timeslices before waits accumulate on a small
				// host, so this cell uses a longer window than benchDur.
				var waitFrac float64
				for i := 0; i < b.N; i++ {
					waitFrac = runHotspot(kind, th, 4*benchDur)
				}
				b.ReportMetric(waitFrac, "waitfrac")
			})
		}
	}
}

func BenchmarkFig10Sim(b *testing.B) {
	for _, kind := range []string{"queue", "stack"} {
		st, _ := sim.ModelFor(kind)
		for _, th := range []int{2, 4, 8, 12, 16, 20} {
			b.Run(fmt.Sprintf("kind=%s/threads=%d", kind, th), func(b *testing.B) {
				var res sim.Result
				for i := 0; i < b.N; i++ {
					res = sim.Run(sim.Config{
						Machine: sim.PaperXeon(), Structure: st, Threads: th,
						Size: 1024, UpdateRatio: 1, Ops: 2000, Seed: 17,
					})
				}
				reportSim(b, res)
			})
		}
	}
}

// runHotspot drives the Section 7 queue/stack workload directly (these are
// not core.Set instances) and returns the measured wait fraction.
func runHotspot(kind string, threads int, dur time.Duration) float64 {
	return queuestack.RunHotspot(kind, threads, dur, 1024)
}

// ---------------------------------------------------------------------------
// Tables 2 and 3: multiprogramming (8 threads per hardware context in the
// paper, simulated here) with TSX-style lock elision. Table 2 reports the
// fraction of critical sections that fall back to real locks; Table 3 the
// throughput ratio of elided vs default implementations.
// ---------------------------------------------------------------------------

func BenchmarkTable2Run(b *testing.B) {
	for _, alg := range featuredAlgs {
		for _, u := range []float64{0.2, 0.5, 1.0} {
			b.Run(fmt.Sprintf("alg=%s/upd=%g", alg, u), func(b *testing.B) {
				benchCell(b, harness.Config{
					Algorithm: alg, Threads: 32, ElideAttempts: 5,
					Workload: workload.Config{Size: 1024, UpdateRatio: u},
					SwitchPlan: &interrupt.SwitchPlan{
						Rate: 0.0005, MinOff: 50 * time.Microsecond, MaxOff: 500 * time.Microsecond,
					},
				})
			})
		}
	}
}

func BenchmarkTable2Sim(b *testing.B) {
	for _, alg := range featuredAlgs {
		st, _ := sim.ModelFor(alg)
		for _, u := range []float64{0.2, 0.5, 1.0} {
			b.Run(fmt.Sprintf("alg=%s/upd=%g", alg, u), func(b *testing.B) {
				var res sim.Result
				for i := 0; i < b.N; i++ {
					res = sim.Run(sim.Config{
						Machine: sim.PaperHaswell(), Structure: st, Threads: 32,
						Size: 1024, UpdateRatio: u, Ops: 4000,
						ElideAttempts: 5, Multiprogram: true, Seed: 23,
					})
				}
				reportSim(b, res)
			})
		}
	}
}

func BenchmarkTable3Run(b *testing.B) {
	sp := &interrupt.SwitchPlan{Rate: 0.0005, MinOff: 50 * time.Microsecond, MaxOff: 500 * time.Microsecond}
	for _, alg := range featuredAlgs {
		for _, u := range []float64{0.2, 1.0} {
			for _, elide := range []int{0, 5} {
				b.Run(fmt.Sprintf("alg=%s/upd=%g/elide=%d", alg, u, elide), func(b *testing.B) {
					benchCell(b, harness.Config{
						Algorithm: alg, Threads: 32, ElideAttempts: elide,
						Workload:   workload.Config{Size: 1024, UpdateRatio: u},
						SwitchPlan: sp,
					})
				})
			}
		}
	}
}

func BenchmarkTable3Sim(b *testing.B) {
	for _, alg := range featuredAlgs {
		st, _ := sim.ModelFor(alg)
		for _, u := range []float64{0.2, 0.5, 1.0} {
			b.Run(fmt.Sprintf("alg=%s/upd=%g", alg, u), func(b *testing.B) {
				var ratio float64
				for i := 0; i < b.N; i++ {
					mk := func(elide int) float64 {
						return sim.Run(sim.Config{
							Machine: sim.PaperHaswell(), Structure: st, Threads: 32,
							Size: 1024, UpdateRatio: u, Ops: 4000,
							ElideAttempts: elide, Multiprogram: true, Seed: 29,
						}).ThroughputOpsPerSec
					}
					ratio = mk(5) / mk(0)
				}
				b.ReportMetric(ratio, "tsx-speedup")
			})
		}
	}
}
