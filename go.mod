module csds

go 1.24
