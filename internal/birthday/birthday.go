// Package birthday implements the conflict-probability model of the
// paper's Section 6: the fraction of time threads spend in update write
// phases (Equations 1–2), the birthday-paradox collision terms for each
// structure (Equations 4–8, including the "almost birthday" variant for
// the linked list and the Poisson approximation for non-uniform
// workloads), the overall conflict probability (Equation 3), and the
// TSX-fallback probability p_lock = p_conflict^retries (§6.4).
package birthday

import "math"

// FUpdate is Equation (1): the fraction of time a continuously running
// thread spends inside update operations, given the update ratio u and the
// average durations of updates and reads (any common unit).
func FUpdate(u, durUpdate, durRead float64) float64 {
	den := u*durUpdate + (1-u)*durRead
	if den == 0 {
		return 0
	}
	return u * durUpdate / den
}

// FWrite is Equation (2): the fraction of time spent in the write phase,
// where dw and dp are the average write- and parse-phase durations.
func FWrite(fu, dw, dp float64) float64 {
	den := dw + dp
	if den == 0 {
		return 0
	}
	return fu * dw / den
}

// BHashTable is Equation (4): the classical birthday paradox — the
// probability that k concurrent writers on an n-bucket table with one lock
// per bucket produce at least one collision.
func BHashTable(k int, n int) float64 {
	if k < 2 {
		return 0
	}
	if k > n {
		return 1
	}
	p := 1.0
	for i := 1; i <= k-1; i++ {
		p *= float64(n-i) / float64(n)
	}
	return 1 - p
}

// BLinkedList is Equation (5): the "almost birthday paradox" upper bound
// for a linked list of n nodes where each remove locks two consecutive
// nodes — a conflict needs two writers within distance two:
//
//	B = 1 - (n-k-1)! / ((n-2k)! * n^(k-1))
//
// computed as a stable product of (k-1) ratio terms.
func BLinkedList(k int, n int) float64 {
	if k < 2 {
		return 0
	}
	if 2*k >= n {
		return 1
	}
	// (n-k-1)!/(n-2k)! = product of integers from n-2k+1 up to n-k-1,
	// which is (k-1) terms; divide each by n.
	p := 1.0
	for i := n - 2*k + 1; i <= n-k-1; i++ {
		p *= float64(i) / float64(n)
	}
	return 1 - p
}

// BNonUniform is Equation (6): the Poisson approximation for non-uniform
// access distributions, parameterised by the collision mass sum of p_i^2
// (xrand.Zipf.SumPSquared provides it for Zipfian workloads).
func BNonUniform(k int, sumP2 float64) float64 {
	if k < 2 {
		return 0
	}
	pairs := float64(k) * float64(k-1) / 2
	return 1 - math.Exp(-pairs*sumP2)
}

// BHashTableTSX is Equation (7): under lock elision, readers can also
// abort writers, so the t-k non-writing threads contribute a (n-k)/n term
// each:
//
//	B = 1 - ((n-k)/n)^(t-k) * prod_{i=1}^{k-1} (n-i)/n
func BHashTableTSX(k, n, t int) float64 {
	if k < 1 || t < 1 {
		return 0
	}
	if k > n {
		return 1
	}
	p := math.Pow(float64(n-k)/float64(n), float64(t-k))
	for i := 1; i <= k-1; i++ {
		p *= float64(n-i) / float64(n)
	}
	return 1 - p
}

// BLinkedListTSX is Equation (8): the list analogue with the reader term
//
//	B = 1 - [(n-k-1)!/((n-2k)! n^(k-1))] * ((n-2k)(n-2k-1)/(n(n-k-1)))^(t-k)
func BLinkedListTSX(k, n, t int) float64 {
	if k < 1 || t < 1 {
		return 0
	}
	if 2*k+1 >= n {
		return 1
	}
	p := 1.0
	for i := n - 2*k + 1; i <= n-k-1; i++ {
		p *= float64(i) / float64(n)
	}
	reader := float64(n-2*k) * float64(n-2*k-1) / (float64(n) * float64(n-k-1))
	p *= math.Pow(reader, float64(t-k))
	return 1 - p
}

// PConflict is Equation (3): the probability that, at a random instant,
// some thread in a t-thread system is involved in a write-phase conflict.
// fw is Equation (2)'s write-phase time fraction and B(k) the structure's
// collision term for k concurrent writers.
func PConflict(t int, fw float64, B func(k int) float64) float64 {
	if t < 1 {
		return 0
	}
	sum := 0.0
	for k := 1; k <= t; k++ {
		sum += binomPMF(t, k, fw) * B(k)
	}
	return sum
}

// binomPMF computes C(t,k) p^k (1-p)^(t-k) in log space for stability.
func binomPMF(t, k int, p float64) float64 {
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == t {
			return 1
		}
		return 0
	}
	lg := lgammaInt(t+1) - lgammaInt(k+1) - lgammaInt(t-k+1)
	lg += float64(k)*math.Log(p) + float64(t-k)*math.Log(1-p)
	return math.Exp(lg)
}

func lgammaInt(n int) float64 {
	v, _ := math.Lgamma(float64(n))
	return v
}

// PLock is the §6.4 fallback probability: a transactional region retried
// `retries` times reverts to locking only if every attempt conflicts.
func PLock(pConflict float64, retries int) float64 {
	return math.Pow(pConflict, float64(retries))
}

// Scenario bundles the model inputs for one workload and exposes the
// paper's derived quantities. It is the programmatic face of Section 6 and
// of cmd/csdsmodel.
type Scenario struct {
	Threads     int
	Size        int     // structure size (list) or bucket count (hash)
	UpdateRatio float64 // u
	DurUpdate   float64 // relative average update duration
	DurRead     float64 // relative average read duration
	WriteFrac   float64 // dw/(dw+dp), the write-phase share of an update
	SumP2       float64 // collision mass; 0 = uniform over Size
	TSXRetries  int     // speculation budget (5 in the paper)
}

// FW returns the write-phase time fraction for the scenario.
func (s Scenario) FW() float64 {
	fu := FUpdate(s.UpdateRatio, s.DurUpdate, s.DurRead)
	// FWrite takes dw, dp; WriteFrac = dw/(dw+dp) so pass (WriteFrac,
	// 1-WriteFrac).
	return FWrite(fu, s.WriteFrac, 1-s.WriteFrac)
}

// HashConflict returns Equation (3) with the hash-table collision term.
func (s Scenario) HashConflict() float64 {
	return PConflict(s.Threads, s.FW(), func(k int) float64 { return BHashTable(k, s.Size) })
}

// ListConflict returns Equation (3) with the linked-list collision term.
func (s Scenario) ListConflict() float64 {
	return PConflict(s.Threads, s.FW(), func(k int) float64 { return BLinkedList(k, s.Size) })
}

// NonUniformConflict returns Equation (3) with the Poisson term for the
// scenario's SumP2.
func (s Scenario) NonUniformConflict() float64 {
	sp := s.SumP2
	if sp == 0 {
		sp = 1 / float64(s.Size)
	}
	return PConflict(s.Threads, s.FW(), func(k int) float64 { return BNonUniform(k, sp) })
}

// HashTSXFallback returns p_lock for the elided hash table.
func (s Scenario) HashTSXFallback() float64 {
	p := PConflict(s.Threads, s.FW(), func(k int) float64 { return BHashTableTSX(k, s.Size, s.Threads) })
	return PLock(p, s.retries())
}

// ListTSXConflict returns the per-attempt conflict probability for the
// elided list (the paper quotes 16% for its contended example).
func (s Scenario) ListTSXConflict() float64 {
	return PConflict(s.Threads, s.FW(), func(k int) float64 { return BLinkedListTSX(k, s.Size, s.Threads) })
}

// ListTSXFallback returns p_lock for the elided list.
func (s Scenario) ListTSXFallback() float64 {
	return PLock(s.ListTSXConflict(), s.retries())
}

func (s Scenario) retries() int {
	if s.TSXRetries <= 0 {
		return 5
	}
	return s.TSXRetries
}

// PaperHashExample is the §6.1 numeric example: 1024 buckets, 20 threads,
// 10% updates, updates twice the cost of reads, parse phase zero.
func PaperHashExample() Scenario {
	return Scenario{
		Threads: 20, Size: 1024, UpdateRatio: 0.1,
		DurUpdate: 2, DurRead: 1, WriteFrac: 1, // dp = 0
		TSXRetries: 5,
	}
}

// PaperListExample is the §6.2 numeric example: 512 elements, 40 threads,
// 20% updates, write phase ~10% of an update, updates 1.1x reads.
func PaperListExample() Scenario {
	return Scenario{
		Threads: 40, Size: 512, UpdateRatio: 0.2,
		DurUpdate: 1.1, DurRead: 1, WriteFrac: 0.1,
		TSXRetries: 5,
	}
}
