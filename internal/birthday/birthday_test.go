package birthday

import (
	"math"
	"testing"

	"csds/internal/xrand"
)

func approx(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > 1e-12 {
			t.Fatalf("%s = %v, want 0", name, got)
		}
		return
	}
	if r := math.Abs(got-want) / math.Abs(want); r > relTol {
		t.Fatalf("%s = %v, want %v (rel err %.2f > %.2f)", name, got, want, r, relTol)
	}
}

func TestFUpdatePaperHash(t *testing.T) {
	// §6.1: u = 0.1, update = 2x read => f_u = 0.2/1.1 ≈ 0.18.
	approx(t, "f_u", FUpdate(0.1, 2, 1), 0.1818, 0.01)
}

func TestFWriteHashEqualsFUpdate(t *testing.T) {
	// dp = 0 => f_w = f_u.
	fu := FUpdate(0.1, 2, 1)
	approx(t, "f_w", FWrite(fu, 1, 0), fu, 1e-12)
}

func TestPaperHashConflict(t *testing.T) {
	// §6.1 reports p_conflict = 0.0058 (0.58%).
	s := PaperHashExample()
	approx(t, "hash p_conflict", s.HashConflict(), 0.0058, 0.10)
}

func TestPaperListFW(t *testing.T) {
	// §6.2 reports f_w ≈ 0.0215.
	s := PaperListExample()
	approx(t, "list f_w", s.FW(), 0.0215, 0.10)
}

func TestPaperListConflict(t *testing.T) {
	// §6.2 reports p_conflict = 0.0021 (0.21%).
	s := PaperListExample()
	approx(t, "list p_conflict", s.ListConflict(), 0.0021, 0.15)
}

func TestPaperZipfConflict(t *testing.T) {
	// §6.3: the same list example with Zipf s=0.8 gives 0.47%.
	s := PaperListExample()
	z := xrand.NewZipf(int64(s.Size), 0.8)
	s.SumP2 = z.SumPSquared()
	approx(t, "zipf p_conflict", s.NonUniformConflict(), 0.0047, 0.35)
}

func TestPaperHashTSXFallback(t *testing.T) {
	// §6.4: p_lock = 0.0005% = 5e-6 for the hash example.
	s := PaperHashExample()
	got := s.HashTSXFallback()
	if got <= 0 || got > 5e-5 {
		t.Fatalf("hash p_lock = %v, want ~5e-6 (order of magnitude)", got)
	}
}

func TestPaperListTSX(t *testing.T) {
	// §6.4: per-attempt conflict ~16%, p_lock ~0.001% = 1e-5.
	s := PaperListExample()
	approx(t, "list TSX conflict", s.ListTSXConflict(), 0.16, 0.5)
	got := s.ListTSXFallback()
	if got <= 0 || got > 5e-4 {
		t.Fatalf("list p_lock = %v, want ~1e-5 (order of magnitude)", got)
	}
}

func TestBHashTableEdges(t *testing.T) {
	if BHashTable(0, 100) != 0 || BHashTable(1, 100) != 0 {
		t.Fatal("fewer than 2 writers cannot conflict")
	}
	if BHashTable(101, 100) != 1 {
		t.Fatal("more writers than buckets must collide")
	}
	// Classical birthday: 23 people, 365 days => ~0.507.
	approx(t, "birthday(23,365)", BHashTable(23, 365), 0.507, 0.01)
}

func TestBHashTableMonotone(t *testing.T) {
	prev := 0.0
	for k := 1; k <= 64; k++ {
		b := BHashTable(k, 1024)
		if b < prev {
			t.Fatalf("B_ht not monotone at k=%d", k)
		}
		prev = b
	}
}

func TestBLinkedListDominatesHash(t *testing.T) {
	// Locking two consecutive nodes collides more easily than one bucket.
	for k := 2; k <= 32; k++ {
		if BLinkedList(k, 512) < BHashTable(k, 512) {
			t.Fatalf("B_ll < B_ht at k=%d: almost-birthday must dominate", k)
		}
	}
}

func TestBLinkedListEdges(t *testing.T) {
	if BLinkedList(1, 512) != 0 {
		t.Fatal("one writer cannot conflict")
	}
	if BLinkedList(256, 512) != 1 {
		t.Fatal("saturated list must conflict")
	}
}

func TestBNonUniformReducesToUniform(t *testing.T) {
	// For a uniform distribution sum p^2 = 1/n and the Poisson
	// approximation should be close to the exact birthday term.
	n := 1024
	for k := 2; k <= 20; k += 6 {
		exact := BHashTable(k, n)
		pois := BNonUniform(k, 1/float64(n))
		approx(t, "poisson-vs-exact", pois, exact, 0.05)
	}
}

func TestTSXTermsDominatePlain(t *testing.T) {
	// Readers also abort writers under TSX, so the TSX collision terms
	// must be at least the plain ones.
	for k := 2; k <= 16; k++ {
		if BHashTableTSX(k, 1024, 20) < BHashTable(k, 1024) {
			t.Fatalf("TSX hash term smaller than plain at k=%d", k)
		}
		if BLinkedListTSX(k, 512, 40) < BLinkedList(k, 512) {
			t.Fatalf("TSX list term smaller than plain at k=%d", k)
		}
	}
}

func TestPConflictBounds(t *testing.T) {
	for _, fw := range []float64{0, 0.01, 0.5, 1} {
		p := PConflict(40, fw, func(k int) float64 { return BLinkedList(k, 512) })
		if p < 0 || p > 1 {
			t.Fatalf("PConflict out of [0,1]: %v (fw=%v)", p, fw)
		}
	}
	if PConflict(0, 0.5, func(int) float64 { return 1 }) != 0 {
		t.Fatal("no threads => no conflicts")
	}
}

func TestPConflictMonotoneInThreads(t *testing.T) {
	prev := 0.0
	for threads := 1; threads <= 64; threads *= 2 {
		p := PConflict(threads, 0.02, func(k int) float64 { return BLinkedList(k, 512) })
		if p+1e-12 < prev {
			t.Fatalf("PConflict decreased at t=%d: %v < %v", threads, p, prev)
		}
		prev = p
	}
}

func TestPLock(t *testing.T) {
	approx(t, "p_lock", PLock(0.1, 5), 1e-5, 1e-9)
	if PLock(0, 5) != 0 {
		t.Fatal("zero conflict must give zero fallback")
	}
	if PLock(1, 5) != 1 {
		t.Fatal("certain conflict must give certain fallback")
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0.01, 0.3, 0.9} {
		sum := 0.0
		for k := 0; k <= 40; k++ {
			sum += binomPMF(40, k, p)
		}
		approx(t, "binom sum", sum, 1, 1e-9)
	}
}

func TestBinomPMFDegenerate(t *testing.T) {
	if binomPMF(10, 0, 0) != 1 || binomPMF(10, 3, 0) != 0 {
		t.Fatal("p=0 PMF wrong")
	}
	if binomPMF(10, 10, 1) != 1 || binomPMF(10, 3, 1) != 0 {
		t.Fatal("p=1 PMF wrong")
	}
}

func TestConflictDecreasesWithSize(t *testing.T) {
	// Figure 8's exponential decay: p_conflict falls steeply as the
	// structure grows.
	prev := 1.0
	for _, n := range []int{16, 32, 64, 128, 256, 512} {
		s := Scenario{Threads: 40, Size: n, UpdateRatio: 0.25, DurUpdate: 1.1, DurRead: 1, WriteFrac: 0.1}
		p := s.ListConflict()
		if p >= prev {
			t.Fatalf("p_conflict not decreasing at n=%d: %v >= %v", n, p, prev)
		}
		prev = p
	}
}
