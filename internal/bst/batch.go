// Batched (core.Batcher) paths for the BSTs: sorted point application.
// Like the skip lists, a BST point search is already logarithmic and
// the write phase touches a constant number of nodes, so the batch win
// is the ascending order's path locality (consecutive sorted keys share
// tree path prefixes). Each Multi* additionally opens one epoch bracket
// for the whole batch (brackets nest), amortizing the per-op epoch
// announcement.
package bst

import "csds/internal/core"

// MultiGet implements core.Batcher by sorted point lookups.
func (t *TK) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiGet(c, t, keys, f)
}

// MultiPut implements core.Batcher by sorted point inserts.
func (t *TK) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiPut(c, t, pairs, f)
}

// MultiRemove implements core.Batcher by sorted point removes.
func (t *TK) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiRemove(c, t, keys, f)
}

// MultiGet implements core.Batcher by sorted point lookups.
func (t *Internal) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiGet(c, t, keys, f)
}

// MultiPut implements core.Batcher by sorted point inserts.
func (t *Internal) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiPut(c, t, pairs, f)
}

// MultiRemove implements core.Batcher by sorted point removes.
func (t *Internal) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiRemove(c, t, keys, f)
}
