package bst

import (
	"sync"
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
	"csds/internal/xrand"
)

func TestTK(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewTK(o) })
}

func TestTKElided(t *testing.T) {
	settest.RunElided(t, func(o core.Options) core.Set { return NewTK(o) })
}

func TestTKEBR(t *testing.T) {
	settest.RunEBR(t, func(o core.Options) core.Set { return NewTK(o) })
}

func TestInternal(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewInternal(o) })
}

// TestScanners runs the linearizable range-scan battery on both trees;
// BSTs scan in key order.
func TestScanners(t *testing.T) {
	for name, mk := range map[string]func(core.Options) core.Set{
		"tk":       func(o core.Options) core.Set { return NewTK(o) },
		"internal": func(o core.Options) core.Set { return NewInternal(o) },
	} {
		t.Run(name, func(t *testing.T) { settest.RunScanner(t, mk, true) })
	}
}

// TestCursors runs the paginated-iteration battery on both trees.
func TestCursors(t *testing.T) {
	for name, mk := range map[string]func(core.Options) core.Set{
		"tk":       func(o core.Options) core.Set { return NewTK(o) },
		"internal": func(o core.Options) core.Set { return NewInternal(o) },
	} {
		t.Run(name, func(t *testing.T) { settest.RunCursor(t, mk) })
	}
}

// TestBatchers runs the batched-operation battery on both trees (sorted
// point application: logarithmic descents with path-prefix locality).
func TestBatchers(t *testing.T) {
	for name, mk := range map[string]func(core.Options) core.Set{
		"tk":       func(o core.Options) core.Set { return NewTK(o) },
		"internal": func(o core.Options) core.Set { return NewInternal(o) },
	} {
		t.Run(name, func(t *testing.T) { settest.RunBatcher(t, mk) })
	}
}

func TestFeaturedIsTK(t *testing.T) {
	info, ok := core.Featured("bst")
	if !ok || info.Name != "bst/tk" {
		t.Fatalf("featured bst = %+v", info)
	}
	if _, ok := core.Lookup("bst/internal"); !ok {
		t.Fatal("bst/internal not registered")
	}
}

// checkExternalInvariants verifies the BST-TK structural invariants
// (quiesced): every internal node has two children; leaves under an
// internal node respect the routing key; every datum is at a leaf.
func checkExternalInvariants(t *testing.T, n *tkNode, lo, hi core.Key) int {
	t.Helper()
	if n.leaf {
		if n.key != core.KeyMin && n.key != core.KeyMax {
			if n.key < lo || n.key >= hi {
				t.Fatalf("leaf %d outside routing range [%d, %d)", n.key, lo, hi)
			}
			return 1
		}
		return 0
	}
	l, r := n.left.Load(), n.right.Load()
	if l == nil || r == nil {
		t.Fatal("internal node with missing child")
	}
	return checkExternalInvariants(t, l, lo, n.key) + checkExternalInvariants(t, r, n.key, hi)
}

func TestTKStructureUnderChurn(t *testing.T) {
	tree := NewTK(core.Options{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w) + 11)
			for i := 0; i < 5000; i++ {
				k := core.Key(1 + rng.Int63n(64))
				if rng.Bool(0.5) {
					tree.Put(c, k, k)
				} else {
					tree.Remove(c, k)
				}
			}
		}(w)
	}
	wg.Wait()
	n := checkExternalInvariants(t, tree.sroot.left.Load(), core.KeyMin, core.KeyMax)
	if n != tree.Len() {
		t.Fatalf("invariant walk found %d leaves, Len() = %d", n, tree.Len())
	}
}

func TestTKEmptyToOneToEmpty(t *testing.T) {
	// Exercises the root-adjacent splice paths explicitly.
	tree := NewTK(core.Options{})
	c := core.NewCtx(0)
	for round := 0; round < 10; round++ {
		if !tree.Put(c, 42, 1) {
			t.Fatal("insert into empty failed")
		}
		if tree.Len() != 1 {
			t.Fatalf("Len = %d", tree.Len())
		}
		if !tree.Remove(c, 42) {
			t.Fatal("remove of only key failed")
		}
		if tree.Len() != 0 {
			t.Fatalf("Len = %d after removal", tree.Len())
		}
	}
}

func TestTKNeverWaits(t *testing.T) {
	// §5.1: BST-TK uses trylocks, so the waiting time is zero by
	// construction; contention surfaces as restarts instead.
	tree := NewTK(core.Options{})
	var wg sync.WaitGroup
	ctxs := make([]*core.Ctx, 8)
	for w := range ctxs {
		ctxs[w] = core.NewCtx(w)
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := ctxs[w]
			rng := xrand.New(uint64(w) + 3)
			for i := 0; i < 5000; i++ {
				k := core.Key(1 + rng.Int63n(16))
				if rng.Bool(0.5) {
					tree.Put(c, k, k)
				} else {
					tree.Remove(c, k)
				}
			}
		}(w)
	}
	wg.Wait()
	for w, c := range ctxs {
		if c.Stats.LockWaits != 0 {
			t.Fatalf("worker %d waited %d times; trylock design must never wait", w, c.Stats.LockWaits)
		}
	}
}

func TestInternalReviveKeepsValue(t *testing.T) {
	tree := NewInternal(core.Options{})
	c := core.NewCtx(0)
	tree.Put(c, 7, 70)
	tree.Remove(c, 7)
	if _, ok := tree.Get(c, 7); ok {
		t.Fatal("tombstoned key still visible")
	}
	if !tree.Put(c, 7, 71) {
		t.Fatal("revive failed")
	}
	if v, ok := tree.Get(c, 7); !ok || v != 71 {
		t.Fatalf("revived value = (%d, %v), want (71, true)", v, ok)
	}
}
