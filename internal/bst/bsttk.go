// Package bst implements the binary-search-tree set algorithms of the
// paper's Table 1: the featured BST-TK external tree (David, Guerraoui,
// Trigonakis, ASPLOS 2015) with ticket trylocks, and an internal
// per-node-lock BST with logical deletion as a second blocking variant.
package bst

import (
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/htm"
	"csds/internal/locks"
)

// tkNode is a BST-TK node. Internal (router) nodes carry a routing key and
// two children; leaves carry the actual key/value pairs. The lock guards a
// node's child pointers; removed flags a node that has been spliced out so
// late lockers can detect staleness.
type tkNode struct {
	key     core.Key
	val     core.Value
	left    atomic.Pointer[tkNode]
	right   atomic.Pointer[tkNode]
	lock    locks.Ticket
	leaf    bool
	removed atomic.Bool
}

func leafNode(k core.Key, v core.Value) *tkNode {
	return &tkNode{key: k, val: v, leaf: true}
}

// TK is the BST-TK external binary search tree: lock-free search; insert
// locks one node (the parent), remove locks two (parent and grandparent);
// both use trylocks and restart on failure, so no operation ever *waits*
// for a lock — precisely why Figure 5 shows zero waiting time and Figure 6
// a slightly higher restart rate for the BST.
//
// Routing invariant: at an internal node, keys < node.key descend left,
// keys >= node.key descend right.
type TK struct {
	// sroot -> root -> {all real data under root.left}. The extra level
	// gives every removable parent a lockable grandparent.
	sroot  *tkNode
	region htm.Region
	guard  core.ScanGuard // validates optimistic range scans
}

// NewTK builds an empty BST-TK tree.
func NewTK(o core.Options) *TK {
	root := &tkNode{key: core.KeyMax}
	root.left.Store(leafNode(core.KeyMin, 0))
	root.right.Store(leafNode(core.KeyMax, 0))
	sroot := &tkNode{key: core.KeyMax}
	sroot.left.Store(root)
	sroot.right.Store(leafNode(core.KeyMax, 0))
	return &TK{sroot: sroot, region: o.Region()}
}

func init() {
	core.Register(core.Info{
		Name: "bst/tk", Kind: "bst", Progress: "blocking", Featured: true,
		New:  func(o core.Options) core.Set { return NewTK(o) },
		Desc: "BST-TK external tree with ticket trylocks (David et al. 2015)",
	})
}

// child returns the child of n on k's side, and whether it is the right
// side.
func (n *tkNode) child(k core.Key) (*tkNode, bool) {
	if k < n.key {
		return n.left.Load(), false
	}
	return n.right.Load(), true
}

// setChild stores c on the given side.
func (n *tkNode) setChild(right bool, c *tkNode) {
	if right {
		n.right.Store(c)
	} else {
		n.left.Store(c)
	}
}

// search descends to the leaf for k, returning (grandparent, parent, leaf).
func (t *TK) search(k core.Key) (gp, p, l *tkNode) {
	gp = t.sroot
	p = t.sroot.left.Load() // root
	l, _ = p.child(k)
	for !l.leaf {
		gp = p
		p = l
		l, _ = p.child(k)
	}
	return gp, p, l
}

// Get implements core.Set: lock-free descent, no stores, no restarts.
func (t *TK) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	c.EpochEnter()
	defer c.EpochExit()
	_, _, l := t.search(k)
	if l.key == k {
		return l.val, true
	}
	return 0, false
}

// Put implements core.Set.
func (t *TK) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	if t.region.Attempts > 0 {
		return t.putElided(c, k, v)
	}
	restarts := 0
	for {
		_, p, l := t.search(k)
		if l.key == k {
			c.RecordRestarts(restarts)
			return false
		}
		if !p.lock.TryAcquire(c.Stat()) {
			restarts++
			continue
		}
		lNow, right := p.child(k)
		if p.removed.Load() || lNow != l {
			p.lock.Release()
			restarts++
			continue
		}
		c.InCS()
		t.guard.BeginWrite(c.Stat())
		p.setChild(right, newSubtree(c, k, v, l))
		t.guard.EndWrite()
		p.lock.Release()
		c.RecordRestarts(restarts)
		return true
	}
}

// newSubtree builds the internal node replacing leaf l when inserting k:
// the router key is the larger of the two, the smaller key goes left.
func newSubtree(c *core.Ctx, k core.Key, v core.Value, l *tkNode) *tkNode {
	nl := leafNodePooled(c, k, v)
	var in *tkNode
	if k < l.key {
		in = routerNodePooled(c, l.key)
		in.left.Store(nl)
		in.right.Store(l)
	} else {
		in = routerNodePooled(c, k)
		in.left.Store(l)
		in.right.Store(nl)
	}
	return in
}

func (t *TK) putElided(c *core.Ctx, k core.Key, v core.Value) bool {
	restarts := 0
	for {
		_, p, l := t.search(k)
		if l.key == k {
			c.RecordRestarts(restarts)
			return false
		}
		var inserted bool
		st := t.region.Run(c.Stat(), tkDoom(c), func(a *htm.Acq) htm.Status {
			if !a.Lock(&p.lock) {
				return a.AbortStatus()
			}
			lNow, right := p.child(k)
			if p.removed.Load() || lNow != l {
				return htm.ValidateFail
			}
			if !a.Commit() {
				return a.AbortStatus()
			}
			t.guard.BeginWrite(c.Stat())
			p.setChild(right, newSubtree(c, k, v, l))
			t.guard.EndWrite()
			inserted = true
			return htm.Committed
		})
		if st == htm.Committed {
			c.RecordRestarts(restarts)
			return inserted
		}
		restarts++
	}
}

// Remove implements core.Set: splice the leaf's parent out, promoting the
// sibling.
func (t *TK) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	if t.region.Attempts > 0 {
		return t.removeElided(c, k)
	}
	restarts := 0
	for {
		gp, p, l := t.search(k)
		if l.key != k {
			c.RecordRestarts(restarts)
			return false
		}
		if !gp.lock.TryAcquire(c.Stat()) {
			restarts++
			continue
		}
		if !p.lock.TryAcquire(c.Stat()) {
			gp.lock.Release()
			restarts++
			continue
		}
		if !t.validateRemove(gp, p, l, k) {
			p.lock.Release()
			gp.lock.Release()
			restarts++
			continue
		}
		c.InCS()
		t.guard.BeginWrite(c.Stat())
		t.spliceLocked(gp, p, l, k)
		t.guard.EndWrite()
		p.lock.Release()
		gp.lock.Release()
		c.Retire(p, reclaimTKNode)
		c.Retire(l, reclaimTKNode)
		c.RecordRestarts(restarts)
		return true
	}
}

func (t *TK) validateRemove(gp, p, l *tkNode, k core.Key) bool {
	if gp.removed.Load() || p.removed.Load() {
		return false
	}
	pNow, _ := gp.child(k)
	if pNow != p {
		return false
	}
	lNow, _ := p.child(k)
	return lNow == l
}

// spliceLocked promotes l's sibling into gp's slot for p. Callers hold both
// locks and have validated.
func (t *TK) spliceLocked(gp, p, l *tkNode, k core.Key) {
	_, pRight := gp.child(k)
	_, lRight := p.child(k)
	var sibling *tkNode
	if lRight {
		sibling = p.left.Load()
	} else {
		sibling = p.right.Load()
	}
	p.removed.Store(true)
	l.removed.Store(true)
	gp.setChild(pRight, sibling)
}

func (t *TK) removeElided(c *core.Ctx, k core.Key) bool {
	restarts := 0
	for {
		gp, p, l := t.search(k)
		if l.key != k {
			c.RecordRestarts(restarts)
			return false
		}
		var removed bool
		st := t.region.Run(c.Stat(), tkDoom(c), func(a *htm.Acq) htm.Status {
			if !a.Lock(&gp.lock) || !a.Lock(&p.lock) {
				return a.AbortStatus()
			}
			if !t.validateRemove(gp, p, l, k) {
				return htm.ValidateFail
			}
			if !a.Commit() {
				return a.AbortStatus()
			}
			t.guard.BeginWrite(c.Stat())
			t.spliceLocked(gp, p, l, k)
			t.guard.EndWrite()
			removed = true
			return htm.Committed
		})
		if st == htm.Committed {
			if removed {
				c.Retire(p, reclaimTKNode)
				c.Retire(l, reclaimTKNode)
			}
			c.RecordRestarts(restarts)
			return removed
		}
		restarts++
	}
}

// Len implements core.Set (quiesced use): counts non-sentinel leaves.
func (t *TK) Len() int {
	return countLeaves(t.sroot.left.Load())
}

func countLeaves(n *tkNode) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		if n.key == core.KeyMin || n.key == core.KeyMax {
			return 0
		}
		return 1
	}
	return countLeaves(n.left.Load()) + countLeaves(n.right.Load())
}

// Range implements core.Ranger: an in-order walk over non-sentinel
// leaves, quiesced-use like Len.
func (t *TK) Range(f func(k core.Key, v core.Value) bool) {
	rangeLeaves(t.sroot.left.Load(), f)
}

// rangeLeaves walks n's leaves in order; it reports whether iteration
// should continue.
func rangeLeaves(n *tkNode, f func(k core.Key, v core.Value) bool) bool {
	if n == nil {
		return true
	}
	if n.leaf {
		if n.key == core.KeyMin || n.key == core.KeyMax {
			return true
		}
		return f(n.key, n.val)
	}
	return rangeLeaves(n.left.Load(), f) && rangeLeaves(n.right.Load(), f)
}

// Scan implements core.Scanner: a bounded in-order descent over the
// external tree — only subtrees whose routing interval intersects
// [lo, hi) are visited — under the optimistic scan guard; atomic per
// call.
func (t *TK) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedScan(c, &t.guard, func(emit func(k core.Key, v core.Value)) {
		scanLeaves(t.sroot.left.Load(), lo, hi, emit)
	}, f)
}

// scanLeaves emits the in-range, non-sentinel leaves of n in key order.
// Routing invariant: keys < n.key live left, keys >= n.key live right.
func scanLeaves(n *tkNode, lo, hi core.Key, emit func(k core.Key, v core.Value)) {
	if n == nil {
		return
	}
	if n.leaf {
		if n.key >= lo && n.key < hi && n.key != core.KeyMin && n.key != core.KeyMax {
			emit(n.key, n.val)
		}
		return
	}
	if lo < n.key {
		scanLeaves(n.left.Load(), lo, hi, emit)
	}
	if hi > n.key {
		scanLeaves(n.right.Load(), lo, hi, emit)
	}
}

// CursorNext implements core.Cursor: a bounded in-order page over the
// external tree under the scan guard. The descent prunes every subtree
// whose routing interval lies below the token position, so resuming a
// page costs O(log n) routing plus the page itself — the delivered
// prefix is never re-walked.
func (t *TK) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedPage(c, &t.guard, hi, max, func(emit func(k core.Key, v core.Value) bool) {
		pageLeaves(t.sroot.left.Load(), pos, hi, emit)
	}, f)
}

// pageLeaves emits the in-range, non-sentinel leaves of n in key order,
// stopping as soon as emit reports the page full; it reports whether the
// walk should continue.
func pageLeaves(n *tkNode, lo, hi core.Key, emit func(k core.Key, v core.Value) bool) bool {
	if n == nil {
		return true
	}
	if n.leaf {
		if n.key >= lo && n.key < hi && n.key != core.KeyMin && n.key != core.KeyMax {
			return emit(n.key, n.val)
		}
		return true
	}
	if lo < n.key {
		if !pageLeaves(n.left.Load(), lo, hi, emit) {
			return false
		}
	}
	if hi > n.key {
		return pageLeaves(n.right.Load(), lo, hi, emit)
	}
	return true
}

func tkDoom(c *core.Ctx) *htm.Doom {
	if c == nil {
		return nil
	}
	return c.Doom
}
