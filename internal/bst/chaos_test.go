package bst

import (
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
)

// The chaos battery (settest.RunChaos): seeded fault injection under the
// full invariant set — see internal/settest/chaostest.go.

func TestTKChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewTK(o) })
}

func TestInternalChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewInternal(o) })
}
