package bst

import (
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/locks"
)

// inode is an internal-BST node: routing and data coincide, and deletion is
// logical (present flips to false; the node stays as a router).
type inode struct {
	key     core.Key
	val     atomic.Int64 // value re-written on re-insert, read lock-free
	left    atomic.Pointer[inode]
	right   atomic.Pointer[inode]
	present atomic.Bool
	lock    locks.TAS
}

// Internal is a per-node-lock internal BST with logical deletion, the
// simplified stand-in for the logical-ordering trees of the paper's
// Table 1 (Drachsler et al.): search is lock-free; an insert locks only the
// attachment point; remove flips a tombstone under the node's lock and
// never restructures, which is the "logical ordering is maintained
// separately from the physical layout" idea reduced to its essence.
// DESIGN.md documents the simplification (no physical unlink, no
// rebalancing; routers accumulate up to the key-space size).
type Internal struct {
	root *inode // sentinel router: key = KeyMax, data in its left subtree
}

// NewInternal builds an empty internal BST.
func NewInternal(o core.Options) *Internal {
	return &Internal{root: &inode{key: core.KeyMax}}
}

func init() {
	core.Register(core.Info{
		Name: "bst/internal", Kind: "bst", Progress: "blocking",
		New:  func(o core.Options) core.Set { return NewInternal(o) },
		Desc: "internal BST, per-node locks, logical deletion (logical-ordering style, simplified)",
	})
}

// find descends to the node holding k, or returns (parent, nil) where the
// key would attach.
func (t *Internal) find(k core.Key) (parent, n *inode) {
	parent = t.root
	if k < parent.key {
		n = parent.left.Load()
	} else {
		n = parent.right.Load()
	}
	for n != nil && n.key != k {
		parent = n
		if k < n.key {
			n = n.left.Load()
		} else {
			n = n.right.Load()
		}
	}
	return parent, n
}

// Get implements core.Set.
func (t *Internal) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	_, n := t.find(k)
	if n == nil || !n.present.Load() {
		return 0, false
	}
	return core.Value(n.val.Load()), true
}

// Put implements core.Set.
func (t *Internal) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	restarts := 0
	for {
		parent, n := t.find(k)
		if n != nil {
			// Node exists: revive the tombstone if cleared.
			n.lock.Acquire(c.Stat())
			if n.present.Load() {
				n.lock.Release()
				c.RecordRestarts(restarts)
				return false
			}
			c.InCS()
			n.val.Store(int64(v))
			n.present.Store(true)
			n.lock.Release()
			c.RecordRestarts(restarts)
			return true
		}
		// Attach a new node under parent; validate the slot is still free.
		parent.lock.Acquire(c.Stat())
		var slot *atomic.Pointer[inode]
		if k < parent.key {
			slot = &parent.left
		} else {
			slot = &parent.right
		}
		if slot.Load() != nil {
			// Someone attached here first; re-descend.
			parent.lock.Release()
			restarts++
			continue
		}
		nn := &inode{key: k}
		nn.val.Store(int64(v))
		nn.present.Store(true)
		c.InCS()
		slot.Store(nn)
		parent.lock.Release()
		c.RecordRestarts(restarts)
		return true
	}
}

// Remove implements core.Set: tombstone only.
func (t *Internal) Remove(c *core.Ctx, k core.Key) bool {
	_, n := t.find(k)
	if n == nil {
		c.RecordRestarts(0)
		return false
	}
	n.lock.Acquire(c.Stat())
	if !n.present.Load() {
		n.lock.Release()
		c.RecordRestarts(0)
		return false
	}
	c.InCS()
	n.present.Store(false)
	n.lock.Release()
	c.RecordRestarts(0)
	return true
}

// Len implements core.Set (quiesced use).
func (t *Internal) Len() int {
	return countPresent(t.root.left.Load()) + countPresent(t.root.right.Load())
}

func countPresent(n *inode) int {
	if n == nil {
		return 0
	}
	c := 0
	if n.present.Load() {
		c = 1
	}
	return c + countPresent(n.left.Load()) + countPresent(n.right.Load())
}

// Range implements core.Ranger: an in-order walk over present nodes,
// quiesced-use like Len.
func (t *Internal) Range(f func(k core.Key, v core.Value) bool) {
	if rangePresent(t.root.left.Load(), f) {
		rangePresent(t.root.right.Load(), f)
	}
}

// rangePresent walks n in order; it reports whether iteration should
// continue.
func rangePresent(n *inode, f func(k core.Key, v core.Value) bool) bool {
	if n == nil {
		return true
	}
	if !rangePresent(n.left.Load(), f) {
		return false
	}
	if n.present.Load() && !f(n.key, n.val.Load()) {
		return false
	}
	return rangePresent(n.right.Load(), f)
}
