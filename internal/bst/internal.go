package bst

import (
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/locks"
)

// inode is an internal-BST node: routing and data coincide, and deletion is
// logical (present flips to false; the node stays as a router).
type inode struct {
	key     core.Key
	val     atomic.Int64 // value re-written on re-insert, read lock-free
	left    atomic.Pointer[inode]
	right   atomic.Pointer[inode]
	present atomic.Bool
	lock    locks.TAS
}

// Internal is a per-node-lock internal BST with logical deletion, the
// simplified stand-in for the logical-ordering trees of the paper's
// Table 1 (Drachsler et al.): search is lock-free; an insert locks only the
// attachment point; remove flips a tombstone under the node's lock and
// never restructures, which is the "logical ordering is maintained
// separately from the physical layout" idea reduced to its essence.
// DESIGN.md documents the simplification (no physical unlink, no
// rebalancing; routers accumulate up to the key-space size).
type Internal struct {
	root  *inode         // sentinel router: key = KeyMax, data in its left subtree
	guard core.ScanGuard // validates optimistic range scans
}

// NewInternal builds an empty internal BST.
func NewInternal(o core.Options) *Internal {
	return &Internal{root: &inode{key: core.KeyMax}}
}

func init() {
	core.Register(core.Info{
		Name: "bst/internal", Kind: "bst", Progress: "blocking",
		New:  func(o core.Options) core.Set { return NewInternal(o) },
		Desc: "internal BST, per-node locks, logical deletion (logical-ordering style, simplified)",
	})
}

// find descends to the node holding k, or returns (parent, nil) where the
// key would attach.
func (t *Internal) find(k core.Key) (parent, n *inode) {
	parent = t.root
	if k < parent.key {
		n = parent.left.Load()
	} else {
		n = parent.right.Load()
	}
	for n != nil && n.key != k {
		parent = n
		if k < n.key {
			n = n.left.Load()
		} else {
			n = n.right.Load()
		}
	}
	return parent, n
}

// Get implements core.Set.
func (t *Internal) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	_, n := t.find(k)
	if n == nil || !n.present.Load() {
		return 0, false
	}
	return core.Value(n.val.Load()), true
}

// Put implements core.Set.
func (t *Internal) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	restarts := 0
	for {
		parent, n := t.find(k)
		if n != nil {
			// Node exists: revive the tombstone if cleared.
			n.lock.Acquire(c.Stat())
			if n.present.Load() {
				n.lock.Release()
				c.RecordRestarts(restarts)
				return false
			}
			c.InCS()
			t.guard.BeginWrite(c.Stat())
			n.val.Store(int64(v))
			n.present.Store(true)
			t.guard.EndWrite()
			n.lock.Release()
			c.RecordRestarts(restarts)
			return true
		}
		// Attach a new node under parent; validate the slot is still free.
		parent.lock.Acquire(c.Stat())
		var slot *atomic.Pointer[inode]
		if k < parent.key {
			slot = &parent.left
		} else {
			slot = &parent.right
		}
		if slot.Load() != nil {
			// Someone attached here first; re-descend.
			parent.lock.Release()
			restarts++
			continue
		}
		nn := &inode{key: k}
		nn.val.Store(int64(v))
		nn.present.Store(true)
		c.InCS()
		t.guard.BeginWrite(c.Stat())
		slot.Store(nn)
		t.guard.EndWrite()
		parent.lock.Release()
		c.RecordRestarts(restarts)
		return true
	}
}

// Remove implements core.Set: tombstone only.
func (t *Internal) Remove(c *core.Ctx, k core.Key) bool {
	_, n := t.find(k)
	if n == nil {
		c.RecordRestarts(0)
		return false
	}
	n.lock.Acquire(c.Stat())
	if !n.present.Load() {
		n.lock.Release()
		c.RecordRestarts(0)
		return false
	}
	c.InCS()
	t.guard.BeginWrite(c.Stat())
	n.present.Store(false)
	t.guard.EndWrite()
	n.lock.Release()
	c.RecordRestarts(0)
	return true
}

// Len implements core.Set (quiesced use).
func (t *Internal) Len() int {
	return countPresent(t.root.left.Load()) + countPresent(t.root.right.Load())
}

func countPresent(n *inode) int {
	if n == nil {
		return 0
	}
	c := 0
	if n.present.Load() {
		c = 1
	}
	return c + countPresent(n.left.Load()) + countPresent(n.right.Load())
}

// Range implements core.Ranger: an in-order walk over present nodes,
// quiesced-use like Len.
func (t *Internal) Range(f func(k core.Key, v core.Value) bool) {
	if rangePresent(t.root.left.Load(), f) {
		rangePresent(t.root.right.Load(), f)
	}
}

// rangePresent walks n in order; it reports whether iteration should
// continue.
func rangePresent(n *inode, f func(k core.Key, v core.Value) bool) bool {
	if n == nil {
		return true
	}
	if !rangePresent(n.left.Load(), f) {
		return false
	}
	if n.present.Load() && !f(n.key, n.val.Load()) {
		return false
	}
	return rangePresent(n.right.Load(), f)
}

// Scan implements core.Scanner: a bounded in-order walk over present
// nodes (tombstoned routers are skipped) under the optimistic scan
// guard; atomic per call. Deletion here is logical-only, so the physical
// shape the walk descends can only grow underneath a scan.
func (t *Internal) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	return core.GuardedScan(c, &t.guard, func(emit func(k core.Key, v core.Value)) {
		scanPresent(t.root.left.Load(), lo, hi, emit)
		scanPresent(t.root.right.Load(), lo, hi, emit)
	}, f)
}

// scanPresent emits n's present, in-range nodes in key order.
func scanPresent(n *inode, lo, hi core.Key, emit func(k core.Key, v core.Value)) {
	if n == nil {
		return
	}
	if lo < n.key {
		scanPresent(n.left.Load(), lo, hi, emit)
	}
	if n.key >= lo && n.key < hi && n.present.Load() {
		emit(n.key, n.val.Load())
	}
	if hi > n.key {
		scanPresent(n.right.Load(), lo, hi, emit)
	}
}

// CursorNext implements core.Cursor: a bounded in-order page over
// present nodes under the scan guard, pruning subtrees below the token
// position (see TK.CursorNext; logical-only deletion means the walked
// shape can only grow underneath a page).
func (t *Internal) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	return core.GuardedPage(c, &t.guard, hi, max, func(emit func(k core.Key, v core.Value) bool) {
		if pagePresent(t.root.left.Load(), pos, hi, emit) {
			pagePresent(t.root.right.Load(), pos, hi, emit)
		}
	}, f)
}

// pagePresent emits n's present, in-range nodes in key order, stopping
// as soon as emit reports the page full; it reports whether the walk
// should continue.
func pagePresent(n *inode, lo, hi core.Key, emit func(k core.Key, v core.Value) bool) bool {
	if n == nil {
		return true
	}
	if lo < n.key {
		if !pagePresent(n.left.Load(), lo, hi, emit) {
			return false
		}
	}
	if n.key >= lo && n.key < hi && n.present.Load() {
		if !emit(n.key, n.val.Load()) {
			return false
		}
	}
	if hi > n.key {
		return pagePresent(n.right.Load(), lo, hi, emit)
	}
	return true
}
