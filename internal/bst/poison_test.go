package bst

import (
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
)

// The poisoning battery (settest.RunPoison): EBR on, reclaim callbacks
// poisoning and recycling every retired router and leaf, concurrent
// readers asserting no traversal ever observes a poisoned or recycled
// mapping.

func TestTKPoison(t *testing.T) {
	settest.RunPoison(t, func(o core.Options) core.Set { return NewTK(o) })
}

func TestInternalPoison(t *testing.T) {
	// The internal BST deletes logically and never retires — the battery
	// degenerates to a read-consistency check plus a trivially empty
	// drain, which is exactly the documented contract.
	settest.RunPoison(t, func(o core.Options) core.Set { return NewInternal(o) })
}
