// Typed free-list and reclaim callback for BST-TK nodes (DESIGN.md,
// "Pooling contract"). Routers and leaves share one pool: they are the
// same struct, and a remove retires one of each, so the pool stays
// balanced under churn.
//
// Pooling is safe here because a remove splices both the parent router
// and the victim leaf out of the tree under the grandparent's and
// parent's locks before retiring them: once the splice is published no
// structure-resident pointer reaches either node, and every optimistic
// searcher that might still hold one obtained it inside an epoch
// bracket that the grace period waits out. The internal BST (internal.go)
// deletes logically and never unlinks, so it has nothing to retire and
// stays GC-only.
package bst

import "csds/internal/core"

var tkNodePool core.Pool

func leafNodePooled(c *core.Ctx, k core.Key, v core.Value) *tkNode {
	if c.Pooled() {
		if n, _ := tkNodePool.Get(c).(*tkNode); n != nil {
			n.key, n.val, n.leaf = k, v, true
			n.left.Store(nil)
			n.right.Store(nil)
			n.removed.Store(false)
			return n
		}
	}
	return leafNode(k, v)
}

func routerNodePooled(c *core.Ctx, k core.Key) *tkNode {
	if c.Pooled() {
		if n, _ := tkNodePool.Get(c).(*tkNode); n != nil {
			n.key, n.val, n.leaf = k, 0, false
			n.left.Store(nil)
			n.right.Store(nil)
			n.removed.Store(false)
			return n
		}
	}
	return &tkNode{key: k}
}

func reclaimTKNode(p any) {
	n := p.(*tkNode)
	n.key, n.val = core.PoisonKey, core.PoisonValue
	n.removed.Store(true)
	n.left.Store(nil)
	n.right.Store(nil)
	tkNodePool.Put(n)
}
