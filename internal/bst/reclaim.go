// ReclaimAll (core.Reclaimer) for BST-TK: a quiesced teardown sweep
// that recycles every router and leaf under the data root at once (same
// contract as the list package: the caller guarantees the instance is
// quiesced and discarded — the elastic resize's retire callback). The
// internal BST deletes logically and has no pool, so no ReclaimAll.
package bst

import "csds/internal/core"

// ReclaimAll implements core.Reclaimer: recycle every node of the data
// subtree, leaving the sentinel skeleton coherent (empty tree).
func (t *TK) ReclaimAll() {
	root := t.sroot.left.Load()
	reclaimSubtree(root.left.Load())
	root.left.Store(leafNode(core.KeyMin, 0))
}

func reclaimSubtree(n *tkNode) {
	if n == nil {
		return
	}
	if !n.leaf {
		reclaimSubtree(n.left.Load())
		reclaimSubtree(n.right.Load())
	}
	reclaimTKNode(n)
}
