package combinator

import (
	"sync/atomic"
)

// Cache admission policies (core.Options.CacheAdmission). A direct-mapped
// read-through cache has no eviction queue to protect — admission is the
// whole game: on a miss, does the fresh key displace whatever the slot
// holds? "always" says yes; the two policies below say yes only when the
// newcomer has demonstrated it is worth keeping, which is what protects a
// hot working set from one-touch traffic (large scans, key-space drift,
// crawlers).
const (
	// AdmitAlways fills on every miss — the classic read-through cache.
	AdmitAlways = "always"
	// AdmitTinyLFU keeps an approximate frequency sketch of recently
	// missed keys (a 4-probe count-min with periodic halving, after
	// Einziger et al.'s TinyLFU) and admits a newcomer only if its
	// estimated frequency is at least the cached victim's.
	AdmitTinyLFU = "tinylfu"
	// AdmitWindow is a doorkeeper: a newcomer is admitted only on its
	// second miss within the current window, so keys touched once — a
	// scan's page pulls, drift tails — never displace a resident entry.
	AdmitWindow = "window"
)

// ValidAdmission reports whether name is a known admission policy ("" is
// AdmitAlways).
func ValidAdmission(name string) bool {
	switch name {
	case "", AdmitAlways, AdmitTinyLFU, AdmitWindow:
		return true
	}
	return false
}

// sketchMax saturates the frequency counters; with halving every window
// the estimates stay small and recent.
const sketchMax = 255

// freqSketch is a 4-probe count-min sketch with saturating counters and
// periodic halving (the "reset" that makes TinyLFU's window sliding).
// It is touched only on the cache's miss path — the hit path stays one
// atomic load — and every operation is a few relaxed atomics; the counts
// are approximate by design, and the occasional racy halving only makes
// them more conservative.
type freqSketch struct {
	cnt    []atomic.Uint32
	mask   uint64
	adds   atomic.Uint64
	window uint64 // halve all counters every window touches
}

func newFreqSketch(slots int) *freqSketch {
	n := 4 * slots
	if n < 1024 {
		n = 1024
	}
	// slots is a power of two, so n is as well.
	return &freqSketch{
		cnt:    make([]atomic.Uint32, n),
		mask:   uint64(n - 1),
		window: uint64(16 * n),
	}
}

// probe returns the i-th counter index for hash h (double hashing).
func (s *freqSketch) probe(h uint64, i uint64) uint64 {
	h2 := h*0x9E3779B97F4A7C15 | 1
	return (h + i*h2) & s.mask
}

// touch increments the key's counters and returns the pre-increment
// estimate; it also drives the halving window.
func (s *freqSketch) touch(h uint64) uint32 {
	if s.adds.Add(1)%s.window == 0 {
		for i := range s.cnt {
			c := &s.cnt[i]
			c.Store(c.Load() >> 1)
		}
	}
	est := uint32(sketchMax)
	for i := uint64(0); i < 4; i++ {
		c := &s.cnt[s.probe(h, i)]
		v := c.Load()
		if v < est {
			est = v
		}
		if v < sketchMax {
			c.Add(1)
		}
	}
	return est
}

// estimate returns the key's approximate recent frequency without
// incrementing.
func (s *freqSketch) estimate(h uint64) uint32 {
	est := uint32(sketchMax)
	for i := uint64(0); i < 4; i++ {
		if v := s.cnt[s.probe(h, i)].Load(); v < est {
			est = v
		}
	}
	return est
}

// doorkeeper is the scan-window admission filter: a bitset of key
// fingerprints missed in the current window. A key passes only when its
// bit is already set — i.e. on its second miss within the window — and
// the whole set clears every window misses, so the memory of one-touch
// traffic fades before it can accumulate into admission.
type doorkeeper struct {
	bits   []atomic.Uint64
	mask   uint64 // over bit positions
	misses atomic.Uint64
	window uint64
}

func newDoorkeeper(slots int) *doorkeeper {
	bits := 8 * slots
	if bits < 1024 {
		bits = 1024
	}
	return &doorkeeper{
		bits:   make([]atomic.Uint64, bits/64),
		mask:   uint64(bits - 1),
		window: uint64(bits),
	}
}

// secondTouch records a miss for hash h and reports whether the key had
// already missed within the current window.
func (d *doorkeeper) secondTouch(h uint64) bool {
	if d.misses.Add(1)%d.window == 0 {
		for i := range d.bits {
			d.bits[i].Store(0)
		}
	}
	pos := h & d.mask
	w := &d.bits[pos>>6]
	bit := uint64(1) << (pos & 63)
	if w.Load()&bit != 0 {
		return true
	}
	w.Or(bit)
	return false
}
