package combinator_test

import (
	"testing"

	"csds/internal/combinator"
	"csds/internal/tuner"
	"csds/internal/workload"
)

// TestTunerAdmissionNamesMatch pins the admission-policy names the tuner
// emits against the combinator's registry. The tuner cannot import this
// package (csdsd links combinator without the tuner), so it mirrors the
// name strings as private constants; this test is the referee. If a
// policy is renamed here, the tuner's mirror — and this test — must move
// with it, or csdsbench -auto-spec would derive a cache it cannot build.
func TestTunerAdmissionNamesMatch(t *testing.T) {
	// A skewed read-mostly point workload derives a cache with TinyLFU
	// admission.
	mix, err := workload.ParseMix("ycsb-b")
	if err != nil {
		t.Fatal(err)
	}
	d, err := tuner.Derive(tuner.Inputs{Leaf: "list/lazy", Threads: 4, Size: 2048, Workload: mix})
	if err != nil {
		t.Fatal(err)
	}
	if d.CacheSlots == 0 {
		t.Fatal("ycsb-b derived no cache; the admission pin has nothing to check")
	}
	if d.CacheAdmission != combinator.AdmitTinyLFU {
		t.Fatalf("tuner admission %q, want combinator.AdmitTinyLFU %q", d.CacheAdmission, combinator.AdmitTinyLFU)
	}

	// The same mix with a scan tail flips the derivation to the
	// scan-resistant window policy.
	scanning := mix
	scanning.ScanRatio = 0.1
	scanning.ScanLen = 64
	d, err = tuner.Derive(tuner.Inputs{Leaf: "list/lazy", Threads: 4, Size: 2048, Workload: scanning})
	if err != nil {
		t.Fatal(err)
	}
	if d.CacheSlots == 0 {
		t.Fatal("scan-tailed ycsb-b derived no cache")
	}
	if d.CacheAdmission != combinator.AdmitWindow {
		t.Fatalf("tuner admission %q, want combinator.AdmitWindow %q", d.CacheAdmission, combinator.AdmitWindow)
	}

	// Whatever the tuner emits must be buildable.
	for _, name := range []string{d.CacheAdmission, combinator.AdmitTinyLFU, combinator.AdmitWindow} {
		if !combinator.ValidAdmission(name) {
			t.Fatalf("admission %q not accepted by ValidAdmission", name)
		}
	}
}
