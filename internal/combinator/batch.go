// Batched (core.Batcher) paths for the combinators. The composite
// batching contract is destination grouping: a batch is bucket-sorted
// by shard/stripe once, and each destination boundary is crossed once
// per batch — one routing pass, one shard-map/epoch load, one lock
// epoch per shard — instead of once per key. Results are buffered and
// replayed in caller order.
package combinator

import (
	"csds/internal/core"
	"csds/internal/htm"
	"csds/internal/locks"
)

// groupBatch bucket-sorts the batch indices 0..n-1 by destination
// part, preserving caller order inside each part (so inner duplicate-
// key semantics match the caller's index order; distinct parts hold
// disjoint keys, so cross-part order is immaterial). idx[off[p]:
// off[p+1]] lists the caller indices routed to part p. The index
// arrays are carved from the caller's scratch, so they live until the
// caller releases it.
func groupBatch(sc *core.BatchScratch, n, parts int, partOf func(i int) int) (idx, off []int) {
	off = sc.Ints(parts + 1)
	for i := 0; i < n; i++ {
		off[partOf(i)+1]++
	}
	for p := 0; p < parts; p++ {
		off[p+1] += off[p]
	}
	idx = sc.Ints(n)
	cur := sc.Ints(parts)
	copy(cur, off[:parts])
	for i := 0; i < n; i++ {
		p := partOf(i)
		idx[cur[p]] = i
		cur[p]++
	}
	return idx, off
}

// singlePart reports whether exactly one part received the whole
// batch, and which.
func singlePart(off []int) (int, bool) {
	n := off[len(off)-1]
	if n == 0 {
		return 0, false
	}
	for p := 0; p+1 < len(off); p++ {
		if off[p+1]-off[p] == n {
			return p, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Sharded
// ---------------------------------------------------------------------------

func (s *Sharded) partOfKey(k core.Key) int {
	return indexOf(mix64(uint64(k)), len(s.shards))
}

// MultiGet implements core.Batcher: the batch is grouped by shard and
// each shard serves its sub-batch through one inner MultiGet — one
// shard crossing per shard per batch. Results replay in caller order.
func (s *Sharded) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	n := len(keys)
	if n == 0 {
		return
	}
	if len(s.shards) == 1 {
		core.AsBatcher(s.shards[0]).MultiGet(c, keys, f)
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	idx, off := groupBatch(sc, n, len(s.shards), func(i int) int { return s.partOfKey(keys[i]) })
	vals := sc.Vals(n)
	oks := sc.Bools(n)
	sub := sc.Keys(n)[:0]
	var g []int
	cb := func(j int, v core.Value, ok bool) { vals[g[j]], oks[g[j]] = v, ok }
	for p := range s.shards {
		lo, hi := off[p], off[p+1]
		if lo == hi {
			continue
		}
		g = idx[lo:hi]
		sub = sub[:0]
		for _, i := range g {
			sub = append(sub, keys[i])
		}
		core.AsBatcher(s.shards[p]).MultiGet(c, sub, cb)
	}
	for i := 0; i < n; i++ {
		f(i, vals[i], oks[i])
	}
}

// MultiPut implements core.Batcher. A batch that spans shards is
// grouped and applied per shard like MultiGet; a write batch whose
// keys all land in ONE shard is the contended hot-spot case and goes
// through the shard's flat-combining point instead, so colliding
// batches from many threads are applied by one winner in one inner
// bracket (see core.Combiner).
func (s *Sharded) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	n := len(pairs)
	if n == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	res := sc.Bools(n)
	idx, off := groupBatch(sc, n, len(s.shards), func(i int) int { return s.partOfKey(pairs[i].K) })
	if p, one := singlePart(off); one {
		// res may travel through the publication list, but the combiner
		// hands it back exclusively once done is set, so Run's return
		// makes the scratch-carved slice safe to recycle.
		s.combiners[p].Run(c, core.BatchPut, pairs, res, s.applyCombined(p))
	} else {
		sub := sc.KVs(n)[:0]
		var g []int
		cb := func(j int, ok bool) { res[g[j]] = ok }
		for p := range s.shards {
			lo, hi := off[p], off[p+1]
			if lo == hi {
				continue
			}
			g = idx[lo:hi]
			sub = sub[:0]
			for _, i := range g {
				sub = append(sub, pairs[i])
			}
			core.AsBatcher(s.shards[p]).MultiPut(c, sub, cb)
		}
	}
	for i := range res {
		f(i, res[i])
	}
}

// MultiRemove implements core.Batcher with the same grouping and
// single-shard flat-combining path as MultiPut.
func (s *Sharded) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	n := len(keys)
	if n == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	res := sc.Bools(n)
	idx, off := groupBatch(sc, n, len(s.shards), func(i int) int { return s.partOfKey(keys[i]) })
	if p, one := singlePart(off); one {
		kv := sc.KVs(n)
		for i, k := range keys {
			kv[i] = core.KV{K: k}
		}
		s.combiners[p].Run(c, core.BatchRemove, kv, res, s.applyCombined(p))
	} else {
		sub := sc.Keys(n)[:0]
		var g []int
		cb := func(j int, ok bool) { res[g[j]] = ok }
		for p := range s.shards {
			lo, hi := off[p], off[p+1]
			if lo == hi {
				continue
			}
			g = idx[lo:hi]
			sub = sub[:0]
			for _, i := range g {
				sub = append(sub, keys[i])
			}
			core.AsBatcher(s.shards[p]).MultiRemove(c, sub, cb)
		}
	}
	for i := range res {
		f(i, res[i])
	}
}

// applyCombined adapts shard p's inner Batcher to the combiner's apply
// signature (possibly receiving the concatenation of several colliding
// threads' batches).
func (s *Sharded) applyCombined(p int) core.CombineApply {
	return func(c *core.Ctx, op core.BatchOp, pairs []core.KV, res []bool) {
		b := core.AsBatcher(s.shards[p])
		if op == core.BatchPut {
			b.MultiPut(c, pairs, func(j int, ok bool) { res[j] = ok })
			return
		}
		keys := make([]core.Key, len(pairs))
		for j, kv := range pairs {
			keys[j] = kv.K
		}
		b.MultiRemove(c, keys, func(j int, ok bool) { res[j] = ok })
	}
}

// ---------------------------------------------------------------------------
// Striped
// ---------------------------------------------------------------------------

// MultiGet implements core.Batcher: grouped by stripeIndex, one stripe
// crossing per stripe per batch (the order-preserving partition means
// a sorted batch touches each stripe in one contiguous run).
func (s *Striped) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	n := len(keys)
	if n == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	idx, off := groupBatch(sc, n, len(s.stripes), func(i int) int { return s.stripeIndex(keys[i]) })
	vals := sc.Vals(n)
	oks := sc.Bools(n)
	sub := sc.Keys(n)[:0]
	var g []int
	cb := func(j int, v core.Value, ok bool) { vals[g[j]], oks[g[j]] = v, ok }
	for p := range s.stripes {
		lo, hi := off[p], off[p+1]
		if lo == hi {
			continue
		}
		g = idx[lo:hi]
		sub = sub[:0]
		for _, i := range g {
			sub = append(sub, keys[i])
		}
		core.AsBatcher(s.stripes[p]).MultiGet(c, sub, cb)
	}
	for i := 0; i < n; i++ {
		f(i, vals[i], oks[i])
	}
}

// MultiPut implements core.Batcher, grouped by stripe.
func (s *Striped) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	n := len(pairs)
	if n == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	idx, off := groupBatch(sc, n, len(s.stripes), func(i int) int { return s.stripeIndex(pairs[i].K) })
	res := sc.Bools(n)
	sub := sc.KVs(n)[:0]
	var g []int
	cb := func(j int, ok bool) { res[g[j]] = ok }
	for p := range s.stripes {
		lo, hi := off[p], off[p+1]
		if lo == hi {
			continue
		}
		g = idx[lo:hi]
		sub = sub[:0]
		for _, i := range g {
			sub = append(sub, pairs[i])
		}
		core.AsBatcher(s.stripes[p]).MultiPut(c, sub, cb)
	}
	for i := range res {
		f(i, res[i])
	}
}

// MultiRemove implements core.Batcher, grouped by stripe.
func (s *Striped) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	n := len(keys)
	if n == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	idx, off := groupBatch(sc, n, len(s.stripes), func(i int) int { return s.stripeIndex(keys[i]) })
	res := sc.Bools(n)
	sub := sc.Keys(n)[:0]
	var g []int
	cb := func(j int, ok bool) { res[g[j]] = ok }
	for p := range s.stripes {
		lo, hi := off[p], off[p+1]
		if lo == hi {
			continue
		}
		g = idx[lo:hi]
		sub = sub[:0]
		for _, i := range g {
			sub = append(sub, keys[i])
		}
		core.AsBatcher(s.stripes[p]).MultiRemove(c, sub, cb)
	}
	for i := range res {
		f(i, res[i])
	}
}

// ---------------------------------------------------------------------------
// Elastic
// ---------------------------------------------------------------------------

// multiGetOn runs one grouped read pass over epoch p, re-checking the
// frozen-and-superseded staleness witness once per shard (not per
// key). Reports false if any shard was stale (results are then
// discarded and the whole batch retried on the published map).
func (e *Elastic) multiGetOn(c *core.Ctx, p *epartition, keys []core.Key, vals []core.Value, oks []bool, witness bool) bool {
	sc := core.GetBatchScratch()
	defer sc.Release()
	parts := len(p.shards)
	idx, off := groupBatch(sc, len(keys), parts, func(i int) int {
		return indexOf(mix64(uint64(keys[i])), parts)
	})
	sub := sc.Keys(len(keys))[:0]
	var g []int
	cb := func(j int, v core.Value, ok bool) { vals[g[j]], oks[g[j]] = v, ok }
	for part := 0; part < parts; part++ {
		lo, hi := off[part], off[part+1]
		if lo == hi {
			continue
		}
		g = idx[lo:hi]
		sub = sub[:0]
		for _, i := range g {
			sub = append(sub, keys[i])
		}
		sh := &p.shards[part]
		core.AsBatcher(sh.set).MultiGet(c, sub, cb)
		if witness && sh.frozen.Load() && e.cur.Load() != p {
			return false
		}
	}
	return true
}

// MultiGet implements core.Batcher with the same old-then-new epoch
// discipline as Get, amortized to one epoch load and one staleness
// witness per shard per batch. After scanEpochRetries superseded maps
// it pins the map by briefly excluding resizes (resizeMu pauses
// migrations, never operations), mirroring Scan's fallback.
func (e *Elastic) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	n := len(keys)
	if n == 0 {
		return
	}
	// Pin the loaded shard maps against eager resize reclamation (one
	// bracket for the whole batch; brackets nest).
	c.EpochEnter()
	defer c.EpochExit()
	sc := core.GetBatchScratch()
	defer sc.Release()
	vals := sc.Vals(n)
	oks := sc.Bools(n)
	for attempt := 0; attempt < scanEpochRetries; attempt++ {
		if e.multiGetOn(c, e.cur.Load(), keys, vals, oks, true) {
			for i := 0; i < n; i++ {
				f(i, vals[i], oks[i])
			}
			return
		}
	}
	e.resizeMu.Lock()
	e.multiGetOn(c, e.cur.Load(), keys, vals, oks, false)
	e.resizeMu.Unlock()
	for i := 0; i < n; i++ {
		f(i, vals[i], oks[i])
	}
}

// multiWrite runs a grouped write batch under the shard gate protocol:
// one gate entry (writer publish + frozen check) per shard per batch.
// A frozen shard parks the batch until the epoch advances, then the
// unapplied remainder regroups on the published map — applied elements
// keep their results (their inner operations already linearized).
func (e *Elastic) multiWrite(c *core.Ctx, sc *core.BatchScratch, n int, keyAt func(i int) core.Key, apply func(s core.Set, members []int, res []bool)) []bool {
	c.EpochEnter()
	defer c.EpochExit()
	res := sc.Bools(n)
	pending := sc.Ints(n)
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		p := e.cur.Load()
		parts := len(p.shards)
		idx, off := groupBatch(sc, len(pending), parts, func(j int) int {
			return indexOf(mix64(uint64(keyAt(pending[j]))), parts)
		})
		applied := sc.Bools(len(pending))
		memberBuf := sc.Ints(len(pending))
		stale := false
		for part := 0; part < parts; part++ {
			lo, hi := off[part], off[part+1]
			if lo == hi {
				continue
			}
			sh := &p.shards[part]
			sh.writers.Add(1)
			if sh.frozen.Load() {
				sh.writers.Add(-1)
				// The migrator owns this shard until the next map is
				// published; park (instrumented) and regroup what's left.
				locks.WaitWhile(c.Stat(), func() bool { return e.cur.Load() == p })
				stale = true
				break
			}
			members := memberBuf[:0]
			for _, j := range idx[lo:hi] {
				members = append(members, pending[j])
			}
			apply(sh.set, members, res)
			sh.writers.Add(-1)
			for _, j := range idx[lo:hi] {
				applied[j] = true
			}
		}
		if !stale {
			return res
		}
		rest := sc.Ints(len(pending))[:0]
		for j, did := range applied {
			if !did {
				rest = append(rest, pending[j])
			}
		}
		pending = rest
	}
	return res
}

// MultiPut implements core.Batcher under the shard gate protocol (see
// multiWrite).
func (e *Elastic) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	if len(pairs) == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	subBuf := sc.KVs(len(pairs))
	var m []int
	var out []bool
	cb := func(j int, ok bool) { out[m[j]] = ok }
	res := e.multiWrite(c, sc, len(pairs),
		func(i int) core.Key { return pairs[i].K },
		func(s core.Set, members []int, res []bool) {
			sub := subBuf[:0]
			for _, i := range members {
				sub = append(sub, pairs[i])
			}
			m, out = members, res
			core.AsBatcher(s).MultiPut(c, sub, cb)
		})
	for i := range res {
		f(i, res[i])
	}
}

// MultiRemove implements core.Batcher under the shard gate protocol
// (see multiWrite).
func (e *Elastic) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	if len(keys) == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	subBuf := sc.Keys(len(keys))
	var m []int
	var out []bool
	cb := func(j int, ok bool) { out[m[j]] = ok }
	res := e.multiWrite(c, sc, len(keys),
		func(i int) core.Key { return keys[i] },
		func(s core.Set, members []int, res []bool) {
			sub := subBuf[:0]
			for _, i := range members {
				sub = append(sub, keys[i])
			}
			m, out = members, res
			core.AsBatcher(s).MultiRemove(c, sub, cb)
		})
	for i := range res {
		f(i, res[i])
	}
}

// ---------------------------------------------------------------------------
// ReadCache
// ---------------------------------------------------------------------------

// MultiGet implements core.Batcher: one probe pass over the cache
// (each probe the same single atomic load as a point hit), then the
// miss set forwarded as ONE inner sub-batch, then version-guarded
// fills — per-key the exact protocol of Get, with the inner traversal
// amortized across the misses.
func (r *ReadCache) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	n := len(keys)
	if n == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	vals := sc.Vals(n)
	oks := sc.Bools(n)
	missIdx := sc.Ints(n)[:0]
	missKeys := sc.Keys(n)[:0]
	var missVers []uint64
	var missEnts []*rcEntry // probe-time residents (admission victims)
	var missExp []bool      // resident was this key, past its TTL
	st := c.Stat()
	for i, k := range keys {
		sl := r.slot(k)
		e := sl.entry.Load()
		expired := false
		if e != nil && e.key == k {
			if !r.expired(e) {
				vals[i], oks[i] = e.val, true
				if st != nil {
					st.RecordCacheHit()
				}
				continue
			}
			expired = true
		}
		if st != nil {
			st.RecordCacheMiss(expired)
		}
		// Version snapshot BEFORE the inner read, per the fill protocol.
		missIdx = append(missIdx, i)
		missKeys = append(missKeys, k)
		missVers = append(missVers, sl.ver.Load())
		missEnts = append(missEnts, e)
		missExp = append(missExp, expired)
	}
	if len(missIdx) > 0 {
		core.AsBatcher(r.inner).MultiGet(c, missKeys, func(j int, v core.Value, ok bool) {
			vals[missIdx[j]], oks[missIdx[j]] = v, ok
		})
		for j, i := range missIdx {
			if !oks[i] || missVers[j]&1 != 0 {
				continue
			}
			if missExp[j] || r.admit(keys[i], missEnts[j]) {
				r.fill(c, r.slot(keys[i]), keys[i], vals[i], missVers[j])
			} else if st != nil {
				st.RecordCacheReject()
			}
		}
	}
	for i := 0; i < n; i++ {
		f(i, vals[i], oks[i])
	}
}

// MultiPut implements core.Batcher: an htm.Try optimistic batch commit
// (try-acquire every touched slot lock, run the whole invalidation
// protocol and ONE inner sub-batch under them) with the per-key locked
// update loop as the structural fallback.
func (r *ReadCache) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	n := len(pairs)
	if n == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	res := sc.Bools(n)
	if r.tryBatchUpdate(c, core.BatchPut, pairs, res) {
		for i := range res {
			f(i, res[i])
		}
		return
	}
	for i, kv := range pairs {
		f(i, r.Put(c, kv.K, kv.V))
	}
}

// MultiRemove implements core.Batcher; see MultiPut.
func (r *ReadCache) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	n := len(keys)
	if n == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	pairs := sc.KVs(n)
	for i, k := range keys {
		pairs[i] = core.KV{K: k}
	}
	res := sc.Bools(n)
	if r.tryBatchUpdate(c, core.BatchRemove, pairs, res) {
		for i := range res {
			f(i, res[i])
		}
		return
	}
	for i, k := range keys {
		f(i, r.Remove(c, k))
	}
}

// tryBatchUpdate is the optimistic half of the batched update: one
// htm.Try attempt that try-acquires the deduplicated slot locks
// all-or-nothing (no blocking, so colliding batches cannot deadlock on
// overlapping slot sets), bumps every version odd, drops matching
// entries, runs ONE inner sub-batch, and bumps the versions back.
// Reports whether it committed; on abort (slot contention, emulated
// capacity, injected interrupt) the caller falls back to the per-key
// locked loop.
func (r *ReadCache) tryBatchUpdate(c *core.Ctx, op core.BatchOp, pairs []core.KV, res []bool) bool {
	slots := make([]*rcSlot, 0, len(pairs))
	for _, kv := range pairs {
		sl := r.slot(kv.K)
		dup := false
		for _, have := range slots {
			if have == sl {
				dup = true
				break
			}
		}
		if !dup {
			slots = append(slots, sl)
		}
	}
	var d *htm.Doom
	if c != nil {
		d = c.Doom
	}
	return htm.Try(c.Stat(), d, func(a *htm.Acq) htm.Status {
		for _, sl := range slots {
			if !a.Lock(&sl.mu) {
				return a.AbortStatus()
			}
		}
		if !a.Commit() {
			return a.AbortStatus()
		}
		for _, sl := range slots {
			sl.ver.Add(1) // odd: batch update in flight, fills stand down
		}
		for _, kv := range pairs {
			sl := r.slot(kv.K)
			if e := sl.entry.Load(); e != nil && e.key == kv.K {
				sl.entry.Store(nil)
			}
		}
		b := core.AsBatcher(r.inner)
		if op == core.BatchPut {
			b.MultiPut(c, pairs, func(j int, ok bool) { res[j] = ok })
		} else {
			keys := make([]core.Key, len(pairs))
			for j, kv := range pairs {
				keys[j] = kv.K
			}
			b.MultiRemove(c, keys, func(j int, ok bool) { res[j] = ok })
		}
		for _, sl := range slots {
			sl.ver.Add(1) // even again
		}
		return htm.Committed
	})
}
