package combinator

import (
	"testing"

	"csds/internal/settest"
)

// The chaos battery across the combinators (settest.RunChaos): injected
// stalls, forced guard failures, and the EBR antagonist run against the
// composite protocols — cross-shard merges, striped ranges, readcache's
// version-guarded fills, and elastic's COW shard maps — under the full
// invariant set. See internal/settest/chaostest.go.

func TestCombinatorsChaos(t *testing.T) {
	specs := []string{
		"sharded(4,list/lazy)",
		"striped(4,bst/tk)",
		"readcache(8,hashtable/lazy)",
		"elastic(2,skiplist/herlihy)",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) { settest.RunChaosSpec(t, spec) })
	}
}
