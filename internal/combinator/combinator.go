// Package combinator implements composable structure combinators: wrappers
// that build a higher-throughput linearizable core.Set out of instances of
// any registered algorithm. The paper (conf_spaa_DavidG16) evaluates its
// structures one instance at a time; these combinators are the horizontal
// step — hash sharding, key-space striping, and bounded read-through
// caching — and they keep the paper's fine-grained metrics flowing: every
// inner operation runs under the caller's *core.Ctx, so lock-wait times
// and restart counts from all shards aggregate into the same per-thread
// stats slots the harness already reads.
//
// The wrappers register themselves with the core combinator registry
// under the names "sharded", "striped" and "readcache", so composite
// specifications like
//
//	sharded(16,list/lazy)
//	striped(8,skiplist/herlihy)
//	readcache(1024,bst/tk)
//	readcache(512,sharded(4,hashtable/lazy))
//
// resolve through core.Build / core.NewFactory.
package combinator

import (
	"math/bits"

	"csds/internal/core"
)

func init() {
	core.RegisterCombinator(core.Combinator{
		Name:    "sharded",
		New:     func(arg int, inner func(core.Options) core.Set, o core.Options) core.Set { return NewSharded(arg, inner, o) },
		ArgDesc: "shards",
		Desc:    "hash-partitions keys over N independent inner instances",
	})
	core.RegisterCombinator(core.Combinator{
		Name:    "striped",
		New:     func(arg int, inner func(core.Options) core.Set, o core.Options) core.Set { return NewStriped(arg, inner, o) },
		ArgDesc: "stripes",
		Desc:    "range-partitions the key span (0..2*ExpectedSize) over N inner instances, in order",
	})
	core.RegisterCombinator(core.Combinator{
		Name:    "readcache",
		New:     func(arg int, inner func(core.Options) core.Set, o core.Options) core.Set { return NewReadCache(arg, inner(o)) },
		ArgDesc: "capacity",
		Desc:    "bounded read-through cache with invalidate-on-update over one inner instance",
	})
}

// mix64 is the SplitMix64 finalizer: a full-avalanche bijection that turns
// the dense integer keys of the paper's workloads into uniform hash bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// indexOf maps a 64-bit hash onto [0, n) without modulo bias via the
// fixed-point trick: hi(h * n / 2^64).
func indexOf(h uint64, n int) int {
	hi, _ := bits.Mul64(h, uint64(n))
	return int(hi)
}

// splitOptions derives the per-instance options for an n-way partition:
// the size hints describe the whole composite, so each part expects an
// n-th (rounded up) of the elements and buckets. The key-domain hint is
// NOT divided — partitions subdivide elements, never the key space — and
// the 2*ExpectedSize convention is materialized into KeySpan first, so a
// nested range partition (striped under sharded) still sees the whole
// domain rather than deriving a 1/n-scale one from the divided size.
func splitOptions(o core.Options, n int) core.Options {
	if o.KeySpan == 0 && o.ExpectedSize > 0 {
		o.KeySpan = core.Key(2 * o.ExpectedSize)
	}
	if n > 1 {
		if o.ExpectedSize > 0 {
			o.ExpectedSize = (o.ExpectedSize + n - 1) / n
		}
		if o.Buckets > 0 {
			o.Buckets = (o.Buckets + n - 1) / n
		}
	}
	return o
}

// clampParts normalizes a shard/stripe count to at least 1.
func clampParts(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
