// Package combinator implements composable structure combinators: wrappers
// that build a higher-throughput linearizable core.Set out of instances of
// any registered algorithm. The paper (conf_spaa_DavidG16) evaluates its
// structures one instance at a time; these combinators are the horizontal
// step — hash sharding, key-space striping, and bounded read-through
// caching — and they keep the paper's fine-grained metrics flowing: every
// inner operation runs under the caller's *core.Ctx, so lock-wait times
// and restart counts from all shards aggregate into the same per-thread
// stats slots the harness already reads.
//
// The wrappers register themselves with the core combinator registry
// under the names "sharded", "striped", "readcache" and "elastic", so
// composite specifications like
//
//	sharded(16,list/lazy)
//	striped(8,skiplist/herlihy)
//	readcache(1024,bst/tk)
//	readcache(512,sharded(4,hashtable/lazy))
//	elastic(4,list/lazy)
//
// resolve through core.Build / core.NewFactory. The elastic composite
// additionally implements core.Resizable: its width can be grown or
// shrunk online (see Elastic).
package combinator

import (
	"fmt"
	"math/bits"

	"csds/internal/core"
)

// maxPartitions bounds shard/stripe counts accepted through the spec
// grammar: a width beyond 2^16 is a typo (it exceeds any plausible core
// count by three orders of magnitude), and catching it at resolution time
// beats allocating 2^16+ inner instances.
const maxPartitions = 1 << 16

// validateWidth builds the spec-time check for partition-width arguments.
func validateWidth(comb string) func(int) error {
	return func(arg int) error {
		if arg > maxPartitions {
			return fmt.Errorf("%s: width %d exceeds %d inner instances — likely a typo (each shard is a whole structure instance)", comb, arg, maxPartitions)
		}
		return nil
	}
}

func init() {
	core.RegisterCombinator(core.Combinator{
		Name: "sharded",
		New: func(arg int, inner func(core.Options) core.Set, o core.Options) core.Set {
			return NewSharded(arg, inner, o)
		},
		ArgDesc:  "shards",
		Desc:     "hash-partitions keys over N independent inner instances",
		Validate: validateWidth("sharded"),
	})
	core.RegisterCombinator(core.Combinator{
		Name: "striped",
		New: func(arg int, inner func(core.Options) core.Set, o core.Options) core.Set {
			return NewStriped(arg, inner, o)
		},
		ArgDesc:  "stripes",
		Desc:     "range-partitions the key span (Options.KeySpan when set, else 0..2*ExpectedSize) over N inner instances, in order",
		Validate: validateWidth("striped"),
	})
	core.RegisterCombinator(core.Combinator{
		Name: "readcache",
		New: func(arg int, inner func(core.Options) core.Set, o core.Options) core.Set {
			return NewReadCacheOpts(arg, inner(o), o)
		},
		ArgDesc: "capacity",
		Desc:    "bounded read-through cache (TTL expiry + admission via Options) with invalidate-on-update over one inner instance",
		// No Validate hook: the grammar already confines arg to
		// [1, 1<<24], which is exactly the slot-table bound
		// (maxSpecCapacity), so every capacity that parses is legal and
		// NewReadCache's clamps are unreachable through core.Build. Only
		// the direct constructor can be handed out-of-range capacities;
		// its doc comment spells out the clamping.
	})
	core.RegisterCombinator(core.Combinator{
		Name: "elastic",
		New: func(arg int, inner func(core.Options) core.Set, o core.Options) core.Set {
			e, err := NewElastic(arg, inner, o)
			if err != nil {
				// Unreachable through the registries: every algorithm and
				// combinator in this module implements core.Ranger,
				// core.Scanner and core.Cursor.
				panic(fmt.Sprintf("combinator: %v", err))
			}
			return e
		},
		ArgDesc:  "initial shards",
		Desc:     "hash partition resizable online via core.Resizable (epoch-swapped COW shard map)",
		Validate: validateWidth("elastic"),
	})
}

// mix64 is the SplitMix64 finalizer: a full-avalanche bijection that turns
// the dense integer keys of the paper's workloads into uniform hash bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// indexOf maps a 64-bit hash onto [0, n) without modulo bias via the
// fixed-point trick: hi(h * n / 2^64).
func indexOf(h uint64, n int) int {
	hi, _ := bits.Mul64(h, uint64(n))
	return int(hi)
}

// splitOptions derives the per-instance options for an n-way partition:
// the size hints describe the whole composite, so each part expects an
// n-th (rounded up) of the elements and buckets. The key-domain hint is
// NOT divided — partitions subdivide elements, never the key space — and
// the 2*ExpectedSize convention is materialized into KeySpan first, so a
// nested range partition (striped under sharded) still sees the whole
// domain rather than deriving a 1/n-scale one from the divided size.
func splitOptions(o core.Options, n int) core.Options {
	if o.KeySpan == 0 && o.ExpectedSize > 0 {
		o.KeySpan = core.Key(2 * o.ExpectedSize)
	}
	if n > 1 {
		if o.ExpectedSize > 0 {
			o.ExpectedSize = (o.ExpectedSize + n - 1) / n
		}
		if o.Buckets > 0 {
			o.Buckets = (o.Buckets + n - 1) / n
		}
	}
	return o
}

// rangeParts implements core.Ranger over an ordered sequence of parts,
// threading f's early-stop signal across part boundaries. Every part must
// implement core.Ranger; the wrappers panic here when handed an inner
// structure that does not (every algorithm in this module does).
func rangeParts(parts []core.Set, f func(k core.Key, v core.Value) bool) {
	done := false
	for _, p := range parts {
		if done {
			return
		}
		p.(core.Ranger).Range(func(k core.Key, v core.Value) bool {
			if !f(k, v) {
				done = true
			}
			return !done
		})
	}
}

// clampParts normalizes a shard/stripe count to at least 1.
func clampParts(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// collectScan gathers one part's in-range mappings into buf through the
// part's own linearizable scan (one atomic sub-snapshot per part). The
// part must implement core.Scanner; every algorithm and combinator in
// this module does, so a miss is a wiring bug worth the panic.
func collectScan(c *core.Ctx, part core.Set, lo, hi core.Key, buf *[]core.ScanPair) {
	part.(core.Scanner).Scan(c, lo, hi, func(k core.Key, v core.Value) bool {
		*buf = append(*buf, core.ScanPair{K: k, V: v})
		return true
	})
}

// mergeScan implements the collect-and-merge scan of hash-partitioned
// composites: collect every part's atomic sub-snapshot, sort the union by
// key (partitions are disjoint, so there are no duplicates to resolve),
// and replay in ascending order. Per-key consistency is inherited from
// the per-part snapshots: every reported presence or absence was true at
// some instant inside the Scan call.
func mergeScan(c *core.Ctx, parts []core.Set, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	var buf []core.ScanPair
	for _, p := range parts {
		collectScan(c, p, lo, hi, &buf)
	}
	core.SortScanPairs(buf)
	return core.ReplayScan(buf, f)
}
