package combinator

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
	"csds/internal/xrand"

	// Populate the algorithm registry with the leaves the specs name.
	_ "csds/internal/bst"
	_ "csds/internal/hashtable"
	_ "csds/internal/list"
	_ "csds/internal/skiplist"
)

// TestCompositeSuites runs the full linearizable-set conformance battery
// against the acceptance composites and a nested one.
func TestCompositeSuites(t *testing.T) {
	for _, spec := range []string{
		"sharded(16,list/lazy)",
		"striped(8,skiplist/herlihy)",
		"readcache(1024,bst/tk)",
		"readcache(64,sharded(4,hashtable/lazy))",
	} {
		t.Run(spec, func(t *testing.T) { settest.RunSpec(t, spec) })
	}
}

// TestCompositeSuitesMoreLeaves cross-checks each combinator over a
// different progress class (lock-free and wait-free leaves must compose
// just as well as blocking ones).
func TestCompositeSuitesMoreLeaves(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-product suites are the long battery")
	}
	for _, spec := range []string{
		"sharded(4,list/harris)",
		"striped(4,list/waitfree)",
		"readcache(128,list/harris)",
	} {
		t.Run(spec, func(t *testing.T) { settest.RunSpec(t, spec) })
	}
}

// TestCompositeScanners runs the linearizable range-scan battery over
// every combinator. Ordered follows the scan contract: striped preserves
// inner order, sharded and elastic sort their merge, readcache inherits
// the inner order — and since the hash tables grew their ordered key
// index, every leaf in the module scans ascending, so every composite
// does too.
func TestCompositeScanners(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		ordered bool
	}{
		{"sharded(16,list/lazy)", true},
		{"sharded(4,hashtable/lazy)", true}, // merge sort orders the hash leaves
		{"striped(8,skiplist/herlihy)", true},
		{"striped(4,hashtable/lazy)", true}, // indexed hash leaves scan ascending now
		{"readcache(1024,bst/tk)", true},
		{"readcache(64,sharded(4,hashtable/lazy))", true},
		{"elastic(4,list/lazy)", true},
		{"striped(4,sharded(2,list/lazy))", true},
	} {
		t.Run(tc.spec, func(t *testing.T) { settest.RunScannerSpec(t, tc.spec, tc.ordered) })
	}
}

// TestCompositeScannersMoreLeaves cross-checks scans over lock-free and
// wait-free leaves (the long battery).
func TestCompositeScannersMoreLeaves(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-product suites are the long battery")
	}
	for _, spec := range []string{
		"sharded(4,list/harris)",
		"striped(4,list/waitfree)",
		"striped(4,skiplist/lockfree)",
		"elastic(4,bst/tk)",
	} {
		t.Run(spec, func(t *testing.T) { settest.RunScannerSpec(t, spec, true) })
	}
}

// TestCompositeCursors runs the paginated-iteration battery across the
// combinator grid: merge cursors (sharded), per-stripe resumption
// (striped), delegation (readcache), epoch-disciplined merges (elastic),
// and nesting — including hash-table leaves, whose cursor pages are
// sorted into the same ascending order every composite promises.
func TestCompositeCursors(t *testing.T) {
	for _, spec := range []string{
		"sharded(16,list/lazy)",
		"sharded(4,hashtable/lazy)",
		"striped(8,skiplist/herlihy)",
		"striped(4,hashtable/lazy)",
		"readcache(1024,bst/tk)",
		"readcache(64,sharded(4,hashtable/lazy))",
		"elastic(4,list/lazy)",
		"striped(4,sharded(2,list/lazy))",
	} {
		t.Run(spec, func(t *testing.T) { settest.RunCursorSpec(t, spec) })
	}
}

// TestCompositeCursorsMoreLeaves cross-checks cursors over lock-free and
// wait-free leaves (the long battery).
func TestCompositeCursorsMoreLeaves(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-product suites are the long battery")
	}
	for _, spec := range []string{
		"sharded(4,list/harris)",
		"striped(4,list/waitfree)",
		"striped(4,skiplist/lockfree)",
		"elastic(4,bst/tk)",
	} {
		t.Run(spec, func(t *testing.T) { settest.RunCursorSpec(t, spec) })
	}
}

// TestCompositeBatchers runs the batched-operation battery over every
// combinator: shard-grouped sub-batches (sharded, including the
// single-shard flat-combining path), per-stripe grouping (striped),
// probe-then-forward (readcache), epoch- and gate-disciplined grouping
// (elastic), and nesting. sharded(1,...) maximizes the single-shard
// combine path's exposure.
func TestCompositeBatchers(t *testing.T) {
	for _, spec := range []string{
		"sharded(16,list/lazy)",
		"sharded(1,list/lazy)",
		"sharded(4,hashtable/lazy)",
		"striped(8,skiplist/herlihy)",
		"readcache(1024,bst/tk)",
		"readcache(64,sharded(4,hashtable/lazy))",
		"elastic(4,list/lazy)",
		"striped(4,sharded(2,list/lazy))",
	} {
		t.Run(spec, func(t *testing.T) { settest.RunBatcherSpec(t, spec) })
	}
}

// TestCompositeBatchersMoreLeaves cross-checks batches over lock-free
// and wait-free leaves (the long battery).
func TestCompositeBatchersMoreLeaves(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-product suites are the long battery")
	}
	for _, spec := range []string{
		"sharded(4,list/harris)",
		"striped(4,list/waitfree)",
		"striped(4,skiplist/lockfree)",
		"elastic(4,bst/tk)",
	} {
		t.Run(spec, func(t *testing.T) { settest.RunBatcherSpec(t, spec) })
	}
}

// TestElasticBatchUnderResize is the acceptance point of the batch
// battery: batches over elastic composites must keep the per-key
// algebra and anchor visibility — every element linearizing inside its
// call — while a dedicated goroutine grows and shrinks the shard map
// between (and during) batches.
func TestElasticBatchUnderResize(t *testing.T) {
	for _, spec := range []string{
		"elastic(2,list/lazy)",
		"elastic(2,skiplist/herlihy)",
	} {
		f, err := core.NewFactory(spec)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(spec, func(t *testing.T) {
			settest.RunBatcherResizable(t, settest.Factory(f))
		})
	}
}

// TestElasticCursorUnderResize is the acceptance point of the cursor
// battery: pagination over elastic composites must stay duplicate-free
// and anchor-complete — and tokens must keep resuming — while a
// dedicated goroutine grows and shrinks the shard map between (and
// during) pages.
func TestElasticCursorUnderResize(t *testing.T) {
	for _, spec := range []string{
		"elastic(2,list/lazy)",
		"elastic(2,skiplist/herlihy)",
	} {
		f, err := core.NewFactory(spec)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(spec, func(t *testing.T) {
			settest.RunCursorResizable(t, settest.Factory(f))
		})
	}
}

// TestElasticScanUnderResize is the acceptance point of the scan
// battery: elastic composites must return consistent snapshots while a
// dedicated goroutine grows and shrinks the shard map mid-scan.
func TestElasticScanUnderResize(t *testing.T) {
	for _, spec := range []string{
		"elastic(2,list/lazy)",
		"elastic(2,skiplist/herlihy)",
	} {
		f, err := core.NewFactory(spec)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(spec, func(t *testing.T) {
			settest.RunScannerResizable(t, settest.Factory(f), true)
		})
	}
}

// TestCompositeEBR checks epoch-based reclamation threads through the
// wrappers: the shared domain in Options reaches every inner instance.
func TestCompositeEBR(t *testing.T) {
	for _, spec := range []string{"sharded(4,list/lazy)", "readcache(64,list/lazy)"} {
		f, err := core.NewFactory(spec)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(spec, func(t *testing.T) { settest.RunEBR(t, settest.Factory(f)) })
	}
}

func ctx() *core.Ctx { return core.NewCtx(0) }

func TestShardedRoutingAndLen(t *testing.T) {
	s, err := core.Build("sharded(16,list/lazy)", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh := s.(*Sharded)
	if sh.Shards() != 16 {
		t.Fatalf("Shards = %d", sh.Shards())
	}
	c := ctx()
	const n = 1000
	for k := core.Key(1); k <= n; k++ {
		if !s.Put(c, k, k) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	// Hash partitioning must actually spread: with 1000 keys over 16
	// shards no shard should be empty or hold more than a third.
	for i, inner := range sh.shards {
		l := inner.Len()
		if l == 0 || l > n/3 {
			t.Fatalf("shard %d holds %d of %d keys — degenerate hash spread", i, l, n)
		}
	}
	// Routing is deterministic: the shard that answers Get is the one
	// that absorbed Put.
	for k := core.Key(1); k <= n; k++ {
		if v, ok := sh.shard(k).Get(c, k); !ok || v != k {
			t.Fatalf("key %d not in its own shard", k)
		}
	}
}

// stripeIndex resolves which stripe instance a key routes to.
func stripeIndex(st *Striped, k core.Key) int {
	for i := range st.stripes {
		if st.stripe(k) == st.stripes[i] {
			return i
		}
	}
	return -1
}

func TestStripedOrderPreserving(t *testing.T) {
	// With a size hint, the partition domain is the workload's dense key
	// span [0, 2*ExpectedSize) — the configuration the harness produces.
	s, err := core.Build("striped(8,list/lazy)", core.Options{ExpectedSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	st := s.(*Striped)
	if st.Stripes() != 8 {
		t.Fatalf("Stripes = %d", st.Stripes())
	}
	// Stripe index must be monotone in the key across the whole signed
	// range, including the extremes next to the sentinels.
	keys := []core.Key{core.KeyMin + 1, -3, 0, 3, 256, 512, 1024, 2047, 1 << 40, core.KeyMax - 1}
	last := -1
	for _, k := range keys {
		idx := stripeIndex(st, k)
		if idx < last {
			t.Fatalf("stripe index not monotone at key %d: %d < %d", k, idx, last)
		}
		last = idx
	}
	// Out-of-domain keys clamp to the end stripes.
	if stripeIndex(st, core.KeyMin+1) != 0 || stripeIndex(st, -1) != 0 {
		t.Fatal("keys below the domain not clamped to the first stripe")
	}
	if stripeIndex(st, 1<<40) != 7 || stripeIndex(st, core.KeyMax-1) != 7 {
		t.Fatal("keys above the domain not clamped to the last stripe")
	}
}

// TestStripedSpreadsWorkloadKeys pins the regression where partitioning
// the whole int64 line funnelled every dense workload key (1..2*Size)
// into the middle stripe, making striping a no-op for real runs.
func TestStripedSpreadsWorkloadKeys(t *testing.T) {
	const size = 1024
	s, err := core.Build("striped(8,list/lazy)", core.Options{ExpectedSize: size})
	if err != nil {
		t.Fatal(err)
	}
	st := s.(*Striped)
	c := ctx()
	for k := core.Key(1); k <= 2*size; k++ {
		if !s.Put(c, k, k) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	if s.Len() != 2*size {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, inner := range st.stripes {
		l := inner.Len()
		if l == 0 || l > 2*size/4 {
			t.Fatalf("stripe %d holds %d of %d workload keys — degenerate partition", i, l, 2*size)
		}
	}
	// Order preservation: each stripe's keys form one contiguous run.
	lastStripe := 0
	for k := core.Key(1); k <= 2*size; k++ {
		idx := stripeIndex(st, k)
		if idx < lastStripe {
			t.Fatalf("key %d routed backwards: stripe %d after %d", k, idx, lastStripe)
		}
		lastStripe = idx
	}
}

// TestStripedWidthClampsToSpan pins the degenerate-partition fix: with a
// key span smaller than the stripe count, per-stripe width used to round
// to 1 and the trailing stripes could never receive a key. The effective
// width now clamps to the span and Stripes reports it.
func TestStripedWidthClampsToSpan(t *testing.T) {
	s, err := core.Build("striped(8,list/lazy)", core.Options{KeySpan: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := s.(*Striped)
	if st.Stripes() != 3 {
		t.Fatalf("Stripes = %d, want 3 (clamped to the span)", st.Stripes())
	}
	c := ctx()
	for k := core.Key(0); k < 3; k++ {
		if !s.Put(c, k, k) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	// Every stripe must be reachable: the three domain keys land on three
	// distinct stripes.
	for i, inner := range st.stripes {
		if inner.Len() != 1 {
			t.Fatalf("stripe %d holds %d keys, want exactly 1", i, inner.Len())
		}
	}
	// Out-of-domain keys still clamp to the end stripes.
	if stripeIndex(st, 100) != 2 || stripeIndex(st, -5) != 0 {
		t.Fatal("clamping to end stripes broken by the width clamp")
	}
	// A span of zero (no hints) must keep the full-domain behaviour.
	wide, err := core.Build("striped(8,list/lazy)", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w := wide.(*Striped).Stripes(); w != 8 {
		t.Fatalf("hint-less striped clamped to %d, want 8", w)
	}
}

// TestSpecValidation exercises the per-combinator argument checks wired
// into spec resolution: out-of-range widths and capacities fail with an
// actionable error before anything is constructed.
func TestSpecValidation(t *testing.T) {
	for _, tc := range []struct{ spec, wantSub string }{
		{"sharded(100000,list/lazy)", "width 100000 exceeds"},
		{"striped(70000,list/lazy)", "width 70000 exceeds"},
		{"elastic(9999999,list/lazy)", "width 9999999 exceeds"},
	} {
		_, err := core.Build(tc.spec, core.Options{})
		if err == nil {
			t.Fatalf("%s: validation accepted an absurd width", tc.spec)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", tc.spec, err, tc.wantSub)
		}
	}
	// In-range widths still resolve.
	if _, err := core.Build("sharded(64,list/lazy)", core.Options{}); err != nil {
		t.Fatalf("sharded(64,...) rejected: %v", err)
	}
}

// countingSet wraps an inner set and counts the Gets that reach it, so
// tests can observe cache hits (which must NOT reach the inner set)
// without a hot-path hit counter in the cache itself.
type countingSet struct {
	core.Set
	gets atomic.Uint64
}

func (cs *countingSet) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	cs.gets.Add(1)
	return cs.Set.Get(c, k)
}

func TestReadCacheHitsAndInvalidation(t *testing.T) {
	inner, err := core.Build("list/lazy", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingSet{Set: inner}
	rc := NewReadCache(1024, counting)
	var s core.Set = rc
	if rc.Capacity() != 1024 {
		t.Fatalf("Capacity = %d", rc.Capacity())
	}
	c := ctx()
	s.Put(c, 7, 70)
	if _, ok := s.Get(c, 7); !ok {
		t.Fatal("miss fill failed")
	}
	innerGets := counting.gets.Load()
	if rc.Fills() == 0 {
		t.Fatal("miss did not fill the cache")
	}
	if v, ok := s.Get(c, 7); !ok || v != 70 {
		t.Fatalf("cached Get = (%d, %v)", v, ok)
	}
	if counting.gets.Load() != innerGets {
		t.Fatal("second Get reached the inner set — cache did not serve the hit")
	}
	// Invalidation: remove must not leave the stale mapping readable.
	if !s.Remove(c, 7) {
		t.Fatal("Remove failed")
	}
	if _, ok := s.Get(c, 7); ok {
		t.Fatal("stale cache hit after Remove")
	}
	// Reinsert with a different value: the cache must never serve 70.
	s.Put(c, 7, 71)
	for i := 0; i < 3; i++ {
		if v, ok := s.Get(c, 7); !ok || v != 71 {
			t.Fatalf("after reinsert Get = (%d, %v), want (71, true)", v, ok)
		}
	}
}

func TestReadCacheCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {1000, 1024}, {1024, 1024}, {0, 1}, {-5, 1},
	} {
		inner, err := core.Build("list/lazy", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rc := NewReadCache(tc.in, inner)
		if rc.Capacity() != tc.want {
			t.Fatalf("capacity %d rounded to %d, want %d", tc.in, rc.Capacity(), tc.want)
		}
	}
}

// TestReadCacheNoStaleHitsUnderChurn hammers a single hot key with
// concurrent removes/reinserts while readers check they only ever observe
// values that were legitimately inserted and, after a quiesce, the final
// state. This targets the fill-vs-invalidate race directly.
func TestReadCacheNoStaleHitsUnderChurn(t *testing.T) {
	s, err := core.Build("readcache(64,list/lazy)", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const hot = core.Key(42)
	const iters = 20000
	var stop, readers sync.WaitGroup
	done := make(chan struct{})
	var bad sync.Once
	var mu sync.Mutex
	var failure string

	// One writer alternates the hot key between two values via
	// remove+insert; colliding churn runs on neighbouring keys.
	stop.Add(1)
	go func() {
		defer stop.Done()
		c := core.NewCtx(1)
		val := core.Value(100)
		for i := 0; i < iters; i++ {
			s.Remove(c, hot)
			if val == 100 {
				val = 200
			} else {
				val = 100
			}
			s.Put(c, hot, val)
		}
	}()
	stop.Add(1)
	go func() {
		defer stop.Done()
		c := core.NewCtx(2)
		rng := xrand.New(7)
		for i := 0; i < iters; i++ {
			k := core.Key(1 + rng.Int63n(500))
			if k == hot {
				continue
			}
			if rng.Bool(0.5) {
				s.Put(c, k, k)
			} else {
				s.Remove(c, k)
			}
		}
	}()
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			c := core.NewCtx(10 + r)
			for {
				select {
				case <-done:
					return
				default:
				}
				if v, ok := s.Get(c, hot); ok && v != 100 && v != 200 {
					bad.Do(func() {
						mu.Lock()
						failure = "reader observed a value never inserted"
						mu.Unlock()
					})
					return
				}
			}
		}(r)
	}
	stop.Wait()
	close(done)
	readers.Wait()
	mu.Lock()
	f := failure
	mu.Unlock()
	if f != "" {
		t.Fatal(f)
	}
	// Quiesced: the final value must be the last inserted one, not a
	// resurrected cache line.
	c := ctx()
	v, ok := s.Get(c, hot)
	if !ok || (v != 100 && v != 200) {
		t.Fatalf("final state corrupt: (%d, %v)", v, ok)
	}
	if !s.Remove(c, hot) {
		t.Fatal("final Remove failed")
	}
	if _, ok := s.Get(c, hot); ok {
		t.Fatal("hot key readable after final Remove — stale cache line")
	}
}

// TestStripedKeySpanDomain pins the follow-up regression: when the
// workload's key space is configured independently of the structure size
// (workload.Config.KeySpace), the harness threads it through
// Options.KeySpan and striping must divide THAT domain — not
// 2*ExpectedSize, which would clamp nearly every key into the last
// stripe.
func TestStripedKeySpanDomain(t *testing.T) {
	const span = 1 << 20
	s, err := core.Build("striped(8,list/lazy)",
		core.Options{ExpectedSize: 1024, KeySpan: span + 1})
	if err != nil {
		t.Fatal(err)
	}
	st := s.(*Striped)
	c := ctx()
	const n = 4096
	for i := 0; i < n; i++ {
		k := core.Key(1 + i*(span/n))
		if !s.Put(c, k, k) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	for i, inner := range st.stripes {
		l := inner.Len()
		if l == 0 || l > n/4 {
			t.Fatalf("stripe %d holds %d of %d span-wide keys — KeySpan domain ignored", i, l, n)
		}
	}
}

// TestSplitOptions checks the size hints divide across partitions while
// the key-domain hint is materialized and passed through undivided.
func TestSplitOptions(t *testing.T) {
	o := splitOptions(core.Options{ExpectedSize: 1000, Buckets: 64}, 16)
	if o.ExpectedSize != 63 || o.Buckets != 4 {
		t.Fatalf("splitOptions = %+v", o)
	}
	if o.KeySpan != 2000 {
		t.Fatalf("KeySpan not materialized from ExpectedSize: %+v", o)
	}
	o = splitOptions(core.Options{ExpectedSize: 1000, KeySpan: 4096}, 8)
	if o.KeySpan != 4096 {
		t.Fatalf("explicit KeySpan not preserved: %+v", o)
	}
	o = splitOptions(core.Options{ExpectedSize: 1000}, 1)
	if o.ExpectedSize != 1000 {
		t.Fatalf("1-way split changed size: %+v", o)
	}
	if n := clampParts(0); n != 1 {
		t.Fatalf("clampParts(0) = %d", n)
	}
}

// TestNestedStripedKeepsDomain pins the nested-composite regression:
// striped under sharded must partition the composite's whole key domain,
// not a domain derived from the outer layer's divided size hint (which
// would clamp ~1-1/N of each shard's keys into its last stripe).
func TestNestedStripedKeepsDomain(t *testing.T) {
	s, err := core.Build("sharded(4,striped(8,list/lazy))", core.Options{ExpectedSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	c := ctx()
	const span = 2048 // the paper's convention for ExpectedSize 1024
	for k := core.Key(1); k <= span; k++ {
		if !s.Put(c, k, k) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	for si, shard := range s.(*Sharded).shards {
		st := shard.(*Striped)
		total := st.Len()
		for i, inner := range st.stripes {
			l := inner.Len()
			if l > total/2 {
				t.Fatalf("shard %d stripe %d holds %d of %d keys — inner domain derived from divided size", si, i, l, total)
			}
		}
	}
}

// TestCombinatorStatsFlow verifies the fine-grained metrics of inner
// structures surface through a composite: contended updates on a sharded
// lazy list must record lock acquisitions into the caller's stats slot.
func TestCombinatorStatsFlow(t *testing.T) {
	s, err := core.Build("sharded(4,list/lazy)", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := ctx()
	for k := core.Key(1); k <= 200; k++ {
		s.Put(c, k, k)
		s.Remove(c, k)
	}
	if c.Stats.LockAcqs == 0 {
		t.Fatal("no lock acquisitions recorded through the sharded layer")
	}
}

// TestStreamingMergeVisitBound pins the tentpole acceptance number of
// the streaming cursor merge: a wide composite's cursor pages must
// visit at most 2·max keys per page on average (counter-verified via
// the page pull counters), where the old eager merge visited up to
// k·max — 32·max on these 32-way composites. The page size is chosen
// so max/k clears the refill-chunk floor, the regime the streaming
// merge is sized for.
func TestStreamingMergeVisitBound(t *testing.T) {
	span := core.Key(1 << 16)
	if testing.Short() {
		span = 1 << 14
	}
	const max = 512
	for _, spec := range []string{"sharded(32,list/lazy)", "elastic(32,list/lazy)"} {
		t.Run(spec, func(t *testing.T) {
			f, err := core.NewFactory(spec)
			if err != nil {
				t.Fatal(err)
			}
			s := f(core.Options{ExpectedSize: int(span / 2), KeySpan: span})
			fill := core.NewCtx(0)
			want := 0
			for k := core.Key(0); k < span; k += 2 {
				if !s.Put(fill, k, k) {
					t.Fatalf("fill insert %d failed", k)
				}
				want++
			}
			c := core.NewCtx(1)
			cur := s.(core.Cursor)
			pos, delivered, pages := core.Key(0), 0, 0
			for {
				next, done := cur.CursorNext(c, pos, span, max, func(core.Key, core.Value) bool {
					delivered++
					return true
				})
				pages++
				if pages > want {
					t.Fatal("iteration never finished")
				}
				if done {
					break
				}
				pos = next
			}
			if delivered != want {
				t.Fatalf("iteration delivered %d keys, want %d", delivered, want)
			}
			pulled := c.Stats.PagePullKeys
			if bound := uint64(2 * max * pages); pulled > bound {
				t.Fatalf("%d pages pulled %d keys (%.1f/page) — streaming bound 2·max=%d/page exceeded",
					pages, pulled, float64(pulled)/float64(pages), 2*max)
			}
			if eager := uint64(32 * max * pages); pulled > eager/4 {
				t.Fatalf("pulled %d keys, within 4x of the eager merge's %d — streaming win not realized", pulled, eager)
			}
		})
	}
}
