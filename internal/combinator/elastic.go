package combinator

import (
	"fmt"
	"sync"
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/locks"
)

// Elastic is a hash-partitioned composite (like Sharded) whose width can
// be changed online: Resize repartitions the keys over a new shard count
// while readers and writers keep running. It is the combinator layer's
// answer to shifting load — a deployment can start at sharded(1) cost and
// grow to sharded(64) throughput without a rebuild, the ROADMAP's elastic
// resharding item.
//
// The design is an epoch-swapped copy-on-write shard map, in the same
// spirit as the paper's COW list but at partition granularity: the shard
// map is immutable, operations route through one atomic pointer load, and
// a resize builds a whole new map and publishes it with a single atomic
// swap. The paper's thesis (blocking structures are practically wait-free
// because waiting is rare) sets the bar for the steady state: the read
// path adds one atomic pointer load and one flag load over Sharded and
// never waits, resizing or not.
//
// Resize protocol. Each shard carries a frozen flag and an in-flight
// writer gate (a counter). The migrator walks the old map shard by shard:
//
//  1. freeze: set the shard's frozen flag;
//  2. drain: wait until the writer gate reads zero — writers publish
//     themselves on the gate before checking frozen, so a zero gate after
//     freeze means no write is (or ever will be) in flight on the shard;
//  3. copy: iterate the now-immutable shard (core.Ranger) into the new
//     map, re-routing every key.
//
// After all shards are copied, one atomic store publishes the new map;
// old maps stay frozen forever, so operations that raced the swap detect
// staleness and retry on the current map.
//
// Per-operation protocol:
//
//   - Writers (Put/Remove) enter the shard's gate, then check frozen. Not
//     frozen: the inner operation proceeds and the migrator cannot pass
//     the drain until it completes. Frozen: the writer leaves the gate
//     and waits for the epoch to advance (locks.WaitWhile, so the wait
//     surfaces in the paper's fine-grained lock-wait metrics — this is
//     the only wait elasticity ever imposes, and only during a resize),
//     then retries on the published map.
//   - Readers never wait. A reader checks the shard's frozen flag after
//     its inner Get: not frozen means the read ran entirely before any
//     migration of the shard, and frozen with the map still current means
//     no post-migration update can exist yet (writers are parked), so in
//     both cases the result is current. Only a reader that raced a
//     completed swap retries, against the new map.
//
// Linearizability: away from resizes, operations linearize at their inner
// operation, exactly like Sharded. Around a resize, writes linearize at
// their inner operation (always on a shard the migrator has not yet
// copied, or on the new map after the swap), and reads linearize at the
// inner Get or at their map re-check, as argued above.
type Elastic struct {
	inner func(core.Options) core.Set
	opts  core.Options // composite-level hints; re-split on every resize

	cur      atomic.Pointer[epartition]
	resizeMu sync.Mutex // serializes resizes; never touched by Get/Put/Remove
	resizes  atomic.Uint64
}

// epartition is one immutable shard-map epoch.
type epartition struct {
	shards []eshard
}

// eshard is one shard of an epoch: the inner instance plus the freeze
// flag and writer gate of the resize protocol. Padded so that adjacent
// shards' gates do not share a cache line.
type eshard struct {
	set     core.Set
	frozen  atomic.Bool
	writers atomic.Int64
	_       [32]byte
}

// route picks the shard for a key (same SplitMix64 routing as Sharded).
func (p *epartition) route(k core.Key) *eshard {
	return &p.shards[indexOf(mix64(uint64(k)), len(p.shards))]
}

// NewElastic builds an elastic composite with the given initial width.
// The inner constructor must produce sets implementing core.Ranger and
// core.Scanner (every algorithm registered in this module does both):
// migration iterates frozen shards to re-route their keys, and the
// composite's Scan collects per-shard sub-snapshots.
func NewElastic(n int, inner func(core.Options) core.Set, o core.Options) (*Elastic, error) {
	e := &Elastic{inner: inner, opts: o}
	p := e.buildPartition(clampParts(n))
	if _, ok := p.shards[0].set.(core.Ranger); !ok {
		return nil, fmt.Errorf("combinator: elastic needs an inner structure that implements core.Ranger (shard migration iterates frozen shards); %T does not", p.shards[0].set)
	}
	if _, ok := p.shards[0].set.(core.Scanner); !ok {
		return nil, fmt.Errorf("combinator: elastic needs an inner structure that implements core.Scanner (composite scans collect per-shard snapshots); %T does not", p.shards[0].set)
	}
	if _, ok := p.shards[0].set.(core.Cursor); !ok {
		return nil, fmt.Errorf("combinator: elastic needs an inner structure that implements core.Cursor (composite cursor pages merge per-shard pages); %T does not", p.shards[0].set)
	}
	e.cur.Store(p)
	return e, nil
}

// buildPartition constructs a fresh n-way shard map from the composite's
// original (undivided) option hints.
func (e *Elastic) buildPartition(n int) *epartition {
	so := splitOptions(e.opts, n)
	p := &epartition{shards: make([]eshard, n)}
	for i := range p.shards {
		p.shards[i].set = e.inner(so)
	}
	return p
}

// Get implements core.Set. The hot path is one map load, the inner Get,
// and one flag load; it never waits, even during a resize.
func (e *Elastic) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	// The bracket must open before the map load: a superseded map is
	// retired eagerly (see Resize), so holding one without an active
	// epoch would race its reclamation.
	c.EpochEnter()
	defer c.EpochExit()
	for {
		p := e.cur.Load()
		sh := p.route(k)
		v, ok := sh.set.Get(c, k)
		if !sh.frozen.Load() || e.cur.Load() == p {
			// Unfrozen: the read finished before any migration of this
			// shard. Frozen but unswapped: the shard is immutable and no
			// newer write exists anywhere yet. Either way, current.
			return v, ok
		}
		// Frozen and superseded: the value may predate a post-swap
		// update. Retry on the published map.
	}
}

// write runs one mutation under the shard gate protocol. The bracket
// pins the loaded shard map against eager resize reclamation, like Get.
func (e *Elastic) write(c *core.Ctx, k core.Key, op func(core.Set) bool) bool {
	c.EpochEnter()
	defer c.EpochExit()
	for {
		p := e.cur.Load()
		sh := p.route(k)
		sh.writers.Add(1)
		if !sh.frozen.Load() {
			res := op(sh.set)
			sh.writers.Add(-1)
			return res
		}
		sh.writers.Add(-1)
		// The migrator owns this shard until the next map is published.
		// Park (instrumented: the paper's metrics must see this wait),
		// then retry on the published map.
		locks.WaitWhile(c.Stat(), func() bool { return e.cur.Load() == p })
	}
}

// Put implements core.Set.
func (e *Elastic) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	return e.write(c, k, func(s core.Set) bool { return s.Put(c, k, v) })
}

// Remove implements core.Set.
func (e *Elastic) Remove(c *core.Ctx, k core.Key) bool {
	return e.write(c, k, func(s core.Set) bool { return s.Remove(c, k) })
}

// Len sums the shard sizes of the current map (quiesced-only, like the
// inner Lens).
func (e *Elastic) Len() int {
	p := e.cur.Load()
	n := 0
	for i := range p.shards {
		n += p.shards[i].set.Len()
	}
	return n
}

// Range implements core.Ranger over the current map's shards, in index
// order — arbitrary key order overall (the partition is hashed).
func (e *Elastic) Range(f func(k core.Key, v core.Value) bool) {
	rangeParts(e.cur.Load().shardSets(), f)
}

// scanEpochRetries bounds how many superseded shard maps a scan abandons
// before it pins the map by briefly excluding resizes.
const scanEpochRetries = 4

// Scan implements core.Scanner with the same old-then-new epoch
// discipline as Get, at scan granularity: collect every shard of the
// loaded map through its own linearizable scan, and after each shard
// re-check the staleness witness — a frozen shard under a superseded map
// means the mappings just collected may predate post-swap updates, so
// the whole collection is discarded and the scan restarts on the
// published map (a frozen shard under the *current* map is merely
// mid-migration: it is immutable and still authoritative, because its
// writers are parked). A consistent pass sorts the disjoint union and
// replays in ascending key order, exactly like Sharded.
//
// Under pathological resize churn the optimistic pass could retry
// forever, so after scanEpochRetries discarded epochs the scan takes
// resizeMu — pausing resizes, never operations — and collects the then
// immovable current map. Correctness across a concurrent Resize needs no
// such pause: every reported state was read, within the call window,
// from the shard that owned the key at that instant.
func (e *Elastic) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	var buf []core.ScanPair
	for attempt := 0; attempt < scanEpochRetries; attempt++ {
		p := e.cur.Load()
		buf = buf[:0]
		stale := false
		for i := range p.shards {
			sh := &p.shards[i]
			collectScan(c, sh.set, lo, hi, &buf)
			if sh.frozen.Load() && e.cur.Load() != p {
				stale = true
				break
			}
		}
		if !stale {
			core.SortScanPairs(buf)
			return core.ReplayScan(buf, f)
		}
	}
	// Pin the shard map: resizes wait (briefly, and only for the scan's
	// collect — an administrative pause, like the migrator's own drain),
	// readers and writers do not.
	e.resizeMu.Lock()
	p := e.cur.Load()
	buf = buf[:0]
	for i := range p.shards {
		collectScan(c, p.shards[i].set, lo, hi, &buf)
	}
	e.resizeMu.Unlock()
	core.SortScanPairs(buf)
	return core.ReplayScan(buf, f)
}

// shardSets snapshots an epoch's shard instances as a []core.Set (the
// shape the core merge primitives take).
func (p *epartition) shardSets() []core.Set {
	sets := make([]core.Set, len(p.shards))
	for i := range p.shards {
		sets[i] = p.shards[i].set
	}
	return sets
}

// CursorNext implements core.Cursor by lazy streaming merge under the
// same old-then-new epoch discipline as Scan, at refill granularity:
// the shards of the loaded map are pulled in small bounded chunks
// (core.StreamMergePage — each pull one atomic sub-snapshot of its
// shard, the heap merge stopping exactly at the page budget instead of
// collecting max keys from every shard), and the staleness witness is
// re-checked after every pull — a frozen shard under a superseded map
// means the page may predate post-swap updates, so the merged-so-far
// page is discarded and retried on the published map. The merge buffers
// its delivery precisely so an aborted page can be discarded; a
// consistent page replays ascending.
//
// The token is a bare key position, so it names no shard map at all:
// a resize between two pages just means the next page streams from the
// new partition — resume positions survive any number of Resizes, which
// is exactly why the merge keeps no per-shard state across pages. After
// scanEpochRetries discarded epochs the page pins the map by briefly
// excluding resizes (resizeMu pauses migrations, never operations),
// mirroring Scan's fallback.
func (e *Elastic) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	for attempt := 0; attempt < scanEpochRetries; attempt++ {
		p := e.cur.Load()
		buf, next, done, aborted := core.StreamMergePage(c, p.shardSets(), pos, hi, max, func(i int) bool {
			return !(p.shards[i].frozen.Load() && e.cur.Load() != p)
		})
		if aborted {
			continue
		}
		c.RecordCursorRetries(attempt)
		return replayMerged(buf, next, done, f)
	}
	// Pin the shard map: resizes wait briefly for this one bounded
	// collect; readers and writers never do.
	e.resizeMu.Lock()
	p := e.cur.Load()
	buf, next, done, _ := core.StreamMergePage(c, p.shardSets(), pos, hi, max, nil)
	e.resizeMu.Unlock()
	c.RecordCursorRetries(scanEpochRetries)
	return replayMerged(buf, next, done, f)
}

// replayMerged drives a validated merged page through the user
// callback, honoring early stop (resume one past the last delivered
// key, like core.ReplayPage).
func replayMerged(buf []core.ScanPair, next core.Key, done bool, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	for _, pr := range buf {
		if !f(pr.K, pr.V) {
			return pr.K + 1, false
		}
	}
	return next, done
}

// Width implements core.Resizable: the current shard count.
func (e *Elastic) Width() int { return len(e.cur.Load().shards) }

// Resizes reports how many resizes have been published (for tests and
// width-over-time reporting).
func (e *Elastic) Resizes() uint64 { return e.resizes.Load() }

// Resize implements core.Resizable: repartition over n shards. Resizes
// serialize with each other; reads proceed untouched and writes to a
// shard mid-migration briefly wait (surfacing in c's lock-wait metrics).
// Keys written to not-yet-migrated shards during the resize are picked up
// when their shard is copied; keys written after the swap land in the new
// map directly — no update is ever lost.
func (e *Elastic) Resize(c *core.Ctx, n int) error {
	// Enforce the same ceiling the spec grammar validates at build time:
	// a runtime resize must not be the loophole that allocates millions
	// of inner instances.
	if n > maxPartitions {
		return fmt.Errorf("combinator: elastic resize width %d exceeds %d inner instances — likely a typo (each shard is a whole structure instance)", n, maxPartitions)
	}
	n = clampParts(n)
	e.resizeMu.Lock()
	defer e.resizeMu.Unlock()
	old := e.cur.Load()
	if len(old.shards) == n {
		return nil
	}
	next := e.buildPartition(n)
	for i := range old.shards {
		sh := &old.shards[i]
		sh.frozen.Store(true)
		// Drain: writers enter the gate before checking frozen, so once
		// the gate reads zero, every writer that could still touch this
		// shard has either completed or will observe frozen and park.
		// (The migrator's own drain wait is an admin cost, not a
		// workload metric, so it records no stats.)
		locks.WaitWhile(nil, func() bool { return sh.writers.Load() != 0 })
		// Copy the now-immutable shard into the new map. Concurrent
		// readers keep scanning the old shard meanwhile; it still holds
		// everything they can legitimately observe.
		sh.set.(core.Ranger).Range(func(k core.Key, v core.Value) bool {
			next.route(k).set.Put(c, k, v)
			return true
		})
	}
	// Publish: one atomic swap makes the new map current. Old maps stay
	// frozen forever, so stragglers holding them detect and retry.
	e.cur.Store(next)
	e.resizes.Add(1)
	// Eager reclamation: the superseded map is unreachable for new
	// operations the moment the swap lands, and every straggler holding
	// it does so inside an epoch bracket — so retire it through the
	// caller's record and let the grace period, not the GC, decide when
	// its shards' nodes feed the pools. Shards whose structures cannot
	// pool (and the map skeleton itself) simply fall to the GC when the
	// callback drops the last reference.
	c.Retire(old, func(v any) {
		for i := range v.(*epartition).shards {
			if r, ok := v.(*epartition).shards[i].set.(core.Reclaimer); ok {
				r.ReclaimAll()
			}
		}
	})
	return nil
}
