package combinator

import (
	"sync"
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
)

// TestElasticSuites runs the full linearizable-set conformance battery
// against elastic composites, including nested ones in both directions.
func TestElasticSuites(t *testing.T) {
	for _, spec := range []string{
		"elastic(4,list/lazy)",
		"elastic(2,hashtable/lazy)",
		"readcache(64,elastic(4,list/lazy))",
		"elastic(3,striped(2,list/lazy))",
	} {
		t.Run(spec, func(t *testing.T) { settest.RunSpec(t, spec) })
	}
}

// TestElasticResizable runs the concurrent battery while a dedicated
// goroutine grows and shrinks the partition the whole time — the
// acceptance gate for online resharding.
func TestElasticResizable(t *testing.T) {
	for _, spec := range []string{
		"elastic(2,list/lazy)",
		"elastic(4,skiplist/herlihy)",
	} {
		f, err := core.NewFactory(spec)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(spec, func(t *testing.T) { settest.RunResizable(t, settest.Factory(f)) })
	}
}

// TestElasticGrowShrinkMovesKeys checks quiesced resizes migrate every
// key: grow then shrink, verifying width, length, membership and hash
// spread after each step.
func TestElasticGrowShrinkMovesKeys(t *testing.T) {
	s, err := core.Build("elastic(2,list/lazy)", core.Options{ExpectedSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	e := s.(*Elastic)
	c := ctx()
	const n = 1000
	for k := core.Key(1); k <= n; k++ {
		if !s.Put(c, k, k*3) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	check := func(wantWidth int) {
		t.Helper()
		if w := e.Width(); w != wantWidth {
			t.Fatalf("Width = %d, want %d", w, wantWidth)
		}
		if l := s.Len(); l != n {
			t.Fatalf("Len = %d after resize to %d, want %d", l, wantWidth, n)
		}
		for k := core.Key(1); k <= n; k++ {
			if v, ok := s.Get(c, k); !ok || v != k*3 {
				t.Fatalf("after resize to %d: Get(%d) = (%d, %v)", wantWidth, k, v, ok)
			}
		}
		p := e.cur.Load()
		for i := range p.shards {
			if l := p.shards[i].set.Len(); l == 0 || l > 3*n/(2*wantWidth) {
				t.Fatalf("width %d: shard %d holds %d of %d keys — degenerate migration", wantWidth, i, l, n)
			}
		}
	}
	check(2)
	if err := e.Resize(c, 8); err != nil {
		t.Fatal(err)
	}
	check(8)
	if err := e.Resize(c, 3); err != nil {
		t.Fatal(err)
	}
	check(3)
	if got := e.Resizes(); got != 2 {
		t.Fatalf("Resizes = %d, want 2", got)
	}
	// Same-width resize is a no-op and publishes nothing.
	if err := e.Resize(c, 3); err != nil {
		t.Fatal(err)
	}
	if got := e.Resizes(); got != 2 {
		t.Fatalf("no-op resize published an epoch: Resizes = %d", got)
	}
	// Widths below 1 clamp to 1.
	if err := e.Resize(c, 0); err != nil {
		t.Fatal(err)
	}
	if w := e.Width(); w != 1 {
		t.Fatalf("Resize(0) gave width %d, want 1", w)
	}
	check(1)
	// Widths above the spec-grammar ceiling are refused, not allocated.
	if err := e.Resize(c, maxPartitions+1); err == nil {
		t.Fatal("Resize accepted a width above maxPartitions")
	}
	if w := e.Width(); w != 1 {
		t.Fatalf("failed Resize changed the width to %d", w)
	}
}

// TestElasticRequiresRanger pins the constructor-time check: an inner
// structure without iteration support cannot migrate, and the direct
// constructor must say so instead of panicking later.
func TestElasticRequiresRanger(t *testing.T) {
	base, err := core.Build("list/lazy", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Wrapping in a struct that embeds only the Set interface hides the
	// concrete type's Range method.
	type norange struct{ core.Set }
	_, err = NewElastic(2, func(core.Options) core.Set { return norange{base} }, core.Options{})
	if err == nil {
		t.Fatal("NewElastic accepted an inner structure without core.Ranger")
	}
}

// TestElasticAnchorSurvivesResizes isolates the reader-vs-migration race:
// readers must never lose sight of a key that is never removed, no matter
// how many grow/shrink migrations run underneath.
func TestElasticAnchorSurvivesResizes(t *testing.T) {
	s, err := core.Build("elastic(1,list/lazy)", core.Options{ExpectedSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	e := s.(*Elastic)
	c0 := ctx()
	const anchor = core.Key(77)
	if !s.Put(c0, anchor, 7777) {
		t.Fatal("anchor insert failed")
	}
	for k := core.Key(100); k < 200; k++ {
		s.Put(c0, k, k)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	var lost sync.Once
	failed := false
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			c := core.NewCtx(10 + r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v, ok := s.Get(c, anchor); !ok || v != 7777 {
					lost.Do(func() { failed = true })
					return
				}
			}
		}(r)
	}
	rc := core.NewCtx(99)
	widths := []int{4, 1, 16, 2, 8, 1}
	rounds := 60
	if testing.Short() {
		rounds = 15
	}
	for i := 0; i < rounds; i++ {
		if err := e.Resize(rc, widths[i%len(widths)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()
	if failed {
		t.Fatal("a reader lost the anchor key during resizing")
	}
	if v, ok := s.Get(c0, anchor); !ok || v != 7777 {
		t.Fatal("anchor missing after resizes")
	}
	if s.Len() != 101 {
		t.Fatalf("Len = %d after resizes, want 101", s.Len())
	}
}

// TestElasticStatsFlow verifies inner fine-grained metrics surface
// through the elastic layer, exactly as through Sharded.
func TestElasticStatsFlow(t *testing.T) {
	s, err := core.Build("elastic(4,list/lazy)", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := ctx()
	for k := core.Key(1); k <= 200; k++ {
		s.Put(c, k, k)
		s.Remove(c, k)
	}
	if c.Stats.LockAcqs == 0 {
		t.Fatal("no lock acquisitions recorded through the elastic layer")
	}
}

// TestElasticRange checks the composite's own iteration: exactly the
// current mappings, no duplicates, early stop honoured.
func TestElasticRange(t *testing.T) {
	s, err := core.Build("elastic(4,list/lazy)", core.Options{ExpectedSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	c := ctx()
	want := map[core.Key]core.Value{}
	for k := core.Key(1); k <= 100; k++ {
		s.Put(c, k, k*2)
		want[k] = k * 2
	}
	got := map[core.Key]core.Value{}
	s.(core.Ranger).Range(func(k core.Key, v core.Value) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("key %d visited twice", k)
		}
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d mappings, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range saw (%d, %d), want value %d", k, got[k], v)
		}
	}
	n := 0
	s.(core.Ranger).Range(func(core.Key, core.Value) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d, want 10", n)
	}
}
