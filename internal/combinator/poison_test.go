package combinator

import (
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
)

// The poisoning battery across the combinators (settest.RunPoison):
// nodes recycled by one shard's churn may be handed to another shard —
// or, after an elastic teardown sweep, to a replacement instance — so
// the composite batteries prove the package-level pools and the eager
// resize reclamation never leak a live mapping.

func TestCombinatorsPoison(t *testing.T) {
	specs := []string{
		"sharded(4,list/lazy)",
		"sharded(4,skiplist/herlihy)",
		"striped(4,list/lazy)",
		"striped(4,bst/tk)",
		"readcache(8,list/lazy)",
		"readcache(8,hashtable/lazy)",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) { settest.RunPoisonSpec(t, spec) })
	}
}

// TestElasticPoison runs the battery under continuous resize: every
// published width change eagerly retires a whole shard map whose nodes
// are swept into the pools by ReclaimAll — while stragglers may still
// be traversing them inside their brackets.
func TestElasticPoison(t *testing.T) {
	specs := []string{
		"elastic(2,list/lazy)",
		"elastic(2,hashtable/lazy)",
		"elastic(2,bst/tk)",
		"elastic(2,skiplist/herlihy)",
	}
	for _, spec := range specs {
		f, err := core.NewFactory(spec)
		if err != nil {
			t.Fatalf("resolving %s: %v", spec, err)
		}
		t.Run(spec, func(t *testing.T) { settest.RunPoisonResizable(t, settest.Factory(f)) })
	}
}
