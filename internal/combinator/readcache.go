package combinator

import (
	"fmt"
	"sync/atomic"
	"time"

	"csds/internal/core"
	"csds/internal/locks"
)

// ReadCache is a bounded read-through cache over one inner instance: a
// direct-mapped table of capacity slots, filled by Get misses and
// invalidated by updates. Read-mostly skewed workloads (the Zipfian
// popularity of §5.2) concentrate Gets on few hot keys; serving those
// hits from a single atomic load turns the inner traversal cost into O(1)
// without giving up linearizability — and without adding a lock to the
// read path, which would betray the paper's whole subject.
//
// Correctness protocol. Each slot carries a version that is odd while an
// update's inner operation is in flight (a seqlock in spirit), an atomic
// pointer to an immutable cached entry, and a mutex serializing writers
// only (updates and fills — never hits):
//
//   - Update (Put/Remove): lock the slot, bump the version to odd, drop a
//     matching entry, run the inner operation, bump back to even, unlock.
//     The entry is dropped before the inner linearization point, so a
//     stale mapping is never visible after an update takes effect.
//   - Get: one atomic entry load; on a matching key that value is
//     current (see below). Otherwise snapshot the version, read through
//     the inner structure, and fill under the lock only if the snapshot
//     was even and the version is unchanged — so no update's
//     linearization point falls between the inner read and the fill, and
//     a fill can never publish a pre-update value after the update.
//
// Invariant: a loaded entry always reflects the inner structure's current
// mapping, so a hit linearizes at its load instruction. The price is that
// updates to keys sharing a slot serialize on the slot lock; the cache
// targets read-dominated workloads where that path is cold.
// Two production-shaped extensions ride on the same protocol:
//
//   - TTL (core.Options.CacheTTL): entries carry their fill time and a
//     get never serves one older than the TTL — it re-reads the inner
//     structure and refreshes the entry in place (bypassing admission:
//     the key just proved it is still read). Updates through the cache
//     invalidate immediately regardless; the TTL bounds staleness when
//     the inner structure is ALSO mutated out of band, e.g. a replica
//     applying remote writes underneath the cache. The settest battery
//     (RunCacheTTL) pins exactly that contract.
//   - Admission (core.Options.CacheAdmission): on a miss, AdmitTinyLFU /
//     AdmitWindow decide whether the newcomer may displace the resident
//     entry (see admission.go). Both are consulted and maintained on the
//     miss path only — the hit path stays one atomic load.
type ReadCache struct {
	inner core.Set
	slots []rcSlot
	mask  uint64
	fills atomic.Uint64

	ttl    int64        // ns; 0 = no expiry
	now    func() int64 // injectable clock (tests); time.Now().UnixNano()
	sketch *freqSketch  // AdmitTinyLFU state, nil otherwise
	door   *doorkeeper  // AdmitWindow state, nil otherwise
}

// rcEntry is an immutable cached mapping, swapped atomically. fillNs is
// the clock reading at fill time; only meaningful when a TTL is set.
type rcEntry struct {
	key    core.Key
	val    core.Value
	fillNs int64
}

// rcSlot is one direct-mapped cache line. The writer lock is the
// repository's instrumented test-and-set lock, not a sync.Mutex: waiting
// on it is real lock waiting and must surface in the paper's fine-grained
// metrics like every other lock in this module.
type rcSlot struct {
	mu    locks.TAS // serializes updates and fills; hits never take it
	ver   atomic.Uint64
	entry atomic.Pointer[rcEntry]
}

// maxSpecCapacity bounds the slot table (16M slots) against typo'd
// capacities in specs.
const maxSpecCapacity = 1 << 24

// NewReadCache wraps inner with a cache of about capacity entries. The
// slot table is always a power of two: capacity is rounded up to the next
// power of two, a capacity <= 0 is clamped to a single slot, and anything
// above maxSpecCapacity (2^24) is clamped down to maxSpecCapacity slots.
// Callers that want clamping to be an error instead should build through
// core.Build, whose per-combinator validation rejects out-of-range
// capacities with an explanation before anything is constructed.
func NewReadCache(capacity int, inner core.Set) *ReadCache {
	n := 1
	for n < capacity && n < maxSpecCapacity {
		n <<= 1
	}
	return &ReadCache{inner: inner, slots: make([]rcSlot, n), mask: uint64(n - 1)}
}

// NewReadCacheOpts is NewReadCache plus the Options-borne cache knobs:
// CacheTTL enables entry expiry and CacheAdmission selects the admission
// policy. It panics on an unknown admission name — csdsbench and the spec
// layer validate the name first, so a panic here is a programming error in
// the caller, not user input. This is the constructor the registry uses.
func NewReadCacheOpts(capacity int, inner core.Set, o core.Options) *ReadCache {
	r := NewReadCache(capacity, inner)
	if o.CacheTTL > 0 {
		r.ttl = int64(o.CacheTTL)
		r.now = func() int64 { return time.Now().UnixNano() }
	}
	switch o.CacheAdmission {
	case "", AdmitAlways:
	case AdmitTinyLFU:
		r.sketch = newFreqSketch(len(r.slots))
	case AdmitWindow:
		r.door = newDoorkeeper(len(r.slots))
	default:
		panic(fmt.Sprintf("readcache: unknown admission policy %q (have %s, %s, %s)",
			o.CacheAdmission, AdmitAlways, AdmitTinyLFU, AdmitWindow))
	}
	return r
}

// SetClock replaces the TTL clock — a test hook (the settest TTL battery
// drives expiry deterministically with a fake clock). Call before any
// traffic; the clock must be monotone non-decreasing.
func (r *ReadCache) SetClock(now func() int64) {
	if r.ttl > 0 {
		r.now = now
	}
}

// expired reports whether e has outlived the TTL.
func (r *ReadCache) expired(e *rcEntry) bool {
	return r.ttl > 0 && r.now()-e.fillNs >= r.ttl
}

// admit decides whether key k may displace the probe-time resident entry
// (nil, expired, or k itself always admit). Consulted and maintained on
// the miss path only.
func (r *ReadCache) admit(k core.Key, victim *rcEntry) bool {
	switch {
	case r.sketch != nil:
		freq := r.sketch.touch(mix64(uint64(k)))
		if victim == nil || victim.key == k || r.expired(victim) {
			return true
		}
		return freq >= r.sketch.estimate(mix64(uint64(victim.key)))
	case r.door != nil:
		second := r.door.secondTouch(mix64(uint64(k)))
		if victim == nil || victim.key == k || r.expired(victim) {
			return true
		}
		return second
	}
	return true
}

// fill installs a fresh entry under the version guard (see the protocol
// comment above); v0 is the version snapshot taken before the inner read.
func (r *ReadCache) fill(c *core.Ctx, sl *rcSlot, k core.Key, v core.Value, v0 uint64) {
	sl.mu.Acquire(c.Stat())
	if sl.ver.Load() == v0 {
		e := &rcEntry{key: k, val: v}
		if r.ttl > 0 {
			e.fillNs = r.now()
		}
		sl.entry.Store(e)
		r.fills.Add(1)
		if st := c.Stat(); st != nil {
			st.RecordCacheFill()
		}
	}
	sl.mu.Release()
}

func (r *ReadCache) slot(k core.Key) *rcSlot {
	return &r.slots[mix64(uint64(k))&r.mask]
}

// Get implements core.Set: the hit path is one atomic load; the miss path
// is a version-guarded read-through fill.
func (r *ReadCache) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	sl := r.slot(k)
	e := sl.entry.Load()
	expired := false
	if e != nil && e.key == k {
		if !r.expired(e) {
			if st := c.Stat(); st != nil {
				st.RecordCacheHit()
			}
			return e.val, true
		}
		// Past the TTL: never served. Fall through to a re-read that
		// refreshes the entry in place (no admission check — the key just
		// proved it is still being read).
		expired = true
	}
	if st := c.Stat(); st != nil {
		st.RecordCacheMiss(expired)
	}
	v0 := sl.ver.Load()
	v, ok := r.inner.Get(c, k)
	if c != nil && c.SkipCacheFill {
		// Degraded mode (server overload): serve the inner read but do
		// not pay the fill lock or touch admission state. Refreshing an
		// expired resident is skipped too — the stale entry is already
		// unservable and updates still invalidate it.
		return v, ok
	}
	if ok && v0&1 == 0 {
		if expired || r.admit(k, e) {
			r.fill(c, sl, k, v, v0)
		} else if st := c.Stat(); st != nil {
			st.RecordCacheReject()
		}
	}
	return v, ok
}

// update runs an inner mutation inside the slot's writer critical
// section, invalidating first so no reader or racing fill can observe a
// pre-update mapping after the update takes effect.
func (r *ReadCache) update(c *core.Ctx, k core.Key, op func() bool) bool {
	sl := r.slot(k)
	sl.mu.Acquire(c.Stat())
	sl.ver.Add(1) // odd: update in flight, fills stand down
	if e := sl.entry.Load(); e != nil && e.key == k {
		sl.entry.Store(nil)
	}
	res := op()
	sl.ver.Add(1) // even again
	sl.mu.Release()
	return res
}

// Put implements core.Set. A successful Put only adds a mapping, but it
// still runs the invalidation protocol: a racing fill for a colliding key
// must see the version move.
func (r *ReadCache) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	return r.update(c, k, func() bool { return r.inner.Put(c, k, v) })
}

// Remove implements core.Set.
func (r *ReadCache) Remove(c *core.Ctx, k core.Key) bool {
	return r.update(c, k, func() bool { return r.inner.Remove(c, k) })
}

// Len reports the inner size (the cache holds no elements of its own).
func (r *ReadCache) Len() int { return r.inner.Len() }

// Capacity returns the rounded slot count.
func (r *ReadCache) Capacity() int { return len(r.slots) }

// Range implements core.Ranger by delegating to the inner structure (the
// cache holds no mappings of its own). It panics if the inner structure
// does not implement core.Ranger (every algorithm in this module does).
func (r *ReadCache) Range(f func(k core.Key, v core.Value) bool) {
	r.inner.(core.Ranger).Range(f)
}

// Scan implements core.Scanner by delegating to the inner structure's
// linearizable scan. The cache never holds a mapping the inner structure
// lacks (updates invalidate before their inner linearization point), so
// the inner scan's snapshot is a snapshot of the composite.
func (r *ReadCache) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	return r.inner.(core.Scanner).Scan(c, lo, hi, f)
}

// CursorNext implements core.Cursor by delegating to the inner
// structure's cursor; like Scan, the cache never holds a mapping the
// inner structure lacks, so inner pages are pages of the composite.
func (r *ReadCache) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	return r.inner.(core.Cursor).CursorNext(c, pos, hi, max, f)
}

// Fills returns how many Get misses filled a slot. Like everything else
// the cache maintains about itself, this shared counter lives on the miss
// path only: the hit path stays a bare atomic load. Per-operation hit and
// miss counts go to each context's private stats.Thread instead
// (CacheHits/CacheMisses — plain per-thread increments, no shared RMW),
// which the harness folds into the cache_hit_frac bench column.
func (r *ReadCache) Fills() uint64 { return r.fills.Load() }
