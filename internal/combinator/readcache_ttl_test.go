package combinator

import (
	"strings"
	"testing"
	"time"

	"csds/internal/core"
	"csds/internal/settest"
)

// TestReadCacheTTLBattery runs the settest TTL-expiry contract (stale
// values under out-of-band inner churn are never served past the TTL)
// against the real readcache with an injected clock.
func TestReadCacheTTLBattery(t *testing.T) {
	settest.RunCacheTTL(t, func(inner core.Set, ttl time.Duration, now func() int64) core.Set {
		rc := NewReadCacheOpts(64, inner, core.Options{CacheTTL: ttl})
		rc.SetClock(now)
		return rc
	})
}

// admitInner counts inner gets (hit/miss discrimination for the
// admission tests) over a plain map; single-threaded use only.
type admitInner struct {
	m    map[core.Key]core.Value
	gets int
}

func (s *admitInner) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	s.gets++
	v, ok := s.m[k]
	return v, ok
}
func (s *admitInner) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = v
	return true
}
func (s *admitInner) Remove(c *core.Ctx, k core.Key) bool {
	if _, ok := s.m[k]; !ok {
		return false
	}
	delete(s.m, k)
	return true
}
func (s *admitInner) Len() int { return len(s.m) }

// TestTinyLFUProtectsHotEntry: a hot key read many times must not be
// displaced from its slot by a colliding key read once — that is the
// entire point of frequency-based admission.
func TestTinyLFUProtectsHotEntry(t *testing.T) {
	inner := &admitInner{m: map[core.Key]core.Value{}}
	rc := NewReadCacheOpts(1, inner, core.Options{CacheAdmission: AdmitTinyLFU}) // one slot: everything collides
	c := core.NewCtx(0)
	hot, cold := core.Key(1), core.Key(2)
	inner.m[hot], inner.m[cold] = 10, 20

	for i := 0; i < 32; i++ {
		rc.Get(c, hot) // build frequency; first fills, rest hit
	}
	base := inner.gets
	if base != 1 {
		t.Fatalf("hot key consulted inner %d times, want 1", base)
	}
	// One cold read: a miss, but it must NOT displace the hot entry.
	if v, _ := rc.Get(c, cold); v != 20 {
		t.Fatal("cold read wrong value")
	}
	if c.Stats.CacheRejects == 0 {
		t.Fatal("cold fill not rejected by tinylfu admission")
	}
	rc.Get(c, hot)
	if inner.gets != base+1 { // +1 is the cold read itself
		t.Fatalf("hot key lost its slot to a one-touch cold key (inner gets %d, want %d)", inner.gets, base+1)
	}
}

// TestWindowAdmitsOnSecondMiss: the doorkeeper rejects a newcomer's first
// miss and admits its second within the window.
func TestWindowAdmitsOnSecondMiss(t *testing.T) {
	inner := &admitInner{m: map[core.Key]core.Value{}}
	rc := NewReadCacheOpts(1, inner, core.Options{CacheAdmission: AdmitWindow})
	c := core.NewCtx(0)
	resident, newcomer := core.Key(1), core.Key(2)
	inner.m[resident], inner.m[newcomer] = 10, 20

	rc.Get(c, resident) // fills the empty slot (empty always admits)
	rc.Get(c, newcomer) // first miss: doorkeeper says no
	if c.Stats.CacheRejects != 1 {
		t.Fatalf("first newcomer miss rejects=%d, want 1", c.Stats.CacheRejects)
	}
	before := inner.gets
	rc.Get(c, resident) // still cached
	if inner.gets != before {
		t.Fatal("resident displaced by a one-touch key")
	}
	rc.Get(c, newcomer) // second miss: admitted, displaces resident
	if c.Stats.CacheFills != 2 {
		t.Fatalf("fills=%d after second newcomer miss, want 2", c.Stats.CacheFills)
	}
	before = inner.gets
	rc.Get(c, newcomer)
	if inner.gets != before {
		t.Fatal("admitted newcomer not served from cache")
	}
}

// TestAdmissionStatsBalance: every miss resolves to exactly one of fill,
// reject, or a version-raced no-op; hits plus misses equals gets.
func TestAdmissionStatsBalance(t *testing.T) {
	for _, policy := range []string{AdmitAlways, AdmitTinyLFU, AdmitWindow} {
		inner := &admitInner{m: map[core.Key]core.Value{}}
		rc := NewReadCacheOpts(8, inner, core.Options{CacheAdmission: policy})
		c := core.NewCtx(0)
		const gets = 1000
		for i := 0; i < 64; i++ {
			inner.m[core.Key(i+1)] = core.Value(i)
		}
		for i := 0; i < gets; i++ {
			rc.Get(c, core.Key(i%64+1))
		}
		st := c.Stats
		if st.CacheHits+st.CacheMisses != gets {
			t.Fatalf("%s: hits %d + misses %d != gets %d", policy, st.CacheHits, st.CacheMisses, gets)
		}
		// Single-threaded: no version races, so every miss fills or rejects.
		if st.CacheFills+st.CacheRejects != st.CacheMisses {
			t.Fatalf("%s: fills %d + rejects %d != misses %d", policy, st.CacheFills, st.CacheRejects, st.CacheMisses)
		}
		if policy == AdmitAlways && st.CacheRejects != 0 {
			t.Fatalf("always-admit rejected %d fills", st.CacheRejects)
		}
	}
}

func TestNewReadCacheOptsRejectsUnknownPolicy(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unknown admission policy accepted")
		}
		if msg, _ := r.(string); !strings.Contains(msg, "tinylfu") {
			t.Fatalf("panic message lacks the policy vocabulary: %v", r)
		}
	}()
	inner := &admitInner{m: map[core.Key]core.Value{}}
	NewReadCacheOpts(8, inner, core.Options{CacheAdmission: "lru"})
}

func TestValidAdmission(t *testing.T) {
	for _, ok := range []string{"", AdmitAlways, AdmitTinyLFU, AdmitWindow} {
		if !ValidAdmission(ok) {
			t.Fatalf("ValidAdmission(%q) = false", ok)
		}
	}
	if ValidAdmission("lru") {
		t.Fatal("ValidAdmission accepted lru")
	}
}

// TestMultiGetTTLAndStats drives the batched path through expiry: the
// probe pass must treat an expired entry as a miss (recorded as an
// expiry) and the fill pass must refresh it.
func TestMultiGetTTLAndStats(t *testing.T) {
	var now int64
	inner := &admitInner{m: map[core.Key]core.Value{1: 10, 2: 20}}
	rc := NewReadCacheOpts(64, inner, core.Options{CacheTTL: 100 * time.Nanosecond})
	rc.SetClock(func() int64 { return now })
	c := core.NewCtx(0)

	got := map[core.Key]core.Value{}
	cb := func(keys []core.Key) func(i int, v core.Value, ok bool) {
		return func(i int, v core.Value, ok bool) {
			if ok {
				got[keys[i]] = v
			}
		}
	}
	keys := []core.Key{1, 2}
	rc.MultiGet(c, keys, cb(keys)) // two misses, two fills
	inner.m[1] = 11                // out-of-band change
	now = 100                      // both entries expired
	got = map[core.Key]core.Value{}
	rc.MultiGet(c, keys, cb(keys))
	if got[1] != 11 || got[2] != 20 {
		t.Fatalf("post-expiry MultiGet = %v, want fresh values {1:11 2:20}", got)
	}
	if c.Stats.CacheExpiries != 2 {
		t.Fatalf("expiries = %d, want 2", c.Stats.CacheExpiries)
	}
	got = map[core.Key]core.Value{}
	before := inner.gets
	rc.MultiGet(c, keys, cb(keys)) // refreshed: both hits
	if inner.gets != before || got[1] != 11 {
		t.Fatalf("refresh after batched expiry not served from cache (gets %d → %d, got %v)", before, inner.gets, got)
	}
}
