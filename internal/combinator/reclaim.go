// ReclaimAll (core.Reclaimer) delegation for the composites: a
// combinator can recycle exactly what its parts can. Elastic has no
// ReclaimAll of its own — its resize path retires superseded shard maps
// eagerly instead (see Resize), which is where whole-structure
// reclamation actually pays.
package combinator

import "csds/internal/core"

// ReclaimAll implements core.Reclaimer by delegation to every shard.
func (s *Sharded) ReclaimAll() {
	reclaimParts(s.shards)
}

// ReclaimAll implements core.Reclaimer by delegation to every stripe.
func (s *Striped) ReclaimAll() {
	reclaimParts(s.stripes)
}

// ReclaimAll implements core.Reclaimer by delegation to the inner
// structure (cached rcEntry boxes are plain values; the GC takes them).
func (r *ReadCache) ReclaimAll() {
	if rec, ok := r.inner.(core.Reclaimer); ok {
		rec.ReclaimAll()
	}
}

func reclaimParts(parts []core.Set) {
	for _, p := range parts {
		if r, ok := p.(core.Reclaimer); ok {
			r.ReclaimAll()
		}
	}
}
