package combinator

import "csds/internal/core"

// Sharded hash-partitions the key space over n independent inner
// instances. Every operation touches exactly one shard, chosen by a
// SplitMix64 hash of the key, so shards share no mutable state and the
// composite is linearizable whenever the inner structure is: each
// operation's linearization point is its inner operation's.
//
// Sharding multiplies the paper's structures horizontally: n lazy lists of
// size S/n serve like one list of size S but with 1/n the traversal length
// and 1/n the per-lock contention — the same engineering lever the paper's
// hash table (a lock per bucket) applies at bucket granularity.
type Sharded struct {
	shards []core.Set
	// combiners are the per-shard flat-combining points for contended
	// single-shard write batches (see batch.go); uncontended they cost
	// one trylock and one pointer load per engaged batch, nothing per
	// point op.
	combiners []core.Combiner
}

// NewSharded builds an n-way hash-sharded composite over inner instances.
// The size hints in o describe the composite; each shard receives an n-th.
func NewSharded(n int, inner func(core.Options) core.Set, o core.Options) *Sharded {
	n = clampParts(n)
	so := splitOptions(o, n)
	shards := make([]core.Set, n)
	for i := range shards {
		shards[i] = inner(so)
	}
	return &Sharded{shards: shards, combiners: make([]core.Combiner, n)}
}

// shard routes a key to its instance.
func (s *Sharded) shard(k core.Key) core.Set {
	return s.shards[indexOf(mix64(uint64(k)), len(s.shards))]
}

// Get implements core.Set.
func (s *Sharded) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	return s.shard(k).Get(c, k)
}

// Put implements core.Set.
func (s *Sharded) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	return s.shard(k).Put(c, k, v)
}

// Remove implements core.Set.
func (s *Sharded) Remove(c *core.Ctx, k core.Key) bool {
	return s.shard(k).Remove(c, k)
}

// Len sums the shard sizes (like the inner Lens, quiesced-only).
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Shards exposes the partition width (for tests and stats labeling).
func (s *Sharded) Shards() int { return len(s.shards) }

// Range implements core.Ranger by visiting shards in index order —
// arbitrary key order overall (the partition is hashed).
func (s *Sharded) Range(f func(k core.Key, v core.Value) bool) {
	rangeParts(s.shards, f)
}

// Scan implements core.Scanner by collect-and-merge: every shard
// contributes one atomic sub-snapshot through its own linearizable scan,
// and the union — disjoint by construction, so duplicate-free — replays
// in ascending key order after a sort. Each key's reported state is its
// true state at the instant its shard was scanned, inside the call
// window (segment = shard).
func (s *Sharded) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	return mergeScan(c, s.shards, lo, hi, f)
}

// CursorNext implements core.Cursor by lazy k-way streaming merge over
// the shards' own cursors (core.StreamMergeNext): each shard is pulled
// in small refill chunks (~max/k keys, one atomic sub-snapshot per
// pull) as the heap merge consumes its head, and delivery stops exactly
// at the page budget — a page materializes about one page worth of
// keys, not k pages (the k× overcollect of the old eager merge). A
// single key position still resumes every shard, so tokens carry no
// per-shard state; buffered overshoot is discarded and re-fetched by
// position.
func (s *Sharded) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	next, done, _ := core.StreamMergeNext(c, s.shards, pos, hi, max, nil, f)
	return next, done
}
