package combinator

import "csds/internal/core"

// Striped range-partitions the key space over n inner instances: stripe i
// owns an equal contiguous slice of the partition domain, in order. Like
// Sharded, each operation touches exactly one stripe and inherits its
// linearization point from the inner operation; unlike Sharded the
// partition preserves key order, which keeps spatial locality (adjacent
// keys share a stripe) and leaves the door open to ordered iteration and
// range operations over stripes in sequence.
//
// The partition domain matters: the paper's workloads draw dense keys
// from [1, KeySpace], so dividing the whole int64 line would funnel
// every real key into one stripe. The domain is therefore
// [0, Options.KeySpan) when that hint is set (the harness fills it from
// the workload's key space), else [0, 2*ExpectedSize) (the paper's
// KeySpace convention), and keys outside it clamp to the first/last
// stripe (still a total, order-preserving map over all of int64).
// Without either hint the domain falls back to the full signed range.
//
// The name follows lock striping: where a striped lock array partitions a
// lock's protection domain, this partitions the structure itself.
type Striped struct {
	stripes []core.Set
	lo      core.Key
	per     uint64 // domain width per stripe
}

// NewStriped builds an n-way range-partitioned composite over inner
// instances. Size hints in o describe the composite and set the
// partition domain; under the paper's workloads each stripe then
// receives about an n-th of the keys. A width wider than the domain
// itself would leave trailing stripes permanently unreachable (with
// span < n each of the span keys maps to its own stripe and the rest
// never route), so the effective width is clamped to the span;
// Stripes reports the clamped width.
func NewStriped(n int, inner func(core.Options) core.Set, o core.Options) *Striped {
	n = clampParts(n)
	lo, hi := core.Key(core.KeyMin), core.Key(core.KeyMax)
	switch {
	case o.KeySpan > 0:
		lo, hi = 0, o.KeySpan
	case o.ExpectedSize > 0:
		lo, hi = 0, core.Key(2*o.ExpectedSize)
	}
	span := uint64(hi) - uint64(lo) // exact even without overflow
	if span < uint64(n) {
		n = int(span)
	}
	per := (span-1)/uint64(n) + 1 // ceil(span/n), overflow-safe
	so := splitOptions(o, n)
	stripes := make([]core.Set, n)
	for i := range stripes {
		stripes[i] = inner(so)
	}
	return &Striped{stripes: stripes, lo: lo, per: per}
}

// stripeIndex maps a key to its stripe: a clamped linear map from the
// partition domain onto stripe indices, monotone over the whole signed
// key range.
func (s *Striped) stripeIndex(k core.Key) int {
	if k < s.lo {
		return 0
	}
	idx := int((uint64(k) - uint64(s.lo)) / s.per)
	if idx >= len(s.stripes) {
		idx = len(s.stripes) - 1
	}
	return idx
}

// stripe routes a key to its instance.
func (s *Striped) stripe(k core.Key) core.Set {
	return s.stripes[s.stripeIndex(k)]
}

// Get implements core.Set.
func (s *Striped) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	return s.stripe(k).Get(c, k)
}

// Put implements core.Set.
func (s *Striped) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	return s.stripe(k).Put(c, k, v)
}

// Remove implements core.Set.
func (s *Striped) Remove(c *core.Ctx, k core.Key) bool {
	return s.stripe(k).Remove(c, k)
}

// Len sums the stripe sizes (quiesced-only, like the inner Lens).
func (s *Striped) Len() int {
	n := 0
	for _, st := range s.stripes {
		n += st.Len()
	}
	return n
}

// Stripes exposes the effective partition width (the requested width,
// clamped to the partition domain's span).
func (s *Striped) Stripes() int { return len(s.stripes) }

// Range implements core.Ranger by visiting stripes in partition order, so
// when the inner structures are ordered the whole iteration is in
// ascending key order.
func (s *Striped) Range(f func(k core.Key, v core.Value) bool) {
	rangeParts(s.stripes, f)
}

// Scan implements core.Scanner — the payoff of the order-preserving
// partition: only the stripes whose key slice intersects [lo, hi) are
// visited, in partition order, each through its own linearizable scan.
// The monotone routing makes the concatenation ascending whenever the
// inner structures are ordered, no merge needed; each stripe is one
// atomic sub-snapshot, so every reported state is true at some instant
// inside the call (segment = stripe). Early stop propagates across
// stripe boundaries.
func (s *Striped) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	for i, last := s.stripeIndex(lo), s.stripeIndex(hi-1); i <= last; i++ {
		if !s.stripes[i].(core.Scanner).Scan(c, lo, hi, f) {
			return false
		}
	}
	return true
}

// CursorNext implements core.Cursor by cross-stripe streaming drain
// (core.StreamDrainNext) — the order-preserving payoff again: the token
// position routes straight to its stripe, stripes before it are never
// touched, and the page pulls stripes in partition order through
// bounded streams until the budget fills. Each pull is one atomic
// sub-snapshot of its stripe, the concatenation is ascending because
// the routing is monotone, and no merge or overshoot is needed.
func (s *Striped) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	first, last := s.stripeIndex(pos), s.stripeIndex(hi-1)
	return core.StreamDrainNext(c, s.stripes[first:last+1], pos, hi, max, f)
}
