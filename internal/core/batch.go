// Batched-operation layer of the set abstraction: the Batcher optional
// interface and the shared helpers behind every structure's amortized
// multi-key paths.
//
// The paper's thesis is that throughput is governed by how much
// synchronization each operation pays on the hot path; a caller that
// logically operates on many keys at once should not pay a full guard
// bracket, shard-map load and lock epoch *per key*. Batcher is the
// synchronization-amortization counterpart of the Cursor extension:
// where cursors amortize scan collection over pages, batches amortize
// write/read synchronization over key groups. Composites group a batch
// by destination and cross each shard/stripe boundary once; leaf
// structures sort the batch and traverse once, resuming the search from
// the previous key's position instead of restarting at the head.
package core

import (
	"sort"
	"sync"
)

// KV is one key/value pair of a batched Put.
type KV struct {
	K Key
	V Value
}

// Batcher is the optional batched-operation extension of Set,
// implemented by every structure and combinator in this module.
//
// Each method applies one operation per element of the batch and
// reports every element's outcome through the per-key callback f, which
// is invoked exactly once per index, in caller (ascending index) order,
// with the same result the corresponding point operation would have
// returned. A zero-length batch is a no-op (f is never called). f must
// not call back into the same structure (batched paths may hold
// internal brackets across the replay).
//
// Consistency — per-batch, not cross-batch, linearizability: every
// element's operation linearizes individually at some instant inside
// the Multi* call, exactly as the equivalent point operation would
// inside its own call window. The batch as a whole is NOT an atomic
// multi-key transaction: two elements of one batch may be separated by
// concurrent operations of other threads. Duplicate keys inside one
// batch behave as if their operations executed in ascending index
// order (the first Put of a duplicate key inserts, the second finds it
// present), so on a quiescent structure a batch is indistinguishable
// from the equivalent loop of point operations.
type Batcher interface {
	// MultiGet looks up every key of keys; f receives (index, value,
	// present) per element.
	MultiGet(c *Ctx, keys []Key, f func(i int, v Value, ok bool))
	// MultiPut inserts every absent pair of pairs; f receives (index,
	// inserted) per element. Like Put, an existing entry is never
	// overwritten.
	MultiPut(c *Ctx, pairs []KV, f func(i int, inserted bool))
	// MultiRemove deletes every present key of keys; f receives
	// (index, removed) per element.
	MultiRemove(c *Ctx, keys []Key, f func(i int, removed bool))
}

// BatchScratch recycles the transient buffers of one batched call:
// the order/grouping index arrays, the result-replay buffers, and the
// per-destination sub-batches. All of them die when the Multi* call
// returns, which under a batch-heavy workload left the allocator as
// the dominant per-batch cost; carving them from a pooled arena makes
// the steady-state batch path allocation-free. Take one scratch per
// call and Release it on return — calls nest safely (a composite's
// inner structure takes its own scratch from the pool).
//
// Every carve is zeroed, so a carved slice behaves exactly like a
// fresh make. Release invalidates every slice carved from the scratch;
// none of them may escape the call (the Batcher callback contract
// already forbids retaining batch internals).
type BatchScratch struct {
	ints  []int
	keys  []Key
	kvs   []KV
	vals  []Value
	bools []bool
}

var batchScratchPool = sync.Pool{New: func() any { return new(BatchScratch) }}

// GetBatchScratch takes a scratch arena from the pool.
func GetBatchScratch() *BatchScratch { return batchScratchPool.Get().(*BatchScratch) }

// Release returns the scratch to the pool, invalidating every slice
// carved from it.
func (s *BatchScratch) Release() {
	s.ints = s.ints[:0]
	s.keys = s.keys[:0]
	s.kvs = s.kvs[:0]
	s.vals = s.vals[:0]
	s.bools = s.bools[:0]
	batchScratchPool.Put(s)
}

// carve extends arena a by a zeroed length-n slice and returns it
// full-capacity-clipped, so successive carves are disjoint. When the
// arena must grow, a fresh backing array is taken and earlier carves
// simply keep the old one alive until Release.
func carve[T any](a []T, n int) ([]T, []T) {
	if cap(a)-len(a) < n {
		a = make([]T, 0, 2*(len(a)+n))
	}
	used := len(a)
	a = a[:used+n]
	out := a[used : used+n : used+n]
	clear(out)
	return a, out
}

// Ints carves a zeroed length-n int slice from the scratch.
func (s *BatchScratch) Ints(n int) (out []int) { s.ints, out = carve(s.ints, n); return }

// Keys carves a zeroed length-n Key slice from the scratch.
func (s *BatchScratch) Keys(n int) (out []Key) { s.keys, out = carve(s.keys, n); return }

// KVs carves a zeroed length-n KV slice from the scratch.
func (s *BatchScratch) KVs(n int) (out []KV) { s.kvs, out = carve(s.kvs, n); return }

// Vals carves a zeroed length-n Value slice from the scratch.
func (s *BatchScratch) Vals(n int) (out []Value) { s.vals, out = carve(s.vals, n); return }

// Bools carves a zeroed length-n bool slice from the scratch.
func (s *BatchScratch) Bools(n int) (out []bool) { s.bools, out = carve(s.bools, n); return }

// OrderInto fills ord with the indices 0..len(ord)-1 ordered by
// ascending key, stably: duplicate keys keep their caller order, which
// is what makes a sorted application sequentially equivalent to the
// index-order loop of point operations (Batcher's duplicate-key
// contract). Small batches — the common case — use an in-place stable
// insertion sort so ordering allocates nothing; larger ones fall back
// to sort.SliceStable, whose O(n log n) beats the quadratic insertion
// cost long before its two closure allocations matter.
func OrderInto(ord []int, key func(int) Key) {
	for i := range ord {
		ord[i] = i
	}
	if len(ord) <= 128 {
		for i := 1; i < len(ord); i++ {
			v, kv := ord[i], key(ord[i])
			j := i
			for j > 0 && key(ord[j-1]) > kv {
				ord[j] = ord[j-1]
				j--
			}
			ord[j] = v
		}
		return
	}
	sort.SliceStable(ord, func(a, b int) bool { return key(ord[a]) < key(ord[b]) })
}

// BatchOrder returns the batch indices 0..n-1 ordered by ascending key
// (see OrderInto), in a freshly allocated slice.
func BatchOrder(n int, key func(int) Key) []int {
	ord := make([]int, n)
	OrderInto(ord, key)
	return ord
}

// KeyOrder is BatchOrder over a key slice.
func KeyOrder(keys []Key) []int {
	return BatchOrder(len(keys), func(i int) Key { return keys[i] })
}

// PairOrder is BatchOrder over a pair slice.
func PairOrder(pairs []KV) []int {
	return BatchOrder(len(pairs), func(i int) Key { return pairs[i].K })
}

// LoopMultiGet implements MultiGet as a loop of point Gets — the
// fallback for structures whose point read is already O(1)-ish (hash
// tables) and for foreign Sets wrapped by AsBatcher.
func LoopMultiGet(c *Ctx, s Set, keys []Key, f func(i int, v Value, ok bool)) {
	for i, k := range keys {
		v, ok := s.Get(c, k)
		f(i, v, ok)
	}
}

// LoopMultiPut implements MultiPut as a loop of point Puts.
func LoopMultiPut(c *Ctx, s Set, pairs []KV, f func(i int, inserted bool)) {
	for i, p := range pairs {
		f(i, s.Put(c, p.K, p.V))
	}
}

// LoopMultiRemove implements MultiRemove as a loop of point Removes.
func LoopMultiRemove(c *Ctx, s Set, keys []Key, f func(i int, removed bool)) {
	for i, k := range keys {
		f(i, s.Remove(c, k))
	}
}

// SortedMultiGet applies point Gets in ascending key order and replays
// the results in caller order — the locality-amortized path for ordered
// structures whose point search is already logarithmic (skip lists,
// BSTs): consecutive sorted keys descend through largely the same upper
// levels, so the sort buys branch and cache locality even without a
// bespoke resumed traversal.
func SortedMultiGet(c *Ctx, s Set, keys []Key, f func(i int, v Value, ok bool)) {
	sc := GetBatchScratch()
	defer sc.Release()
	ord := sc.Ints(len(keys))
	OrderInto(ord, func(i int) Key { return keys[i] })
	vals := sc.Vals(len(keys))
	oks := sc.Bools(len(keys))
	for _, i := range ord {
		vals[i], oks[i] = s.Get(c, keys[i])
	}
	for i := range keys {
		f(i, vals[i], oks[i])
	}
}

// SortedMultiPut applies point Puts in ascending key order (stable, so
// duplicate keys resolve in caller order) and replays results in caller
// order.
func SortedMultiPut(c *Ctx, s Set, pairs []KV, f func(i int, inserted bool)) {
	sc := GetBatchScratch()
	defer sc.Release()
	ord := sc.Ints(len(pairs))
	OrderInto(ord, func(i int) Key { return pairs[i].K })
	res := sc.Bools(len(pairs))
	for _, i := range ord {
		res[i] = s.Put(c, pairs[i].K, pairs[i].V)
	}
	for i := range res {
		f(i, res[i])
	}
}

// SortedMultiRemove applies point Removes in ascending key order and
// replays results in caller order.
func SortedMultiRemove(c *Ctx, s Set, keys []Key, f func(i int, removed bool)) {
	sc := GetBatchScratch()
	defer sc.Release()
	ord := sc.Ints(len(keys))
	OrderInto(ord, func(i int) Key { return keys[i] })
	res := sc.Bools(len(keys))
	for _, i := range ord {
		res[i] = s.Remove(c, keys[i])
	}
	for i := range res {
		f(i, res[i])
	}
}

// loopBatcher adapts a plain Set to Batcher through point-op loops.
type loopBatcher struct{ s Set }

func (b loopBatcher) MultiGet(c *Ctx, keys []Key, f func(i int, v Value, ok bool)) {
	LoopMultiGet(c, b.s, keys, f)
}
func (b loopBatcher) MultiPut(c *Ctx, pairs []KV, f func(i int, inserted bool)) {
	LoopMultiPut(c, b.s, pairs, f)
}
func (b loopBatcher) MultiRemove(c *Ctx, keys []Key, f func(i int, removed bool)) {
	LoopMultiRemove(c, b.s, keys, f)
}

// AsBatcher returns s's batched paths, wrapping plain Sets in the
// generic loop adapter — combinators delegate sub-batches through this,
// so a composite over a foreign Set still satisfies the Batcher
// contract (without the amortization).
func AsBatcher(s Set) Batcher {
	if b, ok := s.(Batcher); ok {
		return b
	}
	return loopBatcher{s}
}

// RecordBatch forwards a completed batch's size and wall time,
// tolerating nil (batches keep their own counters, like scans and
// pages, so the paper's point-op metrics stay unpolluted).
func (c *Ctx) RecordBatch(keys int, ns uint64) {
	if c != nil && c.Stats != nil {
		c.Stats.RecordBatch(keys, ns)
	}
}

// RecordCombined notes that this worker's batch was applied through a
// flat-combining publication list, tolerating nil.
func (c *Ctx) RecordCombined() {
	if c != nil && c.Stats != nil {
		c.Stats.RecordCombined()
	}
}
