// Flat combining for contended single-destination batches — the
// generalization of the queuestack hot-spot experiment into a reusable
// core facility.
//
// When many threads aim write batches at the same shard, having each
// thread fight for the shard's locks serializes them anyway — but with
// every thread paying its own synchronization. Flat combining (Hendler,
// Incze, Shavit, Tzafrir, SPAA 2010) inverts the deal: threads that
// lose the combiner lock publish their batch on a lock-free list and
// park; the winner applies *all* published batches inside one
// amortized bracket, so the synchronization cost of the collision is
// paid once instead of once per thread. The paper's thesis in one
// mechanism: contention converted into amortization.
package core

import (
	"runtime"
	"sync/atomic"

	"csds/internal/locks"
)

// BatchOp enumerates the batched write kinds a Combiner can apply.
type BatchOp uint8

const (
	// BatchPut applies pairs as MultiPut.
	BatchPut BatchOp = iota
	// BatchRemove applies pairs' keys as MultiRemove (values ignored).
	BatchRemove
)

// combineStallSpins is how many failed spins a parked loser tolerates
// before recording a combine stall (~milliseconds of Gosched-yielding
// waiting; a healthy drain completes in microseconds).
const combineStallSpins = 1 << 16

// combineReq is one published batch awaiting a combiner. The owner
// spins on done (release-stored by whichever thread applies the batch,
// acquire-loaded by the owner) and owns res again once done is set.
type combineReq struct {
	next  *combineReq // publication-list link; immutable after push
	op    BatchOp
	pairs []KV
	res   []bool
	done  atomic.Bool
}

// CombineApply applies one homogeneous batch (all BatchPut or all
// BatchRemove) under whatever bracket the owner structure uses; res[i]
// receives element i's outcome. A combiner passes the concatenation of
// all published batches of one kind, so one apply call amortizes the
// bracket over every colliding thread's keys.
type CombineApply func(c *Ctx, op BatchOp, pairs []KV, res []bool)

// Combiner is a flat-combining point for write batches aimed at one
// destination (typically one shard). The zero value is ready to use.
//
// Uncontended, Run costs one TryAcquire, one publication-list load and
// one Release on top of the apply itself — there is no publication,
// no allocation and no parking unless the lock is already held.
type Combiner struct {
	mu   locks.TAS
	head atomic.Pointer[combineReq]
}

// Run applies the batch (op, pairs) through the combining protocol and
// fills res (len(res) must equal len(pairs)). If the combiner lock is
// free the batch is applied directly; otherwise the batch is published
// and either a concurrent winner applies it inside its own bracket or
// this thread wins a later round and drains the whole publication list
// itself. Batches that travel through the publication list are counted
// by their owning thread via Ctx.RecordCombined.
func (cb *Combiner) Run(c *Ctx, op BatchOp, pairs []KV, res []bool, apply CombineApply) {
	if cb.mu.TryAcquire(nil) {
		// Fast path: the destination is uncontended. Apply directly, then
		// serve any losers that published while we held the lock.
		apply(c, op, pairs, res)
		cb.drain(c, apply)
		cb.mu.Release()
		return
	}
	req := &combineReq{op: op, pairs: pairs, res: res}
	for {
		old := cb.head.Load()
		req.next = old
		if cb.head.CompareAndSwap(old, req) {
			break
		}
	}
	for spins := 0; ; spins++ {
		if req.done.Load() {
			c.RecordCombined()
			return
		}
		if spins == combineStallSpins {
			// The winner has held the lock for a conspicuously long time
			// with our batch unapplied — it may be wedged (a stall with
			// the lock held, the §5.4 adversary). We cannot proceed (the
			// winner may be mid-apply on these keys) and may not break
			// the lock; record the stall so watchdogs and audits see it,
			// and keep waiting. Reclamation liveness is the EBR
			// watchdog's job: the winner holds an epoch bracket, so a
			// truly wedged winner is also a Blocked() record.
			if t := c.Stat(); t != nil {
				t.RecordCombineStall()
			}
		}
		if cb.mu.TryAcquire(nil) {
			cb.drain(c, apply)
			cb.mu.Release()
			// Our own request was on the list, so the drain applied it
			// (unless an earlier winner already had).
			if !req.done.Load() {
				panic("csds: combiner drain left own request unapplied")
			}
			c.RecordCombined()
			return
		}
		if spins%8 == 7 {
			runtime.Gosched()
		}
	}
}

// drain swaps out the publication list and applies everything on it,
// one concatenated apply call per op kind, scattering results back to
// each request before release-storing its done flag.
func (cb *Combiner) drain(c *Ctx, apply CombineApply) {
	head := cb.head.Swap(nil)
	if head == nil {
		return
	}
	// The Treiber push order is reverse-arrival; reverse again so the
	// concatenation applies batches roughly in arrival order (any order
	// is linearizable — every owner is parked — but arrival order keeps
	// the combined application fair).
	var reqs []*combineReq
	for r := head; r != nil; r = r.next {
		reqs = append(reqs, r)
	}
	for i, j := 0, len(reqs)-1; i < j; i, j = i+1, j-1 {
		reqs[i], reqs[j] = reqs[j], reqs[i]
	}
	cb.drainKind(c, apply, reqs, BatchPut)
	cb.drainKind(c, apply, reqs, BatchRemove)
}

// drainKind concatenates all published batches of one kind into a
// single apply call and scatters the results.
func (cb *Combiner) drainKind(c *Ctx, apply CombineApply, reqs []*combineReq, op BatchOp) {
	var group []*combineReq
	total := 0
	for _, r := range reqs {
		if r.op == op {
			group = append(group, r)
			total += len(r.pairs)
		}
	}
	if len(group) == 0 {
		return
	}
	if len(group) == 1 {
		r := group[0]
		apply(c, op, r.pairs, r.res)
		r.done.Store(true)
		return
	}
	cat := make([]KV, 0, total)
	for _, r := range group {
		cat = append(cat, r.pairs...)
	}
	res := make([]bool, total)
	apply(c, op, cat, res)
	off := 0
	for _, r := range group {
		copy(r.res, res[off:off+len(r.pairs)])
		off += len(r.pairs)
		r.done.Store(true)
	}
}
