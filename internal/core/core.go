// Package core defines the concurrent-search-data-structure abstraction of
// the paper (Section 2.2) — the set interface with get/put/remove — plus
// the per-thread execution context every algorithm in this repository
// operates under, and a layered algorithm factory: a registry mapping
// algorithm names to constructors (registry.go) and, on top of it, a
// composite-specification grammar with structure combinators such as
// sharded(16,list/lazy) (spec.go).
//
// A Ctx plays the role of ASCYLIB's thread-local initialization: Go has no
// thread-local storage and goroutines migrate between OS threads, so the
// per-thread pieces (PRNG stream, statistics slot, HTM doom flag, EBR
// record, critical-section hook) travel explicitly with each call.
package core

import (
	"math"
	"time"

	"csds/internal/ebr"
	"csds/internal/fault"
	"csds/internal/htm"
	"csds/internal/stats"
	"csds/internal/xrand"
)

// Key is the 64-bit key type of the paper's workloads. The extreme values
// math.MinInt64 and math.MaxInt64 are reserved for the sentinel nodes of
// list-based structures and must not be inserted.
type Key = int64

// Value is the 64-bit value type; the paper notes larger values are handled
// by storing pointers, which is exactly what a Go interface value or
// pointer-sized payload would do.
type Value = int64

// Sentinel keys (reserved).
const (
	KeyMin Key = math.MinInt64
	KeyMax Key = math.MaxInt64
)

// Set is the search data structure interface: "a simple base interface,
// consisting of three operations" (§2.2). All implementations in this
// module are linearizable.
type Set interface {
	// Get returns the value associated with k, if present.
	Get(c *Ctx, k Key) (Value, bool)
	// Put inserts (k, v) if k is absent and reports whether it inserted;
	// it does not overwrite an existing entry (the paper's semantics).
	Put(c *Ctx, k Key, v Value) bool
	// Remove deletes k's entry and reports whether it was present.
	Remove(c *Ctx, k Key) bool
	// Len counts the elements; linear and not linearizable with respect
	// to concurrent updates — intended for quiesced verification.
	Len() int
}

// Ranger is an optional Set extension: iteration over the current
// mappings. Ordered structures (lists, skip lists, BSTs, range
// partitions) visit keys in ascending order; hash-partitioned structures
// visit them in arbitrary order. Iteration stops early when f returns
// false. Like Len, Range is linear and not linearizable with respect to
// concurrent updates — it is intended for quiesced verification and for
// migration of frozen partitions (elastic resharding), where the caller
// guarantees no concurrent writers.
type Ranger interface {
	Range(f func(k Key, v Value) bool)
}

// Resizable is an optional Set extension implemented by elastic
// composites: the partition width can be changed online, concurrently
// with readers and writers, without losing linearizability.
type Resizable interface {
	// Resize repartitions the structure over width inner instances. It
	// serializes with other resizes; reads and writes proceed
	// concurrently (writes to a shard being migrated briefly wait, and
	// that wait surfaces in c's lock-wait metrics).
	Resize(c *Ctx, width int) error
	// Width reports the current partition width.
	Width() int
}

// Ctx is the per-worker context. Exactly one goroutine may use a Ctx at a
// time.
type Ctx struct {
	// ID is the worker index (0-based).
	ID int
	// Rng is the worker's private generator.
	Rng *xrand.Rng
	// Stats is the worker's metric slot; may be nil (no recording).
	Stats *stats.Thread
	// Doom is the worker's HTM abort flag; may be nil.
	Doom *htm.Doom
	// Epoch is the worker's EBR record; may be nil (GC-only reclamation).
	Epoch *ebr.Record
	// CSHook, when non-nil, is invoked by blocking write phases while
	// their locks are held (interrupt injection point, Figure 9).
	CSHook func()
	// Fault is the worker's deterministic fault injector; nil means no
	// faults. Structure and combinator code consults it only through the
	// Fault* helpers below, which tolerate nil at every level.
	Fault *fault.Injector
	// SkipCacheFill, when set, tells read-through caches not to admit new
	// entries on miss (served hits are unaffected) — the server's degraded
	// mode flips it under sustained overload so misses stop paying the
	// fill lock on top of the inner traversal.
	SkipCacheFill bool
}

// NewCtx builds a self-contained context for worker id, with its own RNG
// stream and stats slot. Harness code usually builds Ctxs by hand to point
// Stats at a shared slice; this constructor serves examples and tests.
func NewCtx(id int) *Ctx {
	return &Ctx{
		ID:    id,
		Rng:   xrand.New(uint64(id)*0x9e3779b97f4a7c15 + 1),
		Stats: &stats.Thread{},
		Doom:  &htm.Doom{},
	}
}

// Stat returns the stats slot, tolerating a nil context.
func (c *Ctx) Stat() *stats.Thread {
	if c == nil {
		return nil
	}
	return c.Stats
}

// InCS fires the critical-section hook, tolerating nil.
func (c *Ctx) InCS() {
	if c != nil && c.CSHook != nil {
		c.CSHook()
	}
}

// FaultFire draws fault point pt and reports whether it fires, tolerating
// a nil context and a nil injector.
func (c *Ctx) FaultFire(pt fault.Point) bool {
	return c != nil && c.Fault.Fire(pt)
}

// FaultDelay draws fault point pt and busy-spins for the drawn duration
// when it fires, tolerating nil.
func (c *Ctx) FaultDelay(pt fault.Point) {
	if c != nil {
		c.Fault.Delay(pt)
	}
}

// RecordRestarts forwards an operation's restart count, tolerating nil.
func (c *Ctx) RecordRestarts(n int) {
	if c != nil && c.Stats != nil {
		c.Stats.RecordRestarts(n)
	}
}

// EpochEnter begins an EBR critical region if a record is attached.
func (c *Ctx) EpochEnter() {
	if c != nil && c.Epoch != nil {
		c.Epoch.Enter()
	}
}

// EpochExit ends the EBR critical region.
func (c *Ctx) EpochExit() {
	if c != nil && c.Epoch != nil {
		c.Epoch.Exit()
	}
}

// Retire hands an unlinked node to EBR (no-op without a record: the GC
// reclaims it). fn, when non-nil, runs once the node's grace period has
// elapsed — the structure's reclaim callback, which poisons the node and
// returns it to its typed Pool. A nil fn leaves reclamation to the GC
// (the deliberate mode for nodes that may still be referenced through
// helping descriptors; see DESIGN.md).
func (c *Ctx) Retire(ptr any, fn func(any)) {
	if c != nil && c.Epoch != nil {
		if fn != nil && c.Fault.Fire(fault.RetireDelay) {
			// Chaos plane: the reclaim callback runs late (at reclaim
			// time, wherever the flush happens), not the retirement.
			d, inner := c.Fault.Duration(fault.RetireDelay), fn
			fn = func(p any) { fault.Spin(d); inner(p) }
		}
		c.Epoch.Retire(ptr, fn)
		if c.Stats != nil {
			c.Stats.Retires++
		}
	}
}

// Pooled reports whether this context runs in EBR + pooling mode:
// structures consult it (via their own pooled flag or directly) before
// recycling buffers whose safety does not depend on EBR, so the GC-only
// ablation stays a true no-pooling baseline.
func (c *Ctx) Pooled() bool { return c != nil && c.Epoch != nil }

// Options configures a constructor. The zero value is a sensible default
// (locking mode, no EBR, structure-specific defaults).
type Options struct {
	// ElideAttempts enables HTM lock elision with this speculation budget
	// when > 0 (the paper's TSX experiments use 5).
	ElideAttempts int
	// Buckets sets a hash table's bucket count; 0 derives it from
	// ExpectedSize at load factor 1 (the paper's configuration).
	Buckets int
	// ExpectedSize hints the steady-state element count (hash sizing,
	// skip-list level bound).
	ExpectedSize int
	// KeySpan hints the exclusive upper bound of the dense key domain
	// workloads draw from ([0, KeySpan)); 0 derives 2*ExpectedSize (the
	// paper's key-space convention). Range-partitioning combinators use
	// it as their partition domain.
	KeySpan Key
	// MaxLevel caps skip-list height; 0 derives it from ExpectedSize.
	MaxLevel int
	// Domain, when non-nil, makes Remove retire unlinked nodes through
	// contexts that carry an EBR record of this domain.
	Domain *ebr.Domain
	// CacheTTL bounds the staleness of read-through cache entries (the
	// readcache combinator): entries older than this are never served and
	// are refreshed in place on the next get. 0 disables expiry. Updates
	// through the cache invalidate immediately regardless — TTL matters
	// when the inner structure is also mutated out of band (a replica
	// applying remote writes).
	CacheTTL time.Duration
	// CacheAdmission names the read-through cache's admission policy:
	// "always" (default, every miss fills), "tinylfu" (frequency-sketch
	// admission: a miss only displaces the cached entry if the new key has
	// been seen at least as often in the recent window), or "window" (a
	// doorkeeper: only a second miss for the same key within the window
	// admits — one-touch traffic such as scans never evicts a hot entry).
	CacheAdmission string
}

// Region builds the htm.Region for these options (Attempts 0 = plain
// locking).
func (o Options) Region() htm.Region { return htm.Region{Attempts: o.ElideAttempts} }
