package core

import (
	"testing"

	"csds/internal/ebr"
	"csds/internal/stats"
)

// fakeSet is a registry fixture.
type fakeSet struct{ n int }

func (f *fakeSet) Get(c *Ctx, k Key) (Value, bool) { return 0, false }
func (f *fakeSet) Put(c *Ctx, k Key, v Value) bool { f.n++; return true }
func (f *fakeSet) Remove(c *Ctx, k Key) bool       { return false }
func (f *fakeSet) Len() int                        { return f.n }

func TestRegisterLookup(t *testing.T) {
	Register(Info{
		Name: "test/fake", Kind: "testkind", Progress: "blocking",
		New: func(o Options) Set { return &fakeSet{} },
	})
	info, ok := Lookup("test/fake")
	if !ok || info.Kind != "testkind" {
		t.Fatalf("lookup failed: %+v ok=%v", info, ok)
	}
	if _, ok := Lookup("test/absent"); ok {
		t.Fatal("phantom lookup succeeded")
	}
	found := false
	for _, n := range Names() {
		if n == "test/fake" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() missing registered algorithm")
	}
	if len(ByKind("testkind")) != 1 {
		t.Fatal("ByKind failed")
	}
	if _, ok := Featured("testkind"); ok {
		t.Fatal("non-featured kind reported a featured algorithm")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(Info{Name: "test/dup", New: func(o Options) Set { return &fakeSet{} }})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Info{Name: "test/dup", New: func(o Options) Set { return &fakeSet{} }})
}

func TestRegisterInvalidPanics(t *testing.T) {
	for _, info := range []Info{{Name: "", New: func(o Options) Set { return nil }}, {Name: "x/y"}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid Register(%+v) did not panic", info)
				}
			}()
			Register(info)
		}()
	}
}

func TestByKindSortedAndFiltered(t *testing.T) {
	mk := func(o Options) Set { return &fakeSet{} }
	Register(Info{Name: "test/bk-b", Kind: "bykind", New: mk})
	Register(Info{Name: "test/bk-a", Kind: "bykind", New: mk})
	Register(Info{Name: "test/bk-c", Kind: "otherkind", New: mk})
	got := ByKind("bykind")
	if len(got) != 2 || got[0].Name != "test/bk-a" || got[1].Name != "test/bk-b" {
		t.Fatalf("ByKind not filtered+sorted: %+v", got)
	}
	if len(ByKind("kindless")) != 0 {
		t.Fatal("ByKind of unknown kind not empty")
	}
}

func TestFeaturedAmongSeveral(t *testing.T) {
	mk := func(o Options) Set { return &fakeSet{} }
	Register(Info{Name: "test/fs-plain", Kind: "fskind", New: mk})
	Register(Info{Name: "test/fs-star", Kind: "fskind", Featured: true, New: mk})
	Register(Info{Name: "test/fs-other", Kind: "fskind", New: mk})
	info, ok := Featured("fskind")
	if !ok || info.Name != "test/fs-star" {
		t.Fatalf("Featured among several = %+v, %v", info, ok)
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() unsorted at %d: %v", i, names)
		}
	}
}

func TestFeaturedFindsFlag(t *testing.T) {
	Register(Info{Name: "test/feat", Kind: "featkind", Featured: true,
		New: func(o Options) Set { return &fakeSet{} }})
	info, ok := Featured("featkind")
	if !ok || info.Name != "test/feat" {
		t.Fatalf("Featured = %+v, %v", info, ok)
	}
}

func TestNilCtxSafety(t *testing.T) {
	var c *Ctx
	if c.Stat() != nil {
		t.Fatal("nil ctx Stat() not nil")
	}
	c.InCS()                  // must not panic
	c.RecordRestarts(3)       // must not panic
	c.EpochEnter()            // must not panic
	c.EpochExit()             // must not panic
	c.Retire("whatever", nil) // must not panic
}

func TestCtxHelpers(t *testing.T) {
	c := NewCtx(7)
	if c.ID != 7 || c.Rng == nil || c.Stats == nil || c.Doom == nil {
		t.Fatalf("NewCtx incomplete: %+v", c)
	}
	fired := 0
	c.CSHook = func() { fired++ }
	c.InCS()
	if fired != 1 {
		t.Fatal("InCS did not fire hook")
	}
	c.RecordRestarts(2)
	if c.Stats.RestartedOps[2] != 1 {
		t.Fatal("RecordRestarts did not forward")
	}
}

func TestCtxEpochIntegration(t *testing.T) {
	dom := ebr.NewDomain()
	c := NewCtx(0)
	c.Epoch = dom.Register()
	c.EpochEnter()
	if !c.Epoch.Active() {
		t.Fatal("EpochEnter did not activate record")
	}
	c.Retire("x", nil)
	c.EpochExit()
	if c.Epoch.Active() {
		t.Fatal("EpochExit left record active")
	}
	retired, _ := dom.Stats()
	if retired != 1 {
		t.Fatalf("retired = %d", retired)
	}
}

func TestOptionsRegion(t *testing.T) {
	if r := (Options{}).Region(); r.Attempts != 0 {
		t.Fatalf("default region attempts = %d", r.Attempts)
	}
	if r := (Options{ElideAttempts: 5}).Region(); r.Attempts != 5 {
		t.Fatalf("elide region attempts = %d", r.Attempts)
	}
}

func TestCtxStatsFlow(t *testing.T) {
	c := NewCtx(1)
	var th stats.Thread
	c.Stats = &th
	c.RecordRestarts(0)
	c.RecordRestarts(1)
	if th.RestartedOps[0] != 1 || th.RestartedOps[1] != 1 {
		t.Fatalf("stats flow broken: %+v", th.RestartedOps)
	}
}

func TestSentinelConstants(t *testing.T) {
	if KeyMin >= KeyMax {
		t.Fatal("sentinel ordering broken")
	}
	if KeyMin != -9223372036854775808 || KeyMax != 9223372036854775807 {
		t.Fatal("sentinels are not the int64 extremes")
	}
}
