// Paginated-iteration layer of the set abstraction: the Cursor optional
// interface, the opaque resume-token codec, and the page-collect
// machinery shared by every structure's cursor protocol.
//
// One-shot scans (scan.go) answer "what is in [lo, hi) right now?"; real
// services page: a feed request returns 50 items and a token, the next
// request resumes from the token. The contract here is built for that
// shape:
//
//   - bounded batches: each Next visits at most max mappings and returns
//     a resume position, so page cost is proportional to the page (plus
//     the structure's own traversal-to-position cost), never to the
//     whole range;
//   - no pinned state: the token is a pure key position. Nothing is held
//     server-side between calls — no snapshot retained, no lock held, no
//     epoch pinned — so tokens survive arbitrary churn, process
//     restarts, and (on elastic composites) any number of resizes;
//   - per-batch linearizability: every page is one atomic sub-snapshot
//     of its key window, produced by the same guard/snapshot/epoch
//     protocols the one-shot scans use. Consecutive pages observe the
//     structure at different instants — that is inherent to pagination
//     without pinning — but pages cover disjoint, ascending key windows,
//     so a paginated iteration never reports a key twice, and any key
//     that is continuously present (absent) for the whole iteration is
//     reported exactly once (never);
//   - ascending key order everywhere, including the hash tables: a page
//     must define "what comes after it", and key order is the only
//     resumable order a churning hash table can offer (bucket positions
//     shift under updates; keys do not). The hash tables serve that
//     order from their ordered key index (a sorted shadow maintained
//     under the same write brackets), so a page costs O(page + log n),
//     never O(table).
//
// Page collects record how much they materialize (pulls and pulled keys,
// overshoot and retries included) into the cursor pull counters, so the
// page-cost contract — O(page), not O(structure) or O(k·page) — is
// measurable, not just documented (see stats.Thread.PagePulls).
package core

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"runtime"

	"csds/internal/fault"
)

// Cursor is an optional Set extension: resumable, bounded-batch
// iteration in ascending key order (pagination). CursorNext visits up to
// max mappings with pos <= k < hi, in ascending key order, and reports
// the position to resume from and whether the window is exhausted:
//
//   - done == true: every remaining mapping of [pos, hi) was visited
//     (next == hi). Further calls return (hi, true) and visit nothing.
//   - done == false: the page filled (or f stopped the replay early);
//     next is one past the last key delivered, so the following call
//     continues exactly where this one left off, never re-walking or
//     re-reporting delivered keys.
//
// Each call is individually linearizable: the visited batch is one
// atomic snapshot of the key window it covers, taken at one point during
// the call (the same protocols as Scan, at page granularity). No state
// is pinned between calls — the returned position is the only link —
// so resume positions stay valid under arbitrary concurrent updates and,
// on elastic composites, across concurrent Resizes.
//
// A max below 1 is treated as 1 (a page must make progress). Most
// callers should use OpenCursor/ResumeCursor and PageCursor.Next, which
// wrap the position in an opaque, integrity-checked token.
//
// f must not call back into the same structure (some protocols hold
// internal locks across the replay).
type Cursor interface {
	CursorNext(c *Ctx, pos, hi Key, max int, f func(k Key, v Value) bool) (next Key, done bool)
}

// CursorToken is the decoded form of a pagination token: the iteration
// window and the position the next page starts from. Lo <= Pos <= Hi
// always holds; Pos == Hi means the iteration is exhausted.
type CursorToken struct {
	Lo, Hi Key // the iteration window [Lo, Hi)
	Pos    Key // resume position of the next page
}

// Token wire format: magic ("csc1"), three big-endian 64-bit fields
// (Lo, Hi, Pos), and a CRC-32 of everything before it, base64url-encoded.
// The checksum (plus the decoded invariants) makes corruption an error
// rather than a silently wrong page window.
const (
	tokenMagic   = "csc1"
	tokenRawLen  = len(tokenMagic) + 3*8 + 4
	tokenWireLen = (tokenRawLen*8 + 5) / 6 // base64url, unpadded
)

// tokenEnc is strict base64url: non-canonical trailing bits are rejected,
// so every single-character corruption of a token is an error (either the
// alphabet/canonical check or the checksum catches it).
var tokenEnc = base64.RawURLEncoding.Strict()

// Encode renders the token in its opaque wire form: printable, URL-safe,
// and integrity-checked, so it can round-trip through HTTP query
// parameters, JSON, logs, and client storage unchanged.
func (t CursorToken) Encode() string {
	var raw [tokenRawLen]byte
	copy(raw[:], tokenMagic)
	binary.BigEndian.PutUint64(raw[4:], uint64(t.Lo))
	binary.BigEndian.PutUint64(raw[12:], uint64(t.Hi))
	binary.BigEndian.PutUint64(raw[20:], uint64(t.Pos))
	binary.BigEndian.PutUint32(raw[28:], crc32.ChecksumIEEE(raw[:28]))
	return tokenEnc.EncodeToString(raw[:])
}

// DecodeCursorToken parses a wire token. Any corruption — truncation,
// bit flips, wrong alphabet, inconsistent window — is an error, never a
// panic and never a silently different window.
func DecodeCursorToken(s string) (CursorToken, error) {
	if len(s) != tokenWireLen {
		return CursorToken{}, fmt.Errorf("core: cursor token has length %d, want %d", len(s), tokenWireLen)
	}
	raw, err := tokenEnc.DecodeString(s)
	if err != nil {
		return CursorToken{}, fmt.Errorf("core: cursor token is not base64url: %v", err)
	}
	if len(raw) != tokenRawLen || string(raw[:4]) != tokenMagic {
		return CursorToken{}, fmt.Errorf("core: cursor token has a bad header")
	}
	if got, want := crc32.ChecksumIEEE(raw[:28]), binary.BigEndian.Uint32(raw[28:]); got != want {
		return CursorToken{}, fmt.Errorf("core: cursor token checksum mismatch (corrupt token)")
	}
	t := CursorToken{
		Lo:  Key(binary.BigEndian.Uint64(raw[4:])),
		Hi:  Key(binary.BigEndian.Uint64(raw[12:])),
		Pos: Key(binary.BigEndian.Uint64(raw[20:])),
	}
	if t.Lo > t.Hi || t.Pos < t.Lo || t.Pos > t.Hi {
		return CursorToken{}, fmt.Errorf("core: cursor token window is inconsistent (lo=%d pos=%d hi=%d)", t.Lo, t.Pos, t.Hi)
	}
	return t, nil
}

// PageCursor is the user-facing pagination handle: a structure, a
// window, and the current resume token. It holds no structure state —
// dropping it mid-iteration leaks nothing, and ResumeCursor rebuilds an
// equivalent handle from the token alone.
type PageCursor struct {
	src  Cursor
	tok  CursorToken
	done bool
}

// OpenCursor starts a paginated iteration over s's window [lo, hi).
// It fails only when s does not support cursors (every structure and
// combinator in this module does). A hi below lo opens an exhausted
// cursor.
func OpenCursor(s Set, lo, hi Key) (*PageCursor, error) {
	cur, ok := s.(Cursor)
	if !ok {
		return nil, fmt.Errorf("core: %T does not implement core.Cursor", s)
	}
	if hi < lo {
		hi = lo
	}
	return &PageCursor{src: cur, tok: CursorToken{Lo: lo, Hi: hi, Pos: lo}, done: lo >= hi}, nil
}

// ResumeCursor rebuilds a pagination handle from a wire token — the
// "next page" entry point of a stateless service. The token must come
// from a PageCursor over an equivalent structure; corrupt tokens are
// rejected.
func ResumeCursor(s Set, token string) (*PageCursor, error) {
	tok, err := DecodeCursorToken(token)
	if err != nil {
		return nil, err
	}
	cur, ok := s.(Cursor)
	if !ok {
		return nil, fmt.Errorf("core: %T does not implement core.Cursor", s)
	}
	return &PageCursor{src: cur, tok: tok, done: tok.Pos >= tok.Hi}, nil
}

// Next fetches one page: up to max mappings in ascending key order,
// delivered through f (early stop supported, like Scan). It returns the
// wire token to resume from and whether the iteration is exhausted. A
// call on an exhausted cursor visits nothing and reports done again.
func (p *PageCursor) Next(c *Ctx, max int, f func(k Key, v Value) bool) (token string, done bool) {
	if p.done {
		return p.tok.Encode(), true
	}
	next, done := p.src.CursorNext(c, p.tok.Pos, p.tok.Hi, max, f)
	if next < p.tok.Pos {
		next = p.tok.Pos // defend the token invariant against a buggy impl
	}
	if next > p.tok.Hi {
		next = p.tok.Hi
	}
	p.tok.Pos = next
	p.done = done || p.tok.Pos >= p.tok.Hi
	return p.tok.Encode(), p.done
}

// Token returns the current resume token without fetching a page.
func (p *PageCursor) Token() string { return p.tok.Encode() }

// Done reports whether the iteration is exhausted.
func (p *PageCursor) Done() bool { return p.done }

// clampPageMax normalizes a page size: a page must make progress.
func clampPageMax(max int) int {
	if max < 1 {
		return 1
	}
	return max
}

// ReplayPage drives one collected, already-consistent page through the
// user callback and derives the (next, done) pair of the cursor
// contract. exhausted says the collect saw the true end of the window
// (nothing in-range was left beyond the page); an early stop by f always
// resumes one past the last delivered key.
func ReplayPage(buf []ScanPair, exhausted bool, hi Key, f func(k Key, v Value) bool) (next Key, done bool) {
	for _, p := range buf {
		if !f(p.K, p.V) {
			return p.K + 1, false
		}
	}
	if exhausted || len(buf) == 0 {
		// An empty, non-exhausted page is impossible through this
		// module's collectors (a page only fills short at the window
		// end); treat it as exhausted rather than looping a caller.
		return hi, true
	}
	return buf[len(buf)-1].K + 1, false
}

// MergePage finishes an eagerly collected composite page: sort the
// disjoint per-part contributions (partitions never duplicate a key),
// trim to the page budget, and replay — the callback never runs more
// than max times, even if a misdeclared partition contributed duplicate
// boundary keys, because the trim precedes the replay. exhausted must
// say whether every part reported done; a trimmed page is never
// exhausted, and the overshoot cut by the trim is simply discarded and
// re-fetched by position on the next page. The trimmed union is exact:
// a part only withholds keys greater than everything it contributed, so
// the first max keys of the union are the structure's true first max
// keys at or beyond the position.
//
// The lazy composites page through StreamMergeNext (stream.go) instead;
// MergePage remains the primitive for snapshot sources that already
// hold their whole tail (and for reference implementations in tests).
func MergePage(buf []ScanPair, exhausted bool, hi Key, max int, f func(k Key, v Value) bool) (next Key, done bool) {
	max = clampPageMax(max)
	SortScanPairs(buf)
	if len(buf) > max {
		buf = buf[:max]
		exhausted = false
	}
	return ReplayPage(buf, exhausted, hi, f)
}

// GuardedPage runs one bounded page collect under g's optimistic
// protocol — the cursor counterpart of GuardedScan. collect must
// traverse the structure with atomic loads only, emitting in-range
// mappings in ascending key order starting at the page position, stop
// as soon as emit reports false (page full), and be restartable. The
// page replays through f only once it is known consistent; validation
// retries record into the cursor counters (never the scan ones), and
// the same brief per-instance writer barrier backstops churn.
func GuardedPage(c *Ctx, g *ScanGuard, hi Key, max int, collect func(emit func(k Key, v Value) bool), f func(k Key, v Value) bool) (next Key, done bool) {
	max = clampPageMax(max)
	// In pooling mode the collect buffer (and its box) round-trips
	// through the page-buffer free-list instead of growing fresh per
	// page; GC-only mode keeps the per-page allocation, as the ablation
	// contract requires.
	var buf []ScanPair
	var box *[]ScanPair
	if c.Pooled() {
		box, _ = pageBufPool.Get(c).(*[]ScanPair)
		if box == nil {
			box = new([]ScanPair)
		}
		buf = (*box)[:0]
	}
	putBack := func() {
		if box != nil {
			*box = buf[:0]
			pageBufPool.Put(box)
		}
	}
	full := false
	visited := 0
	emit := func(k Key, v Value) bool {
		if len(buf) >= max {
			full = true
			return false
		}
		buf = append(buf, ScanPair{k, v})
		visited++
		return true
	}
	for attempt := 0; attempt < scanAttempts; attempt++ {
		s, ok := g.snapshot()
		if !ok {
			runtime.Gosched()
			continue
		}
		buf, full = buf[:0], false
		collect(emit)
		if g.validate(s) && !c.FaultFire(fault.GuardFail) {
			c.RecordCursorRetries(attempt)
			c.RecordPagePull(visited)
			next, done = ReplayPage(buf, !full, hi, f)
			putBack()
			return next, done
		}
	}
	// Optimistic phase lost to churn: briefly park this instance's
	// writers and take one clean bounded pass (see GuardedScan).
	g.freeze(c.Stat())
	buf, full = buf[:0], false
	collect(emit)
	g.unfreeze()
	c.RecordCursorRetries(scanAttempts)
	c.RecordPagePull(visited)
	next, done = ReplayPage(buf, !full, hi, f)
	putBack()
	return next, done
}

// RecordCursorRetries forwards a cursor page's validation (or epoch)
// retry count, tolerating nil. Cursor pages keep their own counter so
// one-shot scan metrics and the paper's point-op metrics both stay
// unpolluted.
func (c *Ctx) RecordCursorRetries(n int) {
	if c != nil && c.Stats != nil {
		c.Stats.RecordCursorRetries(n)
	}
}

// RecordPagePull notes one bounded page collect that materialized keys
// mappings (keys counts everything the collect touched — invalidated
// optimistic attempts and overshoot included — which is exactly what
// makes overcollect visible), tolerating nil. Every leaf page protocol
// in this module records here, so a composite page's pull totals expose
// its true per-page key traffic.
func (c *Ctx) RecordPagePull(keys int) {
	if c != nil && c.Stats != nil {
		c.Stats.RecordPagePull(keys)
	}
}
