// Fuzz target for the cursor-token codec, run as a CI smoke alongside
// FuzzParseSpec: tokens cross trust boundaries (clients echo them back),
// so decode must never panic, must reject anything inconsistent, and
// must round-trip everything Encode produces.
package core_test

import (
	"testing"

	"csds/internal/core"

	_ "csds/internal/combinator"
	_ "csds/internal/list"
)

// streamMergeSeeds mints wire tokens through the live streaming merge
// path: a wide sharded composite paginated with page sizes that land
// the resume position on shard-edge boundary keys (the positions the
// lazy per-shard pulls produce, which the eager merge never minted).
// Keeping real merge-produced tokens in the corpus keeps the
// decode∘encode fixed-point property honest against the tokens services
// actually hand out.
func streamMergeSeeds(f *testing.F) []string {
	factory, err := core.NewFactory("sharded(8,list/lazy)")
	if err != nil {
		f.Fatalf("resolving the seed composite: %v", err)
	}
	s := factory(core.Options{ExpectedSize: 256, KeySpan: 512})
	c := core.NewCtx(0)
	for k := core.Key(0); k < 512; k += 3 {
		s.Put(c, k, k)
	}
	var seeds []string
	for _, page := range []int{1, 7, 64} {
		pc, err := core.OpenCursor(s, 5, 500)
		if err != nil {
			f.Fatalf("opening the seed cursor: %v", err)
		}
		// Cap per page size, so every page-size pass contributes its own
		// resume positions to the corpus.
		for taken := 0; !pc.Done() && taken < 8; taken++ {
			tok, _ := pc.Next(c, page, func(core.Key, core.Value) bool { return true })
			seeds = append(seeds, tok)
		}
	}
	return seeds
}

func FuzzCursorToken(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0), "")
	f.Add(int64(1), int64(100), int64(37), "csc1")
	f.Add(int64(-50), int64(50), int64(0), core.CursorToken{Lo: 1, Hi: 9, Pos: 3}.Encode())
	f.Add(int64(5), int64(2), int64(9), "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA")
	for _, tok := range streamMergeSeeds(f) {
		f.Add(int64(5), int64(500), int64(5), tok)
	}
	f.Fuzz(func(t *testing.T, lo, hi, pos int64, wire string) {
		// Property 1: decode(encode(t)) is the identity on every token
		// Encode can produce (normalize the arbitrary triple first).
		if lo <= hi {
			p := pos
			if p < lo {
				p = lo
			}
			if p > hi {
				p = hi
			}
			tok := core.CursorToken{Lo: lo, Hi: hi, Pos: p}
			got, err := core.DecodeCursorToken(tok.Encode())
			if err != nil {
				t.Fatalf("decode(encode(%+v)): %v", tok, err)
			}
			if got != tok {
				t.Fatalf("decode(encode(%+v)) = %+v", tok, got)
			}
		}
		// Property 2: arbitrary input never panics, and anything that
		// decodes successfully is internally consistent and canonical.
		got, err := core.DecodeCursorToken(wire)
		if err != nil {
			return
		}
		if got.Lo > got.Hi || got.Pos < got.Lo || got.Pos > got.Hi {
			t.Fatalf("decoded token violates its window invariant: %+v", got)
		}
		if got.Encode() != wire {
			t.Fatalf("accepted token %q is not canonical (re-encodes to %q)", wire, got.Encode())
		}
	})
}
