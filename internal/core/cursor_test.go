package core

import (
	"strings"
	"testing"
)

// sliceSet is a minimal ordered Set + Cursor over a fixed sorted slice,
// enough to unit-test the token codec and the PageCursor handle without
// importing an algorithm package (which would cycle).
type sliceSet struct {
	keys []Key
}

func (s *sliceSet) Get(c *Ctx, k Key) (Value, bool) {
	for _, x := range s.keys {
		if x == k {
			return Value(x), true
		}
	}
	return 0, false
}
func (s *sliceSet) Put(c *Ctx, k Key, v Value) bool { return false }
func (s *sliceSet) Remove(c *Ctx, k Key) bool       { return false }
func (s *sliceSet) Len() int                        { return len(s.keys) }

func (s *sliceSet) CursorNext(c *Ctx, pos, hi Key, max int, f func(k Key, v Value) bool) (Key, bool) {
	if pos >= hi {
		return hi, true
	}
	max = clampPageMax(max)
	var buf []ScanPair
	full := false
	for _, k := range s.keys {
		if k < pos || k >= hi {
			continue
		}
		if len(buf) == max {
			full = true
			break
		}
		buf = append(buf, ScanPair{K: k, V: Value(k)})
	}
	return ReplayPage(buf, !full, hi, f)
}

func TestCursorTokenRoundTrip(t *testing.T) {
	for _, tok := range []CursorToken{
		{Lo: 0, Hi: 0, Pos: 0},
		{Lo: 1, Hi: 100, Pos: 37},
		{Lo: -50, Hi: 50, Pos: 0},
		{Lo: KeyMin + 1, Hi: KeyMax, Pos: 12345},
	} {
		got, err := DecodeCursorToken(tok.Encode())
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", tok, err)
		}
		if got != tok {
			t.Fatalf("decode(encode(%+v)) = %+v", tok, got)
		}
	}
}

func TestCursorTokenRejectsCorruption(t *testing.T) {
	valid := CursorToken{Lo: 1, Hi: 100, Pos: 37}.Encode()
	cases := []string{
		"",
		"garbage",
		valid[:len(valid)-1],
		valid + "A",
		strings.Repeat("!", len(valid)), // outside the base64url alphabet
	}
	// Single-character corruption anywhere must be caught by the
	// checksum (or the decoded-window invariants).
	for i := range valid {
		alt := byte('A')
		if valid[i] == alt {
			alt = 'B'
		}
		cases = append(cases, valid[:i]+string(alt)+valid[i+1:])
	}
	for _, s := range cases {
		if tok, err := DecodeCursorToken(s); err == nil {
			t.Fatalf("corrupt token %q decoded silently to %+v", s, tok)
		}
	}
	// An internally inconsistent window (Pos outside [Lo, Hi]) must be
	// rejected even with a valid checksum.
	bad := CursorToken{Lo: 50, Hi: 10, Pos: 30}
	if _, err := DecodeCursorToken(bad.Encode()); err == nil {
		t.Fatal("inconsistent window decoded without error")
	}
}

func TestPageCursorPagination(t *testing.T) {
	s := &sliceSet{}
	for k := Key(0); k < 25; k++ {
		s.keys = append(s.keys, k*2) // evens 0..48
	}
	c := NewCtx(0)
	pc, err := OpenCursor(s, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	var got []Key
	pages := 0
	for !pc.Done() {
		pages++
		if pages > 100 {
			t.Fatal("cursor never finished")
		}
		n := 0
		tok, done := pc.Next(c, 4, func(k Key, v Value) bool {
			got = append(got, k)
			n++
			return true
		})
		if n > 4 {
			t.Fatalf("page delivered %d keys, budget 4", n)
		}
		// Tokens must round-trip and resume to an equivalent cursor.
		if !done {
			pc, err = ResumeCursor(s, tok)
			if err != nil {
				t.Fatalf("resume from %q: %v", tok, err)
			}
		}
	}
	want := []Key{6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34, 36, 38}
	if len(got) != len(want) {
		t.Fatalf("paginated [5,40) over evens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paginated [5,40) over evens = %v, want %v", got, want)
		}
	}
	// A drained cursor stays drained and visits nothing.
	if _, done := pc.Next(c, 4, func(Key, Value) bool { t.Fatal("visit after done"); return false }); !done {
		t.Fatal("drained cursor reported done=false")
	}
}

func TestOpenCursorDegenerateWindows(t *testing.T) {
	s := &sliceSet{keys: []Key{10}}
	c := NewCtx(0)
	for _, w := range []struct{ lo, hi Key }{{5, 5}, {9, 5}} {
		pc, err := OpenCursor(s, w.lo, w.hi)
		if err != nil {
			t.Fatal(err)
		}
		if !pc.Done() {
			t.Fatalf("cursor over empty window [%d, %d) not immediately done", w.lo, w.hi)
		}
	}
	// max clamps to 1: progress is still made.
	pc, _ := OpenCursor(s, 0, 20)
	n := 0
	_, done := pc.Next(c, 0, func(Key, Value) bool { n++; return true })
	if n != 1 || !done {
		t.Fatalf("clamped page visited %d keys (done=%v), want 1 key", n, done)
	}
}

func TestOpenCursorRequiresCursor(t *testing.T) {
	if _, err := OpenCursor(plainSet{}, 0, 10); err == nil {
		t.Fatal("OpenCursor accepted a Set without cursor support")
	}
	tok := CursorToken{Lo: 0, Hi: 10, Pos: 0}.Encode()
	if _, err := ResumeCursor(plainSet{}, tok); err == nil {
		t.Fatal("ResumeCursor accepted a Set without cursor support")
	}
}

// plainSet implements Set but not Cursor.
type plainSet struct{}

func (plainSet) Get(*Ctx, Key) (Value, bool) { return 0, false }
func (plainSet) Put(*Ctx, Key, Value) bool   { return false }
func (plainSet) Remove(*Ctx, Key) bool       { return false }
func (plainSet) Len() int                    { return 0 }

// TestMergePageBudgetWithDuplicateBoundaries pins the doc's promise that
// the callback never runs more than max times, even when misdeclared
// partitions contribute duplicated boundary keys: the budget trim
// precedes the replay, so duplicates can waste budget but never extend
// it — the overshoot is discarded and re-fetched by position.
func TestMergePageBudgetWithDuplicateBoundaries(t *testing.T) {
	// Two "parts" both contributed keys 5 and 6 (a boundary overlap),
	// plus their own keys — 8 pairs for a budget of 3.
	buf := []ScanPair{
		{K: 5, V: 50}, {K: 6, V: 60}, {K: 7, V: 70}, {K: 9, V: 90},
		{K: 5, V: 51}, {K: 6, V: 61}, {K: 8, V: 80}, {K: 10, V: 100},
	}
	for _, max := range []int{1, 2, 3, 7, 8, 100} {
		calls := 0
		last := Key(-1)
		next, done := MergePage(append([]ScanPair(nil), buf...), true, 100, max, func(k Key, v Value) bool {
			calls++
			if k < last {
				t.Fatalf("max=%d: delivered %d after %d (not sorted)", max, k, last)
			}
			last = k
			return true
		})
		want := max
		if want > len(buf) {
			want = len(buf)
		}
		if calls > max {
			t.Fatalf("max=%d: callback ran %d times, budget is %d", max, calls, max)
		}
		if calls != want {
			t.Fatalf("max=%d: callback ran %d times, want %d", max, calls, want)
		}
		if max < len(buf) && done {
			t.Fatalf("max=%d: trimmed page reported done", max)
		}
		if !done && next != last+1 {
			t.Fatalf("max=%d: next=%d after last key %d", max, next, last)
		}
	}
}

func TestMergePageTrimsAndResumes(t *testing.T) {
	buf := []ScanPair{{K: 9}, {K: 3}, {K: 7}, {K: 1}, {K: 5}}
	var got []Key
	next, done := MergePage(buf, true, 100, 3, func(k Key, v Value) bool {
		got = append(got, k)
		return true
	})
	if done || next != 6 {
		t.Fatalf("trimmed merge returned (next=%d, done=%v), want (6, false)", next, done)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("trimmed merge delivered %v, want [1 3 5]", got)
	}
	// Untouched budget with every part done: exhausted.
	next, done = MergePage(buf[:2], true, 100, 3, func(Key, Value) bool { return true })
	if !done || next != 100 {
		t.Fatalf("exhausted merge returned (next=%d, done=%v), want (100, true)", next, done)
	}
	// Early stop resumes one past the stopped key.
	next, done = MergePage(buf, true, 100, 5, func(k Key, v Value) bool { return k < 5 })
	if done || next != 6 {
		t.Fatalf("early-stopped merge returned (next=%d, done=%v), want (6, false)", next, done)
	}
}
