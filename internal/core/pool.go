// Node pooling layer of the memory-reclamation overhaul (DESIGN.md,
// "Pooling contract"). EBR decides *when* an unlinked node is unreachable;
// the pools decide *where* it goes next: back to a typed free-list instead
// of to the garbage collector. Each structure package owns one Pool per
// node type, the reclaim callback it passes to Ctx.Retire poisons the dead
// node and Puts it there, and the structure's constructor path Gets before
// allocating. Pools are package-level (not per-instance) so nodes from a
// torn-down instance — an elastic shard retired by a resize — feed the
// instances that replace it.
package core

import (
	"math"
	"sync"
)

// Poison sentinels: reclaim callbacks overwrite a dead node's key and
// value with these before pooling it, so a traversal that reaches a
// reclaimed node observes an impossible mapping instead of a plausible
// stale one. Like KeyMin/KeyMax they are reserved and must not be
// inserted; the settest poisoning battery asserts reads and scans never
// return them.
const (
	PoisonKey   Key   = math.MinInt64 + 0xDEAD
	PoisonValue Value = math.MinInt64 + 0xBEEF
)

// Pool is a typed free-list seeded by a sync.Pool arena: Get returns a
// previously reclaimed node or nil (caller allocates fresh), Put hands a
// poisoned node back. The sync.Pool backing means unused pooled nodes
// still melt away under GC pressure — pooling is a fast path, not a leak.
// Hit/miss counts land in the calling worker's stats slot, surfacing as
// the pool_hit_frac bench column.
type Pool struct {
	p sync.Pool
}

// Get pops a pooled node, or returns nil if the free-list is empty.
func (p *Pool) Get(c *Ctx) any {
	v := p.p.Get()
	if c != nil && c.Stats != nil {
		if v != nil {
			c.Stats.PoolHits++
		} else {
			c.Stats.PoolMisses++
		}
	}
	return v
}

// Put returns a node to the free-list. The caller must have poisoned it
// and severed its links: a pooled node is re-published by the next
// inserter, so anything it still points at would leak or confuse.
func (p *Pool) Put(v any) { p.p.Put(v) }

// Reclaimer is implemented by structures that can hand their entire node
// population back to the pools in one sweep. The caller must guarantee
// quiescence on the instance (no concurrent operations and no future
// ones) — the eager path elastic resize uses on a superseded shard map:
// once the old epartition's grace period elapses, every shard is
// ReclaimAll'd instead of waiting for the GC to trace the dead map.
// Composites delegate to their parts.
type Reclaimer interface {
	ReclaimAll()
}
