// Base layer of the algorithm factory: a registry mapping plain algorithm
// names ("list/lazy") to constructors. Implementation packages populate it
// from their init functions; the composite-spec layer (spec.go) resolves
// leaf names through it.
package core

import (
	"fmt"
	"sort"
	"sync"
)

// Info describes a registered algorithm.
type Info struct {
	// Name is the registry key, e.g. "list/lazy".
	Name string
	// Kind is the structure family: "list", "skiplist", "hashtable",
	// "bst", "queue", "stack".
	Kind string
	// Progress is "blocking", "lock-free" or "wait-free".
	Progress string
	// Featured marks the best-performing blocking algorithm per structure
	// (the ones the paper's figures show).
	Featured bool
	// New constructs an empty instance.
	New func(Options) Set
	// Desc is a one-line provenance note (original authors).
	Desc string
}

var (
	regMu    sync.RWMutex
	registry = map[string]Info{}
)

// Register adds an algorithm; called from implementation packages' init.
// Duplicate names panic: they indicate a wiring bug.
func Register(info Info) {
	if info.Name == "" || info.New == nil {
		panic("core: Register with empty name or nil constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("core: duplicate algorithm %q", info.Name))
	}
	registry[info.Name] = info
}

// Lookup finds an algorithm by name.
func Lookup(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	info, ok := registry[name]
	return info, ok
}

// Names returns all registered algorithm names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByKind returns the registered algorithms of one structure family,
// sorted by name.
func ByKind(kind string) []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []Info
	for _, info := range registry {
		if info.Kind == kind {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Featured returns the featured (figure-bearing) algorithm of a family.
func Featured(kind string) (Info, bool) {
	for _, info := range ByKind(kind) {
		if info.Featured {
			return info, true
		}
	}
	return Info{}, false
}
