// Range-scan layer of the set abstraction: the Scanner optional interface
// and the shared validation machinery behind every structure's
// linearizable scan protocol.
//
// The paper's structures are point-op machines (Get/Put/Remove); scans are
// the next scaling axis (ranked feeds, prefix queries, windowed
// aggregation), and they must not betray the paper's thesis by putting
// synchronization on the read path. The protocol here keeps point reads
// untouched and charges updates two uncontended atomic adds on a
// per-instance cache line; scanners do all the validation work themselves:
//
//   - optimistic phase: snapshot the instance's update version, collect
//     the range with plain (atomic-load) traversal, and accept the
//     collection only if no update ran concurrently — the multi-writer
//     generalization of a seqlock read;
//   - bounded retries: under update churn the optimistic phase can keep
//     losing; after a few attempts the scanner falls back to
//   - a brief per-instance barrier: writers entering the instance park
//     (instrumented, so the paper's lock-wait metrics see the only wait
//     scans ever impose) while the scanner takes one clean pass. Point
//     reads never wait, scanning or not.
//
// Partitioned composites (striped, sharded, elastic, bucketed hash
// tables) scan part by part, so the barrier radius of a fallback is one
// stripe/shard/bucket-table — a segment — never the whole composite.
package core

import (
	"runtime"
	"sort"
	"sync/atomic"

	"csds/internal/fault"
	"csds/internal/locks"
	"csds/internal/stats"
)

// Scanner is an optional Set extension: linearizable range scans. Scan
// visits the mappings with lo <= k < hi, each key at most once, and stops
// early when f returns false; it reports whether it reached the end of
// the range (false = stopped by f). Every structure in this module scans
// in ascending key order: the ordered structures natively, the
// hash-partitioned composites by sorting their merge, and the hash
// tables off their ordered key index (a sorted shadow maintained under
// the same write brackets the scans validate against).
//
// Consistency: on a single structure instance the visited mappings are
// one atomic snapshot of the range — the scan linearizes at a single
// point during the call. Partitioned composites scan their parts in
// sequence with one atomic snapshot per part, so every reported presence
// or absence is the key's true state at some instant inside the call
// (per-key window consistency), parts never disagree about the same key
// (the partitions are disjoint), and no key is visited twice.
//
// f must not call back into the same structure (some protocols hold
// internal locks across the replay).
type Scanner interface {
	Scan(c *Ctx, lo, hi Key, f func(k Key, v Value) bool) bool
}

// scanWriterOne is the in-flight-writer unit of ScanGuard.state: writers
// count in the high 16 bits, the update version in the low 48. A version
// wrap into the writer bits needs 2^48 state-changing updates inside one
// instance — decades of sustained churn — so the packing is safe for any
// real run.
const scanWriterOne = uint64(1) << 48

// scanAttempts bounds the optimistic phase before a scan falls back to
// the write barrier.
const scanAttempts = 8

// ScanGuard is the per-instance validation cell of the optimistic scan
// protocol. Structures embed one and bracket every state-changing
// mutation (and only those — failed Puts/Removes touch nothing) with
// BeginWrite/EndWrite; GuardedScan does the rest.
//
// BeginWrite publishes the writer (writer count +1) and bumps the update
// version in one atomic add, *before* the mutation's first store, so a
// scanner that observed a quiescent version before its collect and an
// unchanged one after it has proof that no mutation overlapped the
// collect: a mutation M inside the collect window either bumped the
// version after the scanner's first read (version check fails) or bumped
// it before — in which case its writer slot was still occupied at the
// scanner's first read (writer check fails), since EndWrite follows M.
type ScanGuard struct {
	state atomic.Uint64 // writers<<48 | version
	block atomic.Bool
	mu    locks.TAS // serializes fallback scanners
}

// BeginWrite opens a mutation window. Call it immediately before the
// first membership-changing store/CAS of an update (after the operation
// has decided it will mutate); waits, if any (only while a fallback scan
// holds the barrier), record into t like every lock in this module.
func (g *ScanGuard) BeginWrite(t *stats.Thread) {
	if g == nil {
		return
	}
	for {
		g.state.Add(scanWriterOne | 1)
		if !g.block.Load() {
			return
		}
		// A fallback scanner holds the barrier: retract the writer slot
		// (the version bump stays; it is only ever spurious) and park
		// until the barrier clears.
		g.state.Add(^uint64(scanWriterOne - 1))
		locks.WaitWhile(t, func() bool { return g.block.Load() })
	}
}

// EndWrite closes the window opened by BeginWrite. Call it after the
// mutation's last membership-relevant store/CAS.
func (g *ScanGuard) EndWrite() {
	if g == nil {
		return
	}
	g.state.Add(^uint64(scanWriterOne - 1))
}

// WriteYield briefly closes an open write bracket when a fallback
// scanner has raised the freeze barrier, reopening it once the barrier
// clears. Batched writers call this between keys: a batch amortizes
// one bracket over many mutations, and without the yield a frozen
// scanner (which drains writers) could wait on the batch while the
// batch waits on a lock held by a writer parked behind the barrier.
// Reports whether the bracket was yielded — the caller must then
// re-validate any optimistic position it carried across keys.
func (g *ScanGuard) WriteYield(t *stats.Thread) bool {
	if g == nil || !g.block.Load() {
		return false
	}
	g.EndWrite()
	g.BeginWrite(t) // parks until the barrier clears
	return true
}

// snapshot reads the guard state; ok reports a quiescent instance (no
// writer mid-mutation), the precondition for an optimistic collect.
func (g *ScanGuard) snapshot() (s uint64, ok bool) {
	s = g.state.Load()
	return s, s>>48 == 0 && !g.block.Load()
}

// validate accepts an optimistic collect that began at snapshot s.
func (g *ScanGuard) validate(s uint64) bool {
	return g.state.Load() == s
}

// freeze raises the write barrier and drains in-flight writers; the
// instance is then update-quiescent until unfreeze. Fallback scanners
// serialize on the guard's own lock, so at most one barrier is ever up.
func (g *ScanGuard) freeze(t *stats.Thread) {
	g.mu.Acquire(t)
	g.block.Store(true)
	locks.WaitWhile(t, func() bool { return g.state.Load()>>48 != 0 })
}

// unfreeze lowers the barrier raised by freeze.
func (g *ScanGuard) unfreeze() {
	g.block.Store(false)
	g.mu.Release()
}

// ScanPair is one collected mapping.
type ScanPair struct {
	K Key
	V Value
}

// GuardedScan runs a structure's range collect under g's protocol:
// optimistic validated attempts, then the write barrier. collect must
// traverse the structure with atomic loads only, emit every in-range
// mapping, and be restartable (it runs again after a failed validation);
// the collected snapshot replays through f only once it is known
// consistent. Returns false iff f stopped the replay early.
func GuardedScan(c *Ctx, g *ScanGuard, collect func(emit func(k Key, v Value)), f func(k Key, v Value) bool) bool {
	var buf []ScanPair
	emit := func(k Key, v Value) { buf = append(buf, ScanPair{k, v}) }
	for attempt := 0; attempt < scanAttempts; attempt++ {
		s, ok := g.snapshot()
		if !ok {
			// A mutation (or a fallback barrier) is in flight; let it
			// finish rather than collecting a doomed snapshot.
			runtime.Gosched()
			continue
		}
		buf = buf[:0]
		collect(emit)
		// A forced guard failure (chaos plane) discards an otherwise
		// consistent snapshot, driving the retry and barrier paths.
		if g.validate(s) && !c.FaultFire(fault.GuardFail) {
			c.RecordScanRetries(attempt)
			return ReplayScan(buf, f)
		}
	}
	// Optimistic phase lost to churn: briefly park this instance's
	// writers and take one clean pass. Readers are unaffected.
	g.freeze(c.Stat())
	buf = buf[:0]
	collect(emit)
	g.unfreeze()
	c.RecordScanRetries(scanAttempts)
	return ReplayScan(buf, f)
}

// ReplayScan drives a collected snapshot through the user callback,
// honoring early stop. Shared by GuardedScan and the composites'
// collect-and-merge scans.
func ReplayScan(buf []ScanPair, f func(k Key, v Value) bool) bool {
	for _, p := range buf {
		if !f(p.K, p.V) {
			return false
		}
	}
	return true
}

// SortScanPairs orders a collected snapshot by key — the merge step of
// hash-partitioned composite scans (sharded, elastic), which collect per
// shard and still deliver the ascending order every ordered scan in this
// module promises.
func SortScanPairs(buf []ScanPair) {
	sort.Slice(buf, func(i, j int) bool { return buf[i].K < buf[j].K })
}

// RecordScanRetries forwards a scan's optimistic-validation retry count,
// tolerating nil (mirrors RecordRestarts; scans keep their own counter so
// the point-op restart metrics of the paper stay unpolluted).
func (c *Ctx) RecordScanRetries(n int) {
	if c != nil && c.Stats != nil {
		c.Stats.RecordScanRetries(n)
	}
}
