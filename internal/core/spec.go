// Composite layer of the algorithm factory: a small specification grammar
// that composes registered algorithms with structure combinators —
// wrappers that are themselves linearizable Sets built over inner
// instances. The grammar is
//
//	spec       := name | combinator '(' arg ',' spec ')'
//	name       := [A-Za-z0-9_./-]+            (a registry key, e.g. "list/lazy")
//	combinator := [A-Za-z0-9_./-]+            (a combinator key, e.g. "sharded")
//	arg        := positive decimal integer    (shard/stripe count, cache capacity)
//
// so "sharded(16,list/lazy)" is a 16-way hash-sharded lazy list and
// "readcache(1024,sharded(4,bst/tk))" a cached 4-way-sharded BST.
// Combinators register themselves exactly like algorithms do (see
// csds/internal/combinator); core only defines the grammar and the
// resolution layering, keeping the dependency arrow pointing one way.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Combinator describes a registered structure combinator. Its New wraps a
// resolved inner constructor; arg is the grammar's integer parameter,
// whose meaning (shard count, stripe count, cache capacity) is the
// combinator's own.
type Combinator struct {
	// Name is the combinator key, e.g. "sharded".
	Name string
	// New builds the wrapper over inner instances. It must return a
	// linearizable Set whenever inner constructs linearizable Sets.
	New func(arg int, inner func(Options) Set, o Options) Set
	// ArgDesc documents the integer parameter ("shards", "capacity").
	ArgDesc string
	// Desc is a one-line description for listings.
	Desc string
	// Validate, when non-nil, checks the integer parameter at spec
	// resolution time, before anything is constructed. It returns an
	// actionable error for arguments the combinator would otherwise have
	// to clamp or reject silently (the parser only guarantees
	// 1 <= arg <= 1<<24).
	Validate func(arg int) error
}

var (
	combMu      sync.RWMutex
	combinators = map[string]Combinator{}
)

// RegisterCombinator adds a combinator; called from the combinator
// package's init. Duplicates panic, mirroring Register.
func RegisterCombinator(c Combinator) {
	if c.Name == "" || c.New == nil {
		panic("core: RegisterCombinator with empty name or nil constructor")
	}
	combMu.Lock()
	defer combMu.Unlock()
	if _, dup := combinators[c.Name]; dup {
		panic(fmt.Sprintf("core: duplicate combinator %q", c.Name))
	}
	combinators[c.Name] = c
}

// LookupCombinator finds a combinator by name.
func LookupCombinator(name string) (Combinator, bool) {
	combMu.RLock()
	defer combMu.RUnlock()
	c, ok := combinators[name]
	return c, ok
}

// CombinatorNames returns all registered combinator names, sorted.
func CombinatorNames() []string {
	combMu.RLock()
	defer combMu.RUnlock()
	out := make([]string, 0, len(combinators))
	for n := range combinators {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Combinators returns all registered combinators, sorted by name.
func Combinators() []Combinator {
	combMu.RLock()
	defer combMu.RUnlock()
	out := make([]Combinator, 0, len(combinators))
	for _, c := range combinators {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Spec is a parsed algorithm specification: either a leaf naming a
// registered algorithm (Inner == nil) or a combinator application.
type Spec struct {
	// Name is the algorithm name of a leaf, or the combinator name.
	Name string
	// Arg is the combinator's integer parameter (leaf: 0).
	Arg int
	// Inner is the wrapped specification (leaf: nil).
	Inner *Spec
}

// IsLeaf reports whether the spec is a plain algorithm name.
func (s *Spec) IsLeaf() bool { return s.Inner == nil }

// String renders the spec back in grammar form.
func (s *Spec) String() string {
	if s.IsLeaf() {
		return s.Name
	}
	return fmt.Sprintf("%s(%d,%s)", s.Name, s.Arg, s.Inner)
}

// Depth returns the number of combinator layers above the leaf.
func (s *Spec) Depth() int {
	d := 0
	for !s.IsLeaf() {
		d++
		s = s.Inner
	}
	return d
}

// maxSpecArg bounds combinator parameters at parse time; it exists to turn
// typos like sharded(1e9,...) into errors instead of huge allocations.
const maxSpecArg = 1 << 24

// ParseSpec parses a specification string. Whitespace around tokens is
// ignored so "sharded( 16, list/lazy )" is accepted.
func ParseSpec(src string) (*Spec, error) {
	p := &specParser{src: src}
	s, err := p.spec()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.pos:])
	}
	return s, nil
}

type specParser struct {
	src string
	pos int
}

func (p *specParser) errf(format string, args ...any) error {
	return fmt.Errorf("core: spec %q: offset %d: %s", p.src, p.pos, fmt.Sprintf(format, args...))
}

func (p *specParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func isNameByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
		b >= '0' && b <= '9' || b == '_' || b == '.' || b == '/' || b == '-'
}

// name consumes a maximal run of name bytes.
func (p *specParser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected an algorithm or combinator name")
	}
	return p.src[start:p.pos], nil
}

// expect consumes one literal byte (after optional space).
func (p *specParser) expect(b byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != b {
		return p.errf("expected %q", string(b))
	}
	p.pos++
	return nil
}

// arg consumes the combinator's positive integer parameter.
func (p *specParser) arg() (int, error) {
	p.skipSpace()
	start := p.pos
	n := 0
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		n = n*10 + int(p.src[p.pos]-'0')
		if n > maxSpecArg {
			return 0, p.errf("argument exceeds %d", maxSpecArg)
		}
		p.pos++
	}
	if p.pos == start {
		return 0, p.errf("expected a positive integer argument")
	}
	if n == 0 {
		return 0, p.errf("argument must be positive")
	}
	return n, nil
}

// spec parses one (possibly nested) specification.
func (p *specParser) spec() (*Spec, error) {
	n, err := p.name()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return &Spec{Name: n}, nil
	}
	p.pos++ // consume '('
	arg, err := p.arg()
	if err != nil {
		return nil, err
	}
	if err := p.expect(','); err != nil {
		return nil, err
	}
	inner, err := p.spec()
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return &Spec{Name: n, Arg: arg, Inner: inner}, nil
}

// NewFactory resolves a specification string into a ready constructor: the
// leaf is looked up in the algorithm registry, each enclosing combinator
// in the combinator registry, and the layers are composed outside-in. All
// name resolution happens here, so the returned constructor cannot fail.
func NewFactory(spec string) (func(Options) Set, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Factory()
}

// Factory resolves a parsed specification (see NewFactory).
func (s *Spec) Factory() (func(Options) Set, error) {
	if s.IsLeaf() {
		info, ok := Lookup(s.Name)
		if !ok {
			return nil, fmt.Errorf("core: unknown algorithm %q (registered: %s)",
				s.Name, strings.Join(Names(), ", "))
		}
		return info.New, nil
	}
	comb, ok := LookupCombinator(s.Name)
	if !ok {
		return nil, fmt.Errorf("core: unknown combinator %q (registered: %s; grammar: comb(N,spec))",
			s.Name, strings.Join(CombinatorNames(), ", "))
	}
	if comb.Validate != nil {
		if err := comb.Validate(s.Arg); err != nil {
			return nil, fmt.Errorf("core: spec %q: %w", s, err)
		}
	}
	inner, err := s.Inner.Factory()
	if err != nil {
		return nil, err
	}
	arg := s.Arg
	return func(o Options) Set { return comb.New(arg, inner, o) }, nil
}

// Build parses, resolves and constructs a specification in one call.
func Build(spec string, o Options) (Set, error) {
	f, err := NewFactory(spec)
	if err != nil {
		return nil, err
	}
	return f(o), nil
}
