// Native Go fuzzing for the composite-spec grammar: whatever bytes come
// in, ParseSpec must never panic, and every accepted spec must survive a
// parse -> format -> parse round trip unchanged. The corpus seeds are the
// combinator vocabulary csdsbench -list shows — every registered
// algorithm name wrapped in every registered combinator — plus the
// grammar's edge shapes (whitespace, nesting, bound-sized arguments) and
// a sample of the rejections the parser documents.
//
// The file lives in package core_test so the seed corpus can pull real
// names from the populated registries (the implementation packages
// import core, so an in-package test could not import them back).
package core_test

import (
	"fmt"
	"testing"

	"csds/internal/core"

	_ "csds/internal/bst"
	_ "csds/internal/combinator"
	_ "csds/internal/hashtable"
	_ "csds/internal/list"
	_ "csds/internal/skiplist"
)

func FuzzParseSpec(f *testing.F) {
	// The live -list corpus: every leaf, and every combinator over a
	// rotating leaf.
	names := core.Names()
	for _, n := range names {
		f.Add(n)
	}
	for i, comb := range core.CombinatorNames() {
		leaf := names[i%len(names)]
		f.Add(fmt.Sprintf("%s(%d,%s)", comb, 1<<i, leaf))
		f.Add(fmt.Sprintf("%s( %d , %s )", comb, 16, leaf))
		f.Add(fmt.Sprintf("readcache(64,%s(4,%s))", comb, leaf))
	}
	// Grammar edges and documented rejections.
	for _, s := range []string{
		"", " ", "a", "sharded", "sharded(", "sharded(0,list/lazy)",
		"sharded(16777216,list/lazy)", "sharded(16777217,list/lazy)",
		"sharded(99999999999999999999,x)", "sharded(4,list/lazy) trailing",
		"sharded(4,)", "sharded(4", "(4,x)", "a(1,b(2,c(3,d)))",
		"sharded(4,list/lazy))", "sharded(-1,list/lazy)", "x(1,ö)",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := core.ParseSpec(src)
		if err != nil {
			return // rejection is fine; panics are what fuzzing hunts
		}
		// Round trip 1: format and reparse.
		text := spec.String()
		spec2, err := core.ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q) accepted, but its rendering %q was rejected: %v", src, text, err)
		}
		// Round trip 2: the rendering must be a fixed point.
		if text2 := spec2.String(); text2 != text {
			t.Fatalf("format not stable: %q -> %q -> %q", src, text, text2)
		}
		// Structural sanity on the accepted tree.
		if spec.Depth() != spec2.Depth() {
			t.Fatalf("round trip changed depth: %d vs %d for %q", spec.Depth(), spec2.Depth(), src)
		}
		for s := spec; s != nil; s = s.Inner {
			if s.IsLeaf() {
				if s.Arg != 0 {
					t.Fatalf("leaf %q carries arg %d in %q", s.Name, s.Arg, src)
				}
			} else if s.Arg < 1 {
				t.Fatalf("combinator %q accepted non-positive arg %d in %q", s.Name, s.Arg, src)
			}
			if s.Name == "" {
				t.Fatalf("empty name accepted in %q", src)
			}
		}
	})
}
