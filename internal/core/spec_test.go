package core

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseSpecLeaf(t *testing.T) {
	s, err := ParseSpec("list/lazy")
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsLeaf() || s.Name != "list/lazy" || s.Arg != 0 || s.Depth() != 0 {
		t.Fatalf("leaf parse wrong: %+v", s)
	}
	if s.String() != "list/lazy" {
		t.Fatalf("String = %q", s)
	}
}

func TestParseSpecComposite(t *testing.T) {
	s, err := ParseSpec("sharded(16,list/lazy)")
	if err != nil {
		t.Fatal(err)
	}
	if s.IsLeaf() || s.Name != "sharded" || s.Arg != 16 {
		t.Fatalf("composite parse wrong: %+v", s)
	}
	if !s.Inner.IsLeaf() || s.Inner.Name != "list/lazy" {
		t.Fatalf("inner parse wrong: %+v", s.Inner)
	}
	if s.Depth() != 1 {
		t.Fatalf("Depth = %d", s.Depth())
	}
	if s.String() != "sharded(16,list/lazy)" {
		t.Fatalf("String = %q", s)
	}
}

func TestParseSpecNested(t *testing.T) {
	s, err := ParseSpec("readcache(512,sharded(4,hashtable/lazy))")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "readcache" || s.Arg != 512 || s.Depth() != 2 {
		t.Fatalf("outer wrong: %+v depth %d", s, s.Depth())
	}
	if s.Inner.Name != "sharded" || s.Inner.Arg != 4 || s.Inner.Inner.Name != "hashtable/lazy" {
		t.Fatalf("nesting wrong: %v", s)
	}
}

func TestParseSpecWhitespace(t *testing.T) {
	s, err := ParseSpec("  sharded( 8 , list/lazy )  ")
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "sharded(8,list/lazy)" {
		t.Fatalf("whitespace parse = %q", s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, src := range []string{
		"",                        // empty
		"   ",                     // blank
		"sharded(",                // truncated
		"sharded(16",              // missing comma
		"sharded(16,",             // missing inner
		"sharded(16,list/lazy",    // missing close
		"sharded(16,list/lazy))",  // trailing garbage
		"sharded(0,list/lazy)",    // zero arg
		"sharded(-4,list/lazy)",   // negative arg
		"sharded(x,list/lazy)",    // non-numeric arg
		"sharded(,list/lazy)",     // empty arg
		"sharded(99999999999,x)",  // arg over bound
		"(16,list/lazy)",          // missing name
		"list/lazy extra",         // trailing word
		"sharded(16,(list/lazy))", // inner missing name
	} {
		if s, err := ParseSpec(src); err == nil {
			t.Errorf("ParseSpec(%q) accepted: %v", src, s)
		}
	}
}

func TestSpecFactoryResolution(t *testing.T) {
	Register(Info{
		Name: "spec/leaf", Kind: "spectest", Progress: "blocking",
		New: func(o Options) Set { return &fakeSet{} },
	})
	RegisterCombinator(Combinator{
		Name: "spectimes",
		New: func(arg int, inner func(Options) Set, o Options) Set {
			// A fixture wrapper: arg inner instances, Len sums them.
			sets := make([]Set, arg)
			for i := range sets {
				sets[i] = inner(o)
			}
			return &fanoutSet{sets: sets}
		},
		ArgDesc: "copies", Desc: "test fixture",
	})

	s, err := Build("spectimes(3,spec/leaf)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCtx(0)
	s.Put(c, 1, 1) // fanoutSet puts into every copy
	if got := s.Len(); got != 3 {
		t.Fatalf("composite Len = %d, want 3 (one per inner copy)", got)
	}

	if _, err := Build("spectimes(2,spectimes(2,spec/leaf))", Options{}); err != nil {
		t.Fatalf("nested build failed: %v", err)
	}
}

func TestSpecFactoryUnknownNames(t *testing.T) {
	if _, err := Build("no/such/alg", Options{}); err == nil ||
		!strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("unknown leaf error = %v", err)
	}
	if _, err := Build("nosuchcomb(4,list/lazy)", Options{}); err == nil ||
		!strings.Contains(err.Error(), "unknown combinator") {
		t.Fatalf("unknown combinator error = %v", err)
	}
	// An unknown leaf under a known combinator must also fail at
	// resolution time, before any construction happens.
	RegisterCombinator(Combinator{
		Name:    "specwrap",
		New:     func(arg int, inner func(Options) Set, o Options) Set { return inner(o) },
		ArgDesc: "n", Desc: "test fixture",
	})
	if _, err := Build("specwrap(1,no/such/alg)", Options{}); err == nil ||
		!strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("unknown inner leaf error = %v", err)
	}
}

// TestSpecValidateHook checks per-combinator argument validation runs at
// resolution time, names the offending spec, and fires before the inner
// specification is even looked up.
func TestSpecValidateHook(t *testing.T) {
	Register(Info{
		Name: "spec/validleaf", Kind: "spectest", Progress: "blocking",
		New: func(o Options) Set { return &fakeSet{} },
	})
	RegisterCombinator(Combinator{
		Name:    "specvalidated",
		New:     func(arg int, inner func(Options) Set, o Options) Set { return inner(o) },
		ArgDesc: "n", Desc: "test fixture",
		Validate: func(arg int) error {
			if arg > 7 {
				return fmt.Errorf("specvalidated: arg %d exceeds 7", arg)
			}
			return nil
		},
	})
	_, err := Build("specvalidated(8,spec/validleaf)", Options{})
	if err == nil {
		t.Fatal("out-of-range combinator arg accepted")
	}
	if !strings.Contains(err.Error(), "exceeds 7") ||
		!strings.Contains(err.Error(), "specvalidated(8,spec/validleaf)") {
		t.Fatalf("validation error not actionable: %v", err)
	}
	if _, err := Build("specvalidated(7,spec/validleaf)", Options{}); err != nil {
		t.Fatalf("in-range arg rejected: %v", err)
	}
	// Validation precedes inner resolution: the arg error wins even when
	// the inner name is bogus.
	if _, err := Build("specvalidated(9,no/such/alg)", Options{}); err == nil ||
		!strings.Contains(err.Error(), "exceeds 7") {
		t.Fatalf("validation did not run before inner resolution: %v", err)
	}
}

func TestRegisterCombinatorValidation(t *testing.T) {
	for _, c := range []Combinator{
		{Name: "", New: func(int, func(Options) Set, Options) Set { return nil }},
		{Name: "specnilnew"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid RegisterCombinator(%+v) did not panic", c)
				}
			}()
			RegisterCombinator(c)
		}()
	}
	RegisterCombinator(Combinator{
		Name:    "specdup",
		New:     func(arg int, inner func(Options) Set, o Options) Set { return inner(o) },
		ArgDesc: "n", Desc: "test fixture",
	})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterCombinator did not panic")
		}
	}()
	RegisterCombinator(Combinator{
		Name: "specdup",
		New:  func(arg int, inner func(Options) Set, o Options) Set { return inner(o) },
	})
}

func TestCombinatorNamesSorted(t *testing.T) {
	RegisterCombinator(Combinator{
		Name:    "specz",
		New:     func(arg int, inner func(Options) Set, o Options) Set { return inner(o) },
		ArgDesc: "n", Desc: "test fixture",
	})
	names := CombinatorNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("CombinatorNames unsorted: %v", names)
		}
	}
	found := false
	for _, c := range Combinators() {
		if c.Name == "specz" {
			found = true
		}
	}
	if !found {
		t.Fatal("Combinators() missing registered combinator")
	}
	if _, ok := LookupCombinator("specz"); !ok {
		t.Fatal("LookupCombinator failed")
	}
	if _, ok := LookupCombinator("spec-absent"); ok {
		t.Fatal("phantom combinator lookup succeeded")
	}
}

// fanoutSet is a registry fixture that fans every operation out to all
// inner copies (not a real set; exercises factory wiring only).
type fanoutSet struct{ sets []Set }

func (f *fanoutSet) Get(c *Ctx, k Key) (Value, bool) { return f.sets[0].Get(c, k) }
func (f *fanoutSet) Put(c *Ctx, k Key, v Value) bool {
	ok := false
	for _, s := range f.sets {
		ok = s.Put(c, k, v)
	}
	return ok
}
func (f *fanoutSet) Remove(c *Ctx, k Key) bool {
	ok := false
	for _, s := range f.sets {
		ok = s.Remove(c, k)
	}
	return ok
}
func (f *fanoutSet) Len() int {
	n := 0
	for _, s := range f.sets {
		n += s.Len()
	}
	return n
}
