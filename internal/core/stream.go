// Streaming pull layer of the cursor machinery: PageStream (a bounded
// per-source pull buffer over any Cursor) and the lazy k-way merges
// built on it.
//
// PR 4's composite cursors collected eagerly: every part contributed its
// first max in-range keys per page and the sorted union was trimmed to
// the budget, discarding up to (k-1)·max keys per page — the documented
// k× overcollect of wide composites. The streaming architecture inverts
// the dataflow: each part is wrapped in a PageStream that pulls small
// refill chunks (~max/k keys, floored at streamMinChunk) on demand, and
// a heap merge consumes stream heads lazily, stopping exactly at the
// page budget. A sharded(32) page now materializes about one page worth
// of keys instead of 32, and the refill counters (stats.Thread.PagePulls
// / PagePullKeys) make the difference measurable.
//
// The consistency story is unchanged from the eager merge: every pull is
// one linearizable bounded page on its part (one atomic sub-snapshot),
// parts partition the key space (no duplicates to resolve), and the
// merge delivers the union in ascending order. Tokens stay position-only
// — per-part stream positions live only inside a single CursorNext call,
// never across pages — so resume positions survive churn, restarts and
// resizes exactly as before; overshoot buffered beyond the delivered
// boundary is discarded and re-fetched by position on the next page.
package core

// streamMinChunk floors the per-part refill size: below this, per-pull
// seek costs (position descent, guard validation) dominate the keys
// moved and the merge thrashes its sources.
const streamMinChunk = 8

// StreamMinChunk exports the per-part refill floor for consumers that
// size cursor pages around it (the tuner floors its page-length hint at
// width*StreamMinChunk: smaller pages make every per-shard pull fetch
// the floor chunk and discard most of it).
const StreamMinChunk = streamMinChunk

// streamChunk sizes per-part refill pulls so the initial fill of a k-way
// merge materializes about one page budget in total (max/k per part),
// floored at streamMinChunk and capped at the budget itself.
func streamChunk(max, parts int) int {
	if parts < 1 {
		parts = 1
	}
	chunk := max / parts
	if chunk < streamMinChunk {
		chunk = streamMinChunk
	}
	if chunk > max {
		chunk = max
	}
	return chunk
}

// PageStream adapts one Cursor source into a bounded pull buffer: Refill
// fetches the next ≤ chunk in-range mappings from the stream's private
// position, Peek/Pop consume them in ascending order. The stream holds
// no source state beyond that position — dropping it mid-page leaks
// nothing, which is what keeps composite tokens position-only.
type PageStream struct {
	c       *Ctx
	src     Cursor
	pos     Key
	hi      Key
	chunk   int
	buf     []ScanPair
	box     *[]ScanPair // pool box the buffer travels in (pooling mode)
	i       int
	srcDone bool
}

// pageBufPool recycles PageStream refill buffers (as *[]ScanPair so the
// interface boxing stays pointer-sized). Buffers are thread-owned for a
// stream's whole life, so recycling needs no grace period — it is still
// gated on pooling mode to keep the GC-only ablation honest.
var pageBufPool Pool

// NewPageStream opens a pull stream over src's window [pos, hi) with the
// given refill chunk (clamped to at least 1). In pooling mode the refill
// buffer comes from a free-list; Release hands it back.
func NewPageStream(c *Ctx, src Cursor, pos, hi Key, chunk int) *PageStream {
	if chunk < 1 {
		chunk = 1
	}
	s := &PageStream{c: c, src: src, pos: pos, hi: hi, chunk: chunk}
	if c.Pooled() {
		s.box, _ = pageBufPool.Get(c).(*[]ScanPair)
		if s.box == nil {
			s.box = new([]ScanPair)
		}
		s.buf = (*s.box)[:0]
	}
	if pos >= hi {
		s.srcDone = true
	}
	return s
}

// Release returns the stream's refill buffer to the pool (pooling mode
// only; otherwise a no-op). The stream must not be used afterwards.
func (s *PageStream) Release() {
	if s.box == nil {
		return
	}
	*s.box = s.buf[:0]
	pageBufPool.Put(s.box)
	s.box, s.buf, s.i = nil, nil, 0
}

// Refill pulls the next chunk from the source. It is a no-op while
// buffered mappings remain or once the source is exhausted; it reports
// whether the buffer holds data afterwards. Each refill is one
// linearizable bounded page on the source.
func (s *PageStream) Refill() bool {
	if s.i < len(s.buf) {
		return true
	}
	if s.srcDone {
		return false
	}
	s.buf, s.i = s.buf[:0], 0
	next, done := s.src.CursorNext(s.c, s.pos, s.hi, s.chunk, func(k Key, v Value) bool {
		s.buf = append(s.buf, ScanPair{K: k, V: v})
		return true
	})
	if len(s.buf) == 0 && !done {
		// The cursor contract makes an empty, non-exhausted page
		// impossible; treat one as exhaustion rather than spinning the
		// merge on a source that will never progress.
		done = true
	}
	s.pos = next
	s.srcDone = done
	return len(s.buf) > 0
}

// Peek returns the buffered head without consuming it.
func (s *PageStream) Peek() (ScanPair, bool) {
	if s.i < len(s.buf) {
		return s.buf[s.i], true
	}
	return ScanPair{}, false
}

// Pop consumes and returns the buffered head.
func (s *PageStream) Pop() (ScanPair, bool) {
	if s.i < len(s.buf) {
		p := s.buf[s.i]
		s.i++
		return p, true
	}
	return ScanPair{}, false
}

// Drained reports that the source is exhausted and the buffer is empty:
// this stream will never produce another mapping.
func (s *PageStream) Drained() bool { return s.srcDone && s.i >= len(s.buf) }

// streamHead is one heap slot of the k-way merge: the cached head key of
// a stream plus which part it came from (for the per-pull hook).
type streamHead struct {
	key  Key
	s    *PageStream
	part int
}

// mergeHeap is a hand-rolled binary min-heap over stream heads, keyed by
// head key. Partitions are disjoint, so ties cannot occur between live
// streams; if they did (a misdeclared partition) the merge would still
// respect the page budget, merely delivering the duplicate.
type mergeHeap []streamHead

func (h mergeHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].key <= h[i].key {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (h mergeHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l].key < h[min].key {
			min = l
		}
		if r < len(h) && h[r].key < h[min].key {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// StreamMergeNext pages a disjoint partition in ascending key order with
// lazy per-part pulls: each part streams refill chunks of ~max/len(parts)
// keys (min streamMinChunk) through its own linearizable cursor, and a
// heap merge delivers the union until the page budget fills or every
// stream drains — the streaming replacement for the eager
// collect-everything merge, cutting the per-page overcollect from
// k×max to roughly one refill chunk per part.
//
// afterPull, when non-nil, runs after every pull from parts[i]; returning
// false aborts the merge immediately (aborted == true, nothing more is
// delivered) — the hook elastic composites use to detect a stale shard
// map mid-page. Parts must partition the key space (no shared keys) and
// every part must implement Cursor.
//
// Like every composite page, keys already delivered come from per-part
// sub-snapshots taken at pull time; buffered overshoot beyond the last
// delivered key is discarded and re-fetched by position on the next call.
func StreamMergeNext(c *Ctx, parts []Set, pos, hi Key, max int, afterPull func(part int) bool, f func(k Key, v Value) bool) (next Key, done bool, aborted bool) {
	if pos >= hi {
		return hi, true, false
	}
	max = clampPageMax(max)
	chunk := streamChunk(max, len(parts))
	h := make(mergeHeap, 0, len(parts))
	streams := make([]*PageStream, 0, len(parts))
	defer func() {
		for _, s := range streams {
			s.Release()
		}
	}()
	for i, p := range parts {
		s := NewPageStream(c, p.(Cursor), pos, hi, chunk)
		streams = append(streams, s)
		s.Refill() // an empty result marks the stream drained
		if afterPull != nil && !afterPull(i) {
			return 0, false, true
		}
		if head, ok := s.Peek(); ok {
			h = append(h, streamHead{key: head.K, s: s, part: i})
			h.siftUp(len(h) - 1)
		}
	}
	delivered := 0
	for len(h) > 0 {
		top := &h[0]
		pair, _ := top.s.Pop()
		if !f(pair.K, pair.V) {
			return pair.K + 1, false, false
		}
		delivered++
		if delivered == max {
			// Budget filled: decide done without another refill (a
			// refill here would be pure overcollect — its keys would be
			// discarded and re-fetched by the next page anyway).
			if _, ok := top.s.Peek(); ok || !top.s.Drained() {
				return pair.K + 1, false, false
			}
			if len(h) == 1 {
				return hi, true, false
			}
			return pair.K + 1, false, false
		}
		// Restore the heap: refill the popped stream if its buffer
		// emptied (the merge may not deliver past a live stream's
		// position), then re-key or drop its slot.
		if _, ok := top.s.Peek(); !ok && !top.s.Drained() {
			top.s.Refill()
			if afterPull != nil && !afterPull(top.part) {
				return 0, false, true
			}
		}
		if head, ok := top.s.Peek(); ok {
			top.key = head.K
			h.siftDown(0)
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			h.siftDown(0)
		}
	}
	return hi, true, false
}

// StreamMergePage is StreamMergeNext with the delivery buffered: the
// merged page collects into a slice instead of running a user callback,
// so callers that must validate the whole page before releasing it
// (elastic composites re-checking their epoch witness) can discard an
// aborted page without having delivered anything.
func StreamMergePage(c *Ctx, parts []Set, pos, hi Key, max int, afterPull func(part int) bool) (buf []ScanPair, next Key, done bool, aborted bool) {
	next, done, aborted = StreamMergeNext(c, parts, pos, hi, max, afterPull, func(k Key, v Value) bool {
		buf = append(buf, ScanPair{K: k, V: v})
		return true
	})
	return buf, next, done, aborted
}

// StreamDrainNext pages an ordered disjoint partition — parts[i]'s keys
// all precede parts[i+1]'s (a range partition, e.g. the overlapping
// stripes of a striped composite) — by draining parts in order through
// bounded pull streams: no merge, no overshoot, and parts beyond the
// one where the budget fills are never touched. The concatenation is
// ascending whenever the parts' own cursors are.
func StreamDrainNext(c *Ctx, parts []Set, pos, hi Key, max int, f func(k Key, v Value) bool) (next Key, done bool) {
	if pos >= hi {
		return hi, true
	}
	max = clampPageMax(max)
	remaining := max
	nextPos := pos
	for i, p := range parts {
		s := NewPageStream(c, p.(Cursor), pos, hi, remaining)
		for {
			if !s.Refill() {
				break // part exhausted; drain the next one
			}
			pair, _ := s.Pop()
			if !f(pair.K, pair.V) {
				s.Release()
				return pair.K + 1, false
			}
			remaining--
			nextPos = pair.K + 1
			if remaining == 0 {
				drained := s.Drained()
				s.Release()
				if drained && i == len(parts)-1 {
					// Budget filled exactly at the end of the last part.
					return hi, true
				}
				// Later parts (or this one) may still hold keys.
				return nextPos, false
			}
		}
		s.Release()
	}
	return hi, true
}
