package core

import (
	"testing"
)

// countingSet wraps a sliceSet and counts cursor pulls and the keys
// they materialize — the whitebox view of the streaming merge's refill
// behaviour.
type countingSet struct {
	*sliceSet
	pulls     int
	keyPulled int
}

func (s *countingSet) CursorNext(c *Ctx, pos, hi Key, max int, f func(k Key, v Value) bool) (Key, bool) {
	s.pulls++
	return s.sliceSet.CursorNext(c, pos, hi, max, func(k Key, v Value) bool {
		s.keyPulled++
		return f(k, v)
	})
}

// modPartition builds n counting parts holding keys 0..total-1 hashed by
// key mod n — a disjoint partition with interleaved key ranges, the
// worst case for an eager merge.
func modPartition(total Key, n int) ([]Set, []*countingSet) {
	parts := make([]*countingSet, n)
	for i := range parts {
		parts[i] = &countingSet{sliceSet: &sliceSet{}}
	}
	for k := Key(0); k < total; k++ {
		parts[k%Key(n)].keys = append(parts[k%Key(n)].keys, k)
	}
	sets := make([]Set, n)
	for i := range parts {
		sets[i] = parts[i]
	}
	return sets, parts
}

func TestStreamChunk(t *testing.T) {
	cases := []struct{ max, parts, want int }{
		{512, 32, 16},
		{512, 4, 128},
		{16, 32, streamMinChunk},
		{4, 32, 4}, // floor capped at the budget itself
		{100, 1, 100},
		{100, 0, 100},
	}
	for _, tc := range cases {
		if got := streamChunk(tc.max, tc.parts); got != tc.want {
			t.Errorf("streamChunk(%d, %d) = %d, want %d", tc.max, tc.parts, got, tc.want)
		}
	}
}

// TestStreamMergeSequential: the streaming merge paginates a mod
// partition exactly — ascending union, budget respected, done at the
// end — across page sizes on both sides of the chunk floor.
func TestStreamMergeSequential(t *testing.T) {
	const total = 500
	for _, max := range []int{1, 3, 16, 64, 500, 1000} {
		sets, _ := modPartition(total, 7)
		c := NewCtx(0)
		pos := Key(0)
		var got []Key
		for {
			n := 0
			next, done, aborted := StreamMergeNext(c, sets, pos, total, max, nil, func(k Key, v Value) bool {
				got = append(got, k)
				if v != Value(k) {
					t.Fatalf("key %d delivered with value %d", k, v)
				}
				n++
				return true
			})
			if aborted {
				t.Fatal("merge aborted without an abort hook")
			}
			if n > max {
				t.Fatalf("page delivered %d keys over budget %d", n, max)
			}
			if done {
				if next != total {
					t.Fatalf("done page returned next=%d, want %d", next, total)
				}
				break
			}
			if n == 0 {
				t.Fatal("empty page reported done=false")
			}
			if next != got[len(got)-1]+1 {
				t.Fatalf("page returned next=%d after last key %d", next, got[len(got)-1])
			}
			pos = next
		}
		if len(got) != total {
			t.Fatalf("max=%d: merged %d keys, want %d", max, len(got), total)
		}
		for i, k := range got {
			if k != Key(i) {
				t.Fatalf("max=%d: position %d holds key %d (not ascending/complete)", max, i, k)
			}
		}
	}
}

// TestStreamMergeBoundedPulls pins the tentpole arithmetic: a 32-part
// merge page of 512 keys must materialize at most 2*max keys across all
// parts — the old eager merge pulled up to 32*max.
func TestStreamMergeBoundedPulls(t *testing.T) {
	const parts = 32
	const max = 512
	sets, counters := modPartition(1<<16, parts)
	c := NewCtx(0)
	pos := Key(0)
	pages := 0
	for pos < 1<<15 { // a prefix of the domain is plenty
		next, done, _ := StreamMergeNext(c, sets, pos, 1<<16, max, nil, func(Key, Value) bool { return true })
		pages++
		if done {
			break
		}
		pos = next
	}
	var pulled int
	for _, p := range counters {
		pulled += p.keyPulled
	}
	if pulled > 2*max*pages {
		t.Fatalf("%d pages materialized %d keys, want <= %d (2*max per page)", pages, pulled, 2*max*pages)
	}
}

// TestStreamMergeEarlyStop: a callback that declines mid-merge ends the
// page at exactly that key, and the returned position resumes one past
// it.
func TestStreamMergeEarlyStop(t *testing.T) {
	sets, _ := modPartition(100, 3)
	c := NewCtx(0)
	calls := 0
	next, done, _ := StreamMergeNext(c, sets, 0, 100, 50, nil, func(k Key, v Value) bool {
		calls++
		return calls < 7
	})
	if done || calls != 7 {
		t.Fatalf("early stop: done=%v after %d calls, want false after 7", done, calls)
	}
	if next != 7 {
		t.Fatalf("early stop resumed at %d, want 7", next)
	}
}

// TestStreamMergeAbort: the per-pull hook aborting poisons the page
// before anything more is delivered (the elastic stale-epoch path).
func TestStreamMergeAbort(t *testing.T) {
	sets, _ := modPartition(100, 4)
	c := NewCtx(0)
	pullsSeen := 0
	_, _, aborted := StreamMergeNext(c, sets, 0, 100, 10, func(part int) bool {
		pullsSeen++
		return pullsSeen < 3
	}, func(Key, Value) bool { return true })
	if !aborted {
		t.Fatal("abort hook returning false did not abort the merge")
	}
	// And the buffered variant delivers nothing on abort.
	buf, _, _, aborted := StreamMergePage(c, sets, 0, 100, 10, func(int) bool { return false })
	if !aborted || len(buf) != 0 {
		t.Fatalf("aborted StreamMergePage returned buf=%v aborted=%v", buf, aborted)
	}
}

// TestStreamDrainSequential: the ordered drain paginates a range
// partition exactly and never touches parts beyond the budget fill.
func TestStreamDrainSequential(t *testing.T) {
	// Range partition: part i owns [i*100, (i+1)*100).
	parts := make([]*countingSet, 5)
	sets := make([]Set, 5)
	for i := range parts {
		parts[i] = &countingSet{sliceSet: &sliceSet{}}
		for k := Key(i * 100); k < Key((i+1)*100); k += 2 {
			parts[i].keys = append(parts[i].keys, k)
		}
		sets[i] = parts[i]
	}
	c := NewCtx(0)
	var got []Key
	pos := Key(0)
	for {
		next, done := StreamDrainNext(c, sets, pos, 500, 37, func(k Key, v Value) bool {
			got = append(got, k)
			return true
		})
		if done {
			break
		}
		pos = next
	}
	if len(got) != 250 {
		t.Fatalf("drained %d keys, want 250", len(got))
	}
	for i, k := range got {
		if k != Key(2*i) {
			t.Fatalf("position %d holds key %d, want %d", i, k, 2*i)
		}
	}
	// A one-page drain with a small budget must not touch later parts.
	for _, p := range parts {
		p.pulls = 0
	}
	// Ten even keys 0..18 fill the budget; the resume position is one
	// past the last delivered key.
	if next, done := StreamDrainNext(c, sets, 0, 500, 10, func(Key, Value) bool { return true }); done || next != 19 {
		t.Fatalf("bounded drain returned next=%d done=%v, want 19 false", next, done)
	}
	for i, p := range parts[1:] {
		if p.pulls != 0 {
			t.Fatalf("part %d pulled %d times on a page confined to part 0", i+1, p.pulls)
		}
	}
}

// TestPageStreamDefensive: a buggy source returning an empty non-done
// page is treated as drained instead of spinning the merge.
type emptyLiar struct{ sliceSet }

func (s *emptyLiar) CursorNext(c *Ctx, pos, hi Key, max int, f func(k Key, v Value) bool) (Key, bool) {
	return pos, false // never delivers, never finishes
}

func TestPageStreamDefensive(t *testing.T) {
	s := NewPageStream(NewCtx(0), &emptyLiar{}, 0, 100, 8)
	if s.Refill() {
		t.Fatal("liar source reported data")
	}
	if !s.Drained() {
		t.Fatal("empty non-done page did not drain the stream")
	}
	next, done, _ := StreamMergeNext(NewCtx(0), []Set{&emptyLiar{}}, 0, 100, 8, nil, func(Key, Value) bool { return true })
	if !done || next != 100 {
		t.Fatalf("merge over a liar source returned next=%d done=%v", next, done)
	}
}
