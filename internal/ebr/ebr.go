// Package ebr implements epoch-based memory reclamation, the scheme the
// paper's implementations use ("our implementations use an epoch-based
// memory management scheme, similar in principle to RCU", §3.2).
//
// In Go the garbage collector already guarantees that no node is freed
// while a concurrent traversal can still reach it, so EBR is not required
// for safety. We implement it anyway, for two reasons documented in
// DESIGN.md: (1) fidelity — the algorithms were designed against manual
// reclamation and their unlink discipline (logically delete before
// physically unlinking before retiring) is an invariant worth checking;
// (2) instrumentation — retire/reclaim counts expose the memory behaviour
// the paper's C library has. The BenchmarkAblationEBR target measures its
// cost against GC-only operation.
//
// Standard three-epoch scheme: a retired node sits in the limbo bucket of
// the epoch it was retired in and may be reclaimed once the global epoch
// has advanced twice, which requires every active critical region to have
// been observed in the current epoch.
//
// The scheme's classic failure mode — one stalled reader wedging
// reclamation for every thread (Fraser, TR 579 §4) — gets first-class
// treatment here: Blocked exposes the records currently holding the epoch
// back, and Expel lets a watchdog forcibly detach one. Expulsion is safe
// by construction at a documented cost: because an expelled reader may
// still be traversing, the whole domain permanently downgrades to
// GC-backed reclamation (reclaim callbacks — poisoning, pooling — stop
// running; the counters still balance, so drains still quiesce). The
// watchdog restores liveness; Go's GC keeps memory safety.
package ebr

import (
	"sync"
	"sync/atomic"
)

// buckets is the classic three-generation limbo arrangement.
const buckets = 3

// advanceThreshold is how many retirements a record accumulates before it
// attempts to advance the global epoch.
const advanceThreshold = 64

// Domain is a reclamation domain shared by all threads operating on one
// data structure (or several; domains are independent).
type Domain struct {
	epoch atomic.Uint64

	mu   sync.Mutex
	recs []*Record

	// orphans holds limbo handed over by unregistered records whose grace
	// period had not yet elapsed; guarded by mu, flushed after successful
	// epoch advances. orphanEpoch is the (conservative, newest) retirement
	// epoch tag of each bucket's contents.
	orphans     [buckets][]retiredNode
	orphanEpoch [buckets]uint64

	// gcOnly is set forever once any record has been forcibly expelled:
	// from then on reclaim callbacks are skipped and every "reclaimed"
	// node is simply dropped for the GC to collect. A wedged-but-running
	// reader can hold references to nodes retired at ANY later epoch, so
	// no callback-based recycling is safe once one has been abandoned.
	gcOnly   atomic.Bool
	expelled atomic.Uint64

	// Reclaimed counts nodes actually handed back (summed from records on
	// demand).
	reclaimed atomic.Uint64
	retired   atomic.Uint64
}

// NewDomain creates an empty domain at epoch 0... actually epoch 1, so the
// zero announcement value can mean "never entered".
func NewDomain() *Domain {
	d := &Domain{}
	d.epoch.Store(1)
	return d
}

// Record is one thread's participation handle. Acquire via Register. The
// owning goroutine calls Enter/Exit/Retire/Collect/Unregister; a watchdog
// may concurrently call Domain.Expel on it — every other use is
// single-goroutine.
type Record struct {
	// dom is the owning domain; nil once unregistered or expelled. The
	// pointer is claimed by CAS so Unregister and Expel race idempotently.
	dom atomic.Pointer[Domain]
	// state = epoch<<1 | active.
	state atomic.Uint64

	// depth tracks bracket nesting (owner-only): batch paths hold one
	// bracket across many point operations that bracket themselves.
	depth int

	// limboMu guards the limbo buckets against the one legal concurrent
	// accessor, Domain.Expel. Owner-side operations (Retire, Collect,
	// Unregister) take it uncontended in the common case.
	limboMu    sync.Mutex
	limbo      [buckets][]retiredNode
	limboEpoch [buckets]uint64 // epoch each bucket's contents were retired in
	sinceCheck int

	// Retired/Reclaimed are this record's lifetime counters (owner-read).
	Retired   uint64
	Reclaimed uint64

	_ [64]byte // keep records off each other's cache lines
}

type retiredNode struct {
	ptr any
	fn  func(any)
}

// Register adds a new participant record to the domain.
func (d *Domain) Register() *Record {
	r := &Record{}
	r.dom.Store(d)
	d.mu.Lock()
	d.recs = append(d.recs, r)
	d.mu.Unlock()
	return r
}

// Epoch returns the current global epoch (diagnostics).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// Stats returns total retired and reclaimed node counts.
func (d *Domain) Stats() (retired, reclaimed uint64) {
	return d.retired.Load(), d.reclaimed.Load()
}

// Expelled returns how many records have been forcibly expelled.
func (d *Domain) Expelled() uint64 { return d.expelled.Load() }

// GCOnly reports whether the domain has downgraded to GC-backed
// reclamation (a consequence of expulsion; see Expel).
func (d *Domain) GCOnly() bool { return d.gcOnly.Load() }

// Enter marks the start of a critical region: nodes the thread can observe
// from now on will not be reclaimed until the matching Exit. Brackets nest
// (a batch-level bracket may enclose self-bracketing point operations);
// only the outermost pair touches the shared announcement word. On an
// expelled or unregistered record, Enter is a no-op — the traversal
// proceeds under GC protection only.
func (r *Record) Enter() {
	r.depth++
	if r.depth > 1 {
		return
	}
	d := r.dom.Load()
	if d == nil {
		return
	}
	e := d.epoch.Load()
	r.state.Store(e<<1 | 1)
}

// Exit marks the end of the critical region (outermost bracket only).
func (r *Record) Exit() {
	r.depth--
	if r.depth > 0 {
		return
	}
	r.state.Store(r.state.Load() &^ 1)
}

// Active reports whether the record is inside a critical region.
func (r *Record) Active() bool { return r.state.Load()&1 == 1 }

// Retire hands a node to the domain for deferred reclamation; fn (optional)
// runs when the node's grace period has elapsed. Must be called between
// Enter and Exit or when the caller otherwise knows the node is unlinked.
// On an expelled or unregistered record, the node is left to the GC.
func (r *Record) Retire(ptr any, fn func(any)) {
	d := r.dom.Load()
	if d == nil {
		return
	}
	advance := false
	r.limboMu.Lock()
	if r.dom.Load() != d {
		// Expelled between the load and the lock: the node goes to the GC.
		r.limboMu.Unlock()
		return
	}
	e := d.epoch.Load()
	b := int(e % buckets)
	// If the bucket holds garbage from an older epoch that is now safe
	// (two advances have happened since), flush it first.
	if r.limboEpoch[b] != e && len(r.limbo[b]) > 0 {
		r.flushLocked(d, b)
	}
	r.limboEpoch[b] = e
	r.limbo[b] = append(r.limbo[b], retiredNode{ptr, fn})
	r.Retired++
	d.retired.Add(1)

	r.sinceCheck++
	if r.sinceCheck >= advanceThreshold {
		r.sinceCheck = 0
		advance = true
	}
	r.limboMu.Unlock()
	if advance {
		d.tryAdvance()
		r.Collect()
	}
}

// flushLocked reclaims every node in bucket b unconditionally; callers must
// have established safety and hold r.limboMu. In a gcOnly domain the
// callbacks are skipped — the nodes are dropped for the GC — but the
// counters advance identically, so quiesce checks are mode-independent.
func (r *Record) flushLocked(d *Domain, b int) {
	gcOnly := d.gcOnly.Load()
	for _, n := range r.limbo[b] {
		if n.fn != nil && !gcOnly {
			n.fn(n.ptr)
		}
		r.Reclaimed++
		d.reclaimed.Add(1)
	}
	r.limbo[b] = r.limbo[b][:0]
}

// Collect reclaims any of this record's limbo buckets whose grace period
// has elapsed (retirement epoch at least two behind the global epoch).
func (r *Record) Collect() {
	d := r.dom.Load()
	if d == nil {
		return
	}
	e := d.epoch.Load()
	r.limboMu.Lock()
	if r.dom.Load() == d {
		for b := 0; b < buckets; b++ {
			if len(r.limbo[b]) > 0 && e >= r.limboEpoch[b]+2 {
				r.flushLocked(d, b)
			}
		}
	}
	r.limboMu.Unlock()
}

// Unregister removes the record from its domain. It is safe to call from
// inside a critical region — the open bracket is force-exited first — so
// a deferred Unregister is the correct way to guarantee a worker that
// panics or returns early mid-bracket cannot wedge epoch advancement for
// the whole domain. The record must not be used afterwards. Limbo
// whose grace period has elapsed is reclaimed on the spot (counted in the
// record's lifetime counters); the rest is handed to the domain's orphan
// buckets and reclaimed after later epoch advances — without this, a
// finished worker's record would linger in Domain.recs forever and, if
// abandoned Active(), wedge epoch advancement for every other thread.
// Unregister after Expel (either order) is a no-op: the dom pointer is
// claimed exactly once.
func (r *Record) Unregister() {
	d := r.dom.Load()
	if d == nil || !r.dom.CompareAndSwap(d, nil) {
		return
	}
	r.depth = 0
	r.state.Store(0) // inactive: no longer blocks advancement
	d.remove(r)
	e := d.epoch.Load()
	var handoff [buckets][]retiredNode
	r.limboMu.Lock()
	for b := 0; b < buckets; b++ {
		if len(r.limbo[b]) == 0 {
			continue
		}
		if e >= r.limboEpoch[b]+2 {
			r.flushLocked(d, b)
			continue
		}
		// Still in its grace period: orphan it. Tagging the merged bucket
		// with the newest epoch of the two only delays reclamation, never
		// makes it premature.
		handoff[b] = r.limbo[b]
		r.limbo[b] = nil
	}
	epochs := r.limboEpoch
	r.limboMu.Unlock()
	d.mu.Lock()
	for b := 0; b < buckets; b++ {
		if len(handoff[b]) == 0 {
			continue
		}
		d.orphans[b] = append(d.orphans[b], handoff[b]...)
		if epochs[b] > d.orphanEpoch[b] {
			d.orphanEpoch[b] = epochs[b]
		}
	}
	d.mu.Unlock()
	// A departing record may have been the one holding the epoch back;
	// give the domain a chance to advance and drain the orphans.
	if d.tryAdvance() {
		d.tryAdvance()
	}
}

// remove drops r from the participant list.
func (d *Domain) remove(r *Record) {
	d.mu.Lock()
	for i, rec := range d.recs {
		if rec == r {
			last := len(d.recs) - 1
			d.recs[i] = d.recs[last]
			d.recs[last] = nil
			d.recs = d.recs[:last]
			break
		}
	}
	d.mu.Unlock()
}

// BlockedRecord is one record currently holding the epoch back, paired
// with the raw announcement word it was observed at. A watchdog compares
// two samples: the same record blocked at the same state word across a
// full tick interval is wedged, not merely slow.
type BlockedRecord struct {
	Rec   *Record
	State uint64
}

// Blocked returns the records whose open critical regions prevent the
// epoch from advancing right now (active, announced in an older epoch).
// Diagnostics and watchdog input; the result is a snapshot.
func (d *Domain) Blocked() []BlockedRecord {
	e := d.epoch.Load()
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []BlockedRecord
	for _, r := range d.recs {
		s := r.state.Load()
		if s&1 == 1 && s>>1 != e {
			out = append(out, BlockedRecord{Rec: r, State: s})
		}
	}
	return out
}

// Expel forcibly detaches a wedged record from the domain: the watchdog's
// recovery path for Fraser's stalled-reader failure mode. The record is
// removed from the participant set (its announcement no longer blocks
// advancement), its limbo is dropped to the GC and counted reclaimed (so
// reclaimed == retired remains reachable at drain), and the domain
// permanently downgrades to GC-backed reclamation — the expelled owner
// may still be running its traversal, so from here on no reclaim
// callback (poisoning, pooling) may recycle memory it could reach; see
// the package comment. The owner's later Unregister is a harmless no-op.
// Reports whether this call performed the expulsion.
func (d *Domain) Expel(r *Record) bool {
	if !r.dom.CompareAndSwap(d, nil) {
		return false
	}
	// Downgrade BEFORE the record stops blocking advancement: once the
	// epoch can move again, no flush anywhere may run callbacks.
	d.gcOnly.Store(true)
	r.state.Store(0)
	d.remove(r)
	dropped := uint64(0)
	r.limboMu.Lock()
	for b := 0; b < buckets; b++ {
		dropped += uint64(len(r.limbo[b]))
		r.limbo[b] = nil
	}
	r.limboMu.Unlock()
	// The dropped nodes are reclaimed by the GC the moment the last real
	// reference dies; no grace period applies to dropping a reference.
	d.reclaimed.Add(dropped)
	d.expelled.Add(1)
	if d.tryAdvance() {
		d.tryAdvance()
	}
	return true
}

// flushOrphansLocked reclaims every orphan bucket whose grace period has
// elapsed. Callers hold d.mu.
func (d *Domain) flushOrphansLocked(e uint64) {
	gcOnly := d.gcOnly.Load()
	for b := 0; b < buckets; b++ {
		if len(d.orphans[b]) > 0 && e >= d.orphanEpoch[b]+2 {
			for _, n := range d.orphans[b] {
				if n.fn != nil && !gcOnly {
					n.fn(n.ptr)
				}
			}
			d.reclaimed.Add(uint64(len(d.orphans[b])))
			d.orphans[b] = d.orphans[b][:0]
		}
	}
}

// tryAdvance bumps the global epoch if every active record has been
// observed in the current epoch. Inactive records do not block advancement.
// A successful advance also drains any orphan buckets that became safe.
func (d *Domain) tryAdvance() bool {
	e := d.epoch.Load()
	d.mu.Lock()
	for _, r := range d.recs {
		s := r.state.Load()
		if s&1 == 1 && s>>1 != e {
			d.mu.Unlock()
			return false
		}
	}
	d.mu.Unlock()
	if !d.epoch.CompareAndSwap(e, e+1) {
		return false
	}
	d.mu.Lock()
	d.flushOrphansLocked(e + 1)
	d.mu.Unlock()
	return true
}

// Advance exposes tryAdvance for tests and for quiescent-state callers.
func (d *Domain) Advance() bool { return d.tryAdvance() }
