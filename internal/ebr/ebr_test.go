package ebr

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRetireReclaimBasic(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	freed := 0
	r.Enter()
	r.Retire("a", func(any) { freed++ })
	r.Exit()
	// Two manual advances make the bucket safe.
	if !d.Advance() {
		t.Fatal("advance 1 failed with no active records")
	}
	if !d.Advance() {
		t.Fatal("advance 2 failed")
	}
	r.Collect()
	if freed != 1 {
		t.Fatalf("freed = %d, want 1", freed)
	}
	ret, rec := d.Stats()
	if ret != 1 || rec != 1 {
		t.Fatalf("stats = (%d, %d), want (1, 1)", ret, rec)
	}
}

func TestActiveReaderBlocksAdvance(t *testing.T) {
	d := NewDomain()
	reader := d.Register()
	writer := d.Register()

	reader.Enter() // reader pinned at current epoch
	if !d.Advance() {
		t.Fatal("first advance should succeed (reader announced current epoch)")
	}
	// Now the reader's announced epoch is stale; advancement must fail
	// until it exits.
	if d.Advance() {
		t.Fatal("advance succeeded despite stale active reader")
	}
	freed := false
	writer.Enter()
	writer.Retire("x", func(any) { freed = true })
	writer.Exit()
	writer.Collect()
	if freed {
		t.Fatal("node reclaimed during reader's grace period")
	}
	reader.Exit()
	if !d.Advance() {
		t.Fatal("advance after reader exit failed")
	}
	d.Advance()
	writer.Collect()
	if !freed {
		t.Fatal("node not reclaimed after grace period")
	}
}

func TestInactiveRecordsDoNotBlock(t *testing.T) {
	d := NewDomain()
	for i := 0; i < 10; i++ {
		d.Register() // never Enter
	}
	if !d.Advance() {
		t.Fatal("inactive records blocked advancement")
	}
}

func TestReclaimOrderPreservesGrace(t *testing.T) {
	// A node retired in epoch e must never be freed while a region that
	// started in epoch e is still active.
	d := NewDomain()
	reader := d.Register()
	writer := d.Register()

	reader.Enter()
	var freedDuringRead atomic.Bool
	writer.Enter()
	for i := 0; i < 1000; i++ {
		writer.Retire(i, func(any) {
			if reader.Active() {
				freedDuringRead.Store(true)
			}
		})
	}
	writer.Exit()
	// Retire-triggered advancement cannot pass the pinned reader more than
	// once, so nothing from the reader's epoch may have been freed while
	// it is active... flush what can be flushed:
	writer.Collect()
	reader.Exit()
	if freedDuringRead.Load() {
		t.Fatal("a node was reclaimed while an overlapping reader was active")
	}
}

func TestAutomaticAdvanceViaThreshold(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	freed := 0
	// Retire far more than the threshold with no concurrent readers: the
	// record must advance the epoch itself and reclaim old buckets.
	for i := 0; i < advanceThreshold*10; i++ {
		r.Enter()
		r.Retire(i, func(any) { freed++ })
		r.Exit()
	}
	if freed == 0 {
		t.Fatal("threshold-driven reclamation never fired")
	}
	ret, rec := d.Stats()
	if rec > ret {
		t.Fatalf("reclaimed %d > retired %d", rec, ret)
	}
}

func TestNilCallbackAllowed(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	r.Enter()
	r.Retire("x", nil)
	r.Exit()
	d.Advance()
	d.Advance()
	r.Collect()
	if r.Reclaimed != 1 {
		t.Fatalf("nil-callback node not reclaimed: %d", r.Reclaimed)
	}
}

func TestConcurrentStress(t *testing.T) {
	// Readers continuously enter/exit; writers retire; every callback
	// checks a liveness token that readers hold while active. If EBR frees
	// early, a callback observes a token still in use.
	d := NewDomain()
	const readers = 4
	const writers = 4
	const iters = 20000

	type node struct {
		alive atomic.Bool
	}
	var current atomic.Pointer[node]
	first := &node{}
	first.alive.Store(true)
	current.Store(first)

	var violation atomic.Bool
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := d.Register()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec.Enter()
				n := current.Load()
				if !n.alive.Load() {
					violation.Store(true)
				}
				rec.Exit()
			}
		}()
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := d.Register()
			for j := 0; j < iters; j++ {
				rec.Enter()
				n := &node{}
				n.alive.Store(true)
				old := current.Swap(n)
				rec.Retire(old, func(p any) {
					p.(*node).alive.Store(false)
				})
				rec.Exit()
			}
		}()
	}
	// Let writers finish, then stop readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	go func() {
		<-done
	}()
	// Writers exit on their own; signal readers when writers are done.
	go func() {
		// crude: wait until all retired
		for {
			ret, _ := d.Stats()
			if ret >= writers*iters {
				close(stop)
				return
			}
		}
	}()
	wg.Wait()
	if violation.Load() {
		t.Fatal("reader observed a reclaimed (dead) node: grace period violated")
	}
	ret, rec := d.Stats()
	if ret != writers*iters {
		t.Fatalf("retired = %d, want %d", ret, writers*iters)
	}
	if rec > ret {
		t.Fatalf("reclaimed %d > retired %d", rec, ret)
	}
}

func TestEpochMonotone(t *testing.T) {
	d := NewDomain()
	prev := d.Epoch()
	for i := 0; i < 100; i++ {
		d.Advance()
		if e := d.Epoch(); e < prev {
			t.Fatalf("epoch went backwards: %d -> %d", prev, e)
		} else {
			prev = e
		}
	}
}

// TestPanickedWorkerDoesNotWedgeDomain is the regression test for the
// defer-based unregister contract: a worker that dies mid-bracket (after
// Enter and Retire, before Exit) used to leave its record pinned at a
// stale epoch, blocking Advance for every other thread forever. With
// Unregister deferred — and documented safe to call inside a critical
// region — the domain must keep advancing and quiesce to
// reclaimed == retired.
func TestPanickedWorkerDoesNotWedgeDomain(t *testing.T) {
	d := NewDomain()
	survivor := d.Register()
	defer survivor.Unregister()

	var freed atomic.Int64
	died := make(chan struct{})
	go func() {
		r := d.Register()
		defer close(died)
		defer r.Unregister() // the fix under test: runs mid-bracket
		defer func() { recover() }()
		r.Enter()
		r.Retire("victim", func(any) { freed.Add(1) })
		panic("worker killed mid-bracket")
	}()
	<-died

	// The survivor must still observe epoch progress...
	before := d.Epoch()
	for i := 0; i < 4; i++ {
		if !d.Advance() {
			t.Fatalf("advance %d blocked after worker death", i)
		}
	}
	if d.Epoch() <= before {
		t.Fatalf("epoch did not advance past %d", before)
	}
	// ...and the dead worker's orphaned limbo must drain completely.
	ret, rec := d.Stats()
	if ret != 1 || rec != 1 {
		t.Fatalf("stats = (%d, %d), want (1, 1): orphaned limbo not reclaimed", ret, rec)
	}
	if freed.Load() != 1 {
		t.Fatalf("victim callback ran %d times, want 1", freed.Load())
	}
}

func BenchmarkEnterExit(b *testing.B) {
	d := NewDomain()
	r := d.Register()
	for i := 0; i < b.N; i++ {
		r.Enter()
		r.Exit()
	}
}

func BenchmarkRetire(b *testing.B) {
	d := NewDomain()
	r := d.Register()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enter()
		r.Retire(nil, nil)
		r.Exit()
	}
}
