package ebr

import (
	"sync"
	"sync/atomic"
	"testing"
)

// A stalled reader (active record announced in an old epoch) must show up
// in Blocked, and Expel must restore epoch liveness while keeping the
// reclaimed/retired ledger balanced — at the documented price of the
// domain downgrading to GC-only reclamation.
func TestExpelRestoresLiveness(t *testing.T) {
	d := NewDomain()
	victim := d.Register()
	worker := d.Register()
	defer worker.Unregister()

	victim.Enter() // ...and never exits: the wedged reader.
	if !d.Advance() {
		t.Fatal("first advance must succeed (victim announced current epoch)")
	}
	if d.Advance() {
		t.Fatal("second advance must be blocked by the stalled reader")
	}
	blocked := d.Blocked()
	if len(blocked) != 1 || blocked[0].Rec != victim {
		t.Fatalf("Blocked() = %v, want exactly the victim", blocked)
	}
	// Meanwhile the healthy worker retires nodes that cannot reclaim.
	var freed atomic.Int64
	cb := func(any) { freed.Add(1) }
	worker.Enter()
	for i := 0; i < 10; i++ {
		worker.Retire(new(int), cb)
	}
	worker.Exit()

	if !d.Expel(victim) {
		t.Fatal("Expel returned false")
	}
	if d.Expel(victim) {
		t.Fatal("second Expel must be a no-op")
	}
	victim.Unregister() // owner's deferred cleanup: must be a harmless no-op
	if !d.GCOnly() || d.Expelled() != 1 {
		t.Fatalf("gcOnly=%v expelled=%d, want true/1", d.GCOnly(), d.Expelled())
	}
	if len(d.Blocked()) != 0 {
		t.Fatal("victim still reported blocked after expulsion")
	}
	for i := 0; i < 4; i++ {
		if !d.Advance() {
			t.Fatalf("advance %d still blocked after expulsion", i)
		}
	}
	worker.Collect()
	ret, rec := d.Stats()
	if ret != rec {
		t.Fatalf("stats = (%d, %d): ledger unbalanced after expel+drain", ret, rec)
	}
	// GC-only mode: the nodes counted reclaimed, but no callback ran.
	if freed.Load() != 0 {
		t.Fatalf("%d reclaim callbacks ran in a gcOnly domain", freed.Load())
	}
}

// The expelled record's own limbo is dropped to the GC and counted, so a
// drain still ends at reclaimed == retired.
func TestExpelCountsVictimLimbo(t *testing.T) {
	d := NewDomain()
	victim := d.Register()
	victim.Enter()
	for i := 0; i < 5; i++ {
		victim.Retire(new(int), func(any) {})
	}
	if !d.Expel(victim) {
		t.Fatal("Expel returned false")
	}
	ret, rec := d.Stats()
	if ret != 5 || rec != 5 {
		t.Fatalf("stats = (%d, %d), want (5, 5)", ret, rec)
	}
}

// Retire racing with Expel must never strand a counted-retired node in a
// limbo bucket nobody will ever flush.
func TestExpelRetireRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		d := NewDomain()
		r := d.Register()
		r.Enter()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Retire(new(int), func(any) {})
			}
		}()
		go func() {
			defer wg.Done()
			d.Expel(r)
		}()
		wg.Wait()
		for i := 0; i < 4; i++ {
			d.Advance()
		}
		ret, rec := d.Stats()
		if ret != rec {
			t.Fatalf("round %d: stats = (%d, %d) after expel race", round, ret, rec)
		}
	}
}

// Operations on an expelled record must be safe no-ops: the owner may be
// mid-operation when the watchdog fires.
func TestExpelledRecordIsInert(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	d.Expel(r)
	r.Enter()
	if r.Active() {
		t.Fatal("Enter on an expelled record announced itself")
	}
	r.Retire(new(int), func(any) { t.Fatal("callback ran for a post-expel retire") })
	r.Collect()
	r.Exit()
	r.Unregister()
	ret, rec := d.Stats()
	if ret != 0 || rec != 0 {
		t.Fatalf("post-expel retire was counted: (%d, %d)", ret, rec)
	}
}
