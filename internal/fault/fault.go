// Package fault is the repository's deterministic fault plane: a seedable,
// schedule-driven injector that generalizes internal/interrupt (the paper's
// §5.4 delay experiments) into named fault points threaded through every
// layer — structure/combinator boundaries (operation delays, forced
// guard-validation failures), the EBR domain (stalled and abandoned
// records, delayed retire callbacks), and the serving stack (slow/torn/
// dropped connections, injected handler panics, forced busy shedding).
//
// Determinism is the whole point: a Plan is a seed plus a set of per-point
// rules, an Injector derives one private RNG stream per (point, worker)
// pair from that seed, and every firing is counted in a shared Tally. Two
// runs that execute the same operation sequence under the same plan fire
// the same faults the same number of times — which is what lets the chaos
// battery (settest.RunChaos), `csdsd -fault` and `csdsbench -fault` pin
// failures to reproducible seeds instead of waiting for production to
// find them.
//
// The plane injects faults; it never implements recovery. Recovery lives
// where it belongs: the EBR watchdog and degraded mode in internal/server,
// retry/backoff/deadline discipline in server.Client, and the GC-backed
// expulsion path in internal/ebr. DESIGN.md §8 documents the split.
package fault

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"csds/internal/xrand"
)

// Point names one injection site. Points are a closed set: ParsePlan
// rejects unknown names, so a typo'd schedule is an error, not a silent
// no-op chaos run.
type Point string

const (
	// OpDelay delays a worker between operations (outside any lock or
	// epoch bracket) — multiprogrammed descheduling, §5.4's between-ops
	// case.
	OpDelay Point = "op.delay"
	// CSDelay delays a worker inside a write critical section, while its
	// locks are held — the paper's Figure 9 adversary, routed through
	// core.Ctx.CSHook.
	CSDelay Point = "cs.delay"
	// GuardFail forces a ScanGuard validation failure after an otherwise
	// consistent optimistic collect, driving scans and cursor pages down
	// their retry and freeze-barrier fallback paths.
	GuardFail Point = "guard.fail"
	// RetireDelay delays a retire callback at reclaim time (the callback
	// runs late, not the retirement itself).
	RetireDelay Point = "retire.delay"
	// EBRStall runs a reclamation antagonist: a registered record that
	// enters a critical region and sits in it, holding the epoch back.
	// The rule's Min/Max bound the stall length.
	EBRStall Point = "ebr.stall"
	// EBRAbandon runs an antagonist that enters a critical region and
	// then unregisters without exiting — the panicking-worker shape that
	// Record.Unregister's force-exit must absorb.
	EBRAbandon Point = "ebr.abandon"
	// ConnSlow stalls a server-side connection read or write mid-stream.
	ConnSlow Point = "conn.slow"
	// ConnTorn writes a prefix of a response and then severs the
	// connection — a torn frame on the wire.
	ConnTorn Point = "conn.torn"
	// ConnDrop severs a connection outright.
	ConnDrop Point = "conn.drop"
	// HandlerPanic panics inside the server's request handler, exercising
	// the per-connection containment (recover + EBR unregister) path.
	HandlerPanic Point = "handler.panic"
	// ShedBusy forces the server to answer SERVER_ERROR busy as if the
	// in-flight gate were saturated.
	ShedBusy Point = "shed.busy"
)

// Points is the closed set of injection sites, in canonical order (the
// order String renders and Tally reports in).
var Points = []Point{
	OpDelay, CSDelay, GuardFail, RetireDelay,
	EBRStall, EBRAbandon,
	ConnSlow, ConnTorn, ConnDrop, HandlerPanic, ShedBusy,
}

// numPoints must track len(Points); the package test pins the equality.
const numPoints = 11

var pointIndex = func() map[Point]int {
	m := make(map[Point]int, len(Points))
	for i, p := range Points {
		m[p] = i
	}
	return m
}()

// Rule configures one point. Exactly one trigger must be set: Prob fires
// each draw with that probability, Every fires deterministically on every
// N-th draw (the reproducible-count workhorse). Min/Max bound the injected
// duration for delay-shaped points; points without a duration ignore them.
type Rule struct {
	Prob     float64
	Every    uint64
	Min, Max time.Duration
}

func (r Rule) validate(pt Point) error {
	switch {
	case r.Prob < 0 || r.Prob > 1:
		return fmt.Errorf("fault: %s: probability %g outside [0,1]", pt, r.Prob)
	case r.Prob > 0 && r.Every > 0:
		return fmt.Errorf("fault: %s: p and every are mutually exclusive", pt)
	case r.Prob == 0 && r.Every == 0:
		return fmt.Errorf("fault: %s: needs p=<prob> or every=<n>", pt)
	case r.Min < 0 || r.Max < r.Min:
		return fmt.Errorf("fault: %s: bad duration range [%v,%v]", pt, r.Min, r.Max)
	}
	return nil
}

// Plan is a fault schedule: a seed plus per-point rules. Plans are
// immutable once built and safe to share between workers; a nil *Plan
// means "no faults" everywhere one is accepted.
type Plan struct {
	Seed  uint64
	rules map[Point]Rule
}

// NewPlan starts an empty schedule with the given seed.
func NewPlan(seed uint64) *Plan {
	return &Plan{Seed: seed, rules: make(map[Point]Rule)}
}

// Set installs a rule for pt and returns the plan for chaining. It panics
// on an invalid rule or unknown point — plans are built by code or by
// ParsePlan, both of which must not produce invalid schedules.
func (p *Plan) Set(pt Point, r Rule) *Plan {
	if _, ok := pointIndex[pt]; !ok {
		panic(fmt.Sprintf("fault: unknown point %q", pt))
	}
	if err := r.validate(pt); err != nil {
		panic(err)
	}
	p.rules[pt] = r
	return p
}

// Rule returns pt's rule and whether the plan schedules it.
func (p *Plan) Rule(pt Point) (Rule, bool) {
	if p == nil {
		return Rule{}, false
	}
	r, ok := p.rules[pt]
	return r, ok
}

// Enabled reports whether the plan schedules pt.
func (p *Plan) Enabled(pt Point) bool {
	_, ok := p.Rule(pt)
	return ok
}

// Active returns the scheduled points in canonical order.
func (p *Plan) Active() []Point {
	if p == nil {
		return nil
	}
	var out []Point
	for _, pt := range Points {
		if _, ok := p.rules[pt]; ok {
			out = append(out, pt)
		}
	}
	return out
}

// String renders the plan in the spec grammar ParsePlan accepts;
// ParsePlan(p.String()) reproduces the plan exactly.
func (p *Plan) String() string {
	if p == nil {
		return "off"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, pt := range p.Active() {
		r := p.rules[pt]
		b.WriteByte(';')
		b.WriteString(string(pt))
		b.WriteByte(':')
		if r.Every > 0 {
			fmt.Fprintf(&b, "every=%d", r.Every)
		} else {
			fmt.Fprintf(&b, "p=%s", strconv.FormatFloat(r.Prob, 'g', -1, 64))
		}
		if r.Max > 0 {
			fmt.Fprintf(&b, ",min=%v,max=%v", r.Min, r.Max)
		}
	}
	return b.String()
}

// ParsePlan parses a fault schedule spec:
//
//	seed=42;op.delay:p=0.02,min=1us,max=50us;conn.drop:every=500
//
// Segments are ';'-separated. "seed=N" may appear anywhere (default 1).
// Every other segment is point:key=value[,key=value...] with keys p
// (probability), every (fire each N-th draw; exclusive with p), and
// min/max (Go durations). The shorthands "" and "off" mean no plan
// (nil, nil); "chaos" or "chaos:seed=N" is the standard battery schedule
// (ChaosPlan). Unknown points and malformed rules are errors.
func ParsePlan(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	switch {
	case spec == "" || spec == "off":
		return nil, nil
	case spec == "chaos":
		return ChaosPlan(1), nil
	case strings.HasPrefix(spec, "chaos:seed="):
		seed, err := strconv.ParseUint(strings.TrimPrefix(spec, "chaos:seed="), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad chaos seed in %q: %v", spec, err)
		}
		return ChaosPlan(seed), nil
	}
	p := NewPlan(1)
	sawRule := false
	for _, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if v, ok := strings.CutPrefix(seg, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			p.Seed = seed
			continue
		}
		name, args, ok := strings.Cut(seg, ":")
		if !ok {
			return nil, fmt.Errorf("fault: segment %q is not point:key=value[,...]", seg)
		}
		pt := Point(strings.TrimSpace(name))
		if _, known := pointIndex[pt]; !known {
			return nil, fmt.Errorf("fault: unknown point %q (known: %v)", name, Points)
		}
		var r Rule
		for _, kv := range strings.Split(args, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("fault: %s: %q is not key=value", pt, kv)
			}
			var err error
			switch k {
			case "p", "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
			case "every":
				r.Every, err = strconv.ParseUint(v, 10, 64)
			case "min":
				r.Min, err = time.ParseDuration(v)
			case "max":
				r.Max, err = time.ParseDuration(v)
			default:
				err = fmt.Errorf("unknown key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: %s: %s=%s: %v", pt, k, v, err)
			}
		}
		if r.Max == 0 {
			r.Max = r.Min
		}
		if err := r.validate(pt); err != nil {
			return nil, err
		}
		p.rules[pt] = r
		sawRule = true
	}
	if !sawRule {
		return nil, fmt.Errorf("fault: spec %q schedules no points", spec)
	}
	return p, nil
}

// ChaosPlan is the standard battery schedule: every structure-facing and
// EBR-facing point armed at rates tuned so a few thousand operations per
// worker hit each point several times without drowning the run in sleep.
// settest.RunChaos and the CI chaos job run exactly this plan under three
// pinned seeds.
func ChaosPlan(seed uint64) *Plan {
	return NewPlan(seed).
		Set(OpDelay, Rule{Prob: 0.02, Min: time.Microsecond, Max: 50 * time.Microsecond}).
		Set(CSDelay, Rule{Prob: 0.005, Min: time.Microsecond, Max: 20 * time.Microsecond}).
		Set(GuardFail, Rule{Prob: 0.25}).
		Set(RetireDelay, Rule{Prob: 0.02, Min: time.Microsecond, Max: 10 * time.Microsecond}).
		Set(EBRStall, Rule{Every: 7, Min: 50 * time.Microsecond, Max: 500 * time.Microsecond}).
		Set(EBRAbandon, Rule{Every: 11})
}

// Tally counts firings per point, shared by all of a run's injectors.
// All methods are safe for concurrent use.
type Tally struct {
	counts [numPoints]atomic.Uint64
}

// NewTally returns an empty tally.
func NewTally() *Tally { return &Tally{} }

func (t *Tally) add(pt Point) {
	if t != nil {
		t.counts[pointIndex[pt]].Add(1)
	}
}

// Count returns pt's firing count.
func (t *Tally) Count(pt Point) uint64 {
	if t == nil {
		return 0
	}
	return t.counts[pointIndex[pt]].Load()
}

// Total returns the firing count summed over all points.
func (t *Tally) Total() uint64 {
	var n uint64
	if t != nil {
		for i := range t.counts {
			n += t.counts[i].Load()
		}
	}
	return n
}

// Snapshot returns the nonzero counts keyed by point.
func (t *Tally) Snapshot() map[Point]uint64 {
	out := make(map[Point]uint64)
	if t != nil {
		for i, pt := range Points {
			if n := t.counts[i].Load(); n > 0 {
				out[pt] = n
			}
		}
	}
	return out
}

// String renders the nonzero counts in canonical order:
// "op.delay=12 conn.drop=3". Empty tally renders "none".
func (t *Tally) String() string {
	snap := t.Snapshot()
	if len(snap) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(snap))
	for pt := range snap {
		keys = append(keys, string(pt))
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, snap[Point(k)]))
	}
	return strings.Join(parts, " ")
}

// Injector is one worker's (or one connection's) view of a plan: a private
// deterministic RNG stream per scheduled point, so firing decisions depend
// only on (seed, point, worker, draw index) — never on other workers'
// progress. Not safe for concurrent use; give each goroutine its own.
// A nil *Injector never fires — every method tolerates a nil receiver, so
// fault hooks cost one predictable branch when no plan is armed.
type Injector struct {
	tally *Tally
	pts   [numPoints]injPoint
}

type injPoint struct {
	armed bool
	rule  Rule
	rng   *xrand.Rng
	n     uint64 // draws since the last every-N firing
}

// NewInjector builds worker w's injector for plan. The stream for each
// point mixes the plan seed, the point's canonical index, and the worker
// index, so adding a point to a plan does not shift any other point's
// stream. tally may be nil (no counting); a nil plan returns nil.
func NewInjector(plan *Plan, worker uint64, tally *Tally) *Injector {
	if plan == nil {
		return nil
	}
	in := &Injector{tally: tally}
	for i, pt := range Points {
		r, ok := plan.rules[pt]
		if !ok {
			continue
		}
		seed := plan.Seed
		seed ^= (uint64(i) + 1) * 0x9e3779b97f4a7c15
		seed ^= (worker + 1) * 0xbf58476d1ce4e5b9
		in.pts[i] = injPoint{armed: true, rule: r, rng: xrand.New(seed | 1)}
	}
	return in
}

// Fire draws pt's trigger and reports whether the fault fires; firings
// are counted in the shared tally.
func (in *Injector) Fire(pt Point) bool {
	if in == nil {
		return false
	}
	p := &in.pts[pointIndex[pt]]
	if !p.armed {
		return false
	}
	fired := false
	if p.rule.Every > 0 {
		p.n++
		if p.n >= p.rule.Every {
			p.n = 0
			fired = true
		}
	} else {
		fired = p.rng.Bool(p.rule.Prob)
	}
	if fired {
		in.tally.add(pt)
	}
	return fired
}

// Duration draws a duration from pt's [Min, Max] range (deterministic,
// from the same per-point stream).
func (in *Injector) Duration(pt Point) time.Duration {
	if in == nil {
		return 0
	}
	p := &in.pts[pointIndex[pt]]
	if !p.armed || p.rule.Max <= 0 {
		return 0
	}
	span := int64(p.rule.Max - p.rule.Min)
	if span <= 0 {
		return p.rule.Min
	}
	return p.rule.Min + time.Duration(p.rng.Int63n(span+1))
}

// Delay fires pt and, when it fires, busy-spins for a drawn duration.
// It reports whether the fault fired.
func (in *Injector) Delay(pt Point) bool {
	if !in.Fire(pt) {
		return false
	}
	Spin(in.Duration(pt))
	return true
}

// Spin busy-waits for about d, yielding the processor each iteration —
// the same adversary shape as interrupt.Spin: the goroutine stays
// runnable (and keeps holding whatever it holds) instead of parking.
func Spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
