package fault

import (
	"strings"
	"testing"
	"time"
)

func TestNumPointsPinned(t *testing.T) {
	if len(Points) != numPoints {
		t.Fatalf("numPoints const is %d but Points has %d entries", numPoints, len(Points))
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	specs := []string{
		"seed=42;op.delay:p=0.02,min=1µs,max=50µs",
		"seed=7;conn.drop:every=500;handler.panic:every=9",
		"seed=1;guard.fail:p=0.25;ebr.stall:every=7,min=50µs,max=500µs",
	}
	for _, spec := range specs {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		again, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("ParsePlan(String()=%q): %v", p.String(), err)
		}
		if p.String() != again.String() {
			t.Fatalf("round trip drifted: %q -> %q", p.String(), again.String())
		}
	}
	// The standard battery plan must round-trip through its own rendering.
	cp := ChaosPlan(3)
	back, err := ParsePlan(cp.String())
	if err != nil {
		t.Fatalf("ParsePlan(ChaosPlan.String()=%q): %v", cp.String(), err)
	}
	if back.String() != cp.String() {
		t.Fatalf("chaos plan drifted: %q -> %q", cp.String(), back.String())
	}
}

func TestParsePlanShorthands(t *testing.T) {
	for _, spec := range []string{"", "off", "  off  "} {
		p, err := ParsePlan(spec)
		if err != nil || p != nil {
			t.Fatalf("ParsePlan(%q) = %v, %v; want nil, nil", spec, p, err)
		}
	}
	p, err := ParsePlan("chaos:seed=9")
	if err != nil || p == nil || p.Seed != 9 {
		t.Fatalf("ParsePlan(chaos:seed=9) = %v, %v", p, err)
	}
	if p.String() != ChaosPlan(9).String() {
		t.Fatalf("chaos shorthand != ChaosPlan(9)")
	}
}

func TestParsePlanRejects(t *testing.T) {
	bad := []string{
		"seed=1",                          // no points scheduled
		"seed=1;bogus.point:p=0.5",        // unknown point
		"seed=1;op.delay:p=1.5",           // probability out of range
		"seed=1;op.delay:p=0.5,every=3",   // both triggers
		"seed=1;op.delay:min=5us,max=1us", // inverted range
		"seed=1;op.delay:frequency=3",     // unknown key
		"seed=x;op.delay:p=0.5",           // bad seed
		"op.delay",                        // no rule at all
	}
	for _, spec := range bad {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted; want error", spec)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	plan, err := ParsePlan("seed=11;op.delay:p=0.1,min=0s,max=0s;conn.drop:every=37;guard.fail:p=0.3")
	if err != nil {
		t.Fatal(err)
	}
	run := func() map[Point]uint64 {
		tally := NewTally()
		for w := uint64(0); w < 4; w++ {
			in := NewInjector(plan, w, tally)
			for i := 0; i < 5000; i++ {
				in.Fire(OpDelay)
				in.Fire(ConnDrop)
				in.Fire(GuardFail)
			}
		}
		return tally.Snapshot()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults fired at all")
	}
	for pt, n := range a {
		if b[pt] != n {
			t.Fatalf("point %s: run1 fired %d, run2 fired %d", pt, n, b[pt])
		}
	}
	if a[ConnDrop] != 4*(5000/37) {
		t.Fatalf("every=37 over 4x5000 draws fired %d, want %d", a[ConnDrop], 4*(5000/37))
	}
}

func TestInjectorStreamsIndependent(t *testing.T) {
	// Arming an extra point must not shift another point's stream.
	base, _ := ParsePlan("seed=5;op.delay:p=0.1")
	more, _ := ParsePlan("seed=5;op.delay:p=0.1;conn.drop:p=0.5")
	ta, tb := NewTally(), NewTally()
	ia, ib := NewInjector(base, 0, ta), NewInjector(more, 0, tb)
	for i := 0; i < 3000; i++ {
		ia.Fire(OpDelay)
		ib.Fire(OpDelay)
		ib.Fire(ConnDrop)
	}
	if ta.Count(OpDelay) != tb.Count(OpDelay) {
		t.Fatalf("op.delay stream shifted: %d vs %d", ta.Count(OpDelay), tb.Count(OpDelay))
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for _, pt := range Points {
		if in.Fire(pt) {
			t.Fatalf("nil injector fired %s", pt)
		}
		if in.Duration(pt) != 0 {
			t.Fatalf("nil injector drew a duration for %s", pt)
		}
		if in.Delay(pt) {
			t.Fatalf("nil injector delayed at %s", pt)
		}
	}
	var p *Plan
	if p.Enabled(OpDelay) || p.String() != "off" || len(p.Active()) != 0 {
		t.Fatal("nil plan misbehaved")
	}
	var tl *Tally
	if tl.Total() != 0 || tl.Count(OpDelay) != 0 {
		t.Fatal("nil tally misbehaved")
	}
}

func TestDurationBounds(t *testing.T) {
	plan, _ := ParsePlan("seed=2;op.delay:p=1,min=3us,max=9us")
	in := NewInjector(plan, 1, nil)
	for i := 0; i < 200; i++ {
		d := in.Duration(OpDelay)
		if d < 3*time.Microsecond || d > 9*time.Microsecond {
			t.Fatalf("duration %v outside [3us,9us]", d)
		}
	}
}

func TestTallyString(t *testing.T) {
	tl := NewTally()
	if tl.String() != "none" {
		t.Fatalf("empty tally = %q", tl.String())
	}
	plan, _ := ParsePlan("seed=1;shed.busy:every=1")
	in := NewInjector(plan, 0, tl)
	in.Fire(ShedBusy)
	in.Fire(ShedBusy)
	if !strings.Contains(tl.String(), "shed.busy=2") {
		t.Fatalf("tally = %q, want shed.busy=2", tl.String())
	}
}
