// Package harness is the measurement engine behind every runtime
// experiment in this repository: it spawns T worker goroutines against one
// data structure instance, runs a timed window, and aggregates the
// coarse-grained (throughput, fairness) and fine-grained (lock waiting,
// restarts, HTM fallbacks) metrics of the paper.
//
// Methodology notes mirroring §3.3:
//   - every worker continuously issues requests drawn from the workload;
//   - the structure is pre-filled to its steady-state size;
//   - results can be averaged over multiple runs (the paper uses 11 runs
//     of 5 s; the defaults here are CI-sized and configurable).
package harness

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csds/internal/core"
	"csds/internal/ebr"
	"csds/internal/fault"
	"csds/internal/htm"
	"csds/internal/interrupt"
	"csds/internal/stats"
	"csds/internal/workload"
	"csds/internal/xrand"
)

// Config describes one experiment cell.
type Config struct {
	// Algorithm is an algorithm specification: a plain registry name
	// ("list/lazy") or a composite built from structure combinators
	// ("sharded(16,list/lazy)", "readcache(1024,bst/tk)"). Composite
	// instances pass every inner operation through the worker's context,
	// so per-shard lock-wait and restart metrics aggregate into the same
	// per-thread slots a plain run fills.
	Algorithm string
	// Threads is the worker count.
	Threads int
	// Duration is the measured window per run.
	Duration time.Duration
	// Runs averages this many runs (>=1).
	Runs int
	// Workload parameters.
	Workload workload.Config
	// ElideAttempts > 0 enables HTM lock elision.
	ElideAttempts int
	// UseEBR attaches an epoch-based reclamation domain.
	UseEBR bool
	// Seed makes runs reproducible.
	Seed uint64

	// CacheTTL / CacheAdmission configure any readcache combinator in the
	// algorithm spec (passed through core.Options): entry expiry and the
	// admission policy (combinator.AdmitAlways/AdmitTinyLFU/AdmitWindow).
	CacheTTL       time.Duration
	CacheAdmission string

	// DelayedThreads is how many workers run the Figure 9 victim plan
	// (delays while holding locks).
	DelayedThreads int
	DelayPlan      interrupt.DelayPlan

	// SwitchPlan, when non-nil on a run, subjects every worker to
	// multiprogramming-style context switches (Tables 2–3).
	SwitchPlan *interrupt.SwitchPlan

	// Fault, when non-nil, arms the chaos plane (internal/fault) for the
	// run: every worker gets a deterministic per-worker injector wired
	// into its context (operation delays, critical-section delays,
	// forced guard failures, delayed retire callbacks), and — with EBR
	// on — a reclamation antagonist stalls and abandons records for the
	// plan's ebr.* points. Firing counts land in Result.FaultFires.
	Fault *fault.Plan

	// ResizeSteps schedules explicit width changes at fixed offsets into
	// each run. The algorithm must resolve to a core.Resizable composite
	// (wrap any spec in elastic(N,...)).
	ResizeSteps []ResizeStep
	// Elastic, when non-nil, runs the adaptive grow/shrink controller
	// during each run (also requires a core.Resizable algorithm).
	Elastic *ElasticPolicy
}

// ResizeStep is one scheduled width change: at offset At into the run,
// resize the structure to Width shards (the csdsbench -resize-at axis).
type ResizeStep struct {
	At    time.Duration
	Width int
}

// ElasticPolicy is the adaptive resize trigger: a controller samples the
// workers' published counters every Interval and doubles the partition
// width when a shard is running too hot (per-shard throughput above
// GrowOps, or lock-wait fraction above GrowWait), halving it when shards
// run cold (per-shard throughput below ShrinkOps). This gives experiments
// a load-tracking scenario axis: ramp the offered load and watch the
// width follow.
type ElasticPolicy struct {
	// Interval is the sampling cadence (default 25ms).
	Interval time.Duration
	// GrowOps doubles the width when per-shard throughput (ops/s)
	// exceeds it; 0 disables the trigger.
	GrowOps float64
	// ShrinkOps halves the width when per-shard throughput falls below
	// it; 0 disables the trigger.
	ShrinkOps float64
	// GrowWait doubles the width when the fraction of worker time spent
	// waiting for locks exceeds it; 0 disables the trigger.
	GrowWait float64
	// MinWidth / MaxWidth bound the controller (defaults 1 and 64).
	MinWidth, MaxWidth int
}

func (p ElasticPolicy) withDefaults() ElasticPolicy {
	if p.Interval <= 0 {
		p.Interval = 25 * time.Millisecond
	}
	if p.MinWidth < 1 {
		p.MinWidth = 1
	}
	if p.MaxWidth < p.MinWidth {
		p.MaxWidth = 64
		if p.MaxWidth < p.MinWidth {
			p.MaxWidth = p.MinWidth
		}
	}
	return p
}

// WidthSample is one point of the width-over-time trace.
type WidthSample struct {
	AtNs  uint64 // offset into the run
	Width int
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Duration <= 0 {
		c.Duration = 100 * time.Millisecond
	}
	if c.Runs <= 0 {
		c.Runs = 1
	}
	if c.Seed == 0 {
		c.Seed = 0xD1CE
	}
	c.Workload = c.Workload.WithDefaults()
	return c
}

// Result aggregates one experiment cell (averaged over runs).
type Result struct {
	Config Config

	// Coarse-grained. Throughput counts point operations only; range
	// scans are measured apart (below) so a scan-heavy mix never
	// masquerades as point-op speed.
	Throughput      float64 // point operations per second, system-wide
	PerThreadMean   float64 // ops/s per thread
	PerThreadStddev float64 // stddev of per-thread ops/s (fairness, Fig 4)
	TotalOps        uint64

	// Range scans (set when the workload's ScanRatio > 0).
	ScanThroughput float64 // scans per second, system-wide
	TotalScans     uint64
	ScanKeysMean   float64 // mappings returned per scan, averaged
	ScanMeanNs     float64 // mean scan latency
	ScanMaxNs      uint64  // worst single scan
	ScanRetryFrac  float64 // optimistic validation retries per scan

	// Paginated cursor scans (set when the workload's CursorRatio > 0).
	// Pages are measured apart from one-shot scans and from point ops:
	// pages/sec is the serving-rate metric of a pagination workload, and
	// the retry fraction counts resume-validation (and stale-epoch)
	// retries per page.
	PageThroughput  float64 // cursor pages per second, system-wide
	TotalPages      uint64
	TotalCursors    uint64  // full paginated iterations completed
	PageKeysMean    float64 // mappings delivered per page, averaged
	PageMeanNs      float64 // mean page latency
	PageMaxNs       uint64  // worst single page
	CursorRetryFrac float64 // validation/epoch retries per page
	// Refill counters of the streaming page machinery: how much the
	// page collects materialized. PagePullKeysMean / PageKeysMean is
	// the overcollect factor — ~1 on O(page) protocols, k× on an eager
	// k-way merge — so page-cost regressions show in the CSV.
	PagePullsMean    float64 // bounded per-part pulls per page
	PagePullKeysMean float64 // keys pulled per page (overshoot+retries incl.)

	// Batched operations (set when the workload's BatchRatio > 0).
	// Batches are measured apart from point ops — batches/sec and
	// keys/batch together give the amortized per-key rate, and the
	// combine fraction says how often a batch traveled a shard's
	// flat-combining publication list instead of applying directly.
	BatchThroughput float64 // batches per second, system-wide
	TotalBatches    uint64
	TotalBatchKeys  uint64
	BatchKeysMean   float64 // keys per batch, averaged
	BatchMeanNs     float64 // mean batch latency
	BatchMaxNs      uint64  // worst single batch
	CombineFrac     float64 // fraction of batches applied by a combiner
	CombinedBatches uint64

	// Read-through cache behaviour (set when the spec composes a
	// readcache). The hit fraction is the cache's service rate over point
	// gets; expiries count TTL deaths (entries present but too old to
	// serve); rejects count fills the admission policy refused.
	CacheHits     uint64
	CacheMisses   uint64
	CacheFills    uint64
	CacheExpiries uint64
	CacheRejects  uint64
	CacheHitFrac  float64 // CacheHits / (CacheHits + CacheMisses)

	// AllocsPerOp is the heap-allocation rate: runtime.ReadMemStats
	// Mallocs delta across the run divided by all work units (point ops,
	// batch keys, scans and pages). Averaged over runs.
	AllocsPerOp float64

	// Fine-grained (practical wait-freedom).
	WaitFraction       float64 // fraction of time waiting for locks (Fig 5)
	WaitFractionStddev float64
	RestartedFrac      float64 // ops restarted >= 1 times (Fig 6, 8)
	RestartedFrac3     float64 // ops restarted > 3 times (Fig 8)
	MaxWaitNs          uint64  // worst single lock wait (outliers, §5.1)
	WaitingOpsFrac     float64 // fraction of lock acquisitions that waited

	// Restart histogram, summed over threads (RestartedOps buckets).
	RestartHist [stats.RestartBuckets]uint64

	// HTM elision (Tables 2–3).
	FallbackFrac float64 // critical sections that took the real lock
	TxAborts     [4]uint64

	// EBR bookkeeping and reclamation economics. Retired/Reclaimed are
	// domain totals; PoolHits/PoolMisses count node allocations served
	// from (or missed by) the typed free-lists, and GCPauseNs is the
	// stop-the-world GC pause time that landed inside the measured
	// window (runtime.MemStats PauseTotalNs delta) — the column that
	// shows what real reclamation buys back from the collector.
	Retired, Reclaimed uint64
	PoolHits           uint64
	PoolMisses         uint64
	PoolHitFrac        float64 // PoolHits / (PoolHits + PoolMisses)
	GCPauseNs          uint64

	// Elastic resharding (set when ResizeSteps or an Elastic policy ran).
	Resizes    int           // resizes published, summed over runs
	FinalWidth int           // partition width at the end of the last run
	WidthTrace []WidthSample // width-over-time trace of the last run

	// Chaos plane (set when Config.Fault armed a plan): injected-fault
	// firing counts per point, summed over runs, and their total.
	FaultFires map[fault.Point]uint64
	Faults     uint64
}

// Run executes the experiment and averages the runs.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	newSet, err := core.NewFactory(cfg.Algorithm)
	if err != nil {
		return Result{}, fmt.Errorf("harness: %w", err)
	}
	if len(cfg.ResizeSteps) > 0 || cfg.Elastic != nil {
		steps := make([]ResizeStep, len(cfg.ResizeSteps))
		copy(steps, cfg.ResizeSteps)
		sort.Slice(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
		cfg.ResizeSteps = steps
	}
	agg := Result{Config: cfg}
	for r := 0; r < cfg.Runs; r++ {
		res, err := runOnce(cfg, newSet, uint64(r))
		if err != nil {
			return Result{}, err
		}
		agg.accumulate(&res, cfg.Runs)
	}
	return agg, nil
}

// Accumulate folds one run's Result into the receiver as 1/runs of the
// average — the same aggregation Run applies across its own repetitions,
// exported for external drivers (csdsbench -net) that collect runs
// themselves.
func (a *Result) Accumulate(r *Result, runs int) { a.accumulate(r, runs) }

// accumulate folds one run into the average.
func (a *Result) accumulate(r *Result, runs int) {
	f := 1 / float64(runs)
	a.Throughput += r.Throughput * f
	a.PerThreadMean += r.PerThreadMean * f
	a.PerThreadStddev += r.PerThreadStddev * f
	a.TotalOps += r.TotalOps
	a.ScanThroughput += r.ScanThroughput * f
	a.TotalScans += r.TotalScans
	a.ScanKeysMean += r.ScanKeysMean * f
	a.ScanMeanNs += r.ScanMeanNs * f
	if r.ScanMaxNs > a.ScanMaxNs {
		a.ScanMaxNs = r.ScanMaxNs
	}
	a.ScanRetryFrac += r.ScanRetryFrac * f
	a.PageThroughput += r.PageThroughput * f
	a.TotalPages += r.TotalPages
	a.TotalCursors += r.TotalCursors
	a.PageKeysMean += r.PageKeysMean * f
	a.PageMeanNs += r.PageMeanNs * f
	if r.PageMaxNs > a.PageMaxNs {
		a.PageMaxNs = r.PageMaxNs
	}
	a.CursorRetryFrac += r.CursorRetryFrac * f
	a.PagePullsMean += r.PagePullsMean * f
	a.PagePullKeysMean += r.PagePullKeysMean * f
	a.BatchThroughput += r.BatchThroughput * f
	a.TotalBatches += r.TotalBatches
	a.TotalBatchKeys += r.TotalBatchKeys
	a.BatchKeysMean += r.BatchKeysMean * f
	a.BatchMeanNs += r.BatchMeanNs * f
	if r.BatchMaxNs > a.BatchMaxNs {
		a.BatchMaxNs = r.BatchMaxNs
	}
	a.CombineFrac += r.CombineFrac * f
	a.CombinedBatches += r.CombinedBatches
	a.CacheHits += r.CacheHits
	a.CacheMisses += r.CacheMisses
	a.CacheFills += r.CacheFills
	a.CacheExpiries += r.CacheExpiries
	a.CacheRejects += r.CacheRejects
	if lookups := a.CacheHits + a.CacheMisses; lookups > 0 {
		a.CacheHitFrac = float64(a.CacheHits) / float64(lookups)
	}
	a.AllocsPerOp += r.AllocsPerOp * f
	a.WaitFraction += r.WaitFraction * f
	a.WaitFractionStddev += r.WaitFractionStddev * f
	a.RestartedFrac += r.RestartedFrac * f
	a.RestartedFrac3 += r.RestartedFrac3 * f
	if r.MaxWaitNs > a.MaxWaitNs {
		a.MaxWaitNs = r.MaxWaitNs
	}
	a.WaitingOpsFrac += r.WaitingOpsFrac * f
	for i := range a.RestartHist {
		a.RestartHist[i] += r.RestartHist[i]
	}
	a.FallbackFrac += r.FallbackFrac * f
	for i := range a.TxAborts {
		a.TxAborts[i] += r.TxAborts[i]
	}
	a.Retired += r.Retired
	a.Reclaimed += r.Reclaimed
	a.PoolHits += r.PoolHits
	a.PoolMisses += r.PoolMisses
	if draws := a.PoolHits + a.PoolMisses; draws > 0 {
		a.PoolHitFrac = float64(a.PoolHits) / float64(draws)
	}
	a.GCPauseNs += r.GCPauseNs
	a.Resizes += r.Resizes
	a.FinalWidth = r.FinalWidth
	if r.WidthTrace != nil {
		a.WidthTrace = r.WidthTrace
	}
	for pt, n := range r.FaultFires {
		if a.FaultFires == nil {
			a.FaultFires = make(map[fault.Point]uint64)
		}
		a.FaultFires[pt] += n
	}
	a.Faults += r.Faults
}

func runOnce(cfg Config, newSet func(core.Options) core.Set, round uint64) (Result, error) {
	opts := core.Options{
		ElideAttempts: cfg.ElideAttempts,
		ExpectedSize:  cfg.Workload.Size,
		// Workload keys are drawn from [1, KeySpace]; range-partitioning
		// combinators split exactly that domain.
		KeySpan:        core.Key(cfg.Workload.KeySpace) + 1,
		CacheTTL:       cfg.CacheTTL,
		CacheAdmission: cfg.CacheAdmission,
	}
	var dom *ebr.Domain
	if cfg.UseEBR {
		dom = ebr.NewDomain()
		opts.Domain = dom
	}
	s := newSet(opts)
	gen := workload.NewGenerator(cfg.Workload)

	// Pre-fill from a setup context.
	setup := &core.Ctx{ID: 0, Rng: xrand.New(cfg.Seed)}
	gen.Fill(setup, s)

	rz, _ := s.(core.Resizable)
	runCtrl := len(cfg.ResizeSteps) > 0 || cfg.Elastic != nil
	if runCtrl && rz == nil {
		return Result{}, fmt.Errorf("harness: algorithm %q is not resizable; wrap the spec in elastic(N,...) to use resize schedules or elastic policies", cfg.Algorithm)
	}
	var scanner core.Scanner
	if cfg.Workload.ScanRatio > 0 {
		sc, ok := s.(core.Scanner)
		if !ok {
			return Result{}, fmt.Errorf("harness: algorithm %q does not implement core.Scanner; a workload with ScanRatio > 0 needs range-scan support", cfg.Algorithm)
		}
		scanner = sc
	}
	var cursor core.Cursor
	if cfg.Workload.CursorRatio > 0 {
		cu, ok := s.(core.Cursor)
		if !ok {
			return Result{}, fmt.Errorf("harness: algorithm %q does not implement core.Cursor; a workload with CursorRatio > 0 needs paginated-scan support", cfg.Algorithm)
		}
		cursor = cu
	}
	var batcher core.Batcher
	if cfg.Workload.BatchRatio > 0 {
		ba, ok := s.(core.Batcher)
		if !ok {
			return Result{}, fmt.Errorf("harness: algorithm %q does not implement core.Batcher; a workload with BatchRatio > 0 needs batched-operation support", cfg.Algorithm)
		}
		batcher = ba
	}
	var live []liveCell
	if runCtrl && cfg.Elastic != nil {
		live = make([]liveCell, cfg.Threads)
	}

	ths := make([]stats.Thread, cfg.Threads)
	var stop atomic.Bool
	var start sync.WaitGroup
	var done sync.WaitGroup
	startGate := make(chan struct{})

	var tally *fault.Tally
	if cfg.Fault != nil {
		tally = fault.NewTally()
	}

	for w := 0; w < cfg.Threads; w++ {
		start.Add(1)
		done.Add(1)
		go func(w int) {
			defer done.Done()
			rng := xrand.New(cfg.Seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15 ^ round<<32)
			c := &core.Ctx{ID: w, Rng: rng, Stats: &ths[w], Doom: &htm.Doom{}}
			if dom != nil {
				c.Epoch = dom.Register()
				// Deferred, not tail-called: a worker that panics (or
				// returns early) mid-bracket would otherwise leave its
				// record registered at a stale epoch and wedge advancement
				// for the whole domain. Unregister force-exits any open
				// bracket, flushes limbo already past its grace period,
				// and orphans the rest to the domain, so the snapshot of
				// the lifetime reclaim counter comes after it runs.
				defer func() {
					c.Epoch.Unregister()
					ths[w].Reclaims = c.Epoch.Reclaimed
				}()
			}
			inj := interrupt.NewInjector(cfg.Seed + uint64(w) + round)
			if w < cfg.DelayedThreads {
				dp := cfg.DelayPlan
				inj.Delay = &dp
			}
			if cfg.SwitchPlan != nil {
				sp := *cfg.SwitchPlan
				inj.Switch = &sp
			}
			inj.Doom = c.Doom
			inj.Elided = cfg.ElideAttempts > 0
			if inj.Delay != nil || inj.Switch != nil {
				c.CSHook = inj.CSHook
			}
			// Chaos plane: the fault injector's per-worker stream rides
			// alongside the interrupt injector — interrupts model scheduler
			// hostility, faults model everything else (forced guard
			// failures, delayed retires, scheduled stalls). The CS hooks
			// chain so both planes can fire inside one critical section.
			var fin *fault.Injector
			if cfg.Fault != nil {
				fin = fault.NewInjector(cfg.Fault, uint64(w), tally)
				c.Fault = fin
				prev := c.CSHook
				if prev == nil {
					c.CSHook = func() { fin.Delay(fault.CSDelay) }
				} else {
					c.CSHook = func() { prev(); fin.Delay(fault.CSDelay) }
				}
			}

			// Reusable batch buffers: grown to the largest batch drawn so
			// far and refilled in place, so steady-state batch issue costs
			// zero allocations in the measurement loop.
			var keyBuf []core.Key
			var pairBuf []core.KV

			start.Done()
			<-startGate
			t0 := time.Now()
			// Phase-based dynamics (flash crowds, drift, diurnal think
			// time): the phase — elapsed fraction of the window — is
			// resampled every 64 ops, and only for dynamic workloads, so
			// the steady-state loop stays clock-free. Static workloads
			// keep phase 0, where KeyAt is bit-identical to Key.
			dynamic := gen.Dynamic()
			durNs := float64(cfg.Duration)
			var phase float64
			var opsSince uint
			for !stop.Load() {
				if dynamic {
					if opsSince&63 == 0 {
						phase = float64(time.Since(t0)) / durNs
						phase -= math.Floor(phase)
					}
					opsSince++
				}
				op := gen.NextOp(rng)
				k := gen.KeyAt(rng, phase)
				switch op {
				case workload.OpGet:
					_, hit := s.Get(c, k)
					c.Stats.RecordRead(hit)
				case workload.OpPut:
					inj.OnUpdate()
					ok := s.Put(c, k, core.Value(k))
					c.Stats.RecordInsert(ok)
				case workload.OpRemove:
					inj.OnUpdate()
					ok := s.Remove(c, k)
					c.Stats.RecordRemove(ok)
				case workload.OpScan:
					// Scans time themselves (the only per-op clock reads in
					// the loop — scans are orders of magnitude rarer and
					// longer than point ops, so the paper's no-clock-on-the-
					// fast-path methodology is preserved) and record into
					// their own counters, never into Ops.
					lo, hi := gen.ScanRangeAt(rng, phase)
					keys := 0
					scanStart := time.Now()
					scanner.Scan(c, lo, hi, func(core.Key, core.Value) bool {
						keys++
						return true
					})
					c.Stats.RecordScan(keys, uint64(time.Since(scanStart)))
				case workload.OpCursorScan:
					// One paginated iteration: page through the window
					// with page sizes drawn from the page-size
					// distribution. Each page is timed and recorded on
					// its own (pages/sec is the serving-rate metric);
					// like scans, nothing here touches Ops. The raw
					// CursorNext interface is used directly — the wire
					// token costs an encode/decode per page and belongs
					// to service boundaries, not the measurement loop.
					lo, hi := gen.ScanRangeAt(rng, phase)
					pos := lo
					for done := false; !done; {
						keys := 0
						pageStart := time.Now()
						pos, done = cursor.CursorNext(c, pos, hi, int(gen.PageLen(rng)), func(core.Key, core.Value) bool {
							keys++
							return true
						})
						c.Stats.RecordPage(keys, uint64(time.Since(pageStart)))
					}
					c.Stats.RecordCursorScan()
				case workload.OpMultiGet, workload.OpMultiPut, workload.OpMultiRemove:
					// One batched call: BatchLen keys drawn from the key
					// popularity distribution (duplicates allowed — the
					// Batcher contract resolves them in index order). Like
					// scans, batches time themselves and record into their
					// own counters, never into Ops.
					n := int(gen.BatchLen(rng))
					switch op {
					case workload.OpMultiGet:
						keyBuf = keyBuf[:0]
						for i := 0; i < n; i++ {
							keyBuf = append(keyBuf, gen.KeyAt(rng, phase))
						}
						batchStart := time.Now()
						batcher.MultiGet(c, keyBuf, func(int, core.Value, bool) {})
						c.Stats.RecordBatch(n, uint64(time.Since(batchStart)))
					case workload.OpMultiPut:
						inj.OnUpdate()
						pairBuf = pairBuf[:0]
						for i := 0; i < n; i++ {
							bk := gen.KeyAt(rng, phase)
							pairBuf = append(pairBuf, core.KV{K: bk, V: core.Value(bk)})
						}
						batchStart := time.Now()
						batcher.MultiPut(c, pairBuf, func(int, bool) {})
						c.Stats.RecordBatch(n, uint64(time.Since(batchStart)))
					default: // workload.OpMultiRemove
						inj.OnUpdate()
						keyBuf = keyBuf[:0]
						for i := 0; i < n; i++ {
							keyBuf = append(keyBuf, gen.KeyAt(rng, phase))
						}
						batchStart := time.Now()
						batcher.MultiRemove(c, keyBuf, func(int, bool) {})
						c.Stats.RecordBatch(n, uint64(time.Since(batchStart)))
					}
				}
				if live != nil && c.Stats.Ops&(liveEvery-1) == 0 {
					// Publish a snapshot of the thread's plain counters so
					// the elastic controller can sample mid-run without a
					// data race. Occasional atomic stores to a private
					// cache line: no shared RMW traffic on the hot path.
					live[w].ops.Store(c.Stats.Ops)
					live[w].waitNs.Store(c.Stats.LockWaitNs)
				}
				if dynamic {
					// Diurnal ramp: the closed loop throttles itself with a
					// phase-dependent think time (zero for non-diurnal mixes).
					if tn := gen.ThinkNsAt(phase); tn > 0 {
						time.Sleep(time.Duration(tn))
					}
				}
				inj.BetweenOps()
				fin.Delay(fault.OpDelay)
			}
			ths[w].ActiveNs = uint64(time.Since(t0))
		}(w)
	}

	// The EBR antagonist: with a fault plan scheduling ebr.* points and
	// reclamation on, a dedicated goroutine stalls inside epoch brackets
	// (holding the global epoch back while workers retire into limbo) and
	// abandons records active-without-exit, exercising Unregister's
	// force-exit and the server watchdog's failure model. It uses
	// throwaway records so worker reclamation stays untouched, and the
	// worker stream space continues past the workers (stream cfg.Threads).
	var antWg sync.WaitGroup
	if dom != nil && cfg.Fault != nil &&
		(cfg.Fault.Enabled(fault.EBRStall) || cfg.Fault.Enabled(fault.EBRAbandon)) {
		antIn := fault.NewInjector(cfg.Fault, uint64(cfg.Threads), tally)
		antWg.Add(1)
		go func() {
			defer antWg.Done()
			<-startGate
			for !stop.Load() {
				if antIn.Fire(fault.EBRStall) {
					r := dom.Register()
					r.Enter()
					fault.Spin(antIn.Duration(fault.EBRStall))
					r.Exit()
					r.Unregister()
				}
				if antIn.Fire(fault.EBRAbandon) {
					r := dom.Register()
					r.Enter()
					// No Exit: the panicking-worker shape.
					r.Unregister()
				}
				runtime.Gosched()
			}
		}()
	}

	var ctrlWg sync.WaitGroup
	var trace []WidthSample
	resizes := 0
	if runCtrl {
		ctrlWg.Add(1)
		go func() {
			defer ctrlWg.Done()
			// The controller gets its own context and stats slot: shard
			// migration is an administrative cost, not workload ops, so it
			// stays out of the per-thread metrics.
			cc := &core.Ctx{ID: cfg.Threads, Rng: xrand.New(cfg.Seed ^ 0xE1A57C), Stats: &stats.Thread{}}
			if dom != nil {
				// The controller retires superseded shard maps through
				// its own record (eager resize reclamation).
				cc.Epoch = dom.Register()
				defer cc.Epoch.Unregister()
			}
			<-startGate
			t0 := time.Now()
			width := rz.Width()
			trace = append(trace, WidthSample{AtNs: 0, Width: width})
			publish := func() {
				resizes++
				width = rz.Width()
				trace = append(trace, WidthSample{AtNs: uint64(time.Since(t0)), Width: width})
			}
			var pol ElasticPolicy
			if cfg.Elastic != nil {
				pol = cfg.Elastic.withDefaults()
			}
			nextSample := pol.Interval
			var lastOps, lastWaitNs uint64
			var lastAt time.Duration
			idx := 0
			for !stop.Load() {
				now := time.Since(t0)
				for idx < len(cfg.ResizeSteps) && now >= cfg.ResizeSteps[idx].At {
					// A same-width step is a no-op (no epoch swap); count
					// only resizes that actually changed the partition.
					if rz.Resize(cc, cfg.ResizeSteps[idx].Width) == nil && rz.Width() != width {
						publish()
					}
					idx++
				}
				if cfg.Elastic != nil && now >= nextSample {
					var ops, waitNs uint64
					for i := range live {
						ops += live[i].ops.Load()
						waitNs += live[i].waitNs.Load()
					}
					if dt := now - lastAt; dt > 0 {
						perShard := float64(ops-lastOps) / dt.Seconds() / float64(width)
						waitFrac := float64(waitNs-lastWaitNs) / (float64(dt) * float64(cfg.Threads))
						target := width
						switch {
						case (pol.GrowOps > 0 && perShard > pol.GrowOps) ||
							(pol.GrowWait > 0 && waitFrac > pol.GrowWait):
							target = width * 2
						case pol.ShrinkOps > 0 && perShard < pol.ShrinkOps:
							target = width / 2
						}
						if target < pol.MinWidth {
							target = pol.MinWidth
						}
						if target > pol.MaxWidth {
							target = pol.MaxWidth
						}
						if target != width && rz.Resize(cc, target) == nil && rz.Width() != width {
							publish()
						}
					}
					lastOps, lastWaitNs, lastAt = ops, waitNs, now
					nextSample = now + pol.Interval
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	start.Wait()
	// Allocation accounting brackets the measured window with
	// ReadMemStats (a brief stop-the-world each, outside the window's
	// hot loop on both sides). The Mallocs delta over all work units is
	// the allocs/op column of the bench grid.
	var mem0, mem1 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	close(startGate)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	done.Wait()
	antWg.Wait()
	ctrlWg.Wait()
	if dom != nil {
		// Quiesced drain: every record has unregistered, so each advance
		// succeeds and ages the orphaned limbo out of its grace period —
		// end-of-run bookkeeping should show reclaimed ~= retired, not a
		// pile of nodes stranded one epoch short.
		dom.Advance()
		dom.Advance()
		dom.Advance()
	}
	runtime.ReadMemStats(&mem1)

	res := summarize(cfg, ths, dom)
	if units := res.TotalOps + res.TotalBatchKeys + res.TotalScans + res.TotalPages; units > 0 {
		res.AllocsPerOp = float64(mem1.Mallocs-mem0.Mallocs) / float64(units)
	}
	res.GCPauseNs = mem1.PauseTotalNs - mem0.PauseTotalNs
	if runCtrl {
		res.Resizes = resizes
		res.FinalWidth = rz.Width()
		res.WidthTrace = trace
	}
	if tally != nil {
		res.FaultFires = tally.Snapshot()
		res.Faults = tally.Total()
	}
	return res, nil
}

// liveEvery is the op cadence at which workers publish counter snapshots
// for the elastic controller (power of two so the check is one AND).
const liveEvery = 256

// liveCell is one worker's published snapshot, padded to its own cache
// line so neighbours' stores do not interfere.
type liveCell struct {
	ops    atomic.Uint64
	waitNs atomic.Uint64
	_      [48]byte
}

// SummarizeThreads folds externally collected per-worker counters into a
// Result exactly the way Run does for its own workers. csdsbench's
// networked mode uses it: the closed-loop client threads fill
// stats.Thread slots while driving a remote csdsd, then reuse the whole
// local reporting path (throughput, wait fractions, scan/batch rates).
func SummarizeThreads(cfg Config, ths []stats.Thread) Result {
	return summarize(cfg.withDefaults(), ths, nil)
}

func summarize(cfg Config, ths []stats.Thread, dom *ebr.Domain) Result {
	res := Result{Config: cfg}
	perThread := make([]float64, len(ths))
	waitFracs := make([]float64, len(ths))
	var totalOps, totalWaits, totalAcqs uint64
	var txCommits, txFallbacks uint64
	for i := range ths {
		t := &ths[i]
		secs := float64(t.ActiveNs) / 1e9
		if secs > 0 {
			perThread[i] = float64(t.Ops) / secs
		}
		waitFracs[i] = t.WaitFraction()
		totalOps += t.Ops
		totalWaits += t.LockWaits
		totalAcqs += t.LockAcqs
		if t.MaxWaitNs > res.MaxWaitNs {
			res.MaxWaitNs = t.MaxWaitNs
		}
		for b := range t.RestartedOps {
			res.RestartHist[b] += t.RestartedOps[b]
		}
		txCommits += t.TxCommits
		txFallbacks += t.TxFallbacks
		for a := range t.TxAborts {
			res.TxAborts[a] += t.TxAborts[a]
		}
	}
	res.TotalOps = totalOps
	res.PerThreadMean = stats.Mean(perThread)
	res.PerThreadStddev = stats.Stddev(perThread)
	res.Throughput = res.PerThreadMean * float64(len(ths))
	var totalScans, scanKeys, scanNs, scanRetries uint64
	scanRates := make([]float64, 0, len(ths))
	for i := range ths {
		t := &ths[i]
		totalScans += t.Scans
		scanKeys += t.ScanKeys
		scanNs += t.ScanNs
		scanRetries += t.ScanRetries
		if t.MaxScanNs > res.ScanMaxNs {
			res.ScanMaxNs = t.MaxScanNs
		}
		if secs := float64(t.ActiveNs) / 1e9; secs > 0 {
			scanRates = append(scanRates, float64(t.Scans)/secs)
		}
	}
	res.TotalScans = totalScans
	if totalScans > 0 {
		res.ScanThroughput = stats.Mean(scanRates) * float64(len(ths))
		res.ScanKeysMean = float64(scanKeys) / float64(totalScans)
		res.ScanMeanNs = float64(scanNs) / float64(totalScans)
		res.ScanRetryFrac = float64(scanRetries) / float64(totalScans)
	}
	var totalPages, pageKeys, pageNs, cursorRetries, totalCursors uint64
	var pagePulls, pagePullKeys uint64
	pageRates := make([]float64, 0, len(ths))
	for i := range ths {
		t := &ths[i]
		totalPages += t.Pages
		pageKeys += t.PageKeys
		pageNs += t.PageNs
		cursorRetries += t.CursorRetries
		totalCursors += t.CursorScans
		pagePulls += t.PagePulls
		pagePullKeys += t.PagePullKeys
		if t.MaxPageNs > res.PageMaxNs {
			res.PageMaxNs = t.MaxPageNs
		}
		if secs := float64(t.ActiveNs) / 1e9; secs > 0 {
			pageRates = append(pageRates, float64(t.Pages)/secs)
		}
	}
	res.TotalPages = totalPages
	res.TotalCursors = totalCursors
	if totalPages > 0 {
		res.PageThroughput = stats.Mean(pageRates) * float64(len(ths))
		res.PageKeysMean = float64(pageKeys) / float64(totalPages)
		res.PageMeanNs = float64(pageNs) / float64(totalPages)
		res.CursorRetryFrac = float64(cursorRetries) / float64(totalPages)
		res.PagePullsMean = float64(pagePulls) / float64(totalPages)
		res.PagePullKeysMean = float64(pagePullKeys) / float64(totalPages)
	}
	var totalBatches, batchKeys, batchNs, combined uint64
	batchRates := make([]float64, 0, len(ths))
	for i := range ths {
		t := &ths[i]
		totalBatches += t.Batches
		batchKeys += t.BatchKeys
		batchNs += t.BatchNs
		combined += t.CombinedBatches
		if t.MaxBatchNs > res.BatchMaxNs {
			res.BatchMaxNs = t.MaxBatchNs
		}
		if secs := float64(t.ActiveNs) / 1e9; secs > 0 {
			batchRates = append(batchRates, float64(t.Batches)/secs)
		}
	}
	res.TotalBatches = totalBatches
	res.TotalBatchKeys = batchKeys
	res.CombinedBatches = combined
	if totalBatches > 0 {
		res.BatchThroughput = stats.Mean(batchRates) * float64(len(ths))
		res.BatchKeysMean = float64(batchKeys) / float64(totalBatches)
		res.BatchMeanNs = float64(batchNs) / float64(totalBatches)
		res.CombineFrac = float64(combined) / float64(totalBatches)
	}
	res.WaitFraction = stats.Mean(waitFracs)
	res.WaitFractionStddev = stats.Stddev(waitFracs)
	if totalOps > 0 {
		var atLeast1, moreThan3 uint64
		for b := 1; b < stats.RestartBuckets; b++ {
			atLeast1 += res.RestartHist[b]
			if b > 3 {
				moreThan3 += res.RestartHist[b]
			}
		}
		res.RestartedFrac = float64(atLeast1) / float64(totalOps)
		res.RestartedFrac3 = float64(moreThan3) / float64(totalOps)
	}
	if totalAcqs > 0 {
		res.WaitingOpsFrac = float64(totalWaits) / float64(totalAcqs)
	}
	if cs := txCommits + txFallbacks; cs > 0 {
		res.FallbackFrac = float64(txFallbacks) / float64(cs)
	}
	if dom != nil {
		res.Retired, res.Reclaimed = dom.Stats()
	}
	var hits, misses uint64
	for i := range ths {
		hits += ths[i].PoolHits
		misses += ths[i].PoolMisses
	}
	res.PoolHits, res.PoolMisses = hits, misses
	if draws := hits + misses; draws > 0 {
		res.PoolHitFrac = float64(hits) / float64(draws)
	}
	for i := range ths {
		t := &ths[i]
		res.CacheHits += t.CacheHits
		res.CacheMisses += t.CacheMisses
		res.CacheFills += t.CacheFills
		res.CacheExpiries += t.CacheExpiries
		res.CacheRejects += t.CacheRejects
	}
	if lookups := res.CacheHits + res.CacheMisses; lookups > 0 {
		res.CacheHitFrac = float64(res.CacheHits) / float64(lookups)
	}
	return res
}
