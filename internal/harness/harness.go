// Package harness is the measurement engine behind every runtime
// experiment in this repository: it spawns T worker goroutines against one
// data structure instance, runs a timed window, and aggregates the
// coarse-grained (throughput, fairness) and fine-grained (lock waiting,
// restarts, HTM fallbacks) metrics of the paper.
//
// Methodology notes mirroring §3.3:
//   - every worker continuously issues requests drawn from the workload;
//   - the structure is pre-filled to its steady-state size;
//   - results can be averaged over multiple runs (the paper uses 11 runs
//     of 5 s; the defaults here are CI-sized and configurable).
package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"csds/internal/core"
	"csds/internal/ebr"
	"csds/internal/htm"
	"csds/internal/interrupt"
	"csds/internal/stats"
	"csds/internal/workload"
	"csds/internal/xrand"
)

// Config describes one experiment cell.
type Config struct {
	// Algorithm is an algorithm specification: a plain registry name
	// ("list/lazy") or a composite built from structure combinators
	// ("sharded(16,list/lazy)", "readcache(1024,bst/tk)"). Composite
	// instances pass every inner operation through the worker's context,
	// so per-shard lock-wait and restart metrics aggregate into the same
	// per-thread slots a plain run fills.
	Algorithm string
	// Threads is the worker count.
	Threads int
	// Duration is the measured window per run.
	Duration time.Duration
	// Runs averages this many runs (>=1).
	Runs int
	// Workload parameters.
	Workload workload.Config
	// ElideAttempts > 0 enables HTM lock elision.
	ElideAttempts int
	// UseEBR attaches an epoch-based reclamation domain.
	UseEBR bool
	// Seed makes runs reproducible.
	Seed uint64

	// DelayedThreads is how many workers run the Figure 9 victim plan
	// (delays while holding locks).
	DelayedThreads int
	DelayPlan      interrupt.DelayPlan

	// SwitchPlan, when non-nil on a run, subjects every worker to
	// multiprogramming-style context switches (Tables 2–3).
	SwitchPlan *interrupt.SwitchPlan
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Duration <= 0 {
		c.Duration = 100 * time.Millisecond
	}
	if c.Runs <= 0 {
		c.Runs = 1
	}
	if c.Seed == 0 {
		c.Seed = 0xD1CE
	}
	c.Workload = c.Workload.WithDefaults()
	return c
}

// Result aggregates one experiment cell (averaged over runs).
type Result struct {
	Config Config

	// Coarse-grained.
	Throughput      float64 // operations per second, system-wide
	PerThreadMean   float64 // ops/s per thread
	PerThreadStddev float64 // stddev of per-thread ops/s (fairness, Fig 4)
	TotalOps        uint64

	// Fine-grained (practical wait-freedom).
	WaitFraction       float64 // fraction of time waiting for locks (Fig 5)
	WaitFractionStddev float64
	RestartedFrac      float64 // ops restarted >= 1 times (Fig 6, 8)
	RestartedFrac3     float64 // ops restarted > 3 times (Fig 8)
	MaxWaitNs          uint64  // worst single lock wait (outliers, §5.1)
	WaitingOpsFrac     float64 // fraction of lock acquisitions that waited

	// Restart histogram, summed over threads (RestartedOps buckets).
	RestartHist [stats.RestartBuckets]uint64

	// HTM elision (Tables 2–3).
	FallbackFrac float64 // critical sections that took the real lock
	TxAborts     [4]uint64

	// EBR bookkeeping.
	Retired, Reclaimed uint64
}

// Run executes the experiment and averages the runs.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	newSet, err := core.NewFactory(cfg.Algorithm)
	if err != nil {
		return Result{}, fmt.Errorf("harness: %w", err)
	}
	agg := Result{Config: cfg}
	for r := 0; r < cfg.Runs; r++ {
		res := runOnce(cfg, newSet, uint64(r))
		agg.accumulate(&res, cfg.Runs)
	}
	return agg, nil
}

// accumulate folds one run into the average.
func (a *Result) accumulate(r *Result, runs int) {
	f := 1 / float64(runs)
	a.Throughput += r.Throughput * f
	a.PerThreadMean += r.PerThreadMean * f
	a.PerThreadStddev += r.PerThreadStddev * f
	a.TotalOps += r.TotalOps
	a.WaitFraction += r.WaitFraction * f
	a.WaitFractionStddev += r.WaitFractionStddev * f
	a.RestartedFrac += r.RestartedFrac * f
	a.RestartedFrac3 += r.RestartedFrac3 * f
	if r.MaxWaitNs > a.MaxWaitNs {
		a.MaxWaitNs = r.MaxWaitNs
	}
	a.WaitingOpsFrac += r.WaitingOpsFrac * f
	for i := range a.RestartHist {
		a.RestartHist[i] += r.RestartHist[i]
	}
	a.FallbackFrac += r.FallbackFrac * f
	for i := range a.TxAborts {
		a.TxAborts[i] += r.TxAborts[i]
	}
	a.Retired += r.Retired
	a.Reclaimed += r.Reclaimed
}

func runOnce(cfg Config, newSet func(core.Options) core.Set, round uint64) Result {
	opts := core.Options{
		ElideAttempts: cfg.ElideAttempts,
		ExpectedSize:  cfg.Workload.Size,
		// Workload keys are drawn from [1, KeySpace]; range-partitioning
		// combinators split exactly that domain.
		KeySpan: core.Key(cfg.Workload.KeySpace) + 1,
	}
	var dom *ebr.Domain
	if cfg.UseEBR {
		dom = ebr.NewDomain()
		opts.Domain = dom
	}
	s := newSet(opts)
	gen := workload.NewGenerator(cfg.Workload)

	// Pre-fill from a setup context.
	setup := &core.Ctx{ID: 0, Rng: xrand.New(cfg.Seed)}
	gen.Fill(setup, s)

	ths := make([]stats.Thread, cfg.Threads)
	var stop atomic.Bool
	var start sync.WaitGroup
	var done sync.WaitGroup
	startGate := make(chan struct{})

	for w := 0; w < cfg.Threads; w++ {
		start.Add(1)
		done.Add(1)
		go func(w int) {
			defer done.Done()
			rng := xrand.New(cfg.Seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15 ^ round<<32)
			c := &core.Ctx{ID: w, Rng: rng, Stats: &ths[w], Doom: &htm.Doom{}}
			if dom != nil {
				c.Epoch = dom.Register()
			}
			inj := interrupt.NewInjector(cfg.Seed + uint64(w) + round)
			if w < cfg.DelayedThreads {
				dp := cfg.DelayPlan
				inj.Delay = &dp
			}
			if cfg.SwitchPlan != nil {
				sp := *cfg.SwitchPlan
				inj.Switch = &sp
			}
			inj.Doom = c.Doom
			inj.Elided = cfg.ElideAttempts > 0
			if inj.Delay != nil || inj.Switch != nil {
				c.CSHook = inj.CSHook
			}

			start.Done()
			<-startGate
			t0 := time.Now()
			for !stop.Load() {
				op := gen.NextOp(rng)
				k := gen.Key(rng)
				switch op {
				case workload.OpGet:
					_, hit := s.Get(c, k)
					c.Stats.RecordRead(hit)
				case workload.OpPut:
					inj.OnUpdate()
					ok := s.Put(c, k, core.Value(k))
					c.Stats.RecordInsert(ok)
				case workload.OpRemove:
					inj.OnUpdate()
					ok := s.Remove(c, k)
					c.Stats.RecordRemove(ok)
				}
				inj.BetweenOps()
			}
			ths[w].ActiveNs = uint64(time.Since(t0))
		}(w)
	}

	start.Wait()
	close(startGate)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	done.Wait()

	return summarize(cfg, ths, dom)
}

func summarize(cfg Config, ths []stats.Thread, dom *ebr.Domain) Result {
	res := Result{Config: cfg}
	perThread := make([]float64, len(ths))
	waitFracs := make([]float64, len(ths))
	var totalOps, totalWaits, totalAcqs uint64
	var txCommits, txFallbacks uint64
	for i := range ths {
		t := &ths[i]
		secs := float64(t.ActiveNs) / 1e9
		if secs > 0 {
			perThread[i] = float64(t.Ops) / secs
		}
		waitFracs[i] = t.WaitFraction()
		totalOps += t.Ops
		totalWaits += t.LockWaits
		totalAcqs += t.LockAcqs
		if t.MaxWaitNs > res.MaxWaitNs {
			res.MaxWaitNs = t.MaxWaitNs
		}
		for b := range t.RestartedOps {
			res.RestartHist[b] += t.RestartedOps[b]
		}
		txCommits += t.TxCommits
		txFallbacks += t.TxFallbacks
		for a := range t.TxAborts {
			res.TxAborts[a] += t.TxAborts[a]
		}
	}
	res.TotalOps = totalOps
	res.PerThreadMean = stats.Mean(perThread)
	res.PerThreadStddev = stats.Stddev(perThread)
	res.Throughput = res.PerThreadMean * float64(len(ths))
	res.WaitFraction = stats.Mean(waitFracs)
	res.WaitFractionStddev = stats.Stddev(waitFracs)
	if totalOps > 0 {
		var atLeast1, moreThan3 uint64
		for b := 1; b < stats.RestartBuckets; b++ {
			atLeast1 += res.RestartHist[b]
			if b > 3 {
				moreThan3 += res.RestartHist[b]
			}
		}
		res.RestartedFrac = float64(atLeast1) / float64(totalOps)
		res.RestartedFrac3 = float64(moreThan3) / float64(totalOps)
	}
	if totalAcqs > 0 {
		res.WaitingOpsFrac = float64(totalWaits) / float64(totalAcqs)
	}
	if cs := txCommits + txFallbacks; cs > 0 {
		res.FallbackFrac = float64(txFallbacks) / float64(cs)
	}
	if dom != nil {
		res.Retired, res.Reclaimed = dom.Stats()
	}
	return res
}
