package harness

import (
	"strings"
	"testing"
	"time"

	"csds/internal/core"
	"csds/internal/interrupt"
	"csds/internal/stats"
	"csds/internal/workload"

	_ "csds/internal/bst"
	_ "csds/internal/combinator"
	_ "csds/internal/hashtable"
	_ "csds/internal/list"
	_ "csds/internal/skiplist"
)

func quick(alg string) Config {
	return Config{
		Algorithm: alg,
		Threads:   4,
		Duration:  40 * time.Millisecond,
		Workload:  workload.Config{Size: 128, UpdateRatio: 0.1},
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(quick("list/lazy"))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 || res.Throughput <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.PerThreadMean <= 0 {
		t.Fatal("per-thread throughput missing")
	}
}

// TestScanMetricsBuckets pins the scan metric plumbing deterministically:
// hand-crafted per-thread counters through summarize must land in the
// scan-specific Result fields and leave the point-op fields exactly what
// they were — scans never masquerade as point operations.
func TestScanMetricsBuckets(t *testing.T) {
	cfg := quick("list/lazy")
	cfg.Threads = 1
	ths := []stats.Thread{{
		Ops:      1000,
		Reads:    1000,
		ActiveNs: 1e9, // 1 s window
		// 10 scans, 50 keys each, 2ms each, worst 5ms, 3 retries total.
		Scans:       10,
		ScanKeys:    500,
		ScanNs:      20e6,
		MaxScanNs:   5e6,
		ScanRetries: 3,
	}}
	res := summarize(cfg, ths, nil)
	if res.TotalOps != 1000 || res.Throughput != 1000 {
		t.Fatalf("point-op throughput polluted by scans: ops=%d thr=%v", res.TotalOps, res.Throughput)
	}
	if res.TotalScans != 10 || res.ScanThroughput != 10 {
		t.Fatalf("scan throughput wrong: %+v", res)
	}
	if res.ScanKeysMean != 50 {
		t.Fatalf("ScanKeysMean = %v, want 50", res.ScanKeysMean)
	}
	if res.ScanMeanNs != 2e6 || res.ScanMaxNs != 5e6 {
		t.Fatalf("scan latency buckets wrong: mean %v max %v", res.ScanMeanNs, res.ScanMaxNs)
	}
	if res.ScanRetryFrac != 0.3 {
		t.Fatalf("ScanRetryFrac = %v, want 0.3", res.ScanRetryFrac)
	}
	// A scanless thread reports zero scan metrics, not NaNs.
	res = summarize(cfg, []stats.Thread{{Ops: 10, ActiveNs: 1e9}}, nil)
	if res.TotalScans != 0 || res.ScanThroughput != 0 || res.ScanKeysMean != 0 || res.ScanMeanNs != 0 {
		t.Fatalf("scanless run leaked scan metrics: %+v", res)
	}
}

// TestPageMetricsBuckets pins the cursor metric plumbing
// deterministically, like TestScanMetricsBuckets: hand-crafted page
// counters must land in the page-specific Result fields and pollute
// neither the point-op nor the one-shot-scan fields.
func TestPageMetricsBuckets(t *testing.T) {
	cfg := quick("list/lazy")
	cfg.Threads = 1
	ths := []stats.Thread{{
		Ops:      1000,
		Reads:    1000,
		ActiveNs: 1e9, // 1 s window
		// 4 paginated iterations totalling 20 pages, 8 keys each,
		// 1ms each, worst 3ms, 5 retries total.
		Pages:         20,
		PageKeys:      160,
		PageNs:        20e6,
		MaxPageNs:     3e6,
		CursorScans:   4,
		CursorRetries: 5,
		// 3 pulls per page materializing 12 keys per page (a 1.5x
		// overcollect over the 8 delivered).
		PagePulls:    60,
		PagePullKeys: 240,
	}}
	res := summarize(cfg, ths, nil)
	if res.TotalOps != 1000 || res.Throughput != 1000 {
		t.Fatalf("point-op throughput polluted by pages: ops=%d thr=%v", res.TotalOps, res.Throughput)
	}
	if res.TotalScans != 0 || res.ScanThroughput != 0 {
		t.Fatalf("one-shot scan metrics polluted by pages: %+v", res)
	}
	if res.TotalPages != 20 || res.PageThroughput != 20 || res.TotalCursors != 4 {
		t.Fatalf("page throughput wrong: %+v", res)
	}
	if res.PageKeysMean != 8 {
		t.Fatalf("PageKeysMean = %v, want 8", res.PageKeysMean)
	}
	if res.PageMeanNs != 1e6 || res.PageMaxNs != 3e6 {
		t.Fatalf("page latency buckets wrong: mean %v max %v", res.PageMeanNs, res.PageMaxNs)
	}
	if res.CursorRetryFrac != 0.25 {
		t.Fatalf("CursorRetryFrac = %v, want 0.25", res.CursorRetryFrac)
	}
	if res.PagePullsMean != 3 || res.PagePullKeysMean != 12 {
		t.Fatalf("page pull means wrong: pulls %v keys %v, want 3 and 12",
			res.PagePullsMean, res.PagePullKeysMean)
	}
	// A cursorless thread reports zero page metrics, not NaNs.
	res = summarize(cfg, []stats.Thread{{Ops: 10, ActiveNs: 1e9}}, nil)
	if res.TotalPages != 0 || res.PageThroughput != 0 || res.PageKeysMean != 0 || res.PageMeanNs != 0 || res.PagePullsMean != 0 {
		t.Fatalf("cursorless run leaked page metrics: %+v", res)
	}
}

// TestRunCursorWorkload drives a real single-worker cursor mix end to
// end (60ms window: comfortably above 1-CPU scheduling noise, like
// TestRunScanWorkload).
func TestRunCursorWorkload(t *testing.T) {
	cfg := Config{
		Algorithm: "striped(4,list/lazy)",
		Threads:   1,
		Duration:  60 * time.Millisecond,
		Workload: workload.Config{
			Size: 256, UpdateRatio: 0.2, CursorRatio: 0.2,
			ScanLen: 64, PageLen: 8,
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPages == 0 || res.PageThroughput <= 0 || res.TotalCursors == 0 {
		t.Fatalf("cursor mix produced no pages: %+v", res)
	}
	if res.TotalPages < res.TotalCursors {
		t.Fatalf("fewer pages than iterations: %+v", res)
	}
	if res.TotalOps == 0 || res.Throughput <= 0 {
		t.Fatalf("cursor mix starved point ops: %+v", res)
	}
	if res.PageKeysMean <= 0 {
		t.Fatalf("pages delivered no keys on a half-full structure: %+v", res)
	}
	if res.PageMeanNs <= 0 || res.PageMaxNs < uint64(res.PageMeanNs) {
		t.Fatalf("page latencies inconsistent: mean %v max %v", res.PageMeanNs, res.PageMaxNs)
	}
	if res.TotalScans != 0 {
		t.Fatalf("cursor mix leaked one-shot scans: %+v", res)
	}
}

// TestCursorWorkloadChecksSupport: a CursorRatio against a structure is
// validated before workers start. Every registered structure implements
// core.Cursor, so the success path goes through Run and the rejection
// path drives runOnce directly with a set whose Cursor is hidden.
func TestCursorWorkloadChecksSupport(t *testing.T) {
	cfg := quick("bst/tk")
	cfg.Workload.CursorRatio = 0.1
	if _, err := Run(cfg); err != nil {
		t.Fatalf("bst/tk implements Cursor but Run rejected the cursor mix: %v", err)
	}
	// noCursor embeds the plain Set interface, so only Get/Put/Remove/Len
	// promote: the core.Cursor assertion on it fails even though the
	// wrapped structure paginates fine.
	cfg = cfg.withDefaults()
	newSet, err := core.NewFactory("list/lazy")
	if err != nil {
		t.Fatal(err)
	}
	_, err = runOnce(cfg, func(o core.Options) core.Set {
		return noCursor{newSet(o)}
	}, 0)
	if err == nil || !strings.Contains(err.Error(), "core.Cursor") {
		t.Fatalf("cursor mix on a cursorless set: err = %v, want a core.Cursor support error", err)
	}
}

// noCursor hides every optional extension of the wrapped set (interface
// embedding promotes only Set's own methods).
type noCursor struct{ core.Set }

// TestRunScanWorkload drives a real single-worker scan mix end to end.
// The worker run is the only timing-dependent part, so it gets a window
// comfortably above the 1-CPU host's scheduling noise.
func TestRunScanWorkload(t *testing.T) {
	cfg := Config{
		Algorithm: "striped(4,list/lazy)",
		Threads:   1,
		Duration:  60 * time.Millisecond,
		Workload:  workload.Config{Size: 256, UpdateRatio: 0.2, ScanRatio: 0.2, ScanLen: 32},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalScans == 0 || res.ScanThroughput <= 0 {
		t.Fatalf("scan mix produced no scans: %+v", res)
	}
	if res.TotalOps == 0 || res.Throughput <= 0 {
		t.Fatalf("scan mix starved point ops: %+v", res)
	}
	if res.ScanKeysMean <= 0 {
		t.Fatalf("scans returned no keys on a half-full structure: %+v", res)
	}
	if res.ScanMeanNs <= 0 || res.ScanMaxNs < uint64(res.ScanMeanNs) {
		t.Fatalf("scan latencies inconsistent: mean %v max %v", res.ScanMeanNs, res.ScanMaxNs)
	}
}

// TestScanWorkloadNeedsScanner: every registered structure implements
// Scanner, so fabricate the miss with a config error path instead — a
// ScanRatio on a spec is validated before workers start.
func TestScanWorkloadNeedsScanner(t *testing.T) {
	cfg := quick("list/lazy")
	cfg.Workload.ScanRatio = 0.1
	if _, err := Run(cfg); err != nil {
		t.Fatalf("list/lazy implements Scanner but Run rejected the scan mix: %v", err)
	}
}

func TestRunBatchWorkload(t *testing.T) {
	cfg := Config{
		Algorithm: "sharded(8,list/lazy)",
		Threads:   2,
		Duration:  60 * time.Millisecond,
		Workload:  workload.Config{Size: 256, UpdateRatio: 0.2, BatchRatio: 0.3, BatchLen: 16},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBatches == 0 || res.BatchThroughput <= 0 {
		t.Fatalf("batch mix produced no batches: %+v", res)
	}
	if res.TotalOps == 0 || res.Throughput <= 0 {
		t.Fatalf("batch mix starved point ops: %+v", res)
	}
	// Uniform batch lengths with mean 16 land in [1, 31].
	if res.BatchKeysMean < 1 || res.BatchKeysMean > 31 {
		t.Fatalf("batch keys mean %.1f outside the drawn range", res.BatchKeysMean)
	}
	if res.BatchMeanNs <= 0 || res.BatchMaxNs < uint64(res.BatchMeanNs) {
		t.Fatalf("batch latencies inconsistent: mean %v max %v", res.BatchMeanNs, res.BatchMaxNs)
	}
	if res.AllocsPerOp < 0 {
		t.Fatalf("allocs/op negative: %v", res.AllocsPerOp)
	}
}

// TestBatchWorkloadChecksSupport: a BatchRatio on a spec is validated
// before workers start; every registered structure implements Batcher,
// so exercise the accept path and pin the reject message shape against
// the scanner/cursor precedent via a stub-free config check.
func TestBatchWorkloadChecksSupport(t *testing.T) {
	cfg := quick("skiplist/herlihy")
	cfg.Workload.BatchRatio = 0.1
	if _, err := Run(cfg); err != nil {
		t.Fatalf("skiplist/herlihy implements Batcher but Run rejected the batch mix: %v", err)
	}
}

// TestContendedBatchCombines drives a single-shard (maximally contended)
// sharded composite with write batches from several threads and expects
// the flat-combining path to engage: some batches must have traveled the
// publication list. Whether TryAcquire ever fails inside one short
// window is a scheduling accident on a 1-CPU host (the workers can
// serialize perfectly), so the windows retry with growing durations and
// the assertion is that combining engages in ANY of them.
func TestContendedBatchCombines(t *testing.T) {
	var batches, combined uint64
	for attempt := 0; attempt < 5; attempt++ {
		cfg := Config{
			Algorithm: "sharded(1,list/lazy)",
			Threads:   4,
			Duration:  time.Duration(1+attempt) * 80 * time.Millisecond,
			Workload:  workload.Config{Size: 128, UpdateRatio: 0.8, BatchRatio: 0.8, BatchLen: 8},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batches += res.TotalBatches
		combined += res.CombinedBatches
		if batches > 0 && combined > 0 {
			return
		}
	}
	if batches == 0 {
		t.Fatal("contended cell issued no batches across every window")
	}
	t.Fatalf("flat combining never engaged on a contended single shard: %d batches, %d combined across 5 windows", batches, combined)
}

func TestUnknownAlgorithm(t *testing.T) {
	_, err := Run(Config{Algorithm: "nope/nope"})
	if err == nil {
		t.Fatal("unknown algorithm did not error")
	}
	if !strings.Contains(err.Error(), "unknown algorithm") ||
		!strings.Contains(err.Error(), "list/lazy") {
		t.Fatalf("error not actionable (should name the problem and list registered algorithms): %v", err)
	}
	if _, err := Run(Config{Algorithm: "sharded(16"}); err == nil {
		t.Fatal("malformed composite spec did not error")
	}
	if _, err := Run(Config{Algorithm: "nocomb(4,list/lazy)"}); err == nil {
		t.Fatal("unknown combinator did not error")
	}
}

// TestCompositeRun drives composite specifications through the full
// harness path and checks the metric set matches a plain algorithm's:
// per-shard lock stats must aggregate into the same per-thread slots.
func TestCompositeRun(t *testing.T) {
	for _, alg := range []string{
		"sharded(16,list/lazy)",
		"striped(8,skiplist/herlihy)",
		"readcache(1024,bst/tk)",
	} {
		cfg := quick(alg)
		cfg.Workload.UpdateRatio = 0.5 // drive the locking write paths
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.TotalOps == 0 || res.Throughput <= 0 {
			t.Fatalf("%s: no throughput measured: %+v", alg, res)
		}
		if res.PerThreadMean <= 0 {
			t.Fatalf("%s: per-thread throughput missing", alg)
		}
		// The blocking leaves take locks on updates; those acquisitions
		// happen inside shard instances and must still reach the
		// harness through the shared Ctx stats (WaitingOpsFrac's
		// denominator). A histogram entry per update op must also flow.
		var histTotal uint64
		for _, b := range res.RestartHist {
			histTotal += b
		}
		if histTotal == 0 {
			t.Fatalf("%s: restart histogram empty — inner metrics not flowing through the composite", alg)
		}
		if res.WaitFraction < 0 || res.WaitFraction > 1 {
			t.Fatalf("%s: WaitFraction out of range: %v", alg, res.WaitFraction)
		}
	}
}

// TestCompositeMatchesPlainSemantics runs the same seeded workload cell
// against a plain and a sharded lazy list; both must complete and produce
// comparable op totals (sharding must not distort the harness plumbing).
func TestCompositeMatchesPlainSemantics(t *testing.T) {
	plain, err := Run(quick("list/lazy"))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Run(quick("sharded(4,list/lazy)"))
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalOps == 0 || sharded.TotalOps == 0 {
		t.Fatalf("ops missing: plain %d sharded %d", plain.TotalOps, sharded.TotalOps)
	}
}

func TestAllFeaturedRun(t *testing.T) {
	for _, alg := range []string{"list/lazy", "skiplist/herlihy", "hashtable/lazy", "bst/tk"} {
		res, err := Run(quick(alg))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.TotalOps == 0 {
			t.Fatalf("%s: no ops", alg)
		}
	}
}

func TestNonBlockingRun(t *testing.T) {
	for _, alg := range []string{"list/harris", "list/waitfree"} {
		res, err := Run(quick(alg))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.TotalOps == 0 {
			t.Fatalf("%s: no ops", alg)
		}
		if res.WaitFraction != 0 {
			t.Fatalf("%s: non-blocking algorithm reported lock waits", alg)
		}
	}
}

func TestElidedRun(t *testing.T) {
	cfg := quick("hashtable/lazy")
	cfg.ElideAttempts = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no ops under elision")
	}
	// With elision, critical sections are transactional: commits+fallbacks
	// must roughly cover the updates that wrote.
	if res.FallbackFrac < 0 || res.FallbackFrac > 1 {
		t.Fatalf("FallbackFrac out of range: %v", res.FallbackFrac)
	}
}

func TestEBRRun(t *testing.T) {
	cfg := quick("list/lazy")
	cfg.UseEBR = true
	cfg.Workload.UpdateRatio = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired == 0 {
		t.Fatal("EBR run retired nothing despite 50% updates")
	}
	if res.Reclaimed > res.Retired {
		t.Fatalf("reclaimed %d > retired %d", res.Reclaimed, res.Retired)
	}
}

func TestDelayedThreadRun(t *testing.T) {
	cfg := quick("list/lazy")
	cfg.DelayedThreads = 1
	cfg.DelayPlan = interrupt.PaperDelayPlan()
	cfg.Workload.UpdateRatio = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no ops with delayed thread")
	}
}

func TestSwitchPlanRun(t *testing.T) {
	cfg := quick("hashtable/lazy")
	cfg.SwitchPlan = &interrupt.SwitchPlan{Rate: 0.01, MinOff: 10 * time.Microsecond, MaxOff: 50 * time.Microsecond}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no ops under switch plan")
	}
}

func TestMultipleRunsAverage(t *testing.T) {
	cfg := quick("hashtable/lazy")
	cfg.Runs = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no ops across runs")
	}
}

func TestRestartHistogramSane(t *testing.T) {
	cfg := quick("list/lazy")
	cfg.Workload.Size = 16
	cfg.Workload.UpdateRatio = 0.5
	cfg.Threads = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var histTotal uint64
	for _, b := range res.RestartHist {
		histTotal += b
	}
	// Every update contributes exactly one histogram entry; reads
	// contribute none (lazy list records restarts only on updates).
	if histTotal == 0 {
		t.Fatal("restart histogram empty")
	}
	if histTotal > res.TotalOps {
		t.Fatalf("histogram total %d exceeds ops %d", histTotal, res.TotalOps)
	}
	if res.RestartedFrac < 0 || res.RestartedFrac > 1 {
		t.Fatalf("RestartedFrac out of range: %v", res.RestartedFrac)
	}
	if res.RestartedFrac3 > res.RestartedFrac {
		t.Fatal("RestartedFrac3 exceeds RestartedFrac")
	}
}

// TestResizeScheduleRun drives an explicit resize schedule through a full
// harness run: the width trace must record every step in order and the
// workload must keep flowing throughout.
func TestResizeScheduleRun(t *testing.T) {
	cfg := quick("elastic(1,list/lazy)")
	cfg.Threads = 2
	// Generous margins: under -race on a loaded single-CPU host the
	// controller goroutine can be scheduled tens of milliseconds late.
	cfg.Duration = 400 * time.Millisecond
	cfg.ResizeSteps = []ResizeStep{
		{At: 120 * time.Millisecond, Width: 2}, // deliberately out of order
		{At: 30 * time.Millisecond, Width: 4},
		{At: 220 * time.Millisecond, Width: 2}, // same-width no-op: must not count
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no ops measured during resizing")
	}
	if res.Resizes != 2 {
		t.Fatalf("Resizes = %d, want 2 (the same-width step is a no-op)", res.Resizes)
	}
	if res.FinalWidth != 2 {
		t.Fatalf("FinalWidth = %d, want 2", res.FinalWidth)
	}
	widths := make([]int, 0, len(res.WidthTrace))
	for _, ws := range res.WidthTrace {
		widths = append(widths, ws.Width)
	}
	if len(widths) != 3 || widths[0] != 1 || widths[1] != 4 || widths[2] != 2 {
		t.Fatalf("width trace = %v, want [1 4 2]", widths)
	}
	for i := 1; i < len(res.WidthTrace); i++ {
		if res.WidthTrace[i].AtNs < res.WidthTrace[i-1].AtNs {
			t.Fatalf("width trace timestamps not monotone: %+v", res.WidthTrace)
		}
	}
}

// TestResizeRequiresResizable: a schedule against a non-resizable spec is
// an upfront, actionable error.
func TestResizeRequiresResizable(t *testing.T) {
	cfg := quick("list/lazy")
	cfg.ResizeSteps = []ResizeStep{{At: time.Millisecond, Width: 4}}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "elastic(") {
		t.Fatalf("want an error naming elastic(N,...), got %v", err)
	}
	cfg = quick("sharded(4,list/lazy)")
	cfg.Elastic = &ElasticPolicy{GrowOps: 1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("elastic policy accepted for a static sharded spec")
	}
}

// TestElasticPolicyGrow: with a trigger any throughput exceeds, the
// adaptive controller must ramp the width up to the ceiling.
func TestElasticPolicyGrow(t *testing.T) {
	cfg := quick("elastic(1,list/lazy)")
	cfg.Threads = 2
	cfg.Duration = 400 * time.Millisecond
	cfg.Elastic = &ElasticPolicy{Interval: 10 * time.Millisecond, GrowOps: 1, MaxWidth: 8}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalWidth != 8 {
		t.Fatalf("FinalWidth = %d, want the MaxWidth ceiling 8 (trace %v)", res.FinalWidth, res.WidthTrace)
	}
	if res.Resizes < 3 {
		t.Fatalf("Resizes = %d, want >= 3 (1→2→4→8)", res.Resizes)
	}
}

// TestElasticPolicyShrink: with a shrink floor above any achievable
// throughput, the width must collapse to MinWidth.
func TestElasticPolicyShrink(t *testing.T) {
	cfg := quick("elastic(8,list/lazy)")
	cfg.Threads = 2
	cfg.Duration = 400 * time.Millisecond
	cfg.Elastic = &ElasticPolicy{Interval: 10 * time.Millisecond, ShrinkOps: 1e15}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalWidth != 1 {
		t.Fatalf("FinalWidth = %d, want the MinWidth floor 1 (trace %v)", res.FinalWidth, res.WidthTrace)
	}
}
