package harness

import (
	"testing"
	"time"

	"csds/internal/interrupt"
	"csds/internal/workload"

	_ "csds/internal/bst"
	_ "csds/internal/hashtable"
	_ "csds/internal/list"
	_ "csds/internal/skiplist"
)

func quick(alg string) Config {
	return Config{
		Algorithm: alg,
		Threads:   4,
		Duration:  40 * time.Millisecond,
		Workload:  workload.Config{Size: 128, UpdateRatio: 0.1},
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(quick("list/lazy"))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 || res.Throughput <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.PerThreadMean <= 0 {
		t.Fatal("per-thread throughput missing")
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	_, err := Run(Config{Algorithm: "nope/nope"})
	if err == nil {
		t.Fatal("unknown algorithm did not error")
	}
}

func TestAllFeaturedRun(t *testing.T) {
	for _, alg := range []string{"list/lazy", "skiplist/herlihy", "hashtable/lazy", "bst/tk"} {
		res, err := Run(quick(alg))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.TotalOps == 0 {
			t.Fatalf("%s: no ops", alg)
		}
	}
}

func TestNonBlockingRun(t *testing.T) {
	for _, alg := range []string{"list/harris", "list/waitfree"} {
		res, err := Run(quick(alg))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.TotalOps == 0 {
			t.Fatalf("%s: no ops", alg)
		}
		if res.WaitFraction != 0 {
			t.Fatalf("%s: non-blocking algorithm reported lock waits", alg)
		}
	}
}

func TestElidedRun(t *testing.T) {
	cfg := quick("hashtable/lazy")
	cfg.ElideAttempts = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no ops under elision")
	}
	// With elision, critical sections are transactional: commits+fallbacks
	// must roughly cover the updates that wrote.
	if res.FallbackFrac < 0 || res.FallbackFrac > 1 {
		t.Fatalf("FallbackFrac out of range: %v", res.FallbackFrac)
	}
}

func TestEBRRun(t *testing.T) {
	cfg := quick("list/lazy")
	cfg.UseEBR = true
	cfg.Workload.UpdateRatio = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired == 0 {
		t.Fatal("EBR run retired nothing despite 50% updates")
	}
	if res.Reclaimed > res.Retired {
		t.Fatalf("reclaimed %d > retired %d", res.Reclaimed, res.Retired)
	}
}

func TestDelayedThreadRun(t *testing.T) {
	cfg := quick("list/lazy")
	cfg.DelayedThreads = 1
	cfg.DelayPlan = interrupt.PaperDelayPlan()
	cfg.Workload.UpdateRatio = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no ops with delayed thread")
	}
}

func TestSwitchPlanRun(t *testing.T) {
	cfg := quick("hashtable/lazy")
	cfg.SwitchPlan = &interrupt.SwitchPlan{Rate: 0.01, MinOff: 10 * time.Microsecond, MaxOff: 50 * time.Microsecond}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no ops under switch plan")
	}
}

func TestMultipleRunsAverage(t *testing.T) {
	cfg := quick("hashtable/lazy")
	cfg.Runs = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no ops across runs")
	}
}

func TestRestartHistogramSane(t *testing.T) {
	cfg := quick("list/lazy")
	cfg.Workload.Size = 16
	cfg.Workload.UpdateRatio = 0.5
	cfg.Threads = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var histTotal uint64
	for _, b := range res.RestartHist {
		histTotal += b
	}
	// Every update contributes exactly one histogram entry; reads
	// contribute none (lazy list records restarts only on updates).
	if histTotal == 0 {
		t.Fatal("restart histogram empty")
	}
	if histTotal > res.TotalOps {
		t.Fatalf("histogram total %d exceeds ops %d", histTotal, res.TotalOps)
	}
	if res.RestartedFrac < 0 || res.RestartedFrac > 1 {
		t.Fatalf("RestartedFrac out of range: %v", res.RestartedFrac)
	}
	if res.RestartedFrac3 > res.RestartedFrac {
		t.Fatal("RestartedFrac3 exceeds RestartedFrac")
	}
}
