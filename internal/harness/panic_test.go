// Panic containment on the batch path: the robustness contract behind
// the harness worker's deferred-Unregister discipline (runOnce) and the
// server's serveConn recovery. A worker that panics out of a MultiPut —
// from the per-key result callback, mid-replay, while other workers are
// driving the same shard combiners — must not wedge epoch advancement
// or leak its EBR record's limbo. The combiner protocol guarantees the
// panic cannot orphan a combiner lock (user callbacks replay only after
// Run has released it); the EBR discipline guarantees the rest.
package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csds/internal/core"
	"csds/internal/ebr"
	"csds/internal/fault"
	"csds/internal/workload"

	_ "csds/internal/combinator"
	_ "csds/internal/list"
)

func TestBatchPanicContainment(t *testing.T) {
	dom := ebr.NewDomain()
	f, err := core.NewFactory("sharded(4,list/lazy)")
	if err != nil {
		t.Fatal(err)
	}
	set := f(core.Options{Domain: dom, ExpectedSize: 256})
	batcher, ok := set.(core.Batcher)
	if !ok {
		t.Fatal("sharded(4,list/lazy) is not a Batcher")
	}

	const span = 128
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Antagonist workers keep the shard combiners hot so the victim's
	// batches actually collide (publication list, combined drains) while
	// it dies.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			c.Epoch = dom.Register()
			defer c.Epoch.Unregister()
			pairs := make([]core.KV, 16)
			keys := make([]core.Key, 16)
			for r := 0; !stop.Load(); r++ {
				for i := range pairs {
					k := core.Key((r*7 + i*3 + w) % span)
					pairs[i] = core.KV{K: k, V: core.Value(k)}
					keys[i] = k
				}
				batcher.MultiPut(c, pairs, func(int, bool) {})
				batcher.MultiRemove(c, keys, func(int, bool) {})
			}
		}(w)
	}

	// The victim: panics out of MultiPut's result replay, with results
	// half-delivered. Run several rounds so panics land while the
	// antagonists hold combiner locks in every interleaving the host
	// offers. Each round mirrors the harness/server worker shape: the
	// deferred recover + Unregister is the entire recovery protocol.
	const rounds = 50
	panics := 0
	for r := 0; r < rounds; r++ {
		func() {
			c := core.NewCtx(2)
			c.Epoch = dom.Register()
			defer func() {
				if rec := recover(); rec != nil {
					panics++
				}
				c.Epoch.Unregister()
			}()
			pairs := make([]core.KV, 16)
			for i := range pairs {
				k := core.Key((r*5 + i) % span)
				pairs[i] = core.KV{K: k, V: core.Value(k)}
			}
			batcher.MultiPut(c, pairs, func(i int, _ bool) {
				if i == 8 {
					panic("die mid-replay")
				}
			})
		}()
		runtime.Gosched() // let the antagonists collide with the next round
	}
	if panics != rounds {
		t.Fatalf("victim panicked %d of %d rounds", panics, rounds)
	}

	// Epoch liveness: with the victims dead and unregistered, the
	// antagonists' brackets must not be held back by leaked state.
	e0 := dom.Epoch()
	stop.Store(true)
	wg.Wait()
	dom.Advance()
	if dom.Epoch() == e0 && e0 == 0 {
		t.Fatal("epoch never advanced across the whole run")
	}

	// Deterministic retirements: clear the structure through a clean
	// worker so the drain below has real limbo to account for even on a
	// host whose scheduler starved the antagonists of removes.
	func() {
		c := core.NewCtx(3)
		c.Epoch = dom.Register()
		defer c.Epoch.Unregister()
		keys := make([]core.Key, span)
		for i := range keys {
			keys[i] = core.Key(i)
		}
		batcher.MultiRemove(c, keys, func(int, bool) {})
	}()

	// Ledger: everything the panicking workers and antagonists retired
	// must drain once all records are gone.
	dom.Advance()
	dom.Advance()
	dom.Advance()
	retired, reclaimed := dom.Stats()
	if retired == 0 {
		t.Fatal("workload retired nothing; the test exercised no reclamation")
	}
	if reclaimed != retired {
		t.Fatalf("panic leaked limbo: retired %d, reclaimed %d", retired, reclaimed)
	}
	if dom.GCOnly() {
		t.Fatal("clean unregisters must not downgrade the domain to GC-only")
	}
}

// TestRunWithFaultPlan: the chaos plane threads through the harness —
// every worker gets a deterministic injector, the EBR antagonist runs,
// the firing counts surface in the Result, and the run's own invariants
// (throughput measured, domain drained by runOnce) hold under fire.
func TestRunWithFaultPlan(t *testing.T) {
	cfg := Config{
		Algorithm: "sharded(2,list/lazy)",
		Threads:   2,
		Duration:  60 * time.Millisecond,
		UseEBR:    true,
		Fault:     fault.ChaosPlan(7),
		Workload:  workload.Config{Size: 128, UpdateRatio: 0.4},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatalf("no ops under the fault plan: %+v", res)
	}
	if res.Faults == 0 || len(res.FaultFires) == 0 {
		t.Fatalf("fault plan fired nothing: faults=%d fires=%v", res.Faults, res.FaultFires)
	}
	var sum uint64
	for _, n := range res.FaultFires {
		sum += n
	}
	if sum != res.Faults {
		t.Fatalf("fault tally inconsistent: sum %d != total %d", sum, res.Faults)
	}
	if res.Retired != res.Reclaimed {
		t.Fatalf("fault run left limbo: retired %d, reclaimed %d", res.Retired, res.Reclaimed)
	}
}
