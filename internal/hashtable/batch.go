// Batched (core.Batcher) paths for the hash tables: unsorted point
// application. Hash routing destroys key order, every point operation
// is O(1) in the bucket, and adjacent sorted keys land in unrelated
// buckets — so a loop of point ops IS the optimal batch plan here and
// sorting would only add work. The batch layer above (sharded/elastic
// grouping, flat combining) is where hashed structures get their
// amortization. Each Multi* opens one epoch bracket for the whole batch
// (brackets nest), amortizing the per-op epoch announcement.
package hashtable

import "csds/internal/core"

// MultiGet implements core.Batcher by a loop of point lookups.
func (h *Lazy) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.LoopMultiGet(c, h, keys, f)
}

// MultiPut implements core.Batcher by a loop of point inserts.
func (h *Lazy) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.LoopMultiPut(c, h, pairs, f)
}

// MultiRemove implements core.Batcher by a loop of point removes.
func (h *Lazy) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.LoopMultiRemove(c, h, keys, f)
}

// MultiGet implements core.Batcher by a loop of point lookups.
func (b *Bucketed) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.LoopMultiGet(c, b, keys, f)
}

// MultiPut implements core.Batcher by a loop of point inserts.
func (b *Bucketed) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.LoopMultiPut(c, b, pairs, f)
}

// MultiRemove implements core.Batcher by a loop of point removes.
func (b *Bucketed) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.LoopMultiRemove(c, b, keys, f)
}

// MultiGet implements core.Batcher by a loop of point lookups.
func (h *COW) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.LoopMultiGet(c, h, keys, f)
}

// MultiPut implements core.Batcher by a loop of point inserts.
func (h *COW) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.LoopMultiPut(c, h, pairs, f)
}

// MultiRemove implements core.Batcher by a loop of point removes.
func (h *COW) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.LoopMultiRemove(c, h, keys, f)
}

// MultiGet implements core.Batcher by a loop of point lookups.
func (h *Striped) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.LoopMultiGet(c, h, keys, f)
}

// MultiPut implements core.Batcher by a loop of point inserts.
func (h *Striped) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.LoopMultiPut(c, h, pairs, f)
}

// MultiRemove implements core.Batcher by a loop of point removes.
func (h *Striped) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.LoopMultiRemove(c, h, keys, f)
}
