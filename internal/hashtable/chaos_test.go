package hashtable

import (
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
)

// The chaos battery (settest.RunChaos): seeded fault injection under the
// full invariant set — see internal/settest/chaostest.go. The 2-bucket
// variant maximizes chain sharing so forced guard failures and delayed
// reclaims land on chains readers are actually traversing.

func TestLazyChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewLazy(o) })
}

func TestLazySmallTableChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set {
		o.Buckets = 2
		return NewLazy(o)
	})
}

func TestCOWChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewCOW(o) })
}

func TestStripedChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewStriped(o) })
}

func TestBucketedChaos(t *testing.T) {
	for _, name := range []string{
		"hashtable/lockcoupling", "hashtable/pugh", "hashtable/harris", "hashtable/waitfree",
	} {
		info, ok := core.Lookup(name)
		if !ok {
			t.Fatalf("registry is missing %s", name)
		}
		t.Run(name, func(t *testing.T) { settest.RunChaos(t, info.New) })
	}
}
