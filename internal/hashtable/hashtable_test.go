package hashtable

import (
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
)

func TestLazy(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewLazy(o) })
}

func TestLazyElided(t *testing.T) {
	settest.RunElided(t, func(o core.Options) core.Set { return NewLazy(o) })
}

func TestLazyEBR(t *testing.T) {
	settest.RunEBR(t, func(o core.Options) core.Set { return NewLazy(o) })
}

func TestLazySmallTable(t *testing.T) {
	// A 2-bucket table forces heavy chain sharing: exercises sorted-splice
	// paths thoroughly.
	settest.Run(t, func(o core.Options) core.Set {
		o.Buckets = 2
		return NewLazy(o)
	})
}

func TestCOW(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewCOW(o) })
}

func TestStriped(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewStriped(o) })
}

func TestBucketedLockCoupling(t *testing.T) {
	info, _ := core.Lookup("hashtable/lockcoupling")
	settest.Run(t, info.New)
}

func TestBucketedPugh(t *testing.T) {
	info, _ := core.Lookup("hashtable/pugh")
	settest.Run(t, info.New)
}

func TestBucketedHarris(t *testing.T) {
	info, _ := core.Lookup("hashtable/harris")
	settest.Run(t, info.New)
}

func TestBucketedWaitFree(t *testing.T) {
	info, _ := core.Lookup("hashtable/waitfree")
	settest.Run(t, info.New)
}

// TestScanners runs the linearizable range-scan battery on every table.
// Since the ordered key index, hash-table scans are ascending like every
// other structure's — the battery's order assertion is on.
func TestScanners(t *testing.T) {
	lookup := func(name string) func(core.Options) core.Set {
		info, ok := core.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		return info.New
	}
	for name, mk := range map[string]func(core.Options) core.Set{
		"lazy":         func(o core.Options) core.Set { return NewLazy(o) },
		"cow":          func(o core.Options) core.Set { return NewCOW(o) },
		"striped":      func(o core.Options) core.Set { return NewStriped(o) },
		"lockcoupling": lookup("hashtable/lockcoupling"),
		"pugh":         lookup("hashtable/pugh"),
		"harris":       lookup("hashtable/harris"),
		"waitfree":     lookup("hashtable/waitfree"),
	} {
		t.Run(name, func(t *testing.T) { settest.RunScanner(t, mk, true) })
	}
}

// TestLazyScannerSmallTable forces heavy chain sharing so scans see long
// shared buckets under churn.
func TestLazyScannerSmallTable(t *testing.T) {
	settest.RunScanner(t, func(o core.Options) core.Set {
		o.Buckets = 2
		return NewLazy(o)
	}, true)
}

// TestCursors runs the paginated-iteration battery on every table.
// Unlike one-shot hash scans, cursor pages are ascending by key even
// here — key order is the only resumable order a churning hash table
// can offer — so the battery's order assertion stays on.
func TestCursors(t *testing.T) {
	lookup := func(name string) func(core.Options) core.Set {
		info, ok := core.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		return info.New
	}
	for name, mk := range map[string]func(core.Options) core.Set{
		"lazy":         func(o core.Options) core.Set { return NewLazy(o) },
		"cow":          func(o core.Options) core.Set { return NewCOW(o) },
		"striped":      func(o core.Options) core.Set { return NewStriped(o) },
		"lockcoupling": lookup("hashtable/lockcoupling"),
		"pugh":         lookup("hashtable/pugh"),
		"harris":       lookup("hashtable/harris"),
		"waitfree":     lookup("hashtable/waitfree"),
	} {
		t.Run(name, func(t *testing.T) { settest.RunCursor(t, mk) })
	}
}

// TestBatchers runs the batched-operation battery on every table
// (unsorted point application — hash routing destroys key order, so the
// loop is the optimal plan and amortization comes from the combinator
// layer above).
func TestBatchers(t *testing.T) {
	lookup := func(name string) func(core.Options) core.Set {
		info, ok := core.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		return info.New
	}
	for name, mk := range map[string]func(core.Options) core.Set{
		"lazy":         func(o core.Options) core.Set { return NewLazy(o) },
		"cow":          func(o core.Options) core.Set { return NewCOW(o) },
		"striped":      func(o core.Options) core.Set { return NewStriped(o) },
		"lockcoupling": lookup("hashtable/lockcoupling"),
		"pugh":         lookup("hashtable/pugh"),
		"harris":       lookup("hashtable/harris"),
		"waitfree":     lookup("hashtable/waitfree"),
	} {
		t.Run(name, func(t *testing.T) { settest.RunBatcher(t, mk) })
	}
}

// TestLazyCursorSmallTable forces heavy chain sharing so cursor pages
// see long shared buckets under churn.
func TestLazyCursorSmallTable(t *testing.T) {
	settest.RunCursor(t, func(o core.Options) core.Set {
		o.Buckets = 2
		return NewLazy(o)
	})
}

// TestCursorPageCost: every table's full paginated iteration must
// materialize O(pages·page) keys (counter-verified), not the
// O(pages·table) the pre-index collect-and-sort paid — the ordered key
// index is what this pins.
func TestCursorPageCost(t *testing.T) {
	lookup := func(name string) func(core.Options) core.Set {
		info, ok := core.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		return info.New
	}
	for name, mk := range map[string]func(core.Options) core.Set{
		"lazy":         func(o core.Options) core.Set { return NewLazy(o) },
		"cow":          func(o core.Options) core.Set { return NewCOW(o) },
		"striped":      func(o core.Options) core.Set { return NewStriped(o) },
		"lockcoupling": lookup("hashtable/lockcoupling"),
		"pugh":         lookup("hashtable/pugh"),
		"harris":       lookup("hashtable/harris"),
		"waitfree":     lookup("hashtable/waitfree"),
	} {
		t.Run(name, func(t *testing.T) { settest.RunCursorPageCost(t, mk) })
	}
}

func TestBucketCount(t *testing.T) {
	cases := []struct {
		o    core.Options
		want int
	}{
		{core.Options{}, defaultBuckets},
		{core.Options{Buckets: 8}, 8},
		{core.Options{Buckets: 9}, 16},
		{core.Options{ExpectedSize: 1000}, 1024},
		{core.Options{Buckets: 1}, 2},
	}
	for _, tc := range cases {
		if got := bucketCount(tc.o); got != tc.want {
			t.Errorf("bucketCount(%+v) = %d, want %d", tc.o, got, tc.want)
		}
	}
}

func TestHashSpreads(t *testing.T) {
	// Sequential keys must not collapse into few buckets.
	const mask = 1023
	counts := make(map[uint64]int)
	for k := core.Key(0); k < 4096; k++ {
		counts[hash(k, mask)]++
	}
	if len(counts) < 900 {
		t.Fatalf("hash used only %d of 1024 buckets for sequential keys", len(counts))
	}
}

func TestFeaturedIsLazy(t *testing.T) {
	info, ok := core.Featured("hashtable")
	if !ok || info.Name != "hashtable/lazy" {
		t.Fatalf("featured hashtable = %+v", info)
	}
}

func TestLazyNoRestartsEver(t *testing.T) {
	// §5.1: the per-bucket-lock hash table never restarts.
	s := NewLazy(core.Options{Buckets: 4})
	c := core.NewCtx(0)
	for i := 0; i < 1000; i++ {
		s.Put(c, core.Key(i), core.Value(i))
		s.Remove(c, core.Key(i/2))
	}
	if c.Stats.Restarts != 0 {
		t.Fatalf("lazy hash recorded %d restarts; per-bucket locking must never restart", c.Stats.Restarts)
	}
}
