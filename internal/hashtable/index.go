// The ordered key index of the monolithic hash tables: a compact
// lock-free skip list shadowing the table's live mappings, so cursor
// pages and range scans run in O(log n + page) / O(log n + range)
// instead of the O(table) collect-and-sort the tables paid before —
// a hash walk has no resumable order of its own, but its shadow does.
//
// Consistency protocol: the index is mutated only inside the owning
// table's ScanGuard write brackets, in the same bracket as the bucket
// mutation it shadows. Readers (the table's guarded scan/page collects)
// traverse the index with atomic loads only and validate against that
// same guard, so a validated collect is guaranteed to have seen a state
// in which bucket and index agree — pages and scans stay individually
// linearizable against the table's point operations, exactly as before.
// Point reads never touch the index.
//
// The skip list itself is the Fraser / Herlihy–Shavit design already
// used by skiplist/lockfree (bottom level decides membership, towers
// spliced bottom-up with CAS, deletion marks top-down), stripped to the
// index role: no stats, no locks, and a private level generator — index
// maintenance must never pollute the paper's fine-grained
// lock-wait/restart metrics, and its writers (concurrent bucket owners)
// must never serialize on it. Unlinked nodes are retired through the
// caller's epoch record at the bottom-level snip (every table operation
// that touches the index runs inside an epoch bracket), with a nil
// reclaim callback: a same-key insert can hide a structure-resident
// upper-level link to a marked victim (see pool.go), so ixNodes fall to
// the GC rather than a free-list.
package hashtable

import (
	"math/bits"
	"sync/atomic"

	"csds/internal/core"
)

// ixLink boxes (successor, mark) for one level of an index node — the
// AtomicMarkableReference idiom, since Go cannot tag pointer bits.
type ixLink struct {
	next   *ixNode
	marked bool
}

type ixNode struct {
	key      core.Key
	val      core.Value
	next     []atomic.Pointer[ixLink]
	topLevel int
}

func newIxNode(k core.Key, v core.Value, height int) *ixNode {
	return &ixNode{key: k, val: v, next: make([]atomic.Pointer[ixLink], height), topLevel: height - 1}
}

// ixMaxMaxLevel caps tower height (2^32 expected elements is far beyond
// any table here).
const ixMaxMaxLevel = 32

// ixLevelForSize picks the tower bound for an expected element count.
func ixLevelForSize(n int) int {
	if n < 4 {
		n = 4
	}
	l := bits.Len(uint(n))
	if l < 4 {
		l = 4
	}
	if l > ixMaxMaxLevel {
		l = ixMaxMaxLevel
	}
	return l
}

// keyIndex is the per-table ordered shadow. The zero value is not ready;
// use newKeyIndex.
type keyIndex struct {
	head     *ixNode
	tail     *ixNode
	maxLevel int
	levelSrc atomic.Uint64 // private level PRNG state (SplitMix64 stream)
}

// indexSize resolves the element-count hint the index is sized by: the
// expected size when given, else the bucket count (which bucketCount
// derived from the size at load factor 1). Sizing by buckets alone
// would under-level the shadow when a small explicit Buckets holds many
// keys — degrading the O(log n) seek the index exists to provide.
func indexSize(o core.Options, buckets int) int {
	if o.ExpectedSize > buckets {
		return o.ExpectedSize
	}
	return buckets
}

// newKeyIndex builds an empty index sized for about n elements.
func newKeyIndex(n int) *keyIndex {
	ml := ixLevelForSize(n)
	tail := newIxNode(core.KeyMax, 0, ml)
	head := newIxNode(core.KeyMin, 0, ml)
	for i := 0; i < ml; i++ {
		tail.next[i].Store(&ixLink{})
		head.next[i].Store(&ixLink{next: tail})
	}
	return &keyIndex{head: head, tail: tail, maxLevel: ml}
}

// ixMix is the SplitMix64 finalizer, the index's private source of level
// randomness (a shared Rng would race across bucket owners).
func ixMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// randomLevel draws a geometric(1/2) tower height in [1, maxLevel].
func (ix *keyIndex) randomLevel() int {
	lvl := bits.TrailingZeros64(ixMix(ix.levelSrc.Add(0x9e3779b97f4a7c15))) + 1
	if lvl > ix.maxLevel {
		lvl = ix.maxLevel
	}
	return lvl
}

// find locates the window for k on every level, snipping marked nodes
// (each bottom-level snip retires the node through c). Reports whether k
// is present at the bottom level.
func (ix *keyIndex) find(c *core.Ctx, k core.Key, preds, succs []*ixNode) bool {
retry:
	for {
		pred := ix.head
		for lvl := ix.maxLevel - 1; lvl >= 0; lvl-- {
			predLink := pred.next[lvl].Load()
			curr := predLink.next
			for {
				currLink := curr.next[lvl].Load()
				for currLink.marked {
					snip := &ixLink{next: currLink.next}
					if !pred.next[lvl].CompareAndSwap(predLink, snip) {
						continue retry
					}
					if lvl == 0 {
						c.Retire(curr, nil) // nil: see pool.go
					}
					predLink = snip
					curr = currLink.next
					currLink = curr.next[lvl].Load()
				}
				if curr.key < k {
					pred = curr
					predLink = currLink
					curr = currLink.next
					continue
				}
				break
			}
			preds[lvl] = pred
			succs[lvl] = curr
		}
		return succs[0].key == k
	}
}

// insert shadows a successful bucket insert. The caller's bucket lock
// guarantees k is absent from the index (same-key operations serialize
// on the bucket), so insert only contends with neighbors.
func (ix *keyIndex) insert(c *core.Ctx, k core.Key, v core.Value) {
	topLevel := ix.randomLevel() - 1
	var pa, sa [ixMaxMaxLevel]*ixNode
	preds, succs := pa[:ix.maxLevel], sa[:ix.maxLevel]
	for {
		if ix.find(c, k, preds, succs) {
			return // unreachable under the bucket-serialization invariant
		}
		n := newIxNode(k, v, topLevel+1)
		for lvl := 0; lvl <= topLevel; lvl++ {
			n.next[lvl].Store(&ixLink{next: succs[lvl]})
		}
		// Bottom level decides membership.
		predLink := preds[0].next[0].Load()
		if predLink.next != succs[0] || predLink.marked {
			continue
		}
		if !preds[0].next[0].CompareAndSwap(predLink, &ixLink{next: n}) {
			continue
		}
		// Splice the upper levels best-effort.
		for lvl := 1; lvl <= topLevel; lvl++ {
			for {
				nLink := n.next[lvl].Load()
				if nLink.marked {
					break // node already being deleted; stop splicing
				}
				succ := succs[lvl]
				if nLink.next != succ {
					if !n.next[lvl].CompareAndSwap(nLink, &ixLink{next: succ}) {
						continue
					}
				}
				predLink := preds[lvl].next[lvl].Load()
				if predLink.next == succ && !predLink.marked &&
					preds[lvl].next[lvl].CompareAndSwap(predLink, &ixLink{next: n}) {
					break
				}
				// Window moved: recompute and retry this level.
				ix.find(c, k, preds, succs)
				if succs[0] != n {
					// Node got deleted meanwhile; abandon upper splicing.
					lvl = topLevel
					break
				}
			}
		}
		return
	}
}

// remove shadows a successful bucket remove: mark from the top level
// down; the bottom mark unshadows the key. Same-key serialization means
// the victim is always present and nobody else removes it concurrently.
func (ix *keyIndex) remove(c *core.Ctx, k core.Key) {
	var pa, sa [ixMaxMaxLevel]*ixNode
	preds, succs := pa[:ix.maxLevel], sa[:ix.maxLevel]
	if !ix.find(c, k, preds, succs) {
		return // unreachable under the bucket-serialization invariant
	}
	victim := succs[0]
	for lvl := victim.topLevel; lvl >= 1; lvl-- {
		for {
			link := victim.next[lvl].Load()
			if link.marked {
				break
			}
			if victim.next[lvl].CompareAndSwap(link, &ixLink{next: link.next, marked: true}) {
				break
			}
		}
	}
	for {
		link := victim.next[0].Load()
		if link.marked {
			return
		}
		if victim.next[0].CompareAndSwap(link, &ixLink{next: link.next, marked: true}) {
			ix.find(c, k, preds, succs) // physical cleanup
			return
		}
	}
}

// collect walks the index in ascending key order over [pos, hi),
// emitting unmarked mappings until emit declines. Atomic loads only, no
// helping, restartable — exactly what the table's GuardedScan /
// GuardedPage collect phases require. The descent to pos is O(log n);
// the walk is O(keys emitted).
func (ix *keyIndex) collect(pos, hi core.Key, emit func(k core.Key, v core.Value) bool) {
	pred := ix.head
	var curr *ixNode
	for lvl := ix.maxLevel - 1; lvl >= 0; lvl-- {
		curr = pred.next[lvl].Load().next
		for {
			currLink := curr.next[lvl].Load()
			if currLink.marked {
				curr = currLink.next
				continue
			}
			if curr.key < pos {
				pred = curr
				curr = currLink.next
				continue
			}
			break
		}
	}
	for curr.key < hi {
		link := curr.next[0].Load()
		if !link.marked && !emit(curr.key, curr.val) {
			return
		}
		curr = link.next
	}
}
