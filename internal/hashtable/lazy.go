// Package hashtable implements the hash-table set algorithms of the
// paper's Table 1: the featured lazy hash table (one lazy linked list per
// bucket with a per-bucket lock, average load factor 1), lock-coupling and
// Pugh-list bucket variants, a copy-on-write table, and a striped
// (ConcurrentHashMap-flavoured) table whose lock granularity is coarser
// than its buckets.
package hashtable

import (
	"math/bits"
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/htm"
	"csds/internal/locks"
)

// defaultBuckets is used when neither Buckets nor ExpectedSize is given.
const defaultBuckets = 1024

// bucketCount resolves the table size: the paper sets the average load
// factor per bucket to 1, so the bucket count tracks the expected size,
// rounded up to a power of two for mask indexing.
func bucketCount(o core.Options) int {
	n := o.Buckets
	if n <= 0 {
		n = o.ExpectedSize
	}
	if n <= 0 {
		n = defaultBuckets
	}
	if n < 2 {
		n = 2
	}
	return 1 << bits.Len(uint(n-1)) // next power of two
}

// hash spreads keys over buckets (Fibonacci multiplicative hashing).
func hash(k core.Key, mask uint64) uint64 {
	return (uint64(k) * 0x9e3779b97f4a7c15 >> 17) & mask
}

// lnode is a bucket-chain node. next/marked are atomic so Get can traverse
// without the bucket lock (the read path stays synchronization-free, as in
// every state-of-the-art algorithm in the paper).
type lnode struct {
	key    core.Key
	val    core.Value
	marked atomic.Bool
	next   atomic.Pointer[lnode]
}

// lbucket pads each lock+head pair to its own cache line region.
type lbucket struct {
	lock locks.TAS
	head atomic.Pointer[lnode]
	_    [40]byte
}

// Lazy is the featured hash table: a lazy linked list per bucket, one lock
// per bucket. The parse phase is effectively empty (d_p = 0 in the birthday
// model of §6.1: the lock is acquired immediately after the update starts),
// and operations never restart — once a writer holds its bucket lock
// nothing can invalidate its window (§5.1: "this value is 0 in the case of
// the hash table").
type Lazy struct {
	buckets []lbucket
	mask    uint64
	region  htm.Region
	guard   core.ScanGuard // validates optimistic range scans (table-wide)
	index   *keyIndex      // ordered shadow: O(page)/O(range) scans & cursors
}

// NewLazy builds a lazy hash table sized per o (load factor 1).
func NewLazy(o core.Options) *Lazy {
	n := bucketCount(o)
	return &Lazy{buckets: make([]lbucket, n), mask: uint64(n - 1), region: o.Region(), index: newKeyIndex(indexSize(o, n))}
}

func init() {
	core.Register(core.Info{
		Name: "hashtable/lazy", Kind: "hashtable", Progress: "blocking", Featured: true,
		New:  func(o core.Options) core.Set { return NewLazy(o) },
		Desc: "per-bucket-lock lazy hash table (featured, load factor 1)",
	})
}

// Get implements core.Set: lock-free bucket scan.
func (h *Lazy) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	c.EpochEnter()
	defer c.EpochExit()
	b := &h.buckets[hash(k, h.mask)]
	for n := b.head.Load(); n != nil; n = n.next.Load() {
		if n.key == k {
			if n.marked.Load() {
				return 0, false
			}
			return n.val, true
		}
		if n.key > k {
			break
		}
	}
	return 0, false
}

// Put implements core.Set.
func (h *Lazy) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	b := &h.buckets[hash(k, h.mask)]
	if h.region.Attempts > 0 {
		var inserted bool
		h.region.Run(c.Stat(), doomOf(c), func(a *htm.Acq) htm.Status {
			if !a.Lock(&b.lock) {
				return a.AbortStatus()
			}
			if !a.Commit() {
				return a.AbortStatus()
			}
			inserted = b.insertLocked(c, &h.guard, h.index, k, v)
			return htm.Committed
		})
		c.RecordRestarts(0)
		return inserted
	}
	b.lock.Acquire(c.Stat())
	c.InCS()
	ok := b.insertLocked(c, &h.guard, h.index, k, v)
	b.lock.Release()
	c.RecordRestarts(0)
	return ok
}

// insertLocked does the sorted-splice under the bucket lock; a
// membership change opens g's scan window (g may be nil) and shadows
// itself into the ordered index inside that same window, so a validated
// guarded collect always sees bucket and index in agreement.
func (b *lbucket) insertLocked(c *core.Ctx, g *core.ScanGuard, ix *keyIndex, k core.Key, v core.Value) bool {
	var pred *lnode
	curr := b.head.Load()
	for curr != nil && curr.key < k {
		pred = curr
		curr = curr.next.Load()
	}
	if curr != nil && curr.key == k {
		return false
	}
	n := newLNode(c, k, v, curr)
	g.BeginWrite(c.Stat())
	if pred == nil {
		b.head.Store(n)
	} else {
		pred.next.Store(n)
	}
	ix.insert(c, k, v)
	g.EndWrite()
	return true
}

// Remove implements core.Set.
func (h *Lazy) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	b := &h.buckets[hash(k, h.mask)]
	if h.region.Attempts > 0 {
		var removed bool
		var victim *lnode
		h.region.Run(c.Stat(), doomOf(c), func(a *htm.Acq) htm.Status {
			if !a.Lock(&b.lock) {
				return a.AbortStatus()
			}
			if !a.Commit() {
				return a.AbortStatus()
			}
			removed, victim = b.removeLocked(c, &h.guard, h.index, k)
			return htm.Committed
		})
		if removed {
			c.Retire(victim, reclaimLNode)
		}
		c.RecordRestarts(0)
		return removed
	}
	b.lock.Acquire(c.Stat())
	c.InCS()
	ok, victim := b.removeLocked(c, &h.guard, h.index, k)
	b.lock.Release()
	if ok {
		c.Retire(victim, reclaimLNode)
	}
	c.RecordRestarts(0)
	return ok
}

func (b *lbucket) removeLocked(c *core.Ctx, g *core.ScanGuard, ix *keyIndex, k core.Key) (bool, *lnode) {
	var pred *lnode
	curr := b.head.Load()
	for curr != nil && curr.key < k {
		pred = curr
		curr = curr.next.Load()
	}
	if curr == nil || curr.key != k {
		return false, nil
	}
	g.BeginWrite(c.Stat())
	curr.marked.Store(true) // logical delete first: concurrent readers stay correct
	if pred == nil {
		b.head.Store(curr.next.Load())
	} else {
		pred.next.Store(curr.next.Load())
	}
	ix.remove(c, k)
	g.EndWrite()
	return true, curr
}

// Len implements core.Set (quiesced use).
func (h *Lazy) Len() int {
	total := 0
	for i := range h.buckets {
		for n := h.buckets[i].head.Load(); n != nil; n = n.next.Load() {
			if !n.marked.Load() {
				total++
			}
		}
	}
	return total
}

// Range implements core.Ranger: a bucket-by-bucket walk over unmarked
// nodes, in arbitrary key order, quiesced-use like Len.
func (h *Lazy) Range(f func(k core.Key, v core.Value) bool) {
	for i := range h.buckets {
		for n := h.buckets[i].head.Load(); n != nil; n = n.next.Load() {
			if !n.marked.Load() && !f(n.key, n.val) {
				return
			}
		}
	}
}

// Scan implements core.Scanner over the ordered key index: an O(log n)
// descent to lo, then an ascending in-range walk, collected under the
// table-wide optimistic scan guard and accepted only if no update ran
// concurrently — atomic per call, O(log n + range) instead of the
// O(table) bucket sweep of the unindexed design, and in ascending key
// order (updates keep the index in the same guard bracket as the bucket
// splice, so a validated collect saw bucket and index agree).
func (h *Lazy) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedScan(c, &h.guard, func(emit func(k core.Key, v core.Value)) {
		h.index.collect(lo, hi, func(k core.Key, v core.Value) bool {
			emit(k, v)
			return true
		})
	}, f)
}

// CursorNext implements core.Cursor: a bounded guard-validated page off
// the ordered key index — O(log n) seek to the position, O(page) walk —
// in ascending key order like every cursor in this module. The index
// (maintained inside the same guard brackets as the bucket splices) is
// what retires the old O(table)-per-page collect-and-sort: hash-table
// pages now cost what list pages cost, plus the seek.
func (h *Lazy) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedPage(c, &h.guard, hi, max, func(emit func(k core.Key, v core.Value) bool) {
		h.index.collect(pos, hi, emit)
	}, f)
}

func doomOf(c *core.Ctx) *htm.Doom {
	if c == nil {
		return nil
	}
	return c.Doom
}
