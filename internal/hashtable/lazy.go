// Package hashtable implements the hash-table set algorithms of the
// paper's Table 1: the featured lazy hash table (one lazy linked list per
// bucket with a per-bucket lock, average load factor 1), lock-coupling and
// Pugh-list bucket variants, a copy-on-write table, and a striped
// (ConcurrentHashMap-flavoured) table whose lock granularity is coarser
// than its buckets.
package hashtable

import (
	"math/bits"
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/htm"
	"csds/internal/locks"
)

// defaultBuckets is used when neither Buckets nor ExpectedSize is given.
const defaultBuckets = 1024

// bucketCount resolves the table size: the paper sets the average load
// factor per bucket to 1, so the bucket count tracks the expected size,
// rounded up to a power of two for mask indexing.
func bucketCount(o core.Options) int {
	n := o.Buckets
	if n <= 0 {
		n = o.ExpectedSize
	}
	if n <= 0 {
		n = defaultBuckets
	}
	if n < 2 {
		n = 2
	}
	return 1 << bits.Len(uint(n-1)) // next power of two
}

// hash spreads keys over buckets (Fibonacci multiplicative hashing).
func hash(k core.Key, mask uint64) uint64 {
	return (uint64(k) * 0x9e3779b97f4a7c15 >> 17) & mask
}

// lnode is a bucket-chain node. next/marked are atomic so Get can traverse
// without the bucket lock (the read path stays synchronization-free, as in
// every state-of-the-art algorithm in the paper).
type lnode struct {
	key    core.Key
	val    core.Value
	marked atomic.Bool
	next   atomic.Pointer[lnode]
}

// lbucket pads each lock+head pair to its own cache line region.
type lbucket struct {
	lock locks.TAS
	head atomic.Pointer[lnode]
	_    [40]byte
}

// Lazy is the featured hash table: a lazy linked list per bucket, one lock
// per bucket. The parse phase is effectively empty (d_p = 0 in the birthday
// model of §6.1: the lock is acquired immediately after the update starts),
// and operations never restart — once a writer holds its bucket lock
// nothing can invalidate its window (§5.1: "this value is 0 in the case of
// the hash table").
type Lazy struct {
	buckets []lbucket
	mask    uint64
	region  htm.Region
	guard   core.ScanGuard // validates optimistic range scans (table-wide)
}

// NewLazy builds a lazy hash table sized per o (load factor 1).
func NewLazy(o core.Options) *Lazy {
	n := bucketCount(o)
	return &Lazy{buckets: make([]lbucket, n), mask: uint64(n - 1), region: o.Region()}
}

func init() {
	core.Register(core.Info{
		Name: "hashtable/lazy", Kind: "hashtable", Progress: "blocking", Featured: true,
		New:  func(o core.Options) core.Set { return NewLazy(o) },
		Desc: "per-bucket-lock lazy hash table (featured, load factor 1)",
	})
}

// Get implements core.Set: lock-free bucket scan.
func (h *Lazy) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	c.EpochEnter()
	defer c.EpochExit()
	b := &h.buckets[hash(k, h.mask)]
	for n := b.head.Load(); n != nil; n = n.next.Load() {
		if n.key == k {
			if n.marked.Load() {
				return 0, false
			}
			return n.val, true
		}
		if n.key > k {
			break
		}
	}
	return 0, false
}

// Put implements core.Set.
func (h *Lazy) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	b := &h.buckets[hash(k, h.mask)]
	if h.region.Attempts > 0 {
		var inserted bool
		h.region.Run(c.Stat(), doomOf(c), func(a *htm.Acq) htm.Status {
			if !a.Lock(&b.lock) {
				return a.AbortStatus()
			}
			if !a.Commit() {
				return a.AbortStatus()
			}
			inserted = b.insertLocked(c, &h.guard, k, v)
			return htm.Committed
		})
		c.RecordRestarts(0)
		return inserted
	}
	b.lock.Acquire(c.Stat())
	c.InCS()
	ok := b.insertLocked(c, &h.guard, k, v)
	b.lock.Release()
	c.RecordRestarts(0)
	return ok
}

// insertLocked does the sorted-splice under the bucket lock; a
// membership change opens g's scan window (g may be nil).
func (b *lbucket) insertLocked(c *core.Ctx, g *core.ScanGuard, k core.Key, v core.Value) bool {
	var pred *lnode
	curr := b.head.Load()
	for curr != nil && curr.key < k {
		pred = curr
		curr = curr.next.Load()
	}
	if curr != nil && curr.key == k {
		return false
	}
	n := &lnode{key: k, val: v}
	n.next.Store(curr)
	g.BeginWrite(c.Stat())
	if pred == nil {
		b.head.Store(n)
	} else {
		pred.next.Store(n)
	}
	g.EndWrite()
	return true
}

// Remove implements core.Set.
func (h *Lazy) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	b := &h.buckets[hash(k, h.mask)]
	if h.region.Attempts > 0 {
		var removed bool
		var victim *lnode
		h.region.Run(c.Stat(), doomOf(c), func(a *htm.Acq) htm.Status {
			if !a.Lock(&b.lock) {
				return a.AbortStatus()
			}
			if !a.Commit() {
				return a.AbortStatus()
			}
			removed, victim = b.removeLocked(c, &h.guard, k)
			return htm.Committed
		})
		if removed {
			c.Retire(victim)
		}
		c.RecordRestarts(0)
		return removed
	}
	b.lock.Acquire(c.Stat())
	c.InCS()
	ok, victim := b.removeLocked(c, &h.guard, k)
	b.lock.Release()
	if ok {
		c.Retire(victim)
	}
	c.RecordRestarts(0)
	return ok
}

func (b *lbucket) removeLocked(c *core.Ctx, g *core.ScanGuard, k core.Key) (bool, *lnode) {
	var pred *lnode
	curr := b.head.Load()
	for curr != nil && curr.key < k {
		pred = curr
		curr = curr.next.Load()
	}
	if curr == nil || curr.key != k {
		return false, nil
	}
	g.BeginWrite(c.Stat())
	curr.marked.Store(true) // logical delete first: concurrent readers stay correct
	if pred == nil {
		b.head.Store(curr.next.Load())
	} else {
		pred.next.Store(curr.next.Load())
	}
	g.EndWrite()
	return true, curr
}

// Len implements core.Set (quiesced use).
func (h *Lazy) Len() int {
	total := 0
	for i := range h.buckets {
		for n := h.buckets[i].head.Load(); n != nil; n = n.next.Load() {
			if !n.marked.Load() {
				total++
			}
		}
	}
	return total
}

// Range implements core.Ranger: a bucket-by-bucket walk over unmarked
// nodes, in arbitrary key order, quiesced-use like Len.
func (h *Lazy) Range(f func(k core.Key, v core.Value) bool) {
	for i := range h.buckets {
		for n := h.buckets[i].head.Load(); n != nil; n = n.next.Load() {
			if !n.marked.Load() && !f(n.key, n.val) {
				return
			}
		}
	}
}

// Scan implements core.Scanner: bucket-snapshot iteration — the whole
// table is collected bucket by bucket under the table-wide optimistic
// scan guard, filtered to [lo, hi), and accepted only if no update ran
// concurrently; atomic per call. Two hash-table caveats, by design: the
// key order is bucket order (unordered), and the cost is O(table), not
// O(range) — the hash destroys locality, so a range filter must look
// everywhere. Prefer ordered structures (or striped composites over
// them) for scan-heavy workloads.
func (h *Lazy) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedScan(c, &h.guard, func(emit func(k core.Key, v core.Value)) {
		collectBuckets(h.buckets, lo, hi, emit)
	}, f)
}

// CursorNext implements core.Cursor. Unlike Scan, cursor pages are
// delivered in ascending key order even here: key order is the only
// order a churning hash table can resume from (bucket positions shift
// under updates; keys do not). Each page collects the whole in-range
// tail under the table-wide guard — the documented O(table) hash-scan
// cost, which pagination cannot improve — then sorts and delivers the
// first max (see core.GuardedSortedPage). Prefer ordered structures or
// striped composites for cursor-heavy workloads.
func (h *Lazy) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedSortedPage(c, &h.guard, hi, max, func(emit func(k core.Key, v core.Value)) {
		collectBuckets(h.buckets, pos, hi, emit)
	}, f)
}

// collectBuckets emits a bucket array's in-range unmarked nodes in
// bucket order — the shared collect phase of the monolithic tables'
// scans (Lazy and Striped).
func collectBuckets(buckets []lbucket, lo, hi core.Key, emit func(k core.Key, v core.Value)) {
	for i := range buckets {
		for n := buckets[i].head.Load(); n != nil; n = n.next.Load() {
			if n.key >= lo && n.key < hi && !n.marked.Load() {
				emit(n.key, n.val)
			}
		}
	}
}

func doomOf(c *core.Ctx) *htm.Doom {
	if c == nil {
		return nil
	}
	return c.Doom
}
