package hashtable

import (
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
)

// The poisoning battery (settest.RunPoison): EBR on, reclaim callbacks
// poisoning and recycling every retired bucket-chain node, concurrent
// readers asserting no traversal (bucket scan, indexed range scan, or
// cursor page) ever observes a poisoned or recycled mapping.

func TestLazyPoison(t *testing.T) {
	settest.RunPoison(t, func(o core.Options) core.Set { return NewLazy(o) })
}

func TestLazySmallTablePoison(t *testing.T) {
	// A 2-bucket table forces heavy chain sharing: long chains recycle
	// under readers mid-traversal.
	settest.RunPoison(t, func(o core.Options) core.Set {
		o.Buckets = 2
		return NewLazy(o)
	})
}

func TestCOWPoison(t *testing.T) {
	settest.RunPoison(t, func(o core.Options) core.Set { return NewCOW(o) })
}

func TestStripedPoison(t *testing.T) {
	settest.RunPoison(t, func(o core.Options) core.Set { return NewStriped(o) })
}

func TestBucketedLockCouplingPoison(t *testing.T) {
	info, _ := core.Lookup("hashtable/lockcoupling")
	settest.RunPoison(t, info.New)
}

func TestBucketedPughPoison(t *testing.T) {
	info, _ := core.Lookup("hashtable/pugh")
	settest.RunPoison(t, info.New)
}

func TestBucketedHarrisPoison(t *testing.T) {
	info, _ := core.Lookup("hashtable/harris")
	settest.RunPoison(t, info.New)
}

func TestBucketedWaitFreePoison(t *testing.T) {
	info, _ := core.Lookup("hashtable/waitfree")
	settest.RunPoison(t, info.New)
}
