// Typed free-list and reclaim callback for the bucket-chain nodes
// (DESIGN.md, "Pooling contract"). An lnode is removed by marking it and
// unlinking it from its singly-linked bucket chain under the bucket (or
// stripe) lock, so at retire time the only references left are
// thread-private ones obtained inside epoch brackets — the grace period
// waits those out and the node recycles safely.
//
// The ordered key index does NOT pool. Its nodes are retired at the
// bottom-level snip, but an insert of the same key can publish an
// upper-level link to the marked victim and then hide it behind the
// equal-keyed new node (the helping walk stops at the first key >= k,
// so nothing ever snips the hidden link) — a structure-resident
// reference that outlives any bracket. ixNode retirements therefore
// carry a nil callback and fall to the GC, like skiplist/lockfree (see
// DESIGN.md).
package hashtable

import "csds/internal/core"

var lnodePool core.Pool

func newLNode(c *core.Ctx, k core.Key, v core.Value, next *lnode) *lnode {
	if c.Pooled() {
		if n, _ := lnodePool.Get(c).(*lnode); n != nil {
			n.key, n.val = k, v
			n.marked.Store(false)
			n.next.Store(next)
			return n
		}
	}
	n := &lnode{key: k, val: v}
	n.next.Store(next)
	return n
}

func reclaimLNode(p any) {
	n := p.(*lnode)
	n.key, n.val = core.PoisonKey, core.PoisonValue
	n.marked.Store(true)
	n.next.Store(nil)
	lnodePool.Put(n)
}
