// ReclaimAll (core.Reclaimer) for the monolithic hash tables: quiesced
// teardown sweeps that hand every bucket-chain node back to the package
// pool at once (same contract as the list package: the caller
// guarantees the instance is quiesced and discarded — the elastic
// resize's retire callback). The ordered key index is left for the GC —
// ixNodes are never pooled (pool.go) — and the COW table has nothing to
// pool at all.
package hashtable

import "csds/internal/core"

// ReclaimAll implements core.Reclaimer: recycle every bucket chain.
func (h *Lazy) ReclaimAll() {
	reclaimBuckets(h.buckets)
}

// ReclaimAll implements core.Reclaimer: recycle every bucket chain.
func (h *Striped) ReclaimAll() {
	reclaimBuckets(h.buckets)
}

func reclaimBuckets(buckets []lbucket) {
	for i := range buckets {
		curr := buckets[i].head.Load()
		buckets[i].head.Store(nil)
		for curr != nil {
			next := curr.next.Load()
			reclaimLNode(curr)
			curr = next
		}
	}
}

// ReclaimAll implements core.Reclaimer by delegation: each inner bucket
// list recycles its own nodes if it knows how.
func (b *Bucketed) ReclaimAll() {
	for _, s := range b.buckets {
		if r, ok := s.(core.Reclaimer); ok {
			r.ReclaimAll()
		}
	}
}
