package hashtable

import (
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/list"
	"csds/internal/locks"
)

// Bucketed composes any list-based core.Set into a hash table: one
// independent sub-set per bucket. This is exactly how ASCYLIB builds its
// lock-coupling and Pugh hash tables, and it reuses the heavily tested list
// implementations.
type Bucketed struct {
	buckets []core.Set
	mask    uint64
}

// NewBucketed builds a table of n buckets (rounded to a power of two) where
// each bucket is produced by mk.
func NewBucketed(o core.Options, mk func(core.Options) core.Set) *Bucketed {
	n := bucketCount(o)
	sub := o
	sub.ExpectedSize = 2 // load factor 1: tiny chains
	b := &Bucketed{buckets: make([]core.Set, n), mask: uint64(n - 1)}
	for i := range b.buckets {
		b.buckets[i] = mk(sub)
	}
	return b
}

func init() {
	core.Register(core.Info{
		Name: "hashtable/lockcoupling", Kind: "hashtable", Progress: "blocking",
		New: func(o core.Options) core.Set {
			return NewBucketed(o, func(so core.Options) core.Set { return list.NewLockCoupling(so) })
		},
		Desc: "hash table with a lock-coupling list per bucket",
	})
	core.Register(core.Info{
		Name: "hashtable/pugh", Kind: "hashtable", Progress: "blocking",
		New: func(o core.Options) core.Set {
			return NewBucketed(o, func(so core.Options) core.Set { return list.NewPugh(so) })
		},
		Desc: "hash table with a Pugh list per bucket",
	})
	core.Register(core.Info{
		Name: "hashtable/harris", Kind: "hashtable", Progress: "lock-free",
		New: func(o core.Options) core.Set {
			return NewBucketed(o, func(so core.Options) core.Set { return list.NewHarris(so) })
		},
		Desc: "lock-free hash table (Michael 2002 style: Harris list per bucket)",
	})
	core.Register(core.Info{
		Name: "hashtable/waitfree", Kind: "hashtable", Progress: "wait-free",
		New: func(o core.Options) core.Set {
			return NewBucketed(o, func(so core.Options) core.Set { return list.NewWaitFree(so) })
		},
		Desc: "wait-free hash table (descriptor/helping list per bucket; footnote 2 of the paper)",
	})
	core.Register(core.Info{
		Name: "hashtable/cow", Kind: "hashtable", Progress: "blocking",
		New:  func(o core.Options) core.Set { return NewCOW(o) },
		Desc: "copy-on-write hash table (whole-map copy per update)",
	})
	core.Register(core.Info{
		Name: "hashtable/striped", Kind: "hashtable", Progress: "blocking",
		New:  func(o core.Options) core.Set { return NewStriped(o) },
		Desc: "striped ConcurrentHashMap-style table (16 lock stripes)",
	})
}

// Get implements core.Set.
func (b *Bucketed) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	return b.buckets[hash(k, b.mask)].Get(c, k)
}

// Put implements core.Set.
func (b *Bucketed) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	return b.buckets[hash(k, b.mask)].Put(c, k, v)
}

// Remove implements core.Set.
func (b *Bucketed) Remove(c *core.Ctx, k core.Key) bool {
	return b.buckets[hash(k, b.mask)].Remove(c, k)
}

// Len implements core.Set.
func (b *Bucketed) Len() int {
	total := 0
	for _, s := range b.buckets {
		total += s.Len()
	}
	return total
}

// Range implements core.Ranger when every bucket list does (all the lists
// in this module do), visiting buckets in index order — arbitrary key
// order overall.
func (b *Bucketed) Range(f func(k core.Key, v core.Value) bool) {
	done := false
	for _, s := range b.buckets {
		if done {
			return
		}
		s.(core.Ranger).Range(func(k core.Key, v core.Value) bool {
			if !f(k, v) {
				done = true
			}
			return !done
		})
	}
}

// Scan implements core.Scanner by delegating to each bucket's own
// linearizable scan, in bucket index order. Buckets partition the keys,
// so no key is visited twice and each bucket's sub-snapshot is atomic;
// like every hash-table scan the result is unordered, O(table), and
// consistent per key within the call window (segment = bucket).
func (b *Bucketed) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	for _, s := range b.buckets {
		if !s.(core.Scanner).Scan(c, lo, hi, f) {
			return false
		}
	}
	return true
}

// CursorNext implements core.Cursor by k-way merge over the bucket
// lists' own cursors: each bucket contributes its first max in-range
// keys at or beyond the token position (one atomic sub-snapshot per
// bucket) and the sorted union pages out ascending — the same
// single-position merge protocol the sharded combinator uses, at bucket
// granularity (see core.CursorMergeNext).
func (b *Bucketed) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	return core.CursorMergeNext(c, b.buckets, pos, hi, max, f)
}

// COW is the copy-on-write hash table: readers load an immutable map
// snapshot; each writer copies the entire map under a global lock. Wait-free
// O(1) reads, fully serialized O(n) writes.
type COW struct {
	snap atomic.Pointer[map[core.Key]core.Value]
	mu   locks.Ticket
}

// NewCOW builds an empty copy-on-write table.
func NewCOW(o core.Options) *COW {
	h := &COW{}
	m := make(map[core.Key]core.Value)
	h.snap.Store(&m)
	return h
}

// Get implements core.Set.
func (h *COW) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	v, ok := (*h.snap.Load())[k]
	return v, ok
}

// Put implements core.Set.
func (h *COW) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	h.mu.Acquire(c.Stat())
	old := *h.snap.Load()
	if _, ok := old[k]; ok {
		h.mu.Release()
		c.RecordRestarts(0)
		return false
	}
	next := make(map[core.Key]core.Value, len(old)+1)
	for ok, ov := range old {
		next[ok] = ov
	}
	next[k] = v
	c.InCS()
	h.snap.Store(&next)
	h.mu.Release()
	c.RecordRestarts(0)
	return true
}

// Remove implements core.Set.
func (h *COW) Remove(c *core.Ctx, k core.Key) bool {
	h.mu.Acquire(c.Stat())
	old := *h.snap.Load()
	if _, ok := old[k]; !ok {
		h.mu.Release()
		c.RecordRestarts(0)
		return false
	}
	next := make(map[core.Key]core.Value, len(old))
	for ok, ov := range old {
		if ok != k {
			next[ok] = ov
		}
	}
	c.InCS()
	h.snap.Store(&next)
	h.mu.Release()
	c.RecordRestarts(0)
	return true
}

// Len implements core.Set.
func (h *COW) Len() int { return len(*h.snap.Load()) }

// Range implements core.Ranger over one immutable snapshot (exact even
// during concurrency), in Go map iteration order.
func (h *COW) Range(f func(k core.Key, v core.Value) bool) {
	for k, v := range *h.snap.Load() {
		if !f(k, v) {
			return
		}
	}
}

// Scan implements core.Scanner for free: one immutable snapshot load,
// filtered to the range; the scan linearizes at the load. Unordered (Go
// map iteration order) and O(table), like every hash-table scan here.
func (h *COW) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	for k, v := range *h.snap.Load() {
		if k >= lo && k < hi && !f(k, v) {
			return false
		}
	}
	return true
}

// CursorNext implements core.Cursor as a snapshot cursor: each page
// loads the then-current immutable map, collects the in-range tail at or
// beyond the token position (O(table), like every hash scan here), and
// delivers the first max in ascending key order. Nothing is pinned
// between pages; each page linearizes at its own snapshot load.
func (h *COW) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	var buf []core.ScanPair
	for k, v := range *h.snap.Load() {
		if k >= pos && k < hi {
			buf = append(buf, core.ScanPair{K: k, V: v})
		}
	}
	return core.MergePage(buf, true, hi, max, f)
}

// stripeCount is the fixed stripe count of the striped table (Java
// ConcurrentHashMap's historical default concurrency level).
const stripeCount = 16

// Striped is a ConcurrentHashMap-flavoured table: the bucket array is
// guarded by a fixed pool of lock stripes, so unrelated buckets can share a
// lock. Reads stay lock-free; the coarser write granularity shows up as
// extra waiting under contention (ablation: per-bucket vs striped locks,
// §5.3's granularity remark).
type Striped struct {
	buckets []lbucket // locks inside lbucket unused; stripes rule
	stripes [stripeCount]struct {
		lock locks.TAS
		_    [60]byte
	}
	mask  uint64
	guard core.ScanGuard // validates optimistic range scans (table-wide)
}

// NewStriped builds a striped table sized per o.
func NewStriped(o core.Options) *Striped {
	n := bucketCount(o)
	return &Striped{buckets: make([]lbucket, n), mask: uint64(n - 1)}
}

func (h *Striped) stripe(b uint64) *locks.TAS {
	return &h.stripes[b%stripeCount].lock
}

// Get implements core.Set.
func (h *Striped) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	b := &h.buckets[hash(k, h.mask)]
	for n := b.head.Load(); n != nil; n = n.next.Load() {
		if n.key == k {
			if n.marked.Load() {
				return 0, false
			}
			return n.val, true
		}
		if n.key > k {
			break
		}
	}
	return 0, false
}

// Put implements core.Set.
func (h *Striped) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	bi := hash(k, h.mask)
	l := h.stripe(bi)
	l.Acquire(c.Stat())
	c.InCS()
	ok := h.buckets[bi].insertLocked(c, &h.guard, k, v)
	l.Release()
	c.RecordRestarts(0)
	return ok
}

// Remove implements core.Set.
func (h *Striped) Remove(c *core.Ctx, k core.Key) bool {
	bi := hash(k, h.mask)
	l := h.stripe(bi)
	l.Acquire(c.Stat())
	c.InCS()
	ok, victim := h.buckets[bi].removeLocked(c, &h.guard, k)
	l.Release()
	if ok {
		c.Retire(victim)
	}
	c.RecordRestarts(0)
	return ok
}

// Len implements core.Set.
func (h *Striped) Len() int {
	total := 0
	for i := range h.buckets {
		for n := h.buckets[i].head.Load(); n != nil; n = n.next.Load() {
			if !n.marked.Load() {
				total++
			}
		}
	}
	return total
}

// Range implements core.Ranger: a bucket-by-bucket walk over unmarked
// nodes, in arbitrary key order, quiesced-use like Len.
func (h *Striped) Range(f func(k core.Key, v core.Value) bool) {
	for i := range h.buckets {
		for n := h.buckets[i].head.Load(); n != nil; n = n.next.Load() {
			if !n.marked.Load() && !f(n.key, n.val) {
				return
			}
		}
	}
}

// Scan implements core.Scanner: bucket-snapshot iteration under the
// table-wide scan guard, exactly like the lazy table's — unordered
// (bucket order) and O(table) per call, documented hash-table caveats.
// (No epoch bracket, matching this table's own Get path.)
func (h *Striped) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	return core.GuardedScan(c, &h.guard, func(emit func(k core.Key, v core.Value)) {
		collectBuckets(h.buckets, lo, hi, emit)
	}, f)
}

// CursorNext implements core.Cursor: the lazy table's sorted-page
// protocol under this table's own guard (ascending key order, O(table)
// collect per page — see Lazy.CursorNext).
func (h *Striped) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	return core.GuardedSortedPage(c, &h.guard, hi, max, func(emit func(k core.Key, v core.Value)) {
		collectBuckets(h.buckets, pos, hi, emit)
	}, f)
}
