package hashtable

import (
	"sort"
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/list"
	"csds/internal/locks"
)

// Bucketed composes any list-based core.Set into a hash table: one
// independent sub-set per bucket. This is exactly how ASCYLIB builds its
// lock-coupling and Pugh hash tables, and it reuses the heavily tested list
// implementations.
type Bucketed struct {
	buckets []core.Set
	mask    uint64
	guard   core.ScanGuard // brackets composite updates for index agreement
	index   *keyIndex      // ordered shadow: O(page)/O(range) scans & cursors
	seq     []ixSeqLock    // per-bucket-striped update sequencers (see Put)
}

// ixSeqCount bounds the sequencer pool (tables smaller than this get one
// sequencer per bucket — the featured table's own lock granularity).
const ixSeqCount = 1024

// ixSeqLock pads each sequencer to its own cache line region.
type ixSeqLock struct {
	lock locks.TAS
	_    [60]byte
}

// NewBucketed builds a table of n buckets (rounded to a power of two) where
// each bucket is produced by mk.
func NewBucketed(o core.Options, mk func(core.Options) core.Set) *Bucketed {
	n := bucketCount(o)
	sub := o
	sub.ExpectedSize = 2 // load factor 1: tiny chains
	ns := n
	if ns > ixSeqCount {
		ns = ixSeqCount
	}
	b := &Bucketed{buckets: make([]core.Set, n), mask: uint64(n - 1), index: newKeyIndex(indexSize(o, n)), seq: make([]ixSeqLock, ns)}
	for i := range b.buckets {
		b.buckets[i] = mk(sub)
	}
	return b
}

func init() {
	core.Register(core.Info{
		Name: "hashtable/lockcoupling", Kind: "hashtable", Progress: "blocking",
		New: func(o core.Options) core.Set {
			return NewBucketed(o, func(so core.Options) core.Set { return list.NewLockCoupling(so) })
		},
		Desc: "hash table with a lock-coupling list per bucket",
	})
	core.Register(core.Info{
		Name: "hashtable/pugh", Kind: "hashtable", Progress: "blocking",
		New: func(o core.Options) core.Set {
			return NewBucketed(o, func(so core.Options) core.Set { return list.NewPugh(so) })
		},
		Desc: "hash table with a Pugh list per bucket",
	})
	core.Register(core.Info{
		Name: "hashtable/harris", Kind: "hashtable", Progress: "lock-free",
		New: func(o core.Options) core.Set {
			return NewBucketed(o, func(so core.Options) core.Set { return list.NewHarris(so) })
		},
		Desc: "lock-free hash table (Michael 2002 style: Harris list per bucket)",
	})
	core.Register(core.Info{
		Name: "hashtable/waitfree", Kind: "hashtable", Progress: "wait-free",
		New: func(o core.Options) core.Set {
			return NewBucketed(o, func(so core.Options) core.Set { return list.NewWaitFree(so) })
		},
		Desc: "wait-free hash table (descriptor/helping list per bucket; footnote 2 of the paper)",
	})
	core.Register(core.Info{
		Name: "hashtable/cow", Kind: "hashtable", Progress: "blocking",
		New:  func(o core.Options) core.Set { return NewCOW(o) },
		Desc: "copy-on-write hash table (whole-map copy per update)",
	})
	core.Register(core.Info{
		Name: "hashtable/striped", Kind: "hashtable", Progress: "blocking",
		New:  func(o core.Options) core.Set { return NewStriped(o) },
		Desc: "striped ConcurrentHashMap-style table (16 lock stripes)",
	})
}

// Get implements core.Set.
func (b *Bucketed) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	return b.buckets[hash(k, b.mask)].Get(c, k)
}

// Put implements core.Set. Two pieces of discipline keep the ordered
// index agreeing with the buckets:
//
//   - the whole update runs inside the composite's guard bracket, so a
//     validated guarded collect never observes a bucket mutation whose
//     index shadow has not landed (an unsuccessful Put bumps the guard
//     version spuriously; that costs collect retries, never
//     correctness);
//   - the inner operation and its index shadow run under a per-bucket
//     sequencer lock, so two updates of the same key apply their index
//     deltas in the same order their bucket effects linearized —
//     without it, a delegated Put's index insert could land after a
//     later Remove's index delete and strand the key in the index
//     forever. The sequencer is the featured lazy table's own lock
//     granularity (per bucket, striped beyond ixSeqCount buckets);
//     reads never touch it, so the read path keeps the inner
//     structure's progress guarantee, and its waits surface in the
//     lock-wait metrics like every lock in this module.
func (b *Bucketed) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	bi := hash(k, b.mask)
	l := &b.seq[bi%uint64(len(b.seq))].lock
	b.guard.BeginWrite(c.Stat())
	l.Acquire(c.Stat())
	ok := b.buckets[bi].Put(c, k, v)
	if ok {
		b.index.insert(c, k, v)
	}
	l.Release()
	b.guard.EndWrite()
	return ok
}

// Remove implements core.Set (sequencing discipline as in Put).
func (b *Bucketed) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	bi := hash(k, b.mask)
	l := &b.seq[bi%uint64(len(b.seq))].lock
	b.guard.BeginWrite(c.Stat())
	l.Acquire(c.Stat())
	ok := b.buckets[bi].Remove(c, k)
	if ok {
		b.index.remove(c, k)
	}
	l.Release()
	b.guard.EndWrite()
	return ok
}

// Len implements core.Set.
func (b *Bucketed) Len() int {
	total := 0
	for _, s := range b.buckets {
		total += s.Len()
	}
	return total
}

// Range implements core.Ranger when every bucket list does (all the lists
// in this module do), visiting buckets in index order — arbitrary key
// order overall.
func (b *Bucketed) Range(f func(k core.Key, v core.Value) bool) {
	done := false
	for _, s := range b.buckets {
		if done {
			return
		}
		s.(core.Ranger).Range(func(k core.Key, v core.Value) bool {
			if !f(k, v) {
				done = true
			}
			return !done
		})
	}
}

// Scan implements core.Scanner over the composite's ordered key index,
// validated by the composite guard: O(log n + range), ascending, atomic
// per call — delegated per-bucket scans (unordered, O(table)) are gone.
func (b *Bucketed) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedScan(c, &b.guard, func(emit func(k core.Key, v core.Value)) {
		b.index.collect(lo, hi, func(k core.Key, v core.Value) bool {
			emit(k, v)
			return true
		})
	}, f)
}

// CursorNext implements core.Cursor: a bounded guard-validated page off
// the ordered key index, O(log n + page) — the 1024-way per-bucket
// cursor merge this replaces pulled up to a page from every bucket list
// per page, the worst overcollect in the module.
func (b *Bucketed) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedPage(c, &b.guard, hi, max, func(emit func(k core.Key, v core.Value) bool) {
		b.index.collect(pos, hi, emit)
	}, f)
}

// cowSnap is one immutable COW-table version: the map for O(1) point
// reads plus its ascending key slice — the table's ordered index,
// snapshotted for free since every write copies the world anyway. The
// slice gives ordered O(log n + range) scans and O(log n + page) cursor
// pages off a binary search.
type cowSnap struct {
	m    map[core.Key]core.Value
	keys []core.Key // ascending
}

// seek returns the index of the first key >= k.
func (s *cowSnap) seek(k core.Key) int {
	return sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= k })
}

// COW is the copy-on-write hash table: readers load an immutable
// snapshot; each writer copies the entire map (and its sorted key
// slice) under a global lock. Wait-free O(1) reads, fully serialized
// O(n) writes.
type COW struct {
	snap atomic.Pointer[cowSnap]
	mu   locks.Ticket
}

// NewCOW builds an empty copy-on-write table.
func NewCOW(o core.Options) *COW {
	h := &COW{}
	h.snap.Store(&cowSnap{m: make(map[core.Key]core.Value)})
	return h
}

// Get implements core.Set.
func (h *COW) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	v, ok := h.snap.Load().m[k]
	return v, ok
}

// Put implements core.Set.
func (h *COW) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	h.mu.Acquire(c.Stat())
	old := h.snap.Load()
	if _, ok := old.m[k]; ok {
		h.mu.Release()
		c.RecordRestarts(0)
		return false
	}
	next := &cowSnap{m: make(map[core.Key]core.Value, len(old.m)+1)}
	for ok, ov := range old.m {
		next.m[ok] = ov
	}
	next.m[k] = v
	i := old.seek(k)
	next.keys = make([]core.Key, 0, len(old.keys)+1)
	next.keys = append(next.keys, old.keys[:i]...)
	next.keys = append(next.keys, k)
	next.keys = append(next.keys, old.keys[i:]...)
	c.InCS()
	h.snap.Store(next)
	h.mu.Release()
	c.RecordRestarts(0)
	return true
}

// Remove implements core.Set.
func (h *COW) Remove(c *core.Ctx, k core.Key) bool {
	h.mu.Acquire(c.Stat())
	old := h.snap.Load()
	if _, ok := old.m[k]; !ok {
		h.mu.Release()
		c.RecordRestarts(0)
		return false
	}
	next := &cowSnap{m: make(map[core.Key]core.Value, len(old.m))}
	for ok, ov := range old.m {
		if ok != k {
			next.m[ok] = ov
		}
	}
	i := old.seek(k)
	next.keys = make([]core.Key, 0, len(old.keys)-1)
	next.keys = append(next.keys, old.keys[:i]...)
	next.keys = append(next.keys, old.keys[i+1:]...)
	c.InCS()
	h.snap.Store(next)
	h.mu.Release()
	c.RecordRestarts(0)
	return true
}

// Len implements core.Set.
func (h *COW) Len() int { return len(h.snap.Load().m) }

// Range implements core.Ranger over one immutable snapshot (exact even
// during concurrency), in ascending key order.
func (h *COW) Range(f func(k core.Key, v core.Value) bool) {
	s := h.snap.Load()
	for _, k := range s.keys {
		if !f(k, s.m[k]) {
			return
		}
	}
}

// Scan implements core.Scanner for free: one immutable snapshot load, a
// binary search to lo, and an in-order walk of the sorted key slice —
// ascending and O(log n + range); the scan linearizes at the load.
func (h *COW) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	s := h.snap.Load()
	for i := s.seek(lo); i < len(s.keys) && s.keys[i] < hi; i++ {
		if !f(s.keys[i], s.m[s.keys[i]]) {
			return false
		}
	}
	return true
}

// CursorNext implements core.Cursor as a snapshot cursor: each page
// loads the then-current immutable snapshot, binary-searches to the
// token position, and delivers up to max keys ascending — O(log n +
// page), nothing pinned between pages; each page linearizes at its own
// snapshot load.
func (h *COW) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	if max < 1 {
		max = 1
	}
	s := h.snap.Load()
	delivered := 0
	for i := s.seek(pos); i < len(s.keys) && s.keys[i] < hi; i++ {
		if delivered == max {
			c.RecordPagePull(delivered)
			return s.keys[i-1] + 1, false
		}
		if !f(s.keys[i], s.m[s.keys[i]]) {
			c.RecordPagePull(delivered + 1)
			return s.keys[i] + 1, false
		}
		delivered++
	}
	c.RecordPagePull(delivered)
	return hi, true
}

// stripeCount is the fixed stripe count of the striped table (Java
// ConcurrentHashMap's historical default concurrency level).
const stripeCount = 16

// Striped is a ConcurrentHashMap-flavoured table: the bucket array is
// guarded by a fixed pool of lock stripes, so unrelated buckets can share a
// lock. Reads stay lock-free; the coarser write granularity shows up as
// extra waiting under contention (ablation: per-bucket vs striped locks,
// §5.3's granularity remark).
type Striped struct {
	buckets []lbucket // locks inside lbucket unused; stripes rule
	stripes [stripeCount]struct {
		lock locks.TAS
		_    [60]byte
	}
	mask  uint64
	guard core.ScanGuard // validates optimistic range scans (table-wide)
	index *keyIndex      // ordered shadow: O(page)/O(range) scans & cursors
}

// NewStriped builds a striped table sized per o.
func NewStriped(o core.Options) *Striped {
	n := bucketCount(o)
	return &Striped{buckets: make([]lbucket, n), mask: uint64(n - 1), index: newKeyIndex(indexSize(o, n))}
}

func (h *Striped) stripe(b uint64) *locks.TAS {
	return &h.stripes[b%stripeCount].lock
}

// Get implements core.Set: lock-free bucket scan inside an epoch
// bracket (bucket nodes are pooled, so unbracketed traversal could step
// onto a recycled node).
func (h *Striped) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	c.EpochEnter()
	defer c.EpochExit()
	b := &h.buckets[hash(k, h.mask)]
	for n := b.head.Load(); n != nil; n = n.next.Load() {
		if n.key == k {
			if n.marked.Load() {
				return 0, false
			}
			return n.val, true
		}
		if n.key > k {
			break
		}
	}
	return 0, false
}

// Put implements core.Set.
func (h *Striped) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	bi := hash(k, h.mask)
	l := h.stripe(bi)
	l.Acquire(c.Stat())
	c.InCS()
	ok := h.buckets[bi].insertLocked(c, &h.guard, h.index, k, v)
	l.Release()
	c.RecordRestarts(0)
	return ok
}

// Remove implements core.Set.
func (h *Striped) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	bi := hash(k, h.mask)
	l := h.stripe(bi)
	l.Acquire(c.Stat())
	c.InCS()
	ok, victim := h.buckets[bi].removeLocked(c, &h.guard, h.index, k)
	l.Release()
	if ok {
		c.Retire(victim, reclaimLNode)
	}
	c.RecordRestarts(0)
	return ok
}

// Len implements core.Set.
func (h *Striped) Len() int {
	total := 0
	for i := range h.buckets {
		for n := h.buckets[i].head.Load(); n != nil; n = n.next.Load() {
			if !n.marked.Load() {
				total++
			}
		}
	}
	return total
}

// Range implements core.Ranger: a bucket-by-bucket walk over unmarked
// nodes, in arbitrary key order, quiesced-use like Len.
func (h *Striped) Range(f func(k core.Key, v core.Value) bool) {
	for i := range h.buckets {
		for n := h.buckets[i].head.Load(); n != nil; n = n.next.Load() {
			if !n.marked.Load() && !f(n.key, n.val) {
				return
			}
		}
	}
}

// Scan implements core.Scanner over the ordered key index, exactly like
// the lazy table's — ascending, O(log n + range), atomic per call under
// this table's own guard, bracketed like every reader of the index.
func (h *Striped) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedScan(c, &h.guard, func(emit func(k core.Key, v core.Value)) {
		h.index.collect(lo, hi, func(k core.Key, v core.Value) bool {
			emit(k, v)
			return true
		})
	}, f)
}

// CursorNext implements core.Cursor: the lazy table's indexed page
// protocol under this table's own guard (ascending, O(log n + page) —
// see Lazy.CursorNext).
func (h *Striped) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedPage(c, &h.guard, hi, max, func(emit func(k core.Key, v core.Value) bool) {
		h.index.collect(pos, hi, emit)
	}, f)
}
