// Package htm emulates best-effort hardware lock elision (Intel TSX as used
// in Section 5.4 of the paper) in portable Go.
//
// Go has no transactional-memory intrinsics, so we reproduce the *protocol*
// rather than the silicon (the substitution is documented in DESIGN.md §1):
//
//   - A critical section is first executed speculatively. Instead of
//     blocking on the node locks it needs, the speculative attempt
//     try-acquires them; any failure is a data conflict (in real HTM two
//     write phases touching the same cache lines abort each other — here
//     two write phases touching the same nodes fail each other's trylocks).
//   - An injected interrupt (context switch, I/O — see internal/interrupt)
//     dooms the in-flight speculation; the attempt releases everything it
//     holds and aborts *before performing any writes*, so a descheduled
//     thread never holds a lock. This mirrors TSX's abort-on-interrupt,
//     which the paper turns from a limitation into the key feature.
//   - After Attempts failed speculations the section falls back to the
//     pessimistic path: blocking lock acquisition (the "actual locks",
//     §5.4). Because speculators contend on the same per-node locks, a
//     fallback holder automatically forbids concurrent speculation on the
//     nodes it owns — the effect of the fallback-lock subscription in real
//     lock elision.
//
// Conflict granularity is the node lock rather than the cache line; for the
// CSDS write phases in this repository (1–3 adjacent nodes) this is the
// same granularity the paper's Equations (7)–(8) model.
//
// The body of a critical section is written once and runs under either
// mode through the Acq facade:
//
//	st := region.Run(th, doom, func(a *htm.Acq) htm.Status {
//	    if !a.Lock(&pred.lock) || !a.Lock(&curr.lock) {
//	        return htm.Conflict
//	    }
//	    if !validate(pred, curr) {
//	        return htm.ValidateFail // caller restarts the operation
//	    }
//	    if !a.Commit() {
//	        return htm.Interrupted
//	    }
//	    ... writes ...
//	    return htm.Committed
//	})
package htm

import (
	"sync/atomic"

	"csds/internal/stats"
)

// Status is the outcome of one critical-section execution.
type Status int

const (
	// Committed: the write phase executed and its locks were released.
	Committed Status = iota
	// ValidateFail: optimistic validation failed; the *operation* must
	// restart from its parse phase (this is not an HTM abort).
	ValidateFail
	// Conflict: a speculative attempt lost a trylock race (data conflict).
	Conflict
	// Interrupted: an injected interrupt doomed the speculation.
	Interrupted
	// Capacity: the speculation touched more locks than the emulated
	// hardware write-set capacity.
	Capacity
)

// String names the status for reports.
func (s Status) String() string {
	switch s {
	case Committed:
		return "committed"
	case ValidateFail:
		return "validate-fail"
	case Conflict:
		return "conflict"
	case Interrupted:
		return "interrupted"
	case Capacity:
		return "capacity"
	}
	return "unknown"
}

// NodeLock is the lock type elidable critical sections operate on; both
// locks.TAS and locks.Ticket satisfy it.
type NodeLock interface {
	Acquire(t *stats.Thread)
	TryAcquire(t *stats.Thread) bool
	Release()
}

// Doom is the abort flag an interrupt source raises to kill an in-flight
// speculation (one per worker thread). The zero value is ready to use.
type Doom struct {
	flag atomic.Bool
}

// Arm raises the flag; the worker's current (or next) speculative attempt
// will abort at its next check point.
func (d *Doom) Arm() { d.flag.Store(true) }

// disarm consumes the flag.
func (d *Doom) disarm() bool { return d.flag.Swap(false) }

// Armed reports the flag without consuming it.
func (d *Doom) Armed() bool { return d.flag.Load() }

// maxHeld is the emulated write-set capacity in locks. CSDS write phases
// hold 1–3 (skip lists: one per level); beyond this the hardware analogue
// would overflow its speculative buffer.
const maxHeld = 32

// Acq is the acquisition facade handed to a critical-section body. In
// speculative mode Lock try-acquires and may fail; in pessimistic mode it
// blocks and always succeeds.
type Acq struct {
	spec   bool
	th     *stats.Thread
	doom   *Doom
	held   [maxHeld]NodeLock
	nHeld  int
	status Status
}

// Speculative reports whether this execution is a speculative attempt.
// Bodies normally do not need it; it exists for tests and diagnostics.
func (a *Acq) Speculative() bool { return a.spec }

// Lock acquires l under the current mode. It returns false iff the
// speculative attempt must abort (conflict, interrupt, or capacity); the
// body must then return immediately with htm.Conflict (or the value of
// a.AbortStatus() for precision — Run treats any non-Committed,
// non-ValidateFail return as an abort and consults its own bookkeeping).
func (a *Acq) Lock(l NodeLock) bool {
	if a.spec {
		if a.doom != nil && a.doom.Armed() {
			a.status = Interrupted
			return false
		}
		if a.nHeld >= maxHeld {
			a.status = Capacity
			return false
		}
		// nil stats: a speculative trylock failure is a transactional
		// conflict, not a lock-level event, so it must not pollute the
		// lock wait/trylock counters the figures report.
		if !l.TryAcquire(nil) {
			a.status = Conflict
			return false
		}
		a.held[a.nHeld] = l
		a.nHeld++
		return true
	}
	if a.nHeld >= maxHeld {
		// A body that needs more than maxHeld locks cannot be elided and
		// cannot be expressed through Acq at all — programming error.
		panic("htm: critical section exceeds lock capacity")
	}
	l.Acquire(a.th)
	a.held[a.nHeld] = l
	a.nHeld++
	return true
}

// Commit is the final interrupt check point, called after validation and
// immediately before the body's writes. In pessimistic mode it always
// returns true: a real lock holder completes its writes even if
// descheduled (that is precisely the hazard the elided mode removes).
func (a *Acq) Commit() bool {
	if a.spec && a.doom != nil && a.doom.Armed() {
		a.status = Interrupted
		return false
	}
	return true
}

// AbortStatus returns the abort cause recorded by a failed Lock/Commit.
func (a *Acq) AbortStatus() Status { return a.status }

// releaseAll unlocks everything in LIFO order.
func (a *Acq) releaseAll() {
	for i := a.nHeld - 1; i >= 0; i-- {
		a.held[i].Release()
		a.held[i] = nil
	}
	a.nHeld = 0
}

// Region is an elidable critical-section descriptor: how many speculative
// attempts to make before falling back to the locks. The paper (§6.4)
// assumes five.
type Region struct {
	// Attempts is the speculation budget; <= 0 disables elision entirely
	// (pure pessimistic locking, the "default implementation" of Table 3).
	Attempts int
}

// Run executes body as an elided critical section on behalf of the worker
// owning th and doom (both may be nil: no stats, no interrupts). It returns
// Committed or ValidateFail; all abort handling and retrying happens
// inside. Locks acquired through the Acq are always released before Run
// returns.
func (r *Region) Run(th *stats.Thread, doom *Doom, body func(*Acq) Status) Status {
	for attempt := 0; attempt < r.Attempts; attempt++ {
		a := Acq{spec: true, th: th, doom: doom}
		if th != nil {
			th.RecordTxAttempt()
		}
		st := body(&a)
		a.releaseAll()
		switch st {
		case Committed:
			if th != nil {
				th.RecordTxCommit()
			}
			return Committed
		case ValidateFail:
			// Not an abort: the operation itself is stale. Do not burn
			// speculation budget bookkeeping beyond the attempt counter —
			// the op restarts its parse phase and will come back.
			if th != nil {
				th.RecordTxCommit() // the speculation itself succeeded
			}
			return ValidateFail
		case Conflict, Interrupted, Capacity:
			// body may also return Conflict generically; trust the Acq's
			// own record when it aborted a Lock/Commit call.
			cause := st
			if a.status != Committed {
				cause = a.status
			}
			if th != nil {
				th.RecordTxAbort(abortCause(cause))
			}
			if cause == Interrupted && doom != nil {
				doom.disarm()
			}
		default:
			panic("htm: body returned invalid status")
		}
	}
	// Fallback: the pessimistic path with the real locks.
	if th != nil && r.Attempts > 0 {
		th.RecordTxFallback()
	}
	a := Acq{spec: false, th: th}
	st := body(&a)
	a.releaseAll()
	if st != Committed && st != ValidateFail {
		panic("htm: pessimistic body aborted; bodies must only abort on failed Acq calls")
	}
	return st
}

// Try executes body as a single one-shot speculative attempt: Lock
// try-acquires, Commit checks the doom flag, and any abort releases
// everything and reports false — no retries and no pessimistic
// fallback. It exists for callers that have a *structural* fallback of
// their own (e.g. a batched cache update that reverts to its per-key
// locked loop): Try is the optimistic half of such a batch commit, so
// the usual fallback-to-the-same-locks protocol of Region.Run does not
// apply. Returns whether body committed; a ValidateFail also reports
// false (the caller's fallback re-reads fresh state anyway).
func Try(th *stats.Thread, doom *Doom, body func(*Acq) Status) bool {
	a := Acq{spec: true, th: th, doom: doom}
	if th != nil {
		th.RecordTxAttempt()
	}
	st := body(&a)
	a.releaseAll()
	switch st {
	case Committed:
		if th != nil {
			th.RecordTxCommit()
		}
		return true
	case ValidateFail:
		if th != nil {
			th.RecordTxCommit() // the speculation itself succeeded
		}
		return false
	case Conflict, Interrupted, Capacity:
		cause := st
		if a.status != Committed {
			cause = a.status
		}
		if th != nil {
			th.RecordTxAbort(abortCause(cause))
		}
		if cause == Interrupted && doom != nil {
			doom.disarm()
		}
		return false
	default:
		panic("htm: body returned invalid status")
	}
}

func abortCause(s Status) stats.AbortCause {
	switch s {
	case Conflict:
		return stats.AbortConflict
	case Interrupted:
		return stats.AbortInterrupt
	case Capacity:
		return stats.AbortCapacity
	}
	return stats.AbortConflict
}
