package htm

import (
	"sync"
	"testing"
	"testing/quick"

	"csds/internal/locks"
	"csds/internal/stats"
)

// TestElisionExactnessProperty: for arbitrary worker/iteration/attempt
// mixes with randomly armed dooms, mutual exclusion and lock hygiene must
// hold: the protected counter is exact and no lock is left held.
func TestElisionExactnessProperty(t *testing.T) {
	prop := func(workersRaw, itersRaw, attemptsRaw uint8, armEvery uint8) bool {
		workers := 1 + int(workersRaw)%6
		iters := 50 + int(itersRaw)%400
		attempts := int(attemptsRaw) % 7
		var l1, l2 locks.TAS
		var counter int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var th stats.Thread
				var d Doom
				r := Region{Attempts: attempts}
				for i := 0; i < iters; i++ {
					if armEvery > 0 && i%int(armEvery) == 0 {
						d.Arm() // interrupt lands before/inside the txn
					}
					r.Run(&th, &d, func(a *Acq) Status {
						if !a.Lock(&l1) || !a.Lock(&l2) {
							return a.AbortStatus()
						}
						if !a.Commit() {
							return a.AbortStatus()
						}
						counter++
						return Committed
					})
				}
			}(w)
		}
		wg.Wait()
		return counter == int64(workers*iters) && !l1.Held() && !l2.Held()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAccountingIdentityProperty: commits + fallbacks equals the number
// of critical sections executed, and attempts >= commits.
func TestAccountingIdentityProperty(t *testing.T) {
	prop := func(itersRaw, attemptsRaw, armEvery uint8) bool {
		iters := 1 + int(itersRaw)%500
		attempts := 1 + int(attemptsRaw)%6
		var l locks.TAS
		var th stats.Thread
		var d Doom
		r := Region{Attempts: attempts}
		for i := 0; i < iters; i++ {
			if armEvery > 0 && i%int(armEvery) == 0 {
				d.Arm()
			}
			r.Run(&th, &d, func(a *Acq) Status {
				if !a.Lock(&l) {
					return a.AbortStatus()
				}
				if !a.Commit() {
					return a.AbortStatus()
				}
				return Committed
			})
		}
		if th.TxCommits+th.TxFallbacks != uint64(iters) {
			return false
		}
		if th.TxAttempts < th.TxCommits {
			return false
		}
		var aborts uint64
		for _, a := range th.TxAborts {
			aborts += a
		}
		// Every attempt either commits or aborts.
		return th.TxAttempts == th.TxCommits+aborts
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
