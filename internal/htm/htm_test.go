package htm

import (
	"sync"
	"testing"

	"csds/internal/locks"
	"csds/internal/stats"
)

func TestCommitFirstAttempt(t *testing.T) {
	var l locks.TAS
	var th stats.Thread
	r := Region{Attempts: 5}
	ran := 0
	st := r.Run(&th, nil, func(a *Acq) Status {
		ran++
		if !a.Lock(&l) {
			return Conflict
		}
		if !a.Commit() {
			return Interrupted
		}
		return Committed
	})
	if st != Committed || ran != 1 {
		t.Fatalf("st=%v ran=%d", st, ran)
	}
	if th.TxCommits != 1 || th.TxAttempts != 1 || th.TxFallbacks != 0 {
		t.Fatalf("stats wrong: %+v", th)
	}
	if l.Held() {
		t.Fatal("lock not released after commit")
	}
}

func TestConflictThenFallback(t *testing.T) {
	// Hold the node lock from outside for the whole test: every speculation
	// conflicts, then the fallback blocks; release from another goroutine.
	var l locks.TAS
	l.Acquire(nil)
	var th stats.Thread
	r := Region{Attempts: 3}

	done := make(chan Status, 1)
	entered := make(chan struct{})
	var once sync.Once
	go func() {
		st := r.Run(&th, nil, func(a *Acq) Status {
			if !a.Speculative() {
				once.Do(func() { close(entered) })
			}
			if !a.Lock(&l) {
				return Conflict
			}
			return Committed
		})
		done <- st
	}()
	<-entered // fallback path reached => 3 conflicts recorded
	l.Release()
	if st := <-done; st != Committed {
		t.Fatalf("fallback status = %v", st)
	}
	if th.TxAborts[stats.AbortConflict] != 3 {
		t.Fatalf("conflict aborts = %d, want 3", th.TxAborts[stats.AbortConflict])
	}
	if th.TxFallbacks != 1 || th.TxCommits != 0 {
		t.Fatalf("fallback accounting wrong: %+v", th)
	}
	if l.Held() {
		t.Fatal("lock not released after fallback commit")
	}
}

func TestInterruptAborts(t *testing.T) {
	var l locks.TAS
	var th stats.Thread
	var d Doom
	d.Arm()
	r := Region{Attempts: 2}
	st := r.Run(&th, &d, func(a *Acq) Status {
		if !a.Lock(&l) {
			return a.AbortStatus()
		}
		if !a.Commit() {
			return Interrupted
		}
		return Committed
	})
	// First attempt aborts on the armed doom (which is then consumed),
	// second attempt commits.
	if st != Committed {
		t.Fatalf("status = %v", st)
	}
	if th.TxAborts[stats.AbortInterrupt] != 1 {
		t.Fatalf("interrupt aborts = %d, want 1", th.TxAborts[stats.AbortInterrupt])
	}
	if d.Armed() {
		t.Fatal("doom not consumed by the abort")
	}
	if l.Held() {
		t.Fatal("lock leaked by interrupted speculation")
	}
}

func TestInterruptAtCommitPoint(t *testing.T) {
	// Arm the doom after locks are taken, before Commit: the speculation
	// must release and abort without writing.
	var l locks.TAS
	var th stats.Thread
	var d Doom
	r := Region{Attempts: 2}
	wrote := 0
	first := true
	st := r.Run(&th, &d, func(a *Acq) Status {
		if !a.Lock(&l) {
			return a.AbortStatus()
		}
		if first {
			first = false
			d.Arm() // interrupt arrives while "in" the transaction
		}
		if !a.Commit() {
			return Interrupted
		}
		wrote++
		return Committed
	})
	if st != Committed || wrote != 1 {
		t.Fatalf("st=%v wrote=%d (writes must not happen in the aborted attempt)", st, wrote)
	}
	if th.TxAborts[stats.AbortInterrupt] != 1 {
		t.Fatalf("interrupt abort not recorded: %+v", th)
	}
}

func TestValidateFailReturnsImmediately(t *testing.T) {
	var th stats.Thread
	r := Region{Attempts: 5}
	ran := 0
	st := r.Run(&th, nil, func(a *Acq) Status {
		ran++
		return ValidateFail
	})
	if st != ValidateFail || ran != 1 {
		t.Fatalf("st=%v ran=%d", st, ran)
	}
	if th.TxFallbacks != 0 {
		t.Fatal("validation failure must not count as fallback")
	}
}

func TestZeroAttemptsIsPessimistic(t *testing.T) {
	var l locks.TAS
	var th stats.Thread
	r := Region{Attempts: 0}
	st := r.Run(&th, nil, func(a *Acq) Status {
		if a.Speculative() {
			t.Error("Attempts=0 ran a speculative attempt")
		}
		if !a.Lock(&l) {
			return Conflict
		}
		return Committed
	})
	if st != Committed {
		t.Fatalf("st=%v", st)
	}
	if th.TxAttempts != 0 || th.TxFallbacks != 0 {
		t.Fatalf("Attempts=0 must not record tx stats: %+v", th)
	}
}

func TestCapacityAbort(t *testing.T) {
	var th stats.Thread
	ls := make([]locks.TAS, maxHeld+1)
	r := Region{Attempts: 1}
	st := r.Run(&th, nil, func(a *Acq) Status {
		// Speculatively try to take maxHeld+1 locks, triggering the
		// capacity abort; the pessimistic fallback takes just one (a real
		// body would be written to fit, this shape only exercises the
		// accounting).
		n := len(ls)
		if !a.Speculative() {
			n = 1
		}
		for i := 0; i < n; i++ {
			if !a.Lock(&ls[i]) {
				return a.AbortStatus()
			}
		}
		return Committed
	})
	if st != Committed {
		t.Fatalf("st=%v", st)
	}
	if th.TxAborts[stats.AbortCapacity] != 1 {
		t.Fatalf("capacity abort not recorded: %+v", th)
	}
	for i := range ls {
		if ls[i].Held() {
			t.Fatalf("lock %d leaked", i)
		}
	}
}

func TestMutualExclusionUnderElision(t *testing.T) {
	// Speculative and pessimistic critical sections must still be mutually
	// exclusive: increment a plain counter under a single node lock from
	// many goroutines with a tiny attempt budget to force frequent
	// fallbacks.
	var l locks.TAS
	var counter int64
	const workers = 8
	const iters = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var th stats.Thread
			r := Region{Attempts: 2}
			for i := 0; i < iters; i++ {
				r.Run(&th, nil, func(a *Acq) Status {
					if !a.Lock(&l) {
						return Conflict
					}
					if !a.Commit() {
						return Interrupted
					}
					counter++
					return Committed
				})
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("exclusion violated: %d != %d", counter, workers*iters)
	}
}

func TestFallbackBlocksSpeculators(t *testing.T) {
	// While a pessimistic holder owns the node lock, speculations must
	// abort with Conflict (the lock-subscription property).
	var l locks.TAS
	l.Acquire(nil)
	var th stats.Thread
	r := Region{Attempts: 1}
	aborted := false
	go func() {}()
	// Single speculative attempt, then fallback would block — so run only
	// the speculative part by releasing in another goroutine after a beat.
	release := make(chan struct{})
	go func() { <-release; l.Release() }()
	st := r.Run(&th, nil, func(a *Acq) Status {
		if a.Speculative() {
			if !a.Lock(&l) {
				aborted = true
				return Conflict
			}
			return Committed
		}
		close(release)
		if !a.Lock(&l) {
			return Conflict
		}
		return Committed
	})
	if !aborted {
		t.Fatal("speculation did not abort while fallback lock held")
	}
	if st != Committed {
		t.Fatalf("st=%v", st)
	}
}

func TestMultiLockOrderAndRelease(t *testing.T) {
	var l1, l2, l3 locks.Ticket
	var th stats.Thread
	r := Region{Attempts: 1}
	st := r.Run(&th, nil, func(a *Acq) Status {
		if !a.Lock(&l1) || !a.Lock(&l2) || !a.Lock(&l3) {
			return Conflict
		}
		if !l1.Held() || !l2.Held() || !l3.Held() {
			t.Error("locks not held inside critical section")
		}
		return Committed
	})
	if st != Committed {
		t.Fatalf("st=%v", st)
	}
	if l1.Held() || l2.Held() || l3.Held() {
		t.Fatal("locks leaked")
	}
}

func TestPartialConflictReleasesPrefix(t *testing.T) {
	// l2 is held externally: the speculation acquires l1, fails l2, and
	// must release l1 on abort.
	var l1, l2 locks.TAS
	l2.Acquire(nil)
	var th stats.Thread
	r := Region{Attempts: 1}
	done := make(chan struct{})
	go func() {
		defer close(done)
		specDone := false
		r.Run(&th, nil, func(a *Acq) Status {
			if a.Speculative() {
				if !a.Lock(&l1) {
					return Conflict
				}
				if !a.Lock(&l2) {
					specDone = true
					return Conflict
				}
				return Committed
			}
			if !specDone {
				t.Error("fallback before speculation conflict")
			}
			// Pessimistic path: check l1 was released by the abort before
			// we re-acquire (we are the only other user of l1).
			if l1.Held() {
				t.Error("l1 leaked by aborted speculation")
			}
			if !a.Lock(&l1) {
				return Conflict
			}
			return Committed
		})
	}()
	// Fallback on l2 blocks until we release it... but the pessimistic body
	// above only locks l1, so no deadlock; just wait.
	<-done
	l2.Release()
	if th.TxAborts[stats.AbortConflict] != 1 {
		t.Fatalf("conflict abort not recorded: %+v", th)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		Committed: "committed", ValidateFail: "validate-fail",
		Conflict: "conflict", Interrupted: "interrupted",
		Capacity: "capacity", Status(42): "unknown",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestBadStatusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid body status did not panic")
		}
	}()
	r := Region{Attempts: 1}
	r.Run(nil, nil, func(a *Acq) Status { return Status(42) })
}

func BenchmarkElidedUncontended(b *testing.B) {
	var l locks.TAS
	r := Region{Attempts: 5}
	for i := 0; i < b.N; i++ {
		r.Run(nil, nil, func(a *Acq) Status {
			if !a.Lock(&l) {
				return Conflict
			}
			return Committed
		})
	}
}
