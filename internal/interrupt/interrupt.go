// Package interrupt injects the adversarial scheduling events of the
// paper's Section 5.4: threads that suffer delays *while holding locks*
// (Figure 9) and the frequent context switches of multiprogrammed systems
// (Tables 2–3, 8 threads per hardware context).
//
// Injection points are cooperative: workers poll between operations
// (BetweenOps) and data structures invoke the per-thread critical-section
// hook from inside their write phase (see core.Ctx.CSHook). Under lock mode
// the hook simply burns wall-clock time while the locks are held — the
// disaster the paper describes. Under elided mode the interrupt instead
// arms the worker's htm.Doom, so the speculation aborts and the locks are
// *not* held across the deschedule — the TSX behaviour the paper exploits.
package interrupt

import (
	"runtime"
	"time"

	"csds/internal/htm"
	"csds/internal/xrand"
)

// Spin busy-waits approximately d, yielding to the scheduler so other
// goroutines keep running (time.Sleep has too coarse a floor for the
// microsecond delays of Figure 9).
func Spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// DelayPlan reproduces Figure 9's victim thread: "delayed for a random
// interval between 1000 and 100000 ns every 10 updates, while holding
// locks".
type DelayPlan struct {
	EveryNUpdates int           // fire on every Nth update (10 in the paper)
	MinDelay      time.Duration // 1000ns in the paper
	MaxDelay      time.Duration // 100000ns in the paper
}

// PaperDelayPlan returns the exact Figure 9 configuration.
func PaperDelayPlan() DelayPlan {
	return DelayPlan{EveryNUpdates: 10, MinDelay: 1000 * time.Nanosecond, MaxDelay: 100000 * time.Nanosecond}
}

// SwitchPlan models multiprogramming-induced context switches (Table 2
// setting). Each operation's critical section is interrupted with
// probability Rate; the victim is descheduled for a duration in
// [MinOff, MaxOff]. The paper's measurement: with 4 threads per hardware
// context, a thread runs ~12ms then is swapped out for ~37ms, i.e. a given
// short critical section is hit rarely — but across millions of operations
// a few of those hits land inside the write phase, which is what Table 2
// quantifies.
type SwitchPlan struct {
	Rate   float64 // probability an op's critical section is interrupted
	MinOff time.Duration
	MaxOff time.Duration
}

// Injector is the per-worker interrupt state machine. One injector per
// worker goroutine; not safe for sharing.
type Injector struct {
	Delay  *DelayPlan  // nil = no Figure 9 victim behaviour
	Switch *SwitchPlan // nil = no multiprogramming interrupts

	Doom *htm.Doom // armed instead of sleeping when elision is active

	// Elided selects the HTM behaviour: when true, an interrupt that would
	// land in a critical section arms Doom (aborting the speculation) and
	// the deschedule happens outside the critical section.
	Elided bool

	rng     *xrand.Rng
	updates int

	// Fired counts injected events, for test assertions and reports.
	FiredDelays   uint64
	FiredSwitches uint64

	// pendingOff is a deschedule to serve at the next BetweenOps poll
	// (elided mode defers the sleep to outside the critical section).
	pendingOff time.Duration
	// pendingCS is an in-critical-section delay to serve at the next
	// CSHook call (lock mode: the thread stalls while holding locks).
	pendingCS time.Duration
}

// NewInjector builds an injector with its own RNG stream.
func NewInjector(seed uint64) *Injector {
	return &Injector{rng: xrand.New(seed)}
}

// OnUpdate must be called by the worker once per update operation (before
// executing it); it decides whether this operation's critical section will
// be victimised and pre-arms the machinery.
func (in *Injector) OnUpdate() {
	if in.Delay != nil {
		in.updates++
		if in.updates >= in.Delay.EveryNUpdates {
			in.updates = 0
			in.armCS(in.delayDuration())
			in.FiredDelays++
		}
	}
	if in.Switch != nil && in.rng.Bool(in.Switch.Rate) {
		in.armCS(in.offDuration())
		in.FiredSwitches++
	}
}

func (in *Injector) delayDuration() time.Duration {
	span := in.Delay.MaxDelay - in.Delay.MinDelay
	if span <= 0 {
		return in.Delay.MinDelay
	}
	return in.Delay.MinDelay + time.Duration(in.rng.Int63n(int64(span)))
}

func (in *Injector) offDuration() time.Duration {
	span := in.Switch.MaxOff - in.Switch.MinOff
	if span <= 0 {
		return in.Switch.MinOff
	}
	return in.Switch.MinOff + time.Duration(in.rng.Int63n(int64(span)))
}

// armCS schedules an interrupt for the next critical section.
func (in *Injector) armCS(d time.Duration) {
	if in.Elided && in.Doom != nil {
		// The interrupt will abort the speculation; the thread is then off
		// CPU for d, but holds no locks during that time.
		in.Doom.Arm()
		in.pendingOff += d
		return
	}
	in.pendingCS += d
}

// CSHook is invoked by data structures from inside their write phase while
// locks are held. In lock mode it serves any pending in-CS delay —
// emulating a deschedule at the worst possible moment.
func (in *Injector) CSHook() {
	if in.pendingCS > 0 {
		d := in.pendingCS
		in.pendingCS = 0
		Spin(d)
	}
}

// BetweenOps is invoked by the worker between operations; it serves
// deferred deschedules (elided mode).
func (in *Injector) BetweenOps() {
	if in.pendingOff > 0 {
		d := in.pendingOff
		in.pendingOff = 0
		Spin(d)
	}
}
