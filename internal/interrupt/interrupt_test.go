package interrupt

import (
	"testing"
	"time"

	"csds/internal/htm"
)

func TestSpinWaitsApproximately(t *testing.T) {
	start := time.Now()
	Spin(200 * time.Microsecond)
	if el := time.Since(start); el < 200*time.Microsecond {
		t.Fatalf("Spin returned early: %v", el)
	}
}

func TestDelayPlanFiresEveryN(t *testing.T) {
	in := NewInjector(1)
	dp := DelayPlan{EveryNUpdates: 10, MinDelay: time.Microsecond, MaxDelay: time.Microsecond}
	in.Delay = &dp
	for i := 0; i < 100; i++ {
		in.OnUpdate()
	}
	if in.FiredDelays != 10 {
		t.Fatalf("fired %d delays for 100 updates, want 10", in.FiredDelays)
	}
}

func TestPaperDelayPlanValues(t *testing.T) {
	dp := PaperDelayPlan()
	if dp.EveryNUpdates != 10 || dp.MinDelay != 1000 || dp.MaxDelay != 100000 {
		t.Fatalf("paper plan wrong: %+v", dp)
	}
}

func TestLockModeDelayServedInCS(t *testing.T) {
	in := NewInjector(2)
	dp := DelayPlan{EveryNUpdates: 1, MinDelay: 100 * time.Microsecond, MaxDelay: 100 * time.Microsecond}
	in.Delay = &dp
	in.OnUpdate()
	if in.pendingCS == 0 {
		t.Fatal("delay not armed for the critical section")
	}
	start := time.Now()
	in.CSHook()
	if time.Since(start) < 100*time.Microsecond {
		t.Fatal("CSHook did not serve the delay")
	}
	if in.pendingCS != 0 {
		t.Fatal("pending delay not consumed")
	}
	// Second hook with nothing pending is instant-ish.
	in.CSHook()
}

func TestElidedModeArmsDoomInsteadOfCSStall(t *testing.T) {
	in := NewInjector(3)
	var d htm.Doom
	in.Doom = &d
	in.Elided = true
	dp := DelayPlan{EveryNUpdates: 1, MinDelay: 50 * time.Microsecond, MaxDelay: 50 * time.Microsecond}
	in.Delay = &dp
	in.OnUpdate()
	if !d.Armed() {
		t.Fatal("doom not armed in elided mode")
	}
	if in.pendingCS != 0 {
		t.Fatal("elided mode must not stall inside the critical section")
	}
	if in.pendingOff == 0 {
		t.Fatal("deschedule not deferred to between-ops")
	}
	start := time.Now()
	in.BetweenOps()
	if time.Since(start) < 50*time.Microsecond {
		t.Fatal("BetweenOps did not serve the deferred deschedule")
	}
	if in.pendingOff != 0 {
		t.Fatal("pending deschedule not consumed")
	}
}

func TestSwitchPlanProbability(t *testing.T) {
	in := NewInjector(4)
	sp := SwitchPlan{Rate: 0.25, MinOff: 0, MaxOff: 0}
	in.Switch = &sp
	const n = 40000
	for i := 0; i < n; i++ {
		in.OnUpdate()
		in.pendingCS = 0 // don't accumulate
	}
	got := float64(in.FiredSwitches) / n
	if got < 0.22 || got > 0.28 {
		t.Fatalf("switch rate %f, want ~0.25", got)
	}
}

func TestSwitchRateZeroNeverFires(t *testing.T) {
	in := NewInjector(5)
	sp := SwitchPlan{Rate: 0}
	in.Switch = &sp
	for i := 0; i < 1000; i++ {
		in.OnUpdate()
	}
	if in.FiredSwitches != 0 {
		t.Fatalf("zero-rate plan fired %d switches", in.FiredSwitches)
	}
}

func TestNoPlansNoEffects(t *testing.T) {
	in := NewInjector(6)
	for i := 0; i < 100; i++ {
		in.OnUpdate()
		in.CSHook()
		in.BetweenOps()
	}
	if in.FiredDelays != 0 || in.FiredSwitches != 0 {
		t.Fatal("injector fired with no plans configured")
	}
}

func TestDegenerateSpanUsesMin(t *testing.T) {
	in := NewInjector(7)
	dp := DelayPlan{EveryNUpdates: 1, MinDelay: time.Microsecond, MaxDelay: time.Microsecond}
	in.Delay = &dp
	in.OnUpdate()
	if in.pendingCS != time.Microsecond {
		t.Fatalf("pendingCS = %v, want 1µs", in.pendingCS)
	}
}
