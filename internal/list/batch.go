// Batched (core.Batcher) paths for the list structures. The lists are
// where batching pays the most: a point operation's dominant cost is
// the O(n) prefix traversal, and a sorted batch walks that prefix
// once, resuming each key's search from the previous key's position.
// Write batches additionally amortize one scan-guard write bracket
// over the whole batch instead of opening a window per key.
package list

import (
	"runtime"

	"csds/internal/core"
)

// ---------------------------------------------------------------------------
// Lazy list: resumed traversal, one guard bracket per write batch.
// ---------------------------------------------------------------------------

// MultiGet implements core.Batcher: one synchronization-free traversal
// serves the whole sorted batch, resuming from the previous key's
// predecessor (pred.key < k <= k' keeps every resume position valid).
// Like Get it performs no stores and never restarts.
func (l *Lazy) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	if len(keys) == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	ord := sc.Ints(len(keys))
	core.OrderInto(ord, func(i int) core.Key { return keys[i] })
	vals := sc.Vals(len(keys))
	oks := sc.Bools(len(keys))
	c.EpochEnter()
	pred := l.head
	for _, i := range ord {
		k := keys[i]
		curr := pred.next.Load()
		for curr.key < k {
			pred = curr
			curr = curr.next.Load()
		}
		if curr.key == k && !curr.marked.Load() {
			vals[i], oks[i] = curr.val, true
		}
	}
	c.EpochExit()
	for i := range keys {
		f(i, vals[i], oks[i])
	}
}

// MultiPut implements core.Batcher: the batch is applied in ascending
// key order inside ONE scan-guard write bracket, each key's window
// search resuming from the previous key's predecessor. Holding the
// bracket across the batch forces two disciplines the point path does
// not need: node locks are try-acquired only (a blocking acquire could
// deadlock against a frozen scanner draining the bracket we hold), and
// the bracket is yielded between attempts whenever a fallback scanner
// has raised the freeze barrier (core.ScanGuard.WriteYield).
func (l *Lazy) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	if len(pairs) == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	ord := sc.Ints(len(pairs))
	core.OrderInto(ord, func(i int) core.Key { return pairs[i].K })
	res := sc.Bools(len(pairs))
	c.EpochEnter()
	l.guard.BeginWrite(c.Stat())
	pred := l.head
	for _, i := range ord {
		k, v := pairs[i].K, pairs[i].V
		for {
			if l.guard.WriteYield(c.Stat()) || pred.marked.Load() {
				pred = l.head // resume position invalidated
			}
			curr := pred.next.Load()
			for curr.key < k {
				pred = curr
				curr = curr.next.Load()
			}
			if !pred.lock.TryAcquire(c.Stat()) {
				runtime.Gosched()
				continue
			}
			if !curr.lock.TryAcquire(c.Stat()) {
				pred.lock.Release()
				runtime.Gosched()
				continue
			}
			if !validateLazy(pred, curr) {
				curr.lock.Release()
				pred.lock.Release()
				pred = l.head
				continue
			}
			if curr.key == k {
				res[i] = false
			} else {
				n := newLazyNode(c, k, v)
				n.next.Store(curr)
				c.InCS()
				pred.next.Store(n)
				res[i] = true
			}
			curr.lock.Release()
			pred.lock.Release()
			break
		}
	}
	l.guard.EndWrite()
	c.EpochExit()
	for i := range res {
		f(i, res[i])
	}
}

// MultiRemove implements core.Batcher with the same one-bracket,
// resumed-window, trylock-only discipline as MultiPut.
func (l *Lazy) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	if len(keys) == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	ord := sc.Ints(len(keys))
	core.OrderInto(ord, func(i int) core.Key { return keys[i] })
	res := sc.Bools(len(keys))
	c.EpochEnter()
	l.guard.BeginWrite(c.Stat())
	pred := l.head
	for _, i := range ord {
		k := keys[i]
		for {
			if l.guard.WriteYield(c.Stat()) || pred.marked.Load() {
				pred = l.head
			}
			curr := pred.next.Load()
			for curr.key < k {
				pred = curr
				curr = curr.next.Load()
			}
			if !pred.lock.TryAcquire(c.Stat()) {
				runtime.Gosched()
				continue
			}
			if !curr.lock.TryAcquire(c.Stat()) {
				pred.lock.Release()
				runtime.Gosched()
				continue
			}
			if !validateLazy(pred, curr) {
				curr.lock.Release()
				pred.lock.Release()
				pred = l.head
				continue
			}
			if curr.key != k {
				res[i] = false
				curr.lock.Release()
				pred.lock.Release()
			} else {
				c.InCS()
				curr.marked.Store(true)           // logical delete
				pred.next.Store(curr.next.Load()) // physical unlink
				res[i] = true
				curr.lock.Release()
				pred.lock.Release()
				c.Retire(curr, reclaimLazyNode)
			}
			break
		}
	}
	l.guard.EndWrite()
	c.EpochExit()
	for i := range res {
		f(i, res[i])
	}
}

// ---------------------------------------------------------------------------
// Harris list: resumed wait-free read pass; sorted CAS writes.
// ---------------------------------------------------------------------------

// MultiGet implements core.Batcher: one wait-free non-helping
// traversal (like Get) serves the whole sorted batch, resuming from
// the previous key's position — marked nodes' link chains stay valid
// forever, so a resume position is never unsafe, only stale, and
// staleness is absorbed by the per-key linearization points.
func (l *Harris) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	if len(keys) == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	ord := sc.Ints(len(keys))
	core.OrderInto(ord, func(i int) core.Key { return keys[i] })
	vals := sc.Vals(len(keys))
	oks := sc.Bools(len(keys))
	c.EpochEnter()
	curr := l.head.link.Load().next
	for _, i := range ord {
		k := keys[i]
		for curr.key < k {
			curr = curr.link.Load().next
		}
		link := curr.link.Load()
		if curr.key == k && !link.marked {
			vals[i], oks[i] = curr.val, true
		}
	}
	c.EpochExit()
	for i := range keys {
		f(i, vals[i], oks[i])
	}
}

// MultiPut implements core.Batcher by sorted point CASes: the
// lock-free write path pays no bracket or lock epoch to amortize (its
// per-key cost is the search), so the batch win here is the ascending
// application order's cache locality. A resumed write window is not
// maintained because helping snips can invalidate any remembered
// predecessor, forcing the head restart the point path already does.
func (l *Harris) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	core.SortedMultiPut(c, l, pairs, f)
}

// MultiRemove implements core.Batcher; see MultiPut for the rationale.
func (l *Harris) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	core.SortedMultiRemove(c, l, keys, f)
}

// ---------------------------------------------------------------------------
// COW list: one snapshot copy per write batch.
// ---------------------------------------------------------------------------

// MultiGet implements core.Batcher: one atomic snapshot load serves
// the whole batch (every element linearizes at that load). The epoch
// bracket pins the snapshot against recycling, as in Get.
func (l *COW) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	s := l.snap.Load()
	for i, k := range keys {
		if j, ok := s.find(k); ok {
			f(i, s.vals[j], true)
		} else {
			f(i, 0, false)
		}
	}
}

// MultiPut implements core.Batcher: ONE new snapshot merges the whole
// sorted batch — the biggest amortization in the module, collapsing k
// O(n) copies under the global lock into a single O(n+k) merge.
func (l *COW) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	if len(pairs) == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	ord := sc.Ints(len(pairs))
	core.OrderInto(ord, func(i int) core.Key { return pairs[i].K })
	res := sc.Bools(len(pairs))
	l.mu.Acquire(c.Stat())
	s := l.snap.Load()
	nk := make([]core.Key, 0, len(s.keys)+len(pairs))
	nv := make([]core.Value, 0, len(s.vals)+len(pairs))
	si := 0
	inserted := 0
	for _, i := range ord {
		k := pairs[i].K
		for si < len(s.keys) && s.keys[si] < k {
			nk = append(nk, s.keys[si])
			nv = append(nv, s.vals[si])
			si++
		}
		// Present in the old snapshot, or inserted by an earlier
		// (duplicate-key) element of this batch.
		if (si < len(s.keys) && s.keys[si] == k) || (len(nk) > 0 && nk[len(nk)-1] == k) {
			continue
		}
		nk = append(nk, k)
		nv = append(nv, pairs[i].V)
		res[i] = true
		inserted++
	}
	nk = append(nk, s.keys[si:]...)
	nv = append(nv, s.vals[si:]...)
	if inserted > 0 {
		c.InCS()
		l.snap.Store(&cowSnapshot{keys: nk, vals: nv})
	}
	l.mu.Release()
	if inserted > 0 {
		c.Retire(s, reclaimCowSnapshot)
	}
	for i := range res {
		f(i, res[i])
	}
}

// MultiRemove implements core.Batcher with the same single-merge copy
// as MultiPut.
func (l *COW) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	if len(keys) == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	ord := sc.Ints(len(keys))
	core.OrderInto(ord, func(i int) core.Key { return keys[i] })
	res := sc.Bools(len(keys))
	l.mu.Acquire(c.Stat())
	s := l.snap.Load()
	nk := make([]core.Key, 0, len(s.keys))
	nv := make([]core.Value, 0, len(s.vals))
	si := 0
	removed := 0
	for _, i := range ord {
		k := keys[i]
		for si < len(s.keys) && s.keys[si] < k {
			nk = append(nk, s.keys[si])
			nv = append(nv, s.vals[si])
			si++
		}
		if si < len(s.keys) && s.keys[si] == k {
			si++ // skip: removed
			res[i] = true
			removed++
		}
	}
	nk = append(nk, s.keys[si:]...)
	nv = append(nv, s.vals[si:]...)
	if removed > 0 {
		c.InCS()
		l.snap.Store(&cowSnapshot{keys: nk, vals: nv})
	}
	l.mu.Release()
	if removed > 0 {
		c.Retire(s, reclaimCowSnapshot)
	}
	for i := range res {
		f(i, res[i])
	}
}

// ---------------------------------------------------------------------------
// Lock-coupling list: one hand-over-hand pass per batch.
// ---------------------------------------------------------------------------

// MultiGet implements core.Batcher as a single hand-over-hand pass:
// the two-lock window sweeps the list once and reads each sorted key
// as it passes, so the batch pays one lock chain instead of k.
func (l *LockCoupling) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	if len(keys) == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	ord := sc.Ints(len(keys))
	core.OrderInto(ord, func(i int) core.Key { return keys[i] })
	vals := sc.Vals(len(keys))
	oks := sc.Bools(len(keys))
	pred := l.head
	pred.lock.Acquire(c.Stat())
	curr := pred.next
	curr.lock.Acquire(c.Stat())
	for _, i := range ord {
		k := keys[i]
		for curr.key < k {
			pred.lock.Release()
			pred = curr
			curr = curr.next
			curr.lock.Acquire(c.Stat())
		}
		if curr.key == k {
			vals[i], oks[i] = curr.val, true
		}
	}
	curr.lock.Release()
	pred.lock.Release()
	for i := range keys {
		f(i, vals[i], oks[i])
	}
}

// MultiPut implements core.Batcher as a single hand-over-hand pass
// that links new nodes as the window passes their sorted position.
// Nodes inserted since the last window advance hang between pred and
// curr, reachable only through the pred lock this pass still holds, so
// the attach pointer can chain further inserts without extra locks.
func (l *LockCoupling) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	if len(pairs) == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	ord := sc.Ints(len(pairs))
	core.OrderInto(ord, func(i int) core.Key { return pairs[i].K })
	res := sc.Bools(len(pairs))
	pred := l.head
	pred.lock.Acquire(c.Stat())
	curr := pred.next
	curr.lock.Acquire(c.Stat())
	attach := pred // last node of the pred→inserts chain; attach.next == curr
	var prevKey core.Key
	havePrev := false
	for _, i := range ord {
		k := pairs[i].K
		if havePrev && k == prevKey {
			continue // duplicate of a key this pass just handled
		}
		for curr.key < k {
			pred.lock.Release()
			pred = curr
			curr = curr.next
			curr.lock.Acquire(c.Stat())
			attach = pred
		}
		if curr.key != k {
			c.InCS()
			n := newLCNode(c, k, pairs[i].V, curr)
			attach.next = n
			attach = n
			res[i] = true
		}
		prevKey, havePrev = k, true
	}
	curr.lock.Release()
	pred.lock.Release()
	for i := range res {
		f(i, res[i])
	}
}

// MultiRemove implements core.Batcher as a single hand-over-hand pass
// that unlinks matching nodes as the window passes them (locking each
// successor before the unlink keeps the window adjacent).
func (l *LockCoupling) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	if len(keys) == 0 {
		return
	}
	sc := core.GetBatchScratch()
	defer sc.Release()
	ord := sc.Ints(len(keys))
	core.OrderInto(ord, func(i int) core.Key { return keys[i] })
	res := sc.Bools(len(keys))
	pred := l.head
	pred.lock.Acquire(c.Stat())
	curr := pred.next
	curr.lock.Acquire(c.Stat())
	var prevKey core.Key
	havePrev := false
	for _, i := range ord {
		k := keys[i]
		if havePrev && k == prevKey {
			continue // duplicate: the first occurrence already removed it
		}
		for curr.key < k {
			pred.lock.Release()
			pred = curr
			curr = curr.next
			curr.lock.Acquire(c.Stat())
		}
		if curr.key == k {
			next := curr.next
			next.lock.Acquire(c.Stat())
			c.InCS()
			pred.next = next
			curr.lock.Release()
			c.Retire(curr, reclaimLCNode)
			curr = next
			res[i] = true
		}
		prevKey, havePrev = k, true
	}
	curr.lock.Release()
	pred.lock.Release()
	for i := range res {
		f(i, res[i])
	}
}

// ---------------------------------------------------------------------------
// Pugh and wait-free lists: sorted point application.
// ---------------------------------------------------------------------------

// MultiGet implements core.Batcher by sorted point lookups (the
// per-node-lock design has no shared bracket to amortize; ascending
// order still buys prefix locality).
func (l *Pugh) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	core.SortedMultiGet(c, l, keys, f)
}

// MultiPut implements core.Batcher by sorted point inserts.
func (l *Pugh) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	core.SortedMultiPut(c, l, pairs, f)
}

// MultiRemove implements core.Batcher by sorted point removes.
func (l *Pugh) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	core.SortedMultiRemove(c, l, keys, f)
}

// MultiGet implements core.Batcher by sorted point lookups (the
// descriptor-based helping protocol admits no multi-key window; the
// sort still buys locality).
func (l *WaitFree) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	core.SortedMultiGet(c, l, keys, f)
}

// MultiPut implements core.Batcher by sorted point inserts.
func (l *WaitFree) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	core.SortedMultiPut(c, l, pairs, f)
}

// MultiRemove implements core.Batcher by sorted point removes.
func (l *WaitFree) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	core.SortedMultiRemove(c, l, keys, f)
}
