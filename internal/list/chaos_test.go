package list

import (
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
)

// The chaos battery (settest.RunChaos): a seeded fault schedule — stalls
// between and inside critical sections, forced guard-validation failures,
// delayed retire callbacks, and an EBR antagonist stalling/abandoning
// records — under the full invariant set: linearizability ledger, the
// poison equation, and a drain ending at reclaimed == retired.

func TestLazyChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewLazy(o) })
}

func TestLockCouplingChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewLockCoupling(o) })
}

func TestPughChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewPugh(o) })
}

func TestCOWChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewCOW(o) })
}

func TestHarrisChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewHarris(o) })
}

func TestWaitFreeChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewWaitFree(o) })
}
