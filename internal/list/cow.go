package list

import (
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/locks"
)

// cowSnapshot is an immutable sorted key/value sequence.
type cowSnapshot struct {
	keys []core.Key
	vals []core.Value
}

// COW is the copy-on-write list of the paper's Table 1 (the idiom of Java's
// CopyOnWriteArrayList): readers load an immutable snapshot with a single
// atomic read and scan it; each writer copies the whole snapshot under a
// global lock. Reads are trivially wait-free; updates are O(n) and fully
// serialized — fine for tiny, read-mostly sets, pathological otherwise,
// which is why it exists in the comparison.
type COW struct {
	snap atomic.Pointer[cowSnapshot]
	mu   locks.Ticket
}

// NewCOW builds an empty copy-on-write list.
func NewCOW(o core.Options) *COW {
	l := &COW{}
	l.snap.Store(&cowSnapshot{})
	return l
}

func init() {
	core.Register(core.Info{
		Name: "list/cow", Kind: "list", Progress: "blocking",
		New:  func(o core.Options) core.Set { return NewCOW(o) },
		Desc: "copy-on-write list (CopyOnWriteArrayList idiom)",
	})
}

// find returns the insertion index of k in s and whether it is present.
func (s *cowSnapshot) find(k core.Key) (int, bool) {
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.keys) && s.keys[lo] == k
}

// Get implements core.Set; a single atomic load plus a scan of immutable
// memory. The epoch bracket pins the loaded snapshot now that writers
// retire superseded snapshots into the pool.
func (l *COW) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	c.EpochEnter()
	defer c.EpochExit()
	s := l.snap.Load()
	if i, ok := s.find(k); ok {
		return s.vals[i], true
	}
	return 0, false
}

// Put implements core.Set.
func (l *COW) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	l.mu.Acquire(c.Stat())
	s := l.snap.Load()
	i, ok := s.find(k)
	if ok {
		l.mu.Release()
		c.RecordRestarts(0)
		return false
	}
	ns := newCowSnapshot(c, len(s.keys)+1)
	copy(ns.keys, s.keys[:i])
	copy(ns.vals, s.vals[:i])
	ns.keys[i] = k
	ns.vals[i] = v
	copy(ns.keys[i+1:], s.keys[i:])
	copy(ns.vals[i+1:], s.vals[i:])
	c.InCS()
	l.snap.Store(ns)
	l.mu.Release()
	c.Retire(s, reclaimCowSnapshot)
	c.RecordRestarts(0)
	return true
}

// Remove implements core.Set.
func (l *COW) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	l.mu.Acquire(c.Stat())
	s := l.snap.Load()
	i, ok := s.find(k)
	if !ok {
		l.mu.Release()
		c.RecordRestarts(0)
		return false
	}
	ns := newCowSnapshot(c, len(s.keys)-1)
	copy(ns.keys, s.keys[:i])
	copy(ns.vals, s.vals[:i])
	copy(ns.keys[i:], s.keys[i+1:])
	copy(ns.vals[i:], s.vals[i+1:])
	c.InCS()
	l.snap.Store(ns)
	l.mu.Release()
	c.Retire(s, reclaimCowSnapshot)
	c.RecordRestarts(0)
	return true
}

// Len implements core.Set; exact even during concurrency (snapshot count).
func (l *COW) Len() int { return len(l.snap.Load().keys) }

// Range implements core.Ranger: an in-order walk over one immutable
// snapshot (exact even during concurrency, like Len).
func (l *COW) Range(f func(k core.Key, v core.Value) bool) {
	s := l.snap.Load()
	for i, k := range s.keys {
		if !f(k, s.vals[i]) {
			return
		}
	}
}

// Scan implements core.Scanner for free: one atomic snapshot load, a
// binary search to lo, and an in-order walk of immutable memory. The scan
// linearizes at the load.
func (l *COW) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	s := l.snap.Load()
	i, _ := s.find(lo)
	for ; i < len(s.keys) && s.keys[i] < hi; i++ {
		if !f(s.keys[i], s.vals[i]) {
			return false
		}
	}
	return true
}

// CursorNext implements core.Cursor as a snapshot cursor: every page
// loads the then-current immutable snapshot, binary-searches to the
// token position, and delivers up to max keys — no validation needed and
// no snapshot pinned between pages (each page linearizes at its own
// load, so pagination tracks updates instead of freezing a version).
func (l *COW) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	if max < 1 {
		max = 1
	}
	c.EpochEnter()
	defer c.EpochExit()
	s := l.snap.Load()
	i, _ := s.find(pos)
	delivered := 0
	for ; i < len(s.keys) && s.keys[i] < hi; i++ {
		if delivered == max {
			c.RecordPagePull(delivered)
			return s.keys[i-1] + 1, false
		}
		if !f(s.keys[i], s.vals[i]) {
			c.RecordPagePull(delivered + 1)
			return s.keys[i] + 1, false
		}
		delivered++
	}
	c.RecordPagePull(delivered)
	return hi, true
}
