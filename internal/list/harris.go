package list

import (
	"sync/atomic"

	"csds/internal/core"
)

// hLink is an immutable (successor, mark) pair. Go cannot steal pointer
// tag bits the way the C implementation does, so the pair is boxed and the
// node's next field CASes whole boxes — the AtomicMarkableReference idiom.
// This matches the paper's observation (§2.2) that lock-free lists keep
// their concurrency bit *inside* the one pointer CAS.
type hLink struct {
	next   *hNode
	marked bool
}

// hNode is a Harris-list node.
type hNode struct {
	key  core.Key
	val  core.Value
	link atomic.Pointer[hLink]
}

// Harris is Harris's pragmatic non-blocking linked list (DISC 2001), the
// lock-free comparator of Figure 1: deletion marks the node's next
// reference, traversals physically unlink marked nodes they pass.
type Harris struct {
	head  *hNode
	guard core.ScanGuard // validates optimistic range scans
}

// NewHarris builds an empty Harris list.
func NewHarris(o core.Options) *Harris {
	tail := &hNode{key: core.KeyMax}
	tail.link.Store(&hLink{})
	head := &hNode{key: core.KeyMin}
	head.link.Store(&hLink{next: tail})
	return &Harris{head: head}
}

func init() {
	core.Register(core.Info{
		Name: "list/harris", Kind: "list", Progress: "lock-free",
		New:  func(o core.Options) core.Set { return NewHarris(o) },
		Desc: "Harris lock-free linked list (DISC 2001)",
	})
}

// search finds the window (pred, predLink, curr) with pred.key < k <=
// curr.key, snipping out any marked nodes it encounters (helping).
// Restarts (recorded by callers through the returned count) happen when a
// snip CAS loses a race.
func (l *Harris) search(c *core.Ctx, k core.Key) (pred *hNode, predLink *hLink, curr *hNode, restarts int) {
retry:
	for {
		pred = l.head
		predLink = pred.link.Load()
		curr = predLink.next
		for {
			currLink := curr.link.Load()
			for currLink.marked {
				// curr is logically deleted: unlink it.
				snip := &hLink{next: currLink.next}
				if !pred.link.CompareAndSwap(predLink, snip) {
					restarts++
					continue retry
				}
				c.Retire(curr, reclaimHNode)
				predLink = snip
				curr = currLink.next
				currLink = curr.link.Load()
			}
			if curr.key >= k {
				return pred, predLink, curr, restarts
			}
			pred = curr
			predLink = currLink
			curr = currLink.next
		}
	}
}

// Get implements core.Set: wait-free traversal that does not help (pure
// reading, like the lazy list's contains).
func (l *Harris) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	c.EpochEnter()
	curr := l.head.link.Load().next
	for curr.key < k {
		curr = curr.link.Load().next
	}
	link := curr.link.Load()
	v, ok := curr.val, curr.key == k && !link.marked
	c.EpochExit()
	return v, ok
}

// Put implements core.Set.
func (l *Harris) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	restarts := 0
	for {
		pred, predLink, curr, r := l.search(c, k)
		restarts += r
		if curr.key == k {
			c.RecordRestarts(restarts)
			return false
		}
		n := newHNode(c, k, v)
		n.link.Store(&hLink{next: curr})
		l.guard.BeginWrite(c.Stat())
		linked := pred.link.CompareAndSwap(predLink, &hLink{next: n})
		l.guard.EndWrite()
		if linked {
			c.RecordRestarts(restarts)
			return true
		}
		restarts++
	}
}

// Remove implements core.Set.
func (l *Harris) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	restarts := 0
	for {
		pred, predLink, curr, r := l.search(c, k)
		restarts += r
		if curr.key != k {
			c.RecordRestarts(restarts)
			return false
		}
		currLink := curr.link.Load()
		if currLink.marked {
			// Someone else is deleting it; retry to converge.
			restarts++
			continue
		}
		// Logical delete: mark curr's link.
		l.guard.BeginWrite(c.Stat())
		marked := curr.link.CompareAndSwap(currLink, &hLink{next: currLink.next, marked: true})
		l.guard.EndWrite()
		if !marked {
			restarts++
			continue
		}
		// Best-effort physical unlink; traversals clean up on failure.
		if pred.link.CompareAndSwap(predLink, &hLink{next: currLink.next}) {
			c.Retire(curr, reclaimHNode)
		}
		c.RecordRestarts(restarts)
		return true
	}
}

// Len implements core.Set (quiesced use).
func (l *Harris) Len() int {
	n := 0
	for curr := l.head.link.Load().next; curr.key != core.KeyMax; {
		link := curr.link.Load()
		if !link.marked {
			n++
		}
		curr = link.next
	}
	return n
}

// Range implements core.Ranger: an in-order walk over unmarked nodes,
// quiesced-use like Len.
func (l *Harris) Range(f func(k core.Key, v core.Value) bool) {
	for curr := l.head.link.Load().next; curr.key != core.KeyMax; {
		link := curr.link.Load()
		if !link.marked && !f(curr.key, curr.val) {
			return
		}
		curr = link.next
	}
}

// Scan implements core.Scanner: a wait-free non-helping traversal (like
// Get) under the optimistic scan guard — only membership CASes (insert
// link, delete mark) open guard windows; helping snips are physical-only
// and invisible to the snapshot. Atomic per call.
func (l *Harris) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedScan(c, &l.guard, func(emit func(k core.Key, v core.Value)) {
		curr := l.head.link.Load().next
		for curr.key < lo {
			curr = curr.link.Load().next
		}
		for curr.key < hi {
			link := curr.link.Load()
			if !link.marked {
				emit(curr.key, curr.val)
			}
			curr = link.next
		}
	}, f)
}

// CursorNext implements core.Cursor: the bounded-page variant of Scan —
// a wait-free non-helping traversal resuming at the token position,
// validated by the guard. Each page is one atomic sub-snapshot.
func (l *Harris) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedPage(c, &l.guard, hi, max, func(emit func(k core.Key, v core.Value) bool) {
		curr := l.head.link.Load().next
		for curr.key < pos {
			curr = curr.link.Load().next
		}
		for curr.key < hi {
			link := curr.link.Load()
			if !link.marked && !emit(curr.key, curr.val) {
				return
			}
			curr = link.next
		}
	}, f)
}
