// Package list implements the linked-list set algorithms of the paper's
// Table 1: the featured lazy list (Heller et al., the best-performing
// blocking list), the lock-coupling list (the naive contrast of §5.1),
// a Pugh-style per-node-lock list, a copy-on-write list, Harris's
// lock-free list, and a wait-free descriptor-based list (Timnat et al.
// style) for the Figure 1 comparison.
package list

import (
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/htm"
	"csds/internal/locks"
)

// lazyNode is a lazy-list node. The next pointer is atomic so the parse
// phase is synchronization-free; marked is the logical-deletion flag that
// makes wait-free Get possible.
type lazyNode struct {
	key    core.Key
	val    core.Value
	marked atomic.Bool
	next   atomic.Pointer[lazyNode]
	lock   locks.TAS
}

// Lazy is the lazy concurrent list-based set (Heller, Herlihy, Luchangco,
// Moir, Scherer, Shavit, OPODIS 2006): wait-free contains, optimistic
// updates that lock only the two nodes around the modification point and
// validate before writing. This is the paper's featured linked list.
type Lazy struct {
	head   *lazyNode
	region htm.Region
	guard  core.ScanGuard // validates optimistic range scans
}

// NewLazy builds an empty lazy list.
func NewLazy(o core.Options) *Lazy {
	tail := &lazyNode{key: core.KeyMax}
	head := &lazyNode{key: core.KeyMin}
	head.next.Store(tail)
	return &Lazy{head: head, region: o.Region()}
}

func init() {
	core.Register(core.Info{
		Name: "list/lazy", Kind: "list", Progress: "blocking", Featured: true,
		New:  func(o core.Options) core.Set { return NewLazy(o) },
		Desc: "lazy concurrent list-based set (Heller et al. 2006)",
	})
}

// search is the parse phase: pure pointer chasing, no stores, no restarts
// (§3.1). Returns pred, curr with pred.key < k <= curr.key.
func (l *Lazy) search(k core.Key) (pred, curr *lazyNode) {
	pred = l.head
	curr = pred.next.Load()
	for curr.key < k {
		pred = curr
		curr = curr.next.Load()
	}
	return pred, curr
}

// validate re-checks the window under locks: neither node logically
// deleted, and still adjacent.
func validateLazy(pred, curr *lazyNode) bool {
	return !pred.marked.Load() && !curr.marked.Load() && pred.next.Load() == curr
}

// Get implements core.Set. It performs no stores and never restarts: the
// read path of a state-of-the-art blocking CSDS (§3.1).
func (l *Lazy) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	c.EpochEnter()
	_, curr := l.search(k)
	v, ok := curr.val, curr.key == k && !curr.marked.Load()
	c.EpochExit()
	return v, ok
}

// Put implements core.Set.
func (l *Lazy) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	if l.region.Attempts > 0 {
		return l.putElided(c, k, v)
	}
	restarts := 0
	for {
		pred, curr := l.search(k)
		pred.lock.Acquire(c.Stat())
		curr.lock.Acquire(c.Stat())
		if validateLazy(pred, curr) {
			if curr.key == k {
				curr.lock.Release()
				pred.lock.Release()
				c.RecordRestarts(restarts)
				return false
			}
			n := newLazyNode(c, k, v)
			n.next.Store(curr)
			c.InCS()
			l.guard.BeginWrite(c.Stat())
			pred.next.Store(n)
			l.guard.EndWrite()
			curr.lock.Release()
			pred.lock.Release()
			c.RecordRestarts(restarts)
			return true
		}
		curr.lock.Release()
		pred.lock.Release()
		restarts++
	}
}

func (l *Lazy) putElided(c *core.Ctx, k core.Key, v core.Value) bool {
	restarts := 0
	n := newLazyNode(c, k, v)
	for {
		pred, curr := l.search(k)
		var inserted bool
		st := l.region.Run(c.Stat(), doom(c), func(a *htm.Acq) htm.Status {
			if !a.Lock(&pred.lock) || !a.Lock(&curr.lock) {
				return a.AbortStatus()
			}
			if !validateLazy(pred, curr) {
				return htm.ValidateFail
			}
			if curr.key == k {
				inserted = false
				return htm.Committed
			}
			if !a.Commit() {
				return a.AbortStatus()
			}
			n.next.Store(curr)
			l.guard.BeginWrite(c.Stat())
			pred.next.Store(n)
			l.guard.EndWrite()
			inserted = true
			return htm.Committed
		})
		if st == htm.Committed {
			c.RecordRestarts(restarts)
			return inserted
		}
		restarts++ // ValidateFail: redo the parse phase
	}
}

// Remove implements core.Set: logical deletion (mark) then physical unlink,
// both under the two-node locks.
func (l *Lazy) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	if l.region.Attempts > 0 {
		return l.removeElided(c, k)
	}
	restarts := 0
	for {
		pred, curr := l.search(k)
		pred.lock.Acquire(c.Stat())
		curr.lock.Acquire(c.Stat())
		if validateLazy(pred, curr) {
			if curr.key != k {
				curr.lock.Release()
				pred.lock.Release()
				c.RecordRestarts(restarts)
				return false
			}
			c.InCS()
			l.guard.BeginWrite(c.Stat())
			curr.marked.Store(true)           // logical delete
			pred.next.Store(curr.next.Load()) // physical unlink
			l.guard.EndWrite()
			curr.lock.Release()
			pred.lock.Release()
			c.Retire(curr, reclaimLazyNode)
			c.RecordRestarts(restarts)
			return true
		}
		curr.lock.Release()
		pred.lock.Release()
		restarts++
	}
}

func (l *Lazy) removeElided(c *core.Ctx, k core.Key) bool {
	restarts := 0
	for {
		pred, curr := l.search(k)
		var removed bool
		st := l.region.Run(c.Stat(), doom(c), func(a *htm.Acq) htm.Status {
			if !a.Lock(&pred.lock) || !a.Lock(&curr.lock) {
				return a.AbortStatus()
			}
			if !validateLazy(pred, curr) {
				return htm.ValidateFail
			}
			if curr.key != k {
				removed = false
				return htm.Committed
			}
			if !a.Commit() {
				return a.AbortStatus()
			}
			l.guard.BeginWrite(c.Stat())
			curr.marked.Store(true)
			pred.next.Store(curr.next.Load())
			l.guard.EndWrite()
			removed = true
			return htm.Committed
		})
		if st == htm.Committed {
			if removed {
				c.Retire(curr, reclaimLazyNode)
			}
			c.RecordRestarts(restarts)
			return removed
		}
		restarts++
	}
}

// Len implements core.Set (quiesced use).
func (l *Lazy) Len() int {
	n := 0
	for curr := l.head.next.Load(); curr.key != core.KeyMax; curr = curr.next.Load() {
		if !curr.marked.Load() {
			n++
		}
	}
	return n
}

// Range implements core.Ranger: an in-order level walk over unmarked
// nodes, quiesced-use like Len.
func (l *Lazy) Range(f func(k core.Key, v core.Value) bool) {
	for curr := l.head.next.Load(); curr.key != core.KeyMax; curr = curr.next.Load() {
		if !curr.marked.Load() && !f(curr.key, curr.val) {
			return
		}
	}
}

// Scan implements core.Scanner: an optimistic guard-validated walk of the
// range — the same synchronization-free traversal as Get, accepted only
// when no update ran concurrently, with bounded retries and a brief
// writer barrier as the fallback (see core.GuardedScan). The returned
// snapshot is atomic: the scan linearizes at one point during the call.
func (l *Lazy) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedScan(c, &l.guard, func(emit func(k core.Key, v core.Value)) {
		_, curr := l.search(lo)
		for ; curr.key < hi; curr = curr.next.Load() {
			if !curr.marked.Load() {
				emit(curr.key, curr.val)
			}
		}
	}, f)
}

// CursorNext implements core.Cursor: the same optimistic guard-validated
// walk as Scan, resuming at the token position and bounded to one page —
// the search phase re-parses to pos, so pagination never re-walks keys
// already delivered (beyond the list's own prefix traversal, which every
// point op pays too). Each page is one atomic sub-snapshot.
func (l *Lazy) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedPage(c, &l.guard, hi, max, func(emit func(k core.Key, v core.Value) bool) {
		_, curr := l.search(pos)
		for ; curr.key < hi; curr = curr.next.Load() {
			if !curr.marked.Load() && !emit(curr.key, curr.val) {
				return
			}
		}
	}, f)
}

// doom extracts the worker's HTM abort flag, tolerating nil contexts.
func doom(c *core.Ctx) *htm.Doom {
	if c == nil {
		return nil
	}
	return c.Doom
}
