package list

import (
	"sync"
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
	"csds/internal/stats"
	"csds/internal/xrand"
)

func TestLazy(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewLazy(o) })
}

func TestLazyElided(t *testing.T) {
	settest.RunElided(t, func(o core.Options) core.Set { return NewLazy(o) })
}

func TestLazyEBR(t *testing.T) {
	settest.RunEBR(t, func(o core.Options) core.Set { return NewLazy(o) })
}

func TestLockCoupling(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewLockCoupling(o) })
}

func TestPugh(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewPugh(o) })
}

func TestCOW(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewCOW(o) })
}

func TestHarris(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewHarris(o) })
}

func TestHarrisEBR(t *testing.T) {
	settest.RunEBR(t, func(o core.Options) core.Set { return NewHarris(o) })
}

func TestWaitFree(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewWaitFree(o) })
}

// TestScanners runs the linearizable range-scan battery on every list:
// all six are ordered structures, so scans promise ascending key order.
func TestScanners(t *testing.T) {
	for name, mk := range map[string]func(core.Options) core.Set{
		"lazy":         func(o core.Options) core.Set { return NewLazy(o) },
		"lockcoupling": func(o core.Options) core.Set { return NewLockCoupling(o) },
		"pugh":         func(o core.Options) core.Set { return NewPugh(o) },
		"cow":          func(o core.Options) core.Set { return NewCOW(o) },
		"harris":       func(o core.Options) core.Set { return NewHarris(o) },
		"waitfree":     func(o core.Options) core.Set { return NewWaitFree(o) },
	} {
		t.Run(name, func(t *testing.T) { settest.RunScanner(t, mk, true) })
	}
}

// TestLazyScannerElided re-runs the scan battery with HTM elision on the
// update paths: the guard windows inside elided critical sections must
// validate scans exactly like the plain-lock paths.
func TestLazyScannerElided(t *testing.T) {
	settest.RunScanner(t, func(o core.Options) core.Set {
		o.ElideAttempts = 5
		return NewLazy(o)
	}, true)
}

// TestCursors runs the paginated-iteration battery on every list:
// resumable pages, ascending, duplicate-free, anchor-complete.
func TestCursors(t *testing.T) {
	for name, mk := range map[string]func(core.Options) core.Set{
		"lazy":         func(o core.Options) core.Set { return NewLazy(o) },
		"lockcoupling": func(o core.Options) core.Set { return NewLockCoupling(o) },
		"pugh":         func(o core.Options) core.Set { return NewPugh(o) },
		"cow":          func(o core.Options) core.Set { return NewCOW(o) },
		"harris":       func(o core.Options) core.Set { return NewHarris(o) },
		"waitfree":     func(o core.Options) core.Set { return NewWaitFree(o) },
	} {
		t.Run(name, func(t *testing.T) { settest.RunCursor(t, mk) })
	}
}

// TestBatchers runs the batched-operation battery on every list: model
// conformance over random batch shapes (duplicates, misses, empties),
// caller-order delivery, and the concurrent batch algebra — covering
// both the bespoke single-traversal paths (lazy, lockcoupling, cow,
// harris reads) and the generic sorted delegation (pugh, waitfree).
func TestBatchers(t *testing.T) {
	for name, mk := range map[string]func(core.Options) core.Set{
		"lazy":         func(o core.Options) core.Set { return NewLazy(o) },
		"lockcoupling": func(o core.Options) core.Set { return NewLockCoupling(o) },
		"pugh":         func(o core.Options) core.Set { return NewPugh(o) },
		"cow":          func(o core.Options) core.Set { return NewCOW(o) },
		"harris":       func(o core.Options) core.Set { return NewHarris(o) },
		"waitfree":     func(o core.Options) core.Set { return NewWaitFree(o) },
	} {
		t.Run(name, func(t *testing.T) { settest.RunBatcher(t, mk) })
	}
}

// TestLazyCursorElided re-runs the cursor battery with HTM elision on
// the update paths, mirroring TestLazyScannerElided.
func TestLazyCursorElided(t *testing.T) {
	settest.RunCursor(t, func(o core.Options) core.Set {
		o.ElideAttempts = 5
		return NewLazy(o)
	})
}

func TestRegistryEntries(t *testing.T) {
	for _, name := range []string{"list/lazy", "list/lockcoupling", "list/pugh", "list/cow", "list/harris", "list/waitfree"} {
		info, ok := core.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		s := info.New(core.Options{})
		if s.Len() != 0 {
			t.Fatalf("%s: fresh instance non-empty", name)
		}
	}
	feat, ok := core.Featured("list")
	if !ok || feat.Name != "list/lazy" {
		t.Fatalf("featured list = %+v, want list/lazy", feat)
	}
}

// TestLazySortedInvariant checks the physical list stays sorted and
// duplicate-free under churn.
func TestLazySortedInvariant(t *testing.T) {
	l := NewLazy(core.Options{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < 5000; i++ {
				k := core.Key(rng.Int63n(64))
				if rng.Bool(0.5) {
					l.Put(c, k, k)
				} else {
					l.Remove(c, k)
				}
			}
		}(w)
	}
	wg.Wait()
	prev := core.KeyMin
	for n := l.head.next.Load(); n != nil && n.key != core.KeyMax; n = n.next.Load() {
		if n.key <= prev {
			t.Fatalf("list unsorted or duplicated: %d after %d", n.key, prev)
		}
		prev = n.key
	}
}

// TestHarrisSortedInvariant does the same for the lock-free list.
func TestHarrisSortedInvariant(t *testing.T) {
	l := NewHarris(core.Options{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w) + 7)
			for i := 0; i < 5000; i++ {
				k := core.Key(rng.Int63n(64))
				if rng.Bool(0.5) {
					l.Put(c, k, k)
				} else {
					l.Remove(c, k)
				}
			}
		}(w)
	}
	wg.Wait()
	prev := core.KeyMin
	for n := l.head.link.Load().next; n.key != core.KeyMax; n = n.link.Load().next {
		if n.link.Load().marked {
			continue
		}
		if n.key <= prev {
			t.Fatalf("harris list unsorted/duplicated: %d after %d", n.key, prev)
		}
		prev = n.key
	}
}

// TestWaitFreeSortedInvariant: same structural check for the wait-free
// list, plus no reachable node may carry a poison mark (poisoned nodes are
// never linked).
func TestWaitFreeSortedInvariant(t *testing.T) {
	l := NewWaitFree(core.Options{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w) + 13)
			for i := 0; i < 4000; i++ {
				k := core.Key(rng.Int63n(64))
				if rng.Bool(0.5) {
					l.Put(c, k, k)
				} else {
					l.Remove(c, k)
				}
			}
		}(w)
	}
	wg.Wait()
	prev := core.KeyMin
	for n := l.head.link.Load().next; n.key != core.KeyMax; n = n.link.Load().next {
		link := n.link.Load()
		if link.src == poisonDesc {
			t.Fatal("poisoned node reachable in the list")
		}
		if link.marked {
			continue
		}
		if n.key <= prev {
			t.Fatalf("waitfree list unsorted/duplicated: %d after %d", n.key, prev)
		}
		prev = n.key
	}
}

// TestLazyRestartCounting: force a validation failure and check it lands in
// the stats.
func TestLazyRestartCounting(t *testing.T) {
	// Single-threaded operations never restart.
	l := NewLazy(core.Options{})
	c := core.NewCtx(0)
	for i := 0; i < 1000; i++ {
		l.Put(c, core.Key(i), 0)
	}
	if c.Stats.RestartedOps[0] == 0 {
		t.Fatal("no operations recorded in restart bucket 0")
	}
	for i := 1; i < stats.RestartBuckets; i++ {
		if c.Stats.RestartedOps[i] != 0 {
			t.Fatalf("sequential run recorded %d ops with %d restarts", c.Stats.RestartedOps[i], i)
		}
	}
}

// TestLockCouplingWaits: under contention the lock-coupling list must
// accumulate lock waits (that is its defining pathology).
func TestLockCouplingWaits(t *testing.T) {
	l := NewLockCoupling(core.Options{})
	seed := core.NewCtx(0)
	for i := 0; i < 512; i++ {
		l.Put(seed, core.Key(i*2), 0)
	}
	var wg sync.WaitGroup
	ths := make([]stats.Thread, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			c.Stats = &ths[w]
			rng := xrand.New(uint64(w) + 5)
			// Enough work that each worker outlives several scheduler
			// timeslices (~10ms each): a preempted worker holding a
			// coupling lock forces waits in the others even on a
			// single-CPU host, where 3000 iterations fit inside one
			// slice and would record nothing.
			for i := 0; i < 30000; i++ {
				l.Get(c, core.Key(rng.Int63n(1024)))
			}
		}(w)
	}
	wg.Wait()
	var waits uint64
	for i := range ths {
		waits += ths[i].LockWaits
	}
	if waits == 0 {
		t.Fatal("lock-coupling under contention recorded zero lock waits")
	}
}

// TestWaitFreeCtxIDGuard: out-of-range worker IDs must be rejected loudly.
func TestWaitFreeCtxIDGuard(t *testing.T) {
	l := NewWaitFree(core.Options{})
	c := core.NewCtx(0)
	c.ID = wfMaxThreads
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Ctx.ID did not panic")
		}
	}()
	l.Put(c, 1, 1)
}

func TestLazyValueFidelity(t *testing.T) {
	l := NewLazy(core.Options{})
	c := core.NewCtx(0)
	l.Put(c, 5, 500)
	l.Put(c, 3, 300)
	l.Put(c, 9, 900)
	for _, kv := range [][2]core.Key{{3, 300}, {5, 500}, {9, 900}} {
		if v, ok := l.Get(c, kv[0]); !ok || v != kv[1] {
			t.Fatalf("Get(%d) = (%d, %v)", kv[0], v, ok)
		}
	}
}
