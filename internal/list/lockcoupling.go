package list

import (
	"csds/internal/core"
	"csds/internal/locks"
)

// lcNode: next is a plain pointer — every access happens with the node's
// lock held, which is the whole point (and the whole problem) of
// lock coupling.
type lcNode struct {
	key  core.Key
	val  core.Value
	next *lcNode
	lock locks.Ticket
}

// LockCoupling is the hand-over-hand locking list (Herlihy & Shavit,
// "The Art of Multiprocessor Programming"). The paper uses it as the
// contrast case in §5.1: it acquires locks along the entire traversal, so
// with 20 threads and just 1% updates threads already spend ~10% of their
// time waiting — NOT practically wait-free. It is registered so the
// benchmarks can demonstrate exactly that.
type LockCoupling struct {
	head *lcNode
}

// NewLockCoupling builds an empty lock-coupling list.
func NewLockCoupling(o core.Options) *LockCoupling {
	tail := &lcNode{key: core.KeyMax}
	head := &lcNode{key: core.KeyMin, next: tail}
	return &LockCoupling{head: head}
}

func init() {
	core.Register(core.Info{
		Name: "list/lockcoupling", Kind: "list", Progress: "blocking",
		New:  func(o core.Options) core.Set { return NewLockCoupling(o) },
		Desc: "hand-over-hand lock-coupling list (Herlihy–Shavit); the non-practically-wait-free baseline",
	})
}

// locate traverses hand-over-hand and returns pred, curr both locked, with
// pred.key < k <= curr.key.
func (l *LockCoupling) locate(c *core.Ctx, k core.Key) (pred, curr *lcNode) {
	pred = l.head
	pred.lock.Acquire(c.Stat())
	curr = pred.next
	curr.lock.Acquire(c.Stat())
	for curr.key < k {
		pred.lock.Release()
		pred = curr
		curr = curr.next
		curr.lock.Acquire(c.Stat())
	}
	return pred, curr
}

// Get implements core.Set. Even reads acquire every lock on their path.
func (l *LockCoupling) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	pred, curr := l.locate(c, k)
	v, ok := curr.val, curr.key == k
	curr.lock.Release()
	pred.lock.Release()
	return v, ok
}

// Put implements core.Set.
func (l *LockCoupling) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	pred, curr := l.locate(c, k)
	if curr.key == k {
		curr.lock.Release()
		pred.lock.Release()
		c.RecordRestarts(0)
		return false
	}
	c.InCS()
	pred.next = newLCNode(c, k, v, curr)
	curr.lock.Release()
	pred.lock.Release()
	c.RecordRestarts(0)
	return true
}

// Remove implements core.Set.
func (l *LockCoupling) Remove(c *core.Ctx, k core.Key) bool {
	pred, curr := l.locate(c, k)
	if curr.key != k {
		curr.lock.Release()
		pred.lock.Release()
		c.RecordRestarts(0)
		return false
	}
	c.InCS()
	pred.next = curr.next
	curr.lock.Release()
	pred.lock.Release()
	c.Retire(curr, reclaimLCNode)
	c.RecordRestarts(0)
	return true
}

// Len implements core.Set (quiesced use; takes no locks).
func (l *LockCoupling) Len() int {
	n := 0
	for curr := l.head.next; curr.key != core.KeyMax; curr = curr.next {
		n++
	}
	return n
}

// Range implements core.Ranger (quiesced use; takes no locks, like Len).
func (l *LockCoupling) Range(f func(k core.Key, v core.Value) bool) {
	for curr := l.head.next; curr.key != core.KeyMax; curr = curr.next {
		if !f(curr.key, curr.val) {
			return
		}
	}
}

// Scan implements core.Scanner by lock-coupled traversal — the locks
// already pace every operation here, so the scan reuses them: no update
// can overtake the scanner's two-lock window in either direction, which
// makes the collected range one atomic snapshot (each key is read at the
// instant the window passes it, and nothing crosses the frontier). The
// snapshot is collected first and replayed to f after all locks are
// released. The cost is the structure's own: the scan holds locks along
// its whole path, which is exactly the non-practically-wait-free behavior
// this baseline exists to demonstrate.
func (l *LockCoupling) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	var buf []core.ScanPair
	pred := l.head
	pred.lock.Acquire(c.Stat())
	curr := pred.next
	curr.lock.Acquire(c.Stat())
	for curr.key < hi {
		if curr.key >= lo {
			buf = append(buf, core.ScanPair{K: curr.key, V: curr.val})
		}
		pred.lock.Release()
		pred = curr
		curr = curr.next
		curr.lock.Acquire(c.Stat())
	}
	curr.lock.Release()
	pred.lock.Release()
	return core.ReplayScan(buf, f)
}

// CursorNext implements core.Cursor by the same lock-coupled walk as
// Scan, released as soon as the page fills: the two-lock window makes
// the bounded collect one atomic sub-snapshot, and stopping at max keys
// bounds how long this baseline's scans hold up writers — pagination is
// exactly the remedy for its hold-locks-along-the-path cost.
func (l *LockCoupling) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	if max < 1 {
		max = 1
	}
	var buf []core.ScanPair
	full := false
	pred := l.head
	pred.lock.Acquire(c.Stat())
	curr := pred.next
	curr.lock.Acquire(c.Stat())
	for curr.key < hi {
		if curr.key >= pos {
			if len(buf) == max {
				full = true
				break
			}
			buf = append(buf, core.ScanPair{K: curr.key, V: curr.val})
		}
		pred.lock.Release()
		pred = curr
		curr = curr.next
		curr.lock.Acquire(c.Stat())
	}
	curr.lock.Release()
	pred.lock.Release()
	c.RecordPagePull(len(buf))
	return core.ReplayPage(buf, !full, hi, f)
}
