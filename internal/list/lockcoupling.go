package list

import (
	"csds/internal/core"
	"csds/internal/locks"
)

// lcNode: next is a plain pointer — every access happens with the node's
// lock held, which is the whole point (and the whole problem) of
// lock coupling.
type lcNode struct {
	key  core.Key
	val  core.Value
	next *lcNode
	lock locks.Ticket
}

// LockCoupling is the hand-over-hand locking list (Herlihy & Shavit,
// "The Art of Multiprocessor Programming"). The paper uses it as the
// contrast case in §5.1: it acquires locks along the entire traversal, so
// with 20 threads and just 1% updates threads already spend ~10% of their
// time waiting — NOT practically wait-free. It is registered so the
// benchmarks can demonstrate exactly that.
type LockCoupling struct {
	head *lcNode
}

// NewLockCoupling builds an empty lock-coupling list.
func NewLockCoupling(o core.Options) *LockCoupling {
	tail := &lcNode{key: core.KeyMax}
	head := &lcNode{key: core.KeyMin, next: tail}
	return &LockCoupling{head: head}
}

func init() {
	core.Register(core.Info{
		Name: "list/lockcoupling", Kind: "list", Progress: "blocking",
		New:  func(o core.Options) core.Set { return NewLockCoupling(o) },
		Desc: "hand-over-hand lock-coupling list (Herlihy–Shavit); the non-practically-wait-free baseline",
	})
}

// locate traverses hand-over-hand and returns pred, curr both locked, with
// pred.key < k <= curr.key.
func (l *LockCoupling) locate(c *core.Ctx, k core.Key) (pred, curr *lcNode) {
	pred = l.head
	pred.lock.Acquire(c.Stat())
	curr = pred.next
	curr.lock.Acquire(c.Stat())
	for curr.key < k {
		pred.lock.Release()
		pred = curr
		curr = curr.next
		curr.lock.Acquire(c.Stat())
	}
	return pred, curr
}

// Get implements core.Set. Even reads acquire every lock on their path.
func (l *LockCoupling) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	pred, curr := l.locate(c, k)
	v, ok := curr.val, curr.key == k
	curr.lock.Release()
	pred.lock.Release()
	return v, ok
}

// Put implements core.Set.
func (l *LockCoupling) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	pred, curr := l.locate(c, k)
	if curr.key == k {
		curr.lock.Release()
		pred.lock.Release()
		c.RecordRestarts(0)
		return false
	}
	c.InCS()
	pred.next = &lcNode{key: k, val: v, next: curr}
	curr.lock.Release()
	pred.lock.Release()
	c.RecordRestarts(0)
	return true
}

// Remove implements core.Set.
func (l *LockCoupling) Remove(c *core.Ctx, k core.Key) bool {
	pred, curr := l.locate(c, k)
	if curr.key != k {
		curr.lock.Release()
		pred.lock.Release()
		c.RecordRestarts(0)
		return false
	}
	c.InCS()
	pred.next = curr.next
	curr.lock.Release()
	pred.lock.Release()
	c.Retire(curr)
	c.RecordRestarts(0)
	return true
}

// Len implements core.Set (quiesced use; takes no locks).
func (l *LockCoupling) Len() int {
	n := 0
	for curr := l.head.next; curr.key != core.KeyMax; curr = curr.next {
		n++
	}
	return n
}

// Range implements core.Ranger (quiesced use; takes no locks, like Len).
func (l *LockCoupling) Range(f func(k core.Key, v core.Value) bool) {
	for curr := l.head.next; curr.key != core.KeyMax; curr = curr.next {
		if !f(curr.key, curr.val) {
			return
		}
	}
}
