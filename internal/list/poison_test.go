package list

import (
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
)

// The poisoning battery (settest.RunPoison): EBR on, reclaim callbacks
// poisoning and recycling every retired node, concurrent readers
// asserting no traversal ever observes a poisoned or recycled mapping.

func TestLazyPoison(t *testing.T) {
	settest.RunPoison(t, func(o core.Options) core.Set { return NewLazy(o) })
}

func TestLockCouplingPoison(t *testing.T) {
	settest.RunPoison(t, func(o core.Options) core.Set { return NewLockCoupling(o) })
}

func TestPughPoison(t *testing.T) {
	settest.RunPoison(t, func(o core.Options) core.Set { return NewPugh(o) })
}

func TestCOWPoison(t *testing.T) {
	settest.RunPoison(t, func(o core.Options) core.Set { return NewCOW(o) })
}

func TestHarrisPoison(t *testing.T) {
	settest.RunPoison(t, func(o core.Options) core.Set { return NewHarris(o) })
}

func TestWaitFreePoison(t *testing.T) {
	// The wait-free list retires with a nil callback (no pool; see
	// pool.go) — the battery still verifies its brackets and that the
	// domain drains fully.
	settest.RunPoison(t, func(o core.Options) core.Set { return NewWaitFree(o) })
}
