// Typed free-lists and reclaim callbacks for the list nodes (DESIGN.md,
// "Pooling contract"). Each reclaim callback runs after the node's EBR
// grace period: it poisons the node's mapping, severs its links, and hands
// it to the package pool, where the next insert on any instance picks it
// up. Pools are package-level so nodes from torn-down instances (elastic
// shards retired by a resize) are not stranded.
//
// The wait-free list deliberately has no pool: its helping descriptors
// keep node references (d.node, d.victim, d.win.pred) in the global state
// array across epoch brackets, so a helper in a new bracket may still
// dereference a node retired in an old one. Its retirements carry a nil
// callback — counted, but left to the GC (the one structural exception,
// documented in DESIGN.md).
package list

import "csds/internal/core"

var (
	lazyNodePool core.Pool
	pughNodePool core.Pool
	hNodePool    core.Pool
	lcNodePool   core.Pool
	cowSnapPool  core.Pool
)

func newLazyNode(c *core.Ctx, k core.Key, v core.Value) *lazyNode {
	if c.Pooled() {
		if n, _ := lazyNodePool.Get(c).(*lazyNode); n != nil {
			n.key, n.val = k, v
			n.marked.Store(false)
			n.next.Store(nil)
			return n
		}
	}
	return &lazyNode{key: k, val: v}
}

func reclaimLazyNode(p any) {
	n := p.(*lazyNode)
	n.key, n.val = core.PoisonKey, core.PoisonValue
	n.marked.Store(true)
	n.next.Store(nil)
	lazyNodePool.Put(n)
}

func newPughNode(c *core.Ctx, k core.Key, v core.Value) *pughNode {
	if c.Pooled() {
		if n, _ := pughNodePool.Get(c).(*pughNode); n != nil {
			n.key, n.val = k, v
			n.marked.Store(false)
			n.next.Store(nil)
			return n
		}
	}
	return &pughNode{key: k, val: v}
}

func reclaimPughNode(p any) {
	n := p.(*pughNode)
	n.key, n.val = core.PoisonKey, core.PoisonValue
	n.marked.Store(true)
	n.next.Store(nil)
	pughNodePool.Put(n)
}

// hLink boxes are never pooled — box identity is what makes the Harris
// CASes ABA-free — only the nodes are.
func newHNode(c *core.Ctx, k core.Key, v core.Value) *hNode {
	if c.Pooled() {
		if n, _ := hNodePool.Get(c).(*hNode); n != nil {
			n.key, n.val = k, v
			return n
		}
	}
	return &hNode{key: k, val: v}
}

func reclaimHNode(p any) {
	n := p.(*hNode)
	n.key, n.val = core.PoisonKey, core.PoisonValue
	n.link.Store(nil)
	hNodePool.Put(n)
}

func newLCNode(c *core.Ctx, k core.Key, v core.Value, next *lcNode) *lcNode {
	if c.Pooled() {
		if n, _ := lcNodePool.Get(c).(*lcNode); n != nil {
			n.key, n.val, n.next = k, v, next
			return n
		}
	}
	return &lcNode{key: k, val: v, next: next}
}

func reclaimLCNode(p any) {
	n := p.(*lcNode)
	n.key, n.val = core.PoisonKey, core.PoisonValue
	n.next = nil
	lcNodePool.Put(n)
}

// newCowSnapshot returns a snapshot with n-length slices, reusing a pooled
// snapshot's backing arrays when they are big enough.
func newCowSnapshot(c *core.Ctx, n int) *cowSnapshot {
	if c.Pooled() {
		if s, _ := cowSnapPool.Get(c).(*cowSnapshot); s != nil {
			if cap(s.keys) >= n && cap(s.vals) >= n {
				s.keys, s.vals = s.keys[:n], s.vals[:n]
				return s
			}
			s.keys = make([]core.Key, n)
			s.vals = make([]core.Value, n)
			return s
		}
	}
	return &cowSnapshot{keys: make([]core.Key, n), vals: make([]core.Value, n)}
}

// reclaimCowSnapshot poisons every entry — a reader still binary-searching
// a prematurely recycled snapshot must see impossible mappings, not
// plausible stale ones.
func reclaimCowSnapshot(p any) {
	s := p.(*cowSnapshot)
	for i := range s.keys {
		s.keys[i] = core.PoisonKey
	}
	for i := range s.vals {
		s.vals[i] = core.PoisonValue
	}
	cowSnapPool.Put(s)
}
