package list

import (
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/locks"
)

// pughNode carries an atomic next (optimistic, lock-free traversal) and a
// deletion flag, like the lazy list, but updates reposition under locks
// instead of restarting from the head.
type pughNode struct {
	key    core.Key
	val    core.Value
	marked atomic.Bool
	next   atomic.Pointer[pughNode]
	lock   locks.TAS
}

// Pugh is a per-node-lock list in the style of Pugh's concurrent
// maintenance technical report (1990), as catalogued in ASCYLIB: the
// traversal is synchronization-free; an update locks its predecessor and
// then *slides forward under the lock* if new nodes were inserted in the
// meantime, rather than restarting the whole operation. Restarts happen
// only when the locked predecessor itself got deleted.
type Pugh struct {
	head  *pughNode
	guard core.ScanGuard // validates optimistic range scans
}

// NewPugh builds an empty Pugh list.
func NewPugh(o core.Options) *Pugh {
	tail := &pughNode{key: core.KeyMax}
	head := &pughNode{key: core.KeyMin}
	head.next.Store(tail)
	return &Pugh{head: head}
}

func init() {
	core.Register(core.Info{
		Name: "list/pugh", Kind: "list", Progress: "blocking",
		New:  func(o core.Options) core.Set { return NewPugh(o) },
		Desc: "per-node-lock list with forward repositioning (Pugh 1990 style)",
	})
}

func (l *Pugh) search(k core.Key) *pughNode {
	pred := l.head
	curr := pred.next.Load()
	for curr.key < k {
		pred = curr
		curr = curr.next.Load()
	}
	return pred
}

// lockPred locks pred and repositions it forward until pred.key < k <=
// pred.next.key still holds under the lock. Returns nil if pred was deleted
// (caller restarts).
func (l *Pugh) lockPred(c *core.Ctx, pred *pughNode, k core.Key) *pughNode {
	pred.lock.Acquire(c.Stat())
	for {
		if pred.marked.Load() {
			pred.lock.Release()
			return nil
		}
		next := pred.next.Load()
		if next.key >= k {
			return pred
		}
		// Slide forward under hand-over-hand locking.
		next.lock.Acquire(c.Stat())
		pred.lock.Release()
		pred = next
	}
}

// Get implements core.Set: identical read path to the lazy list.
func (l *Pugh) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	c.EpochEnter()
	pred := l.search(k)
	curr := pred.next.Load()
	v, ok := curr.val, curr.key == k && !curr.marked.Load()
	c.EpochExit()
	return v, ok
}

// Put implements core.Set.
func (l *Pugh) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	restarts := 0
	for {
		pred := l.lockPred(c, l.search(k), k)
		if pred == nil {
			restarts++
			continue
		}
		curr := pred.next.Load()
		if curr.key == k {
			// Present unless it is being removed right now; the remover
			// holds pred's lock while unlinking, and we hold it, so a
			// marked successor here is impossible — but curr may have been
			// marked through a *different* predecessor window only if it
			// were unlinked already, which also can't happen while we hold
			// pred. Treat as present.
			pred.lock.Release()
			c.RecordRestarts(restarts)
			return false
		}
		n := newPughNode(c, k, v)
		n.next.Store(curr)
		c.InCS()
		l.guard.BeginWrite(c.Stat())
		pred.next.Store(n)
		l.guard.EndWrite()
		pred.lock.Release()
		c.RecordRestarts(restarts)
		return true
	}
}

// Remove implements core.Set.
func (l *Pugh) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	restarts := 0
	for {
		pred := l.lockPred(c, l.search(k), k)
		if pred == nil {
			restarts++
			continue
		}
		curr := pred.next.Load()
		if curr.key != k {
			pred.lock.Release()
			c.RecordRestarts(restarts)
			return false
		}
		curr.lock.Acquire(c.Stat())
		c.InCS()
		l.guard.BeginWrite(c.Stat())
		curr.marked.Store(true)
		pred.next.Store(curr.next.Load())
		l.guard.EndWrite()
		curr.lock.Release()
		pred.lock.Release()
		c.Retire(curr, reclaimPughNode)
		c.RecordRestarts(restarts)
		return true
	}
}

// Len implements core.Set (quiesced use).
func (l *Pugh) Len() int {
	n := 0
	for curr := l.head.next.Load(); curr.key != core.KeyMax; curr = curr.next.Load() {
		if !curr.marked.Load() {
			n++
		}
	}
	return n
}

// Range implements core.Ranger: an in-order walk over unmarked nodes,
// quiesced-use like Len.
func (l *Pugh) Range(f func(k core.Key, v core.Value) bool) {
	for curr := l.head.next.Load(); curr.key != core.KeyMax; curr = curr.next.Load() {
		if !curr.marked.Load() && !f(curr.key, curr.val) {
			return
		}
	}
}

// Scan implements core.Scanner: the lazy list's optimistic validated
// protocol (the read path is identical), atomic per call.
func (l *Pugh) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedScan(c, &l.guard, func(emit func(k core.Key, v core.Value)) {
		curr := l.search(lo).next.Load()
		for ; curr.key < hi; curr = curr.next.Load() {
			if !curr.marked.Load() {
				emit(curr.key, curr.val)
			}
		}
	}, f)
}

// CursorNext implements core.Cursor: the lazy list's bounded page
// protocol over this list's own search phase (see Lazy.CursorNext).
func (l *Pugh) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedPage(c, &l.guard, hi, max, func(emit func(k core.Key, v core.Value) bool) {
		curr := l.search(pos).next.Load()
		for ; curr.key < hi; curr = curr.next.Load() {
			if !curr.marked.Load() && !emit(curr.key, curr.val) {
				return
			}
		}
	}, f)
}
