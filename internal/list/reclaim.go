// ReclaimAll (core.Reclaimer) for the pooled lists: quiesced teardown
// sweeps that hand every data node back to the package pool at once.
// The caller must guarantee the instance is quiesced and will never be
// operated on again — the elastic combinator's resize retires a
// superseded shard map with exactly that guarantee (the retire's grace
// period waits out every bracketed straggler). Sentinels are relinked so
// a buggy late caller fails loudly on an empty structure rather than
// walking poisoned memory.
package list

import "csds/internal/core"

// ReclaimAll implements core.Reclaimer: recycle every data node.
func (l *Lazy) ReclaimAll() {
	curr := l.head.next.Load()
	for curr.key != core.KeyMax {
		next := curr.next.Load()
		reclaimLazyNode(curr)
		curr = next
	}
	l.head.next.Store(curr)
}

// ReclaimAll implements core.Reclaimer: recycle every data node.
func (l *Pugh) ReclaimAll() {
	curr := l.head.next.Load()
	for curr.key != core.KeyMax {
		next := curr.next.Load()
		reclaimPughNode(curr)
		curr = next
	}
	l.head.next.Store(curr)
}

// ReclaimAll implements core.Reclaimer: recycle every data node (the
// hLink boxes stay with the GC — they are never pooled; see pool.go).
func (l *Harris) ReclaimAll() {
	curr := l.head.link.Load().next
	for curr.key != core.KeyMax {
		next := curr.link.Load().next
		reclaimHNode(curr)
		curr = next
	}
	l.head.link.Store(&hLink{next: curr})
}

// ReclaimAll implements core.Reclaimer: recycle every data node.
func (l *LockCoupling) ReclaimAll() {
	curr := l.head.next
	for curr.key != core.KeyMax {
		next := curr.next
		reclaimLCNode(curr)
		curr = next
	}
	l.head.next = curr
}

// ReclaimAll implements core.Reclaimer: recycle the current snapshot's
// backing arrays.
func (l *COW) ReclaimAll() {
	s := l.snap.Load()
	l.snap.Store(&cowSnapshot{})
	reclaimCowSnapshot(s)
}

// The wait-free list implements no ReclaimAll: it has no pool (its
// helping descriptors hold node references across brackets; pool.go).
