package list

import (
	"fmt"
	"sync/atomic"

	"csds/internal/core"
)

// WaitFree is a wait-free linked-list set in the style of Timnat,
// Braginsky, Kogan and Petrank ("Wait-Free Linked-Lists", OPODIS 2012),
// the family of algorithms the paper benchmarks as its wait-free
// comparator. Every update publishes an operation descriptor in a global
// state array and acquires a phase number; all threads help pending
// operations with phase numbers at most their own, so every operation
// completes in a bounded number of system-wide steps even if its owner
// stalls.
//
// The structure of the implementation shows, very concretely, the cost the
// paper's Figure 2 illustrates: every next pointer is a separate immutable
// box carrying (successor, mark, source descriptor) — "concurrency data"
// interposed between nodes — so traversals chase twice the pointers of the
// lazy list, updates allocate descriptors, and each operation increments a
// shared phase counter and scans the state array. That is why its
// throughput sits at roughly half of the blocking list's (Figure 1).
//
// Correctness of the helping protocol rests on three mechanisms:
//
//  1. Box identity. Every link mutation installs a freshly allocated box,
//     so a CAS can only succeed if the link is bit-identical to what the
//     helper read — stale windows can never be written back.
//  2. The bracket lemma. For a sorted list, the insertion bracket
//     (pred, curr) of key k can only change through a modification of
//     pred's link, so a successful CAS on pred's link proves the
//     k-neighbourhood did not change since the search.
//  3. Winner provenance. A marked box names the descriptor on whose behalf
//     it was installed (src). Deletion credit and insert-poisoning are
//     therefore decided by a single CAS, and helpers translate the
//     evidence into descriptor outcomes idempotently.
type WaitFree struct {
	head     *wfNode
	maxPhase atomic.Uint64
	state    [wfMaxThreads]atomic.Pointer[wfDesc]
	guard    core.ScanGuard // validates optimistic range scans
}

// wfMaxThreads bounds the helping array; Ctx.IDs must stay below it.
const wfMaxThreads = 256

// wfLink is an immutable (successor, mark, provenance) triple.
type wfLink struct {
	next   *wfNode
	marked bool
	src    *wfDesc // which descriptor installed the mark (or forced next)
}

type wfNode struct {
	key  core.Key
	val  core.Value
	link atomic.Pointer[wfLink]
}

// Descriptor kinds and states.
const (
	wfInsert = iota
	wfRemove
)

const (
	wfPending = iota // searching for a window / victim
	wfExecute        // insert: window installed; remove: victim chosen
	wfSuccess
	wfFailure
)

// wfWindow is the bracket an insert will CAS into.
type wfWindow struct {
	pred     *wfNode
	predLink *wfLink
	curr     *wfNode
}

// wfDesc is an immutable operation descriptor; state transitions replace
// the descriptor in the owner's slot via CAS.
type wfDesc struct {
	phase  uint64
	kind   int
	key    core.Key
	val    core.Value
	node   *wfNode   // insert: the node being inserted
	victim *wfNode   // remove: the chosen target
	win    *wfWindow // insert: the installed bracket
	status int
}

func (d *wfDesc) pendingOp() bool { return d.status == wfPending || d.status == wfExecute }

// poisonDesc is the provenance sentinel for insert-failure marks: a marked
// link with src == poisonDesc means "this node was never linked; its
// insert lost to an existing key".
var poisonDesc = &wfDesc{}

// NewWaitFree builds an empty wait-free list.
func NewWaitFree(o core.Options) *WaitFree {
	tail := &wfNode{key: core.KeyMax}
	tail.link.Store(&wfLink{})
	head := &wfNode{key: core.KeyMin}
	head.link.Store(&wfLink{next: tail})
	return &WaitFree{head: head}
}

func init() {
	core.Register(core.Info{
		Name: "list/waitfree", Kind: "list", Progress: "wait-free",
		New:  func(o core.Options) core.Set { return NewWaitFree(o) },
		Desc: "wait-free descriptor/helping list (Timnat et al. 2012 style)",
	})
}

// search returns the bracket (pred, predLink, curr) with pred.key < k <=
// curr.key, physically snipping marked nodes along the way.
func (l *WaitFree) search(c *core.Ctx, k core.Key) (*wfNode, *wfLink, *wfNode) {
retry:
	for {
		pred := l.head
		predLink := pred.link.Load()
		curr := predLink.next
		for {
			currLink := curr.link.Load()
			for currLink.marked {
				snip := &wfLink{next: currLink.next}
				if !pred.link.CompareAndSwap(predLink, snip) {
					continue retry
				}
				// nil reclaim: descriptors may still reference this node
				// from the state array across brackets, so it is counted
				// but left to the GC (see pool.go).
				c.Retire(curr, nil)
				predLink = snip
				curr = currLink.next
				currLink = curr.link.Load()
			}
			if curr.key >= k {
				return pred, predLink, curr
			}
			pred = curr
			predLink = currLink
			curr = currLink.next
		}
	}
}

// slot validates and returns the worker's state-array index.
func (l *WaitFree) slot(c *core.Ctx) int {
	if c == nil {
		panic("waitfree list requires a non-nil Ctx")
	}
	if c.ID < 0 || c.ID >= wfMaxThreads {
		panic(fmt.Sprintf("waitfree list: Ctx.ID %d out of range [0,%d)", c.ID, wfMaxThreads))
	}
	return c.ID
}

// run publishes d in the owner's slot, helps all older pending operations,
// then drives its own operation to completion and returns its success.
func (l *WaitFree) run(c *core.Ctx, d *wfDesc) bool {
	tid := l.slot(c)
	l.state[tid].Store(d)
	l.helpAll(c, d.phase)
	for {
		cur := l.state[tid].Load()
		if !cur.pendingOp() {
			return cur.status == wfSuccess
		}
		l.helpOne(c, tid, cur)
	}
}

// helpAll helps every pending operation with phase <= phase to completion.
func (l *WaitFree) helpAll(c *core.Ctx, phase uint64) {
	for i := 0; i < wfMaxThreads; i++ {
		for {
			d := l.state[i].Load()
			if d == nil || !d.pendingOp() || d.phase > phase {
				break
			}
			l.helpOne(c, i, d)
		}
	}
}

// helpOne advances descriptor d (installed in slot tid) by at least one
// step. It returns when the slot no longer holds d or when d reached a
// final state.
func (l *WaitFree) helpOne(c *core.Ctx, tid int, d *wfDesc) {
	switch d.kind {
	case wfInsert:
		l.helpInsert(c, tid, d)
	case wfRemove:
		l.helpRemove(c, tid, d)
	}
}

// transition CASes the slot from d to a copy with the new fields.
func (l *WaitFree) finish(tid int, d *wfDesc, status int) {
	nd := *d
	nd.status = status
	l.state[tid].CompareAndSwap(d, &nd)
}

func (l *WaitFree) reSearch(tid int, d *wfDesc) {
	nd := *d
	nd.status = wfPending
	nd.victim = nil
	nd.win = nil
	l.state[tid].CompareAndSwap(d, &nd)
}

func (l *WaitFree) helpInsert(c *core.Ctx, tid int, d *wfDesc) {
	for l.state[tid].Load() == d {
		n := d.node
		nl := n.link.Load()
		if nl.marked {
			// The node's fate is already decided and recorded in its link.
			if nl.src == poisonDesc {
				l.finish(tid, d, wfFailure)
			} else {
				l.finish(tid, d, wfSuccess) // linked, then removed by someone
			}
			return
		}
		if d.status == wfPending {
			pred, predLink, curr := l.search(c, n.key)
			if curr == n {
				l.finish(tid, d, wfSuccess)
				return
			}
			if curr.key == n.key {
				// Key occupied by another node: poison ours so no stale
				// helper can ever link it, then record failure.
				if n.link.CompareAndSwap(nl, &wfLink{next: nl.next, marked: true, src: poisonDesc}) {
					l.finish(tid, d, wfFailure)
					return
				}
				continue // link changed under us; re-evaluate
			}
			// Install the bracket so every helper links through the same
			// window.
			nd := *d
			nd.status = wfExecute
			nd.win = &wfWindow{pred: pred, predLink: predLink, curr: curr}
			l.state[tid].CompareAndSwap(d, &nd)
			return // caller reloads the new descriptor
		}
		// wfExecute: link through the installed window.
		w := d.win
		if nl.next != w.curr || nl.src != d {
			// Force the node's link to the window's successor, with
			// provenance, so stale writes can be detected by box identity.
			if !n.link.CompareAndSwap(nl, &wfLink{next: w.curr, src: d}) {
				continue
			}
		}
		// Membership CAS: whoever executes it (owner or helper) opens the
		// scan-guard window so concurrent optimistic scans detect it.
		l.guard.BeginWrite(c.Stat())
		linked := w.pred.link.CompareAndSwap(w.predLink, &wfLink{next: n})
		l.guard.EndWrite()
		if linked {
			l.finish(tid, d, wfSuccess)
			return
		}
		// Window went stale (bracket lemma: pred's link changed, so the
		// k-neighbourhood changed). Re-search via a fresh pending
		// descriptor; if a sibling helper actually linked n, the next
		// search finds curr == n and reports success.
		l.reSearch(tid, d)
		return
	}
}

func (l *WaitFree) helpRemove(c *core.Ctx, tid int, d *wfDesc) {
	for l.state[tid].Load() == d {
		if d.status == wfPending {
			_, _, curr := l.search(c, d.key)
			if curr.key != d.key {
				l.finish(tid, d, wfFailure)
				return
			}
			nd := *d
			nd.status = wfExecute
			nd.victim = curr
			l.state[tid].CompareAndSwap(d, &nd)
			return
		}
		// wfExecute: mark the victim with our provenance.
		v := d.victim
		vl := v.link.Load()
		if vl.marked {
			if vl.src == d {
				l.finish(tid, d, wfSuccess)
			} else {
				// Someone else's mark (another remove won, or a poisoned
				// insert — impossible for a reachable node, but harmless):
				// the victim is gone; search again.
				l.reSearch(tid, d)
			}
			return
		}
		l.guard.BeginWrite(c.Stat())
		markedIt := v.link.CompareAndSwap(vl, &wfLink{next: vl.next, marked: true, src: d})
		l.guard.EndWrite()
		if markedIt {
			l.finish(tid, d, wfSuccess)
			// Best-effort physical unlink.
			l.search(c, d.key)
			c.Retire(v, nil) // nil reclaim: see search's comment
			return
		}
	}
}

// Get implements core.Set: a plain traversal, like the lazy list's
// wait-free contains (bounded by the list length plus concurrent inserts).
func (l *WaitFree) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	c.EpochEnter()
	curr := l.head.link.Load().next
	for curr.key < k {
		curr = curr.link.Load().next
	}
	link := curr.link.Load()
	v, ok := curr.val, curr.key == k && !link.marked
	c.EpochExit()
	return v, ok
}

// Put implements core.Set.
func (l *WaitFree) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	n := &wfNode{key: k, val: v}
	n.link.Store(&wfLink{})
	d := &wfDesc{
		phase: l.maxPhase.Add(1), kind: wfInsert,
		key: k, val: v, node: n, status: wfPending,
	}
	ok := l.run(c, d)
	c.RecordRestarts(0)
	return ok
}

// Remove implements core.Set.
func (l *WaitFree) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	d := &wfDesc{
		phase: l.maxPhase.Add(1), kind: wfRemove,
		key: k, status: wfPending,
	}
	ok := l.run(c, d)
	c.RecordRestarts(0)
	return ok
}

// Len implements core.Set (quiesced use).
func (l *WaitFree) Len() int {
	n := 0
	for curr := l.head.link.Load().next; curr.key != core.KeyMax; {
		link := curr.link.Load()
		if !link.marked {
			n++
		}
		curr = link.next
	}
	return n
}

// Range implements core.Ranger: an in-order walk over unmarked nodes,
// quiesced-use like Len.
func (l *WaitFree) Range(f func(k core.Key, v core.Value) bool) {
	for curr := l.head.link.Load().next; curr.key != core.KeyMax; {
		link := curr.link.Load()
		if !link.marked && !f(curr.key, curr.val) {
			return
		}
		curr = link.next
	}
}

// Scan implements core.Scanner: the Harris-style plain traversal under
// the optimistic scan guard. Only the membership CASes (the insert's
// window link, the remove's mark) open guard windows — poisoning an
// unreachable node and physical snips leave the logical contents
// untouched. Atomic per call.
func (l *WaitFree) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedScan(c, &l.guard, func(emit func(k core.Key, v core.Value)) {
		curr := l.head.link.Load().next
		for curr.key < lo {
			curr = curr.link.Load().next
		}
		for curr.key < hi {
			link := curr.link.Load()
			if !link.marked {
				emit(curr.key, curr.val)
			}
			curr = link.next
		}
	}, f)
}

// CursorNext implements core.Cursor: the Harris-style bounded page under
// the optimistic guard, resuming at the token position (see Scan for the
// guard-window argument). Each page is one atomic sub-snapshot.
func (l *WaitFree) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedPage(c, &l.guard, hi, max, func(emit func(k core.Key, v core.Value) bool) {
		curr := l.head.link.Load().next
		for curr.key < pos {
			curr = curr.link.Load().next
		}
		for curr.key < hi {
			link := curr.link.Load()
			if !link.marked && !emit(curr.key, curr.val) {
				return
			}
			curr = link.next
		}
	}, f)
}
