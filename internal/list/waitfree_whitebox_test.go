package list

import (
	"sync"
	"testing"

	"csds/internal/core"
	"csds/internal/xrand"
)

// TestWaitFreeHelpingCompletesStalledInsert is the wait-freedom property
// in miniature: a thread publishes an insert descriptor and then stalls
// forever (we install the descriptor by hand and never run its owner).
// Any other thread executing any operation with a later phase must help
// the stalled insert to completion.
func TestWaitFreeHelpingCompletesStalledInsert(t *testing.T) {
	l := NewWaitFree(core.Options{})
	n := &wfNode{key: 42, val: 4242}
	n.link.Store(&wfLink{})
	d := &wfDesc{phase: l.maxPhase.Add(1), kind: wfInsert, key: 42, node: n, status: wfPending}
	l.state[7].Store(d) // owner "stalls" immediately after publishing

	c := core.NewCtx(0)
	l.Put(c, 100, 1) // later phase: must help slot 7 first

	got := l.state[7].Load()
	if got.pendingOp() {
		t.Fatalf("stalled insert not helped to completion: status=%d", got.status)
	}
	if got.status != wfSuccess {
		t.Fatalf("stalled insert status = %d, want success", got.status)
	}
	if v, ok := l.Get(c, 42); !ok || v != 4242 {
		t.Fatalf("helped insert not visible: (%d, %v)", v, ok)
	}
}

// TestWaitFreeHelpingCompletesStalledRemove: same for a remove.
func TestWaitFreeHelpingCompletesStalledRemove(t *testing.T) {
	l := NewWaitFree(core.Options{})
	c := core.NewCtx(0)
	l.Put(c, 42, 1)

	d := &wfDesc{phase: l.maxPhase.Add(1), kind: wfRemove, key: 42, status: wfPending}
	l.state[9].Store(d)

	l.Put(c, 100, 1) // helper

	got := l.state[9].Load()
	if got.pendingOp() {
		t.Fatal("stalled remove not helped")
	}
	if got.status != wfSuccess {
		t.Fatalf("stalled remove status = %d, want success", got.status)
	}
	if _, ok := l.Get(c, 42); ok {
		t.Fatal("removed key still visible")
	}
}

// TestWaitFreeStalledInsertOnOccupiedKey: helping must record failure when
// the key exists, and must poison the orphan node so it can never be
// linked later.
func TestWaitFreeStalledInsertOnOccupiedKey(t *testing.T) {
	l := NewWaitFree(core.Options{})
	c := core.NewCtx(0)
	l.Put(c, 42, 1)

	n := &wfNode{key: 42, val: 9999}
	n.link.Store(&wfLink{})
	d := &wfDesc{phase: l.maxPhase.Add(1), kind: wfInsert, key: 42, node: n, status: wfPending}
	l.state[3].Store(d)

	l.Get(c, 1)      // gets do not help...
	l.Put(c, 100, 1) // ...updates do

	got := l.state[3].Load()
	if got.status != wfFailure {
		t.Fatalf("duplicate insert helped to status %d, want failure", got.status)
	}
	link := n.link.Load()
	if !link.marked || link.src != poisonDesc {
		t.Fatal("orphan node not poisoned")
	}
	if v, _ := l.Get(c, 42); v != 1 {
		t.Fatalf("original value clobbered: %d", v)
	}
}

// TestWaitFreePhaseOrdering: operations with lower phases are helped even
// when many are queued.
func TestWaitFreePhaseOrdering(t *testing.T) {
	l := NewWaitFree(core.Options{})
	// Stall five inserts across five slots.
	for i := 0; i < 5; i++ {
		n := &wfNode{key: core.Key(10 + i), val: core.Value(i)}
		n.link.Store(&wfLink{})
		d := &wfDesc{phase: l.maxPhase.Add(1), kind: wfInsert, key: n.key, node: n, status: wfPending}
		l.state[20+i].Store(d)
	}
	c := core.NewCtx(0)
	l.Put(c, 100, 1)
	for i := 0; i < 5; i++ {
		if l.state[20+i].Load().pendingOp() {
			t.Fatalf("queued insert %d not helped", i)
		}
		if _, ok := l.Get(c, core.Key(10+i)); !ok {
			t.Fatalf("helped key %d missing", 10+i)
		}
	}
}

// TestWaitFreeConcurrentSameKeyInserts: exactly one of many concurrent
// inserts of one key succeeds.
func TestWaitFreeConcurrentSameKeyInserts(t *testing.T) {
	for round := 0; round < 50; round++ {
		l := NewWaitFree(core.Options{})
		const workers = 8
		var wg sync.WaitGroup
		wins := make([]bool, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := core.NewCtx(w)
				wins[w] = l.Put(c, 7, core.Value(w))
			}(w)
		}
		wg.Wait()
		n := 0
		for _, won := range wins {
			if won {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("round %d: %d inserts of the same key succeeded", round, n)
		}
		if l.Len() != 1 {
			t.Fatalf("round %d: Len = %d", round, l.Len())
		}
	}
}

// TestWaitFreeConcurrentSameKeyRemoves: exactly one of many concurrent
// removes of one key succeeds.
func TestWaitFreeConcurrentSameKeyRemoves(t *testing.T) {
	for round := 0; round < 50; round++ {
		l := NewWaitFree(core.Options{})
		seed := core.NewCtx(0)
		l.Put(seed, 7, 1)
		const workers = 8
		var wg sync.WaitGroup
		wins := make([]bool, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := core.NewCtx(w)
				wins[w] = l.Remove(c, 7)
			}(w)
		}
		wg.Wait()
		n := 0
		for _, won := range wins {
			if won {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("round %d: %d removes of the same key succeeded", round, n)
		}
		if l.Len() != 0 {
			t.Fatalf("round %d: Len = %d", round, l.Len())
		}
	}
}

// TestWaitFreeInsertRemoveDuel: insert/remove pairs on one key from many
// threads keep the per-key algebra intact under phases and helping.
func TestWaitFreeInsertRemoveDuel(t *testing.T) {
	l := NewWaitFree(core.Options{})
	const workers = 6
	const iters = 3000
	var wg sync.WaitGroup
	var ins, rem [workers]int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < iters; i++ {
				if rng.Bool(0.5) {
					if l.Put(c, 5, 1) {
						ins[w]++
					}
				} else {
					if l.Remove(c, 5) {
						rem[w]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var totalIns, totalRem int64
	for w := 0; w < workers; w++ {
		totalIns += ins[w]
		totalRem += rem[w]
	}
	c := core.NewCtx(0)
	_, present := l.Get(c, 5)
	delta := totalIns - totalRem
	if delta != 0 && delta != 1 {
		t.Fatalf("algebra violated: %d inserts - %d removes = %d", totalIns, totalRem, delta)
	}
	if (delta == 1) != present {
		t.Fatalf("delta %d but present=%v", delta, present)
	}
}
