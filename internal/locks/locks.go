// Package locks provides the mutual-exclusion primitives used by the
// blocking CSDS algorithms: test-and-set and ticket locks (the paper's §3.2
// choice — "we observe no benefits from using more complex locks, such as
// MCS locks, due to the low degree of contention for any particular lock"),
// a ticket trylock (BST-TK), and an MCS queue lock kept for the lock
// ablation benchmark.
//
// Wait-time instrumentation follows the paper's methodology exactly
// (Section 5.1): the uncontended fast path never reads the clock; only when
// an acquisition cannot be served immediately do we time the wait and
// record it into the caller's stats.Thread. Passing a nil *stats.Thread is
// allowed and disables recording.
//
// All spin loops yield to the Go scheduler after a short burst
// (runtime.Gosched): goroutines are multiplexed over OS threads, and a
// spinner that never yields can starve the very goroutine that holds the
// lock — the software analogue of the lock-holder-preemption problem the
// paper addresses with HTM.
package locks

import (
	"runtime"
	"sync/atomic"
	"time"

	"csds/internal/stats"
)

// Lock is the blocking mutual-exclusion interface shared by all data
// structures in this repository.
type Lock interface {
	// Acquire blocks until the lock is held, recording contended wait time
	// into t (which may be nil).
	Acquire(t *stats.Thread)
	// Release unlocks. Must be called by the holder.
	Release()
}

// TryLock is the non-blocking acquisition interface (BST-TK, §5.1: trylock
// failures surface as operation restarts instead of wait time).
type TryLock interface {
	// TryAcquire attempts to take the lock without blocking; it records
	// the failure (not time) into t and reports success.
	TryAcquire(t *stats.Thread) bool
	Release()
}

// spinBudget is how many tight-loop iterations a waiter burns before
// yielding to the scheduler. Small: on few-core machines yielding early is
// strictly better.
const spinBudget = 64

// pause is one spin-wait iteration. Separate function so the loop body
// stays readable; the compiler inlines it.
func pause(i int) {
	if i%spinBudget == spinBudget-1 {
		runtime.Gosched()
	}
}

// WaitWhile spins until cond reports false, yielding to the scheduler like
// every lock in this package, and records the contended wait (if any) into
// t. It is the freeze-wait primitive for epoch-swapped combinators
// (elastic resharding): not a lock, but the same §5.1 methodology applies —
// the clock is read only once waiting is certain, so the un-contended path
// (cond already false) records nothing and never reads the clock.
func WaitWhile(t *stats.Thread, cond func() bool) {
	if !cond() {
		return
	}
	start := time.Now()
	for i := 0; cond(); i++ {
		pause(i)
	}
	if t != nil {
		t.RecordWait(uint64(time.Since(start)))
	}
}

// ---------------------------------------------------------------------------
// Test-and-set lock
// ---------------------------------------------------------------------------

// TAS is a test-and-set spinlock, the simplest lock in ASCYLIB. The
// TSX-enabled experiments of §5.4 use test-and-set locks for all structures
// except BST-TK.
type TAS struct {
	v atomic.Uint32
}

// Acquire implements Lock.
func (l *TAS) Acquire(t *stats.Thread) {
	if l.v.CompareAndSwap(0, 1) {
		if t != nil {
			t.RecordAcquire()
		}
		return
	}
	start := time.Now()
	for i := 0; ; i++ {
		// Test-and-test-and-set: spin on the read to avoid hammering the
		// cache line with failed RMWs.
		if l.v.Load() == 0 && l.v.CompareAndSwap(0, 1) {
			break
		}
		pause(i)
	}
	if t != nil {
		t.RecordWait(uint64(time.Since(start)))
	}
}

// TryAcquire implements TryLock.
func (l *TAS) TryAcquire(t *stats.Thread) bool {
	if l.v.CompareAndSwap(0, 1) {
		if t != nil {
			t.RecordAcquire()
		}
		return true
	}
	if t != nil {
		t.RecordTrylockFail()
	}
	return false
}

// Release implements Lock.
func (l *TAS) Release() { l.v.Store(0) }

// Held reports whether the lock is currently held (advisory, for tests and
// the HTM fallback-subscription check).
func (l *TAS) Held() bool { return l.v.Load() != 0 }

// ---------------------------------------------------------------------------
// Ticket lock
// ---------------------------------------------------------------------------

// Ticket is a ticket lock: FIFO, starvation-free among waiters, and the
// instrument the paper uses to measure waiting ("once a thread has acquired
// its ticket, if it is not immediately its turn to be served, we measure
// the time until this event occurs").
//
// Both halves live in one 64-bit word: next in the high 32 bits, owner in
// the low 32 bits. A single atomic add takes a ticket.
type Ticket struct {
	v atomic.Uint64 // next<<32 | owner
}

const ticketInc = uint64(1) << 32

func ticketParts(v uint64) (next, owner uint32) {
	return uint32(v >> 32), uint32(v)
}

// Acquire implements Lock.
func (l *Ticket) Acquire(t *stats.Thread) {
	v := l.v.Add(ticketInc) - ticketInc // value before our increment
	next, owner := ticketParts(v)
	my := next
	if my == owner {
		if t != nil {
			t.RecordAcquire()
		}
		return
	}
	start := time.Now()
	for i := 0; ; i++ {
		if _, owner := ticketParts(l.v.Load()); owner == my {
			break
		}
		pause(i)
	}
	if t != nil {
		t.RecordWait(uint64(time.Since(start)))
	}
}

// TryAcquire implements TryLock: succeeds only if no one holds the lock and
// no one is queued (next == owner).
func (l *Ticket) TryAcquire(t *stats.Thread) bool {
	v := l.v.Load()
	next, owner := ticketParts(v)
	if next != owner {
		if t != nil {
			t.RecordTrylockFail()
		}
		return false
	}
	if l.v.CompareAndSwap(v, v+ticketInc) {
		if t != nil {
			t.RecordAcquire()
		}
		return true
	}
	if t != nil {
		t.RecordTrylockFail()
	}
	return false
}

// Release implements Lock: advance owner.
func (l *Ticket) Release() { l.v.Add(1) }

// Held reports whether the lock is held (next != owner).
func (l *Ticket) Held() bool {
	next, owner := ticketParts(l.v.Load())
	return next != owner
}

// ---------------------------------------------------------------------------
// MCS queue lock
// ---------------------------------------------------------------------------

// MCSNode is the per-waiter queue node for MCS. Each worker should own one
// node per lock it may hold simultaneously; the harness allocates them in
// the per-thread context.
type MCSNode struct {
	next   atomic.Pointer[MCSNode]
	locked atomic.Bool
}

// MCS is the Mellor-Crummey–Scott queue lock. The paper argues (§3.2) it is
// unnecessary for CSDSs; the BenchmarkAblationLocks target verifies that
// claim in this reproduction.
type MCS struct {
	tail atomic.Pointer[MCSNode]
}

// AcquireNode enqueues qn and blocks until the lock is granted.
func (l *MCS) AcquireNode(qn *MCSNode, t *stats.Thread) {
	qn.next.Store(nil)
	qn.locked.Store(true)
	pred := l.tail.Swap(qn)
	if pred == nil {
		if t != nil {
			t.RecordAcquire()
		}
		return
	}
	pred.next.Store(qn)
	start := time.Now()
	for i := 0; qn.locked.Load(); i++ {
		pause(i)
	}
	if t != nil {
		t.RecordWait(uint64(time.Since(start)))
	}
}

// ReleaseNode releases a lock acquired with qn.
func (l *MCS) ReleaseNode(qn *MCSNode) {
	next := qn.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(qn, nil) {
			return
		}
		// A successor is enqueueing; wait for it to link itself.
		for i := 0; ; i++ {
			if next = qn.next.Load(); next != nil {
				break
			}
			pause(i)
		}
	}
	next.locked.Store(false)
}

// mcsHandle adapts MCS to the Lock interface with an internal node per
// acquisition chain. Because Lock/Unlock pairs cannot nest on the same
// handle, the zero-alloc single node is safe.
type mcsHandle struct {
	l  *MCS
	qn MCSNode
}

// NewMCSHandle returns a Lock view over l for one worker. Each worker must
// use its own handle; handles must not be shared.
func NewMCSHandle(l *MCS) Lock { return &mcsHandle{l: l} }

func (h *mcsHandle) Acquire(t *stats.Thread) { h.l.AcquireNode(&h.qn, t) }
func (h *mcsHandle) Release()                { h.l.ReleaseNode(&h.qn) }
