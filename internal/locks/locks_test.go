package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csds/internal/stats"
)

// exerciseMutex hammers a Lock from many goroutines incrementing a plain
// counter; mutual exclusion holds iff the final count is exact (also relies
// on -race in CI runs).
func exerciseMutex(t *testing.T, mk func() Lock) {
	t.Helper()
	const workers = 8
	const iters = 2000
	l := mk()
	var counter int64 // plain int: protected only by l
	var wg sync.WaitGroup
	ths := make([]stats.Thread, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Acquire(&ths[w])
				counter++
				l.Release()
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("mutual exclusion violated: counter = %d, want %d", counter, workers*iters)
	}
	var acqs uint64
	for i := range ths {
		acqs += ths[i].LockAcqs
	}
	if acqs != workers*iters {
		t.Fatalf("lock acquisitions recorded = %d, want %d", acqs, workers*iters)
	}
}

func TestTASMutualExclusion(t *testing.T) {
	exerciseMutex(t, func() Lock { return &TAS{} })
}

func TestTicketMutualExclusion(t *testing.T) {
	exerciseMutex(t, func() Lock { return &Ticket{} })
}

func TestMCSMutualExclusion(t *testing.T) {
	mcs := &MCS{}
	const workers = 8
	const iters = 2000
	var counter int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := NewMCSHandle(mcs)
			for i := 0; i < iters; i++ {
				h.Acquire(nil)
				counter++
				h.Release()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("MCS mutual exclusion violated: %d", counter)
	}
}

func TestTASUncontendedNoWait(t *testing.T) {
	var l TAS
	var th stats.Thread
	l.Acquire(&th)
	l.Release()
	if th.LockWaits != 0 || th.LockWaitNs != 0 {
		t.Fatalf("uncontended acquire recorded a wait: %+v", th)
	}
	if th.LockAcqs != 1 {
		t.Fatalf("acquire not recorded")
	}
}

func TestTicketUncontendedNoWait(t *testing.T) {
	var l Ticket
	var th stats.Thread
	l.Acquire(&th)
	l.Release()
	if th.LockWaits != 0 {
		t.Fatalf("uncontended ticket acquire recorded a wait: %+v", th)
	}
}

func TestTicketFIFO(t *testing.T) {
	// Hold the lock, queue two waiters in a known order, verify they are
	// served in that order.
	var l Ticket
	l.Acquire(nil)

	order := make(chan int, 2)
	started := make(chan struct{}, 2)
	var first, second atomic.Bool
	go func() {
		// Ensure this goroutine takes its ticket first.
		first.Store(true)
		started <- struct{}{}
		l.Acquire(nil)
		order <- 1
		l.Release()
	}()
	// Make goroutine 1 take its ticket before goroutine 2: wait until it is
	// provably spinning (next advanced by one).
	<-started
	waitUntil(t, func() bool { next, owner := ticketParts(l.v.Load()); return next == owner+2 || next == owner+1 })
	for {
		next, owner := ticketParts(l.v.Load())
		if next == owner+2 { // holder + waiter 1
			break
		}
		if !first.Load() {
			t.Fatal("unexpected state")
		}
		waitUntil(t, func() bool { next, owner := ticketParts(l.v.Load()); return next >= owner+2 })
		break
	}
	go func() {
		second.Store(true)
		started <- struct{}{}
		l.Acquire(nil)
		order <- 2
		l.Release()
	}()
	<-started
	waitUntil(t, func() bool { next, owner := ticketParts(l.v.Load()); return next == owner+3 })

	l.Release()
	if got := <-order; got != 1 {
		t.Fatalf("FIFO violated: first served %d", got)
	}
	if got := <-order; got != 2 {
		t.Fatalf("FIFO violated: second served %d", got)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	// Yield every iteration: on a single-CPU host a non-yielding spin can
	// starve the very goroutine whose progress the condition observes.
	deadline := time.Now().Add(contentionScaled(5 * time.Second))
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatal("condition never became true")
}

// contentionScaled stretches a timing window that must let a background
// goroutine make progress: on a single-CPU host (CI runners and dev
// containers both hit this) every goroutine timeshares one core, so
// windows sized for parallel hardware sit inside scheduling noise.
// Condition-gated waits stay condition-gated — this only moves the
// give-up horizon, never the success path.
func contentionScaled(d time.Duration) time.Duration {
	if runtime.NumCPU() == 1 {
		return d * 10
	}
	return d
}

func TestTicketContendedRecordsWait(t *testing.T) {
	var l Ticket
	l.Acquire(nil)
	var th stats.Thread
	done := make(chan struct{})
	go func() {
		l.Acquire(&th)
		l.Release()
		close(done)
	}()
	waitUntil(t, func() bool { return l.Held() })
	// Give the waiter a moment to be provably queued.
	waitUntil(t, func() bool { next, owner := ticketParts(l.v.Load()); return next == owner+2 })
	l.Release()
	<-done
	if th.LockWaits != 1 {
		t.Fatalf("contended acquire did not record a wait: %+v", th)
	}
	if th.LockWaitNs == 0 {
		t.Fatal("wait recorded with zero duration")
	}
}

func TestTryAcquireTAS(t *testing.T) {
	var l TAS
	var th stats.Thread
	if !l.TryAcquire(&th) {
		t.Fatal("try on free lock failed")
	}
	if l.TryAcquire(&th) {
		t.Fatal("try on held lock succeeded")
	}
	if th.TrylockFails != 1 {
		t.Fatalf("trylock failure not recorded: %+v", th)
	}
	l.Release()
	if !l.TryAcquire(nil) {
		t.Fatal("try after release failed")
	}
	l.Release()
}

func TestTryAcquireTicket(t *testing.T) {
	var l Ticket
	var th stats.Thread
	if !l.TryAcquire(&th) {
		t.Fatal("try on free ticket lock failed")
	}
	if l.TryAcquire(&th) {
		t.Fatal("try on held ticket lock succeeded")
	}
	if th.TrylockFails != 1 {
		t.Fatalf("trylock failure not recorded")
	}
	l.Release()
	if !l.TryAcquire(&th) {
		t.Fatal("try after release failed")
	}
	l.Release()
	if th.LockAcqs != 2 {
		t.Fatalf("acquisitions = %d, want 2", th.LockAcqs)
	}
}

func TestHeld(t *testing.T) {
	var tas TAS
	var tick Ticket
	if tas.Held() || tick.Held() {
		t.Fatal("fresh locks report held")
	}
	tas.Acquire(nil)
	tick.Acquire(nil)
	if !tas.Held() || !tick.Held() {
		t.Fatal("held locks report free")
	}
	tas.Release()
	tick.Release()
	if tas.Held() || tick.Held() {
		t.Fatal("released locks report held")
	}
}

func TestTicketManyCycles(t *testing.T) {
	// Exercise owner/next wraparound logic across many acquire/release
	// cycles on one goroutine.
	var l Ticket
	for i := 0; i < 100000; i++ {
		l.Acquire(nil)
		l.Release()
	}
	if l.Held() {
		t.Fatal("lock held after balanced acquire/release")
	}
}

func TestNilStatsAllowed(t *testing.T) {
	var tas TAS
	tas.Acquire(nil)
	tas.Release()
	var tk Ticket
	tk.Acquire(nil)
	tk.Release()
	if !tk.TryAcquire(nil) {
		t.Fatal("try failed")
	}
	tk.Release()
}

func BenchmarkTASUncontended(b *testing.B) {
	var l TAS
	for i := 0; i < b.N; i++ {
		l.Acquire(nil)
		l.Release()
	}
}

func BenchmarkTicketUncontended(b *testing.B) {
	var l Ticket
	for i := 0; i < b.N; i++ {
		l.Acquire(nil)
		l.Release()
	}
}

func BenchmarkMCSUncontended(b *testing.B) {
	l := &MCS{}
	h := NewMCSHandle(l)
	for i := 0; i < b.N; i++ {
		h.Acquire(nil)
		h.Release()
	}
}

func BenchmarkTicketContended(b *testing.B) {
	var l Ticket
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Acquire(nil)
			l.Release()
		}
	})
}

// TestWaitWhile checks the freeze-wait primitive follows the §5.1
// methodology: nothing recorded (and no clock read) when the condition is
// already false, one wait with elapsed time recorded when it spins.
func TestWaitWhile(t *testing.T) {
	var th stats.Thread
	WaitWhile(&th, func() bool { return false })
	if th.LockAcqs != 0 || th.LockWaits != 0 || th.LockWaitNs != 0 {
		t.Fatalf("uncontended WaitWhile recorded stats: %+v", th)
	}
	var frozen atomic.Bool
	frozen.Store(true)
	go func() {
		// Scaled on single-CPU hosts: the sleeping goroutine must get
		// scheduled over the spinning WaitWhile before the window ends.
		time.Sleep(contentionScaled(2 * time.Millisecond))
		frozen.Store(false)
	}()
	WaitWhile(&th, frozen.Load)
	if th.LockWaits != 1 || th.LockWaitNs == 0 {
		t.Fatalf("contended WaitWhile did not record the wait: %+v", th)
	}
	// A nil stats slot disables recording, like the locks.
	frozen.Store(true)
	go func() {
		time.Sleep(contentionScaled(time.Millisecond))
		frozen.Store(false)
	}()
	WaitWhile(nil, frozen.Load)
}
