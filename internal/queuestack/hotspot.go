package queuestack

import (
	"sync"
	"sync/atomic"
	"time"

	"csds/internal/core"
	"csds/internal/stats"
	"csds/internal/xrand"
)

// RunHotspot drives the Figure 10 workload: `threads` workers perform 50%
// inserts (enqueue/push) and 50% removes (dequeue/pop) against a structure
// pre-filled with `fill` elements, for `dur`. It returns the mean fraction
// of time workers spent waiting for locks. kind is "queue" or "stack".
func RunHotspot(kind string, threads int, dur time.Duration, fill int) float64 {
	var enq func(c *core.Ctx, v core.Value)
	var deq func(c *core.Ctx) (core.Value, bool)
	switch kind {
	case "queue":
		q := NewTwoLockQueue()
		enq, deq = q.Enqueue, q.Dequeue
	case "stack":
		s := NewLockStack()
		enq, deq = s.Push, s.Pop
	default:
		panic("queuestack: unknown hotspot kind " + kind)
	}
	seed := core.NewCtx(0)
	for i := 0; i < fill; i++ {
		enq(seed, core.Value(i))
	}

	ths := make([]stats.Thread, threads)
	var stop atomic.Bool
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &core.Ctx{ID: w, Rng: xrand.New(uint64(w) + 1), Stats: &ths[w]}
			<-gate
			t0 := time.Now()
			for !stop.Load() {
				if c.Rng.Bool(0.5) {
					enq(c, core.Value(w))
				} else {
					deq(c)
				}
				c.Stats.Ops++
			}
			ths[w].ActiveNs = uint64(time.Since(t0))
		}(w)
	}
	close(gate)
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()

	fracs := make([]float64, threads)
	for i := range ths {
		fracs[i] = ths[i].WaitFraction()
	}
	return stats.Mean(fracs)
}
