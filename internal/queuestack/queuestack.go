// Package queuestack implements the beyond-CSDS structures of the paper's
// Section 7: lock-based queue and stack (whose accesses concentrate on one
// or two hotspots, so waiting time approaches 100% — Figure 10), plus the
// classic lock-free comparators (Michael–Scott queue, Treiber stack) the
// section recommends instead.
package queuestack

import (
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/locks"
)

// Queue is the FIFO interface used by the Section 7 experiments.
type Queue interface {
	Enqueue(c *core.Ctx, v core.Value)
	Dequeue(c *core.Ctx) (core.Value, bool)
	Len() int
}

// Stack is the LIFO interface used by the Section 7 experiments.
type Stack interface {
	Push(c *core.Ctx, v core.Value)
	Pop(c *core.Ctx) (core.Value, bool)
	Len() int
}

// ---------------------------------------------------------------------------
// Lock-based queue (two-lock Michael–Scott: the standard blocking queue)
// ---------------------------------------------------------------------------

type qnode struct {
	val  core.Value
	next atomic.Pointer[qnode]
}

// TwoLockQueue is the standard lock-based FIFO queue (Michael & Scott,
// PODC 1996, blocking variant): one lock serializes enqueuers, another
// serializes dequeuers. Every enqueue contends on the tail hotspot and
// every dequeue on the head hotspot — there is nothing to distribute, which
// is exactly why Figure 10 shows waiting fractions approaching 1.
type TwoLockQueue struct {
	head  *qnode // sentinel; protected by hLock
	tail  *qnode // protected by tLock
	hLock locks.Ticket
	tLock locks.Ticket
	size  atomic.Int64
}

// NewTwoLockQueue builds an empty queue.
func NewTwoLockQueue() *TwoLockQueue {
	s := &qnode{}
	return &TwoLockQueue{head: s, tail: s}
}

// Enqueue appends v.
func (q *TwoLockQueue) Enqueue(c *core.Ctx, v core.Value) {
	n := &qnode{val: v}
	q.tLock.Acquire(c.Stat())
	c.InCS()
	q.tail.next.Store(n)
	q.tail = n
	q.tLock.Release()
	q.size.Add(1)
}

// Dequeue removes the oldest element.
func (q *TwoLockQueue) Dequeue(c *core.Ctx) (core.Value, bool) {
	q.hLock.Acquire(c.Stat())
	first := q.head.next.Load()
	if first == nil {
		q.hLock.Release()
		return 0, false
	}
	c.InCS()
	v := first.val
	q.head = first
	q.hLock.Release()
	q.size.Add(-1)
	return v, true
}

// Len returns the current element count.
func (q *TwoLockQueue) Len() int { return int(q.size.Load()) }

// ---------------------------------------------------------------------------
// Lock-based stack
// ---------------------------------------------------------------------------

type snode struct {
	val  core.Value
	next *snode
}

// LockStack is the single-lock LIFO stack: one hotspot (the top pointer),
// one lock.
type LockStack struct {
	top  *snode
	lock locks.Ticket
	size atomic.Int64
}

// NewLockStack builds an empty stack.
func NewLockStack() *LockStack { return &LockStack{} }

// Push adds v on top.
func (s *LockStack) Push(c *core.Ctx, v core.Value) {
	s.lock.Acquire(c.Stat())
	c.InCS()
	s.top = &snode{val: v, next: s.top}
	s.lock.Release()
	s.size.Add(1)
}

// Pop removes the top element.
func (s *LockStack) Pop(c *core.Ctx) (core.Value, bool) {
	s.lock.Acquire(c.Stat())
	t := s.top
	if t == nil {
		s.lock.Release()
		return 0, false
	}
	c.InCS()
	s.top = t.next
	s.lock.Release()
	s.size.Add(-1)
	return t.val, true
}

// Len returns the current element count.
func (s *LockStack) Len() int { return int(s.size.Load()) }

// ---------------------------------------------------------------------------
// Lock-free comparators
// ---------------------------------------------------------------------------

// MSQueue is the lock-free Michael–Scott queue (PODC 1996).
type MSQueue struct {
	head atomic.Pointer[qnode]
	tail atomic.Pointer[qnode]
	size atomic.Int64
}

// NewMSQueue builds an empty lock-free queue.
func NewMSQueue() *MSQueue {
	s := &qnode{}
	q := &MSQueue{}
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// Enqueue appends v.
func (q *MSQueue) Enqueue(c *core.Ctx, v core.Value) {
	n := &qnode{val: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			q.tail.CompareAndSwap(tail, next) // help lagging tail
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// Dequeue removes the oldest element.
func (q *MSQueue) Dequeue(c *core.Ctx) (core.Value, bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return 0, false
		}
		if head == tail {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		v := next.val
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			return v, true
		}
	}
}

// Len returns the current element count.
func (q *MSQueue) Len() int { return int(q.size.Load()) }

// TreiberStack is the classic lock-free LIFO stack (Treiber 1986).
type TreiberStack struct {
	top  atomic.Pointer[snode]
	size atomic.Int64
}

// NewTreiberStack builds an empty lock-free stack.
func NewTreiberStack() *TreiberStack { return &TreiberStack{} }

// Push adds v on top.
func (s *TreiberStack) Push(c *core.Ctx, v core.Value) {
	n := &snode{val: v}
	for {
		t := s.top.Load()
		n.next = t
		if s.top.CompareAndSwap(t, n) {
			s.size.Add(1)
			return
		}
	}
}

// Pop removes the top element.
func (s *TreiberStack) Pop(c *core.Ctx) (core.Value, bool) {
	for {
		t := s.top.Load()
		if t == nil {
			return 0, false
		}
		if s.top.CompareAndSwap(t, t.next) {
			s.size.Add(-1)
			return t.val, true
		}
	}
}

// Len returns the current element count.
func (s *TreiberStack) Len() int { return int(s.size.Load()) }
