package queuestack

import (
	"sort"
	"sync"
	"testing"

	"csds/internal/core"
)

func testQueueFIFO(t *testing.T, q Queue) {
	t.Helper()
	c := core.NewCtx(0)
	if _, ok := q.Dequeue(c); ok {
		t.Fatal("dequeue on empty succeeded")
	}
	for i := core.Value(0); i < 100; i++ {
		q.Enqueue(c, i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := core.Value(0); i < 100; i++ {
		v, ok := q.Dequeue(c)
		if !ok || v != i {
			t.Fatalf("dequeue %d = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(c); ok {
		t.Fatal("queue not empty after draining")
	}
}

func testStackLIFO(t *testing.T, s Stack) {
	t.Helper()
	c := core.NewCtx(0)
	if _, ok := s.Pop(c); ok {
		t.Fatal("pop on empty succeeded")
	}
	for i := core.Value(0); i < 100; i++ {
		s.Push(c, i)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := core.Value(99); i >= 0; i-- {
		v, ok := s.Pop(c)
		if !ok || v != i {
			t.Fatalf("pop = (%d, %v), want %d", v, ok, i)
		}
	}
	if _, ok := s.Pop(c); ok {
		t.Fatal("stack not empty after draining")
	}
}

func TestTwoLockQueueFIFO(t *testing.T) { testQueueFIFO(t, NewTwoLockQueue()) }
func TestMSQueueFIFO(t *testing.T)      { testQueueFIFO(t, NewMSQueue()) }
func TestLockStackLIFO(t *testing.T)    { testStackLIFO(t, NewLockStack()) }
func TestTreiberLIFO(t *testing.T)      { testStackLIFO(t, NewTreiberStack()) }

// testQueueConcurrent checks no element is lost or duplicated across
// concurrent producers and consumers.
func testQueueConcurrent(t *testing.T, q Queue) {
	t.Helper()
	const producers = 4
	const consumers = 4
	const perProducer = 5000
	var wg sync.WaitGroup
	var consumed [consumers][]core.Value
	var done sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := core.NewCtx(p)
			for i := 0; i < perProducer; i++ {
				q.Enqueue(c, core.Value(p*perProducer+i))
			}
		}(p)
	}
	stop := make(chan struct{})
	for cs := 0; cs < consumers; cs++ {
		done.Add(1)
		go func(cs int) {
			defer done.Done()
			c := core.NewCtx(producers + cs)
			for {
				v, ok := q.Dequeue(c)
				if ok {
					consumed[cs] = append(consumed[cs], v)
					continue
				}
				select {
				case <-stop:
					// Drain whatever is left.
					for {
						v, ok := q.Dequeue(c)
						if !ok {
							return
						}
						consumed[cs] = append(consumed[cs], v)
					}
				default:
				}
			}
		}(cs)
	}
	wg.Wait()
	close(stop)
	done.Wait()

	var all []core.Value
	for cs := range consumed {
		all = append(all, consumed[cs]...)
	}
	if len(all) != producers*perProducer {
		t.Fatalf("consumed %d elements, want %d", len(all), producers*perProducer)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != core.Value(i) {
			t.Fatalf("element %d missing or duplicated (saw %d)", i, v)
		}
	}
}

func TestTwoLockQueueConcurrent(t *testing.T) { testQueueConcurrent(t, NewTwoLockQueue()) }
func TestMSQueueConcurrent(t *testing.T)      { testQueueConcurrent(t, NewMSQueue()) }

func testStackConcurrent(t *testing.T, s Stack) {
	t.Helper()
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	var popped [workers][]core.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			for i := 0; i < per; i++ {
				s.Push(c, core.Value(w*per+i))
				if v, ok := s.Pop(c); ok {
					popped[w] = append(popped[w], v)
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain remainder.
	c := core.NewCtx(99)
	var rest []core.Value
	for {
		v, ok := s.Pop(c)
		if !ok {
			break
		}
		rest = append(rest, v)
	}
	var all []core.Value
	for w := range popped {
		all = append(all, popped[w]...)
	}
	all = append(all, rest...)
	if len(all) != workers*per {
		t.Fatalf("popped %d elements, want %d", len(all), workers*per)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != core.Value(i) {
			t.Fatalf("element %d missing or duplicated (saw %d)", i, v)
		}
	}
}

func TestLockStackConcurrent(t *testing.T) { testStackConcurrent(t, NewLockStack()) }
func TestTreiberConcurrent(t *testing.T)   { testStackConcurrent(t, NewTreiberStack()) }

// TestQueueHotspotWaits demonstrates the Section 7 pathology: under
// sustained contention the lock-based queue records lock waits.
func TestQueueHotspotWaits(t *testing.T) {
	q := NewTwoLockQueue()
	const workers = 8
	ctxs := make([]*core.Ctx, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ctxs[w] = core.NewCtx(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := ctxs[w]
			for i := 0; i < 30000; i++ {
				if i%2 == 0 {
					q.Enqueue(c, core.Value(i))
				} else {
					q.Dequeue(c)
				}
			}
		}(w)
	}
	wg.Wait()
	var waits uint64
	for _, c := range ctxs {
		waits += c.Stats.LockWaits
	}
	if waits == 0 {
		t.Skip("no preemption overlap observed on this host; hotspot waits not measurable")
	}
}
