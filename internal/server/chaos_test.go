// Chaos-plane tests: the server under injected faults and the client's
// recovery discipline against them. Counters are asserted through the
// stats command — the same interface operators get — not by reaching
// into server internals.
package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"csds/internal/core"
	"csds/internal/fault"
)

// pollStats polls the counter m[name] through a fresh client until cond
// holds or the deadline passes.
func pollStats(t *testing.T, addr, name string, cond func(uint64) bool) uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last uint64
	for time.Now().Before(deadline) {
		c, err := Dial(addr)
		if err == nil {
			m, err := c.Stats()
			c.Close()
			if err == nil {
				last = m[name]
				if cond(last) {
					return last
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("stat %q never satisfied condition (last %d)", name, last)
	return 0
}

func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestIdleEviction: a connection that makes no read progress within the
// idle window is evicted (closed and counted), while active connections
// are untouched.
func TestIdleEviction(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{
		Spec: "sharded(4,hashtable/lazy)", Size: 256, IdleTimeout: 80 * time.Millisecond,
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}()

	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	// The idle conn sends nothing; the server must close it.
	idle.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := idle.Read(buf); err == nil {
		t.Fatal("idle connection still open after the idle window")
	}
	if got := pollStats(t, addr, "evictions", func(v uint64) bool { return v >= 1 }); got < 1 {
		t.Fatalf("evictions = %d, want >= 1", got)
	}
}

// TestWatchdogExpelsWedgedRecord: a reader stalled inside an epoch
// bracket wedges advancement; the watchdog must detect the unchanged
// state word across two ticks, expel the record (counted in stats), and
// the drain must still end reclaimed == retired via the GC-backed
// downgrade.
func TestWatchdogExpelsWedgedRecord(t *testing.T) {
	srv, addr, shutdown := startServer(t, Config{
		Spec: "sharded(4,hashtable/lazy)", Size: 256, UseEBR: true,
		WatchdogTick: 10 * time.Millisecond,
	})

	// The wedge: a record that enters a bracket and never exits — the
	// stalled-reader failure mode a panicking or livelocked worker
	// exhibits when nothing unregisters it.
	wedge := srv.dom.Register()
	wedge.Enter()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Generate retirements so the wedge is actually holding limbo back.
	for k := int64(0); k < 64; k++ {
		if _, err := c.Set(core.Key(k), core.Value(k)); err != nil {
			t.Fatal(err)
		}
	}
	for k := int64(0); k < 64; k++ {
		if _, err := c.Delete(core.Key(k)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	if got := pollStats(t, addr, "watchdog_fires", func(v uint64) bool { return v >= 1 }); got < 1 {
		t.Fatalf("watchdog_fires = %d, want >= 1", got)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown after expulsion: %v", err)
	}
	if a := srv.Audit(); a.Retired != a.Reclaimed {
		t.Fatalf("domain did not quiesce after expulsion: %+v", a)
	}
	// The expelled record is inert: the dead worker's late unregister
	// must be a no-op, not a double-free.
	wedge.Unregister()
}

// TestForcedShedSurfacesTyped: the shed.busy fault point forces busy
// replies that are wire-indistinguishable from real saturation; the
// client must surface them as *RetryableError wrapping ErrBusy on
// writes, and the counters must attribute them to both shed and faults.
func TestForcedShedSurfacesTyped(t *testing.T) {
	srv, addr, shutdown := startServer(t, Config{
		Spec: "sharded(4,hashtable/lazy)", Size: 256,
		Fault: mustPlan(t, "shed.busy:every=3;seed=7"),
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sheds := 0
	for k := int64(0); k < 30; k++ {
		_, err := c.Set(core.Key(k), core.Value(k))
		if err == nil {
			continue
		}
		var re *RetryableError
		if !errors.As(err, &re) || !errors.Is(err, ErrBusy) {
			t.Fatalf("Set error = %v, want *RetryableError wrapping ErrBusy", err)
		}
		sheds++
	}
	if sheds == 0 {
		t.Fatal("shed.busy:every=3 never shed over 30 sets")
	}
	a := srv.Audit()
	if a.Shed < uint64(sheds) || a.Faults < uint64(sheds) {
		t.Fatalf("audit shed=%d faults=%d, want both >= %d", a.Shed, a.Faults, sheds)
	}
}

// TestClientRetriesBusyReads: with a retry budget, reads ride through
// forced sheds transparently — every Get succeeds even though the
// server sheds a third of admissions.
func TestClientRetriesBusyReads(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{
		Spec: "sharded(4,hashtable/lazy)", Size: 256,
		Fault: mustPlan(t, "shed.busy:every=3;seed=11"),
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Policy = RetryPolicy{Budget: 5, OpDeadline: 2 * time.Second, BaseBackoff: time.Millisecond}

	for k := int64(0); k < 20; k++ {
		for { // writes reissue on the typed error; that's the caller's loop
			_, err := c.Set(core.Key(k), core.Value(k))
			var re *RetryableError
			if errors.As(err, &re) {
				continue
			}
			if err != nil {
				t.Fatalf("Set(%d): %v", k, err)
			}
			break
		}
	}
	for k := int64(0); k < 20; k++ {
		v, ok, err := c.Get(core.Key(k))
		if err != nil {
			t.Fatalf("Get(%d) failed despite retry budget: %v", k, err)
		}
		if !ok || int64(v) != k {
			t.Fatalf("Get(%d) = (%v, %v)", k, v, ok)
		}
	}
}

// TestClientRetriesDroppedConns: injected connection drops kill the
// transport mid-operation; the read path must redial and retry within
// its budget, and cursor pages must resume by token without duplicate
// or missing keys.
func TestClientRetriesDroppedConns(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{
		Spec: "sharded(4,hashtable/lazy)", Size: 256,
		Fault: mustPlan(t, "conn.drop:every=29;seed=3"),
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}()

	// Prefill on a clean policy-less client, reissuing on any error (the
	// drop plan can kill the conn mid-write, where outcome is unknown —
	// set is insert-if-absent, so blind reissue is safe here).
	prefill, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 64; k++ {
		for {
			if _, err := prefill.Set(core.Key(k), core.Value(k)); err == nil {
				break
			}
			prefill.Close()
			if prefill, err = Dial(addr); err != nil {
				t.Fatal(err)
			}
		}
	}
	prefill.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Policy = RetryPolicy{Budget: 6, OpDeadline: 2 * time.Second, BaseBackoff: time.Millisecond}

	for k := int64(0); k < 64; k++ {
		v, ok, err := c.Get(core.Key(k))
		if err != nil {
			t.Fatalf("Get(%d) failed despite retry budget: %v", k, err)
		}
		if !ok || int64(v) != k {
			t.Fatalf("Get(%d) = (%v, %v)", k, v, ok)
		}
	}

	// Paginate the whole window under drops: tokens are pure positions,
	// so retried pages must deliver each key exactly once, in order.
	seen := make(map[int64]bool)
	token, done, err := c.Range(0, 64, 10, func(k core.Key, v core.Value) {
		seen[int64(k)] = true
	})
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	for !done {
		token, done, err = c.Page(token, 10, func(k core.Key, v core.Value) {
			if seen[int64(k)] {
				t.Fatalf("key %d delivered twice across retried pages", k)
			}
			seen[int64(k)] = true
		})
		if err != nil {
			t.Fatalf("Page: %v", err)
		}
	}
	if len(seen) != 64 {
		t.Fatalf("pagination under drops delivered %d of 64 keys", len(seen))
	}
}

// TestInjectedPanicContainment: handler panics injected mid-burst must
// not take the server down, wedge the epoch, or leak the dying worker's
// record — the live-server half of the batch-path panic contract.
func TestInjectedPanicContainment(t *testing.T) {
	srv, addr, shutdown := startServer(t, Config{
		Spec: "sharded(4,hashtable/lazy)", Size: 256, UseEBR: true,
		Fault: mustPlan(t, "handler.panic:every=25;seed=5"),
	})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Policy = RetryPolicy{Budget: 6, OpDeadline: 2 * time.Second, BaseBackoff: time.Millisecond}

	// Deep pipelined bursts make the injected panic land between a
	// burst's requests — responses already rendered, more pending.
	for round := 0; round < 12; round++ {
		for i := 0; i < 16; i++ {
			c.PipeSet(core.Key(round*16+i), core.Value(round*16+i))
		}
		if err := c.Flush(); err == nil {
			for i := 0; i < 16; i++ {
				if _, err := c.RecvStored(); err != nil {
					break // burst died mid-flight: reissue below
				}
			}
		}
		// The panicked conn is dead; a fresh dial must always work.
		c.Close()
		if c, err = Dial(addr); err != nil {
			t.Fatalf("redial after injected panic: %v", err)
		}
		c.Policy = RetryPolicy{Budget: 6, OpDeadline: 2 * time.Second, BaseBackoff: time.Millisecond}
	}

	// Every key reaches the structure eventually: retry sets until
	// stored-or-present, then verify via retried reads.
	for k := int64(0); k < 12*16; k++ {
		for {
			if _, err := c.Set(core.Key(k), core.Value(k)); err == nil {
				break
			}
			c.Close()
			if c, err = Dial(addr); err != nil {
				t.Fatal(err)
			}
			c.Policy = RetryPolicy{Budget: 6, OpDeadline: 2 * time.Second, BaseBackoff: time.Millisecond}
		}
	}
	for k := int64(0); k < 12*16; k++ {
		v, ok, err := c.Get(core.Key(k))
		if err != nil || !ok || int64(v) != k {
			t.Fatalf("Get(%d) = (%v, %v, %v) after panic storm", k, v, ok, err)
		}
	}
	c.Close()

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown after panic storm: %v", err)
	}
	a := srv.Audit()
	if a.Retired != a.Reclaimed {
		t.Fatalf("panic storm leaked reclamation: %+v", a)
	}
	if a.Faults == 0 {
		t.Fatal("handler.panic plan fired nothing")
	}
}

// TestDegradedModeShedsPagesFirst: at 3/4 in-flight saturation the
// server sheds pages while point ops still run.
func TestDegradedModeShedsPagesFirst(t *testing.T) {
	srv, addr, shutdown := startServer(t, Config{
		Spec: "sharded(4,hashtable/lazy)", Size: 256, MaxInflight: 4,
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Set(1, 10); err != nil {
		t.Fatal(err)
	}

	// Saturate 3 of 4 slots through the real admission path so the
	// gauge agrees with the channel.
	for i := 0; i < 3; i++ {
		if !srv.acquire() {
			t.Fatal("acquire failed below the cap")
		}
	}
	defer func() {
		for i := 0; i < 3; i++ {
			srv.release()
		}
	}()

	if _, _, err := c.Range(0, 10, 5, func(core.Key, core.Value) {}); !errors.Is(err, ErrBusy) {
		t.Fatalf("degraded Range error = %v, want ErrBusy", err)
	}
	if v, ok, err := c.Get(1); err != nil || !ok || v != 10 {
		t.Fatalf("degraded Get = (%v, %v, %v), want the point op to succeed", v, ok, err)
	}
	if got := pollStats(t, addr, "inflight", func(v uint64) bool { return v >= 3 }); got < 3 {
		t.Fatalf("inflight gauge = %d, want >= 3", got)
	}
}

// TestDialRetryBacksOff: the handshake helper gives up only after the
// patience window and returns the dial error; the backoff is bounded by
// patience so it cannot sleep past the deadline it reports against.
func TestDialRetryBacksOff(t *testing.T) {
	// A listener opened and closed leaves a port nothing accepts on.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	t0 := time.Now()
	_, err = DialRetry(addr, 300*time.Millisecond)
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("DialRetry to a dead port succeeded")
	}
	if elapsed < 250*time.Millisecond || elapsed > 3*time.Second {
		t.Fatalf("DialRetry gave up after %v, want ~patience (300ms)", elapsed)
	}
}
