// Client is a minimal pipelined memcache-text client for the csdsd
// dialect: csdsbench -net drives its closed-loop workload through it,
// the examples are thin wrappers around it, and the socket tests speak
// through it. It is deliberately synchronous per method — pipelining is
// explicit (Pipe* to buffer requests, Flush to send, Recv* to collect
// responses in order), which is exactly the shape a closed-loop load
// generator wants.
package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strconv"
	"time"

	"csds/internal/core"
)

// Client is one connection. Not safe for concurrent use; a load
// generator opens one per worker.
type Client struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// Dial connects to a csdsd server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{nc: nc, br: bufio.NewReaderSize(nc, 1<<16), bw: bufio.NewWriterSize(nc, 1<<16)}, nil
}

// DialRetry dials with retries over the patience window — the handshake
// of scripts that start a server and a client together.
func DialRetry(addr string, patience time.Duration) (*Client, error) {
	deadline := time.Now().Add(patience)
	for {
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server: dial %s: gave up after %v: %w", addr, patience, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Close sends quit (best-effort) and closes the connection.
func (c *Client) Close() error {
	c.bw.WriteString("quit\r\n")
	c.bw.Flush()
	return c.nc.Close()
}

// readLine returns the next response line without its CRLF.
func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	return trimCRLF(line), nil
}

// errorLine converts a server error response into a Go error.
func errorLine(line []byte) error {
	return fmt.Errorf("server: %s", line)
}

// isErrorLine reports whether line is one of the protocol error replies.
func isErrorLine(line []byte) bool {
	return bytes.Equal(line, []byte("ERROR")) ||
		bytes.HasPrefix(line, []byte("CLIENT_ERROR")) ||
		bytes.HasPrefix(line, []byte("SERVER_ERROR"))
}

// --- pipelined request writers -------------------------------------------

// PipeGet buffers one single-key get (pair with RecvGet).
func (c *Client) PipeGet(k core.Key) error {
	c.bw.WriteString("get ")
	writeInt(c.bw, int64(k))
	_, err := c.bw.WriteString("\r\n")
	return err
}

// PipeSet buffers one set (pair with RecvStored).
func (c *Client) PipeSet(k core.Key, v core.Value) error {
	var num [24]byte
	data := strconv.AppendInt(num[:0], int64(v), 10)
	c.bw.WriteString("set ")
	writeInt(c.bw, int64(k))
	c.bw.WriteString(" 0 0 ")
	writeInt(c.bw, int64(len(data)))
	c.bw.WriteString("\r\n")
	c.bw.Write(data)
	_, err := c.bw.WriteString("\r\n")
	return err
}

// PipeDelete buffers one delete (pair with RecvDeleted).
func (c *Client) PipeDelete(k core.Key) error {
	c.bw.WriteString("delete ")
	writeInt(c.bw, int64(k))
	_, err := c.bw.WriteString("\r\n")
	return err
}

// Flush sends everything buffered.
func (c *Client) Flush() error { return c.bw.Flush() }

// RecvStored reads one set response.
func (c *Client) RecvStored() (stored bool, err error) {
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case bytes.Equal(line, []byte("STORED")):
		return true, nil
	case bytes.Equal(line, []byte("NOT_STORED")):
		return false, nil
	}
	return false, errorLine(line)
}

// RecvDeleted reads one delete response.
func (c *Client) RecvDeleted() (deleted bool, err error) {
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case bytes.Equal(line, []byte("DELETED")):
		return true, nil
	case bytes.Equal(line, []byte("NOT_FOUND")):
		return false, nil
	}
	return false, errorLine(line)
}

// RecvGet reads one single-key get response block.
func (c *Client) RecvGet() (v core.Value, ok bool, err error) {
	found := false
	var val core.Value
	err = c.readValues(func(_ core.Key, v core.Value) {
		found, val = true, v
	})
	return val, found, err
}

// readValues consumes VALUE blocks up to END (or an error line),
// delivering each (key, value) to f. The optional CURSOR trailer line of
// range/page responses is delivered to the caller via lastCursor.
func (c *Client) readValues(f func(k core.Key, v core.Value)) error {
	_, _, err := c.readValuesCursor(f)
	return err
}

func (c *Client) readValuesCursor(f func(k core.Key, v core.Value)) (token string, done bool, err error) {
	for {
		line, err := c.readLine()
		if err != nil {
			return "", false, err
		}
		switch {
		case bytes.Equal(line, []byte("END")):
			return token, done, nil
		case bytes.HasPrefix(line, []byte("VALUE ")):
			fields, _ := splitFields(line[len("VALUE "):], 4)
			if len(fields) < 3 {
				return "", false, fmt.Errorf("server: malformed VALUE line %q", line)
			}
			k, okK := parseInt(fields[0])
			n, okN := parseInt(fields[2])
			if !okK || !okN || n < 0 || n > maxDataLen {
				return "", false, fmt.Errorf("server: malformed VALUE line %q", line)
			}
			data := make([]byte, n+2)
			if _, err := readFull(c.br, data); err != nil {
				return "", false, err
			}
			v, okV := parseInt(trimCRLF(data))
			if !okV {
				return "", false, fmt.Errorf("server: non-numeric data block %q", data)
			}
			f(core.Key(k), core.Value(v))
		case bytes.HasPrefix(line, []byte("CURSOR ")):
			fields, _ := splitFields(line[len("CURSOR "):], 2)
			if len(fields) != 2 {
				return "", false, fmt.Errorf("server: malformed CURSOR line %q", line)
			}
			token = string(fields[0])
			done = string(fields[1]) == "1"
		default:
			if isErrorLine(line) {
				return "", false, errorLine(line)
			}
			return "", false, fmt.Errorf("server: unexpected response line %q", line)
		}
	}
}

// --- one-shot requests ----------------------------------------------------

// Get looks up one key.
func (c *Client) Get(k core.Key) (core.Value, bool, error) {
	if err := c.PipeGet(k); err != nil {
		return 0, false, err
	}
	if err := c.Flush(); err != nil {
		return 0, false, err
	}
	return c.RecvGet()
}

// Set stores k -> v if absent (the library's put semantics; NOT_STORED
// reports a present key).
func (c *Client) Set(k core.Key, v core.Value) (stored bool, err error) {
	if err := c.PipeSet(k, v); err != nil {
		return false, err
	}
	if err := c.Flush(); err != nil {
		return false, err
	}
	return c.RecvStored()
}

// Delete removes one key.
func (c *Client) Delete(k core.Key) (deleted bool, err error) {
	if err := c.PipeDelete(k); err != nil {
		return false, err
	}
	if err := c.Flush(); err != nil {
		return false, err
	}
	return c.RecvDeleted()
}

// MultiGet looks up keys in one mget request (one server-side batch).
// oks[i] reports whether keys[i] was present and vals[i] its value. The
// response omits misses, so hits are matched back to request indices by
// walking the response keys as an in-order subsequence of the request
// keys (duplicates resolve to the same value, like the Batcher
// contract).
func (c *Client) MultiGet(keys []core.Key, vals []core.Value, oks []bool) error {
	if len(keys) == 0 {
		return nil
	}
	if len(vals) != len(keys) || len(oks) != len(keys) {
		return fmt.Errorf("server: MultiGet result slices must match len(keys)")
	}
	for i := range oks {
		oks[i] = false
	}
	c.bw.WriteString("mget")
	for _, k := range keys {
		c.bw.WriteByte(' ')
		writeInt(c.bw, int64(k))
	}
	c.bw.WriteString("\r\n")
	if err := c.Flush(); err != nil {
		return err
	}
	i := 0
	return c.readValues(func(k core.Key, v core.Value) {
		for i < len(keys) && keys[i] != k {
			i++
		}
		if i < len(keys) {
			vals[i], oks[i] = v, true
			i++
		}
	})
}

// Range requests the first page of the window [lo, hi): up to max
// mappings in ascending key order, the resume token, and whether the
// window is already exhausted.
func (c *Client) Range(lo, hi core.Key, max int, f func(k core.Key, v core.Value)) (token string, done bool, err error) {
	c.bw.WriteString("range ")
	writeInt(c.bw, int64(lo))
	c.bw.WriteByte(' ')
	writeInt(c.bw, int64(hi))
	c.bw.WriteByte(' ')
	writeInt(c.bw, int64(max))
	c.bw.WriteString("\r\n")
	if err := c.Flush(); err != nil {
		return "", false, err
	}
	return c.readValuesCursor(f)
}

// Page resumes a paginated iteration from a token returned by Range or
// a previous Page — against this server or any other serving an
// equivalent spec (tokens pin no server state).
func (c *Client) Page(token string, max int, f func(k core.Key, v core.Value)) (next string, done bool, err error) {
	c.bw.WriteString("page ")
	c.bw.WriteString(token)
	c.bw.WriteByte(' ')
	writeInt(c.bw, int64(max))
	c.bw.WriteString("\r\n")
	if err := c.Flush(); err != nil {
		return "", false, err
	}
	return c.readValuesCursor(f)
}

// Stats fetches the server audit counters as a name -> value map.
func (c *Client) Stats() (map[string]uint64, error) {
	c.bw.WriteString("stats\r\n")
	if err := c.Flush(); err != nil {
		return nil, err
	}
	m := make(map[string]uint64)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if bytes.Equal(line, []byte("END")) {
			return m, nil
		}
		fields, _ := splitFields(line, 3)
		if len(fields) != 3 || string(fields[0]) != "STAT" {
			if isErrorLine(line) {
				return nil, errorLine(line)
			}
			return nil, fmt.Errorf("server: unexpected stats line %q", line)
		}
		v, ok := parseInt(fields[2])
		if !ok {
			return nil, fmt.Errorf("server: unexpected stats line %q", line)
		}
		m[string(fields[1])] = uint64(v)
	}
}

// writeInt writes a decimal int64 without allocating.
func writeInt(bw *bufio.Writer, n int64) {
	var num [24]byte
	bw.Write(strconv.AppendInt(num[:0], n, 10))
}

// readFull is io.ReadFull over the client's buffered reader (local so
// the hot VALUE path avoids the io import dance).
func readFull(br *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
