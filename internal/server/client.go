// Client is a minimal pipelined memcache-text client for the csdsd
// dialect: csdsbench -net drives its closed-loop workload through it,
// the examples are thin wrappers around it, and the socket tests speak
// through it. It is deliberately synchronous per method — pipelining is
// explicit (Pipe* to buffer requests, Flush to send, Recv* to collect
// responses in order), which is exactly the shape a closed-loop load
// generator wants.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"csds/internal/core"
	"csds/internal/xrand"
)

// ErrBusy is the typed form of SERVER_ERROR busy: the server received
// the request and shed it without executing it. Safe to retry for every
// operation class — the shed is a guarantee nothing was applied.
var ErrBusy = errors.New("server: busy (request shed, not executed)")

// RetryableError wraps a write failure the caller may safely reissue:
// the server provably did not apply the operation (today that means a
// busy shed). Transport failures mid-write do NOT produce it — after
// those the outcome is unknown and blind reissue could double-apply, so
// the raw error surfaces and the policy decision stays with the caller.
type RetryableError struct{ Err error }

func (e *RetryableError) Error() string { return "retryable: " + e.Err.Error() }
func (e *RetryableError) Unwrap() error { return e.Err }

// RetryPolicy governs the client's per-operation recovery discipline.
// The zero value disables it all, preserving raw one-shot semantics.
type RetryPolicy struct {
	// Budget is the max retries per operation beyond the first attempt.
	// 0 disables retrying (and the deadline still applies if set).
	Budget int
	// OpDeadline, when positive, bounds each attempt: the connection
	// deadline is armed before the request and a slow or dead server
	// surfaces a timeout instead of hanging the caller.
	OpDeadline time.Duration
	// BaseBackoff seeds the jittered exponential backoff between
	// attempts (default 2ms); MaxBackoff caps it (default 100ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	return p
}

// Client is one connection. Not safe for concurrent use; a load
// generator opens one per worker.
type Client struct {
	nc   net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	addr string
	rng  *xrand.Rng

	// Policy is the recovery discipline for the one-shot methods (Get,
	// Set, Delete, MultiGet, Range, Page, Stats). With a Budget, reads
	// and cursor pages retry transparently — busy sheds retry on the
	// same connection, transport faults redial first (every read is
	// idempotent, and a page token re-requests exactly the same page) —
	// while writes never auto-retry: they surface *RetryableError when
	// reissue is provably safe and the raw error otherwise. Set it
	// before issuing operations; the explicit Pipe*/Recv* layer is
	// never retried (the caller owns pipeline recovery).
	Policy RetryPolicy

	// Retries counts attempts beyond the first across every policy-
	// retried operation on this client — the observable evidence of how
	// often the recovery discipline engaged (the wire chaos cell reads
	// it to compute its fault-hit fraction).
	Retries uint64
}

// Dial connects to a csdsd server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{addr: addr, rng: xrand.New(uint64(time.Now().UnixNano()) | 1)}
	c.attach(nc)
	return c, nil
}

func (c *Client) attach(nc net.Conn) {
	c.nc = nc
	c.br = bufio.NewReaderSize(nc, 1<<16)
	c.bw = bufio.NewWriterSize(nc, 1<<16)
}

// redial replaces a dead connection in place (drops the old socket,
// keeps addr and policy). Used by the retry path after transport
// faults, where buffered protocol state is untrustworthy.
func (c *Client) redial() error {
	c.nc.Close()
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.attach(nc)
	return nil
}

// jitteredBackoff returns a uniformly jittered delay in [b/2, b],
// capped at max: exponential growth spreads contending clients apart,
// the jitter keeps them from re-synchronizing on the retry clock.
func jitteredBackoff(rng *xrand.Rng, b, max time.Duration) time.Duration {
	if b > max {
		b = max
	}
	half := int64(b / 2)
	return time.Duration(half + rng.Int63n(half+1))
}

// DialRetry dials with retries over the patience window — the handshake
// of scripts that start a server and a client together. The retry clock
// is jittered exponential backoff (5ms doubling, capped at 400ms and by
// the remaining patience), so a fleet of clients racing one booting
// server neither hammers it in lockstep nor sleeps past its arrival.
func DialRetry(addr string, patience time.Duration) (*Client, error) {
	deadline := time.Now().Add(patience)
	rng := xrand.New(uint64(time.Now().UnixNano()) | 1)
	backoff := 5 * time.Millisecond
	const maxBackoff = 400 * time.Millisecond
	for {
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("server: dial %s: gave up after %v: %w", addr, patience, err)
		}
		sleep := jitteredBackoff(rng, backoff, maxBackoff)
		if sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// Sever closes the underlying connection without the quit handshake —
// a simulated partition mid-session (the wire chaos cell's client-side
// conn.drop). The next operation observes a transport failure; under a
// retry policy it redials transparently.
func (c *Client) Sever() { c.nc.Close() }

// Redial tears the connection down and reconnects, discarding buffered
// protocol state. Public for callers that own their own write-reissue
// discipline: after a transport fault mid-write the stream is poisoned
// and must be replaced before the reissue.
func (c *Client) Redial() error { return c.redial() }

// Close sends quit (best-effort) and closes the connection.
func (c *Client) Close() error {
	c.bw.WriteString("quit\r\n")
	c.bw.Flush()
	return c.nc.Close()
}

// readLine returns the next response line without its CRLF.
func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	return trimCRLF(line), nil
}

// errorLine converts a server error response into a Go error. The busy
// shed maps to the typed sentinel so retry logic (here and in callers)
// can distinguish "provably not executed" from everything else.
func errorLine(line []byte) error {
	if bytes.Equal(line, []byte("SERVER_ERROR busy")) {
		return ErrBusy
	}
	return fmt.Errorf("server: %s", line)
}

// arm applies the per-attempt operation deadline, if the policy set one.
func (c *Client) arm() {
	if c.Policy.OpDeadline > 0 {
		c.nc.SetDeadline(time.Now().Add(c.Policy.OpDeadline))
	}
}

// withRetry runs one idempotent operation under the client's policy:
// arm the deadline, attempt, and on failure back off (jittered
// exponential) and retry within the budget. A busy shed leaves the
// protocol stream clean — the same connection retries. Anything else is
// a transport fault: the connection is condemned and redialed before
// the next attempt, because half-read responses poison the stream.
func (c *Client) withRetry(do func() error) error {
	c.arm()
	err := do()
	if err == nil || c.Policy.Budget <= 0 {
		return err
	}
	p := c.Policy.withDefaults()
	backoff := p.BaseBackoff
	for attempt := 0; attempt < p.Budget; attempt++ {
		if !errors.Is(err, ErrBusy) {
			if rerr := c.redial(); rerr != nil {
				return fmt.Errorf("%w (redial failed: %v)", err, rerr)
			}
		}
		time.Sleep(jitteredBackoff(c.rng, backoff, p.MaxBackoff))
		if backoff < p.MaxBackoff {
			backoff *= 2
		}
		c.arm()
		c.Retries++
		if err = do(); err == nil {
			return nil
		}
	}
	return err
}

// isErrorLine reports whether line is one of the protocol error replies.
func isErrorLine(line []byte) bool {
	return bytes.Equal(line, []byte("ERROR")) ||
		bytes.HasPrefix(line, []byte("CLIENT_ERROR")) ||
		bytes.HasPrefix(line, []byte("SERVER_ERROR"))
}

// --- pipelined request writers -------------------------------------------

// PipeGet buffers one single-key get (pair with RecvGet).
func (c *Client) PipeGet(k core.Key) error {
	c.bw.WriteString("get ")
	writeInt(c.bw, int64(k))
	_, err := c.bw.WriteString("\r\n")
	return err
}

// PipeSet buffers one set (pair with RecvStored).
func (c *Client) PipeSet(k core.Key, v core.Value) error {
	var num [24]byte
	data := strconv.AppendInt(num[:0], int64(v), 10)
	c.bw.WriteString("set ")
	writeInt(c.bw, int64(k))
	c.bw.WriteString(" 0 0 ")
	writeInt(c.bw, int64(len(data)))
	c.bw.WriteString("\r\n")
	c.bw.Write(data)
	_, err := c.bw.WriteString("\r\n")
	return err
}

// PipeDelete buffers one delete (pair with RecvDeleted).
func (c *Client) PipeDelete(k core.Key) error {
	c.bw.WriteString("delete ")
	writeInt(c.bw, int64(k))
	_, err := c.bw.WriteString("\r\n")
	return err
}

// Flush sends everything buffered.
func (c *Client) Flush() error { return c.bw.Flush() }

// RecvStored reads one set response.
func (c *Client) RecvStored() (stored bool, err error) {
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case bytes.Equal(line, []byte("STORED")):
		return true, nil
	case bytes.Equal(line, []byte("NOT_STORED")):
		return false, nil
	}
	return false, errorLine(line)
}

// RecvDeleted reads one delete response.
func (c *Client) RecvDeleted() (deleted bool, err error) {
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case bytes.Equal(line, []byte("DELETED")):
		return true, nil
	case bytes.Equal(line, []byte("NOT_FOUND")):
		return false, nil
	}
	return false, errorLine(line)
}

// RecvGet reads one single-key get response block.
func (c *Client) RecvGet() (v core.Value, ok bool, err error) {
	found := false
	var val core.Value
	err = c.readValues(func(_ core.Key, v core.Value) {
		found, val = true, v
	})
	return val, found, err
}

// readValues consumes VALUE blocks up to END (or an error line),
// delivering each (key, value) to f. The optional CURSOR trailer line of
// range/page responses is delivered to the caller via lastCursor.
func (c *Client) readValues(f func(k core.Key, v core.Value)) error {
	_, _, err := c.readValuesCursor(f)
	return err
}

func (c *Client) readValuesCursor(f func(k core.Key, v core.Value)) (token string, done bool, err error) {
	for {
		line, err := c.readLine()
		if err != nil {
			return "", false, err
		}
		switch {
		case bytes.Equal(line, []byte("END")):
			return token, done, nil
		case bytes.HasPrefix(line, []byte("VALUE ")):
			fields, _ := splitFields(line[len("VALUE "):], 4)
			if len(fields) < 3 {
				return "", false, fmt.Errorf("server: malformed VALUE line %q", line)
			}
			k, okK := parseInt(fields[0])
			n, okN := parseInt(fields[2])
			if !okK || !okN || n < 0 || n > maxDataLen {
				return "", false, fmt.Errorf("server: malformed VALUE line %q", line)
			}
			data := make([]byte, n+2)
			if _, err := readFull(c.br, data); err != nil {
				return "", false, err
			}
			v, okV := parseInt(trimCRLF(data))
			if !okV {
				return "", false, fmt.Errorf("server: non-numeric data block %q", data)
			}
			f(core.Key(k), core.Value(v))
		case bytes.HasPrefix(line, []byte("CURSOR ")):
			fields, _ := splitFields(line[len("CURSOR "):], 2)
			if len(fields) != 2 {
				return "", false, fmt.Errorf("server: malformed CURSOR line %q", line)
			}
			token = string(fields[0])
			done = string(fields[1]) == "1"
		default:
			if isErrorLine(line) {
				return "", false, errorLine(line)
			}
			return "", false, fmt.Errorf("server: unexpected response line %q", line)
		}
	}
}

// --- one-shot requests ----------------------------------------------------

// Get looks up one key (retried under Policy: idempotent).
func (c *Client) Get(k core.Key) (core.Value, bool, error) {
	var v core.Value
	var ok bool
	err := c.withRetry(func() error {
		if err := c.PipeGet(k); err != nil {
			return err
		}
		if err := c.Flush(); err != nil {
			return err
		}
		var err error
		v, ok, err = c.RecvGet()
		return err
	})
	return v, ok, err
}

// Set stores k -> v if absent (the library's put semantics; NOT_STORED
// reports a present key). Writes are never auto-retried: a busy shed —
// provably not executed — comes back as *RetryableError for the caller
// to reissue; any other failure surfaces raw because the outcome on the
// server is unknown.
func (c *Client) Set(k core.Key, v core.Value) (stored bool, err error) {
	c.arm()
	if err := c.PipeSet(k, v); err != nil {
		return false, err
	}
	if err := c.Flush(); err != nil {
		return false, err
	}
	stored, err = c.RecvStored()
	if errors.Is(err, ErrBusy) {
		return false, &RetryableError{Err: err}
	}
	return stored, err
}

// Delete removes one key. Same write discipline as Set: busy sheds are
// *RetryableError, everything else surfaces raw.
func (c *Client) Delete(k core.Key) (deleted bool, err error) {
	c.arm()
	if err := c.PipeDelete(k); err != nil {
		return false, err
	}
	if err := c.Flush(); err != nil {
		return false, err
	}
	deleted, err = c.RecvDeleted()
	if errors.Is(err, ErrBusy) {
		return false, &RetryableError{Err: err}
	}
	return deleted, err
}

// MultiGet looks up keys in one mget request (one server-side batch).
// oks[i] reports whether keys[i] was present and vals[i] its value. The
// response omits misses, so hits are matched back to request indices by
// walking the response keys as an in-order subsequence of the request
// keys (duplicates resolve to the same value, like the Batcher
// contract).
func (c *Client) MultiGet(keys []core.Key, vals []core.Value, oks []bool) error {
	if len(keys) == 0 {
		return nil
	}
	if len(vals) != len(keys) || len(oks) != len(keys) {
		return fmt.Errorf("server: MultiGet result slices must match len(keys)")
	}
	return c.withRetry(func() error {
		for i := range oks {
			oks[i] = false
		}
		c.bw.WriteString("mget")
		for _, k := range keys {
			c.bw.WriteByte(' ')
			writeInt(c.bw, int64(k))
		}
		c.bw.WriteString("\r\n")
		if err := c.Flush(); err != nil {
			return err
		}
		i := 0
		return c.readValues(func(k core.Key, v core.Value) {
			for i < len(keys) && keys[i] != k {
				i++
			}
			if i < len(keys) {
				vals[i], oks[i] = v, true
				i++
			}
		})
	})
}

// Range requests the first page of the window [lo, hi): up to max
// mappings in ascending key order, the resume token, and whether the
// window is already exhausted.
func (c *Client) Range(lo, hi core.Key, max int, f func(k core.Key, v core.Value)) (token string, done bool, err error) {
	// The page buffers internally per attempt and replays to f only on
	// success, so a retried page never delivers duplicate mappings.
	var page []core.KV
	err = c.withRetry(func() error {
		page = page[:0]
		c.bw.WriteString("range ")
		writeInt(c.bw, int64(lo))
		c.bw.WriteByte(' ')
		writeInt(c.bw, int64(hi))
		c.bw.WriteByte(' ')
		writeInt(c.bw, int64(max))
		c.bw.WriteString("\r\n")
		if err := c.Flush(); err != nil {
			return err
		}
		var err error
		token, done, err = c.readValuesCursor(func(k core.Key, v core.Value) {
			page = append(page, core.KV{K: k, V: v})
		})
		return err
	})
	if err != nil {
		return "", false, err
	}
	for _, kv := range page {
		f(kv.K, kv.V)
	}
	return token, done, nil
}

// Page resumes a paginated iteration from a token returned by Range or
// a previous Page — against this server or any other serving an
// equivalent spec (tokens pin no server state).
func (c *Client) Page(token string, max int, f func(k core.Key, v core.Value)) (next string, done bool, err error) {
	// A page token is a pure position: re-requesting it is idempotent,
	// so transparent retry is safe. Same buffered replay as Range.
	var page []core.KV
	err = c.withRetry(func() error {
		page = page[:0]
		c.bw.WriteString("page ")
		c.bw.WriteString(token)
		c.bw.WriteByte(' ')
		writeInt(c.bw, int64(max))
		c.bw.WriteString("\r\n")
		if err := c.Flush(); err != nil {
			return err
		}
		var err error
		next, done, err = c.readValuesCursor(func(k core.Key, v core.Value) {
			page = append(page, core.KV{K: k, V: v})
		})
		return err
	})
	if err != nil {
		return "", false, err
	}
	for _, kv := range page {
		f(kv.K, kv.V)
	}
	return next, done, nil
}

// Stats fetches the server audit counters as a name -> value map
// (retried under Policy: a read of counters is idempotent).
func (c *Client) Stats() (map[string]uint64, error) {
	var m map[string]uint64
	err := c.withRetry(func() error {
		var err error
		m, err = c.statsOnce()
		return err
	})
	return m, err
}

func (c *Client) statsOnce() (map[string]uint64, error) {
	c.bw.WriteString("stats\r\n")
	if err := c.Flush(); err != nil {
		return nil, err
	}
	m := make(map[string]uint64)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if bytes.Equal(line, []byte("END")) {
			return m, nil
		}
		fields, _ := splitFields(line, 3)
		if len(fields) != 3 || string(fields[0]) != "STAT" {
			if isErrorLine(line) {
				return nil, errorLine(line)
			}
			return nil, fmt.Errorf("server: unexpected stats line %q", line)
		}
		v, ok := parseInt(fields[2])
		if !ok {
			return nil, fmt.Errorf("server: unexpected stats line %q", line)
		}
		m[string(fields[1])] = uint64(v)
	}
}

// writeInt writes a decimal int64 without allocating.
func writeInt(bw *bufio.Writer, n int64) {
	var num [24]byte
	bw.Write(strconv.AppendInt(num[:0], n, 10))
}

// readFull is io.ReadFull over the client's buffered reader (local so
// the hot VALUE path avoids the io import dance).
func readFull(br *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
