// faultConn is the transport face of the chaos plane: a net.Conn whose
// reads and writes pass through the connection's fault injector. Slow
// connections stall before I/O, torn connections deliver a prefix of a
// write and die, dropped connections die outright. Deadlines, addresses
// and Close delegate to the real conn, so drain interrupts and idle
// eviction work unchanged on a faulted connection.
package server

import (
	"errors"
	"net"

	"csds/internal/fault"
)

var (
	errInjectedDrop = errors.New("server: fault: injected connection drop")
	errInjectedTear = errors.New("server: fault: injected torn write")
)

type faultConn struct {
	net.Conn
	inj *fault.Injector
}

func (f *faultConn) Read(p []byte) (int, error) {
	f.inj.Delay(fault.ConnSlow)
	if f.inj.Fire(fault.ConnDrop) {
		f.Conn.Close()
		return 0, errInjectedDrop
	}
	return f.Conn.Read(p)
}

func (f *faultConn) Write(p []byte) (int, error) {
	f.inj.Delay(fault.ConnSlow)
	if f.inj.Fire(fault.ConnTorn) && len(p) > 1 {
		// Half the buffer reaches the wire, then the conn dies: the
		// client sees a truncated response it must not mistake for a
		// complete one (the protocol's CRLF/END framing guarantees it
		// cannot).
		n, _ := f.Conn.Write(p[: len(p)/2 : len(p)/2])
		f.Conn.Close()
		return n, errInjectedTear
	}
	if f.inj.Fire(fault.ConnDrop) {
		f.Conn.Close()
		return 0, errInjectedDrop
	}
	return f.Conn.Write(p)
}
