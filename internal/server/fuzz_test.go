package server

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"

	"csds/internal/core"
	"csds/internal/stats"
	"csds/internal/xrand"

	_ "csds/internal/combinator"
	_ "csds/internal/hashtable"
	_ "csds/internal/list"
)

// FuzzWireProtocol drives a full session — parser, burst batching, and
// handler — over arbitrary bytes. The contract under test: whatever the
// wire carries (malformed commands, truncated frames, oversized counts,
// corrupted cursor tokens, binary garbage), the server never panics and
// every emitted response line is one of the protocol's legal shapes.
func FuzzWireProtocol(f *testing.F) {
	// Valid traffic: pipelined bursts of every command class.
	f.Add([]byte("set 1 0 0 1\r\n7\r\nget 1\r\ngets 1 2\r\nmget 1 2 3\r\ndelete 1\r\nquit\r\n"))
	f.Add([]byte("set 5 0 0 2 noreply\r\n42\r\nget 5\r\nrange 0 100 16\r\nstats\r\nversion\r\n"))
	// A structurally valid cursor token (well-formed base64; the checksum
	// check inside DecodeCursorToken rejects or accepts — either way, no
	// panic) and corrupted variants.
	tok := core.CursorToken{Lo: 1, Hi: 100, Pos: 10}.Encode()
	f.Add([]byte("range 1 100 8\r\npage " + tok + " 8\r\n"))
	f.Add([]byte("page " + tok[:len(tok)-2] + "xx 8\r\n"))
	f.Add([]byte("page AAAAAAAA 8\r\npage " + strings.Repeat("B", maxTokenLen) + " 4\r\n"))
	// Malformed and truncated frames.
	f.Add([]byte("set 1 0 0 99999\r\n"))
	f.Add([]byte("set 1 0 0 5\r\nab"))
	f.Add([]byte("get " + strings.Repeat("9", 30) + "\r\n"))
	f.Add([]byte("get\r\n\r\n\x00\x01\x02\r\nbogus\r\n"))
	f.Add([]byte(strings.Repeat("a", maxLineLen+10)))
	f.Add([]byte("mget " + strings.Repeat("7 ", 300) + "\r\n"))

	srv, err := New(Config{Spec: "sharded(2,hashtable/lazy)", Size: 512, UseEBR: true, MaxBurst: 8})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var out bytes.Buffer
		fuzzSession(srv, data, &out)
		checkResponseShape(t, out.Bytes())
	})
}

// fuzzSession runs one connection worth of input through the real
// session loop, with the socket replaced by a byte reader and the write
// queue draining into out — the same machinery serveConn wires up, minus
// the network.
func fuzzSession(srv *Server, in []byte, out io.Writer) {
	th := &stats.Thread{}
	ctx := &core.Ctx{ID: 1, Rng: xrand.New(1), Stats: th}
	if srv.dom != nil {
		ctx.Epoch = srv.dom.Register()
		defer ctx.Epoch.Unregister()
	}
	q := newWriteQueue(out, 4)
	defer q.Close()
	sess := &session{
		srv:  srv,
		ctx:  ctx,
		br:   bufio.NewReaderSize(bytes.NewReader(in), maxLineLen),
		q:    q,
		reqs: make([]Request, srv.cfg.MaxBurst),
	}
	sess.run()
}

// checkResponseShape asserts every line the server emitted is a legal
// protocol response. Garbage in must map to ERROR/CLIENT_ERROR/
// SERVER_ERROR lines — never to an unparseable frame that would
// desynchronize a conforming client.
func checkResponseShape(t *testing.T, out []byte) {
	t.Helper()
	for len(out) > 0 {
		nl := bytes.IndexByte(out, '\n')
		if nl < 0 {
			t.Fatalf("response ends mid-line: %q", out)
		}
		line := out[:nl]
		out = out[nl+1:]
		if len(line) == 0 || line[len(line)-1] != '\r' {
			t.Fatalf("response line without CRLF: %q", line)
		}
		line = line[:len(line)-1]
		switch {
		case bytes.HasPrefix(line, []byte("VALUE ")):
			fields, bad := splitFields(line[len("VALUE "):], 4)
			if bad || len(fields) < 3 {
				t.Fatalf("malformed VALUE line: %q", line)
			}
			n, ok := parseInt(fields[2])
			if !ok || n < 0 || n > maxDataLen || int64(len(out)) < n+2 {
				t.Fatalf("VALUE declares bad byte count: %q", line)
			}
			out = out[n:] // skip the data block and its CRLF below
			if out[0] != '\r' || out[1] != '\n' {
				t.Fatalf("data block not CRLF-terminated")
			}
			out = out[2:]
		case bytes.HasPrefix(line, []byte("CURSOR ")):
			fields, bad := splitFields(line[len("CURSOR "):], 2)
			if bad || len(fields) != 2 {
				t.Fatalf("malformed CURSOR line: %q", line)
			}
		case bytes.HasPrefix(line, []byte("STAT ")),
			bytes.HasPrefix(line, []byte("VERSION ")),
			bytes.HasPrefix(line, []byte("CLIENT_ERROR ")),
			bytes.HasPrefix(line, []byte("SERVER_ERROR ")):
		case bytes.Equal(line, []byte("END")),
			bytes.Equal(line, []byte("STORED")),
			bytes.Equal(line, []byte("NOT_STORED")),
			bytes.Equal(line, []byte("DELETED")),
			bytes.Equal(line, []byte("NOT_FOUND")),
			bytes.Equal(line, []byte("ERROR")):
		default:
			t.Fatalf("unrecognized response line: %q", line)
		}
	}
}
