// Request execution: one parsed burst in, one response buffer out. The
// handler layer knows the structure (core.Set and its optional Batcher /
// Cursor extensions) and the audit counters, but nothing about sockets —
// tests and the fuzzer drive it through session.run over plain readers.
package server

import (
	"strconv"
	"time"

	"csds/internal/core"
	"csds/internal/fault"
)

// Protocol response fragments.
var (
	respStored    = []byte("STORED\r\n")
	respNotStored = []byte("NOT_STORED\r\n")
	respDeleted   = []byte("DELETED\r\n")
	respNotFound  = []byte("NOT_FOUND\r\n")
	respEnd       = []byte("END\r\n")
	respBusy      = []byte("SERVER_ERROR busy\r\n")
	respVersion   = []byte("VERSION csdsd/1 (csds memcache-text)\r\n")
)

// maxMergedKeys bounds one merged pipeline burst's MultiGet: enough to
// amortize the batch bracket across a deep pipeline, small enough to
// bound the reply buffer a slow reader can pin.
const maxMergedKeys = 1024

// execBurst runs a parsed pipeline burst in request order, appending
// every response to buf. Consecutive get-class requests are merged into
// a single core.Batcher MultiGet — the pipeline-to-batch promotion that
// lets a deep burst pay one batch bracket (and ride the shard
// flat-combining path) instead of one synchronization episode per key.
// It returns the grown buffer and whether the connection must close
// after the buffer is flushed (quit or a fatal protocol error).
func (s *session) execBurst(reqs []Request, buf []byte) (_ []byte, closeAfter bool) {
	// Degraded mode is sampled once per burst: under saturation the
	// read paths serve hits but skip cache fills and admission work.
	s.ctx.SkipCacheFill = s.srv.degraded()
	i := 0
	for i < len(reqs) {
		// The injected panic lands between requests of a burst — after
		// some responses are already rendered and possibly mid-pipeline —
		// which is exactly the shape serveConn's recovery contract must
		// absorb (unregister the EBR record, flush what was produced).
		if s.inj.Fire(fault.HandlerPanic) {
			panic("fault: injected handler panic")
		}
		r := &reqs[i]
		switch r.Op {
		case OpGet:
			// Extend the merge run while the next requests are also gets
			// with the same cas mode and the merged key count stays
			// bounded.
			j, total := i+1, len(r.Keys)
			for j < len(reqs) && reqs[j].Op == OpGet && reqs[j].WithCAS == r.WithCAS &&
				total+len(reqs[j].Keys) <= maxMergedKeys {
				total += len(reqs[j].Keys)
				j++
			}
			buf = s.execGetRun(reqs[i:j], total, r.WithCAS, buf)
			i = j
			continue
		case OpSet:
			buf = s.execSet(r, buf)
		case OpDelete:
			buf = s.execDelete(r, buf)
		case OpRange, OpPage:
			buf = s.execPage(r, buf)
		case OpStats:
			buf = s.execStats(buf)
		case OpVersion:
			buf = append(buf, respVersion...)
		case OpQuit:
			return buf, true
		case OpError:
			buf = append(buf, r.Err.Line...)
			buf = append(buf, '\r', '\n')
			if r.Err.Fatal {
				return buf, true
			}
		}
		i++
	}
	return buf, false
}

// appendValue renders one VALUE block: the decimal value is the data
// payload, its byte length the declared size. gets adds a cas column;
// this store has no compare-and-swap generation, so the value itself
// serves (any concurrent overwrite is a delete+set, which changes it).
func appendValue(buf []byte, k core.Key, v core.Value, withCAS bool) []byte {
	var num [24]byte
	data := strconv.AppendInt(num[:0], int64(v), 10)
	buf = append(buf, "VALUE "...)
	buf = strconv.AppendInt(buf, int64(k), 10)
	buf = append(buf, " 0 "...)
	buf = strconv.AppendInt(buf, int64(len(data)), 10)
	if withCAS {
		buf = append(buf, ' ')
		buf = append(buf, data...)
	}
	buf = append(buf, '\r', '\n')
	buf = append(buf, data...)
	buf = append(buf, '\r', '\n')
	return buf
}

// admit claims an in-flight slot for this session's next request,
// first letting the fault plane force a shed (the injected failure is
// indistinguishable from real saturation on the wire, which is the
// point — clients must handle busy identically either way).
func (s *session) admit() bool {
	if s.inj.Fire(fault.ShedBusy) {
		return false
	}
	return s.srv.acquire()
}

// execGetRun answers a run of merged get requests with one structure
// crossing: the concatenated key list goes through MultiGet when the
// structure batches (every registry structure does), falling back to
// looped Gets otherwise. Results replay per request, in request order,
// misses omitted per the memcache contract, each request closed by END.
func (s *session) execGetRun(reqs []Request, total int, withCAS bool, buf []byte) []byte {
	if !s.admit() {
		s.srv.audit.shed.Add(uint64(len(reqs)))
		for range reqs {
			buf = append(buf, respBusy...)
		}
		return buf
	}
	defer s.srv.release()

	keys := s.keyScratch[:0]
	for i := range reqs {
		keys = append(keys, reqs[i].Keys...)
	}
	s.keyScratch = keys
	vals := s.valScratch[:0]
	oks := s.okScratch[:0]
	for range keys {
		vals = append(vals, 0)
		oks = append(oks, false)
	}
	s.valScratch, s.okScratch = vals, oks

	if s.srv.batcher != nil && len(keys) > 1 {
		s.srv.batcher.MultiGet(s.ctx, keys, func(i int, v core.Value, ok bool) {
			vals[i], oks[i] = v, ok
		})
	} else {
		for i, k := range keys {
			vals[i], oks[i] = s.srv.set.Get(s.ctx, k)
		}
	}
	off := 0
	for i := range reqs {
		for j, k := range reqs[i].Keys {
			hit := oks[off+j]
			s.ctx.Stats.RecordRead(hit)
			if hit {
				buf = appendValue(buf, k, vals[off+j], withCAS)
			}
		}
		off += len(reqs[i].Keys)
		buf = append(buf, respEnd...)
	}
	return buf
}

// execSet applies one insert-if-absent store.
func (s *session) execSet(r *Request, buf []byte) []byte {
	if !s.admit() {
		s.srv.audit.shed.Add(1)
		if r.NoReply {
			return buf
		}
		return append(buf, respBusy...)
	}
	ok := s.srv.set.Put(s.ctx, r.SetKey, r.SetVal)
	s.srv.release()
	s.ctx.Stats.RecordInsert(ok)
	if r.NoReply {
		return buf
	}
	if ok {
		return append(buf, respStored...)
	}
	return append(buf, respNotStored...)
}

// execDelete applies one remove.
func (s *session) execDelete(r *Request, buf []byte) []byte {
	if !s.admit() {
		s.srv.audit.shed.Add(1)
		if r.NoReply {
			return buf
		}
		return append(buf, respBusy...)
	}
	ok := s.srv.set.Remove(s.ctx, r.Keys[0])
	s.srv.release()
	s.ctx.Stats.RecordRemove(ok)
	if r.NoReply {
		return buf
	}
	if ok {
		return append(buf, respDeleted...)
	}
	return append(buf, respNotFound...)
}

// execPage serves one ordered page: range opens a cursor over [Lo, Hi),
// page resumes one from the opaque token. The response streams the
// page's VALUE blocks followed by
//
//	CURSOR <token> <done>\r\nEND\r\n
//
// where token resumes the iteration (done 1 means exhausted; the token
// then points at the window end and further pages are empty). The token
// pins no server state — it survives reconnects, other servers over an
// equivalent spec, and process restarts (the socket test proves it).
func (s *session) execPage(r *Request, buf []byte) []byte {
	var pc *core.PageCursor
	var err error
	if r.Op == OpRange {
		pc, err = core.OpenCursor(s.srv.set, r.Lo, r.Hi)
	} else {
		pc, err = core.ResumeCursor(s.srv.set, r.Token)
	}
	if err != nil {
		// Corrupt or foreign tokens error in DecodeCursorToken — a
		// client mistake, never a server fault or a silently wrong page.
		buf = append(buf, "CLIENT_ERROR bad cursor token\r\n"...)
		return buf
	}
	// Pages shed before point ops: under degradation the long-bracket
	// requests are the first load dropped (they pin an epoch bracket and
	// a response buffer for the whole page).
	if s.srv.degraded() || !s.admit() {
		s.srv.audit.shed.Add(1)
		return append(buf, respBusy...)
	}
	keys := 0
	pageStart := time.Now()
	token, done := pc.Next(s.ctx, r.Max, func(k core.Key, v core.Value) bool {
		keys++
		buf = appendValue(buf, k, v, false)
		return true
	})
	s.srv.release()
	s.ctx.Stats.RecordPage(keys, uint64(time.Since(pageStart)))
	if done {
		s.ctx.Stats.RecordCursorScan()
	}
	buf = append(buf, "CURSOR "...)
	buf = append(buf, token...)
	if done {
		buf = append(buf, " 1\r\n"...)
	} else {
		buf = append(buf, " 0\r\n"...)
	}
	buf = append(buf, respEnd...)
	return buf
}

// execStats renders the audit counters: the aggregate of every closed
// connection plus this session's own live slot (other live connections
// fold in when they close — reading their hot counters mid-flight would
// race). The lock_waits / restarts / ops triple is the practical-wait-
// freedom SLA evidence the examples audit over the wire.
func (s *session) execStats(buf []byte) []byte {
	a := s.srv.auditSnapshot()
	a.Ops += s.ctx.Stats.Ops
	a.LockWaits += s.ctx.Stats.LockWaits
	a.Restarts += s.ctx.Stats.Restarts
	a.CombineStalls += s.ctx.Stats.CombineStalls
	if s.ctx.Stats.MaxWaitNs > a.MaxWaitNs {
		a.MaxWaitNs = s.ctx.Stats.MaxWaitNs
	}
	stat := func(name string, v uint64) {
		buf = append(buf, "STAT "...)
		buf = append(buf, name...)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, v, 10)
		buf = append(buf, '\r', '\n')
	}
	stat("conns", a.Conns)
	stat("ops", a.Ops)
	stat("lock_waits", a.LockWaits)
	stat("restarts", a.Restarts)
	stat("max_wait_ns", a.MaxWaitNs)
	stat("shed", a.Shed)
	stat("inflight", a.Inflight)
	stat("evictions", a.Evictions)
	stat("watchdog_fires", a.WatchdogFires)
	stat("combine_stalls", a.CombineStalls)
	stat("faults", a.Faults)
	stat("retired", a.Retired)
	stat("reclaimed", a.Reclaimed)
	buf = append(buf, respEnd...)
	return buf
}
