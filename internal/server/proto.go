// Package server fronts any composite-spec structure of this module with
// the memcache text protocol over TCP — the system shape the paper uses
// to motivate CSDSs (Memcached's big concurrent hash table serving
// millions of connections). The package splits into three layers so each
// is testable without the one below:
//
//	proto.go    wire grammar: request parsing with hard frame limits —
//	            malformed, truncated or oversized input is a protocol
//	            error (or a fatal framing loss), never a panic;
//	handler.go  request execution against a core.Set: pipelined get
//	            bursts ride one core.Batcher MultiGet (and with it the
//	            shard flat-combining path), range/page stream ordered
//	            pages and return the opaque resumable cursor token;
//	server.go   connection machinery: bounded per-connection write
//	            queues (backpressure), a global in-flight limit that
//	            sheds load with SERVER_ERROR busy, and graceful drain
//	            that flushes in-flight responses, unregisters every
//	            connection's EBR record and quiesces the domain.
//
// The dialect: keys and values are the module's 64-bit integers, written
// in decimal (the paper's workloads; larger payloads are "a pointer",
// which a wire protocol renders as the application's own indirection).
// set stores only absent keys — the paper's put semantics — answering
// NOT_STORED for a present key exactly like memcached's add; overwrite
// is delete + set. See README "Serving over the network" for the full
// protocol table.
package server

import (
	"bufio"
	"fmt"
	"io"

	"csds/internal/core"
)

// Frame limits. Input beyond them is rejected before any allocation is
// sized by attacker-controlled numbers.
const (
	// maxLineLen bounds one command line (also the bufio.Reader size, so
	// an overlong line surfaces as bufio.ErrBufferFull — fatal, since the
	// line tail would desynchronize the stream).
	maxLineLen = 4096
	// maxKeysPerReq bounds the key list of one get/gets/mget/delete.
	maxKeysPerReq = 256
	// maxDataLen bounds a set data block: a decimal int64 is at most 20
	// bytes including the sign.
	maxDataLen = 20
	// maxPageMax bounds the page budget of one range/page request.
	maxPageMax = 4096
	// maxTokenLen bounds the cursor-token operand (the real token is 48
	// bytes; anything longer is corrupt by construction).
	maxTokenLen = 128
)

// Op enumerates the request kinds of the dialect.
type Op uint8

const (
	// OpError is a request that failed to parse: Err holds the response
	// line and whether the framing is lost (connection must close).
	OpError Op = iota
	// OpGet is get/gets/mget: look up Keys (gets adds a cas column).
	OpGet
	// OpSet is set/add: insert SetKey -> SetVal if absent.
	OpSet
	// OpDelete removes Keys[0].
	OpDelete
	// OpRange opens a cursor over [Lo, Hi) and returns the first page of
	// at most Max mappings plus the resume token.
	OpRange
	// OpPage resumes a cursor from Token and returns the next page.
	OpPage
	// OpStats reports the server's audit counters.
	OpStats
	// OpVersion reports the server version line.
	OpVersion
	// OpQuit closes the connection.
	OpQuit
)

// Request is one parsed client request. The Keys slice is reused across
// ReadRequest calls on the same Request value.
type Request struct {
	Op      Op
	Keys    []core.Key // get/gets/mget/delete key list
	SetKey  core.Key   // set
	SetVal  core.Value // set
	Lo, Hi  core.Key   // range window
	Max     int        // range/page budget
	Token   string     // page resume token
	NoReply bool       // set/delete noreply: suppress the response
	WithCAS bool       // gets: include the cas column
	Err     *ProtoError
}

// ProtoError is a request-level protocol failure. Line is the complete
// response line (without CRLF) — "ERROR" for an unknown command,
// "CLIENT_ERROR ..." for a malformed one. Fatal marks framing loss: the
// response is still written, but the connection closes after it, because
// the byte stream can no longer be parsed safely.
type ProtoError struct {
	Line  string
	Fatal bool
}

func (e *ProtoError) Error() string { return e.Line }

// protoErrf builds a recoverable CLIENT_ERROR.
func protoErrf(format string, args ...any) *ProtoError {
	return &ProtoError{Line: "CLIENT_ERROR " + fmt.Sprintf(format, args...)}
}

// fatalErrf builds a framing-loss CLIENT_ERROR (connection closes).
func fatalErrf(format string, args ...any) *ProtoError {
	return &ProtoError{Line: "CLIENT_ERROR " + fmt.Sprintf(format, args...), Fatal: true}
}

// ReadRequest parses one request from br into req. The returned error is
// io-level only (io.EOF at a clean boundary, net errors, or a line
// overflowing br's buffer); every in-protocol problem — unknown command,
// malformed operand, oversized frame, bad data chunk — is reported as
// req.Op == OpError with req.Err set, so the caller answers it in
// request order like any other request. br must have been created with a
// buffer of at least maxLineLen bytes.
func ReadRequest(br *bufio.Reader, req *Request) error {
	req.Op = OpError
	req.Keys = req.Keys[:0]
	req.NoReply = false
	req.WithCAS = false
	req.Err = nil

	line, err := br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			// The rest of the oversized line is unread; no resync point.
			req.Err = fatalErrf("line exceeds %d bytes", maxLineLen)
			return nil
		}
		if err == io.EOF && len(line) > 0 {
			// A final fragment with no newline: not a full request.
			req.Err = fatalErrf("truncated command line")
			return nil
		}
		return err
	}
	line = trimCRLF(line)
	cmd, rest := nextField(line)
	if len(cmd) == 0 {
		req.Err = &ProtoError{Line: "ERROR"}
		return nil
	}

	switch string(cmd) {
	case "get", "gets", "mget":
		req.WithCAS = string(cmd) == "gets"
		for {
			f, r := nextField(rest)
			if len(f) == 0 {
				break
			}
			rest = r
			if len(req.Keys) >= maxKeysPerReq {
				req.Err = protoErrf("more than %d keys in one request", maxKeysPerReq)
				return nil
			}
			k, ok := parseKey(f)
			if !ok {
				req.Err = protoErrf("bad key %q", f)
				return nil
			}
			req.Keys = append(req.Keys, k)
		}
		if len(req.Keys) == 0 {
			req.Err = protoErrf("%s needs at least one key", cmd)
			return nil
		}
		req.Op = OpGet
		return nil

	case "set", "add":
		// set <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
		fields, bad := splitFields(rest, 5)
		if bad || len(fields) < 4 {
			req.Err = protoErrf("bad %s line: want <key> <flags> <exptime> <bytes> [noreply]", cmd)
			return nil
		}
		k, okK := parseKey(fields[0])
		n, okN := parseInt(fields[3])
		if len(fields) == 5 {
			if string(fields[4]) != "noreply" {
				req.Err = protoErrf("bad %s option %q", cmd, fields[4])
				return nil
			}
			req.NoReply = true
		}
		if !okN || n < 0 {
			req.Err = protoErrf("bad byte count %q", fields[3])
			return nil
		}
		if n > maxDataLen {
			// The declared block would have to be consumed to resync;
			// refuse to stream attacker-sized data and close instead.
			req.Err = fatalErrf("data block of %d bytes exceeds %d", n, maxDataLen)
			return nil
		}
		data := make([]byte, n+2)
		if _, err := io.ReadFull(br, data); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				req.Err = fatalErrf("truncated data block")
				return nil
			}
			return err
		}
		term := data[n:]
		if !(term[0] == '\r' && term[1] == '\n') && !(term[0] == '\n') {
			// A lone \n terminator means byte n+1 belongs to the next
			// command; only the strict CRLF keeps the framing exact, but
			// accepting \n\r? would mis-split. Treat precisely: CRLF ok;
			// "X\n" where X is the last data byte is only ok when the
			// declared count matched. Anything else lost the framing.
			req.Err = fatalErrf("bad data chunk terminator")
			return nil
		}
		if term[0] == '\n' {
			// Data was terminated by a bare \n after n bytes, meaning we
			// consumed one byte of the next line; push it back.
			if err := br.UnreadByte(); err != nil {
				req.Err = fatalErrf("bad data chunk terminator")
				return nil
			}
			data = data[:n+1]
		}
		v, okV := parseInt(trimCRLF(data))
		if !okK || !okV {
			if !okK {
				req.Err = protoErrf("bad key %q", fields[0])
			} else {
				req.Err = protoErrf("data block is not a decimal 64-bit value")
			}
			return nil
		}
		req.Op = OpSet
		req.SetKey = k
		req.SetVal = core.Value(v)
		return nil

	case "delete":
		fields, bad := splitFields(rest, 2)
		if bad || len(fields) < 1 {
			req.Err = protoErrf("bad delete line: want <key> [noreply]")
			return nil
		}
		if len(fields) == 2 {
			if string(fields[1]) != "noreply" {
				req.Err = protoErrf("bad delete option %q", fields[1])
				return nil
			}
			req.NoReply = true
		}
		k, ok := parseKey(fields[0])
		if !ok {
			req.Err = protoErrf("bad key %q", fields[0])
			return nil
		}
		req.Op = OpDelete
		req.Keys = append(req.Keys, k)
		return nil

	case "range":
		// range <lo> <hi> <max>: first page of the window [lo, hi).
		fields, bad := splitFields(rest, 3)
		if bad || len(fields) != 3 {
			req.Err = protoErrf("bad range line: want <lo> <hi> <max>")
			return nil
		}
		lo, okL := parseInt(fields[0])
		hi, okH := parseInt(fields[1])
		max, okM := parseInt(fields[2])
		if !okL || !okH {
			req.Err = protoErrf("bad range bound")
			return nil
		}
		if !okM || max < 1 || max > maxPageMax {
			req.Err = protoErrf("page budget must be in [1, %d]", maxPageMax)
			return nil
		}
		req.Op = OpRange
		req.Lo, req.Hi, req.Max = core.Key(lo), core.Key(hi), int(max)
		return nil

	case "page":
		// page <token> <max>: resume from an opaque cursor token.
		fields, bad := splitFields(rest, 2)
		if bad || len(fields) != 2 {
			req.Err = protoErrf("bad page line: want <token> <max>")
			return nil
		}
		if len(fields[0]) > maxTokenLen {
			req.Err = protoErrf("cursor token longer than %d bytes", maxTokenLen)
			return nil
		}
		max, okM := parseInt(fields[1])
		if !okM || max < 1 || max > maxPageMax {
			req.Err = protoErrf("page budget must be in [1, %d]", maxPageMax)
			return nil
		}
		req.Op = OpPage
		req.Token = string(fields[0])
		req.Max = int(max)
		return nil

	case "stats":
		req.Op = OpStats
		return nil
	case "version":
		req.Op = OpVersion
		return nil
	case "quit":
		req.Op = OpQuit
		return nil
	}
	req.Err = &ProtoError{Line: "ERROR"}
	return nil
}

// trimCRLF strips one trailing \n and an optional \r before it.
func trimCRLF(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// nextField returns the first space-separated field of b and the rest.
func nextField(b []byte) (field, rest []byte) {
	i := 0
	for i < len(b) && b[i] == ' ' {
		i++
	}
	j := i
	for j < len(b) && b[j] != ' ' {
		j++
	}
	return b[i:j], b[j:]
}

// splitFields splits b into at most max space-separated fields; bad
// reports leftover fields beyond max (a malformed line, not a truncation
// point).
func splitFields(b []byte, max int) (fields [][]byte, bad bool) {
	for len(fields) < max {
		f, r := nextField(b)
		if len(f) == 0 {
			return fields, false
		}
		fields = append(fields, f)
		b = r
	}
	f, _ := nextField(b)
	return fields, len(f) != 0
}

// parseInt parses a decimal int64 without allocating. It rejects empty
// input, bare signs, overflow, and any non-digit byte.
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		i++
		if i == len(b) {
			return 0, false
		}
	}
	const cutoff = (1 << 63) / 10 // magnitude parse in uint64 space
	var n uint64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, false
		}
		if n > cutoff {
			return 0, false
		}
		n = n*10 + uint64(d)
		if n > 1<<63 {
			return 0, false
		}
	}
	if neg {
		return -int64(n), true // 1<<63 wraps to MinInt64 exactly
	}
	if n == 1<<63 {
		return 0, false
	}
	return int64(n), true
}

// parseKey parses a decimal key and rejects the reserved sentinel values
// (the list structures' head/tail keys must never travel the wire).
func parseKey(b []byte) (core.Key, bool) {
	n, ok := parseInt(b)
	if !ok || n == int64(core.KeyMin) || n == int64(core.KeyMax) {
		return 0, false
	}
	return core.Key(n), true
}
