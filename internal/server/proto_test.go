package server

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"

	"csds/internal/core"
)

func parseOne(t *testing.T, input string) *Request {
	t.Helper()
	var req Request
	br := bufio.NewReaderSize(strings.NewReader(input), maxLineLen)
	if err := ReadRequest(br, &req); err != nil {
		t.Fatalf("ReadRequest(%q): io error %v", input, err)
	}
	return &req
}

func TestParseGetVariants(t *testing.T) {
	req := parseOne(t, "get 7\r\n")
	if req.Op != OpGet || len(req.Keys) != 1 || req.Keys[0] != 7 || req.WithCAS {
		t.Fatalf("get: %+v", req)
	}
	req = parseOne(t, "gets 1 2 3\r\n")
	if req.Op != OpGet || !req.WithCAS || len(req.Keys) != 3 {
		t.Fatalf("gets: %+v", req)
	}
	req = parseOne(t, "mget 10 20 30 40\n") // bare \n is accepted
	if req.Op != OpGet || len(req.Keys) != 4 || req.Keys[3] != 40 {
		t.Fatalf("mget: %+v", req)
	}
}

func TestParseSet(t *testing.T) {
	req := parseOne(t, "set 42 0 0 2\r\n42\r\n")
	if req.Op != OpSet || req.SetKey != 42 || req.SetVal != 42 || req.NoReply {
		t.Fatalf("set: %+v", req)
	}
	req = parseOne(t, "set 9 0 0 3 noreply\r\n-55\r\n")
	if req.Op != OpSet || req.SetKey != 9 || req.SetVal != -55 || !req.NoReply {
		t.Fatalf("set noreply: %+v", req)
	}
}

// TestParseSetBareLFKeepsFraming: a data block terminated by a bare \n
// must not eat the first byte of the next command.
func TestParseSetBareLFKeepsFraming(t *testing.T) {
	br := bufio.NewReaderSize(strings.NewReader("set 5 0 0 1\n7\nget 5\r\n"), maxLineLen)
	var req Request
	if err := ReadRequest(br, &req); err != nil || req.Op != OpSet || req.SetVal != 7 {
		t.Fatalf("set: err %v, %+v", err, req)
	}
	if err := ReadRequest(br, &req); err != nil || req.Op != OpGet || req.Keys[0] != 5 {
		t.Fatalf("following get lost framing: err %v, %+v", err, req)
	}
}

func TestParseRangePageDeleteMisc(t *testing.T) {
	req := parseOne(t, "range 10 500 64\r\n")
	if req.Op != OpRange || req.Lo != 10 || req.Hi != 500 || req.Max != 64 {
		t.Fatalf("range: %+v", req)
	}
	req = parseOne(t, "page sometoken 32\r\n")
	if req.Op != OpPage || req.Token != "sometoken" || req.Max != 32 {
		t.Fatalf("page: %+v", req)
	}
	req = parseOne(t, "delete 12 noreply\r\n")
	if req.Op != OpDelete || req.Keys[0] != 12 || !req.NoReply {
		t.Fatalf("delete: %+v", req)
	}
	for input, want := range map[string]Op{
		"stats\r\n":   OpStats,
		"version\r\n": OpVersion,
		"quit\r\n":    OpQuit,
	} {
		if req := parseOne(t, input); req.Op != want {
			t.Fatalf("%q: op %v, want %v", input, req.Op, want)
		}
	}
}

// TestParseErrors pins the protocol-error taxonomy: each malformed input
// must parse to OpError with the right response class and fatality —
// never an io error, never a panic.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		input string
		want  string // response line prefix
		fatal bool
	}{
		{"bogus 1 2\r\n", "ERROR", false},
		{"\r\n", "ERROR", false},
		{"get\r\n", "CLIENT_ERROR", false},
		{"get abc\r\n", "CLIENT_ERROR", false},
		{"get " + strings.Repeat("1 ", maxKeysPerReq+1) + "\r\n", "CLIENT_ERROR", false},
		{"get 99999999999999999999\r\n", "CLIENT_ERROR", false}, // int64 overflow
		{"set 1 0 0\r\n", "CLIENT_ERROR", false},
		{"set 1 0 0 -3\r\nxx\r\n", "CLIENT_ERROR", false},
		{"set 1 0 0 2 yesreply\r\nhi\r\n", "CLIENT_ERROR", false},
		{"set 1 0 0 4096\r\n", "CLIENT_ERROR", true},      // oversized block: fatal
		{"set 1 0 0 2\r\nx", "CLIENT_ERROR", true},        // truncated block: fatal
		{"set 1 0 0 2\r\nabXY\r\n", "CLIENT_ERROR", true}, // bad terminator: fatal
		{"delete\r\n", "CLIENT_ERROR", false},
		{"range 1 2\r\n", "CLIENT_ERROR", false},
		{"range 1 2 0\r\n", "CLIENT_ERROR", false},
		{"range 1 2 1000000\r\n", "CLIENT_ERROR", false},
		{"page tok 0\r\n", "CLIENT_ERROR", false},
		{"page " + strings.Repeat("A", maxTokenLen+1) + " 5\r\n", "CLIENT_ERROR", false},
		{"get 1 2 extra..", "CLIENT_ERROR", true}, // no newline before EOF
	}
	for _, c := range cases {
		req := parseOne(t, c.input)
		if req.Op != OpError || req.Err == nil {
			t.Fatalf("%q: parsed to op %v, want OpError", c.input, req.Op)
		}
		if !strings.HasPrefix(req.Err.Line, c.want) {
			t.Fatalf("%q: response %q, want prefix %q", c.input, req.Err.Line, c.want)
		}
		if req.Err.Fatal != c.fatal {
			t.Fatalf("%q: fatal = %v, want %v", c.input, req.Err.Fatal, c.fatal)
		}
	}
}

// TestParseRejectsSentinelKeys: the structures' reserved head/tail keys
// must never travel the wire as user keys.
func TestParseRejectsSentinelKeys(t *testing.T) {
	for _, input := range []string{
		"get -9223372036854775808\r\n", // KeyMin
		"get 9223372036854775807\r\n",  // KeyMax
	} {
		req := parseOne(t, input)
		if req.Op != OpError {
			t.Fatalf("%q: sentinel key accepted", input)
		}
	}
}

// TestParseOversizedLineIsFatal: a command line longer than the reader
// buffer cannot be resynchronized; the parser must flag a fatal error.
func TestParseOversizedLineIsFatal(t *testing.T) {
	input := "get " + strings.Repeat("1", maxLineLen*2) + "\r\n"
	req := parseOne(t, input)
	if req.Op != OpError || req.Err == nil || !req.Err.Fatal {
		t.Fatalf("oversized line: %+v, err %+v", req, req.Err)
	}
}

func TestParseIntEdges(t *testing.T) {
	cases := []struct {
		in string
		n  int64
		ok bool
	}{
		{"0", 0, true},
		{"-1", -1, true},
		{"+7", 7, true},
		{"9223372036854775807", 1<<63 - 1, true},
		{"-9223372036854775808", -1 << 63, true},
		{"9223372036854775808", 0, false},
		{"-9223372036854775809", 0, false},
		{"", 0, false},
		{"-", 0, false},
		{"+", 0, false},
		{"12x", 0, false},
		{"184467440737095516150", 0, false}, // way past uint64 cutoff
	}
	for _, c := range cases {
		n, ok := parseInt([]byte(c.in))
		if n != c.n || ok != c.ok {
			t.Fatalf("parseInt(%q) = (%d, %v), want (%d, %v)", c.in, n, ok, c.n, c.ok)
		}
	}
}

// TestReadRequestReusesKeys: the Keys slice must be truncated, not
// carried over, between requests parsed into the same Request value.
func TestReadRequestReusesKeys(t *testing.T) {
	br := bufio.NewReaderSize(strings.NewReader("get 1 2 3\r\nget 4\r\n"), maxLineLen)
	var req Request
	if err := ReadRequest(br, &req); err != nil || len(req.Keys) != 3 {
		t.Fatalf("first: err %v, keys %v", err, req.Keys)
	}
	if err := ReadRequest(br, &req); err != nil || len(req.Keys) != 1 || req.Keys[0] != 4 {
		t.Fatalf("second: err %v, keys %v", err, req.Keys)
	}
	if err := ReadRequest(br, &req); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

// TestParseKeyRoundTrip: every key the client writer emits parses back.
func TestParseKeyRoundTrip(t *testing.T) {
	var bw bytes.Buffer
	w := bufio.NewWriter(&bw)
	for _, k := range []core.Key{1, -5, 1 << 40, -(1 << 40)} {
		bw.Reset()
		writeInt(w, int64(k))
		w.Flush()
		got, ok := parseKey(bw.Bytes())
		if !ok || got != k {
			t.Fatalf("round trip %d -> %q -> (%d, %v)", k, bw.String(), got, ok)
		}
	}
}
