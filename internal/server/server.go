// Connection machinery: the Server owns one structure instance built
// from a composite spec, an accept loop, per-connection worker
// goroutines with bounded write queues, a global in-flight limit, and
// the graceful drain protocol.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"csds/internal/core"
	"csds/internal/ebr"
	"csds/internal/fault"
	"csds/internal/stats"
	"csds/internal/xrand"
)

// Config configures a Server. The zero value of every limit picks the
// documented default.
type Config struct {
	// Spec is the algorithm specification served — any registry name or
	// composite ("sharded(32,hashtable/lazy)"). Required.
	Spec string
	// Size hints the steady-state element count (hash sizing, skip-list
	// height); 0 defaults to 1<<16.
	Size int
	// UseEBR attaches an epoch-based reclamation domain: every
	// connection worker carries a Record, released on close (defer-based
	// — a panicking handler cannot wedge epoch advancement), and drain
	// quiesces the domain to reclaimed == retired.
	UseEBR bool
	// MaxInflight caps requests executing concurrently across all
	// connections; excess load is shed with SERVER_ERROR busy instead of
	// queueing without bound. 0 defaults to 128; negative means no limit.
	MaxInflight int
	// WriteQueue bounds each connection's queued response buffers; a
	// full queue blocks that connection's read loop (backpressure to the
	// socket) instead of buffering without bound. 0 defaults to 32.
	WriteQueue int
	// MaxBurst bounds how many pipelined requests one read-loop turn
	// parses and answers with a single write; get runs inside a burst
	// merge into one MultiGet. 0 defaults to 64.
	MaxBurst int
	// IdleTimeout, when positive, arms a per-connection read deadline
	// outside drain: a client idle (or too slow to make read progress)
	// past it is evicted and counted in the stats as an eviction, so a
	// stalled peer cannot pin a worker goroutine forever. 0 disables.
	IdleTimeout time.Duration
	// WatchdogTick, when positive with UseEBR, runs the self-watchdog:
	// every tick it nudges the epoch and samples the reclamation
	// domain's blocked records; a record wedged at the same state word
	// across two consecutive ticks is force-unregistered (Domain.Expel),
	// restoring epoch liveness at the documented cost of downgrading the
	// domain to GC-backed reclamation. Each expulsion counts as a
	// watchdog fire in the stats. 0 disables.
	WatchdogTick time.Duration
	// Fault, when non-nil, arms server-side fault injection: slow, torn
	// and dropped connections, injected handler panics, and forced busy
	// shedding, each on a deterministic per-connection schedule. Test
	// and chaos-drill machinery — nil in production.
	Fault *fault.Plan
	// Logf, when non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Size <= 0 {
		c.Size = 1 << 16
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 128
	}
	if c.WriteQueue <= 0 {
		c.WriteQueue = 32
	}
	if c.MaxBurst <= 0 {
		c.MaxBurst = 64
	}
	return c
}

// Audit is the server's lifetime counter snapshot: closed connections'
// worker metrics merged with the reclamation domain totals.
type Audit struct {
	Conns         uint64 // connections served to completion
	Ops           uint64 // point operations executed
	LockWaits     uint64 // operations that waited for a lock
	Restarts      uint64 // operation restart events
	MaxWaitNs     uint64 // worst single lock wait
	Shed          uint64 // requests answered SERVER_ERROR busy
	Inflight      uint64 // requests executing right now (gauge, not a counter)
	Evictions     uint64 // connections evicted by the idle read deadline
	WatchdogFires uint64 // wedged EBR records expelled by the watchdog
	CombineStalls uint64 // flat-combining waits that exceeded the stall bound
	Faults        uint64 // injected faults fired server-side (0 without a plan)
	Retired       uint64 // EBR nodes retired (0 without EBR)
	Reclaimed     uint64 // EBR nodes reclaimed
}

// Server serves the memcache-text dialect over one structure instance.
type Server struct {
	cfg      Config
	set      core.Set
	batcher  core.Batcher // nil when the spec's structure cannot batch
	dom      *ebr.Domain  // nil without EBR
	inflight chan struct{}
	tally    *fault.Tally // nil without a fault plan

	mu    sync.Mutex
	lis   net.Listener
	conns map[net.Conn]struct{}

	draining atomic.Bool
	wg       sync.WaitGroup
	nextID   atomic.Int64

	inflightNow atomic.Int64
	watchStop   chan struct{}
	watchOnce   sync.Once
	watchWg     sync.WaitGroup

	audit auditCounters
}

// auditCounters accumulates closed connections' metrics atomically so
// any session's stats request can snapshot them without a lock.
type auditCounters struct {
	conns         atomic.Uint64
	ops           atomic.Uint64
	lockWaits     atomic.Uint64
	restarts      atomic.Uint64
	maxWaitNs     atomic.Uint64
	shed          atomic.Uint64
	evictions     atomic.Uint64
	watchdogFires atomic.Uint64
	combineStalls atomic.Uint64
}

// New builds a server over cfg.Spec. The structure is built once; every
// connection operates on it through its own core.Ctx.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Spec == "" {
		return nil, errors.New("server: Config.Spec is required")
	}
	opts := core.Options{ExpectedSize: cfg.Size, KeySpan: 2 * core.Key(cfg.Size)}
	s := &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}
	if cfg.UseEBR {
		s.dom = ebr.NewDomain()
		opts.Domain = s.dom
	}
	set, err := core.Build(cfg.Spec, opts)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.set = set
	s.batcher, _ = set.(core.Batcher)
	if _, ok := set.(core.Cursor); !ok {
		return nil, fmt.Errorf("server: spec %q does not implement core.Cursor (range/page need it)", cfg.Spec)
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	if cfg.Fault != nil {
		s.tally = fault.NewTally()
	}
	if s.dom != nil && cfg.WatchdogTick > 0 {
		s.watchStop = make(chan struct{})
		s.watchWg.Add(1)
		go s.watchdog(cfg.WatchdogTick)
	}
	return s, nil
}

// FaultTally exposes the server-side injected-fault counters (nil
// without a fault plan).
func (s *Server) FaultTally() *fault.Tally { return s.tally }

// watchdog is the self-healing loop: each tick it nudges the epoch
// forward and samples the domain's blocked records. A record observed
// wedged at the same announced state word on two consecutive ticks is
// not merely slow — nothing it could legally do leaves the state word
// unchanged across a full tick except being stalled inside one bracket
// — so the watchdog expels it. What Expel may do: unblock epoch
// advancement and make the ledger whole by dropping the wedge's limbo
// to the garbage collector. What it may not do: ever run a reclamation
// callback again on this domain — the expelled reader may still hold
// references into any later epoch's retirements, so the domain is
// permanently downgraded to GC-backed reclamation (see ebr.Expel).
func (s *Server) watchdog(tick time.Duration) {
	defer s.watchWg.Done()
	t := time.NewTicker(tick)
	defer t.Stop()
	prev := make(map[*ebr.Record]uint64)
	for {
		select {
		case <-s.watchStop:
			return
		case <-t.C:
		}
		s.dom.Advance()
		blocked := s.dom.Blocked()
		cur := make(map[*ebr.Record]uint64, len(blocked))
		for _, b := range blocked {
			cur[b.Rec] = b.State
			if st, ok := prev[b.Rec]; ok && st == b.State {
				if s.dom.Expel(b.Rec) {
					s.audit.watchdogFires.Add(1)
					s.logf("server: watchdog expelled a wedged reclamation record (state %#x); domain is now GC-backed", b.State)
				}
			}
		}
		prev = cur
	}
}

// stopWatchdog halts the watchdog loop (idempotent).
func (s *Server) stopWatchdog() {
	if s.watchStop != nil {
		s.watchOnce.Do(func() {
			close(s.watchStop)
			s.watchWg.Wait()
		})
	}
}

// Set exposes the served structure (examples prefill through it only in
// tests; clients normally fill over the wire).
func (s *Server) Set() core.Set { return s.set }

// acquire claims one in-flight execution slot, shedding instead of
// blocking: a saturated server answers busy now rather than queueing the
// request behind an unbounded backlog it may never drain.
func (s *Server) acquire() bool {
	if s.inflight == nil {
		s.inflightNow.Add(1)
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		s.inflightNow.Add(1)
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	s.inflightNow.Add(-1)
	if s.inflight != nil {
		<-s.inflight
	}
}

// degraded reports whether the server is saturated enough to shed load
// selectively: at three quarters of the in-flight cap, scans and pages
// (the expensive, long-bracket requests) are answered busy while point
// ops still run, and read paths skip cache fills (core.Ctx.SkipCacheFill)
// so a degraded server serves hits without paying admission work.
func (s *Server) degraded() bool {
	if s.inflight == nil {
		return false
	}
	return int(s.inflightNow.Load())*4 >= cap(s.inflight)*3
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on l until Shutdown (or a permanent accept
// error). It owns l and closes it on return.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.lis != nil {
		s.mu.Unlock()
		return errors.New("server: Serve called twice")
	}
	s.lis = l
	s.mu.Unlock()
	defer l.Close()
	for {
		nc, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		if s.draining.Load() {
			nc.Close()
			continue
		}
		s.mu.Lock()
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return s.Serve(l)
}

// session is one connection's execution state: the per-worker context
// (own RNG stream, stats slot, EBR record), the parsed-request burst
// buffer, and the merged-batch scratch. It reads from br and enqueues
// response buffers on q; it never touches the socket directly, which is
// what lets the fuzzer and the protocol tests drive it over byte
// readers.
type session struct {
	srv        *Server
	ctx        *core.Ctx
	br         *bufio.Reader
	q          *writeQueue
	nc         net.Conn        // nil when driven over plain readers (tests, fuzzer)
	inj        *fault.Injector // nil without a fault plan; methods are nil-safe
	reqs       []Request
	keyScratch []core.Key
	valScratch []core.Value
	okScratch  []bool
}

// serveConn runs one connection to completion. The deferred block is
// the robustness contract of the satellite bugfix: whatever happens in
// the handler — a clean quit, a protocol error, an io error, or a panic
// — the EBR record is unregistered (mid-bracket included; Unregister
// force-exits the bracket) so a dying worker can never wedge epoch
// advancement for the whole domain, the write queue is flushed so every
// response already produced still reaches the client, and the worker's
// metrics fold into the audit aggregate.
func (s *Server) serveConn(nc net.Conn) {
	th := &stats.Thread{}
	id := s.nextID.Add(1)
	ctx := &core.Ctx{ID: int(id), Rng: xrand.New(uint64(id)*0x9e3779b97f4a7c15 + 0xC5D5), Stats: th}
	if s.dom != nil {
		ctx.Epoch = s.dom.Register()
	}
	var inj *fault.Injector
	if s.cfg.Fault != nil {
		inj = fault.NewInjector(s.cfg.Fault, uint64(id), s.tally)
	}
	// The connection the session reads and writes may be a fault wrapper
	// (slow, torn, dropped I/O); deadlines and the close path stay on the
	// real conn underneath, which the wrapper delegates to.
	var rw net.Conn = nc
	if inj != nil && (s.cfg.Fault.Enabled(fault.ConnSlow) ||
		s.cfg.Fault.Enabled(fault.ConnTorn) || s.cfg.Fault.Enabled(fault.ConnDrop)) {
		rw = &faultConn{Conn: nc, inj: inj}
	}
	q := newWriteQueue(rw, s.cfg.WriteQueue)
	defer func() {
		if r := recover(); r != nil {
			s.logf("server: panic in connection handler: %v", r)
		}
		if ctx.Epoch != nil {
			ctx.Epoch.Unregister()
		}
		q.Close() // flush everything enqueued, then stop the writer
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.mergeAudit(th)
		s.wg.Done()
	}()
	sess := &session{
		srv:  s,
		ctx:  ctx,
		br:   bufio.NewReaderSize(rw, maxLineLen),
		q:    q,
		nc:   nc,
		inj:  inj,
		reqs: make([]Request, s.cfg.MaxBurst),
	}
	sess.run()
}

// run is the read/execute/write loop: block on one request, opportunistically
// drain the rest of the pipeline burst that is already buffered, execute
// the burst, enqueue one response buffer. Bounded on every axis — burst
// length, merged keys, queue depth — so a fast pipelining client is
// amortized and a slow reading client is back-pressured, never buffered
// without limit.
func (s *session) run() {
	for {
		if s.srv.draining.Load() {
			return
		}
		if s.nc != nil && s.srv.cfg.IdleTimeout > 0 {
			// Armed per blocking read, cleared implicitly by the next arm:
			// a client that neither sends a request nor drains its
			// responses (the write queue backpressures into this read
			// staying blocked) within the window is evicted.
			s.nc.SetReadDeadline(time.Now().Add(s.srv.cfg.IdleTimeout))
		}
		if err := ReadRequest(s.br, &s.reqs[0]); err != nil {
			// io.EOF is the clean end; drain interrupts surface as read
			// deadline errors; everything else is a dead peer. An idle
			// deadline outside drain is an eviction and is counted.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && !s.srv.draining.Load() {
				s.srv.audit.evictions.Add(1)
				s.srv.logf("server: evicting idle connection (no read progress in %v)", s.srv.cfg.IdleTimeout)
			}
			return
		}
		n := 1
		for n < len(s.reqs) && s.reqs[n-1].Op != OpQuit && !s.srv.draining.Load() {
			if !s.fullRequestBuffered() {
				break
			}
			if err := ReadRequest(s.br, &s.reqs[n]); err != nil {
				break
			}
			n++
		}
		buf, closeAfter := s.execBurst(s.reqs[:n], getBuf())
		if len(buf) > 0 {
			s.q.Enqueue(buf) // blocks when the queue is full: backpressure
		} else {
			putBuf(buf)
		}
		if closeAfter {
			return
		}
	}
}

// fullRequestBuffered reports whether at least one complete command line
// is already buffered, i.e. another request can be parsed without
// blocking the burst on the network. (A set whose data block is split
// across segments can still block briefly in its body read; command and
// block almost always travel in one segment.)
func (s *session) fullRequestBuffered() bool {
	n := s.br.Buffered()
	if n == 0 {
		return false
	}
	peek, _ := s.br.Peek(n)
	for _, b := range peek {
		if b == '\n' {
			return true
		}
	}
	return false
}

// mergeAudit folds one finished connection's worker slot into the
// atomic aggregate.
func (s *Server) mergeAudit(th *stats.Thread) {
	s.audit.conns.Add(1)
	s.audit.ops.Add(th.Ops)
	s.audit.lockWaits.Add(th.LockWaits)
	s.audit.restarts.Add(th.Restarts)
	s.audit.combineStalls.Add(th.CombineStalls)
	for {
		cur := s.audit.maxWaitNs.Load()
		if th.MaxWaitNs <= cur || s.audit.maxWaitNs.CompareAndSwap(cur, th.MaxWaitNs) {
			break
		}
	}
}

// auditSnapshot returns the closed-connection aggregate plus domain
// reclamation totals.
func (s *Server) auditSnapshot() Audit {
	a := Audit{
		Conns:         s.audit.conns.Load(),
		Ops:           s.audit.ops.Load(),
		LockWaits:     s.audit.lockWaits.Load(),
		Restarts:      s.audit.restarts.Load(),
		MaxWaitNs:     s.audit.maxWaitNs.Load(),
		Shed:          s.audit.shed.Load(),
		Evictions:     s.audit.evictions.Load(),
		WatchdogFires: s.audit.watchdogFires.Load(),
		CombineStalls: s.audit.combineStalls.Load(),
	}
	if n := s.inflightNow.Load(); n > 0 {
		a.Inflight = uint64(n)
	}
	if s.tally != nil {
		a.Faults = s.tally.Total()
	}
	if s.dom != nil {
		a.Retired, a.Reclaimed = s.dom.Stats()
	}
	return a
}

// Audit returns the current audit snapshot (closed connections only;
// live connections fold in as they close).
func (s *Server) Audit() Audit { return s.auditSnapshot() }

// Shutdown gracefully drains the server: stop accepting, interrupt every
// connection's blocked read (in-flight bursts still execute and their
// responses still flush — the write queues close only after their
// connection's loop exits), wait for all workers, then quiesce the
// reclamation domain so every retired node is reclaimed. It returns
// ctx's error if the drain outlives it, and an error if the domain
// cannot quiesce.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return errors.New("server: already shut down")
	}
	s.mu.Lock()
	if s.lis != nil {
		s.lis.Close()
	}
	for nc := range s.conns {
		// Unblock reads only: pending writes (response flushes) proceed.
		nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stopWatchdog()
	case <-ctx.Done():
		s.stopWatchdog()
		return ctx.Err()
	}
	if s.dom != nil {
		// Every record has unregistered, so each advance succeeds; three
		// advances age any limbo out of its grace period. Loop a few
		// extra in case orphan buckets were tagged ahead.
		for i := 0; i < 8; i++ {
			if ret, rec := s.dom.Stats(); ret == rec {
				return nil
			}
			s.dom.Advance()
		}
		if ret, rec := s.dom.Stats(); ret != rec {
			return fmt.Errorf("server: domain did not quiesce: retired %d, reclaimed %d", ret, rec)
		}
	}
	return nil
}

// writeQueue is the bounded per-connection response pipe: the read loop
// enqueues finished response buffers, a dedicated writer goroutine
// drains them to the socket. A full queue blocks Enqueue — that stalls
// the connection's read loop, which stops consuming the socket, which
// backpressures the client through TCP; memory per connection stays
// bounded by depth × buffer. Close flushes everything already enqueued
// before the writer exits, so a drain never drops a produced response.
type writeQueue struct {
	ch   chan []byte
	done chan struct{}
}

func newWriteQueue(w io.Writer, depth int) *writeQueue {
	q := &writeQueue{ch: make(chan []byte, depth), done: make(chan struct{})}
	go func() {
		defer close(q.done)
		for buf := range q.ch {
			if w != nil {
				if _, err := w.Write(buf); err != nil {
					w = nil // peer gone: keep draining so Enqueue never sticks
				}
			}
			putBuf(buf)
		}
	}()
	return q
}

// Enqueue hands one response buffer to the writer (ownership moves; the
// writer returns it to the pool).
func (q *writeQueue) Enqueue(buf []byte) { q.ch <- buf }

// Close stops the writer after the queued responses are written.
func (q *writeQueue) Close() {
	close(q.ch)
	<-q.done
}

// bufPool recycles response buffers across bursts and connections.
var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 2048) }}

func getBuf() []byte  { return bufPool.Get().([]byte)[:0] }
func putBuf(b []byte) { bufPool.Put(b[:0]) }
