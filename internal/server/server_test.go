package server

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"csds/internal/core"

	_ "csds/internal/combinator"
	_ "csds/internal/hashtable"
	_ "csds/internal/list"
	_ "csds/internal/skiplist"
)

// startServer boots a Server on a loopback ephemeral port and returns it
// with its address and a shutdown helper.
func startServer(t *testing.T, cfg Config) (*Server, string, func() error) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		<-serveDone
		return err
	}
	return srv, l.Addr().String(), shutdown
}

func TestServerEndToEnd(t *testing.T) {
	for _, spec := range []string{"sharded(4,hashtable/lazy)", "striped(4,skiplist/herlihy)"} {
		t.Run(spec, func(t *testing.T) {
			_, addr, shutdown := startServer(t, Config{Spec: spec, Size: 1 << 10, UseEBR: true})
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			if stored, err := c.Set(7, 70); err != nil || !stored {
				t.Fatalf("Set(7) = (%v, %v), want stored", stored, err)
			}
			// Insert-if-absent: a second set of the same key is NOT_STORED.
			if stored, err := c.Set(7, 71); err != nil || stored {
				t.Fatalf("second Set(7) = (%v, %v), want NOT_STORED", stored, err)
			}
			if v, ok, err := c.Get(7); err != nil || !ok || v != 70 {
				t.Fatalf("Get(7) = (%d, %v, %v), want (70, true)", v, ok, err)
			}
			if _, ok, err := c.Get(8); err != nil || ok {
				t.Fatalf("Get(8) hit on absent key (err %v)", err)
			}
			if deleted, err := c.Delete(7); err != nil || !deleted {
				t.Fatalf("Delete(7) = (%v, %v)", deleted, err)
			}
			if deleted, err := c.Delete(7); err != nil || deleted {
				t.Fatalf("second Delete(7) = (%v, %v), want NOT_FOUND", deleted, err)
			}

			// MultiGet with misses and duplicate keys.
			for k := core.Key(10); k < 20; k += 2 {
				if _, err := c.Set(k, core.Value(k)*10); err != nil {
					t.Fatal(err)
				}
			}
			keys := []core.Key{10, 11, 12, 12, 19, 18}
			vals := make([]core.Value, len(keys))
			oks := make([]bool, len(keys))
			if err := c.MultiGet(keys, vals, oks); err != nil {
				t.Fatal(err)
			}
			wantOK := []bool{true, false, true, true, false, true}
			for i := range keys {
				if oks[i] != wantOK[i] {
					t.Fatalf("MultiGet oks = %v, want %v", oks, wantOK)
				}
				if oks[i] && vals[i] != core.Value(keys[i])*10 {
					t.Fatalf("MultiGet vals[%d] = %d, want %d", i, vals[i], keys[i]*10)
				}
			}

			// Paginated range over the five even keys in [10, 20).
			var got []core.Key
			token, done, err := c.Range(10, 20, 2, func(k core.Key, v core.Value) {
				got = append(got, k)
			})
			if err != nil {
				t.Fatal(err)
			}
			for !done {
				token, done, err = c.Page(token, 2, func(k core.Key, v core.Value) {
					got = append(got, k)
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			want := []core.Key{10, 12, 14, 16, 18}
			if len(got) != len(want) {
				t.Fatalf("range collected %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("range collected %v, want %v", got, want)
				}
			}

			// A corrupted token is a client error, not a silently wrong page.
			if _, _, err := c.Page("notatoken", 4, func(core.Key, core.Value) {}); err == nil ||
				!strings.Contains(err.Error(), "CLIENT_ERROR") {
				t.Fatalf("corrupt token error = %v, want CLIENT_ERROR", err)
			}
			// The connection survives the client error.
			if _, ok, err := c.Get(10); err != nil || !ok {
				t.Fatalf("Get after token error = (%v, %v)", ok, err)
			}

			if m, err := c.Stats(); err != nil || m["shed"] != 0 {
				t.Fatalf("Stats = %v, %v", m, err)
			}

			if err := shutdown(); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		})
	}
}

// TestCursorTokenSurvivesRestart is the acceptance-criterion test: a
// range cursor token handed to a client keeps working across a full
// server restart (new Server, new port, same spec and data), because
// tokens pin no server state.
func TestCursorTokenSurvivesRestart(t *testing.T) {
	const spec = "sharded(4,hashtable/lazy)"
	fill := func(c *Client) {
		for k := core.Key(1); k <= 40; k += 2 {
			if _, err := c.Set(k, core.Value(k)); err != nil {
				t.Fatal(err)
			}
		}
	}

	_, addr1, shutdown1 := startServer(t, Config{Spec: spec, Size: 256, UseEBR: true})
	c1, err := Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	fill(c1)
	var first []core.Key
	token, done, err := c1.Range(1, 41, 5, func(k core.Key, v core.Value) { first = append(first, k) })
	if err != nil || done {
		t.Fatalf("first page: err %v, done %v", err, done)
	}
	if len(first) != 5 || first[0] != 1 || first[4] != 9 {
		t.Fatalf("first page keys %v, want 1..9", first)
	}
	c1.Close()
	if err := shutdown1(); err != nil {
		t.Fatalf("shutdown1: %v", err)
	}

	// A brand-new server process-equivalent: fresh Server, fresh port.
	_, addr2, shutdown2 := startServer(t, Config{Spec: spec, Size: 256, UseEBR: true})
	defer func() {
		if err := shutdown2(); err != nil {
			t.Fatalf("shutdown2: %v", err)
		}
	}()
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	fill(c2)

	var rest []core.Key
	for !done {
		token, done, err = c2.Page(token, 5, func(k core.Key, v core.Value) { rest = append(rest, k) })
		if err != nil {
			t.Fatalf("resumed page: %v", err)
		}
	}
	// Continuation must pick up exactly after key 9: 11, 13, ..., 39.
	if len(rest) != 15 || rest[0] != 11 || rest[len(rest)-1] != 39 {
		t.Fatalf("resumed keys %v, want 11..39 odd", rest)
	}
	for i := 1; i < len(rest); i++ {
		if rest[i] != rest[i-1]+2 {
			t.Fatalf("resumed keys not contiguous: %v", rest)
		}
	}
}

// TestGracefulDrainFlushesInflight: responses produced before the drain
// interrupt must all reach the client — the "zero lost in-flight
// responses" half of the acceptance criterion — and the domain must
// quiesce to reclaimed == retired.
func TestGracefulDrainFlushesInflight(t *testing.T) {
	srv, addr, shutdown := startServer(t, Config{Spec: "sharded(4,hashtable/lazy)", Size: 1 << 12, UseEBR: true})

	const workers = 4
	var wg sync.WaitGroup
	stopped := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for k := core.Key(w * 100000); ; k++ {
				select {
				case <-stopped:
					return
				default:
				}
				// Pipelined train: 8 sets, 8 answers. Every answer must be
				// well-formed; after the drain interrupt the only valid
				// outcome is a connection-level close, never a torn frame.
				for i := core.Key(0); i < 8; i++ {
					if err := c.PipeSet(k*8+i+1, 1); err != nil {
						return
					}
				}
				if err := c.Flush(); err != nil {
					return
				}
				for i := 0; i < 8; i++ {
					if _, err := c.RecvStored(); err != nil {
						if strings.Contains(err.Error(), "malformed") ||
							strings.Contains(err.Error(), "unexpected") {
							t.Errorf("torn response during drain: %v", err)
						}
						return
					}
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond) // let the load ramp
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	close(stopped)
	wg.Wait()

	a := srv.Audit()
	if a.Retired != a.Reclaimed {
		t.Fatalf("domain did not quiesce: retired %d, reclaimed %d", a.Retired, a.Reclaimed)
	}
	if a.Conns != workers {
		t.Fatalf("audit counted %d conns, want %d", a.Conns, workers)
	}
}

// TestWriteQueueFlushOnClose pins the no-lost-responses half of the
// drain contract at its enforcement point: every buffer enqueued before
// Close must be written, in order, before the writer exits — a draining
// connection closes its queue only after the read loop stops, so any
// response the handler produced still reaches the socket.
func TestWriteQueueFlushOnClose(t *testing.T) {
	var out slowWriter
	q := newWriteQueue(&out, 4)
	const n = 100
	want := 0
	for i := 0; i < n; i++ {
		buf := getBuf()
		buf = append(buf, byte('a'+i%26))
		want++
		q.Enqueue(buf)
	}
	q.Close() // must block until all n buffers are written
	if got := out.Len(); got != want {
		t.Fatalf("writer flushed %d bytes, want %d", got, want)
	}
}

// slowWriter makes every write yield so Close genuinely races the
// writer goroutine rather than finding an already-empty queue.
type slowWriter struct {
	mu sync.Mutex
	n  int
}

func (w *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(100 * time.Microsecond)
	w.mu.Lock()
	w.n += len(p)
	w.mu.Unlock()
	return len(p), nil
}

func (w *slowWriter) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// TestBusyShedding: with the in-flight limit saturated, requests answer
// SERVER_ERROR busy instead of queueing, and the audit counts the sheds.
func TestBusyShedding(t *testing.T) {
	srv, addr, shutdown := startServer(t, Config{Spec: "sharded(4,hashtable/lazy)", Size: 256, MaxInflight: 1})
	defer func() {
		<-srv.inflight // release the slot we stole so drain can proceed
		if err := shutdown(); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	srv.inflight <- struct{}{} // saturate the only slot
	if _, _, err := c.Get(1); err == nil || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("saturated Get error = %v, want SERVER_ERROR busy", err)
	}
	if _, err := c.Set(1, 1); err == nil || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("saturated Set error = %v, want SERVER_ERROR busy", err)
	}
	if a := srv.Audit(); a.Shed < 2 {
		t.Fatalf("audit.Shed = %d, want >= 2", a.Shed)
	}
	// The connection survives shedding; releasing the slot restores service.
	<-srv.inflight
	if stored, err := c.Set(2, 2); err != nil || !stored {
		t.Fatalf("Set after release = (%v, %v)", stored, err)
	}
	srv.inflight <- struct{}{} // hand a slot back for the deferred release
}

// TestServerRejectsCursorlessSpec: New must refuse a spec that cannot
// serve range/page rather than fail at the first request.
func TestServerRejectsBadSpecs(t *testing.T) {
	if _, err := New(Config{Spec: "no/such/alg"}); err == nil {
		t.Fatal("unknown spec accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

// TestPanickingHandlerClosesCleanly: a panic inside a connection handler
// must not take the server down, must unregister the worker's EBR
// record, and the domain must still quiesce.
func TestPanickingHandlerClosesCleanly(t *testing.T) {
	srv, addr, shutdown := startServer(t, Config{Spec: "sharded(4,hashtable/lazy)", Size: 256, UseEBR: true})

	// Reach into a live session by dialing and then forcing a panic via a
	// nil-batcher path is not reachable from the wire (the parser rejects
	// everything malformed), so simulate the contract directly: a
	// connection worker that dies mid-operation. serveConn's deferred
	// block recovers, unregisters, and the server keeps serving.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Close() // immediate close: the worker sees EOF and exits cleanly

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if stored, err := c.Set(1, 1); err != nil || !stored {
		t.Fatalf("Set after dead peer = (%v, %v)", stored, err)
	}
	c.Close()
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if a := srv.Audit(); a.Retired != a.Reclaimed {
		t.Fatalf("domain did not quiesce: %+v", a)
	}
}
