// Fuzz target for the batched-operation contract, run as a CI smoke
// alongside the spec-grammar and cursor-token fuzzers: against a
// quiescent structure, a batch must be indistinguishable from the same
// point ops looped in index order — for every batch shape the fuzzer
// can invent (duplicate keys, absent keys, empty batches, odd lengths),
// on bespoke single-traversal paths and grouped composite paths alike.
package settest

import (
	"testing"

	"csds/internal/core"
)

// fuzzBatchSpecs covers one bespoke leaf per strategy plus the grouped
// composites whose partition arithmetic the fuzzer stresses hardest.
var fuzzBatchSpecs = []string{
	"list/lazy",               // guard-bracket traversal with resume
	"list/harris",             // lock-free reads resumed, sorted writes
	"sharded(4,list/lazy)",    // shard grouping + flat-combining wiring
	"readcache(64,list/lazy)", // probe pass + miss sub-batch
}

// decodeBatches turns fuzz bytes into a batch program: each batch is a
// kind byte, a length byte (0..16 — empties included), then that many
// key bytes over a 32-key domain (small enough that duplicates and
// present/absent flips are the common case, not the corner).
type fuzzBatch struct {
	kind byte // 0 put, 1 remove, 2 get
	keys []core.Key
}

func decodeBatches(data []byte) []fuzzBatch {
	var prog []fuzzBatch
	for i := 0; i+1 < len(data) && len(prog) < 64; {
		kind := data[i] % 3
		n := int(data[i+1] % 17)
		i += 2
		keys := make([]core.Key, 0, n)
		for j := 0; j < n && i < len(data); j++ {
			keys = append(keys, core.Key(data[i]%32))
			i++
		}
		prog = append(prog, fuzzBatch{kind: kind, keys: keys})
	}
	return prog
}

func FuzzBatchShapes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 5, 5, 9, 1, 2, 5, 9, 2, 3, 5, 6, 7})
	f.Add([]byte{0, 16, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{2, 0, 1, 0, 0, 4, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := decodeBatches(data)
		for _, spec := range fuzzBatchSpecs {
			factory, err := core.NewFactory(spec)
			if err != nil {
				t.Fatalf("resolving %s: %v", spec, err)
			}
			s, ok := factory(core.Options{ExpectedSize: 64}).(interface {
				core.Set
				core.Batcher
			})
			if !ok {
				t.Fatalf("%s does not implement core.Batcher", spec)
			}
			c := core.NewCtx(0)
			// The model applies each element as a looped point op in index
			// order; a quiescent batch must be indistinguishable from it.
			model := map[core.Key]core.Value{}
			for bi, b := range prog {
				switch b.kind {
				case 0: // put
					pairs := make([]core.KV, len(b.keys))
					want := make([]bool, len(b.keys))
					for i, k := range b.keys {
						pairs[i] = core.KV{K: k, V: core.Value(bi*100 + i)}
						if _, in := model[k]; !in {
							model[k] = pairs[i].V
							want[i] = true
						}
					}
					next := 0
					s.MultiPut(c, pairs, func(i int, inserted bool) {
						if i != next {
							t.Fatalf("%s batch %d: MultiPut delivered index %d, want %d", spec, bi, i, next)
						}
						next++
						if inserted != want[i] {
							t.Fatalf("%s batch %d: MultiPut index %d (key %d) = %v, looped model says %v", spec, bi, i, pairs[i].K, inserted, want[i])
						}
					})
					if next != len(pairs) {
						t.Fatalf("%s batch %d: MultiPut delivered %d of %d results", spec, bi, next, len(pairs))
					}
				case 1: // remove
					want := make([]bool, len(b.keys))
					for i, k := range b.keys {
						if _, in := model[k]; in {
							delete(model, k)
							want[i] = true
						}
					}
					next := 0
					s.MultiRemove(c, b.keys, func(i int, removed bool) {
						if i != next {
							t.Fatalf("%s batch %d: MultiRemove delivered index %d, want %d", spec, bi, i, next)
						}
						next++
						if removed != want[i] {
							t.Fatalf("%s batch %d: MultiRemove index %d (key %d) = %v, looped model says %v", spec, bi, i, b.keys[i], removed, want[i])
						}
					})
					if next != len(b.keys) {
						t.Fatalf("%s batch %d: MultiRemove delivered %d of %d results", spec, bi, next, len(b.keys))
					}
				default: // get
					next := 0
					s.MultiGet(c, b.keys, func(i int, v core.Value, ok bool) {
						if i != next {
							t.Fatalf("%s batch %d: MultiGet delivered index %d, want %d", spec, bi, i, next)
						}
						next++
						wv, want := model[b.keys[i]]
						if ok != want || (ok && v != wv) {
							t.Fatalf("%s batch %d: MultiGet index %d (key %d) = (%d, %v), looped model says (%d, %v)", spec, bi, i, b.keys[i], v, ok, wv, want)
						}
					})
					if next != len(b.keys) {
						t.Fatalf("%s batch %d: MultiGet delivered %d of %d results", spec, bi, next, len(b.keys))
					}
				}
			}
			if s.Len() != len(model) {
				t.Fatalf("%s: final Len = %d, looped model has %d", spec, s.Len(), len(model))
			}
			for k, v := range model {
				if gv, ok := s.Get(c, k); !ok || gv != v {
					t.Fatalf("%s: final Get(%d) = (%d, %v), want (%d, true)", spec, k, gv, ok, v)
				}
			}
		}
	})
}
