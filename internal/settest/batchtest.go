// Batched-operation (core.Batcher) conformance battery. The contract
// under test:
//
//   - the callback fires exactly once per batch index, in caller
//     (ascending index) order, for every index including duplicates and
//     absent keys — a zero-length batch is a no-op;
//   - per-batch linearizability: each element takes effect at some
//     instant inside the Multi* call, with duplicate keys resolving as
//     if executed in ascending index order — so against a quiescent
//     structure a batch is indistinguishable from the same ops looped;
//   - the set-theoretic concurrent algebra (successful inserts minus
//     removes per key equals final presence) holds when every update
//     travels through batches, including while an elastic composite is
//     resized underneath (RunBatcherResizable).
package settest

import (
	"sync"
	"testing"

	"csds/internal/core"
	"csds/internal/xrand"
)

// RunBatcher executes the batched-operation battery against the factory.
// The built set must implement core.Batcher.
func RunBatcher(t *testing.T, f Factory) {
	t.Helper()
	t.Run("SequentialBatchModel", func(t *testing.T) { testSequentialBatchModel(t, f) })
	t.Run("CallerOrderDelivery", func(t *testing.T) { testCallerOrderDelivery(t, f) })
	t.Run("ConcurrentBatchShared", func(t *testing.T) {
		runConcurrentBatchShared(t, mustBatcher(t, f(core.Options{ExpectedSize: 64})))
	})
	t.Run("BatchAnchorsDuringChurn", func(t *testing.T) {
		runBatchAnchorsDuringChurn(t, mustBatcher(t, f(core.Options{ExpectedSize: 128})))
	})
}

// RunBatcherSpec executes the batched battery against an algorithm
// specification resolved through the layered core factory.
func RunBatcherSpec(t *testing.T, spec string) {
	t.Helper()
	f, err := core.NewFactory(spec)
	if err != nil {
		t.Fatalf("settest: resolving spec: %v", err)
	}
	RunBatcher(t, Factory(f))
}

// RunBatcherResizable re-runs the concurrent batch bodies while a
// dedicated goroutine cycles the partition width the whole time: the
// batch algebra and anchor visibility must hold across grow and shrink
// migrations racing the batches.
func RunBatcherResizable(t *testing.T, f Factory) {
	t.Helper()
	resizing := func(name string, body func(t *testing.T, s core.Set)) {
		t.Run(name, func(t *testing.T) {
			s := f(core.Options{ExpectedSize: 256})
			rz, ok := s.(core.Resizable)
			if !ok {
				t.Fatalf("settest: factory built %T, which is not core.Resizable", s)
			}
			if _, ok := s.(core.Batcher); !ok {
				t.Fatalf("settest: factory built %T, which is not core.Batcher", s)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var resizeErr error // written by the resizer, read after wg.Wait
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := core.NewCtx(999)
				widths := []int{2, 8, 1, 4, 16, 3}
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := rz.Resize(c, widths[i%len(widths)]); err != nil {
						resizeErr = err
						return
					}
				}
			}()
			body(t, s)
			close(stop)
			wg.Wait()
			if resizeErr != nil {
				t.Fatalf("settest: Resize failed during the batch battery: %v", resizeErr)
			}
		})
	}
	resizing("BatchSharedUnderResize", func(t *testing.T, s core.Set) {
		runConcurrentBatchShared(t, mustBatcher(t, s))
	})
	resizing("BatchAnchorsUnderResize", func(t *testing.T, s core.Set) {
		runBatchAnchorsDuringChurn(t, mustBatcher(t, s))
	})
}

// batchSet is the composite the batch bodies operate on.
type batchSet interface {
	core.Set
	core.Batcher
}

func mustBatcher(t *testing.T, s core.Set) batchSet {
	t.Helper()
	b, ok := s.(batchSet)
	if !ok {
		t.Fatalf("settest: factory built %T, which is not core.Batcher", s)
	}
	return b
}

// testSequentialBatchModel drives random batch shapes — duplicate keys,
// absent keys, empty batches, lengths from 0 to well past typical page
// sizes — against a model map that applies elements in index order, and
// checks every per-index result and the final structure state.
func testSequentialBatchModel(t *testing.T, f Factory) {
	s := mustBatcher(t, f(core.Options{ExpectedSize: 128}))
	c := ctx()
	rng := xrand.New(20250807)
	model := map[core.Key]core.Value{}
	rounds := scale(400)
	for r := 0; r < rounds; r++ {
		n := int(rng.Uint64n(33)) // 0..32: empty batches included
		if rng.Bool(0.1) {
			n = int(rng.Uint64n(200)) // occasional large batch
		}
		// A small key domain forces duplicates within a batch and a mix
		// of present and absent keys.
		keys := make([]core.Key, n)
		for i := range keys {
			keys[i] = core.Key(rng.Int63n(48))
		}
		switch rng.Uint64n(3) {
		case 0: // MultiPut
			pairs := make([]core.KV, n)
			want := make([]bool, n)
			for i, k := range keys {
				pairs[i] = core.KV{K: k, V: core.Value(r*1000 + i)}
				if _, in := model[k]; !in {
					model[k] = pairs[i].V
					want[i] = true
				}
			}
			seen := make([]bool, n)
			last := -1
			s.MultiPut(c, pairs, func(i int, inserted bool) {
				if i <= last {
					t.Fatalf("round %d: MultiPut delivered index %d after %d", r, i, last)
				}
				last = i
				seen[i] = true
				if inserted != want[i] {
					t.Fatalf("round %d: MultiPut index %d (key %d) = %v, want %v", r, i, pairs[i].K, inserted, want[i])
				}
			})
			for i, ok := range seen {
				if !ok {
					t.Fatalf("round %d: MultiPut never delivered index %d", r, i)
				}
			}
		case 1: // MultiRemove
			want := make([]bool, n)
			for i, k := range keys {
				if _, in := model[k]; in {
					delete(model, k)
					want[i] = true
				}
			}
			seen := make([]bool, n)
			last := -1
			s.MultiRemove(c, keys, func(i int, removed bool) {
				if i <= last {
					t.Fatalf("round %d: MultiRemove delivered index %d after %d", r, i, last)
				}
				last = i
				seen[i] = true
				if removed != want[i] {
					t.Fatalf("round %d: MultiRemove index %d (key %d) = %v, want %v", r, i, keys[i], removed, want[i])
				}
			})
			for i, ok := range seen {
				if !ok {
					t.Fatalf("round %d: MultiRemove never delivered index %d", r, i)
				}
			}
		default: // MultiGet
			seen := make([]bool, n)
			last := -1
			s.MultiGet(c, keys, func(i int, v core.Value, ok bool) {
				if i <= last {
					t.Fatalf("round %d: MultiGet delivered index %d after %d", r, i, last)
				}
				last = i
				seen[i] = true
				wv, want := model[keys[i]]
				if ok != want || (ok && v != wv) {
					t.Fatalf("round %d: MultiGet index %d (key %d) = (%d, %v), want (%d, %v)", r, i, keys[i], v, ok, wv, want)
				}
			})
			for i, ok := range seen {
				if !ok {
					t.Fatalf("round %d: MultiGet never delivered index %d", r, i)
				}
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("final Len = %d, model %d", s.Len(), len(model))
	}
	for k, v := range model {
		if gv, ok := s.Get(c, k); !ok || gv != v {
			t.Fatalf("final Get(%d) = (%d, %v), want (%d, true)", k, gv, ok, v)
		}
	}
}

// testCallerOrderDelivery pins the directed corners of the delivery
// contract: duplicates resolve in index order, empty batches are no-ops,
// and a batch mixing present, absent and repeated keys reports each
// index's own outcome.
func testCallerOrderDelivery(t *testing.T, f Factory) {
	s := mustBatcher(t, f(core.Options{}))
	c := ctx()
	// Empty batches: the callback must never fire.
	s.MultiGet(c, nil, func(int, core.Value, bool) { t.Fatal("MultiGet on empty batch fired") })
	s.MultiPut(c, nil, func(int, bool) { t.Fatal("MultiPut on empty batch fired") })
	s.MultiRemove(c, nil, func(int, bool) { t.Fatal("MultiRemove on empty batch fired") })

	// Duplicate keys in one MultiPut: only the first index of each key
	// inserts (index order), later duplicates see it present.
	pairs := []core.KV{{K: 7, V: 70}, {K: 3, V: 30}, {K: 7, V: 71}, {K: 3, V: 31}, {K: 9, V: 90}}
	var got []bool
	s.MultiPut(c, pairs, func(i int, inserted bool) {
		if i != len(got) {
			t.Fatalf("MultiPut delivered index %d, want %d", i, len(got))
		}
		got = append(got, inserted)
	})
	want := []bool{true, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MultiPut dup results = %v, want %v", got, want)
		}
	}
	// The first duplicate's value won.
	if v, ok := s.Get(c, 7); !ok || v != 70 {
		t.Fatalf("Get(7) = (%d, %v), want (70, true)", v, ok)
	}

	// Duplicate keys in one MultiRemove: only the first occurrence
	// removes.
	var rem []bool
	s.MultiRemove(c, []core.Key{3, 3, 5, 9, 9}, func(i int, removed bool) {
		if i != len(rem) {
			t.Fatalf("MultiRemove delivered index %d, want %d", i, len(rem))
		}
		rem = append(rem, removed)
	})
	wantRem := []bool{true, false, false, true, false}
	for i := range wantRem {
		if rem[i] != wantRem[i] {
			t.Fatalf("MultiRemove dup results = %v, want %v", rem, wantRem)
		}
	}

	// MultiGet mixing hits, misses and duplicates. Like the point Get,
	// the value is meaningful only when ok is true.
	type res struct {
		v  core.Value
		ok bool
	}
	var reads []res
	s.MultiGet(c, []core.Key{7, 3, 7, 100}, func(i int, v core.Value, ok bool) {
		if i != len(reads) {
			t.Fatalf("MultiGet delivered index %d, want %d", i, len(reads))
		}
		reads = append(reads, res{v, ok})
	})
	wantReads := []res{{70, true}, {0, false}, {70, true}, {0, false}}
	for i := range wantReads {
		if reads[i].ok != wantReads[i].ok || (reads[i].ok && reads[i].v != wantReads[i].v) {
			t.Fatalf("MultiGet results = %v, want %v", reads, wantReads)
		}
	}
}

// runConcurrentBatchShared hammers a small shared key space with every
// update traveling through batches, and checks the same per-key
// insert/remove algebra as the point-op battery: each successful batched
// Put is an absent→present transition, each successful batched Remove a
// present→absent transition, so the counts balance for any per-batch
// linearizable implementation regardless of interleaving. Budgets are
// op-scaled (scale), never wall-clock.
func runConcurrentBatchShared(t *testing.T, s batchSet) {
	const workers = 6
	batches := scale(600)
	const keySpace = 32
	const maxBatch = 12
	type tally struct{ ins, rem int64 }
	tallies := make([][keySpace]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w)*6151 + 29)
			keys := make([]core.Key, 0, maxBatch)
			pairs := make([]core.KV, 0, maxBatch)
			for i := 0; i < batches; i++ {
				n := 1 + int(rng.Uint64n(maxBatch))
				if rng.Bool(0.5) {
					pairs = pairs[:0]
					for j := 0; j < n; j++ {
						k := core.Key(rng.Int63n(keySpace))
						pairs = append(pairs, core.KV{K: k, V: k})
					}
					s.MultiPut(c, pairs, func(j int, inserted bool) {
						if inserted {
							tallies[w][pairs[j].K].ins++
						}
					})
				} else {
					keys = keys[:0]
					for j := 0; j < n; j++ {
						keys = append(keys, core.Key(rng.Int63n(keySpace)))
					}
					s.MultiRemove(c, keys, func(j int, removed bool) {
						if removed {
							tallies[w][keys[j]].rem++
						}
					})
				}
			}
		}(w)
	}
	wg.Wait()
	c := ctx()
	total := 0
	for k := 0; k < keySpace; k++ {
		var ins, rem int64
		for w := 0; w < workers; w++ {
			ins += tallies[w][k].ins
			rem += tallies[w][k].rem
		}
		_, present := s.Get(c, core.Key(k))
		delta := ins - rem
		if delta != 0 && delta != 1 {
			t.Fatalf("key %d: successful batched inserts - removes = %d (per-batch linearizability violated)", k, delta)
		}
		if (delta == 1) != present {
			t.Fatalf("key %d: delta %d but present=%v", k, delta, present)
		}
		if present {
			total++
		}
	}
	if got := s.Len(); got != total {
		t.Fatalf("Len = %d, but %d keys present", got, total)
	}
}

// runBatchAnchorsDuringChurn checks that batched readers always see an
// anchor key that is never removed, while batched churn happens around
// it — the per-batch linearization anchor: every MultiGet element must
// observe some state within its call, and the anchor is present in all
// of them.
func runBatchAnchorsDuringChurn(t *testing.T, s batchSet) {
	c0 := ctx()
	const anchor = core.Key(500)
	if !s.Put(c0, anchor, 12345) {
		t.Fatal("anchor insert failed")
	}
	stop := make(chan struct{})
	var readers, updaters sync.WaitGroup
	var mu sync.Mutex
	bad := 0
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			c := core.NewCtx(100 + r)
			rng := xrand.New(uint64(r) + 777)
			keys := make([]core.Key, 0, 8)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The anchor rides inside a batch of churned keys, at a
				// random position.
				keys = keys[:0]
				pos := int(rng.Uint64n(8))
				for j := 0; j < 8; j++ {
					if j == pos {
						keys = append(keys, anchor)
					} else {
						keys = append(keys, core.Key(400+rng.Int63n(200)))
					}
				}
				s.MultiGet(c, keys, func(i int, v core.Value, ok bool) {
					if keys[i] == anchor && (!ok || v != 12345) {
						mu.Lock()
						bad++
						mu.Unlock()
					}
				})
			}
		}(r)
	}
	for w := 0; w < 4; w++ {
		updaters.Add(1)
		go func(w int) {
			defer updaters.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w) + 654)
			keys := make([]core.Key, 0, 8)
			pairs := make([]core.KV, 0, 8)
			for i := 0; i < scale(800); i++ {
				// Churn keys around (but never equal to) the anchor, in
				// batches.
				if rng.Bool(0.5) {
					pairs = pairs[:0]
					for j := 0; j < 8; j++ {
						k := core.Key(400 + rng.Int63n(200))
						if k == anchor {
							k++
						}
						pairs = append(pairs, core.KV{K: k, V: k})
					}
					s.MultiPut(c, pairs, func(int, bool) {})
				} else {
					keys = keys[:0]
					for j := 0; j < 8; j++ {
						k := core.Key(400 + rng.Int63n(200))
						if k == anchor {
							k++
						}
						keys = append(keys, k)
					}
					s.MultiRemove(c, keys, func(int, bool) {})
				}
			}
		}(w)
	}
	updaters.Wait()
	close(stop)
	readers.Wait()
	if bad != 0 {
		t.Fatalf("a batched reader lost sight of the anchor key %d time(s) during unrelated churn", bad)
	}
	if v, ok := s.Get(c0, anchor); !ok || v != 12345 {
		t.Fatal("anchor missing after batched churn")
	}
}
