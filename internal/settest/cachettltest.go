package settest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csds/internal/core"
)

// CacheBuilder builds the read-through cache under test over the given
// inner set, with the given TTL and fake clock (nanoseconds, monotone
// non-decreasing). The combinator package's readcache satisfies this via
// NewReadCacheOpts + SetClock.
type CacheBuilder func(inner core.Set, ttl time.Duration, now func() int64) core.Set

// RunCacheTTL pins the TTL-expiry contract of a read-through cache whose
// inner structure is mutated OUT OF BAND (a replica applying remote
// writes underneath the cache — updates through the cache already
// invalidate immediately, so TTL only matters for this case):
//
//   - an entry younger than the TTL may serve a stale value;
//   - an entry at or past the TTL is NEVER served — the next get consults
//     the inner structure and refreshes the entry in place.
//
// The battery is deterministic (injected fake clock, no wall-clock
// assertions) and 1-CPU safe: the churn phase uses bounded loops with
// explicit yields, and the clock is advanced only between operations so
// fill timestamps are exact.
func RunCacheTTL(t *testing.T, build CacheBuilder) {
	t.Helper()
	t.Run("DeterministicExpiry", func(t *testing.T) { testCacheExpiry(t, build) })
	t.Run("OutOfBandChurn", func(t *testing.T) { testCacheChurn(t, build) })
}

// oobSet is a locked map with an extra out-of-band mutation entry point
// (setDirect overwrites without the cache seeing it) and a consult
// counter, so the battery can tell hits from read-throughs.
type oobSet struct {
	mu   sync.Mutex
	m    map[core.Key]core.Value
	gets atomic.Uint64
}

func newOOBSet() *oobSet { return &oobSet{m: map[core.Key]core.Value{}} }

func (s *oobSet) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	s.gets.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	return v, ok
}

func (s *oobSet) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = v
	return true
}

func (s *oobSet) Remove(c *core.Ctx, k core.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[k]; !ok {
		return false
	}
	delete(s.m, k)
	return true
}

func (s *oobSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// setDirect overwrites k out of band: the cache above never hears of it.
func (s *oobSet) setDirect(k core.Key, v core.Value) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// testCacheExpiry walks the single-threaded contract along a fake clock.
func testCacheExpiry(t *testing.T, build CacheBuilder) {
	const ttl = 1000 // ns
	var clock atomic.Int64
	inner := newOOBSet()
	cache := build(inner, ttl*time.Nanosecond, clock.Load)
	c := core.NewCtx(0)
	k := core.Key(7)

	inner.setDirect(k, 100)
	if v, ok := cache.Get(c, k); !ok || v != 100 {
		t.Fatalf("first get = (%d, %v), want (100, true)", v, ok)
	}
	if g := inner.gets.Load(); g != 1 {
		t.Fatalf("first get consulted inner %d times, want 1 (miss + fill)", g)
	}
	if v, _ := cache.Get(c, k); v != 100 {
		t.Fatalf("second get = %d, want the cached 100", v)
	}
	if g := inner.gets.Load(); g != 1 {
		t.Fatalf("second get consulted inner (%d consults): not served from cache", g)
	}

	// Mutate out of band. Within the TTL the cache may legally serve the
	// stale 100 (that's what a freshness bound means) — and this cache
	// does, which is what makes the expiry assertions below meaningful.
	inner.setDirect(k, 200)
	clock.Store(ttl - 1)
	if v, _ := cache.Get(c, k); v != 100 {
		t.Fatalf("get inside TTL = %d, want the stale 100 still served", v)
	}
	if g := inner.gets.Load(); g != 1 {
		t.Fatalf("inside-TTL get consulted inner (%d consults)", g)
	}

	// At exactly fill+TTL the entry is dead: the stale 100 must never be
	// served again; the get reads through and refreshes in place.
	clock.Store(ttl)
	if v, ok := cache.Get(c, k); !ok || v != 200 {
		t.Fatalf("get at TTL = (%d, %v), want the fresh (200, true)", v, ok)
	}
	if g := inner.gets.Load(); g != 2 {
		t.Fatalf("expired get consulted inner %d times, want 2", g)
	}
	if c.Stats.CacheExpiries == 0 {
		t.Fatal("expiry not recorded in stats")
	}

	// The refresh re-armed the entry: served from cache again.
	if v, _ := cache.Get(c, k); v != 200 {
		t.Fatalf("post-refresh get = %d, want 200", v)
	}
	if g := inner.gets.Load(); g != 2 {
		t.Fatalf("post-refresh get consulted inner (%d consults)", g)
	}
}

// testCacheChurn hammers one hot key with out-of-band overwrites while a
// reader gets through the cache, and checks every returned value against
// the freshness bound. Values are a monotone counter; replacedAt[i]
// records (atomically, AFTER the overwrite lands) when value i-1 stopped
// being current. A read returning v with replacedAt[v+1] set means v is
// stale — legal only while now - replacedAt[v+1] < TTL.
//
// Only the reader advances the clock, and only between its own gets, so
// the clock is frozen inside every Get: a fill's timestamp f equals the
// clock at its inner read, the read saw v so the replacement's (later)
// timestamp is >= f, and the serve window now-f < TTL implies
// now - replacedAt[v+1] < TTL with no slack term. Recording replacedAt
// after the overwrite can only time-stamp the replacement late, which
// under-detects but never false-positives — the deterministic phase
// already pins the exact boundary.
func testCacheChurn(t *testing.T, build CacheBuilder) {
	const (
		ttl    = 50 // in clock steps of 1ns
		writes = 4000
	)
	var clock atomic.Int64
	inner := newOOBSet()
	cache := build(inner, ttl*time.Nanosecond, clock.Load)
	k := core.Key(3)
	replacedAt := make([]atomic.Int64, writes+2) // stored as time+1; 0 = not replaced yet

	inner.setDirect(k, 0)

	var writerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for i := int64(1); i <= writes; i++ {
			inner.setDirect(k, core.Value(i))
			replacedAt[i].Store(clock.Load() + 1)
			if i%8 == 0 {
				runtime.Gosched()
			}
		}
	}()

	c := core.NewCtx(1)
	for i := 0; !writerDone.Load() || i < 2000; i++ {
		now := clock.Load()
		v, ok := cache.Get(c, k)
		if !ok {
			t.Fatalf("hot key absent at read %d", i)
		}
		if enc := replacedAt[v+1].Load(); enc != 0 {
			if age := now - (enc - 1); age >= ttl {
				t.Fatalf("read %d returned value %d replaced %dns ago (TTL %d): expired value observed", i, v, age, ttl)
			}
		}
		clock.Add(1)
		if i%4 == 0 {
			runtime.Gosched()
		}
	}
	wg.Wait()
	if c.Stats.CacheHits == 0 || c.Stats.CacheExpiries == 0 {
		t.Fatalf("churn exercised hits=%d expiries=%d: battery did not cover both paths",
			c.Stats.CacheHits, c.Stats.CacheExpiries)
	}
}
