// The chaos battery: every structure and combinator under a seeded fault
// schedule (internal/fault). Where the poison battery proves reclamation
// correct under honest concurrency, this battery proves it — and
// linearizability — under injected hostility: workers that stall between
// operations and inside critical sections, scans whose guard validations
// are forcibly failed, retire callbacks that run late, and a reclamation
// antagonist that stalls inside epoch brackets and abandons records
// without exiting them (Fraser's stalled-reader failure mode, TR 579 §4).
//
// The assertions are the repository's standing invariants, none relaxed:
// per-key insert/remove algebra (linearizability), the poison equation
// (no traversal observes a poisoned or recycled mapping), and a quiesced
// drain ending at reclaimed == retired. A fault plane that broke any of
// them would be injecting unsoundness, not adversity.
package settest

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"csds/internal/core"
	"csds/internal/ebr"
	"csds/internal/fault"
	"csds/internal/xrand"
)

// chaosSpan is the battery's key range: small enough that removes recycle
// nodes under traversal, large enough for scans to cover real pages.
const chaosSpan = 96

// ChaosSeeds are the pinned seeds of the standard battery — the CI chaos
// job runs exactly these. Three seeds, three different interleaving
// pressures; a failure reproduces with `-run Chaos` and the seed printed
// in the subtest name.
var ChaosSeeds = []uint64{0xC0FFEE, 0xBADC0DE, 0x5EED}

// RunChaos executes the chaos battery against the factory once per pinned
// seed (one seed under -short).
func RunChaos(t *testing.T, f Factory) {
	t.Helper()
	seeds := ChaosSeeds
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			runChaos(t, f, fault.ChaosPlan(seed))
		})
	}
}

// RunChaosSpec runs the chaos battery against an algorithm spec resolved
// through the layered core factory.
func RunChaosSpec(t *testing.T, spec string) {
	t.Helper()
	f, err := core.NewFactory(spec)
	if err != nil {
		t.Fatalf("settest: resolving spec: %v", err)
	}
	RunChaos(t, Factory(f))
}

func runChaos(t *testing.T, f Factory, plan *fault.Plan) {
	t.Helper()
	dom := ebr.NewDomain()
	s := f(core.Options{Domain: dom, ExpectedSize: chaosSpan})
	scanner, _ := s.(core.Scanner)
	cursor, _ := s.(core.Cursor)
	tally := fault.NewTally()
	iters := scale(3000)

	const workers = 4
	type keyTally struct{ ins, rem int64 }
	ledgers := make([][chaosSpan]keyTally, workers)

	var wg, awg sync.WaitGroup
	stop := make(chan struct{})

	// The reclamation antagonist: stalls inside epoch brackets (holding
	// the global epoch back while everyone else retires into limbo) and
	// abandons records active-without-exit (Unregister's force-exit must
	// absorb them). It runs throwaway records so the main workers' own
	// reclamation discipline stays untouched. The workload decides the
	// duration: the antagonist runs until the workers finish (its own
	// WaitGroup — it stops on the channel the workers' wait closes).
	antIn := fault.NewInjector(plan, uint64(workers), tally)
	if plan.Enabled(fault.EBRStall) || plan.Enabled(fault.EBRAbandon) {
		awg.Add(1)
		go func() {
			defer awg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if antIn.Fire(fault.EBRStall) {
					r := dom.Register()
					r.Enter()
					fault.Spin(antIn.Duration(fault.EBRStall))
					r.Exit()
					r.Unregister()
				}
				if antIn.Fire(fault.EBRAbandon) {
					r := dom.Register()
					r.Enter()
					// No Exit: the panicking-worker shape.
					r.Unregister()
				}
				runtime.Gosched()
			}
		}()
	}

	var errMu sync.Mutex
	var firstErr error
	fail := func(format string, args ...any) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
		errMu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inj := fault.NewInjector(plan, uint64(w), tally)
			c := core.NewCtx(w)
			c.Epoch = dom.Register()
			defer c.Epoch.Unregister()
			c.Fault = inj
			c.CSHook = func() { inj.Delay(fault.CSDelay) }
			rng := xrand.New(uint64(w)*0x9e3779b97f4a7c15 + 3)
			check := func(where string, k core.Key, v core.Value) bool {
				if k == core.PoisonKey || v == core.PoisonValue {
					fail("%s observed a poisoned node: key %d value %d", where, k, v)
					return false
				}
				if v != core.Value(k) {
					fail("%s observed impossible mapping %d -> %d (want %d)", where, k, v, core.Value(k))
					return false
				}
				return true
			}
			for i := 0; i < iters; i++ {
				inj.Delay(fault.OpDelay)
				k := core.Key(rng.Int63n(chaosSpan))
				switch {
				case scanner != nil && i%32 == 9:
					scanner.Scan(c, 0, chaosSpan, func(k core.Key, v core.Value) bool {
						return check("Scan", k, v)
					})
				case cursor != nil && i%32 == 21:
					pos := core.Key(0)
					for done := false; !done; {
						pos, done = cursor.CursorNext(c, pos, chaosSpan, 8, func(k core.Key, v core.Value) bool {
							return check("CursorNext", k, v)
						})
					}
				case rng.Bool(0.3):
					if v, ok := s.Get(c, k); ok {
						check("Get", k, v)
					}
				case rng.Bool(0.5):
					if s.Put(c, k, core.Value(k)) {
						ledgers[w][k].ins++
					}
				default:
					if s.Remove(c, k) {
						ledgers[w][k].rem++
					}
				}
				if i&63 == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}

	wg.Wait()
	close(stop)
	awg.Wait()
	if firstErr != nil {
		t.Fatalf("settest: chaos battery (plan %s): %v", plan, firstErr)
	}

	// Linearizability ledger: successful inserts minus successful removes
	// per key must be 0 or 1 and must match final presence.
	c := ctx()
	for k := 0; k < chaosSpan; k++ {
		var ins, rem int64
		for w := 0; w < workers; w++ {
			ins += ledgers[w][k].ins
			rem += ledgers[w][k].rem
		}
		_, present := s.Get(c, core.Key(k))
		delta := ins - rem
		if delta != 0 && delta != 1 {
			t.Fatalf("key %d: successful inserts - removes = %d (linearizability violated under plan %s)", k, delta, plan)
		}
		if (delta == 1) != present {
			t.Fatalf("key %d: delta %d but present=%v (plan %s)", k, delta, present, plan)
		}
	}

	// A chaos run that injected nothing proves nothing.
	if tally.Total() == 0 {
		t.Fatalf("chaos plan %s fired no faults over %d ops", plan, workers*iters)
	}

	// Quiesced drain: every advance now succeeds, aging all limbo out of
	// its grace period. The injected stalls, abandons, and delayed retire
	// callbacks must not strand a single node.
	dom.Advance()
	dom.Advance()
	dom.Advance()
	retired, reclaimed := dom.Stats()
	if reclaimed != retired {
		t.Fatalf("quiesced drain left %d of %d retired nodes unreclaimed (plan %s, fired: %s)",
			retired-reclaimed, retired, plan, tally)
	}
}
