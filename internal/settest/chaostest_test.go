package settest

import (
	"testing"

	"csds/internal/core"
	"csds/internal/fault"
	"csds/internal/xrand"
)

// The acceptance bar of the fault plane: the same schedule replayed with
// the same seed fires the same faults the same number of times. A fixed
// single-worker op sequence makes every draw count-deterministic, so the
// tallies must match exactly — including the guard-fail draws taken
// inside GuardedScan, whose count depends only on this worker's ops when
// no other writer runs.
func TestChaosTallyDeterministic(t *testing.T) {
	run := func() map[fault.Point]uint64 {
		plan := fault.ChaosPlan(42)
		tally := fault.NewTally()
		f, err := core.NewFactory("list/lazy")
		if err != nil {
			t.Fatal(err)
		}
		s := f(core.Options{ExpectedSize: chaosSpan})
		scanner := s.(core.Scanner)
		c := core.NewCtx(0)
		c.Fault = fault.NewInjector(plan, 0, tally)
		c.CSHook = func() { c.Fault.Delay(fault.CSDelay) }
		rng := xrand.New(99)
		for i := 0; i < 2000; i++ {
			c.Fault.Delay(fault.OpDelay)
			k := core.Key(rng.Int63n(chaosSpan))
			switch {
			case i%16 == 7:
				scanner.Scan(c, 0, chaosSpan, func(core.Key, core.Value) bool { return true })
			case rng.Bool(0.5):
				s.Put(c, k, core.Value(k))
			default:
				s.Remove(c, k)
			}
		}
		return tally.Snapshot()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("schedule fired nothing")
	}
	for pt, n := range a {
		if b[pt] != n {
			t.Fatalf("point %s fired %d then %d: schedule not reproducible", pt, n, b[pt])
		}
	}
	if a[fault.GuardFail] == 0 || a[fault.OpDelay] == 0 || a[fault.CSDelay] == 0 {
		t.Fatalf("expected op.delay, cs.delay and guard.fail to fire; got %v", a)
	}
}

// The battery must reject nothing the standard suites accept: run it on a
// composite spec end to end (this is also the RunChaosSpec entry point's
// own test).
func TestRunChaosSpecSmoke(t *testing.T) {
	RunChaosSpec(t, "sharded(2,list/lazy)")
}
